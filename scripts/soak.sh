#!/usr/bin/env bash
# The composed soak: a live fleet that changes shape under adversarial
# load, with the verdict taken from loadgen's self-checking soak
# scenario. This is the script `make soak` and CI's soak-integration
# job both run — one codepath, locally reproducible.
#
# Timeline (one balancer, three backends, ~60s of traffic):
#
#   t=0    b1 (static, seeded via the member file) and b2 (runtime
#          self-registration via -register) serve behind montsyslb;
#          loadgen -scenario soak starts: three tenants closed-loop on
#          Zipf moduli plus slow-loris and malformed-frame adversaries.
#          b2 is also a PR 5 chaos backend: it corrupts 5% of its own
#          results, catches each one with integrity checking (recompute
#          off) and answers the integrity wire code — the balancer must
#          fail those over invisibly, composing fault injection with
#          churn and abuse in the same run.
#   t~8s   b3 boots and is added by editing the member file — the
#          balancer's -backends-watch reconciler joins it, opening a
#          handover window (old homes keep serving while b3 warms).
#   t~18s  b3 is kill -9ed mid-flight: the backend that just joined —
#          and just inherited moduli — dies hard, no goodbye, no drain,
#          in-flight requests dying with it. Failover + client retries
#          must absorb the loss invisibly.
#   end    loadgen prints SOAK OK (zero wrong answers, zero acme
#          errors, no windowed-p99 cliff) or the script fails. Then b2
#          leaves gracefully (SIGTERM -> registrar Goodbye -> drain),
#          b3's corpse is removed from the member file (watcher
#          goodbye), and the balancer's /metrics must account for
#          everything: members, joins, leaves, handover dual-routing.
set -euo pipefail

DIR=$(mktemp -d /tmp/montsys-soak.XXXXXX)
trap 'kill $(jobs -p) 2>/dev/null || true; wait 2>/dev/null || true; rm -rf "$DIR"' EXIT

LB=127.0.0.1:7470
B1=127.0.0.1:7471
B2=127.0.0.1:7472
B3=127.0.0.1:7473
MET=127.0.0.1:9470

DURATION=${SOAK_DURATION:-40s}

echo "== build"
go build -o "$DIR/montsysd" ./cmd/montsysd
go build -o "$DIR/montsyslb" ./cmd/montsyslb
go build -o "$DIR/loadgen" ./cmd/loadgen

echo "== boot fleet (b1 seeded, b2 self-registered)"
echo "$B1=z1" > "$DIR/members.txt"

"$DIR/montsysd" -listen "$B1" -inflight 128 -zone z1 > "$DIR/b1.log" 2>&1 &
B1PID=$!
"$DIR/montsyslb" -backends "@$DIR/members.txt" -backends-watch 250ms \
  -listen "$LB" -metrics "$MET" -probe 250ms -zone z1 \
  -handover 5s > "$DIR/lb.log" 2>&1 &
LBPID=$!
sleep 1
"$DIR/montsysd" -listen "$B2" -inflight 128 -zone z1 \
  -integrity -integrity-recompute=false -fault-rate 0.05 -fault-seed 7 \
  -register "$LB" > "$DIR/b2.log" 2>&1 &
B2PID=$!

# Both backends routable before traffic starts.
for i in $(seq 1 40); do
  n=$(curl -fs "http://$MET/metrics" | awk '/^montsys_cluster_members /{print $2}')
  [ "${n:-0}" = 2 ] && break
  sleep 0.25
done
[ "${n:-0}" = 2 ] || { echo "FAIL: fleet never reached 2 members"; cat "$DIR/lb.log"; exit 1; }
grep -q "registered with $LB" "$DIR/b2.log"

echo "== soak ($DURATION, join + kill -9 mid-run, adversaries on)"
# -keys 16 at one bit length: enough distinct moduli that a 3-way join
# essentially always moves several homes, so the handover counters
# below are a hard assertion rather than a coin flip.
"$DIR/loadgen" -scenario soak -connect "$LB" -clients 4 -bits 256 \
  -keys 16 -duration "$DURATION" -adversaries 4 \
  > "$DIR/soak.log" 2>&1 &
LOADPID=$!

sleep 8
echo "== join b3 mid-run (member-file edit -> watch reconciler)"
"$DIR/montsysd" -listen "$B3" -inflight 128 -zone z2 > "$DIR/b3.log" 2>&1 &
B3PID=$!
{ echo "$B1=z1"; echo "$B3=z2"; } > "$DIR/members.txt"

sleep 10
echo "== kill -9 b3 mid-run (the new backend dies hard; no goodbye, no drain)"
kill -9 "$B3PID"

if ! wait "$LOADPID"; then
  echo "FAIL: soak scenario exited nonzero"
  cat "$DIR/soak.log"
  exit 1
fi
cat "$DIR/soak.log"
grep -q '^SOAK OK$' "$DIR/soak.log"

echo "== graceful leave (b2 SIGTERM -> registrar Goodbye -> drain)"
kill -TERM "$B2PID"
wait "$B2PID"
grep -q 'drained cleanly' "$DIR/b2.log"
# b3's corpse leaves through the file: the watcher reconciles it away.
echo "$B1=z1" > "$DIR/members.txt"
sleep 1

echo "== balancer accounting"
curl -fs "http://$MET/metrics" > "$DIR/metrics.txt"
# b2's self-registration and b3's file-watch join both counted.
grep -E 'montsys_cluster_membership_changes_total\{kind="join"\} 2' "$DIR/metrics.txt"
# b2's registrar goodbye and b3's file removal both counted as leaves.
grep -E 'montsys_cluster_membership_changes_total\{kind="leave"\} 2' "$DIR/metrics.txt"
# Only the static seed remains routable.
grep -E 'montsys_cluster_members 1' "$DIR/metrics.txt"
# The join actually exercised handover: moved moduli were dual-routed
# to their warm old home and the new home received warm-up traffic.
grep -E 'montsys_cluster_handover_dual_routed_total [1-9]' "$DIR/metrics.txt"
grep -E 'montsys_cluster_handover_warmups_total [1-9]' "$DIR/metrics.txt"
# The chaos backend's self-caught corruption was seen and failed over
# by the cluster tier, never absorbed invisibly — and since loadgen
# self-checks every answer, exit 0 above already proved none leaked.
grep -E "montsys_cluster_integrity_failures_total\{backend=\"$B2\"\} [1-9]" "$DIR/metrics.txt"
# The front door took fire the whole time and nothing leaked: the
# server-side guards must have closed hostile connections.
grep -E 'montsys_server_slowloris_closed_total [1-9]' "$DIR/metrics.txt" || \
  grep -E 'montsys_server_oversize_frames_total [1-9]' "$DIR/metrics.txt"

echo "== drain balancer + static backend"
kill -TERM "$LBPID"
wait "$LBPID"
grep -q 'drained cleanly' "$DIR/lb.log"
kill -TERM "$B1PID"
wait "$B1PID"
grep -q 'drained cleanly' "$DIR/b1.log"

echo "SOAK HARNESS PASS"
