package montsys

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable2_MMM        — Table 2: slices, Tp, TA, T_MMM per l
//	BenchmarkTable1_ModExp     — Table 1: Tp and average T_modexp per l
//	BenchmarkFig2_AreaScaling  — Fig. 2's area formula and 4l flip-flops
//	BenchmarkFig2_CriticalPath — Fig. 2's l-independent critical path
//	BenchmarkFig4_CyclesPerMMM — Fig. 4's 3l+4-cycle schedule, measured
//	BenchmarkVsBlumPaar        — §2: R=2^(l+2) vs Blum–Paar R=2^(l+3)
//	BenchmarkRadixSweep        — §2's ⌈(n+2)/α⌉ high-radix trade-off
//	BenchmarkConstantTime      — §5: timing invariance vs the baseline
//
// Custom metrics carry the reproduced quantities (slices, ns, cycles) so
// `go test -bench . -benchmem` prints the paper's numbers alongside host
// throughput. Absolute host speed is incidental; the shape of the custom
// metrics is the reproduction.

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/bits"
	"repro/internal/expo"
	"repro/internal/fpga"
	"repro/internal/gf2"
	"repro/internal/highradix"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/mont"
	"repro/internal/systolic"
	"repro/internal/tables"
)

func benchRandOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

// BenchmarkTable2_MMM reproduces Table 2: for each bit length it maps
// the full MMM circuit onto the Virtex-E model and measures one
// multiplication through the cycle-accurate simulator. Metrics:
// slices, Tp_ns, TMMM_us (model) and cycles/mul (measured).
func BenchmarkTable2_MMM(b *testing.B) {
	for _, l := range tables.StandardLengths {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(l)))
			n := benchRandOdd(rng, l)
			nl := logic.New()
			if _, err := mmmc.BuildNetlist(nl, l, systolic.Faithful); err != nil {
				b.Fatal(err)
			}
			mr, err := fpga.VirtexE.Map(nl)
			if err != nil {
				b.Fatal(err)
			}
			c, err := mmmc.New(l, systolic.Guarded)
			if err != nil {
				b.Fatal(err)
			}
			x := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
			y := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
			xv, yv, nv := bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(n, l)
			var cycles int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, cycles, err = c.Run(xv, yv, nv)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(mr.Slices), "slices")
			b.ReportMetric(mr.ClockPeriodNs, "Tp_ns")
			b.ReportMetric(float64(cycles), "cycles/mul")
			b.ReportMetric(float64(cycles)*mr.ClockPeriodNs/1000, "TMMM_us")
			b.ReportMetric(float64(mr.Slices)*mr.ClockPeriodNs, "TA_slice_ns")
		})
	}
}

// BenchmarkTable1_ModExp reproduces Table 1: a full modular
// exponentiation with a balanced l-bit exponent, cycle-accounted with
// the paper's model and priced at the Virtex-E clock. Metrics:
// Tp_ns, cycles (measured decomposition) and Texp_ms (paper average).
func BenchmarkTable1_ModExp(b *testing.B) {
	for _, l := range tables.Table1Lengths {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(l)))
			n := benchRandOdd(rng, l)
			nl := logic.New()
			if _, err := mmmc.BuildNetlist(nl, l, systolic.Faithful); err != nil {
				b.Fatal(err)
			}
			mr, err := fpga.VirtexE.Map(nl)
			if err != nil {
				b.Fatal(err)
			}
			ex, err := expo.New(n, expo.Model)
			if err != nil {
				b.Fatal(err)
			}
			m := new(big.Int).Rand(rng, n)
			e := new(big.Int)
			e.SetBit(e, l-1, 1)
			for ones := 1; ones < (l+1)/2; {
				i := rng.Intn(l - 1)
				if e.Bit(i) == 0 {
					e.SetBit(e, i, 1)
					ones++
				}
			}
			var rep expo.Report
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err = ex.ModExp(m, e)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mr.ClockPeriodNs, "Tp_ns")
			b.ReportMetric(float64(rep.TotalCycles), "cycles")
			b.ReportMetric(expo.PaperAverageCycles(l)*mr.ClockPeriodNs/1e6, "Texp_ms")
		})
	}
}

// BenchmarkFig2_AreaScaling reproduces Fig. 2's area claims: it builds
// the faithful gate-level array per l and reports the primitive-gate and
// flip-flop counts (linear in l; the paper's formula is (5l−3) XOR +
// (7l−7) AND + (4l−5) OR and 4l FFs; this decomposition gives
// (5l−2)/(7l−4)/(2l−1) — see EXPERIMENTS.md for the reconciliation).
func BenchmarkFig2_AreaScaling(b *testing.B) {
	for _, l := range tables.StandardLengths {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			var cen logic.Census
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nl := logic.New()
				if _, err := systolic.BuildArrayNetlist(nl, l, systolic.Faithful); err != nil {
					b.Fatal(err)
				}
				cen = nl.Census()
			}
			b.ReportMetric(float64(cen.Xor), "XOR")
			b.ReportMetric(float64(cen.And), "AND")
			b.ReportMetric(float64(cen.Or), "OR")
			b.ReportMetric(float64(cen.DFF), "FF")
		})
	}
}

// BenchmarkFig2_CriticalPath verifies the headline timing claim: the
// register-to-register critical path of the array is independent of l.
// Metric: gate levels (identical in every sub-benchmark).
func BenchmarkFig2_CriticalPath(b *testing.B) {
	for _, l := range []int{32, 256, 1024} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			var rep logic.TimingReport
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nl := logic.New()
				if _, err := systolic.BuildArrayNetlist(nl, l, systolic.Faithful); err != nil {
					b.Fatal(err)
				}
				var err error
				rep, err = logic.AnalyzeTiming(nl, logic.UnitDelays)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.CriticalLevels), "gate_levels")
		})
	}
}

// BenchmarkFig4_CyclesPerMMM measures the ASM schedule of Fig. 4 end to
// end on the gate-level netlist: START to DONE must be exactly 3l+4
// clock edges. Metric: cycles (gate-accurate, measured).
func BenchmarkFig4_CyclesPerMMM(b *testing.B) {
	for _, l := range []int{8, 32, 64} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(l)))
			n := benchRandOdd(rng, l)
			nl := logic.New()
			p, err := mmmc.BuildNetlist(nl, l, systolic.Guarded)
			if err != nil {
				b.Fatal(err)
			}
			sim, err := logic.Compile(nl)
			if err != nil {
				b.Fatal(err)
			}
			x := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
			y := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
			sim.SetMany(p.XBus, bits.FromBig(x, l+1))
			sim.SetMany(p.YBus, bits.FromBig(y, l+1))
			sim.SetMany(p.NBus, bits.FromBig(n, l))
			cycles := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sim.Set(p.Start, 1)
				sim.Step()
				sim.Set(p.Start, 0)
				cycles = 0
				for sim.Get(p.Done) == 0 {
					sim.Step()
					cycles++
				}
			}
			if cycles != 3*l+4 {
				b.Fatalf("measured %d cycles, want %d", cycles, 3*l+4)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkVsBlumPaar reproduces the §2 comparison: both designs run a
// full modular exponentiation; metrics price them at their modelled
// clocks. The paper's claim — R = 2^(l+2) strictly beats R = 2^(l+3) —
// appears as speedup > 1 at every length.
func BenchmarkVsBlumPaar(b *testing.B) {
	for _, l := range []int{32, 256, 1024} {
		b.Run(fmt.Sprintf("l=%d", l), func(b *testing.B) {
			rng := rand.New(rand.NewSource(int64(l)))
			n := benchRandOdd(rng, l)
			ex, err := expo.New(n, expo.Model)
			if err != nil {
				b.Fatal(err)
			}
			bp, err := baseline.NewBlumPaar(n)
			if err != nil {
				b.Fatal(err)
			}
			m := new(big.Int).Rand(rng, n)
			e := new(big.Int).Rand(rng, n)
			e.SetBit(e, l-1, 1)
			var ourCycles, bpCycles int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, rep, err := ex.ModExp(m, e)
				if err != nil {
					b.Fatal(err)
				}
				ourCycles = rep.TotalCycles
				_, bpCycles, err = bp.ModExp(m, e)
				if err != nil {
					b.Fatal(err)
				}
			}
			ourTime := float64(ourCycles)
			bpTime := float64(bpCycles) * baseline.ClockPeriodFactor
			b.ReportMetric(float64(ourCycles), "our_cycles")
			b.ReportMetric(float64(bpCycles), "bp_cycles")
			b.ReportMetric(bpTime/ourTime, "speedup")
		})
	}
}

// BenchmarkRadixSweep reproduces the §2 radix discussion: iterations
// drop as ⌈(l+2)/α⌉ while the modelled PE clock slows — the crossover
// the paper resolves in favour of radix 2 for clock frequency.
func BenchmarkRadixSweep(b *testing.B) {
	const l = 1024
	rng := rand.New(rand.NewSource(l))
	n := benchRandOdd(rng, l)
	x := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
	y := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
	for _, alpha := range []uint{1, 2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("alpha=%d", alpha), func(b *testing.B) {
			hr, err := highradix.New(n, alpha)
			if err != nil {
				b.Fatal(err)
			}
			cost := hr.Cost(10.0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hr.Mul(x, y)
			}
			b.ReportMetric(float64(cost.Iterations), "iterations")
			b.ReportMetric(float64(cost.CyclesPerMul), "cycles/mul")
			b.ReportMetric(cost.TimePerMulNs/1000, "Tmul_us")
		})
	}
}

// BenchmarkConstantTime is the §5 experiment as a benchmark: the MMM
// circuit's cycle spread over random operands (always 0) against the
// conditional-subtraction baseline's (nonzero). Metric: cycle_spread.
func BenchmarkConstantTime(b *testing.B) {
	const l = 32
	rng := rand.New(rand.NewSource(5))
	n := benchRandOdd(rng, l)

	b.Run("montgomery", func(b *testing.B) {
		c, err := mmmc.New(l, systolic.Guarded)
		if err != nil {
			b.Fatal(err)
		}
		nv := bits.FromBig(n, l)
		minC, maxC := 1<<30, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
			y := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
			_, cyc, err := c.Run(bits.FromBig(x, l+1), bits.FromBig(y, l+1), nv)
			if err != nil {
				b.Fatal(err)
			}
			if cyc < minC {
				minC = cyc
			}
			if cyc > maxC {
				maxC = cyc
			}
		}
		b.ReportMetric(float64(maxC-minC), "cycle_spread")
	})
	b.Run("interleaved-baseline", func(b *testing.B) {
		in, err := baseline.NewInterleaved(n)
		if err != nil {
			b.Fatal(err)
		}
		minC, maxC := 1<<30, 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			x := new(big.Int).Rand(rng, n)
			y := new(big.Int).Rand(rng, n)
			_, cyc := in.Mul(x, y)
			if cyc < minC {
				minC = cyc
			}
			if cyc > maxC {
				maxC = cyc
			}
		}
		b.ReportMetric(float64(maxC-minC), "cycle_spread")
	})
}

// BenchmarkHostMultipliers compares the repository's software
// implementations at RSA-1024 scale: bit-serial Algorithm 2, word-level
// CIOS, and math/big as the yardstick. Not a paper table — it grounds
// the radix discussion in host-measurable numbers.
func BenchmarkHostMultipliers(b *testing.B) {
	const l = 1024
	rng := rand.New(rand.NewSource(6))
	n := benchRandOdd(rng, l)
	x := new(big.Int).Rand(rng, n)
	y := new(big.Int).Rand(rng, n)

	b.Run("algorithm2-bitserial", func(b *testing.B) {
		ctx, err := mont.NewCtx(n)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx.Mul(x, y)
		}
	})
	b.Run("cios-64bit", func(b *testing.B) {
		c, err := mont.NewCIOS(n)
		if err != nil {
			b.Fatal(err)
		}
		a1, _ := c.NewOperand(x)
		a2, _ := c.NewOperand(y)
		out := mont.NewNat(c.Words())
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Mul(out, a1, a2)
		}
	})
	b.Run("mathbig-mulmod", func(b *testing.B) {
		t := new(big.Int)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Mul(x, y)
			t.Mod(t, n)
		}
	})
}

// BenchmarkGateLevelSim measures the raw gate-level simulation
// throughput (clock edges per second at l=64) — the substrate cost of
// the reproduction itself.
func BenchmarkGateLevelSim(b *testing.B) {
	const l = 64
	nl := logic.New()
	p, err := mmmc.BuildNetlist(nl, l, systolic.Guarded)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	sim.Set(p.Start, 1)
	sim.Step()
	sim.Set(p.Start, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step()
	}
	b.ReportMetric(float64(nl.NumGates()), "gates")
}

// BenchmarkArray2DThroughput contrasts the folded linear array (one
// product per 3l+4 cycles) with the unfolded 2D array of §4.2 (one
// product per 2 cycles amortized): the area/throughput trade the paper's
// folding decision navigates. Metrics: cycles_per_product.
func BenchmarkArray2DThroughput(b *testing.B) {
	const l = 32
	rng := rand.New(rand.NewSource(7))
	n := benchRandOdd(rng, l)
	y := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
	nv, yv := bits.FromBig(n, l), bits.FromBig(y, l+1)
	const batch = 64
	xs := make([]bits.Vec, batch)
	for i := range xs {
		xs[i] = bits.FromBig(new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1)), l+1)
	}

	b.Run("linear-folded", func(b *testing.B) {
		arr, err := systolic.NewArray(systolic.Guarded, nv, yv)
		if err != nil {
			b.Fatal(err)
		}
		cycles := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycles = 0
			for _, x := range xs {
				_, c, err := arr.Run(x)
				if err != nil {
					b.Fatal(err)
				}
				cycles += c
			}
		}
		b.ReportMetric(float64(cycles)/batch, "cycles_per_product")
	})
	b.Run("2d-unfolded", func(b *testing.B) {
		arr, err := systolic.NewArray2D(nv, yv)
		if err != nil {
			b.Fatal(err)
		}
		cycles := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, c, err := arr.RunBatch(xs)
			if err != nil {
				b.Fatal(err)
			}
			cycles = c
		}
		b.ReportMetric(float64(cycles)/batch, "cycles_per_product")
	})
}

// BenchmarkWordMethods compares the Koç-taxonomy word-level Montgomery
// methods (CIOS, SOS, FIOS) at RSA-1024 scale on the host.
func BenchmarkWordMethods(b *testing.B) {
	const l = 1024
	rng := rand.New(rand.NewSource(8))
	n := benchRandOdd(rng, l)
	c, err := mont.NewCIOS(n)
	if err != nil {
		b.Fatal(err)
	}
	x, _ := c.NewOperand(new(big.Int).Rand(rng, n))
	y, _ := c.NewOperand(new(big.Int).Rand(rng, n))
	out := mont.NewNat(c.Words())
	b.Run("CIOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Mul(out, x, y)
		}
	})
	b.Run("SOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulSOS(out, x, y)
		}
	})
	b.Run("FIOS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.MulFIOS(out, x, y)
		}
	})
}

// BenchmarkDualField measures the GF(2^m) Montgomery twin on the NIST
// B-163 field — the Savaş-style dual-field extension: same loop shape,
// carry-free cells, exactly m iterations.
func BenchmarkDualField(b *testing.B) {
	fd, err := gf2.NewField(gf2.FromCoeffs(163, 7, 6, 3, 0))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	x := gf2.NewPoly(162)
	y := gf2.NewPoly(162)
	for i := 0; i <= 162; i++ {
		if rng.Intn(2) == 1 {
			x.SetCoeff(i, 1)
		}
		if rng.Intn(2) == 1 {
			y.SetCoeff(i, 1)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fd.Mont(x, y)
	}
	b.ReportMetric(float64(fd.Iterations()), "iterations")
}

// BenchmarkLadderVsBinary compares Algorithm 3 with the Montgomery
// powering ladder and the 4-bit window method at RSA-512 scale under the
// paper's cycle accounting. Metric: cycles per exponentiation.
func BenchmarkLadderVsBinary(b *testing.B) {
	const l = 512
	rng := rand.New(rand.NewSource(10))
	n := benchRandOdd(rng, l)
	ex, err := expo.New(n, expo.Model)
	if err != nil {
		b.Fatal(err)
	}
	m := new(big.Int).Rand(rng, n)
	e := new(big.Int).Rand(rng, n)
	e.SetBit(e, l-1, 1)

	b.Run("algorithm3", func(b *testing.B) {
		var rep expo.Report
		for i := 0; i < b.N; i++ {
			_, rep, _ = ex.ModExp(m, e)
		}
		b.ReportMetric(float64(rep.TotalCycles), "cycles")
	})
	b.Run("ladder", func(b *testing.B) {
		var rep expo.Report
		for i := 0; i < b.N; i++ {
			_, rep, _ = ex.ModExpLadder(m, e)
		}
		b.ReportMetric(float64(rep.TotalCycles), "cycles")
	})
	b.Run("window4", func(b *testing.B) {
		var rep expo.Report
		for i := 0; i < b.N; i++ {
			_, rep, _ = ex.ModExpWindow(m, e, 4)
		}
		b.ReportMetric(float64(rep.TotalCycles), "cycles")
	})
}

// BenchmarkExpoNetlist runs a complete exponentiation on the gate-level
// exponentiator (the paper's full deliverable in gates) and reports the
// measured cycle count including control overhead.
func BenchmarkExpoNetlist(b *testing.B) {
	const l = 8
	rng := rand.New(rand.NewSource(11))
	n := benchRandOdd(rng, l)
	ref, err := expo.New(n, expo.Model)
	if err != nil {
		b.Fatal(err)
	}
	nl := logic.New()
	p, err := expo.BuildExpoNetlist(nl, l, systolic.Guarded)
	if err != nil {
		b.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		b.Fatal(err)
	}
	m := new(big.Int).Rand(rng, n)
	e := new(big.Int).Rand(rng, n)
	if e.Sign() == 0 {
		e.SetInt64(3)
	}
	cycles := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.SetMany(p.MBus, bits.FromBig(m, l+1))
		sim.SetMany(p.EBus, bits.FromBig(e, l))
		sim.SetMany(p.NBus, bits.FromBig(n, l))
		sim.SetMany(p.RRBus, bits.FromBig(ref.Ctx().RR, l+1))
		sim.Set(p.Start, 1)
		sim.Step()
		sim.Set(p.Start, 0)
		cycles = 1
		for sim.Get(p.Done) == 0 {
			sim.Step()
			cycles++
		}
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkSimEngines compares the two gate-level simulation engines on
// the l=64 MMMC: levelized full evaluation vs event-driven propagation.
func BenchmarkSimEngines(b *testing.B) {
	const l = 64
	build := func() (*logic.Netlist, *mmmc.NetPorts) {
		nl := logic.New()
		p, err := mmmc.BuildNetlist(nl, l, systolic.Guarded)
		if err != nil {
			b.Fatal(err)
		}
		return nl, p
	}
	b.Run("levelized", func(b *testing.B) {
		nl, p := build()
		sim, err := logic.Compile(nl)
		if err != nil {
			b.Fatal(err)
		}
		sim.Set(p.Start, 1)
		sim.Step()
		sim.Set(p.Start, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Step()
		}
	})
	b.Run("event-driven", func(b *testing.B) {
		nl, p := build()
		sim, err := logic.NewEventSim(nl)
		if err != nil {
			b.Fatal(err)
		}
		sim.Set(p.Start, 1)
		sim.Step()
		sim.Set(p.Start, 0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Step()
		}
	})
}
