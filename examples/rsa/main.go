// RSA over the reproduced hardware: the workload the paper's §4.5
// motivates. Generates a key with the repository's own Miller–Rabin,
// encrypts a message through the cycle-accurate simulated circuit, and
// shows how the measured cycle counts land inside Eq. (10)'s bounds.
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"repro/internal/expo"
	"repro/internal/kits"
	"repro/internal/rsa"
)

func main() {
	rng := rand.New(rand.NewSource(2003)) // the paper's year, deterministic demo

	const bits = 48 // small so the cycle-accurate circuit stays fast
	key, err := rsa.GenerateKey(bits, nil, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RSA-%d key: N = %s, E = %s\n", bits, key.N.Text(16), key.E.Text(16))

	msg := big.NewInt(0xC0FFEE)
	fmt.Printf("message: %s\n\n", msg.Text(16))

	// Encrypt through the cycle-accurate simulated MMM circuit.
	c, rep, err := key.Encrypt(msg, kits.Sim)
	if err != nil {
		log.Fatal(err)
	}
	l := rep.L
	fmt.Printf("ciphertext: %s\n", c.Text(16))
	fmt.Printf("exponentiation used %d squares + %d multiplies\n", rep.Squares, rep.Multiplies)
	fmt.Printf("paper cycle model:   %d cycles (pre %d, muls %d, post %d)\n",
		rep.TotalCycles, rep.PreCycles, rep.MulCycles, rep.PostCycles)
	fmt.Printf("simulated circuit:   %d cycles measured in MUL states\n", rep.SimulatedMulCycles)
	fmt.Printf("Eq. (10):            %d ≤ T_modexp ≤ %d\n\n",
		expo.PaperLowerBound(l), expo.PaperUpperBound(l))

	// Decrypt with CRT (two half-size exponentiations).
	back, repD, err := key.DecryptCRT(c, kits.Sim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decrypted: %s (CRT, %d total cycles over both halves)\n",
		back.Text(16), repD.TotalCycles)
	if back.Cmp(msg) != 0 {
		log.Fatal("round trip failed")
	}
	fmt.Println("round trip: OK")
}
