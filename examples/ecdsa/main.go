// ECDSA over the reproduced Montgomery stack: sign and verify a message
// on P-256 where every field and scalar operation runs through the
// paper's Algorithm 2, then cross-verify the signature with the Go
// standard library — the "cryptographic device dealing with both types
// of PKC" the paper's conclusion envisions, speaking the same wire
// format as everyone else.
package main

import (
	stdecdsa "crypto/ecdsa"
	"crypto/elliptic"
	"crypto/sha256"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/ecc"
	"repro/internal/ecdsa"
)

func main() {
	curve, err := ecc.P256()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(0x5EC))

	key, err := ecdsa.GenerateKey(curve, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("P-256 key: Q = (%s…, %s…)\n", key.Qx.Text(16)[:16], key.Qy.Text(16)[:16])

	msg := []byte("Montgomery multiplication without final subtraction")
	r, s, err := ecdsa.Sign(key, msg, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("signature:\n  r = %s\n  s = %s\n", r.Text(16), s.Text(16))

	if !ecdsa.Verify(&key.PublicKey, msg, r, s) {
		log.Fatal("our own verifier rejected the signature")
	}
	fmt.Println("verified with this repository's stack: OK")

	stdPub := &stdecdsa.PublicKey{Curve: elliptic.P256(), X: key.Qx, Y: key.Qy}
	digest := sha256.Sum256(msg)
	if !stdecdsa.Verify(stdPub, digest[:], r, s) {
		log.Fatal("crypto/ecdsa rejected the signature")
	}
	fmt.Println("verified with crypto/ecdsa (stdlib):     OK")

	if ecdsa.Verify(&key.PublicKey, []byte("tampered"), r, s) {
		log.Fatal("tampered message accepted!")
	}
	fmt.Println("tampered message rejected:                OK")
	fmt.Printf("\nfield multiplications consumed: %d (each one Algorithm-2 pass of 3l+4 cycles)\n",
		curve.FieldMulCount())
}
