// Waveform: drives the gate-level systolic array through one Montgomery
// multiplication and writes a VCD trace of its T registers, quotient
// digits and phase toggle — the view a logic analyzer would give of the
// paper's Fig. 2 pipeline. Open the output in GTKWave to watch digits
// t_{i,j} march through the array at clock 2i+j.
package main

import (
	"fmt"
	"log"
	"math/big"
	"os"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mont"
	"repro/internal/systolic"
	"repro/internal/wave"
)

func main() {
	out := "systolic.vcd"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	n := big.NewInt(0xB5)  // l = 8 keeps the trace readable
	x := big.NewInt(0x143) // operands may range up to 2N-1 = 0x169
	y := big.NewInt(0x9C)
	ctx, err := mont.NewCtx(n)
	if err != nil {
		log.Fatal(err)
	}
	l := ctx.L

	nl := logic.New()
	p, err := systolic.BuildArrayNetlist(nl, l, systolic.Guarded)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		log.Fatal(err)
	}

	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	sigs := append([]logic.Signal{p.Xin, p.M, p.Phase}, p.T...)
	rec, err := wave.NewRecorder(f, "systolic_array", nl, sim, sigs)
	if err != nil {
		log.Fatal(err)
	}
	defer rec.Close()

	sim.SetMany(p.Y, bits.FromBig(y, l+1))
	sim.SetMany(p.N, bits.FromBig(n, l))
	sim.Set(p.Clear, 1)
	sim.Step()
	sim.Set(p.Clear, 0)

	xv := bits.FromBig(x, l+1)
	result := bits.New(l + 1)
	for c := 0; c < 3*l+4; c++ {
		sim.Set(p.Xin, xv.Bit(c/2))
		if err := rec.Snapshot(); err != nil {
			log.Fatal(err)
		}
		sim.Step()
		if b := c - (2*l + 3); b >= 0 && b <= l {
			result[b] = sim.Get(p.T[b])
		}
	}
	if err := rec.Snapshot(); err != nil {
		log.Fatal(err)
	}

	want := ctx.Mul(x, y)
	fmt.Printf("Mont(%s, %s) mod 2·%s = %s (reference %s) in %d cycles\n",
		x.Text(16), y.Text(16), n.Text(16), result.Big().Text(16), want.Text(16), 3*l+4)
	if result.Big().Cmp(want) != 0 {
		log.Fatal("simulation diverged from Algorithm 2")
	}
	fmt.Printf("VCD waveform written to %s — %d signals over %d cycles\n", out, len(sigs), 3*l+4)
}
