// Quickstart: one Montgomery modular multiplication through the public
// API, at both fidelity levels, plus the hardware numbers the paper
// reports for this bit length.
package main

import (
	"fmt"
	"log"
	"math/big"

	montsys "repro"
)

func main() {
	// A 32-bit odd modulus (any odd N ≥ 3 works, up to thousands of bits).
	n, _ := new(big.Int).SetString("c90fdaa3", 16)
	x, _ := new(big.Int).SetString("12345678", 16)
	y, _ := new(big.Int).SetString("9abcdef1", 16)

	// Reference-speed multiplier (Algorithm 2 on math/big).
	fast, err := montsys.NewMultiplier(n)
	if err != nil {
		log.Fatal(err)
	}
	p1, err := fast.Mont(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mont(x, y) = x·y·R⁻¹ mod 2N = %s   (R = 2^%d)\n", p1.Text(16), fast.L()+2)

	// Cycle-accurate multiplier: the same product through the simulated
	// systolic-array MMM circuit of the paper's Fig. 2/3.
	sim, err := montsys.NewMultiplier(n, montsys.WithKit(montsys.KitSim))
	if err != nil {
		log.Fatal(err)
	}
	p2, err := sim.Mont(x, y)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated  = %s   in %d clock cycles (3l+4)\n", p2.Text(16), sim.Cycles)
	if p1.Cmp(p2) != 0 {
		log.Fatal("fidelity levels disagree!") // never happens
	}

	// Plain modular multiplication with the domain conversions handled
	// for you.
	prod, err := fast.MulMod(new(big.Int).Mod(x, n), new(big.Int).Mod(y, n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x·y mod N  = %s\n", prod.Text(16))

	// What would this cost on the paper's FPGA?
	hw, err := montsys.Hardware(fast.L())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hardware   = %d slices, Tp %.3f ns, one MMM in %.3f µs (Virtex-E model)\n",
		hw.Mapping.Slices, hw.Mapping.ClockPeriodNs, hw.TMMMUs)
}
