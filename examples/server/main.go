// Server quickstart: boot the serving layer in-process — engine,
// TCP server, pooled client — run single and batched modular
// exponentiations over the wire, show that typed errors survive the
// network, scrape the server metrics, and drain gracefully.
//
// This is the loopback miniature of running cmd/montsysd and pointing
// cmd/loadgen -connect (or your own montsys.Dial client) at it.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/big"
	"net"
	"strings"
	"time"

	montsys "repro"
)

func main() {
	// Engine + collector, exactly as in the concurrency/observability
	// examples: the server registers its series into the same registry.
	col := montsys.NewCollector()
	eng, err := montsys.NewEngine(montsys.WithEngineObserver(col))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	srv, err := montsys.NewServer(eng, montsys.WithServerRegistry(col.Registry()))
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	fmt.Printf("serving on %s\n", ln.Addr())

	// A pooled, retrying client. Dial is lazy — connections are opened
	// on first use and redialed transparently after idle closes.
	cli := montsys.Dial(ln.Addr().String(),
		montsys.WithClientPoolSize(2),
		montsys.WithClientMaxRetries(3))
	defer cli.Close()

	n, _ := new(big.Int).SetString("c90fdaa22168c234c4c6628b80dc1cd1", 16)
	base := big.NewInt(0x1234)
	exp := big.NewInt(0x10001)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// One modexp over the wire, self-checked against math/big.
	v, err := cli.ModExp(ctx, n, base, exp)
	if err != nil {
		log.Fatal(err)
	}
	if want := new(big.Int).Exp(base, exp, n); v.Cmp(want) != 0 {
		log.Fatal("wire result disagrees with math/big") // never happens
	}
	fmt.Printf("base^exp mod N = %s… (matches math/big)\n", v.Text(16)[:16])

	// A batch with a deliberately bad item: the even modulus fails only
	// its own slot, and errors.Is sees the same sentinel a local engine
	// would return — the wire codes preserve the error types.
	even := new(big.Int).Lsh(big.NewInt(1), 64)
	results, err := cli.ModExpBatch(ctx, []montsys.ModExpJob{
		{N: n, Base: base, Exp: exp},
		{N: even, Base: base, Exp: exp},
		{N: n, Base: base, Exp: exp},
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		switch {
		case r.Err == nil:
			fmt.Printf("batch[%d]: ok\n", i)
		case errors.Is(r.Err, montsys.ErrEvenModulus):
			fmt.Printf("batch[%d]: rejected (even modulus), rest of the batch unaffected\n", i)
		default:
			log.Fatalf("batch[%d]: unexpected error %v", i, r.Err)
		}
	}

	// The server series live next to the engine series on one page.
	var page strings.Builder
	if err := col.Registry().WritePrometheus(&page); err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(page.String(), "\n") {
		if (strings.HasPrefix(line, "montsys_server_requests_total") ||
			strings.HasPrefix(line, "montsys_server_connections")) &&
			!strings.HasSuffix(line, " 0") {
			fmt.Println("metric:", line)
		}
	}

	// Graceful drain: stop accepting, finish what was admitted, flush.
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	if err := <-serveDone; err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
