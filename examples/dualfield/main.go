// Dual-field demonstration: the same Montgomery loop serving GF(p) and
// GF(2^m) — the extension the paper's §2 points to (Savaş, Tenca, Koç).
// Runs one multiplication in each field through the respective
// bit-serial cores and shows the cell-level contrast: the GF(2^m) side
// is the GF(p) regular cell with its carry chain gated off, and it needs
// only m iterations where the integer side needs l+2.
package main

import (
	"fmt"
	"log"
	"math/big"

	"repro/internal/gf2"
	"repro/internal/mont"
)

func main() {
	// ---- GF(p): the paper's core ----
	p, _ := new(big.Int).SetString("f1fd", 16)
	ctx, err := mont.NewCtx(p)
	if err != nil {
		log.Fatal(err)
	}
	x, _ := new(big.Int).SetString("1234", 16)
	y, _ := new(big.Int).SetString("abcd", 16)
	fmt.Printf("GF(p), p = %s (l = %d): %d loop iterations (l+2), R = 2^%d\n",
		p.Text(16), ctx.L, ctx.Iterations(), ctx.L+2)
	fmt.Printf("  Mont(%s, %s) = %s\n\n", x.Text(16), y.Text(16), ctx.Mul(x, y).Text(16))

	// ---- GF(2^m): the dual field ----
	f := gf2.FromCoeffs(16, 5, 3, 1, 0) // x^16+x^5+x^3+x+1, irreducible
	fd, err := gf2.NewField(f)
	if err != nil {
		log.Fatal(err)
	}
	a := gf2.FromUint64(0x1234)
	b := gf2.FromUint64(0xABCD)
	fmt.Printf("GF(2^%d), f = %s: %d loop iterations (exactly m — no Walter slack)\n",
		fd.M, f, fd.Iterations())
	prod := fd.Mont(a, b)
	fmt.Printf("  Mont(%s, %s) = %s\n\n", a, b, prod)

	// The dual-field cell: identical hardware, gated carries.
	fmt.Println("dual-field regular cell (tIn=1, x=1, y=1, m=1, n=1, c1=1, c0=1):")
	gfp := gf2.DualRegularCell(1, 1, 1, 1, 1, 1, 1, 1)
	gfb := gf2.DualRegularCell(0, 1, 1, 1, 1, 1, 1, 1)
	fmt.Printf("  fsel=1 (GF(p)):  t=%d c0=%d c1=%d   — full Eq. (4) arithmetic\n", gfp.T, gfp.C0, gfp.C1)
	fmt.Printf("  fsel=0 (GF(2)):  t=%d c0=%d c1=%d   — carries gated, pure XOR\n", gfb.T, gfb.C0, gfb.C1)

	// Cross-check the GF(2^m) result through the dual-cell iteration
	// model (the array datapath) — must agree bit for bit.
	im, err := gf2.NewIterModel(fd, b)
	if err != nil {
		log.Fatal(err)
	}
	viaCells, err := im.RunMul(a)
	if err != nil {
		log.Fatal(err)
	}
	if !viaCells.Equal(prod) {
		log.Fatal("dual-cell datapath diverged!")
	}
	fmt.Println("\ndual-cell array datapath reproduces the field result: OK")
}
