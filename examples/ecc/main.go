// ECC over the reproduced multiplier: the paper's stated future-work
// direction ("implement also an ECC basic operation, i.e. point
// multiplication … all required components are available"). Performs a
// P-256 Diffie–Hellman exchange where every field multiplication is one
// pass of the paper's Algorithm 2, and prices the scalar multiplications
// in simulated hardware time.
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"repro/internal/ecc"
	"repro/internal/fpga"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/systolic"
)

func main() {
	curve, err := ecc.P256()
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(256))

	// Alice and Bob pick scalars and exchange public points.
	da := new(big.Int).Rand(rng, curve.Order)
	db := new(big.Int).Rand(rng, curve.Order)

	curve.ResetFieldMuls()
	qa, err := curve.ScalarBaseMult(da)
	if err != nil {
		log.Fatal(err)
	}
	mulsPerScalar := int(curve.FieldMulCount())
	qb, err := curve.ScalarBaseMult(db)
	if err != nil {
		log.Fatal(err)
	}

	ax, ay, _ := curve.Affine(qa)
	fmt.Printf("Alice's public point: (%s…, %s…)\n", ax.Text(16)[:16], ay.Text(16)[:16])

	// Shared secrets: d_A·Q_B == d_B·Q_A. Use the Montgomery ladder —
	// the uniform-sequence variant matching the paper's side-channel
	// argument.
	sab, err := curve.ScalarMultLadder(qb, da)
	if err != nil {
		log.Fatal(err)
	}
	sba, err := curve.ScalarMultLadder(qa, db)
	if err != nil {
		log.Fatal(err)
	}
	sx1, _, _ := curve.Affine(sab)
	sx2, _, _ := curve.Affine(sba)
	if sx1.Cmp(sx2) != 0 {
		log.Fatal("ECDH secrets disagree")
	}
	fmt.Printf("shared secret x: %s…\n\n", sx1.Text(16)[:16])

	// Price one scalar multiplication on the paper's hardware: every
	// field multiplication is one MMM of 3l+4 cycles at the Virtex-E
	// clock.
	l := curve.P.BitLen()
	nl := logic.New()
	if _, err := mmmc.BuildNetlist(nl, l, systolic.Faithful); err != nil {
		log.Fatal(err)
	}
	mr, err := fpga.VirtexE.Map(nl)
	if err != nil {
		log.Fatal(err)
	}
	cycles := mulsPerScalar * (3*l + 4)
	ms := float64(cycles) * mr.ClockPeriodNs / 1e6
	fmt.Printf("one %d-bit scalar multiplication ≈ %d field muls\n", l, mulsPerScalar)
	fmt.Printf("on the paper's circuit: %d MMM cycles ≈ %.2f ms at Tp = %.3f ns (%d slices)\n",
		cycles, ms, mr.ClockPeriodNs, mr.Slices)
}
