// Throughput: contrasts the paper's folded linear array (Fig. 2 — one
// product in flight, 3l+4 cycles each) with the unfolded 2D array of
// §4.2 (l+2 rows — a new product every 2 cycles). The folding decision
// is the area/throughput trade at the heart of systolic design.
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"

	"repro/internal/bits"
	"repro/internal/mont"
	"repro/internal/systolic"
)

func main() {
	const l = 32
	const batch = 100
	rng := rand.New(rand.NewSource(42))
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), l-1))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	ctx, err := mont.NewCtx(n)
	if err != nil {
		log.Fatal(err)
	}
	y := new(big.Int).Rand(rng, ctx.N2)
	nv, yv := bits.FromBig(n, l), bits.FromBig(y, l+1)

	xs := make([]bits.Vec, batch)
	want := make([]*big.Int, batch)
	for i := range xs {
		x := new(big.Int).Rand(rng, ctx.N2)
		xs[i] = bits.FromBig(x, l+1)
		want[i] = ctx.Mul(x, y)
	}

	// Folded linear array: sequential products.
	lin, err := systolic.NewArray(systolic.Guarded, nv, yv)
	if err != nil {
		log.Fatal(err)
	}
	linCycles := 0
	for i, x := range xs {
		res, c, err := lin.Run(x)
		if err != nil {
			log.Fatal(err)
		}
		if res.Big().Cmp(want[i]) != 0 {
			log.Fatal("linear array wrong")
		}
		linCycles += c
	}

	// Unfolded 2D array: pipelined batch.
	arr2d, err := systolic.NewArray2D(nv, yv)
	if err != nil {
		log.Fatal(err)
	}
	results, totCycles, err := arr2d.RunBatch(xs)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		if r.Big().Cmp(want[i]) != 0 {
			log.Fatal("2D array wrong")
		}
	}

	fmt.Printf("%d Montgomery products, l = %d:\n\n", batch, l)
	fmt.Printf("  folded linear array (Fig. 2):  %6d cycles (%.1f per product, area ~1×)\n",
		linCycles, float64(linCycles)/batch)
	fmt.Printf("  unfolded 2D array   (§4.2):    %6d cycles (%.1f per product, area ~%d×)\n",
		totCycles, float64(totCycles)/batch, l+2)
	fmt.Printf("\nthroughput gain %.0f×, area cost %d× — the trade the paper's folding resolves\n",
		float64(linCycles)/float64(totCycles), l+2)
}
