package montsys

// Cross-stack integration tests: whole-system scenarios wired through
// the public façade and the application packages together, the way a
// downstream user would compose them.

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/ecc"
	"repro/internal/ecdsa"
	"repro/internal/kits"
	"repro/internal/rsa"
	"repro/internal/sca"
)

// A hybrid protocol exchange: RSA-encrypt a session value, ECDSA-sign
// the ciphertext, verify and decrypt on the other side — every modular
// operation across both cryptosystems running on the reproduced
// Montgomery core (the paper's "device dealing with both types of PKC").
func TestHybridProtocolScenario(t *testing.T) {
	rng := rand.New(rand.NewSource(251))

	// Receiver: RSA key.
	rsaKey, err := rsa.GenerateKey(128, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Sender: ECDSA key on P-256.
	curve, err := ecc.P256()
	if err != nil {
		t.Fatal(err)
	}
	sigKey, err := ecdsa.GenerateKey(curve, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Sender side.
	session := new(big.Int).Rand(rng, rsaKey.N)
	ct, _, err := rsaKey.Encrypt(session, kits.Model)
	if err != nil {
		t.Fatal(err)
	}
	r, s, err := ecdsa.Sign(sigKey, ct.Bytes(), rng)
	if err != nil {
		t.Fatal(err)
	}

	// Receiver side.
	if !ecdsa.Verify(&sigKey.PublicKey, ct.Bytes(), r, s) {
		t.Fatal("signature rejected")
	}
	back, _, err := rsaKey.DecryptCRT(ct, kits.Model)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(session) != 0 {
		t.Fatal("session value corrupted")
	}
}

// The façade's simulated multiplier must agree with the full RSA path:
// encrypt with the model, decrypt step by step with façade Mont calls.
func TestFacadeManualExponentiation(t *testing.T) {
	rng := rand.New(rand.NewSource(252))
	n := big.NewInt(0xD0C5) // odd
	m, err := NewMultiplier(n, WithKit(KitSim))
	if err != nil {
		t.Fatal(err)
	}
	base := new(big.Int).Rand(rng, n)
	exp := big.NewInt(0x1D)

	// Hand-rolled square-and-multiply over façade Mont calls.
	a, err := m.ToMont(base)
	if err != nil {
		t.Fatal(err)
	}
	mr := new(big.Int).Set(a)
	for i := exp.BitLen() - 2; i >= 0; i-- {
		if a, err = m.Mont(a, a); err != nil {
			t.Fatal(err)
		}
		if exp.Bit(i) == 1 {
			if a, err = m.Mont(a, mr); err != nil {
				t.Fatal(err)
			}
		}
	}
	got, err := m.FromMont(a)
	if err != nil {
		t.Fatal(err)
	}
	if want := new(big.Int).Exp(base, exp, n); got.Cmp(want) != 0 {
		t.Fatalf("façade exponentiation: got %s want %s", got, want)
	}
	// Every Mont call above cost exactly 3l+4 simulated cycles.
	if m.Cycles != m.Muls*m.CyclesPerMont() {
		t.Errorf("cycle accounting: %d cycles for %d muls", m.Cycles, m.Muls)
	}
}

// End-to-end SCA story: the multiplier that carried the RSA traffic
// above is timing-flat; the naive baseline is not.
func TestScenarioTimingContrast(t *testing.T) {
	rng := rand.New(rand.NewSource(253))
	n := new(big.Int).SetInt64(0xC001)
	mont, err := sca.MeasureMMMTiming(n, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := sca.MeasureInterleavedTiming(n, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !mont.Constant() {
		t.Error("Montgomery timing not constant")
	}
	if naive.Constant() {
		t.Error("baseline timing unexpectedly constant")
	}
}
