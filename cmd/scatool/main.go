// Command scatool runs the §5 side-channel experiments: the timing-
// invariance measurement (Montgomery circuit vs conditional-subtraction
// baseline) and the fixed-vs-random TVLA t-test on the systolic array's
// register-toggle traces.
//
// Usage:
//
//	scatool [-l 16] [-trials 200] [-traces 300] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"

	"repro/internal/sca"
)

func main() {
	l := flag.Int("l", 16, "modulus bit length")
	trials := flag.Int("trials", 200, "multiplications per timing measurement")
	traces := flag.Int("traces", 300, "toggle traces per TVLA group")
	seed := flag.Int64("seed", 1, "rng seed")
	flag.Parse()

	if err := run(*l, *trials, *traces, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "scatool:", err)
		os.Exit(1)
	}
}

func run(l, trials, traces int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	fmt.Printf("modulus N = %s (l = %d)\n\n", n.Text(16), l)

	fmt.Println("== timing (the paper's §5 claim) ==")
	mont, err := sca.MeasureMMMTiming(n, trials, rng)
	if err != nil {
		return err
	}
	fmt.Printf("Montgomery MMM circuit:  %s", mont)
	if mont.Constant() {
		fmt.Printf("  → CONSTANT (always 3l+4 = %d)\n", 3*l+4)
	} else {
		fmt.Printf("  → VARIABLE (unexpected!)\n")
	}
	naive, err := sca.MeasureInterleavedTiming(n, trials, rng)
	if err != nil {
		return err
	}
	fmt.Printf("interleaved baseline:    %s", naive)
	if naive.Constant() {
		fmt.Printf("  → constant (unexpected)\n")
	} else {
		fmt.Printf("  → DATA-DEPENDENT\n")
	}

	fmt.Println("\n== power proxy (TVLA on register-toggle traces) ==")
	fixedY := big.NewInt(1)
	tstat, err := sca.FixedVsRandom(n, fixedY, traces, rng)
	if err != nil {
		return err
	}
	maxT := sca.MaxAbs(tstat)
	fmt.Printf("fixed-vs-random Welch t over %d cycles: max |t| = %.2f (threshold %.1f)\n",
		len(tstat), maxT, sca.TVLAThreshold)
	if maxT > sca.TVLAThreshold {
		fmt.Println("→ toggle activity LEAKS the operand: constant time ≠ flat power.")
		fmt.Println("  (The paper's claim concerns timing only; this quantifies the boundary.)")
	} else {
		fmt.Println("→ no first-order toggle leak detected at this trace count.")
	}
	return nil
}
