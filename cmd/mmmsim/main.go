// Command mmmsim runs one Montgomery modular multiplication through the
// cycle-accurate simulated MMM circuit and reports the result and cycle
// count; optionally it also runs the gate-level netlist and dumps a VCD
// waveform of the systolic array's registers.
//
// Usage:
//
//	mmmsim -n <hex modulus> -x <hex> -y <hex> [-variant guarded|faithful]
//	       [-gate] [-vcd trace.vcd]
//
// Example:
//
//	mmmsim -n f1f1 -x 1234 -y beef -gate -vcd /tmp/mmm.vcd
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/mont"
	"repro/internal/systolic"
	"repro/internal/wave"
)

func main() {
	nHex := flag.String("n", "f1f1", "modulus N (hex, odd)")
	xHex := flag.String("x", "1234", "operand x (hex, < 2N)")
	yHex := flag.String("y", "beef", "operand y (hex, < 2N)")
	variantName := flag.String("variant", "guarded", "array variant: guarded or faithful")
	gate := flag.Bool("gate", false, "also run the gate-level netlist")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of the gate-level run to this file")
	flag.Parse()

	if err := run(*nHex, *xHex, *yHex, *variantName, *gate, *vcdPath); err != nil {
		fmt.Fprintln(os.Stderr, "mmmsim:", err)
		os.Exit(1)
	}
}

func run(nHex, xHex, yHex, variantName string, gate bool, vcdPath string) error {
	n, ok := new(big.Int).SetString(nHex, 16)
	if !ok {
		return fmt.Errorf("invalid modulus %q", nHex)
	}
	x, ok := new(big.Int).SetString(xHex, 16)
	if !ok {
		return fmt.Errorf("invalid x %q", xHex)
	}
	y, ok := new(big.Int).SetString(yHex, 16)
	if !ok {
		return fmt.Errorf("invalid y %q", yHex)
	}
	var variant systolic.Variant
	switch variantName {
	case "guarded":
		variant = systolic.Guarded
	case "faithful":
		variant = systolic.Faithful
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}

	ctx, err := mont.NewCtx(n)
	if err != nil {
		return err
	}
	l := ctx.L
	fmt.Printf("modulus N = %s (l = %d bits), R = 2^%d, variant = %s\n",
		n.Text(16), l, l+2, variant)

	c, err := mmmc.New(l, variant)
	if err != nil {
		return err
	}
	res, cycles, err := c.Run(bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(n, l))
	if err != nil {
		return err
	}
	want := ctx.Mul(x, y)
	fmt.Printf("behavioural: Mont(x,y) = %s  (%d clock cycles = 3l+4)\n", res.Big().Text(16), cycles)
	fmt.Printf("reference:   Mont(x,y) = %s  (Algorithm 2, math/big)\n", want.Text(16))
	if res.Big().Cmp(want) != 0 {
		fmt.Printf("NOTE: mismatch — with the faithful variant this demonstrates the\n")
		fmt.Printf("      leftmost-cell overflow hazard (see EXPERIMENTS.md); dropped carries: %d\n",
			c.DroppedCarries())
	}

	if !gate && vcdPath == "" {
		return nil
	}

	nl := logic.New()
	p, err := mmmc.BuildNetlist(nl, l, variant)
	if err != nil {
		return err
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		return err
	}
	var rec *wave.Recorder
	if vcdPath != "" {
		f, err := os.Create(vcdPath)
		if err != nil {
			return err
		}
		defer f.Close()
		var sigs []logic.Signal
		for j := range p.Array.T {
			sigs = append(sigs, p.Array.T[j])
		}
		sigs = append(sigs, p.Done, p.Array.M, p.Array.Phase)
		rec, err = wave.NewRecorder(f, "mmmc", nl, sim, sigs)
		if err != nil {
			return err
		}
		defer rec.Close()
	}

	sim.SetMany(p.XBus, bits.FromBig(x, l+1))
	sim.SetMany(p.YBus, bits.FromBig(y, l+1))
	sim.SetMany(p.NBus, bits.FromBig(n, l))
	sim.Set(p.Start, 1)
	sim.Step()
	sim.Set(p.Start, 0)
	gateCycles := 0
	for sim.Get(p.Done) == 0 {
		if rec != nil {
			if err := rec.Snapshot(); err != nil {
				return err
			}
		}
		sim.Step()
		gateCycles++
		if gateCycles > 4*l+16 {
			return fmt.Errorf("gate-level simulation did not complete")
		}
	}
	gateRes := sim.GetVec(p.Result)
	fmt.Printf("gate-level:  Mont(x,y) = %s  (%d clock cycles, %d gates, %d FFs)\n",
		gateRes.Big().Text(16), gateCycles, nl.NumGates(), nl.NumDFFs())
	if vcdPath != "" {
		fmt.Printf("waveform written to %s\n", vcdPath)
	}
	return nil
}
