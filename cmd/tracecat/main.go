// Command tracecat merges the Chrome trace-event exports of several
// montsys processes into one Perfetto-loadable document, and can assert
// that the merge contains a complete cross-process trace tree — the
// end-to-end check the cluster CI job runs.
//
// Usage:
//
//	tracecat [-o merged.json] [-assert-tree] SOURCE [SOURCE...]
//
// Each SOURCE is a file path or an http(s) URL — typically the /trace
// endpoints of loadgen, montsyslb and every montsysd, or files saved
// from them. Every process exports with absolute wall-clock
// microsecond timestamps, so merged slices line up on one timeline
// without any clock rebasing; process_name metadata (Tracer.SetProcess)
// keeps each daemon's tracks grouped and labelled. Sources whose pids
// collide (containers often report pid 1) are remapped to synthetic
// pids so their tracks never fuse.
//
// -assert-tree scans the merge for sampled spans (those carrying
// trace_id args) and requires at least one trace id whose spans form a
// complete tree:
//
//   - a client span ("call/..."), a route-attempt span ("route/..."),
//     a server span ("server/...") and an engine execution span with
//     its compute kit, all sharing the trace id;
//   - every parent_id resolving to another span of the same trace
//     (no orphans — the cross-process propagation never broke);
//   - spans from at least two distinct processes.
//
// On success it prints the witness trace id and exits 0; otherwise it
// reports what every candidate trace was missing and exits 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
)

// event is one trace event, decoded loosely: unknown fields survive a
// round-trip nowhere (the merge re-encodes only what it knows), so the
// struct mirrors internal/obs.traceEvent exactly.
type event struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts,omitempty"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type document struct {
	TraceEvents     []event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit,omitempty"`
}

func main() {
	out := flag.String("o", "", "write the merged trace here (default stdout)")
	assertTree := flag.Bool("assert-tree", false, "fail unless the merge holds a complete cross-process trace tree")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "tracecat: no sources (file paths or /trace URLs)")
		os.Exit(2)
	}
	if err := run(flag.Args(), *out, *assertTree); err != nil {
		fmt.Fprintln(os.Stderr, "tracecat:", err)
		os.Exit(1)
	}
}

func run(sources []string, out string, assertTree bool) error {
	var merged []event
	usedPids := map[int]bool{}
	nextPid := 100000 // synthetic pids for collision remaps
	for _, src := range sources {
		doc, err := load(src)
		if err != nil {
			return fmt.Errorf("%s: %w", src, err)
		}
		// Remap this source's pids away from ones earlier sources used,
		// consistently within the source, so two daemons that both
		// report pid 1 don't fuse into one process group.
		remap := map[int]int{}
		for _, ev := range doc.TraceEvents {
			if _, seen := remap[ev.Pid]; seen {
				continue
			}
			p := ev.Pid
			if usedPids[p] {
				for usedPids[nextPid] {
					nextPid++
				}
				p = nextPid
				nextPid++
			}
			remap[ev.Pid] = p
		}
		for _, ev := range doc.TraceEvents {
			ev.Pid = remap[ev.Pid]
			merged = append(merged, ev)
		}
		for _, p := range remap {
			usedPids[p] = true
		}
	}

	sort.SliceStable(merged, func(i, j int) bool {
		// Metadata first, then timeline order — what trace viewers expect.
		mi, mj := merged[i].Phase == "M", merged[j].Phase == "M"
		if mi != mj {
			return mi
		}
		return merged[i].Ts < merged[j].Ts
	})

	w := io.Writer(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := json.NewEncoder(w).Encode(document{merged, "ms"}); err != nil {
		return err
	}

	if assertTree {
		return checkTree(merged)
	}
	return nil
}

// load reads one source — a local file or an http(s) URL.
func load(src string) (*document, error) {
	var r io.ReadCloser
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, err := http.Get(src)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			return nil, fmt.Errorf("status %s", resp.Status)
		}
		r = resp.Body
	} else {
		f, err := os.Open(src)
		if err != nil {
			return nil, err
		}
		r = f
	}
	defer r.Close()
	var doc document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("not a trace-event document: %w", err)
	}
	return &doc, nil
}

// traceInfo accumulates everything known about one trace id across the
// merged events.
type traceInfo struct {
	spanIDs map[string]bool // every span_id seen
	parents map[string]bool // every non-empty parent_id seen
	pids    map[int]bool
	layers  map[string]bool // "client" | "route" | "server" | "engine"
}

// checkTree verifies at least one sampled trace forms a complete
// client→route→server→engine tree across ≥ 2 processes with no orphan
// parents.
func checkTree(events []event) error {
	traces := map[string]*traceInfo{}
	for _, ev := range events {
		if ev.Phase != "X" || ev.Args == nil {
			continue
		}
		tid, _ := ev.Args["trace_id"].(string)
		if tid == "" {
			continue
		}
		ti := traces[tid]
		if ti == nil {
			ti = &traceInfo{
				spanIDs: map[string]bool{}, parents: map[string]bool{},
				pids: map[int]bool{}, layers: map[string]bool{},
			}
			traces[tid] = ti
		}
		if sid, _ := ev.Args["span_id"].(string); sid != "" {
			ti.spanIDs[sid] = true
		}
		if pid, _ := ev.Args["parent_id"].(string); pid != "" {
			ti.parents[pid] = true
		}
		ti.pids[ev.Pid] = true
		switch {
		case strings.HasPrefix(ev.Name, "call/"):
			ti.layers["client"] = true
		case strings.HasPrefix(ev.Name, "route/"):
			ti.layers["route"] = true
		case strings.HasPrefix(ev.Name, "server/"):
			ti.layers["server"] = true
		case ev.Cat == "exec":
			ti.layers["engine"] = true
		}
	}
	if len(traces) == 0 {
		return fmt.Errorf("assert-tree: no sampled spans (trace_id args) in any source")
	}

	wantLayers := []string{"client", "route", "server", "engine"}
	var problems []string
	for tid, ti := range traces {
		var missing []string
		for _, l := range wantLayers {
			if !ti.layers[l] {
				missing = append(missing, l)
			}
		}
		orphans := 0
		for p := range ti.parents {
			if !ti.spanIDs[p] {
				orphans++
			}
		}
		if len(missing) == 0 && orphans == 0 && len(ti.pids) >= 2 {
			fmt.Fprintf(os.Stderr, "assert-tree: ok — trace %s spans %d processes, layers client+route+server+engine, %d spans\n",
				tid, len(ti.pids), len(ti.spanIDs))
			return nil
		}
		detail := fmt.Sprintf("trace %s: %d spans over %d process(es)", tid, len(ti.spanIDs), len(ti.pids))
		if len(missing) > 0 {
			detail += ", missing layers " + strings.Join(missing, "+")
		}
		if orphans > 0 {
			detail += fmt.Sprintf(", %d orphan parent(s)", orphans)
		}
		problems = append(problems, detail)
	}
	sort.Strings(problems)
	if len(problems) > 8 {
		problems = append(problems[:8], fmt.Sprintf("... and %d more", len(problems)-8))
	}
	return fmt.Errorf("assert-tree: no complete cross-process tree among %d trace(s):\n  %s",
		len(traces), strings.Join(problems, "\n  "))
}
