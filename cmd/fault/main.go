// Command fault runs a single-stuck-at fault campaign on the gate-level
// MMM circuit: every gate and flip-flop output is pinned to 0 and to 1 in
// turn, a functional test of a few multiplications runs against each
// faulty machine, and the campaign reports how many defects the test
// detects — the manufacturing-test view of the paper's design.
//
// Usage:
//
//	fault [-l 8] [-vectors 4] [-variant guarded|faithful] [-seed 1] [-list]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/systolic"
)

func main() {
	l := flag.Int("l", 8, "modulus bit length")
	vectors := flag.Int("vectors", 4, "multiplications in the functional test")
	variantName := flag.String("variant", "guarded", "cell variant: guarded or faithful")
	seed := flag.Int64("seed", 1, "rng seed for the test vectors")
	list := flag.Bool("list", false, "list undetected fault sites")
	flag.Parse()

	if err := run(*l, *vectors, *variantName, *seed, *list); err != nil {
		fmt.Fprintln(os.Stderr, "fault:", err)
		os.Exit(1)
	}
}

func run(l, vectors int, variantName string, seed int64, list bool) error {
	var variant systolic.Variant
	switch variantName {
	case "guarded":
		variant = systolic.Guarded
	case "faithful":
		variant = systolic.Faithful
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}
	rng := rand.New(rand.NewSource(seed))
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)

	nl := logic.New()
	p, err := mmmc.BuildNetlist(nl, l, variant)
	if err != nil {
		return err
	}

	type vec struct{ x, y *big.Int }
	tests := make([]vec, vectors)
	n2 := new(big.Int).Lsh(n, 1)
	for i := range tests {
		tests[i] = vec{new(big.Int).Rand(rng, n2), new(big.Int).Rand(rng, n2)}
	}

	driver := func(s *logic.Sim) []bits.Vec {
		var obs []bits.Vec
		for _, tv := range tests {
			s.SetMany(p.XBus, bits.FromBig(tv.x, l+1))
			s.SetMany(p.YBus, bits.FromBig(tv.y, l+1))
			s.SetMany(p.NBus, bits.FromBig(n, l))
			s.Set(p.Start, 1)
			s.Step()
			s.Set(p.Start, 0)
			for c := 0; c < 3*l+4; c++ {
				s.Step()
			}
			obs = append(obs, append(s.GetVec(p.Result), s.Get(p.Done)))
		}
		return obs
	}

	faults := logic.AllStuckAtFaults(nl)
	fmt.Printf("MMMC l=%d (%s): %d gates, %d flip-flops, %d fault sites\n",
		l, variant, nl.NumGates(), nl.NumDFFs(), len(faults))
	fmt.Printf("functional test: %d multiplications mod %s\n\n", vectors, n.Text(16))

	rep, err := logic.RunFaultCampaign(nl, faults, driver)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if list {
		fmt.Println("\nundetected sites:")
		for _, f := range rep.Undetected {
			fmt.Printf("  %s (%s)\n", f, nl.NameOf(f.Net))
		}
	}
	return nil
}
