// Command montsysd is the network daemon: it boots a multi-core engine
// and serves it over TCP with the montsys binary protocol — the full
// client→network→engine→systolic-core path in one process.
//
// Usage:
//
//	montsysd [-listen :7077] [-workers N] [-kit model|sim|cios|big|auto]
//	         [-variant guarded|faithful] [-queue 0] [-cache 128]
//	         [-inflight 0] [-idle 2m] [-drain 30s] [-frame-timeout 10s]
//	         [-metrics :9090] [-trace 4096]
//	         [-wide-events stderr|stdout|PATH]
//	         [-slo-latency 500ms] [-slo-target 0.999]
//	         [-integrity] [-integrity-sample 1] [-integrity-recompute]
//	         [-fault-rate 0] [-fault-seed 1] [-fault-cores 0,2]
//	         [-sign-blinding=true] [-qos SPEC|@FILE]
//	         [-register lb1:7070,lb2:7070] [-advertise host:port] [-zone Z]
//
// -register turns on self-registration: the daemon announces itself to
// each named montsyslb with the wire protocol's join op (re-announced
// every 15s — registration is idempotent, so this doubles as liveness
// against a balancer restart) and sends a goodbye to each balancer when
// it starts draining, so its warm per-modulus contexts hand over
// gracefully instead of vanishing. -advertise is the address backends
// are told to dial (defaults to the listen address when it names a
// concrete host); -zone labels the daemon's failure domain for the
// balancer's zone-aware routing.
//
// -frame-timeout is the slow-loris guard: once a request frame's first
// byte arrives, the whole frame must arrive within the budget or the
// connection is cut (10s default; 0 disables). Idle connections between
// frames are governed by -idle alone.
//
// -qos arms the multi-tenant QoS plane: per-tenant token-bucket rate
// limits, weighted concurrency shares over the in-flight budget, and
// priority-lane scheduling in the engine (tenants' classes ride the
// wire). The spec grammar is
// "tenant:rate=R,burst=B,weight=W,class=C;..." with "*" as the default
// row, or "@path" to load the same grammar from a file. Per-tenant
// state is served on /quotaz (with -metrics) and the montsys_qos_*
// series land on /metrics.
//
// The daemon serves the signing ops (RSA keygen/sign/verify, ECDSA
// sign/batch-verify) alongside the compute ops. -sign-blinding=false
// turns off message/exponent blinding on the private-key paths — a lab
// configuration for side-channel trace capture (the SCA regression gate
// uses it as its positive control); production leaves it on.
//
// -integrity arms the engine's per-operation result verification (see
// montsys.WithEngineIntegrityCheck). -fault-rate > 0 wires in the
// deterministic fault injector — a chaos backend that corrupts its own
// results on purpose. With recompute on (the default) the damage is
// healed internally and only metrics show it; with
// -integrity-recompute=false corrupted jobs answer with the integrity
// wire code, which a cluster front end turns into a free failover —
// the configuration the CI chaos job runs.
//
// The daemon drains gracefully on SIGTERM/SIGINT: it stops accepting
// connections, answers requests that arrive mid-drain with the
// draining code, finishes everything already admitted (bounded by
// -drain), flushes, and exits 0. A second signal aborts the drain and
// tears down immediately.
//
// -kit picks the compute kit every core runs (model — the paper's
// closed-form cycle accounting; sim — the gate-level radix-2 systolic
// array; cios — the radix-2^64 CIOS fast path; big — the math/big
// oracle; auto — per-job microbenchmark-driven selection). The older
// -mode flag remains as a shim: -mode simulate is -kit sim.
//
// With -metrics the observability endpoints of PR 2 are served too:
// /metrics carries the engine series and the server series
// (montsys_server_connections, montsys_server_inflight,
// montsys_server_requests_total{op,code}, montsys_server_request_seconds)
// on one page, because the server collects into the engine collector's
// registry. -metrics also arms the SLO plane: per-op availability and
// latency objectives (-slo-latency, -slo-target) with rolling 5m/1h
// burn rates on /metrics and the human /statusz page.
//
// Sampled requests — those arriving on the traced wire ops with the
// sampled bit set — additionally record server and engine spans into
// the /trace ring (joined by trace id to the caller's spans; merge the
// exports with cmd/tracecat) and, with -wide-events, emit one wide
// JSON log line per request per layer.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	montsys "repro"
)

func main() {
	listen := flag.String("listen", ":7077", "serve the binary protocol on this address")
	workers := flag.Int("workers", 0, "engine worker cores (0 = GOMAXPROCS)")
	kitName := flag.String("kit", "", "compute kit: model | sim | cios | big | auto (default model, or sim under -mode simulate)")
	modeName := flag.String("mode", "model", "deprecated: execution mode model | simulate (use -kit)")
	variantName := flag.String("variant", "guarded", "array variant for the sim kit: guarded | faithful")
	queue := flag.Int("queue", 0, "engine queue depth (0 = engine default)")
	cache := flag.Int("cache", 128, "per-modulus context LRU size")
	inflight := flag.Int("inflight", 0, "max in-flight requests before ErrOverloaded (0 = 4× workers)")
	idle := flag.Duration("idle", 2*time.Minute, "close connections idle this long (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /statusz, /debug/pprof and /trace on this address")
	traceCap := flag.Int("trace", 4096, "span ring-buffer capacity for /trace (with -metrics)")
	wideDest := flag.String("wide-events", "", "wide-event request log destination: stderr | stdout | file path (empty disables)")
	sloLatency := flag.Duration("slo-latency", 500*time.Millisecond, "per-op latency SLO objective (with -metrics)")
	sloTarget := flag.Float64("slo-target", 0.999, "SLO success-ratio target for availability and latency objectives")
	integrity := flag.Bool("integrity", false, "verify every result before answering (quarantine + recompute on mismatch)")
	integritySample := flag.Float64("integrity-sample", 1, "fraction of exponentiations fully re-verified (with -integrity)")
	integrityRecompute := flag.Bool("integrity-recompute", true, "recompute corrupted jobs instead of answering with the integrity code")
	faultRate := flag.Float64("fault-rate", 0, "inject bit-flip faults into this fraction of core results (chaos testing)")
	faultSeed := flag.Int64("fault-seed", 1, "deterministic seed for -fault-rate")
	faultCores := flag.String("fault-cores", "", "comma-separated worker ids to fault (default all)")
	signBlinding := flag.Bool("sign-blinding", true, "blind the signing service's private-key paths (disable only for SCA lab capture)")
	qosSpec := flag.String("qos", "", "per-tenant QoS spec \"tenant:rate=R,burst=B,weight=W,class=C;...\" or @file (empty disables)")
	frameTimeout := flag.Duration("frame-timeout", 10*time.Second, "per-frame arrival budget once the first byte lands — slow-loris guard (0 disables)")
	register := flag.String("register", "", "comma-separated montsyslb addresses to self-register with (empty disables)")
	advertise := flag.String("advertise", "", "address to register as (default: the listen address, when concrete)")
	zone := flag.String("zone", "", "failure-domain label announced on registration")
	flag.Parse()

	fc := faultConfig{rate: *faultRate, seed: *faultSeed, cores: *faultCores,
		integrity: *integrity, sample: *integritySample, recompute: *integrityRecompute}
	oc := obsConfig{metricsAddr: *metricsAddr, traceCap: *traceCap, wideDest: *wideDest,
		sloLatency: *sloLatency, sloTarget: *sloTarget}
	rc := regConfig{balancers: *register, advertise: *advertise, zone: *zone}
	if err := run(*listen, *workers, *kitName, *modeName, *variantName, *queue, *cache,
		*inflight, *idle, *drain, *frameTimeout, *signBlinding, *qosSpec, oc, fc, rc); err != nil {
		fmt.Fprintln(os.Stderr, "montsysd:", err)
		os.Exit(1)
	}
}

// obsConfig carries the observability flags into run.
type obsConfig struct {
	metricsAddr string
	traceCap    int
	wideDest    string
	sloLatency  time.Duration
	sloTarget   float64
}

// wideWriter opens the wide-event destination. The returned closer is
// nil for the stream destinations (and when disabled).
func (oc obsConfig) wideWriter() (*montsys.WideWriter, *os.File, error) {
	switch oc.wideDest {
	case "":
		return nil, nil, nil
	case "stderr":
		return montsys.NewWideWriter(os.Stderr), nil, nil
	case "stdout":
		return montsys.NewWideWriter(os.Stdout), nil, nil
	default:
		f, err := os.OpenFile(oc.wideDest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wide-events log: %w", err)
		}
		return montsys.NewWideWriter(f), f, nil
	}
}

// faultConfig carries the chaos/integrity flags into run.
type faultConfig struct {
	rate      float64
	seed      int64
	cores     string
	integrity bool
	sample    float64
	recompute bool
}

// engineOptions translates the fault/integrity flags into engine
// options: the fault injector simulating a flaky core, and the
// integrity checks that keep its corruption from reaching clients.
func (fc faultConfig) engineOptions() ([]montsys.EngineOption, error) {
	var opts []montsys.EngineOption
	if fc.rate > 0 {
		fOpts := []montsys.FaultOption{
			montsys.WithFaultRate(fc.rate),
			montsys.WithFaultSeed(fc.seed),
			montsys.WithFaultBitFlip(-1),
		}
		if fc.cores != "" {
			var ids []int
			for _, s := range strings.Split(fc.cores, ",") {
				id, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					return nil, fmt.Errorf("bad -fault-cores entry %q: %w", s, err)
				}
				ids = append(ids, id)
			}
			fOpts = append(fOpts, montsys.WithFaultCores(ids...))
		}
		opts = append(opts, montsys.WithEngineFaultInjector(montsys.NewFaultInjector(fOpts...)))
	}
	if fc.integrity {
		opts = append(opts,
			montsys.WithEngineIntegrityCheck(fc.sample),
			montsys.WithEngineIntegrityRecompute(fc.recompute))
	}
	return opts, nil
}

// regConfig carries the self-registration flags into run.
type regConfig struct {
	balancers string // comma-separated montsyslb addresses
	advertise string // address to register as
	zone      string // failure-domain label
}

// registrar keeps the daemon registered with one balancer: an immediate
// join, re-announced every 15s (joins are idempotent, so the cadence
// doubles as liveness against balancer restarts), and a goodbye when
// the daemon starts draining.
type registrar struct {
	clients []*montsys.Client
	addrs   []string
	adv     string
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

// startRegistrar resolves the advertised address and begins announcing
// to every balancer in rc. Returns nil (no-op) when -register is empty.
func startRegistrar(rc regConfig, lnAddr net.Addr) (*registrar, error) {
	var lbs []string
	for _, a := range strings.Split(rc.balancers, ",") {
		if a = strings.TrimSpace(a); a != "" {
			lbs = append(lbs, a)
		}
	}
	if len(lbs) == 0 {
		return nil, nil
	}
	adv := rc.advertise
	if adv == "" {
		adv = lnAddr.String()
		host, _, err := net.SplitHostPort(adv)
		if err != nil || host == "" {
			return nil, fmt.Errorf("-register needs -advertise: listen address %q has no host", adv)
		}
		if ip := net.ParseIP(host); ip != nil && ip.IsUnspecified() {
			return nil, fmt.Errorf("-register needs -advertise: listening on the unspecified address %q", adv)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &registrar{addrs: lbs, adv: adv, cancel: cancel}
	for _, lb := range lbs {
		cl := montsys.Dial(lb)
		r.clients = append(r.clients, cl)
		r.wg.Add(1)
		go func(lb string, cl *montsys.Client) {
			defer r.wg.Done()
			announced := false
			t := time.NewTicker(15 * time.Second)
			defer t.Stop()
			for {
				jctx, jcancel := context.WithTimeout(ctx, 5*time.Second)
				n, err := cl.Join(jctx, adv, rc.zone)
				jcancel()
				if err == nil && !announced {
					announced = true
					fmt.Printf("montsysd: registered with %s as %s (%d members)\n", lb, adv, n)
				}
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
			}
		}(lb, cl)
	}
	return r, nil
}

// goodbye deregisters from every balancer (best effort, bounded) and
// stops the announce loops. Called at the start of a drain, BEFORE the
// server stops answering: the balancers pull this daemon out of new
// routing while its in-flight work completes, and its warm contexts
// hand over through the balancers' handover window.
func (r *registrar) goodbye() {
	if r == nil {
		return
	}
	r.cancel()
	r.wg.Wait()
	for i, cl := range r.clients {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if _, err := cl.Goodbye(ctx, r.adv); err != nil {
			fmt.Fprintf(os.Stderr, "montsysd: goodbye to %s: %v\n", r.addrs[i], err)
		}
		cancel()
		cl.Close()
	}
}

func run(listen string, workers int, kitName, modeName, variantName string, queue, cache,
	inflight int, idle, drain, frameTimeout time.Duration, signBlinding bool, qosSpec string,
	oc obsConfig, fc faultConfig, rc regConfig) error {
	// -kit wins when given; otherwise the deprecated -mode flag picks
	// the matching kit so old invocations behave identically.
	if kitName == "" {
		switch modeName {
		case "model":
			kitName = "model"
		case "simulate":
			kitName = "sim"
		default:
			return fmt.Errorf("unknown mode %q", modeName)
		}
	}
	kit, err := montsys.ParseKit(kitName)
	if err != nil {
		return err
	}
	var variant montsys.Variant
	switch variantName {
	case "guarded":
		variant = montsys.Guarded
	case "faithful":
		variant = montsys.Faithful
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}

	wide, wideFile, err := oc.wideWriter()
	if err != nil {
		return err
	}
	if wideFile != nil {
		defer wideFile.Close()
	}

	col := montsys.NewCollector(montsys.WithTracing(oc.traceCap),
		montsys.WithCollectorWideEvents(wide))
	col.Tracer().SetProcess("montsysd")
	engOpts := []montsys.EngineOption{
		montsys.WithEngineKit(kit),
		montsys.WithEngineArrayVariant(variant),
		montsys.WithEngineCtxCacheSize(cache),
		montsys.WithEngineObserver(col),
	}
	if workers > 0 {
		engOpts = append(engOpts, montsys.WithEngineWorkers(workers))
	}
	if queue > 0 {
		engOpts = append(engOpts, montsys.WithEngineQueueDepth(queue))
	}
	fcOpts, err := fc.engineOptions()
	if err != nil {
		return err
	}
	engOpts = append(engOpts, fcOpts...)
	var plane *montsys.QoSPlane
	if qosSpec != "" {
		qcfg, err := montsys.ParseQoSSpec(qosSpec)
		if err != nil {
			return fmt.Errorf("-qos: %w", err)
		}
		// The concurrency shares divide the same in-flight budget the
		// server's admission gate enforces (mirrors its 4×workers
		// default; the plane must exist before the engine so the lane
		// scheduler reports sheds and depths into its metrics).
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		budget := inflight
		if budget <= 0 {
			budget = 4 * w
		}
		plane = montsys.NewQoSPlane(qcfg, budget, col.Registry())
		engOpts = append(engOpts, montsys.WithEngineQoSObserver(plane))
	}
	eng, err := montsys.NewEngine(engOpts...)
	if err != nil {
		return err
	}
	defer eng.Close()
	col.SetEngineInfo(eng.Workers(), kit.String(), fmt.Sprint(variant))

	srvOpts := []montsys.ServerOption{
		montsys.WithServerIdleTimeout(idle),
		montsys.WithServerFrameTimeout(frameTimeout),
		montsys.WithServerRegistry(col.Registry()),
		montsys.WithServerTracer(col.Tracer()),
		montsys.WithServerWideEvents(wide),
		montsys.WithServerSignService(montsys.NewSignService(eng,
			montsys.WithSignBlinding(signBlinding))),
	}
	if inflight > 0 {
		srvOpts = append(srvOpts, montsys.WithServerMaxInflight(inflight))
	}
	if plane != nil {
		srvOpts = append(srvOpts, montsys.WithServerQoS(plane))
	}
	srv, err := montsys.NewServer(eng, srvOpts...)
	if err != nil {
		return err
	}

	if oc.metricsAddr != "" {
		mln, err := net.Listen("tcp", oc.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		slo := montsys.NewSLOTracker(col.Registry(), 0)
		srv.RegisterSLOs(slo, oc.sloLatency, oc.sloTarget)
		slo.Start()
		defer slo.Close()
		fmt.Printf("montsysd: observability on http://%s/ (/metrics, /statusz, /quotaz, /debug/pprof/, /trace)\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, montsys.NewQoSObsMux(col.Registry(), col.Tracer(), slo, plane)); err != nil {
				fmt.Fprintln(os.Stderr, "montsysd: metrics server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("montsysd: serving on %s (workers=%d kit=%s)\n", ln.Addr(), eng.Workers(), kit)

	reg, err := startRegistrar(rc, ln.Addr())
	if err != nil {
		ln.Close()
		return err
	}

	// First SIGTERM/SIGINT starts the graceful drain; a second aborts it.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop() // restore default handling: a second signal kills the drain
	// Deregister first: the balancers stop routing new work here while
	// the drain below finishes what is already admitted.
	reg.goodbye()
	fmt.Printf("montsysd: draining (budget %s)...\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "montsysd: drain incomplete:", err)
	} else {
		fmt.Println("montsysd: drained cleanly")
	}
	return <-serveErr
}
