// Command montsyslb is the cluster tier's front door: a load-balancing
// proxy that speaks the montsysd wire protocol on one side and routes
// to a fleet of montsysd backends on the other. Clients keep using the
// ordinary montsys.Client — the proxy is indistinguishable from a very
// reliable, very large montsysd.
//
// Usage:
//
//	montsyslb -backends host1:7077[=zone],host2:7077[,...] | @FILE
//	          [-listen :7070] [-inflight 256] [-idle 2m] [-drain 30s]
//	          [-probe 1s] [-affinity] [-hedge] [-budget 0.1] [-burst 16]
//	          [-integrity-eject 3] [-metrics :9091] [-trace 4096]
//	          [-wide-events stderr|stdout|PATH]
//	          [-slo-latency 500ms] [-slo-target 0.999]
//	          [-qos SPEC|@FILE] [-frame-timeout 10s]
//	          [-zone Z] [-handover 30s] [-handover-warm 256]
//	          [-max-members 64] [-backends-watch 2s]
//
// Membership is dynamic. -backends seeds the pool — inline
// "addr[=zone]" entries, or "@path" to load the same grammar from a
// file (one entry per line, #-comments) — and the pool then changes at
// runtime three ways: backends started with montsysd -register
// announce themselves over the wire's join op (and say goodbye when
// they drain); operators edit the @file, which is polled every
// -backends-watch and diffed against the live pool (0 disables the
// watch); and -max-members bounds how large runtime joins can grow the
// table. A joined backend enters rotation only after its first
// successful health probe, so a bogus registration costs nothing.
//
// Membership changes rebalance gradually, not instantly: a modulus
// whose rendezvous home moves keeps being served by its OLD home — the
// one holding its warm Montgomery context — for the -handover window,
// while the balancer warms the NEW home with at most -handover-warm
// background duplicates of live traffic. When the window closes,
// routing flips to the settled assignment: no cold-cache latency cliff
// on join/leave. montsys_cluster_handover_* series measure every piece
// (dual-routed requests, warm-ups = context churn, suppressed
// warm-ups).
//
// -zone names this balancer's failure domain: ties in least-loaded
// routing prefer same-zone backends (labeled via "addr=zone" or the
// join op), and hedges never launch into a zone that is visibly
// absorbing failures.
//
// -frame-timeout arms the slow-loris guard on the proxy's own front
// door, exactly as in montsysd.
//
// -qos arms the proxy's own QoS plane: the same
// "tenant:rate=R,burst=B,weight=W,class=C;..." (or @file) grammar as
// montsysd, enforced at the proxy's admission so one tenant's flood is
// rejected before it can occupy routing capacity. Tenant identity is
// forwarded to the backends on every routed, hedged and failover
// attempt; best-effort traffic is never hedged; per-tenant pick/shed
// counters and the /quotaz page (with -metrics) show who is using —
// and who is abusing — the fleet.
//
// Routing (see internal/cluster): requests are routed to the
// rendezvous-hash home of their modulus so repeat-modulus traffic hits
// warm per-modulus context caches on the backends (-affinity=false
// falls back to least-inflight everywhere); backends are health-probed
// with the wire Ping op, ejected on failure or drain and reinstated
// with jittered backoff; slow requests are hedged onto a second
// backend after a p99-derived delay; draining/dead backends fail over,
// with a global retry budget capping amplification. Integrity answers
// (a backend admitting its compute was corrupted) fail over for free
// and, after -integrity-eject consecutive ones from the same backend,
// take that backend out of rotation until a probe clears it.
//
// The signing ops route through the proxy unchanged: the cluster
// implements the signing handler surface itself, forwarding RSA
// keygen/sign/verify and ECDSA sign/batch-verify to backends with the
// same failover/hedging machinery, routed on the affinity plane by
// *key handle* (a fingerprint of the key, never raw private material)
// so repeat traffic for one key lands on one warm backend
// (montsys_cluster_keyhandle_requests_total counts these).
//
// On SIGTERM/SIGINT the proxy itself drains gracefully, exactly like
// montsysd: stop accepting, answer new requests with the draining
// code, finish what's admitted (bounded by -drain), exit 0.
//
// With -metrics, /metrics serves the cluster series (backend_up,
// picks_total{backend,reason}, hedges_total, breaker_state,
// affinity_hits_total, ...) and the proxy's own server series on one
// page; scraped next to the backends' pages the whole path client →
// balancer → backend → engine → systolic core is visible. The same
// address serves /statusz (per-op SLO burn rates, -slo-latency /
// -slo-target) and /trace — the balancer's slice of every sampled
// request's trace tree: a proxy server span, one route-attempt span
// per backend try (pick reason, hedge race outcome, budget spend) and
// the backend call spans under them, all joined by trace id to the
// spans the client and the backends record themselves (merge with
// cmd/tracecat). -wide-events adds one JSON request-log line per
// sampled request per layer.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	montsys "repro"
)

func main() {
	listen := flag.String("listen", ":7070", "serve the binary protocol on this address")
	backends := flag.String("backends", "", "comma-separated montsysd addresses (required)")
	inflight := flag.Int("inflight", 256, "max in-flight requests before the overloaded fast-fail")
	idle := flag.Duration("idle", 2*time.Minute, "close client connections idle this long (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
	probe := flag.Duration("probe", time.Second, "backend health-probe interval")
	affinity := flag.Bool("affinity", true, "route by modulus affinity (rendezvous hashing)")
	hedge := flag.Bool("hedge", true, "hedge slow requests onto a second backend")
	budget := flag.Float64("budget", 0.1, "retry-budget ratio (tokens minted per request)")
	burst := flag.Int("burst", 16, "retry-budget burst (token cap)")
	integrityEject := flag.Int("integrity-eject", 3, "consecutive integrity failures before ejecting a backend (0 disables)")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /statusz and /trace on this address")
	traceCap := flag.Int("trace", 4096, "span ring-buffer capacity for /trace")
	wideDest := flag.String("wide-events", "", "wide-event request log destination: stderr | stdout | file path (empty disables)")
	sloLatency := flag.Duration("slo-latency", 500*time.Millisecond, "per-op latency SLO objective (with -metrics)")
	sloTarget := flag.Float64("slo-target", 0.999, "SLO success-ratio target for availability and latency objectives")
	qosSpec := flag.String("qos", "", "per-tenant QoS spec \"tenant:rate=R,burst=B,weight=W,class=C;...\" or @file (empty disables)")
	frameTimeout := flag.Duration("frame-timeout", 10*time.Second, "per-frame arrival budget once the first byte lands — slow-loris guard (0 disables)")
	zone := flag.String("zone", "", "this balancer's failure-domain label (zone-aware routing)")
	handover := flag.Duration("handover", 30*time.Second, "dual-routing window after a membership change (0 = instantaneous)")
	handoverWarm := flag.Int("handover-warm", 256, "max background warm-up calls per membership change")
	maxMembers := flag.Int("max-members", 64, "member-table bound for runtime joins")
	backendsWatch := flag.Duration("backends-watch", 2*time.Second, "poll interval for -backends @file changes (0 disables)")
	flag.Parse()

	oc := obsConfig{metricsAddr: *metricsAddr, traceCap: *traceCap, wideDest: *wideDest,
		sloLatency: *sloLatency, sloTarget: *sloTarget}
	mc := memConfig{zone: *zone, handover: *handover, handoverWarm: *handoverWarm,
		maxMembers: *maxMembers, watch: *backendsWatch}
	if err := run(*listen, *backends, *inflight, *idle, *drain, *probe, *frameTimeout,
		*affinity, *hedge, *budget, *burst, *integrityEject, *qosSpec, oc, mc); err != nil {
		fmt.Fprintln(os.Stderr, "montsyslb:", err)
		os.Exit(1)
	}
}

// memConfig carries the membership flags into run.
type memConfig struct {
	zone         string
	handover     time.Duration
	handoverWarm int
	maxMembers   int
	watch        time.Duration
}

// obsConfig carries the observability flags into run.
type obsConfig struct {
	metricsAddr string
	traceCap    int
	wideDest    string
	sloLatency  time.Duration
	sloTarget   float64
}

// wideWriter opens the wide-event destination. The returned file is
// non-nil only for path destinations (the caller closes it).
func (oc obsConfig) wideWriter() (*montsys.WideWriter, *os.File, error) {
	switch oc.wideDest {
	case "":
		return nil, nil, nil
	case "stderr":
		return montsys.NewWideWriter(os.Stderr), nil, nil
	case "stdout":
		return montsys.NewWideWriter(os.Stdout), nil, nil
	default:
		f, err := os.OpenFile(oc.wideDest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wide-events log: %w", err)
		}
		return montsys.NewWideWriter(f), f, nil
	}
}

// seedMembers resolves the -backends flag: "@path" loads a member
// file, anything else parses as an inline "addr[=zone]" list. Returns
// the members and the watched file path ("" when inline).
func seedMembers(backends string) ([]montsys.ClusterMember, string, error) {
	if path, ok := strings.CutPrefix(backends, "@"); ok {
		ms, err := montsys.LoadClusterMemberFile(path)
		return ms, path, err
	}
	ms, err := montsys.ParseClusterMembers(backends)
	return ms, "", err
}

// memberStrings renders members back to the "addr[=zone]" form
// NewCluster seeds from.
func memberStrings(ms []montsys.ClusterMember) []string {
	out := make([]string, len(ms))
	for i, m := range ms {
		out[i] = m.Addr
		if m.Zone != "" {
			out[i] += "=" + m.Zone
		}
	}
	return out
}

// watchMemberFile polls a -backends @file and reconciles the live pool
// against it: entries added to the file join (entering rotation after
// their first probe), entries removed say goodbye (draining through the
// handover window). The reconciler only manages members it sourced from
// the file — a backend that arrived through OpJoin self-registration is
// never goodbyed just because the file doesn't mention it, so the two
// control planes compose instead of fighting. Join/goodbye are
// idempotent, so a pass that races a self-registration is harmless.
func watchMemberFile(ctx context.Context, cl *montsys.Cluster, path string,
	every time.Duration, seeds []montsys.ClusterMember) {
	t := time.NewTicker(every)
	defer t.Stop()
	var lastErr string
	prev := make(map[string]bool, len(seeds)) // addrs the file was last known to claim
	for _, m := range seeds {
		prev[m.Addr] = true
	}
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		desired, err := montsys.LoadClusterMemberFile(path)
		if err != nil {
			if msg := err.Error(); msg != lastErr {
				lastErr = msg
				fmt.Fprintln(os.Stderr, "montsyslb: backends file:", err)
			}
			continue
		}
		lastErr = ""
		want := make(map[string]string, len(desired))
		for _, m := range desired {
			want[m.Addr] = m.Zone
		}
		cur := make(map[string]string)
		for _, m := range cl.Members() {
			cur[m.Addr] = m.Zone
		}
		for addr, zone := range want {
			if z, ok := cur[addr]; !ok || z != zone {
				if _, err := cl.Join(ctx, addr, zone); err != nil {
					fmt.Fprintf(os.Stderr, "montsyslb: join %s: %v\n", addr, err)
				}
			}
		}
		for addr := range prev {
			if _, ok := want[addr]; !ok {
				if _, err := cl.Goodbye(ctx, addr); err != nil {
					fmt.Fprintf(os.Stderr, "montsyslb: goodbye %s: %v\n", addr, err)
				}
			}
		}
		prev = make(map[string]bool, len(want))
		for addr := range want {
			prev[addr] = true
		}
	}
}

func run(listen, backends string, inflight int, idle, drain, probe, frameTimeout time.Duration,
	affinity, hedge bool, budget float64, burst, integrityEject int, qosSpec string,
	oc obsConfig, mc memConfig) error {
	members, watchPath, err := seedMembers(backends)
	if err != nil {
		return fmt.Errorf("-backends: %w", err)
	}
	if len(members) == 0 {
		return fmt.Errorf("no backends given (-backends host1:7077,host2:7077 or @file)")
	}
	addrs := memberStrings(members)

	wide, wideFile, err := oc.wideWriter()
	if err != nil {
		return err
	}
	if wideFile != nil {
		defer wideFile.Close()
	}
	tracer := montsys.NewTracer(oc.traceCap)
	tracer.SetProcess("montsyslb")

	registry := montsys.NewMetricsRegistry()
	var plane *montsys.QoSPlane
	clOpts := []montsys.ClusterOption{
		montsys.WithClusterRegistry(registry),
		montsys.WithClusterProbeInterval(probe),
		montsys.WithClusterAffinity(affinity),
		montsys.WithClusterHedging(hedge),
		montsys.WithClusterRetryBudget(budget, burst),
		montsys.WithClusterIntegrityEjectThreshold(integrityEject),
		montsys.WithClusterTracer(tracer),
		montsys.WithClusterWideEvents(wide),
		montsys.WithClusterZone(mc.zone),
		montsys.WithClusterHandover(mc.handover, mc.handoverWarm),
		montsys.WithClusterMaxMembers(mc.maxMembers),
	}
	if qosSpec != "" {
		qcfg, err := montsys.ParseQoSSpec(qosSpec)
		if err != nil {
			return fmt.Errorf("-qos: %w", err)
		}
		plane = montsys.NewQoSPlane(qcfg, inflight, registry)
		clOpts = append(clOpts, montsys.WithClusterTenants(qcfg.TenantNames()))
	}
	cl, err := montsys.NewCluster(addrs, clOpts...)
	if err != nil {
		return err
	}
	defer cl.Close()

	srvOpts := []montsys.ServerOption{
		montsys.WithServerMaxInflight(inflight),
		montsys.WithServerIdleTimeout(idle),
		montsys.WithServerFrameTimeout(frameTimeout),
		montsys.WithServerRegistry(registry),
		montsys.WithServerTracer(tracer),
		montsys.WithServerWideEvents(wide),
	}
	if plane != nil {
		srvOpts = append(srvOpts, montsys.WithServerQoS(plane))
	}
	srv, err := montsys.NewHandlerServer(cl, srvOpts...)
	if err != nil {
		return err
	}

	if oc.metricsAddr != "" {
		mln, err := net.Listen("tcp", oc.metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		slo := montsys.NewSLOTracker(registry, 0)
		srv.RegisterSLOs(slo, oc.sloLatency, oc.sloTarget)
		slo.Start()
		defer slo.Close()
		fmt.Printf("montsyslb: observability on http://%s/ (/metrics, /statusz, /quotaz, /trace)\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, montsys.NewQoSObsMux(registry, tracer, slo, plane)); err != nil {
				fmt.Fprintln(os.Stderr, "montsyslb: metrics server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("montsyslb: balancing %s on %s (affinity=%v hedge=%v)\n",
		strings.Join(addrs, ","), ln.Addr(), affinity, hedge)

	// First SIGTERM/SIGINT starts the graceful drain; a second aborts it.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	if watchPath != "" && mc.watch > 0 {
		go watchMemberFile(sigCtx, cl, watchPath, mc.watch, members)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop()
	fmt.Printf("montsyslb: draining (budget %s)...\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "montsyslb: drain incomplete:", err)
	} else {
		fmt.Println("montsyslb: drained cleanly")
	}
	return <-serveErr
}
