// Command montsyslb is the cluster tier's front door: a load-balancing
// proxy that speaks the montsysd wire protocol on one side and routes
// to a fleet of montsysd backends on the other. Clients keep using the
// ordinary montsys.Client — the proxy is indistinguishable from a very
// reliable, very large montsysd.
//
// Usage:
//
//	montsyslb -backends host1:7077,host2:7077[,...]
//	          [-listen :7070] [-inflight 256] [-idle 2m] [-drain 30s]
//	          [-probe 1s] [-affinity] [-hedge] [-budget 0.1] [-burst 16]
//	          [-integrity-eject 3] [-metrics :9091]
//
// Routing (see internal/cluster): requests are routed to the
// rendezvous-hash home of their modulus so repeat-modulus traffic hits
// warm per-modulus context caches on the backends (-affinity=false
// falls back to least-inflight everywhere); backends are health-probed
// with the wire Ping op, ejected on failure or drain and reinstated
// with jittered backoff; slow requests are hedged onto a second
// backend after a p99-derived delay; draining/dead backends fail over,
// with a global retry budget capping amplification. Integrity answers
// (a backend admitting its compute was corrupted) fail over for free
// and, after -integrity-eject consecutive ones from the same backend,
// take that backend out of rotation until a probe clears it.
//
// On SIGTERM/SIGINT the proxy itself drains gracefully, exactly like
// montsysd: stop accepting, answer new requests with the draining
// code, finish what's admitted (bounded by -drain), exit 0.
//
// With -metrics, /metrics serves the cluster series (backend_up,
// picks_total{backend,reason}, hedges_total, breaker_state,
// affinity_hits_total, ...) and the proxy's own server series on one
// page; scraped next to the backends' pages the whole path client →
// balancer → backend → engine → systolic core is visible.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	montsys "repro"
)

func main() {
	listen := flag.String("listen", ":7070", "serve the binary protocol on this address")
	backends := flag.String("backends", "", "comma-separated montsysd addresses (required)")
	inflight := flag.Int("inflight", 256, "max in-flight requests before the overloaded fast-fail")
	idle := flag.Duration("idle", 2*time.Minute, "close client connections idle this long (0 disables)")
	drain := flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")
	probe := flag.Duration("probe", time.Second, "backend health-probe interval")
	affinity := flag.Bool("affinity", true, "route by modulus affinity (rendezvous hashing)")
	hedge := flag.Bool("hedge", true, "hedge slow requests onto a second backend")
	budget := flag.Float64("budget", 0.1, "retry-budget ratio (tokens minted per request)")
	burst := flag.Int("burst", 16, "retry-budget burst (token cap)")
	integrityEject := flag.Int("integrity-eject", 3, "consecutive integrity failures before ejecting a backend (0 disables)")
	metricsAddr := flag.String("metrics", "", "serve /metrics on this address")
	flag.Parse()

	if err := run(*listen, *backends, *inflight, *idle, *drain, *probe,
		*affinity, *hedge, *budget, *burst, *integrityEject, *metricsAddr); err != nil {
		fmt.Fprintln(os.Stderr, "montsyslb:", err)
		os.Exit(1)
	}
}

func run(listen, backends string, inflight int, idle, drain, probe time.Duration,
	affinity, hedge bool, budget float64, burst, integrityEject int, metricsAddr string) error {
	var addrs []string
	for _, a := range strings.Split(backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no backends given (-backends host1:7077,host2:7077)")
	}

	registry := montsys.NewMetricsRegistry()
	cl, err := montsys.NewCluster(addrs,
		montsys.WithClusterRegistry(registry),
		montsys.WithClusterProbeInterval(probe),
		montsys.WithClusterAffinity(affinity),
		montsys.WithClusterHedging(hedge),
		montsys.WithClusterRetryBudget(budget, burst),
		montsys.WithClusterIntegrityEjectThreshold(integrityEject),
	)
	if err != nil {
		return err
	}
	defer cl.Close()

	srv, err := montsys.NewHandlerServer(cl,
		montsys.WithServerMaxInflight(inflight),
		montsys.WithServerIdleTimeout(idle),
		montsys.WithServerRegistry(registry),
	)
	if err != nil {
		return err
	}

	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", montsys.NewMetricsHandler(registry))
		fmt.Printf("montsyslb: metrics on http://%s/metrics\n", mln.Addr())
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				fmt.Fprintln(os.Stderr, "montsyslb: metrics server:", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("montsyslb: balancing %s on %s (affinity=%v hedge=%v)\n",
		strings.Join(addrs, ","), ln.Addr(), affinity, hedge)

	// First SIGTERM/SIGINT starts the graceful drain; a second aborts it.
	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-sigCtx.Done():
	}
	stop()
	fmt.Printf("montsyslb: draining (budget %s)...\n", drain)
	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "montsyslb: drain incomplete:", err)
	} else {
		fmt.Println("montsyslb: drained cleanly")
	}
	return <-serveErr
}
