// Command modexp computes a modular exponentiation M^E mod N through the
// paper's exponentiator and prints the square-and-multiply decomposition
// and the cycle accounting of §4.5 / Eq. (10).
//
// Usage:
//
//	modexp -n <hex modulus> -m <hex base> -e <hex exponent> [-simulate]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"os"

	"repro/internal/expo"
)

func main() {
	nHex := flag.String("n", "f1f1", "modulus N (hex, odd)")
	mHex := flag.String("m", "1234", "base M (hex, < N)")
	eHex := flag.String("e", "10001", "exponent E (hex, > 0)")
	simulate := flag.Bool("simulate", false, "run every multiplication through the cycle-accurate circuit")
	flag.Parse()

	if err := run(*nHex, *mHex, *eHex, *simulate); err != nil {
		fmt.Fprintln(os.Stderr, "modexp:", err)
		os.Exit(1)
	}
}

func run(nHex, mHex, eHex string, simulate bool) error {
	n, ok := new(big.Int).SetString(nHex, 16)
	if !ok {
		return fmt.Errorf("invalid modulus %q", nHex)
	}
	m, ok := new(big.Int).SetString(mHex, 16)
	if !ok {
		return fmt.Errorf("invalid base %q", mHex)
	}
	e, ok := new(big.Int).SetString(eHex, 16)
	if !ok {
		return fmt.Errorf("invalid exponent %q", eHex)
	}
	mode := expo.Model
	if simulate {
		mode = expo.Simulate
	}
	ex, err := expo.New(n, mode)
	if err != nil {
		return err
	}
	got, rep, err := ex.ModExp(m, e)
	if err != nil {
		return err
	}
	l := rep.L
	fmt.Printf("M^E mod N = %s\n", got.Text(16))
	fmt.Printf("l = %d bits, mode = %s\n", l, mode)
	fmt.Printf("decomposition: %d squares + %d multiplies (+1 pre, +1 post)\n",
		rep.Squares, rep.Multiplies)
	fmt.Printf("cycle accounting (§4.5): pre %d + muls %d + post %d = %d cycles\n",
		rep.PreCycles, rep.MulCycles, rep.PostCycles, rep.TotalCycles)
	fmt.Printf("Eq. (10) bounds: %d ≤ T ≤ %d (average %.0f)\n",
		expo.PaperLowerBound(l), expo.PaperUpperBound(l), expo.PaperAverageCycles(l))
	if simulate {
		fmt.Printf("simulated circuit cycles: %d (measured, MUL1/MUL2 states only)\n",
			rep.SimulatedMulCycles)
	}
	// Verify against math/big so the tool is self-checking.
	if want := new(big.Int).Exp(m, e, n); got.Cmp(want) != 0 {
		return fmt.Errorf("self-check failed: got %s want %s", got.Text(16), want.Text(16))
	}
	fmt.Println("self-check vs math/big: OK")
	return nil
}
