// Command emit exports the reproduced design back toward a real FPGA
// flow: it builds the gate-level netlist (systolic array alone or the
// complete MMM circuit), prints the census, timing and Virtex-E mapping
// summary, and optionally writes structural Verilog.
//
// Usage:
//
//	emit [-l 32] [-unit array|mmmc] [-variant guarded|faithful] [-o out.v]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/expo"
	"repro/internal/fpga"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/systolic"
	"repro/internal/verilog"
)

func main() {
	l := flag.Int("l", 32, "modulus bit length")
	unit := flag.String("unit", "mmmc", "what to build: array, mmmc or expo")
	variantName := flag.String("variant", "faithful", "cell variant: faithful (paper) or guarded")
	out := flag.String("o", "", "write structural Verilog to this file")
	dot := flag.String("dot", "", "write a Graphviz DOT rendering to this file (small netlists only)")
	flag.Parse()

	if err := run(*l, *unit, *variantName, *out, *dot); err != nil {
		fmt.Fprintln(os.Stderr, "emit:", err)
		os.Exit(1)
	}
}

func run(l int, unit, variantName, out, dot string) error {
	var variant systolic.Variant
	switch variantName {
	case "guarded":
		variant = systolic.Guarded
	case "faithful":
		variant = systolic.Faithful
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}

	nl := logic.New()
	moduleName := fmt.Sprintf("%s_l%d_%s", unit, l, variant)
	switch unit {
	case "array":
		p, err := systolic.BuildArrayNetlist(nl, l, variant)
		if err != nil {
			return err
		}
		for _, tq := range p.T {
			nl.MarkOutput(tq, "")
		}
	case "mmmc":
		p, err := mmmc.BuildNetlist(nl, l, variant)
		if err != nil {
			return err
		}
		for _, r := range p.Result {
			nl.MarkOutput(r, "")
		}
	case "expo":
		if _, err := expo.BuildExpoNetlist(nl, l, variant); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown unit %q", unit)
	}

	cen := nl.Census()
	fmt.Printf("unit %s, l = %d, variant = %s\n", unit, l, variant)
	fmt.Printf("census: %s\n", cen)
	if unit == "array" && variant == systolic.Faithful {
		fmt.Printf("paper's Fig. 2 formula:  %d XOR + %d AND + %d OR gates, %d flip-flops\n",
			5*l-3, 7*l-7, 4*l-5, 4*l)
		fmt.Printf("this decomposition:      %d XOR + %d AND + %d OR gates (FA = 2XOR+2AND+1OR)\n",
			5*l-2, 7*l-4, 2*l-1)
	}

	rep, err := logic.AnalyzeTiming(nl, logic.UnitDelays)
	if err != nil {
		return err
	}
	fmt.Printf("critical path: %d gate levels (independent of l)\n", rep.CriticalLevels)

	mr, err := fpga.VirtexE.Map(nl)
	if err != nil {
		return err
	}
	fmt.Printf("Virtex-E mapping: %s\n", mr)

	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := logic.WriteDOT(f, nl, moduleName, 4000); err != nil {
			return err
		}
		fmt.Printf("DOT graph written to %s\n", dot)
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := verilog.Emit(f, moduleName, nl); err != nil {
			return err
		}
		fmt.Printf("Verilog written to %s\n", out)
	}
	return nil
}
