// Command rsatool demonstrates the RSA application of §4.5: it generates
// a key with the repository's own Miller–Rabin (over the reproduced
// Montgomery exponentiator), encrypts and decrypts a message, signs and
// verifies it, and prints the cycle accounting of every exponentiation.
//
// Usage:
//
//	rsatool [-bits 128] [-msg <hex>] [-seed 1] [-kit model|sim|cios|big|auto] [-crt] [-sign]
//
// The -kit flag selects the compute kit every exponentiation runs on
// (see internal/kits); -simulate remains as a deprecated alias for
// -kit sim.
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"

	"repro/internal/expo"
	"repro/internal/kits"
	"repro/internal/rsa"
)

func main() {
	bitsFlag := flag.Int("bits", 128, "modulus size in bits (even, ≥ 16)")
	msgHex := flag.String("msg", "48656c6c6f", "message (hex, < N)")
	seed := flag.Int64("seed", 1, "deterministic key-generation seed")
	kitFlag := flag.String("kit", "model", "compute kit: model|sim|cios|big|auto")
	simulate := flag.Bool("simulate", false, "deprecated alias for -kit sim (slow; use small -bits)")
	crt := flag.Bool("crt", true, "decrypt with CRT")
	sign := flag.Bool("sign", true, "also sign the message (SHA-256 digest, CRT when available) and verify")
	flag.Parse()

	k, err := kits.Parse(*kitFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rsatool:", err)
		os.Exit(1)
	}
	if *simulate {
		k = kits.Sim
	}
	if err := run(*bitsFlag, *msgHex, *seed, k, *crt, *sign); err != nil {
		fmt.Fprintln(os.Stderr, "rsatool:", err)
		os.Exit(1)
	}
}

func run(bits int, msgHex string, seed int64, k kits.Kit, crt, sign bool) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("generating %d-bit RSA key (Miller–Rabin over the Montgomery exponentiator)...\n", bits)
	key, err := rsa.GenerateKey(bits, nil, rng)
	if err != nil {
		return err
	}
	if err := key.Validate(); err != nil {
		return err
	}
	fmt.Printf("N = %s\nE = %s\nD = %s\nkit = %v\n", key.N.Text(16), key.E.Text(16), key.D.Text(16), k)

	m, ok := new(big.Int).SetString(msgHex, 16)
	if !ok {
		return fmt.Errorf("invalid message %q", msgHex)
	}
	if m.Cmp(key.N) >= 0 {
		return fmt.Errorf("message must be smaller than N")
	}

	c, repE, err := key.Encrypt(m, k)
	if err != nil {
		return err
	}
	fmt.Printf("\nencrypt: C = M^E mod N = %s\n", c.Text(16))
	fmt.Printf("         %d squares + %d multiplies, %d cycles (paper model)\n",
		repE.Squares, repE.Multiplies, repE.TotalCycles)

	var back *big.Int
	var repD expo.Report
	if crt {
		back, repD, err = key.DecryptCRT(c, k)
		fmt.Printf("decrypt (CRT): M = %s\n", back.Text(16))
	} else {
		back, repD, err = key.Decrypt(c, k)
		fmt.Printf("decrypt: M = %s\n", back.Text(16))
	}
	if err != nil {
		return err
	}
	fmt.Printf("         %d squares + %d multiplies, %d cycles (paper model)\n",
		repD.Squares, repD.Multiplies, repD.TotalCycles)
	if k == kits.Sim {
		fmt.Printf("         simulated circuit cycles: enc %d, dec %d\n",
			repE.SimulatedMulCycles, repD.SimulatedMulCycles)
	}

	if back.Cmp(m) != 0 {
		return fmt.Errorf("round trip FAILED: %s != %s", back.Text(16), m.Text(16))
	}
	fmt.Println("\nround trip: OK")

	if sign {
		msgBytes := m.Bytes()
		sig, repS, err := key.SignSHA256(msgBytes, k)
		if err != nil {
			return err
		}
		fmt.Printf("\nsign (SHA-256): s = H(M)^D mod N = %s\n", sig.Text(16))
		fmt.Printf("         %d squares + %d multiplies, %d cycles (paper model)\n",
			repS.Squares, repS.Multiplies, repS.TotalCycles)
		okSig, err := key.PublicKey.VerifySHA256(msgBytes, sig, k)
		if err != nil {
			return err
		}
		if !okSig {
			return fmt.Errorf("signature verification FAILED")
		}
		fmt.Println("signature verify: OK")
	}
	return nil
}
