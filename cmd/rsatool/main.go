// Command rsatool demonstrates the RSA application of §4.5: it generates
// a key with the repository's own Miller–Rabin (over the reproduced
// Montgomery exponentiator), encrypts and decrypts a message, and prints
// the cycle accounting of every exponentiation.
//
// Usage:
//
//	rsatool [-bits 128] [-msg <hex>] [-seed 1] [-simulate] [-crt]
package main

import (
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"

	"repro/internal/expo"
	"repro/internal/rsa"
)

func main() {
	bitsFlag := flag.Int("bits", 128, "modulus size in bits (even, ≥ 16)")
	msgHex := flag.String("msg", "48656c6c6f", "message (hex, < N)")
	seed := flag.Int64("seed", 1, "deterministic key-generation seed")
	simulate := flag.Bool("simulate", false, "run exponentiations through the cycle-accurate circuit (slow; use small -bits)")
	crt := flag.Bool("crt", true, "decrypt with CRT")
	flag.Parse()

	if err := run(*bitsFlag, *msgHex, *seed, *simulate, *crt); err != nil {
		fmt.Fprintln(os.Stderr, "rsatool:", err)
		os.Exit(1)
	}
}

func run(bits int, msgHex string, seed int64, simulate, crt bool) error {
	rng := rand.New(rand.NewSource(seed))
	fmt.Printf("generating %d-bit RSA key (Miller–Rabin over the Montgomery exponentiator)...\n", bits)
	key, err := rsa.GenerateKey(bits, nil, rng)
	if err != nil {
		return err
	}
	if err := key.Validate(); err != nil {
		return err
	}
	fmt.Printf("N = %s\nE = %s\nD = %s\n", key.N.Text(16), key.E.Text(16), key.D.Text(16))

	m, ok := new(big.Int).SetString(msgHex, 16)
	if !ok {
		return fmt.Errorf("invalid message %q", msgHex)
	}
	if m.Cmp(key.N) >= 0 {
		return fmt.Errorf("message must be smaller than N")
	}
	mode := expo.Model
	if simulate {
		mode = expo.Simulate
	}

	c, repE, err := key.Encrypt(m, mode)
	if err != nil {
		return err
	}
	fmt.Printf("\nencrypt: C = M^E mod N = %s\n", c.Text(16))
	fmt.Printf("         %d squares + %d multiplies, %d cycles (paper model)\n",
		repE.Squares, repE.Multiplies, repE.TotalCycles)

	var back *big.Int
	var repD expo.Report
	if crt {
		back, repD, err = key.DecryptCRT(c, mode)
		fmt.Printf("decrypt (CRT): M = %s\n", back.Text(16))
	} else {
		back, repD, err = key.Decrypt(c, mode)
		fmt.Printf("decrypt: M = %s\n", back.Text(16))
	}
	if err != nil {
		return err
	}
	fmt.Printf("         %d squares + %d multiplies, %d cycles (paper model)\n",
		repD.Squares, repD.Multiplies, repD.TotalCycles)
	if simulate {
		fmt.Printf("         simulated circuit cycles: enc %d, dec %d\n",
			repE.SimulatedMulCycles, repD.SimulatedMulCycles)
	}

	if back.Cmp(m) != 0 {
		return fmt.Errorf("round trip FAILED: %s != %s", back.Text(16), m.Text(16))
	}
	fmt.Println("\nround trip: OK")
	return nil
}
