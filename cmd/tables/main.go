// Command tables regenerates the paper's evaluation tables from the
// reproduced system and prints them next to the published values.
//
// Usage:
//
//	tables [-table 1|2|compare|radix|all] [-lengths 32,64,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/tables"
)

func main() {
	which := flag.String("table", "all", "which table: 1, 2, compare, radix, hazard, ecc, or all")
	lengthsFlag := flag.String("lengths", "", "comma-separated bit lengths (default: the paper's)")
	radixL := flag.Int("radixl", 1024, "bit length for the radix sweep")
	latex := flag.Bool("latex", false, "emit Tables 1/2 as LaTeX tabulars instead of text")
	flag.Parse()

	var lengths []int
	if *lengthsFlag != "" {
		for _, part := range strings.Split(*lengthsFlag, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tables: invalid length %q\n", part)
				os.Exit(1)
			}
			lengths = append(lengths, v)
		}
	}

	if err := run(*which, lengths, *radixL, *latex); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(which string, lengths []int, radixL int, latex bool) error {
	doTable1 := func() error {
		rows, err := tables.Table1(lengths)
		if err != nil {
			return err
		}
		if latex {
			fmt.Println(tables.LaTeXTable1(rows))
		} else {
			fmt.Println(tables.FormatTable1(rows))
		}
		return nil
	}
	doTable2 := func() error {
		rows, err := tables.Table2(lengths)
		if err != nil {
			return err
		}
		if latex {
			fmt.Println(tables.LaTeXTable2(rows))
		} else {
			fmt.Println(tables.FormatTable2(rows))
		}
		return nil
	}
	doCompare := func() error {
		rows, err := tables.CompareBlumPaar(lengths)
		if err != nil {
			return err
		}
		fmt.Println(tables.FormatCompare(rows))
		return nil
	}
	doHazard := func() error {
		rows, err := tables.HazardSurvey(16, 2000, 1)
		if err != nil {
			return err
		}
		fmt.Println(tables.FormatHazard(rows))
		return nil
	}
	doECC := func() error {
		rows, err := tables.ECCTable(1)
		if err != nil {
			return err
		}
		fmt.Println(tables.FormatECC(rows))
		return nil
	}
	doRadix := func() error {
		rows, err := tables.RadixSweep(radixL, nil)
		if err != nil {
			return err
		}
		fmt.Println(tables.FormatRadix(radixL, rows))
		return nil
	}

	switch which {
	case "1":
		return doTable1()
	case "2":
		return doTable2()
	case "compare":
		return doCompare()
	case "radix":
		return doRadix()
	case "hazard":
		return doHazard()
	case "ecc":
		return doECC()
	case "all":
		for _, f := range []func() error{doTable2, doTable1, doCompare, doRadix, doHazard, doECC} {
			if err := f(); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown table %q", which)
	}
}
