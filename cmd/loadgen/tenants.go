package main

// The -scenario tenants workload: three synthetic tenants share one
// fleet through the QoS plane, and one of them is hostile. "acme" is a
// well-behaved interactive tenant sending well inside its quota; "hog"
// floods at 10× its configured rate; "bulk" is best-effort scavenger
// traffic. The scenario reports goodput, tail latency, and rejection
// counts per tenant, and exits non-zero if the well-behaved tenant's
// error rate exceeds its budget — i.e. if the hostile tenant managed
// to hurt a neighbor despite the plane. That exit code is the
// isolation assertion CI's qos-integration job runs against a live
// fleet.
//
// The servers must enforce quotas for the verdict to mean anything:
// start montsysd/montsyslb with -qos tenantsQoSSpec (printed in the
// run header) or an equivalent table.

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	montsys "repro"
)

// tenantsQoSSpec is the server-side quota table this scenario is tuned
// against. acme's 100/s send rate sits far inside its 400/s quota;
// hog's 500/s send rate is 10× its 50/s quota, so ~90% of its traffic
// must bounce off its own token bucket; bulk runs inside its rate but
// in the best-effort class, so it is shed first when lanes back up.
const tenantsQoSSpec = "acme:rate=400,burst=100,weight=4,class=interactive;" +
	"hog:rate=50,burst=10,weight=2,class=batch;" +
	"bulk:rate=200,burst=50,weight=1,class=best-effort"

// tenantLoad describes one synthetic tenant's offered load.
type tenantLoad struct {
	name    string
	class   montsys.QoSClass
	rate    float64 // target send rate, requests/s
	retries int     // per-call retry budget (hostile tenants don't back off)

	// budget is the highest tolerable error fraction for this tenant;
	// negative disables the check (the hostile and scavenger tenants
	// are *supposed* to be rejected).
	budget float64
}

// tenantResult accumulates one tenant's outcome across submitters.
type tenantResult struct {
	sent  atomic.Int64
	lats  []time.Duration
	tally *errorTally
}

// count reads one class's tally (helper for the per-tenant report).
func (t *errorTally) count(class string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n[class]
}

// runTenants drives the three-tenant isolation experiment against the
// -connect addresses. The run window scales with -jobs (jobs/100
// seconds, minimum 1s); each tenant's job count is its rate times the
// window. Moduli are drawn Zipf-skewed from the shared key set, so hot
// moduli exercise the per-modulus caches and the balancer's affinity
// plane under multi-tenant contention.
func runTenants(ctx context.Context, cfg sweepConfig, bits []int) error {
	if cfg.connect == "" {
		return fmt.Errorf("-scenario tenants requires -connect: QoS admission is a wire surface")
	}
	loads := []tenantLoad{
		{name: "acme", class: montsys.QoSInteractive, rate: 100, retries: cfg.retries, budget: 0.02},
		{name: "hog", class: montsys.QoSBatch, rate: 500, retries: 0, budget: -1},
		{name: "bulk", class: montsys.QoSBestEffort, rate: 150, retries: 0, budget: -1},
	}
	window := time.Duration(float64(cfg.jobs) / 100 * float64(time.Second))
	if window < time.Second {
		window = time.Second
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	// Shared fixed key set, same construction as the modexp scenario so
	// every rerun (and every backend of a fleet) sees the same moduli.
	rng := rand.New(rand.NewSource(cfg.seed))
	moduli := make([]*big.Int, 0, len(bits)*cfg.keys)
	for _, l := range bits {
		for k := 0; k < cfg.keys; k++ {
			n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
			n.SetBit(n, l-1, 1)
			n.SetBit(n, 0, 1)
			moduli = append(moduli, n)
		}
	}
	exp := big.NewInt(65537) // F4: cheap per call, so rates stay the story

	addrs := strings.Split(cfg.connect, ",")
	fmt.Printf("loadgen: tenants scenario, %s window, %d moduli (Zipf), remotes %s\n",
		window, len(moduli), cfg.connect)
	fmt.Printf("loadgen: servers should enforce -qos %q\n\n", tenantsQoSSpec)

	results := make([]*tenantResult, len(loads))
	errCh := make(chan error, len(loads)*cfg.clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ti, l := range loads {
		jobs := int(l.rate * window.Seconds())
		res := &tenantResult{lats: make([]time.Duration, jobs), tally: newErrorTally()}
		results[ti] = res

		// Per-tenant clients: identity is a client default here (the
		// ambient-context path is exercised by the unit tests), and the
		// hostile tenant gets zero retries — an abuser doesn't politely
		// honor retry-after hints.
		var cls []*montsys.Client
		for _, a := range addrs {
			if a = strings.TrimSpace(a); a == "" {
				continue
			}
			cl := montsys.Dial(a,
				montsys.WithClientPoolSize(cfg.clients),
				montsys.WithClientMaxRetries(l.retries),
				montsys.WithClientTenant(l.name),
				montsys.WithClientClass(l.class))
			defer cl.Close()
			cls = append(cls, cl)
		}
		if len(cls) == 0 {
			return fmt.Errorf("no address in -connect %q", cfg.connect)
		}

		// Deterministic per-tenant workload: Zipf-skewed modulus indices
		// and bases drawn up front, so submitters share no rng.
		trng := rand.New(rand.NewSource(cfg.seed + int64(ti+1)))
		zipf := rand.NewZipf(trng, 1.3, 1, uint64(len(moduli)-1))
		midx := make([]int, jobs)
		bases := make([]*big.Int, jobs)
		for i := range midx {
			midx[i] = int(zipf.Uint64())
			bases[i] = new(big.Int).Rand(trng, moduli[midx[i]])
		}

		idx := make(chan int, jobs)
		for i := 0; i < jobs; i++ {
			idx <- i
		}
		close(idx)
		submitters := cfg.clients
		if submitters < 1 {
			submitters = 1
		}
		rate := l.rate
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					// Open-loop pacing: job i is due at start + i/rate,
					// regardless of how earlier jobs fared — a throttled
					// tenant does not slow its own offered load.
					due := start.Add(time.Duration(float64(i) / rate * float64(time.Second)))
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
							return
						}
					}
					if ctx.Err() != nil {
						return
					}
					n := moduli[midx[i]]
					res.sent.Add(1)
					t0 := time.Now()
					v, err := cls[i%len(cls)].ModExp(ctx, n, bases[i], exp)
					res.lats[i] = time.Since(t0)
					if err != nil {
						res.tally.add(classify(err))
						res.lats[i] = -1
						continue
					}
					// A wrong answer is always fatal — QoS pressure is
					// allowed to reject work, never to corrupt it.
					if want := new(big.Int).Exp(bases[i], exp, n); v.Cmp(want) != 0 {
						errCh <- fmt.Errorf("tenant %s job %d: self-check failed (WRONG ANSWER)", loads[ti].name, i)
						return
					}
				}
			}()
		}
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}
	if err := ctx.Err(); err != nil && cfg.timeout == 0 {
		return err // interrupted by signal, not by the -timeout cap
	}

	fmt.Printf("%-6s %-12s %6s %6s %8s %6s %6s %10s %9s %9s\n",
		"tenant", "class", "sent", "ok", "ratelim", "shed", "other", "goodput/s", "p50", "p99")
	var verdicts []string
	for ti, l := range loads {
		res := results[ti]
		sent := int(res.sent.Load())
		okl := okLats(res.lats[:])
		ratelim := res.tally.count("rate_limited")
		shed := res.tally.count("overloaded")
		other := res.tally.total() - ratelim - shed
		fmt.Printf("%-6s %-12s %6d %6d %8d %6d %6d %10.1f %9s %9s\n",
			l.name, l.class, sent, len(okl), ratelim, shed, other,
			float64(len(okl))/wall.Seconds(), pct(okl, 50), pct(okl, 99))
		if l.budget >= 0 && sent > 0 {
			frac := float64(sent-len(okl)) / float64(sent)
			if frac > l.budget {
				verdicts = append(verdicts, fmt.Sprintf(
					"tenant %s: error rate %.1f%% exceeds budget %.1f%% (isolation failed: a neighbor's flood reached a well-behaved tenant)",
					l.name, 100*frac, 100*l.budget))
			}
		}
	}
	fmt.Printf("\nwall %s  (hog offered 10x its quota; its rejections are the plane working)\n",
		wall.Round(time.Millisecond))
	if len(verdicts) > 0 {
		return fmt.Errorf("%s", strings.Join(verdicts, "; "))
	}
	fmt.Println("isolation held: every well-behaved tenant stayed inside its error budget")
	return nil
}
