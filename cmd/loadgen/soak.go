package main

// The -scenario soak workload: everything at once, for a long time,
// against a fleet that is allowed to change underneath it. Three
// tenants drive closed-loop traffic with Zipf-skewed moduli — "acme"
// (interactive, the tenant whose experience the verdict protects),
// "bulk" (batch), and "free" (best-effort scavenger) — while
// adversarial goroutines attack the same front door with slow-loris
// dribbles and malformed frames. The orchestrating script (or
// operator) joins, drains, and kill -9s backends mid-run.
//
// The verdict is printed on the last line and is binary:
//
//	SOAK OK        — zero wrong answers anywhere, zero client-visible
//	                 errors for acme, and acme's windowed p99 showed no
//	                 cliff (max ≤ soakCliffMax × median across 2s
//	                 windows) despite churn and adversaries.
//	SOAK FAILED: … — anything else, with the reasons; exit is non-zero.
//
// Wrong answers are fatal the moment they happen, for every tenant —
// churn and hostile bytes may slow the fleet or shed scavenger load,
// but never corrupt an answer.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	montsys "repro"
)

// soakWindow buckets acme latencies for the p99-over-time assertion:
// long enough for a meaningful p99 per bucket, short enough that a
// cold-cache cliff after a membership change cannot hide in an average.
const soakWindow = 2 * time.Second

// soakCliffMax bounds max(windowed p99) / median(windowed p99) for the
// interactive tenant. Handover keeps moved moduli on their warm old
// home while new homes pre-warm, so even a mid-run join/leave/kill
// must not multiply the interactive tail beyond this.
const soakCliffMax = 10.0

// soakTenant is one synthetic tenant of the soak mix.
type soakTenant struct {
	name    string
	class   montsys.QoSClass
	workers int
	retries int
	strict  bool // zero client-visible errors required for the verdict
}

// soakCounts accumulates one tenant's outcome.
type soakCounts struct {
	ok    atomic.Int64
	tally *errorTally
}

// runSoak drives the composed soak against the -connect addresses.
func runSoak(ctx context.Context, cfg sweepConfig, bits []int) error {
	if cfg.connect == "" {
		return fmt.Errorf("-scenario soak requires -connect: the point is the wire front door")
	}
	addrs := make([]string, 0, 2)
	for _, a := range strings.Split(cfg.connect, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return fmt.Errorf("no address in -connect %q", cfg.connect)
	}
	workers := cfg.clients
	if workers < 1 {
		workers = 1
	}
	tenants := []soakTenant{
		{name: "acme", class: montsys.QoSInteractive, workers: workers, retries: cfg.retries, strict: true},
		{name: "bulk", class: montsys.QoSBatch, workers: (workers + 1) / 2, retries: 1},
		{name: "free", class: montsys.QoSBestEffort, workers: (workers + 1) / 2, retries: 0},
	}
	total := 0
	for _, tn := range tenants {
		total += tn.workers
	}
	fmt.Printf("loadgen: soak %s, %d workers (%d acme / %d bulk / %d free), %d adversaries, remotes %s\n",
		cfg.duration, total, tenants[0].workers, tenants[1].workers, tenants[2].workers,
		cfg.adversaries, cfg.connect)

	// Shared Zipf-skewed workload ring: hot moduli contend across
	// tenants, exercising affinity, the context caches, and — mid-churn —
	// the handover dual-routing of exactly the keys that matter most.
	rng := rand.New(rand.NewSource(cfg.seed))
	moduli := make([]*big.Int, 0, len(bits)*cfg.keys)
	for _, l := range bits {
		for k := 0; k < cfg.keys; k++ {
			n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
			n.SetBit(n, l-1, 1)
			n.SetBit(n, 0, 1)
			moduli = append(moduli, n)
		}
	}
	const ring = 8192
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(moduli)-1))
	ringN := make([]*big.Int, ring)
	ringBase := make([]*big.Int, ring)
	for i := range ringN {
		ringN[i] = moduli[int(zipf.Uint64())]
		ringBase[i] = new(big.Int).Rand(rng, ringN[i])
	}
	exp := big.NewInt(65537)

	runCtx, cancel := context.WithTimeout(ctx, cfg.duration)
	defer cancel()
	start := time.Now()

	// Windowed acme latencies: one bucket per soakWindow of wall time.
	nWindows := int(cfg.duration/soakWindow) + 2
	winMu := make([]sync.Mutex, nWindows)
	winLats := make([][]time.Duration, nWindows)

	counts := make([]*soakCounts, len(tenants))
	fatal := make(chan error, total)
	var wg sync.WaitGroup
	var jobSeq atomic.Int64
	for ti, tn := range tenants {
		sc := &soakCounts{tally: newErrorTally()}
		counts[ti] = sc
		cls := make([]*montsys.Client, len(addrs))
		for i, a := range addrs {
			cls[i] = montsys.Dial(a,
				montsys.WithClientPoolSize(tn.workers),
				montsys.WithClientMaxRetries(tn.retries),
				montsys.WithClientTenant(tn.name),
				montsys.WithClientClass(tn.class))
			defer cls[i].Close()
		}
		for w := 0; w < tn.workers; w++ {
			wg.Add(1)
			go func(tn soakTenant, w int) {
				defer wg.Done()
				for runCtx.Err() == nil {
					i := int(jobSeq.Add(1)) % ring
					n, base := ringN[i], ringBase[i]
					t0 := time.Now()
					v, err := cls[w%len(cls)].ModExp(runCtx, n, base, exp)
					if err != nil {
						// The run's own deadline/interrupt is the end of the
						// soak, not a served error.
						if runCtx.Err() != nil &&
							(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
							return
						}
						sc.tally.add(classify(err))
						continue
					}
					sc.ok.Add(1)
					if tn.strict {
						if wi := int(t0.Sub(start) / soakWindow); wi >= 0 && wi < nWindows {
							winMu[wi].Lock()
							winLats[wi] = append(winLats[wi], time.Since(t0))
							winMu[wi].Unlock()
						}
					}
					// A wrong answer is always fatal, for every tenant:
					// churn may shed load, never corrupt it.
					if want := new(big.Int).Exp(base, exp, n); v.Cmp(want) != 0 {
						fatal <- fmt.Errorf("tenant %s worker %d: self-check failed (WRONG ANSWER) for ring job %d", tn.name, w, i)
						cancel()
						return
					}
				}
			}(tn, w)
		}
	}

	// The adversaries: half dribble bytes to trip the slow-loris guard,
	// half throw malformed frames at the decoder. Both loop reconnecting
	// for the whole run — every cut connection is the server defending
	// itself, counted, and the real assertion is that the well-behaved
	// traffic above never notices.
	var loris, malformed soakAdversaryStats
	for i := 0; i < cfg.adversaries; i++ {
		wg.Add(1)
		target := addrs[i%len(addrs)]
		if i%2 == 0 {
			go func() { defer wg.Done(); soakSlowLoris(runCtx, target, &loris) }()
		} else {
			seed := cfg.seed + int64(i)
			go func() { defer wg.Done(); soakMalformed(runCtx, target, seed, &malformed) }()
		}
	}

	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-fatal:
		return err
	default:
	}
	if err := ctx.Err(); err != nil {
		return err // interrupted by signal before the soak window ended
	}

	// Report.
	fmt.Printf("\n%-6s %-12s %10s %10s %12s\n", "tenant", "class", "ok", "errors", "goodput/s")
	var problems []string
	for ti, tn := range tenants {
		sc := counts[ti]
		fmt.Printf("%-6s %-12s %10d %10d %12.1f   (%s)\n",
			tn.name, tn.class, sc.ok.Load(), int64(sc.tally.total()),
			float64(sc.ok.Load())/wall.Seconds(), sc.tally)
		if tn.strict && sc.tally.total() > 0 {
			problems = append(problems, fmt.Sprintf(
				"tenant %s saw %d client-visible errors (%s); the soak demands zero",
				tn.name, sc.tally.total(), sc.tally))
		}
		if tn.strict && sc.ok.Load() == 0 {
			problems = append(problems, fmt.Sprintf("tenant %s completed zero requests", tn.name))
		}
	}
	fmt.Printf("adversaries: slow-loris %d connections (%d cut by the server), malformed %d frames over %d connections\n",
		loris.conns.Load(), loris.cuts.Load(), malformed.frames.Load(), malformed.conns.Load())

	// Windowed p99: the churn-cliff assertion. The first and last
	// windows are partial (ramp-up, drain of the closed loop) and
	// sparsely filled windows have no meaningful p99; both are skipped.
	var p99s []time.Duration
	fmt.Printf("acme p99 by %s window:", soakWindow)
	for wi := 1; wi < nWindows-1; wi++ {
		lats := winLats[wi]
		if len(lats) < 20 {
			continue
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		p := pct(lats, 99)
		p99s = append(p99s, p)
		fmt.Printf(" %s", p)
	}
	fmt.Println()
	if len(p99s) >= 3 {
		sorted := append([]time.Duration(nil), p99s...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		median, max := sorted[len(sorted)/2], sorted[len(sorted)-1]
		ratio := float64(max) / float64(median)
		fmt.Printf("acme p99 windows: median %s, max %s, cliff ratio %.2fx (limit %.0fx)\n",
			median, max, ratio, soakCliffMax)
		if ratio > soakCliffMax {
			problems = append(problems, fmt.Sprintf(
				"p99 cliff: worst window %s is %.1fx the median %s (limit %.0fx) — a membership change went cold",
				max, ratio, median, soakCliffMax))
		}
	} else {
		fmt.Println("acme p99 windows: too few full windows for the cliff assertion (short -duration)")
	}

	fmt.Printf("wall %s\n", wall.Round(time.Millisecond))
	if len(problems) > 0 {
		return fmt.Errorf("SOAK FAILED: %s", strings.Join(problems, "; "))
	}
	fmt.Println("SOAK OK")
	return nil
}

// soakAdversaryStats counts one adversary family's activity.
type soakAdversaryStats struct {
	conns  atomic.Int64 // connections opened
	cuts   atomic.Int64 // connections the server closed on us (the guard firing)
	frames atomic.Int64 // malformed frames delivered
}

// soakSlowLoris connects and dribbles a never-finishing frame one byte
// at a time until the server's frame-progress deadline cuts it, then
// reconnects. A server without the guard would accumulate one parked
// read-loop goroutine per cycle, forever.
func soakSlowLoris(ctx context.Context, addr string, st *soakAdversaryStats) {
	for ctx.Err() == nil {
		d := net.Dialer{Timeout: 2 * time.Second}
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			soakPause(ctx, 500*time.Millisecond)
			continue
		}
		st.conns.Add(1)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 1<<16) // promise 64 KiB, deliver a trickle
		if _, err := nc.Write(hdr[:]); err == nil {
			for ctx.Err() == nil {
				if _, err := nc.Write([]byte{0x17}); err != nil {
					st.cuts.Add(1) // the guard fired
					break
				}
				// The server never answers an unfinished frame; a read
				// error is it hanging up on us mid-dribble.
				nc.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
				if _, err := nc.Read(make([]byte, 1)); err != nil {
					if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
						st.cuts.Add(1)
						break
					}
				}
			}
		}
		nc.Close()
	}
}

// soakMalformed throws garbage frames — random bytes, truncated
// headers, hostile length claims, near-valid prefixes — at the wire
// decoder. Every frame must be answered with a typed protocol error or
// a hangup; the soak's real assertion is that none of them ever panics
// a server or corrupts a neighbor's answer.
func soakMalformed(ctx context.Context, addr string, seed int64, st *soakAdversaryStats) {
	rng := rand.New(rand.NewSource(seed))
	for ctx.Err() == nil {
		d := net.Dialer{Timeout: 2 * time.Second}
		nc, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			soakPause(ctx, 500*time.Millisecond)
			continue
		}
		st.conns.Add(1)
		for f := 0; f < 16 && ctx.Err() == nil; f++ {
			var frame []byte
			switch rng.Intn(4) {
			case 0: // random payload under a truthful header
				payload := make([]byte, rng.Intn(256))
				rng.Read(payload)
				frame = make([]byte, 4+len(payload))
				binary.BigEndian.PutUint32(frame, uint32(len(payload)))
				copy(frame[4:], payload)
			case 1: // near-valid: right version byte, then noise
				payload := make([]byte, 2+rng.Intn(64))
				rng.Read(payload)
				payload[0] = 0x01 // wire protocol version
				frame = make([]byte, 4+len(payload))
				binary.BigEndian.PutUint32(frame, uint32(len(payload)))
				copy(frame[4:], payload)
			case 2: // hostile length claim with nothing behind it
				frame = make([]byte, 4)
				binary.BigEndian.PutUint32(frame, 1<<30)
			default: // truncated header
				frame = make([]byte, 1+rng.Intn(3))
				rng.Read(frame)
			}
			if _, err := nc.Write(frame); err != nil {
				st.cuts.Add(1)
				break
			}
			st.frames.Add(1)
			// Drain whatever typed rejection comes back; a hangup ends
			// the cycle.
			nc.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
			buf := make([]byte, 512)
			if _, err := nc.Read(buf); err != nil {
				if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
					st.cuts.Add(1)
					break
				}
			}
		}
		nc.Close()
	}
}

// soakPause sleeps without outliving the run.
func soakPause(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}
