package main

// The -scenario sign workload: drive the signing service over the wire
// (montsysd directly or through montsyslb) and verify every signature
// client-side. This is the integration harness CI runs against a fleet
// with one backend killed mid-run — the contract is the same as the
// modexp chaos runs: tolerated error classes are counted, a wrong
// signature is always fatal.

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	montsys "repro"
	"repro/internal/cryptosvc"
)

// ecdsaEvery makes every n-th job add an ECDSA sign to the RSA stream;
// the collected signatures are batch-verified over the wire at the end.
const ecdsaEvery = 8

// runSign generates RSA keys over the wire (deterministic seeds, so a
// fleet of backends all agree), then fires cfg.jobs blinded RSA-CRT
// signs across the keys and the -connect addresses, checking sig^e ≡
// digest (mod n) with math/big on every answer.
func runSign(ctx context.Context, cfg sweepConfig, bits []int) error {
	if cfg.connect == "" {
		return fmt.Errorf("-scenario sign requires -connect: signing is a wire surface")
	}
	var clients []*montsys.Client
	for _, a := range strings.Split(cfg.connect, ",") {
		if a = strings.TrimSpace(a); a == "" {
			continue
		}
		cl := montsys.Dial(a,
			montsys.WithClientPoolSize(cfg.clients),
			montsys.WithClientMaxRetries(cfg.retries))
		defer cl.Close()
		clients = append(clients, cl)
	}
	if len(clients) == 0 {
		return fmt.Errorf("no address in -connect %q", cfg.connect)
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	// Setup (untimed): -keys RSA keys per bit length, generated on the
	// remote side. Keygen seeds derive from -seed, so reruns and every
	// backend of a fleet produce identical keys.
	var keys []*montsys.RSAPrivateKey
	kseed := cfg.seed
	for _, l := range bits {
		for k := 0; k < cfg.keys; k++ {
			key, err := clients[len(keys)%len(clients)].KeygenRSA(ctx, l, kseed)
			if err != nil {
				return fmt.Errorf("keygen %d bits (seed %d): %w", l, kseed, err)
			}
			keys = append(keys, key)
			kseed++
		}
	}

	// One ECDSA P-256 key, public point computed locally so the batch
	// verify at the end checks real signatures against a real point.
	curve, err := cryptosvc.CurveByID(cryptosvc.CurveP256)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	ecd := new(big.Int).Rand(rng, new(big.Int).Sub(curve.Order, big.NewInt(2)))
	ecd.Add(ecd, big.NewInt(1))
	pt, err := curve.ScalarBaseMult(ecd)
	if err != nil {
		return err
	}
	qx, qy, ok := curve.Affine(pt)
	if !ok {
		return fmt.Errorf("ECDSA public point at infinity")
	}

	// Fixed workload: per-job RSA digests (reduced mod the job's key
	// modulus) and, every ecdsaEvery-th job, an ECDSA digest.
	rsaDigests := make([]*big.Int, cfg.jobs)
	ecDigests := make([]*big.Int, cfg.jobs)
	for i := range rsaDigests {
		rsaDigests[i] = new(big.Int).Rand(rng, keys[i%len(keys)].N)
		if i%ecdsaEvery == 0 {
			ecDigests[i] = new(big.Int).Rand(rng, curve.Order)
		}
	}

	fmt.Printf("loadgen: sign scenario, %d signs, bits=%v, %d RSA keys, %d remote(s) %s, %d clients\n\n",
		cfg.jobs, bits, len(keys), len(clients), cfg.connect, cfg.clients)

	submitters := cfg.clients
	if submitters < 1 {
		submitters = 1
	}
	if submitters > cfg.jobs {
		submitters = cfg.jobs
	}
	lats := make([]time.Duration, cfg.jobs)
	idx := make(chan int, cfg.jobs)
	for i := 0; i < cfg.jobs; i++ {
		idx <- i
	}
	close(idx)

	var (
		wg      sync.WaitGroup
		itemsMu sync.Mutex
		items   []montsys.ECDSAVerifyItem
	)
	errCh := make(chan error, submitters)
	tally := newErrorTally()
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
				key := keys[i%len(keys)]
				cl := clients[i%len(clients)]
				t0 := time.Now()
				sig, err := cl.SignRSA(ctx, key, rsaDigests[i])
				lats[i] = time.Since(t0)
				if err != nil {
					if class := classify(err); cfg.tolerate[class] {
						tally.add(class)
						lats[i] = -1
						continue
					}
					errCh <- fmt.Errorf("sign %d: %w", i, err)
					return
				}
				// Client-side verification with math/big — independent of
				// everything the service computed. Always fatal.
				if got := new(big.Int).Exp(sig, key.E, key.N); got.Cmp(rsaDigests[i]) != 0 {
					errCh <- fmt.Errorf("sign %d: WRONG SIGNATURE (sig^e != digest mod n)", i)
					return
				}
				if ecDigests[i] != nil {
					r, sv, err := cl.SignECDSA(ctx, montsys.CurveP256, ecd, ecDigests[i], cfg.seed+int64(i))
					if err != nil {
						if class := classify(err); cfg.tolerate[class] {
							tally.add(class)
							continue
						}
						errCh <- fmt.Errorf("ecdsa sign %d: %w", i, err)
						return
					}
					itemsMu.Lock()
					items = append(items, montsys.ECDSAVerifyItem{
						Qx: qx, Qy: qy, R: r, S: sv, Digest: ecDigests[i]})
					itemsMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}

	// Every collected ECDSA signature must batch-verify over the wire.
	for off := 0; off < len(items); off += 32 {
		end := off + 32
		if end > len(items) {
			end = len(items)
		}
		res, err := clients[0].VerifyECDSABatch(ctx, montsys.CurveP256, items[off:end])
		if err != nil {
			return fmt.Errorf("batch verify [%d:%d]: %w", off, end, err)
		}
		for j, r := range res {
			if r.Err != nil || !r.OK {
				return fmt.Errorf("batch verify item %d: ok=%v err=%v (WRONG SIGNATURE)", off+j, r.OK, r.Err)
			}
		}
	}

	okl := okLats(lats)
	sort.Slice(okl, func(i, j int) bool { return okl[i] < okl[j] })
	fmt.Printf("%-8s %12s %12s %10s %10s %10s\n",
		"clients", "wall", "signs/s", "p50", "p95", "p99")
	fmt.Printf("%-8d %12s %12.1f %10s %10s %10s\n",
		cfg.clients, wall.Round(time.Millisecond),
		float64(len(okl))/wall.Seconds(),
		pct(okl, 50), pct(okl, 95), pct(okl, 99))
	fmt.Printf("ok %d/%d rsa signs, %d ecdsa batch-verified  errors: %s\n",
		len(okl), cfg.jobs, len(items), tally)
	return nil
}
