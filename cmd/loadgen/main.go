// Command loadgen hammers the multi-core engine with a mixed RSA-style
// modexp workload and prints a throughput/latency table per worker
// count, plus the engine's own stats line. It is the quickest way to
// see the replicated-core scaling story (and, on one core, the
// scheduling overhead floor) on real hardware.
//
// Usage:
//
//	loadgen [-workers 1,2,4,8] [-jobs 200] [-bits 512,1024] [-keys 4]
//	        [-kit model,cios,big,auto] [-variant guarded|faithful]
//	        [-exp full|f4] [-queue 0] [-timeout 0]
//	        [-listen :9090] [-linger 0] [-trace 4096] [-trace-sample 0]
//	        [-connect host:7077] [-clients 8] [-retries 3]
//	        [-tolerate integrity,overloaded] [-integrity]
//	        [-fault-rate 0] [-fault-seed 1] [-fault-cores 0]
//	        [-scenario modexp|sign|tenants|soak]
//	        [-duration 60s] [-adversaries 4]
//
// -scenario soak is the composed robustness run (remote only): mixed
// tenants hammer the fleet closed-loop for -duration with Zipf-skewed
// moduli while -adversaries hostile connections attack the same front
// door — slow-loris byte dribblers and malformed-frame senders. The
// scenario is built to run while the fleet churns underneath it
// (backends joining, leaving, being killed -9; see scripts/soak.sh):
// the verdict line demands zero wrong answers from anyone, zero
// client-visible errors for the well-behaved interactive tenant, and
// no windowed-p99 cliff across membership changes. See soak.go.
//
// -scenario tenants runs the multi-tenant isolation experiment (remote
// only): three tenants — a well-behaved interactive one, a hostile one
// flooding at 10× its quota, and best-effort bulk — share the fleet
// through the servers' QoS plane, moduli drawn Zipf-skewed so hot keys
// contend. The run prints per-tenant goodput, p99, and rejection
// counts, and fails if the well-behaved tenant's error rate exceeds
// its budget — the isolation assertion CI runs live. See tenants.go.
//
// -scenario sign drives the signing service instead of raw modexp
// (remote only — signing is a wire surface): RSA keys are generated
// over the wire (deterministic seeds), every job is a blinded RSA-CRT
// sign whose signature is verified client-side with math/big — a wrong
// signature is always fatal, like a wrong modexp answer — and every
// eighth job adds an ECDSA sign whose signature joins a final
// batch-verify call that must answer all-OK. See sign.go.
//
// -kit takes a comma-separated compute-kit list (model | sim | cios |
// big | auto) and sweeps every (kit, workers) combination, so one run
// compares the paper-faithful radix-2 path against the radix-2^64 CIOS
// fast path, the math/big oracle and the auto-selector side by side —
// the source of BENCH_kits.json. Rows are labelled per kit; under
// `auto` the stats line's kit_* counters show the selector's per-job
// choices. The older -mode flag remains as a shim: -mode simulate is
// -kit sim.
//
// Each sweep point drives the engine closed-loop from 2×workers
// submitter goroutines, measuring every job's submit→finish latency.
// Every result is self-checked against math/big; the run aborts on any
// mismatch — a wrong answer is always fatal, no flag can tolerate it.
// Ctrl-C (or SIGTERM) cancels the root context, which interrupts a
// sweep mid-flight and reports the partial point's error instead of
// hanging.
//
// Server-side errors are classified (integrity, overloaded, draining,
// backend_down, protocol, ...) and counted per class. By default any
// error aborts the run; -tolerate takes a comma-separated class list
// whose members are counted and skipped instead, and the per-class
// tally is printed at the end — chaos runs drive a faulty fleet with
// `-tolerate integrity` and then assert the integrity count (and every
// self-check) says zero wrong answers reached the client.
//
// In local (in-process) mode, -fault-rate/-fault-seed/-fault-cores
// wire the deterministic fault injector into the sweep engines and
// -integrity/-integrity-sample/-integrity-recompute arm the engine's
// result verification, so the whole chaos story can be rehearsed
// without a network.
//
// With -connect the same workload is fired at remote montsysd (or
// montsyslb) instances over the binary wire protocol instead of an
// in-process engine: -clients concurrent submitters share pooled,
// pipelined montsys.Clients, each call retried per the client's backoff
// policy, and the table reports the round-trip
// (client→network→engine→core) latency distribution. -connect takes a
// comma-separated address list and spreads jobs across the addresses
// round-robin, so a backend fleet can be driven directly — no proxy
// needed — as well as through montsyslb.
//
// With -listen the sweep can be watched live: a shared observability
// collector is attached to every sweep engine and served over HTTP —
// Prometheus text-format /metrics, expvar, /debug/pprof/* (attach
// `go tool pprof host:port/debug/pprof/profile` mid-sweep), and a
// /trace Chrome trace-event export of the last -trace job spans that
// opens in Perfetto. -linger keeps the process (and the endpoints)
// alive after the sweep so the final state can still be scraped.
//
// -trace-sample S mints a root trace context for fraction S of jobs:
// sampled requests travel the traced wire ops end to end, so the
// /trace exports of loadgen, montsyslb and every montsysd each hold
// their slice of the same trace tree (merge with cmd/tracecat). When a
// sampled request fails, loadgen prints its trace id, which greps
// straight into every process's wide-event log and trace export.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	montsys "repro"
)

func main() {
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts to sweep")
	jobs := flag.Int("jobs", 200, "jobs per sweep point")
	bitsList := flag.String("bits", "512,1024", "comma-separated modulus bit lengths, mixed round-robin")
	keys := flag.Int("keys", 4, "distinct moduli per bit length (exercises the context LRU)")
	kitList := flag.String("kit", "", "comma-separated compute kits to sweep: model | sim | cios | big | auto (default model, or sim under -mode simulate)")
	modeName := flag.String("mode", "model", "deprecated: execution mode model | simulate (use -kit)")
	variantName := flag.String("variant", "guarded", "array variant for the sim kit: guarded | faithful")
	expKind := flag.String("exp", "full", "exponent shape: full (private-key-size) | f4 (65537)")
	queue := flag.Int("queue", 0, "submission queue depth (0 = engine default)")
	timeout := flag.Duration("timeout", 0, "overall deadline per sweep point (0 = none)")
	seed := flag.Int64("seed", 1, "PRNG seed")
	listen := flag.String("listen", "", "serve /metrics, /debug/pprof and /trace on this address (e.g. :9090)")
	linger := flag.Duration("linger", 0, "keep serving the observability endpoints this long after the sweep")
	traceCap := flag.Int("trace", 4096, "span ring-buffer capacity for /trace (with -listen)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of jobs to trace end to end (0 disables, 1 every job)")
	connect := flag.String("connect", "", "drive remote montsysd/montsyslb instance(s) at this comma-separated address list instead of an in-process engine")
	clients := flag.Int("clients", 8, "concurrent submitters in -connect mode")
	retries := flag.Int("retries", 3, "client retry budget per call in -connect mode")
	tolerate := flag.String("tolerate", "", "comma-separated error classes to count instead of abort (e.g. integrity,overloaded)")
	integrity := flag.Bool("integrity", false, "local mode: verify every result inside the engine")
	integritySample := flag.Float64("integrity-sample", 1, "local mode: fraction of exponentiations fully re-verified")
	integrityRecompute := flag.Bool("integrity-recompute", true, "local mode: recompute corrupted jobs instead of failing them")
	faultRate := flag.Float64("fault-rate", 0, "local mode: inject bit-flip faults into this fraction of core results")
	faultSeed := flag.Int64("fault-seed", 1, "local mode: deterministic seed for -fault-rate")
	faultCores := flag.String("fault-cores", "", "local mode: comma-separated worker ids to fault (default all)")
	scenario := flag.String("scenario", "modexp", "workload: modexp | sign | tenants | soak (all but modexp require -connect)")
	duration := flag.Duration("duration", 60*time.Second, "soak scenario run length")
	adversaries := flag.Int("adversaries", 4, "soak scenario: concurrent adversarial connections (slow-loris + malformed frames)")
	flag.Parse()

	// The root context: Ctrl-C / SIGTERM cancels it, which aborts an
	// in-flight sweep (local or remote) cleanly instead of hanging in
	// eng.ModExp or a network wait.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := sweepConfig{
		scenario: *scenario, duration: *duration, adversaries: *adversaries,
		jobs: *jobs, keys: *keys, expKind: *expKind,
		queue: *queue, timeout: *timeout, seed: *seed,
		connect: *connect, clients: *clients, retries: *retries,
		traceSample: *traceSample,
		tolerate:    parseTolerate(*tolerate),
		integrity:   *integrity, integritySample: *integritySample,
		integrityRecompute: *integrityRecompute,
		faultRate:          *faultRate, faultSeed: *faultSeed, faultCores: *faultCores,
	}
	if *listen != "" {
		col := montsys.NewCollector(montsys.WithTracing(*traceCap))
		col.Tracer().SetProcess("loadgen")
		cfg.collector = col
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "loadgen:", err)
			os.Exit(1)
		}
		fmt.Printf("observability: http://%s/  (/metrics, /debug/pprof/, /trace)\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, montsys.NewObsHandler(col)); err != nil {
				fmt.Fprintln(os.Stderr, "loadgen: obs server:", err)
			}
		}()
	}
	if err := run(ctx, *workersList, *bitsList, *kitList, *modeName, *variantName, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	if *listen != "" && *linger > 0 {
		fmt.Printf("lingering %s for scrapes...\n", *linger)
		select {
		case <-time.After(*linger):
		case <-ctx.Done():
		}
	}
}

type sweepConfig struct {
	scenario    string        // "modexp" (default), "sign", "tenants", or "soak"
	duration    time.Duration // soak run length
	adversaries int           // soak adversarial connections
	jobs, keys  int
	expKind    string
	queue      int
	timeout    time.Duration
	seed       int64
	collector  *montsys.Collector // nil unless -listen
	connect    string             // nonempty = remote mode
	clients    int
	retries    int

	// traceSample is the fraction of jobs given a root trace context
	// (0 = none). Sampled jobs propagate their trace id through every
	// layer they touch, local or remote.
	traceSample float64

	// tolerate maps error classes (see classify) to "count and keep
	// going instead of aborting". Self-check mismatches are never
	// tolerated.
	tolerate map[string]bool

	// Local-mode chaos/integrity knobs.
	integrity          bool
	integritySample    float64
	integrityRecompute bool
	faultRate          float64
	faultSeed          int64
	faultCores         string
}

// parseTolerate turns the -tolerate comma list into a set.
func parseTolerate(s string) map[string]bool {
	m := make(map[string]bool)
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			m[p] = true
		}
	}
	return m
}

// classify buckets a call error into the class names -tolerate uses.
// The classes mirror the wire protocol's error codes, so a chaos run
// can speak the same vocabulary as the server's /metrics page.
func classify(err error) string {
	switch {
	case errors.Is(err, montsys.ErrIntegrity):
		return "integrity"
	case errors.Is(err, montsys.ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, montsys.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, montsys.ErrDraining):
		return "draining"
	case errors.Is(err, montsys.ErrBackendDown):
		return "backend_down"
	case errors.Is(err, montsys.ErrProtocol):
		return "protocol"
	case errors.Is(err, montsys.ErrEngineClosed):
		return "closed"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "other"
	}
}

// errorTally counts tolerated errors per class across submitters.
type errorTally struct {
	mu sync.Mutex
	n  map[string]int
}

func newErrorTally() *errorTally { return &errorTally{n: make(map[string]int)} }

func (t *errorTally) add(class string) {
	t.mu.Lock()
	t.n[class]++
	t.mu.Unlock()
}

func (t *errorTally) total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	sum := 0
	for _, v := range t.n {
		sum += v
	}
	return sum
}

// String renders "class=N" pairs in stable order, "none" when empty.
func (t *errorTally) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.n) == 0 {
		return "none"
	}
	classes := make([]string, 0, len(t.n))
	for c := range t.n {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	parts := make([]string, 0, len(classes))
	for _, c := range classes {
		parts = append(parts, fmt.Sprintf("%s=%d", c, t.n[c]))
	}
	return strings.Join(parts, " ")
}

// traceJob mints a root trace context for one job when -trace-sample is
// on; the returned context is what the call should run under. The zero
// TraceContext (sampling off, or this job not picked) means untraced.
func (cfg sweepConfig) traceJob(ctx context.Context) (context.Context, montsys.TraceContext) {
	if cfg.traceSample <= 0 {
		return ctx, montsys.TraceContext{}
	}
	tc := montsys.NewTraceContext(cfg.traceSample)
	return montsys.ContextWithTrace(ctx, tc), tc
}

// faultOptions translates the local-mode chaos flags into engine
// options (mirrors montsysd's flag wiring).
func (cfg sweepConfig) faultOptions() ([]montsys.EngineOption, error) {
	var opts []montsys.EngineOption
	if cfg.faultRate > 0 {
		fOpts := []montsys.FaultOption{
			montsys.WithFaultRate(cfg.faultRate),
			montsys.WithFaultSeed(cfg.faultSeed),
		}
		if cfg.faultCores != "" {
			ids, err := splitInts(cfg.faultCores)
			if err != nil {
				return nil, fmt.Errorf("-fault-cores: %w", err)
			}
			fOpts = append(fOpts, montsys.WithFaultCores(ids...))
		}
		opts = append(opts, montsys.WithEngineFaultInjector(montsys.NewFaultInjector(fOpts...)))
	}
	if cfg.integrity {
		opts = append(opts,
			montsys.WithEngineIntegrityCheck(cfg.integritySample),
			montsys.WithEngineIntegrityRecompute(cfg.integrityRecompute))
	}
	return opts, nil
}

func run(ctx context.Context, workersList, bitsList, kitList, modeName, variantName string, cfg sweepConfig) error {
	// -kit wins when given; otherwise the deprecated -mode flag picks
	// the matching kit so old invocations behave identically.
	if kitList == "" {
		switch modeName {
		case "model":
			kitList = "model"
		case "simulate":
			kitList = "sim"
		default:
			return fmt.Errorf("unknown mode %q", modeName)
		}
	}
	var sweepKits []montsys.Kit
	for _, p := range strings.Split(kitList, ",") {
		k, err := montsys.ParseKit(p)
		if err != nil {
			return err
		}
		sweepKits = append(sweepKits, k)
	}
	var variant montsys.Variant
	switch variantName {
	case "guarded":
		variant = montsys.Guarded
	case "faithful":
		variant = montsys.Faithful
	default:
		return fmt.Errorf("unknown variant %q", variantName)
	}
	bits, err := splitInts(bitsList)
	if err != nil {
		return err
	}

	switch cfg.scenario {
	case "", "modexp":
	case "sign":
		return runSign(ctx, cfg, bits)
	case "tenants":
		return runTenants(ctx, cfg, bits)
	case "soak":
		return runSoak(ctx, cfg, bits)
	default:
		return fmt.Errorf("unknown scenario %q", cfg.scenario)
	}

	// One fixed workload, reused across every sweep point so the rows
	// are comparable.
	rng := rand.New(rand.NewSource(cfg.seed))
	moduli := make([]*big.Int, 0, len(bits)*cfg.keys)
	for _, l := range bits {
		for k := 0; k < cfg.keys; k++ {
			n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
			n.SetBit(n, l-1, 1)
			n.SetBit(n, 0, 1)
			moduli = append(moduli, n)
		}
	}
	batch := make([]montsys.ModExpJob, cfg.jobs)
	for i := range batch {
		n := moduli[i%len(moduli)]
		base := new(big.Int).Rand(rng, n)
		var exp *big.Int
		switch cfg.expKind {
		case "full":
			exp = new(big.Int).Rand(rng, n)
			exp.SetBit(exp, 0, 1)
		case "f4":
			exp = big.NewInt(65537)
		default:
			return fmt.Errorf("unknown exponent shape %q", cfg.expKind)
		}
		batch[i] = montsys.ModExpJob{N: n, Base: base, Exp: exp}
	}

	if cfg.connect != "" {
		return runRemote(ctx, cfg, bits, batch)
	}

	workers, err := splitInts(workersList)
	if err != nil {
		return err
	}
	kitNames := make([]string, len(sweepKits))
	for i, k := range sweepKits {
		kitNames[i] = k.String()
	}
	fmt.Printf("loadgen: %d jobs, bits=%v, %d moduli, kits=%s, exp=%s\n\n",
		cfg.jobs, bits, len(moduli), strings.Join(kitNames, ","), cfg.expKind)
	fmt.Printf("%-6s %-8s %12s %12s %10s %10s %10s %10s\n",
		"kit", "workers", "wall", "jobs/s", "p50", "p95", "p99", "speedup")

	for _, kit := range sweepKits {
		// The speedup column resets per kit: it shows worker scaling
		// within a kit, not cross-kit ratios (read jobs/s for those).
		var base float64
		for _, w := range workers {
			wall, lats, st, err := sweep(ctx, w, kit, variant, cfg, batch)
			if err != nil {
				return fmt.Errorf("kit=%s w=%d: %w", kit, w, err)
			}
			tput := float64(len(batch)) / wall.Seconds()
			if base == 0 {
				base = tput
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			fmt.Printf("%-6s %-8d %12s %12.1f %10s %10s %10s %9.2fx\n",
				kit, w, wall.Round(time.Millisecond), tput,
				pct(lats, 50), pct(lats, 95), pct(lats, 99), tput/base)
			fmt.Printf("                stats: %s\n", st)
		}
	}
	return nil
}

// runRemote drives one or more montsysd/montsyslb instances instead of
// an in-process engine: the same workload, submitted by cfg.clients
// concurrent goroutines over pooled pipelined clients — one per
// -connect address, jobs spread round-robin — each result self-checked
// against math/big.
func runRemote(ctx context.Context, cfg sweepConfig, bits []int, batch []montsys.ModExpJob) error {
	addrs := strings.Split(cfg.connect, ",")
	clients := make([]*montsys.Client, 0, len(addrs))
	for _, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		clOpts := []montsys.ClientOption{
			montsys.WithClientPoolSize(cfg.clients),
			montsys.WithClientMaxRetries(cfg.retries),
		}
		if cfg.collector != nil && cfg.collector.Tracer() != nil {
			// Client-layer spans of sampled jobs record into loadgen's
			// own /trace ring (rate 0: roots are minted per job below,
			// so the sampling decision stays in one place).
			clOpts = append(clOpts, montsys.WithClientTracing(cfg.collector.Tracer(), 0))
		}
		cl := montsys.Dial(a, clOpts...)
		defer cl.Close()
		clients = append(clients, cl)
	}
	if len(clients) == 0 {
		return fmt.Errorf("no address in -connect %q", cfg.connect)
	}
	fmt.Printf("loadgen: %d jobs, bits=%v, %d remote(s) %s, %d clients, %d retries\n\n",
		cfg.jobs, bits, len(clients), cfg.connect, cfg.clients, cfg.retries)

	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	submitters := cfg.clients
	if submitters < 1 {
		submitters = 1
	}
	if submitters > len(batch) {
		submitters = len(batch)
	}
	lats := make([]time.Duration, len(batch))
	idx := make(chan int, len(batch))
	for i := range batch {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	errCh := make(chan error, submitters)
	tally := newErrorTally()
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					return
				}
				j := batch[i]
				callCtx, tc := cfg.traceJob(ctx)
				t0 := time.Now()
				v, err := clients[i%len(clients)].ModExp(callCtx, j.N, j.Base, j.Exp)
				lats[i] = time.Since(t0)
				if err != nil {
					if tc.Sampled {
						// The id greps into every layer's wide-event log
						// and /trace export.
						fmt.Printf("job %d failed: trace_id=%s err=%v\n", i, tc.TraceID, err)
					}
					if class := classify(err); cfg.tolerate[class] {
						tally.add(class)
						lats[i] = -1
						continue
					}
					errCh <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				// A wrong answer is always fatal — no -tolerate class
				// covers it. Zero of these is the chaos-run contract.
				if want := new(big.Int).Exp(j.Base, j.Exp, j.N); v.Cmp(want) != 0 {
					errCh <- fmt.Errorf("job %d: self-check failed (WRONG ANSWER)", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errCh:
		return err
	default:
	}
	lats = okLats(lats)
	fmt.Printf("%-8s %12s %12s %10s %10s %10s\n",
		"clients", "wall", "jobs/s", "p50", "p95", "p99")
	fmt.Printf("%-8d %12s %12.1f %10s %10s %10s\n",
		cfg.clients, wall.Round(time.Millisecond),
		float64(len(lats))/wall.Seconds(),
		pct(lats, 50), pct(lats, 95), pct(lats, 99))
	fmt.Printf("ok %d/%d  errors: %s\n", len(lats), len(batch), tally)
	return nil
}

// okLats drops the -1 markers of tolerated-error jobs and sorts what
// remains, so percentiles describe only answered requests.
func okLats(lats []time.Duration) []time.Duration {
	out := lats[:0]
	for _, l := range lats {
		if l >= 0 {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sweep drives one worker count: 2×workers closed-loop submitters, each
// job's latency measured around the engine call and its result
// self-checked against math/big. The caller's context flows into every
// engine call, so a signal interrupts the sweep promptly.
func sweep(ctx context.Context, w int, kit montsys.Kit, variant montsys.Variant, cfg sweepConfig, batch []montsys.ModExpJob) (time.Duration, []time.Duration, montsys.EngineStats, error) {
	opts := []montsys.EngineOption{
		montsys.WithEngineWorkers(w),
		montsys.WithEngineKit(kit),
		montsys.WithEngineArrayVariant(variant),
	}
	if cfg.queue > 0 {
		opts = append(opts, montsys.WithEngineQueueDepth(cfg.queue))
	}
	chaosOpts, err := cfg.faultOptions()
	if err != nil {
		return 0, nil, montsys.EngineStats{}, err
	}
	opts = append(opts, chaosOpts...)
	if cfg.collector != nil {
		opts = append(opts, montsys.WithEngineObserver(cfg.collector))
		cfg.collector.SetEngineInfo(w, kit.String(), fmt.Sprint(variant))
	}
	eng, err := montsys.NewEngine(opts...)
	if err != nil {
		return 0, nil, montsys.EngineStats{}, err
	}
	defer eng.Close()

	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	submitters := 2 * w
	if submitters > len(batch) {
		submitters = len(batch)
	}
	lats := make([]time.Duration, len(batch))
	idx := make(chan int, len(batch))
	for i := range batch {
		idx <- i
	}
	close(idx)

	var wg sync.WaitGroup
	errCh := make(chan error, submitters)
	tally := newErrorTally()
	start := time.Now()
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				j := batch[i]
				callCtx, tc := cfg.traceJob(ctx)
				t0 := time.Now()
				v, _, err := eng.ModExp(callCtx, j.N, j.Base, j.Exp)
				lats[i] = time.Since(t0)
				if err != nil {
					if tc.Sampled {
						fmt.Printf("job %d failed: trace_id=%s err=%v\n", i, tc.TraceID, err)
					}
					if class := classify(err); cfg.tolerate[class] {
						tally.add(class)
						lats[i] = -1
						continue
					}
					errCh <- fmt.Errorf("job %d: %w", i, err)
					return
				}
				// Always fatal, regardless of -tolerate: a wrong answer
				// escaped every integrity net.
				if want := new(big.Int).Exp(j.Base, j.Exp, j.N); v.Cmp(want) != 0 {
					errCh <- fmt.Errorf("job %d: self-check failed (WRONG ANSWER)", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	st := eng.Stats()
	select {
	case err := <-errCh:
		return 0, nil, st, err
	default:
	}
	if tally.total() > 0 {
		fmt.Printf("         errors: %s\n", tally)
	}
	return wall, okLats(lats), st, nil
}

// pct returns the p-th percentile of sorted latencies.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (len(sorted)-1)*p/100 + 1
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i].Round(100 * time.Microsecond)
}

func splitInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}
