// Package cryptosvc turns the modexp engine into a crypto signing
// service: RSA key generation, RSA sign/verify with the private-key
// operation under CRT, and ECDSA sign / batch verify — the workload
// the paper's §4.5 and §5 motivate, executed end to end on the
// reproduced Montgomery arithmetic.
//
// RSA-CRT runs its two half-size exponentiations (mod P and mod Q) as
// two engine jobs submitted in one batch, so a multi-core engine
// schedules them concurrently — the software image of the paper's
// replicated systolic arrays (§5, Fig. 5) — and recombines them with
// Garner's formula. ECDSA batch verification fans its per-signature
// scalar-field inversions (Fermat exponentiations mod the group order)
// through the same engine batch path.
//
// Private-key paths are hardened in the style of the quad-core RSA
// processor of arXiv 2009.03468:
//
//   - Message blinding: the digest is masked with r^E mod N for a
//     fresh random r before exponentiation and unmasked with r⁻¹
//     afterwards, so the exponentiation's operand sequence is
//     decorrelated from attacker-chosen input.
//   - Exponent blinding: each CRT exponent is replaced by
//     d' = d + r·(p−1) for a fresh random r, drawn so that d' has a
//     fixed bit length — the square-and-multiply schedule has constant
//     length and its multiply pattern depends only on the fresh
//     randomizer, independent of the key bits.
//   - Verify-before-release: every signature is checked against the
//     public key before it leaves the service, so a faulted CRT half
//     (the Bellcore attack: one wrong half-exponentiation factors N)
//     surfaces as errs.ErrIntegrity, never as a released signature.
//
// The leakage claims are not taken on faith: sca_gate.go derives the
// multiply-schedule traces the sign path would execute and runs
// internal/sca's fixed-vs-random Welch t-test over them, asserting
// |t| < sca.TVLAThreshold on the blinded path and demonstrating the
// same harness flags the unblinded one.
package cryptosvc

import (
	"context"
	"crypto/hmac"
	crand "crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"sync"

	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/errs"
	"repro/internal/rsa"
)

// Curve ids are wire-stable: append-only, like the op codes.
const (
	CurveP256 uint8 = 1
	CurveP384 uint8 = 2
)

var (
	curveOnce sync.Once
	curveP256 *ecc.Curve
	curveP384 *ecc.Curve
	curveErr  error
)

// CurveByID resolves a wire curve id to the shared curve instance
// (curves carry a Montgomery context and are built once per process).
func CurveByID(id uint8) (*ecc.Curve, error) {
	curveOnce.Do(func() {
		if curveP256, curveErr = ecc.P256(); curveErr != nil {
			return
		}
		curveP384, curveErr = ecc.P384()
	})
	if curveErr != nil {
		return nil, curveErr
	}
	switch id {
	case CurveP256:
		return curveP256, nil
	case CurveP384:
		return curveP384, nil
	default:
		return nil, fmt.Errorf("cryptosvc: unknown curve id %d: %w", id, errs.ErrBadKey)
	}
}

// ECDSAVerifyItem is one signature to check in a batch: the public
// point, the (R, S) pair and the digest (as an integer, reduced mod
// the group order).
type ECDSAVerifyItem struct {
	Qx, Qy *big.Int
	R, S   *big.Int
	Digest *big.Int
}

// VerifyResult is one batch item's outcome. OK reports signature
// validity; Err is non-nil only for malformed items (bad point, bad
// ranges) or compute failures — an invalid-but-well-formed signature
// is OK=false, Err=nil.
type VerifyResult struct {
	OK  bool
	Err error
}

// Service executes signing-service operations on an engine. It holds
// no key material between calls — every request carries its own key,
// exactly like the wire ops that front it — so any number of servers
// can answer for the same keys (the cluster tier routes repeat-key
// traffic to one home backend only to keep context caches warm).
type Service struct {
	eng       *engine.Engine
	blinding  bool
	blindBits int

	// seeded is the deterministic blinding source installed by
	// WithBlindSeed — tests and trace campaigns only. When nil (the
	// default, and the only production configuration) all blinding
	// randomness comes from crypto/rand.
	mu     sync.Mutex
	seeded *rand.Rand
}

// drawFunc produces a uniform value in [0, bound). The service's own
// source is Service.randInt; the SCA campaign substitutes a seeded one
// so trace derivation never touches the live service's state.
type drawFunc func(bound *big.Int) (*big.Int, error)

// Option configures New.
type Option func(*Service)

// WithBlinding toggles message + exponent blinding on the private-key
// paths (default on). Turning it off exists for benchmarks and for the
// SCA gate's teeth check — production paths should never disable it.
func WithBlinding(on bool) Option { return func(s *Service) { s.blinding = on } }

// WithBlindBits sets the bit width of the exponent-blinding randomizer
// (default 64).
func WithBlindBits(n int) Option {
	return func(s *Service) {
		if n > 0 {
			s.blindBits = n
		}
	}
}

// WithBlindSeed makes the blinding randomness deterministic — for
// tests and the SCA gate only. Without it the service draws every
// blind from crypto/rand; a predictable blinding source would defeat
// the countermeasures outright.
func WithBlindSeed(seed int64) Option {
	return func(s *Service) { s.seeded = rand.New(rand.NewSource(seed)) }
}

// New builds a signing service over eng. The engine stays
// caller-owned; closing the service's engine fails in-flight calls
// with errs.ErrEngineClosed like any other engine submission.
func New(eng *engine.Engine, opts ...Option) *Service {
	s := &Service{
		eng:       eng,
		blinding:  true,
		blindBits: 64,
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Blinding reports whether the private-key paths blind.
func (s *Service) Blinding() bool { return s.blinding }

// randInt draws a uniform value in [0, bound) from the service's
// blinding source: crypto/rand by default, the (locked) seeded rand
// only when WithBlindSeed installed one.
func (s *Service) randInt(bound *big.Int) (*big.Int, error) {
	if s.seeded != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return new(big.Int).Rand(s.seeded, bound), nil
	}
	v, err := crand.Int(crand.Reader, bound)
	if err != nil {
		return nil, fmt.Errorf("cryptosvc: blinding entropy unavailable: %w", err)
	}
	return v, nil
}

// KeygenRSA generates an RSA key pair with an n-bit modulus, all
// randomness drawn from the given seed — the same (bits, seed) pair
// always yields the same key, which is what makes the wire op
// idempotent and therefore safely retryable.
//
// Reproduction/test use only: the entire key derives from a 64-bit
// seed, capping its effective entropy at 64 bits — brute-forceable,
// and the seed crosses the wire in the clear besides. Keys worth
// protecting are generated locally with KeygenRSACrypto and never
// minted by a remote service.
func (s *Service) KeygenRSA(ctx context.Context, bits int, seed int64) (*rsa.PrivateKey, error) {
	if bits < 16 || bits > 8192 || bits%2 != 0 {
		return nil, fmt.Errorf("cryptosvc: key size %d must be even and in [16, 8192]: %w",
			bits, errs.ErrOperandRange)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Prime generation dogfoods the repository's Montgomery arithmetic
	// (Miller–Rabin witnesses exponentiated through internal/mont); it
	// runs on the serving goroutine, not the engine, because its
	// exponent count is data-dependent and unbounded.
	return rsa.GenerateKey(bits, nil, rand.New(rand.NewSource(seed)))
}

// KeygenRSACrypto generates an RSA key pair with all randomness drawn
// from crypto/rand — the variant for keys that are meant to stay
// secret. It is deliberately NOT a wire op: a key worth protecting is
// generated where it will live, not produced by a remote service and
// shipped back over the network.
func (s *Service) KeygenRSACrypto(ctx context.Context, bits int) (*rsa.PrivateKey, error) {
	if bits < 16 || bits > 8192 || bits%2 != 0 {
		return nil, fmt.Errorf("cryptosvc: key size %d must be even and in [16, 8192]: %w",
			bits, errs.ErrOperandRange)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return rsa.GenerateKey(bits, nil, rand.New(cryptoSource{}))
}

// cryptoSource adapts crypto/rand to math/rand's Source64, so the
// crypto-quality keygen reuses the same dogfooded prime-generation
// path as the deterministic one. An entropy-read failure is
// unrecoverable mid-draw and panics, like crypto/rand.Read itself.
type cryptoSource struct{}

func (cryptoSource) Uint64() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		panic("cryptosvc: crypto/rand read failed: " + err.Error())
	}
	return binary.BigEndian.Uint64(b[:])
}

func (c cryptoSource) Int63() int64 { return int64(c.Uint64() >> 1) }
func (cryptoSource) Seed(int64)     {}

// checkRSAPrivate validates key material before any private-key
// operation touches it. Every failure wraps errs.ErrBadKey.
func checkRSAPrivate(key *rsa.PrivateKey) error {
	if key == nil || key.N == nil || key.E == nil || key.D == nil {
		return fmt.Errorf("cryptosvc: missing RSA key component: %w", errs.ErrBadKey)
	}
	if key.N.Bit(0) == 0 || key.N.BitLen() < 8 {
		return fmt.Errorf("cryptosvc: RSA modulus must be odd and ≥ 8 bits: %w", errs.ErrBadKey)
	}
	if key.E.Sign() <= 0 || key.E.Bit(0) == 0 {
		return fmt.Errorf("cryptosvc: RSA public exponent must be positive and odd: %w", errs.ErrBadKey)
	}
	if key.D.Sign() <= 0 {
		return fmt.Errorf("cryptosvc: RSA private exponent must be positive: %w", errs.ErrBadKey)
	}
	if key.P == nil && key.Q == nil {
		return nil // non-CRT key: N, E, D only
	}
	if key.P == nil || key.Q == nil || key.DP == nil || key.DQ == nil || key.QInv == nil {
		return fmt.Errorf("cryptosvc: partial CRT key: %w", errs.ErrBadKey)
	}
	if new(big.Int).Mul(key.P, key.Q).Cmp(key.N) != 0 {
		return fmt.Errorf("cryptosvc: N ≠ P·Q: %w", errs.ErrBadKey)
	}
	pm1 := new(big.Int).Sub(key.P, big.NewInt(1))
	qm1 := new(big.Int).Sub(key.Q, big.NewInt(1))
	if new(big.Int).Mod(key.D, pm1).Cmp(key.DP) != 0 ||
		new(big.Int).Mod(key.D, qm1).Cmp(key.DQ) != 0 {
		return fmt.Errorf("cryptosvc: CRT exponents disagree with D: %w", errs.ErrBadKey)
	}
	chk := new(big.Int).Mul(key.QInv, key.Q)
	if chk.Mod(chk, key.P).Cmp(big.NewInt(1)) != 0 {
		return fmt.Errorf("cryptosvc: QInv·Q ≢ 1 mod P: %w", errs.ErrBadKey)
	}
	return nil
}

// modexp runs one exponentiation on the engine.
func (s *Service) modexp(ctx context.Context, n, base, exp *big.Int) (*big.Int, error) {
	v, _, err := s.eng.ModExp(ctx, n, base, exp)
	return v, err
}

// SignRSA signs a digest: sig = digest^D mod N, via CRT when the key
// carries its CRT constants — the two half-size exponentiations are
// submitted as one engine batch so a multi-core engine runs them
// concurrently, then recombined with Garner's formula. With blinding
// on (the default) the digest is message-blinded and both CRT
// exponents are additively blinded to a fixed bit length. The
// signature is verified against the public key before release; a
// mismatch (a faulted half — the Bellcore attack vector) returns
// errs.ErrIntegrity and no signature.
func (s *Service) SignRSA(ctx context.Context, key *rsa.PrivateKey, digest *big.Int) (*big.Int, error) {
	if err := checkRSAPrivate(key); err != nil {
		return nil, err
	}
	if digest == nil || digest.Sign() <= 0 {
		return nil, fmt.Errorf("cryptosvc: digest must be positive: %w", errs.ErrOperandRange)
	}
	h := new(big.Int).Mod(digest, key.N)
	if h.Sign() == 0 {
		return nil, fmt.Errorf("cryptosvc: degenerate digest (≡ 0 mod N): %w", errs.ErrOperandRange)
	}

	// Message blinding: base = h·r^E mod N, unblinded by r⁻¹ after the
	// private-key operation (sig' = (h·r^E)^D = h^D·r mod N).
	base := h
	var rInv *big.Int
	if s.blinding {
		r, ri, err := s.drawBlindPair(key.N)
		if err != nil {
			return nil, err
		}
		rInv = ri
		rE, err := s.modexp(ctx, key.N, r, key.E)
		if err != nil {
			return nil, err
		}
		base = new(big.Int).Mul(h, rE)
		base.Mod(base, key.N)
	}

	var sig *big.Int
	var err error
	if key.P != nil {
		sig, err = s.signCRT(ctx, key, base)
	} else {
		// Non-CRT key: without the factorization there is no group
		// order to blind the exponent with; message blinding (above)
		// still applies.
		sig, err = s.modexp(ctx, key.N, base, key.D)
	}
	if err != nil {
		return nil, err
	}
	if rInv != nil {
		sig.Mul(sig, rInv)
		sig.Mod(sig, key.N)
	}

	// Verify-before-release: recompute sig^E mod N and compare with the
	// digest. The check runs on the engine too, but it cannot be fooled
	// by a faulty core — a corrupted verification only rejects a good
	// signature (safe), it cannot make a bad one match h.
	chk, err := s.modexp(ctx, key.N, sig, key.E)
	if err != nil {
		return nil, err
	}
	if chk.Cmp(h) != 0 {
		return nil, fmt.Errorf("cryptosvc: signature failed verify-before-release: %w", errs.ErrIntegrity)
	}
	return sig, nil
}

// drawBlindPair draws r invertible mod n and its inverse.
func (s *Service) drawBlindPair(n *big.Int) (r, rInv *big.Int, err error) {
	for attempt := 0; attempt < 100; attempt++ {
		if r, err = s.randInt(n); err != nil {
			return nil, nil, err
		}
		if r.Sign() == 0 {
			continue
		}
		if rInv = new(big.Int).ModInverse(r, n); rInv != nil {
			return r, rInv, nil
		}
	}
	return nil, nil, fmt.Errorf("cryptosvc: could not draw invertible blind: %w", errs.ErrBadKey)
}

// signCRT runs the two half-size exponentiations as one engine batch
// and Garner-recombines. base is already message-blinded when blinding
// is on.
func (s *Service) signCRT(ctx context.Context, key *rsa.PrivateKey, base *big.Int) (*big.Int, error) {
	dp, dq := key.DP, key.DQ
	if s.blinding {
		var err error
		if dp, err = s.blindExponent(key.DP, key.P, s.randInt); err != nil {
			return nil, err
		}
		if dq, err = s.blindExponent(key.DQ, key.Q, s.randInt); err != nil {
			return nil, err
		}
	}
	jobs := []engine.ModExpJob{
		{N: key.P, Base: new(big.Int).Mod(base, key.P), Exp: dp},
		{N: key.Q, Base: new(big.Int).Mod(base, key.Q), Exp: dq},
	}
	res, err := s.eng.ModExpBatch(ctx, jobs)
	if err != nil {
		return nil, err
	}
	for _, r := range res {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	m1, m2 := res[0].Value, res[1].Value
	// Garner: sig = m2 + Q·(QInv·(m1 − m2) mod P).
	t := new(big.Int).Sub(m1, m2)
	t.Mul(t, key.QInv)
	t.Mod(t, key.P)
	sig := new(big.Int).Mul(t, key.Q)
	sig.Add(sig, m2)
	return sig, nil
}

// blindExponent returns d + r·(p−1) with r drawn from [2^(B−1), 2^B)
// until the sum's bit length equals BitLen(p−1)+B exactly, so every
// blinded exponent for a given prime has the same length: the
// square-and-multiply schedule has constant shape and its multiply
// pattern depends only on the fresh randomizer. (Additive blinding
// leaves d mod 2^v invariant for v = v₂(p−1) — a few trailing
// schedule steps; see the SCA gate's window note.) The randomizer
// comes from draw so the SCA campaign can substitute its own seeded
// source without touching the service's.
func (s *Service) blindExponent(d, p *big.Int, draw drawFunc) (*big.Int, error) {
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	target := pm1.BitLen() + s.blindBits
	span := new(big.Int).Lsh(big.NewInt(1), uint(s.blindBits-1))
	for {
		r, err := draw(span)
		if err != nil {
			return nil, err
		}
		r.Or(r, span) // force the top randomizer bit: r ∈ [2^(B−1), 2^B)
		b := new(big.Int).Mul(r, pm1)
		b.Add(b, d)
		if b.BitLen() == target {
			return b, nil
		}
	}
}

// VerifyRSA checks sig against digest under (n, e). An out-of-range
// or mismatched signature is (false, nil); errors are reserved for bad
// parameters or compute failures.
func (s *Service) VerifyRSA(ctx context.Context, n, e, digest, sig *big.Int) (bool, error) {
	if n == nil || e == nil || n.Bit(0) == 0 || n.BitLen() < 8 || e.Sign() <= 0 {
		return false, fmt.Errorf("cryptosvc: bad RSA public key: %w", errs.ErrBadKey)
	}
	if digest == nil || sig == nil {
		return false, fmt.Errorf("cryptosvc: nil digest or signature: %w", errs.ErrOperandRange)
	}
	if sig.Sign() <= 0 || sig.Cmp(n) >= 0 {
		return false, nil
	}
	recovered, err := s.modexp(ctx, n, sig, e)
	if err != nil {
		return false, err
	}
	h := new(big.Int).Mod(digest, n)
	return recovered.Cmp(h) == 0, nil
}

// deriveNonce derives the ECDSA nonce for (seed, attempt, d, digest)
// deterministically — an RFC-6979-shaped HMAC-DRBG over SHA-256 — so
// the wire op is a pure function of its request and safe to retry.
//
// Uniformity matters as much as determinism here: the construction
// expands an HMAC keystream to the order's full byte length, truncates
// bits2int-style to exactly BitLen(order) bits, and rejection-samples
// until k ∈ [1, n−1]. A single mod-reduced SHA-256 digest would leave
// every P-384 nonce under 2^256 (128 known-zero top bits) and even
// P-256 nonces modulo-biased — either bias lets a lattice/HNP attack
// recover the private scalar from a handful of signatures. Each
// variable-length input is length-prefixed so distinct (d, digest)
// pairs can never collide into the same transcript and hence the same
// nonce across different keys.
func deriveNonce(order *big.Int, seed int64, attempt int, d, digest *big.Int) *big.Int {
	// Extract: bind every request field into one PRK.
	mac := hmac.New(sha256.New, []byte("montsys-ecdsa-nonce/v2"))
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(seed))
	mac.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(attempt))
	mac.Write(buf[:])
	writeLenPrefixed(mac, d)
	writeLenPrefixed(mac, digest)
	prk := mac.Sum(nil)

	qBits := order.BitLen()
	qBytes := (qBits + 7) / 8
	for ctr := uint64(0); ; ctr++ {
		// Expand: counter-mode HMAC keystream of ≥ qBytes per candidate.
		stream := make([]byte, 0, qBytes+sha256.Size)
		for block := uint64(0); len(stream) < qBytes; block++ {
			m := hmac.New(sha256.New, prk)
			binary.BigEndian.PutUint64(buf[:], ctr)
			m.Write(buf[:])
			binary.BigEndian.PutUint64(buf[:], block)
			m.Write(buf[:])
			stream = m.Sum(stream)
		}
		k := new(big.Int).SetBytes(stream[:qBytes])
		k.Rsh(k, uint(8*qBytes-qBits)) // bits2int: keep the top qBits
		if k.Sign() > 0 && k.Cmp(order) < 0 {
			return k // uniform over [1, n−1]
		}
	}
}

// writeLenPrefixed feeds v's minimal big-endian bytes into w preceded
// by their 8-byte big-endian length, keeping field boundaries
// unambiguous in the hashed transcript.
func writeLenPrefixed(w io.Writer, v *big.Int) {
	b := v.Bytes()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(b)))
	w.Write(lenBuf[:])
	w.Write(b)
}

// SignECDSA signs a digest with the private scalar d on the identified
// curve, deriving the nonce deterministically from seed. The
// scalar-field inversion runs through the engine (Fermat), blinded: a
// fresh random u masks the inversion input (k⁻¹ = u·(u·k)⁻¹) and the
// private-scalar product (s = (u·k)⁻¹·(u·e + r·(u·d))), so neither k
// nor d meets the engine unmasked. The signature equation is
// re-checked with the locally known nonce before release; a faulted
// inversion returns errs.ErrIntegrity.
func (s *Service) SignECDSA(ctx context.Context, curveID uint8, d, digest *big.Int, seed int64) (r, sOut *big.Int, err error) {
	curve, err := CurveByID(curveID)
	if err != nil {
		return nil, nil, err
	}
	n := curve.Order
	if d == nil || d.Sign() <= 0 || d.Cmp(n) >= 0 {
		return nil, nil, fmt.Errorf("cryptosvc: ECDSA scalar out of [1, order-1]: %w", errs.ErrBadKey)
	}
	if digest == nil || digest.Sign() < 0 {
		return nil, nil, fmt.Errorf("cryptosvc: bad ECDSA digest: %w", errs.ErrOperandRange)
	}
	e := new(big.Int).Mod(digest, n)
	nm2 := new(big.Int).Sub(n, big.NewInt(2))

	for attempt := 0; attempt < 100; attempt++ {
		k := deriveNonce(n, seed, attempt, d, digest)
		pt, err := curve.ScalarBaseMult(k)
		if err != nil {
			return nil, nil, err
		}
		x1, _, ok := curve.Affine(pt)
		if !ok {
			continue
		}
		r = new(big.Int).Mod(x1, n)
		if r.Sign() == 0 {
			continue
		}

		// Masked inversion and combination.
		u := big.NewInt(1)
		if s.blinding {
			nm1 := new(big.Int).Sub(n, big.NewInt(1))
			if u, err = s.randInt(nm1); err != nil {
				return nil, nil, err
			}
			u.Add(u, big.NewInt(1))
		}
		uk := new(big.Int).Mul(u, k)
		uk.Mod(uk, n)
		ukInv, err := s.modexp(ctx, n, uk, nm2) // (u·k)⁻¹ by Fermat
		if err != nil {
			return nil, nil, err
		}
		ud := new(big.Int).Mul(u, d)
		ud.Mod(ud, n)
		t := new(big.Int).Mul(r, ud) // u·(e + r·d) mod n
		t.Add(t, new(big.Int).Mul(u, e))
		t.Mod(t, n)
		sOut = new(big.Int).Mul(ukInv, t)
		sOut.Mod(sOut, n)
		if sOut.Sign() == 0 {
			continue
		}

		// Verify-before-release with the locally known nonce:
		// s·k ≡ e + r·d (mod n) must hold, or the engine's inversion
		// was corrupted.
		lhs := new(big.Int).Mul(sOut, k)
		lhs.Mod(lhs, n)
		rhs := new(big.Int).Mul(r, d)
		rhs.Add(rhs, e)
		rhs.Mod(rhs, n)
		if lhs.Cmp(rhs) != 0 {
			return nil, nil, fmt.Errorf("cryptosvc: ECDSA signature failed verify-before-release: %w", errs.ErrIntegrity)
		}
		return r, sOut, nil
	}
	return nil, nil, fmt.Errorf("cryptosvc: ECDSA signing exhausted attempts: %w", errs.ErrOperandRange)
}

// VerifyECDSABatch checks a batch of signatures on one curve. The
// per-item scalar-field inversions (w = s⁻¹ mod order, by Fermat) are
// fanned through the engine's batch path in a single submission —
// exactly how batched modexp rides the replicated cores — then each
// item finishes with local curve arithmetic. Results are positional;
// a malformed item fails alone (VerifyResult.Err), it never fails the
// batch.
func (s *Service) VerifyECDSABatch(ctx context.Context, curveID uint8, items []ECDSAVerifyItem) ([]VerifyResult, error) {
	curve, err := CurveByID(curveID)
	if err != nil {
		return nil, err
	}
	n := curve.Order
	nm2 := new(big.Int).Sub(n, big.NewInt(2))
	out := make([]VerifyResult, len(items))

	// Phase 1: validate, and collect inversion jobs for the well-formed
	// items.
	jobs := make([]engine.ModExpJob, 0, len(items))
	jobIdx := make([]int, 0, len(items))
	for i, it := range items {
		switch {
		case it.Qx == nil || it.Qy == nil || it.R == nil || it.S == nil || it.Digest == nil:
			out[i] = VerifyResult{Err: fmt.Errorf("cryptosvc: item %d: missing field: %w", i, errs.ErrOperandRange)}
		case !curve.IsOnCurve(it.Qx, it.Qy):
			out[i] = VerifyResult{Err: fmt.Errorf("cryptosvc: item %d: public point not on curve: %w", i, errs.ErrBadKey)}
		case it.R.Sign() <= 0 || it.R.Cmp(n) >= 0 || it.S.Sign() <= 0 || it.S.Cmp(n) >= 0:
			out[i] = VerifyResult{OK: false} // out-of-range (r, s): invalid, not an error
		default:
			jobs = append(jobs, engine.ModExpJob{N: n, Base: it.S, Exp: nm2})
			jobIdx = append(jobIdx, i)
		}
	}
	if len(jobs) == 0 {
		return out, nil
	}

	// Phase 2: all inversions in one engine batch.
	res, err := s.eng.ModExpBatch(ctx, jobs)
	if err != nil {
		return nil, err
	}

	// Phase 3: finish each item with curve arithmetic.
	for j, r := range res {
		i := jobIdx[j]
		if r.Err != nil {
			out[i] = VerifyResult{Err: r.Err}
			continue
		}
		out[i] = verifyOne(curve, items[i], r.Value)
	}
	return out, nil
}

// verifyOne completes one ECDSA verification given w = s⁻¹ mod order.
func verifyOne(curve *ecc.Curve, it ECDSAVerifyItem, w *big.Int) VerifyResult {
	n := curve.Order
	e := new(big.Int).Mod(it.Digest, n)
	u1 := new(big.Int).Mul(e, w)
	u1.Mod(u1, n)
	u2 := new(big.Int).Mul(it.R, w)
	u2.Mod(u2, n)
	q, err := curve.NewPoint(it.Qx, it.Qy)
	if err != nil {
		return VerifyResult{Err: fmt.Errorf("cryptosvc: %v: %w", err, errs.ErrBadKey)}
	}
	var p1, p2 *ecc.Point
	if u1.Sign() != 0 {
		if p1, err = curve.ScalarBaseMult(u1); err != nil {
			return VerifyResult{Err: err}
		}
	} else {
		p1 = curve.Infinity()
	}
	if p2, err = curve.ScalarMult(q, u2); err != nil {
		return VerifyResult{Err: err}
	}
	sum := curve.Add(p1, p2)
	x1, _, ok := curve.Affine(sum)
	if !ok {
		return VerifyResult{OK: false}
	}
	v := new(big.Int).Mod(x1, n)
	return VerifyResult{OK: v.Cmp(it.R) == 0}
}

// RSAKeyHandle fingerprints an RSA key by its modulus — the routing
// key the cluster tier feeds into the same rendezvous-hash plane that
// routes raw modexp by modulus, so repeat-key signing traffic lands on
// the backend whose P/Q Montgomery contexts are already warm.
func RSAKeyHandle(n *big.Int) []byte {
	if n == nil {
		return nil
	}
	h := sha256.New()
	h.Write([]byte("montsys-rsa-key"))
	h.Write(n.Bytes())
	return h.Sum(nil)
}

// ECDSAKeyHandle fingerprints an ECDSA key (public point or private
// scalar bytes — whatever identifies the key on the caller's side of
// the wire) together with its curve. The handle never leaves the
// process; it is only an HRW routing input.
func ECDSAKeyHandle(curveID uint8, parts ...*big.Int) []byte {
	h := sha256.New()
	h.Write([]byte("montsys-ecdsa-key"))
	h.Write([]byte{curveID})
	for _, p := range parts {
		if p != nil {
			h.Write(p.Bytes())
		}
	}
	return h.Sum(nil)
}
