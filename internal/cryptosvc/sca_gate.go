// SCA regression gate: derive the multiply-schedule traces the RSA-CRT
// sign path would execute and run internal/sca's fixed-vs-random Welch
// t-test over them.
//
// The leakage model. A binary square-and-multiply exponentiation (the
// engine's ModExp, expo.Report's accounting) performs, per exponent
// bit from the MSB down, one squaring always and one extra multiply
// exactly when the bit is 1 — so its power/timing profile is a direct
// function of the exponent's bit pattern. ScheduleTrace reifies that
// profile: point i is the multiply indicator of the i-th schedule step
// (MSB first). A fixed-vs-random TVLA campaign over these traces is
// then the software image of the oscilloscope campaign in
// arXiv 2009.03468: if the fixed-key group's schedule is statistically
// distinguishable from the random group's, the key leaks.
//
// The window. Additive exponent blinding d' = d + r·(p−1) leaves
// d' ≡ d (mod 2^v) for v = v₂(p−1), because r·(p−1) is divisible by
// 2^v — a known residual of the countermeasure: the final v schedule
// steps (v is the 2-adic valuation of p−1, a couple of bits in
// expectation) retain a parity channel no additive blind can close.
// The gate therefore scores the schedule window that blinding is
// responsible for — all but the trailing tailSkip steps — which is
// also what a real campaign sees for >99% of the exponentiation. The
// tail channel is closed structurally, not statistically, by the
// Montgomery powering ladder (expo.ModExpLadder), whose per-step
// operation sequence is one square and one multiply regardless of the
// bit.
package cryptosvc

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/rsa"
	"repro/internal/sca"
)

// tailSkip is the number of trailing schedule steps excluded from the
// gate's scoring window (see the package-section comment above: the
// low bits of an additively blinded exponent retain d mod 2^v).
const tailSkip = 16

// ScheduleTrace returns the square-and-multiply multiply-indicator
// schedule of exp, MSB-aligned over exactly points steps: trace[i] is
// 1 when step i multiplies (bit set), 0 when it only squares; steps
// past the exponent's length are 0.
func ScheduleTrace(exp *big.Int, points int) []int {
	trace := make([]int, points)
	top := exp.BitLen() - 1
	for i := 0; i < points; i++ {
		if bit := top - i; bit >= 0 && exp.Bit(bit) == 1 {
			trace[i] = 1
		}
	}
	return trace
}

// signTrace derives the schedule trace of one sign invocation with
// the given CRT exponent pair: the concatenated schedules of the two
// exponents the engine would execute (blinded first when the service
// blinds), each scored over its window. The campaign's draw source is
// passed explicitly — the live service's blinding source is never
// touched, so a campaign can run concurrently with real signing.
func (s *Service) signTrace(key *rsa.PrivateKey, dp, dq *big.Int, draw drawFunc) ([]int, error) {
	if s.blinding {
		var err error
		if dp, err = s.blindExponent(dp, key.P, draw); err != nil {
			return nil, err
		}
		if dq, err = s.blindExponent(dq, key.Q, draw); err != nil {
			return nil, err
		}
	}
	pPts, qPts := s.windows(key)
	return append(ScheduleTrace(dp, pPts), ScheduleTrace(dq, qPts)...), nil
}

// rngDraw wraps a seeded math/rand source as a drawFunc (campaign use
// only; it never fails).
func rngDraw(rng *rand.Rand) drawFunc {
	return func(bound *big.Int) (*big.Int, error) {
		return new(big.Int).Rand(rng, bound), nil
	}
}

// windows returns the per-prime schedule window lengths for this
// service's blinding configuration.
func (s *Service) windows(key *rsa.PrivateKey) (pPts, qPts int) {
	pLen := new(big.Int).Sub(key.P, big.NewInt(1)).BitLen()
	qLen := new(big.Int).Sub(key.Q, big.NewInt(1)).BitLen()
	if s.blinding {
		pLen += s.blindBits
		qLen += s.blindBits
	}
	return pLen - tailSkip, qLen - tailSkip
}

// LeakageResult is one fixed-vs-random campaign's verdict.
type LeakageResult struct {
	MaxT      float64 // max |t| across all schedule points
	Points    int     // trace length
	Traces    int     // traces per group
	Threshold float64 // sca.TVLAThreshold
}

// Leaks reports whether the campaign flags the path.
func (r LeakageResult) Leaks() bool { return r.MaxT > r.Threshold }

// LeakageCampaign runs a fixed-vs-random TVLA campaign of
// tracesPerGroup traces against the sign path for key, deterministic
// under seed. Group A is the schedule the service would execute for
// this fixed key (fresh blinds per trace when blinding is on); group B
// is produced by the *identical* process with a fresh random secret
// exponent pair each trace — the textbook fixed-vs-random-key design,
// so the only variable under test is whether the key's bits reach the
// schedule. It returns the Welch-t verdict; the SCA regression test
// asserts the blinded service does not leak and that the same harness
// flags an unblinded one (the gate's teeth).
func (s *Service) LeakageCampaign(key *rsa.PrivateKey, tracesPerGroup int, seed int64) (LeakageResult, error) {
	if key == nil || key.P == nil || key.Q == nil {
		return LeakageResult{}, fmt.Errorf("cryptosvc: leakage campaign needs a CRT key")
	}
	if tracesPerGroup < 2 {
		return LeakageResult{}, fmt.Errorf("cryptosvc: need ≥ 2 traces per group")
	}
	rng := rand.New(rand.NewSource(seed))
	draw := rngDraw(rng)
	pPts, qPts := s.windows(key)
	pm1 := new(big.Int).Sub(key.P, big.NewInt(1))
	qm1 := new(big.Int).Sub(key.Q, big.NewInt(1))

	fixed := make([][]int, tracesPerGroup)
	random := make([][]int, tracesPerGroup)
	for i := 0; i < tracesPerGroup; i++ {
		var err error
		if fixed[i], err = s.signTrace(key, key.DP, key.DQ, draw); err != nil {
			return LeakageResult{}, err
		}
		dpR := randomSecret(rng, pm1)
		dqR := randomSecret(rng, qm1)
		if random[i], err = s.signTrace(key, dpR, dqR, draw); err != nil {
			return LeakageResult{}, err
		}
	}
	t, err := sca.Welch(fixed, random)
	if err != nil {
		return LeakageResult{}, err
	}
	return LeakageResult{
		MaxT:      sca.MaxAbs(t),
		Points:    pPts + qPts,
		Traces:    tracesPerGroup,
		Threshold: sca.TVLAThreshold,
	}, nil
}

// randomSecret draws a uniform secret exponent in [1, bound).
func randomSecret(rng *rand.Rand, bound *big.Int) *big.Int {
	for {
		e := new(big.Int).Rand(rng, bound)
		if e.Sign() != 0 {
			return e
		}
	}
}
