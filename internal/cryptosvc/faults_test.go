package cryptosvc

import (
	"context"
	"errors"
	"math/big"
	"testing"

	"repro/internal/engine"
	"repro/internal/errs"
	"repro/internal/faults"
	"repro/internal/kits"
)

// TestCRTSignBellcoreSafety is the chaos gate for the signing path:
// with a deterministic injector corrupting 50% of all engine results
// and NO engine-level integrity checking (the corruption flows
// straight into the CRT recombination), the service's
// verify-before-release must catch every faulted signature. A single
// released faulty CRT signature is the Bellcore attack — gcd(sig^E −
// digest, N) factors N — so the bar is zero wrong signatures, the
// signing twin of PR 5's zero-wrong-answers gate.
func TestCRTSignBellcoreSafety(t *testing.T) {
	inj := faults.New(faults.WithRate(0.5), faults.WithSeed(1234))
	eng, err := engine.New(
		engine.WithWorkers(2),
		engine.WithKit(kits.CIOS),
		engine.WithFaultInjector(inj), // no integrity options: raw corruption
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	svc := New(eng, WithBlindSeed(99))
	key := testKey(t, 512, 77)

	const signs = 80
	released, caught := 0, 0
	for i := 0; i < signs; i++ {
		digest := big.NewInt(int64(1_000_003 * (i + 1)))
		sig, err := svc.SignRSA(context.Background(), key, digest)
		if err != nil {
			if !errors.Is(err, errs.ErrIntegrity) {
				t.Fatalf("sign %d: unexpected error class: %v", i, err)
			}
			caught++
			continue
		}
		released++
		// Bellcore check: every released signature must verify — with
		// math/big, independent of the faulty engine.
		want := new(big.Int).Mod(digest, key.N)
		got := new(big.Int).Exp(sig, key.E, key.N)
		if got.Cmp(want) != 0 {
			t.Fatalf("sign %d: FAULTY SIGNATURE RELEASED (Bellcore-vulnerable)", i)
		}
	}
	t.Logf("%d signs under 50%% fault injection: %d released (all valid), %d caught as ErrIntegrity",
		signs, released, caught)
	if caught == 0 {
		t.Fatal("injector never fired — the gate tested nothing")
	}
	if released == 0 {
		t.Fatal("no signature survived — cannot attest the release path")
	}
}

// TestECDSASignFaultSafety: the same contract for ECDSA — a corrupted
// engine inversion must surface as ErrIntegrity, never as an invalid
// signature.
func TestECDSASignFaultSafety(t *testing.T) {
	inj := faults.New(faults.WithRate(0.5), faults.WithSeed(4321))
	eng, err := engine.New(
		engine.WithWorkers(2),
		engine.WithKit(kits.CIOS),
		engine.WithFaultInjector(inj),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	svc := New(eng, WithBlindSeed(17))
	curve, err := CurveByID(CurveP256)
	if err != nil {
		t.Fatal(err)
	}
	d := big.NewInt(0x1337_c0de)
	released, caught := 0, 0
	for i := 0; i < 20; i++ {
		digest := big.NewInt(int64(7919 * (i + 1)))
		r, s, err := svc.SignECDSA(context.Background(), CurveP256, d, digest, int64(i))
		if err != nil {
			if !errors.Is(err, errs.ErrIntegrity) {
				t.Fatalf("sign %d: unexpected error class: %v", i, err)
			}
			caught++
			continue
		}
		released++
		// Independent check: s·k ≡ e + r·d must hold for the derived
		// nonce (recompute it the way the service does).
		n := curve.Order
		e := new(big.Int).Mod(digest, n)
		valid := false
		for attempt := 0; attempt < 100; attempt++ {
			k := deriveNonce(n, int64(i), attempt, d, digest)
			lhs := new(big.Int).Mul(s, k)
			lhs.Mod(lhs, n)
			rhs := new(big.Int).Mul(r, d)
			rhs.Add(rhs, e)
			rhs.Mod(rhs, n)
			if lhs.Cmp(rhs) == 0 {
				valid = true
				break
			}
		}
		if !valid {
			t.Fatalf("sign %d: INVALID ECDSA SIGNATURE RELEASED", i)
		}
	}
	t.Logf("20 ECDSA signs under 50%% fault injection: %d released (all valid), %d caught", released, caught)
	if caught == 0 {
		t.Fatal("injector never fired on the ECDSA path")
	}
}
