package cryptosvc

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/engine"
	"repro/internal/kits"
	"repro/internal/rsa"
)

// The BENCH_sign.json source: RSA sign throughput CRT vs non-CRT and
// blinded vs not, plus verify — all on the CIOS fast path, 2048-bit
// keys, so the numbers describe the production configuration.

func benchEngine(b *testing.B) *engine.Engine {
	b.Helper()
	eng, err := engine.New(engine.WithWorkers(4), engine.WithKit(kits.CIOS))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { eng.Close() })
	return eng
}

func benchSign(b *testing.B, bits int, crt, blinding bool) {
	eng := benchEngine(b)
	svc := New(eng, WithBlinding(blinding), WithBlindSeed(1))
	key := testKey(b, bits, 42)
	if !crt {
		key = &rsa.PrivateKey{PublicKey: key.PublicKey, D: key.D}
	}
	digest := new(big.Int).SetBytes([]byte("benchmark digest benchmark digest"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svc.SignRSA(context.Background(), key, digest); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSignRSA2048CRTBlinded(b *testing.B)    { benchSign(b, 2048, true, true) }
func BenchmarkSignRSA2048CRTUnblinded(b *testing.B)  { benchSign(b, 2048, true, false) }
func BenchmarkSignRSA2048FullBlinded(b *testing.B)   { benchSign(b, 2048, false, true) }
func BenchmarkSignRSA2048FullUnblinded(b *testing.B) { benchSign(b, 2048, false, false) }
func BenchmarkSignRSA1024CRTBlinded(b *testing.B)    { benchSign(b, 1024, true, true) }

func BenchmarkVerifyRSA2048(b *testing.B) {
	eng := benchEngine(b)
	svc := New(eng)
	key := testKey(b, 2048, 42)
	digest := new(big.Int).SetBytes([]byte("benchmark digest benchmark digest"))
	sig, err := svc.SignRSA(context.Background(), key, digest)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := svc.VerifyRSA(context.Background(), key.N, key.E, digest, sig)
		if err != nil || !ok {
			b.Fatalf("verify = (%v, %v)", ok, err)
		}
	}
}

func BenchmarkSignECDSAP256(b *testing.B) {
	eng := benchEngine(b)
	svc := New(eng, WithBlindSeed(1))
	d := big.NewInt(0x1337_c0de_cafe)
	digest := new(big.Int).SetBytes([]byte("benchmark digest benchmark digest"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := svc.SignECDSA(context.Background(), CurveP256, d, digest, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerifyECDSABatch8(b *testing.B) {
	eng := benchEngine(b)
	svc := New(eng, WithBlindSeed(1))
	curve, err := CurveByID(CurveP256)
	if err != nil {
		b.Fatal(err)
	}
	d := big.NewInt(0x1337_c0de_cafe)
	pt, _ := curve.ScalarBaseMult(d)
	qx, qy, _ := curve.Affine(pt)
	items := make([]ECDSAVerifyItem, 8)
	for i := range items {
		digest := big.NewInt(int64(1000 + i))
		r, s, err := svc.SignECDSA(context.Background(), CurveP256, d, digest, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		items[i] = ECDSAVerifyItem{Qx: qx, Qy: qy, R: r, S: s, Digest: digest}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := svc.VerifyECDSABatch(context.Background(), CurveP256, items)
		if err != nil {
			b.Fatal(err)
		}
		for j, r := range res {
			if !r.OK || r.Err != nil {
				b.Fatalf("item %d: %+v", j, r)
			}
		}
	}
}
