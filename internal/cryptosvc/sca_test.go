package cryptosvc

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/sca"
)

// TestSCALeakageGate is the SCA regression gate: over ≥1000
// deterministic fixed-vs-random traces, the blinded sign path's
// multiply schedule must be statistically indistinguishable from
// random (max |t| < the TVLA threshold), and — so the gate provably
// has teeth — the identical harness must flag the unblinded path.
// Everything is seeded: the key, the blinds and the random group are
// all deterministic, so this is a hard CI gate, not a flaky
// statistical test.
func TestSCALeakageGate(t *testing.T) {
	const traces = 1000
	key := testKey(t, 512, 1001)
	eng := testEngine(t)

	blinded := New(eng, WithBlindSeed(1))
	got, err := blinded.LeakageCampaign(key, traces, 2024)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("blinded:   max|t| = %.2f over %d points × %d traces (threshold %.1f)",
		got.MaxT, got.Points, got.Traces, got.Threshold)
	if got.Leaks() {
		t.Fatalf("blinded sign path leaks: max|t| = %.2f ≥ %.1f", got.MaxT, got.Threshold)
	}
	if got.Threshold != sca.TVLAThreshold {
		t.Fatalf("gate must use the shared TVLA threshold, got %v", got.Threshold)
	}

	unblinded := New(eng, WithBlinding(false))
	bad, err := unblinded.LeakageCampaign(key, traces, 2024)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("unblinded: max|t| = %.2f over %d points × %d traces", bad.MaxT, bad.Points, bad.Traces)
	if !bad.Leaks() {
		t.Fatalf("gate has no teeth: unblinded path scored max|t| = %.2f < %.1f",
			bad.MaxT, bad.Threshold)
	}
	// The separation should be decisive, not marginal: a fixed
	// exponent against a random one scores tens of sigma.
	if bad.MaxT < 3*bad.Threshold {
		t.Fatalf("unblinded separation suspiciously weak: max|t| = %.2f", bad.MaxT)
	}
}

// TestLeakageCampaignConcurrentWithSigning pins the isolation fix: a
// campaign derives its traces from its own seeded draw source and
// never touches the live service's blinding source, so it can run
// alongside real signing (the race detector enforces this in the race
// matrix).
func TestLeakageCampaignConcurrentWithSigning(t *testing.T) {
	eng := testEngine(t)
	key := testKey(t, 256, 77)
	svc := New(eng, WithBlindSeed(5))

	done := make(chan error, 1)
	go func() {
		for i := 0; i < 5; i++ {
			digest := big.NewInt(int64(1000 + i))
			if _, err := svc.SignRSA(context.Background(), key, digest); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if _, err := svc.LeakageCampaign(key, 50, 2025); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("concurrent signing failed: %v", err)
	}
}

// TestScheduleTrace pins the trace derivation the gate scores.
func TestScheduleTrace(t *testing.T) {
	// 0b110101 → MSB-first multiply schedule 1,1,0,1,0,1.
	exp, _ := new(big.Int).SetString("110101", 2)
	tr := ScheduleTrace(exp, 8)
	want := []int{1, 1, 0, 1, 0, 1, 0, 0} // padded past the exponent with 0
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("point %d = %d, want %d (trace %v)", i, tr[i], want[i], tr)
		}
	}
}

// TestBlindedExponentShape pins the constant-shape property: every
// blinded exponent for a prime has exactly BitLen(p−1)+blindBits bits,
// so the schedule length never depends on the key or the draw.
func TestBlindedExponentShape(t *testing.T) {
	key := testKey(t, 512, 55)
	eng := testEngine(t)
	svc := New(eng, WithBlindSeed(9))
	want := new(big.Int).Sub(key.P, big.NewInt(1)).BitLen() + svc.blindBits
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		b, err := svc.blindExponent(key.DP, key.P, svc.randInt)
		if err != nil {
			t.Fatal(err)
		}
		if b.BitLen() != want {
			t.Fatalf("draw %d: blinded exponent has %d bits, want %d", i, b.BitLen(), want)
		}
		// d' ≡ d (mod p−1): the blinded exponent computes the same power.
		pm1 := new(big.Int).Sub(key.P, big.NewInt(1))
		if new(big.Int).Mod(b, pm1).Cmp(new(big.Int).Mod(key.DP, pm1)) != 0 {
			t.Fatal("blinded exponent is not ≡ d mod (p−1)")
		}
		seen[b.String()] = true
	}
	if len(seen) < 45 {
		t.Fatalf("blinds not fresh: only %d distinct of 50", len(seen))
	}
}
