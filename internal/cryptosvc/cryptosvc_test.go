package cryptosvc

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/errs"
	"repro/internal/kits"
	"repro/internal/rsa"
)

// testEngine builds a small CIOS-kit engine (the fast path; kits never
// change answers).
func testEngine(t testing.TB, opts ...engine.Option) *engine.Engine {
	t.Helper()
	eng, err := engine.New(append([]engine.Option{
		engine.WithWorkers(2),
		engine.WithKit(kits.CIOS),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// testPrime draws a deterministic prime of exactly bits bits. Test
// helper only — stdlib primality here, the service's own keygen path
// (rsa.GeneratePrime) dogfoods the Montgomery arithmetic and has its
// own tests.
func testPrime(rng *rand.Rand, bits int) *big.Int {
	span := new(big.Int).Lsh(big.NewInt(1), uint(bits-1))
	for {
		p := new(big.Int).Rand(rng, span)
		p.Or(p, span)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(20) {
			return p
		}
	}
}

// testKey builds a consistent CRT key from two deterministic primes —
// fast enough for 256-bit primes, unlike full dogfooded keygen.
func testKey(t testing.TB, bits int, seed int64) *rsa.PrivateKey {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	e := big.NewInt(65537)
	for {
		p := testPrime(rng, bits/2)
		q := testPrime(rng, bits/2)
		if p.Cmp(q) == 0 {
			continue
		}
		if p.Cmp(q) < 0 {
			p, q = q, p
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, big.NewInt(1))
		qm1 := new(big.Int).Sub(q, big.NewInt(1))
		phi := new(big.Int).Mul(pm1, qm1)
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue
		}
		return &rsa.PrivateKey{
			PublicKey: rsa.PublicKey{N: n, E: new(big.Int).Set(e)},
			D:         d,
			P:         p, Q: q,
			DP:   new(big.Int).Mod(d, pm1),
			DQ:   new(big.Int).Mod(d, qm1),
			QInv: new(big.Int).ModInverse(q, p),
		}
	}
}

func TestSignRSAMatchesBigInt(t *testing.T) {
	eng := testEngine(t)
	key := testKey(t, 512, 1)
	for _, blinding := range []bool{true, false} {
		svc := New(eng, WithBlinding(blinding), WithBlindSeed(7))
		digest := new(big.Int).SetBytes([]byte("the quick brown fox jumps over"))
		sig, err := svc.SignRSA(context.Background(), key, digest)
		if err != nil {
			t.Fatalf("blinding=%v: %v", blinding, err)
		}
		want := new(big.Int).Exp(new(big.Int).Mod(digest, key.N), key.D, key.N)
		if sig.Cmp(want) != 0 {
			t.Fatalf("blinding=%v: sig mismatch vs math/big", blinding)
		}
		ok, err := svc.VerifyRSA(context.Background(), key.N, key.E, digest, sig)
		if err != nil || !ok {
			t.Fatalf("blinding=%v: verify = (%v, %v), want (true, nil)", blinding, ok, err)
		}
	}
}

func TestSignRSANonCRTKey(t *testing.T) {
	eng := testEngine(t)
	svc := New(eng, WithBlindSeed(3))
	full := testKey(t, 256, 2)
	key := &rsa.PrivateKey{PublicKey: full.PublicKey, D: full.D} // strip CRT parts
	digest := big.NewInt(0xdeadbeef)
	sig, err := svc.SignRSA(context.Background(), key, digest)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Exp(digest, key.D, key.N)
	if sig.Cmp(want) != 0 {
		t.Fatal("non-CRT sig mismatch vs math/big")
	}
}

func TestVerifyRSARejects(t *testing.T) {
	eng := testEngine(t)
	svc := New(eng)
	key := testKey(t, 256, 4)
	digest := big.NewInt(123456789)
	sig, err := svc.SignRSA(context.Background(), key, digest)
	if err != nil {
		t.Fatal(err)
	}
	bad := new(big.Int).Add(sig, big.NewInt(1))
	if ok, err := svc.VerifyRSA(context.Background(), key.N, key.E, digest, bad); err != nil || ok {
		t.Fatalf("tampered sig verified: (%v, %v)", ok, err)
	}
	// Out-of-range signatures are invalid, not errors.
	if ok, err := svc.VerifyRSA(context.Background(), key.N, key.E, digest, key.N); err != nil || ok {
		t.Fatalf("out-of-range sig: (%v, %v)", ok, err)
	}
	// A bad public key is ErrBadKey.
	if _, err := svc.VerifyRSA(context.Background(), big.NewInt(256), key.E, digest, sig); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("even modulus: err = %v, want ErrBadKey", err)
	}
}

func TestSignRSABadKey(t *testing.T) {
	eng := testEngine(t)
	svc := New(eng)
	key := testKey(t, 256, 5)
	digest := big.NewInt(99)

	broken := *key
	broken.QInv = new(big.Int).Add(key.QInv, big.NewInt(1))
	if _, err := svc.SignRSA(context.Background(), &broken, digest); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("bad QInv: err = %v, want ErrBadKey", err)
	}
	partial := *key
	partial.DQ = nil
	if _, err := svc.SignRSA(context.Background(), &partial, digest); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("partial CRT key: err = %v, want ErrBadKey", err)
	}
	wrongN := *key
	wrongN.N = new(big.Int).Add(key.N, big.NewInt(2))
	if _, err := svc.SignRSA(context.Background(), &wrongN, digest); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("N ≠ PQ: err = %v, want ErrBadKey", err)
	}
	if _, err := svc.SignRSA(context.Background(), key, big.NewInt(0)); !errors.Is(err, errs.ErrOperandRange) {
		t.Fatalf("zero digest: err = %v, want ErrOperandRange", err)
	}
}

func TestKeygenRSADeterministic(t *testing.T) {
	eng := testEngine(t)
	svc := New(eng)
	k1, err := svc.KeygenRSA(context.Background(), 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := svc.KeygenRSA(context.Background(), 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 || k1.D.Cmp(k2.D) != 0 {
		t.Fatal("same (bits, seed) produced different keys")
	}
	k3, err := svc.KeygenRSA(context.Background(), 64, 43)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k3.N) == 0 {
		t.Fatal("different seeds produced the same key")
	}
	if err := k1.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.KeygenRSA(context.Background(), 15, 1); !errors.Is(err, errs.ErrOperandRange) {
		t.Fatalf("odd bits: err = %v, want ErrOperandRange", err)
	}
}

func TestSignECDSADeterministicAndVerifies(t *testing.T) {
	eng := testEngine(t)
	svc := New(eng, WithBlindSeed(11))
	curve, err := CurveByID(CurveP256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	d := new(big.Int).Rand(rng, new(big.Int).Sub(curve.Order, big.NewInt(2)))
	d.Add(d, big.NewInt(1))
	digest := new(big.Int).SetBytes([]byte("attack at dawn.................."))

	r1, s1, err := svc.SignECDSA(context.Background(), CurveP256, d, digest, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed → same signature (idempotent wire op), despite the
	// blinding mask being drawn fresh: the mask cancels exactly.
	r2, s2, err := svc.SignECDSA(context.Background(), CurveP256, d, digest, 77)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cmp(r2) != 0 || s1.Cmp(s2) != 0 {
		t.Fatal("same seed produced different signatures")
	}

	pt, err := curve.ScalarBaseMult(d)
	if err != nil {
		t.Fatal(err)
	}
	qx, qy, _ := curve.Affine(pt)
	res, err := svc.VerifyECDSABatch(context.Background(), CurveP256,
		[]ECDSAVerifyItem{{Qx: qx, Qy: qy, R: r1, S: s1, Digest: digest}})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || !res[0].OK {
		t.Fatalf("batch verify: %+v", res[0])
	}

	if _, _, err := svc.SignECDSA(context.Background(), 200, d, digest, 1); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("unknown curve: err = %v, want ErrBadKey", err)
	}
	if _, _, err := svc.SignECDSA(context.Background(), CurveP256, curve.Order, digest, 1); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("scalar ≥ order: err = %v, want ErrBadKey", err)
	}
}

func TestVerifyECDSABatchPerItem(t *testing.T) {
	eng := testEngine(t)
	svc := New(eng, WithBlindSeed(13))
	curve, err := CurveByID(CurveP256)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	d := new(big.Int).Rand(rng, new(big.Int).Sub(curve.Order, big.NewInt(2)))
	d.Add(d, big.NewInt(1))
	pt, _ := curve.ScalarBaseMult(d)
	qx, qy, _ := curve.Affine(pt)
	digest := big.NewInt(0x5ca1ab1e)
	r, s, err := svc.SignECDSA(context.Background(), CurveP256, d, digest, 5)
	if err != nil {
		t.Fatal(err)
	}

	items := []ECDSAVerifyItem{
		{Qx: qx, Qy: qy, R: r, S: s, Digest: digest},                           // valid
		{Qx: qx, Qy: qy, R: r, S: s, Digest: big.NewInt(1)},                    // wrong digest
		{Qx: qx, Qy: qy, R: big.NewInt(0), S: s, Digest: digest},               // r out of range
		{Qx: big.NewInt(1), Qy: big.NewInt(2), R: r, S: s, Digest: digest},     // bad point
		{Qx: qx, Qy: qy, R: r, S: new(big.Int).Add(s, big.NewInt(1)), Digest: digest}, // tampered s
	}
	res, err := svc.VerifyECDSABatch(context.Background(), CurveP256, items)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK || res[0].Err != nil {
		t.Fatalf("item 0: %+v", res[0])
	}
	if res[1].OK || res[1].Err != nil {
		t.Fatalf("item 1 (wrong digest): %+v", res[1])
	}
	if res[2].OK || res[2].Err != nil {
		t.Fatalf("item 2 (r=0): %+v", res[2])
	}
	if !errors.Is(res[3].Err, errs.ErrBadKey) {
		t.Fatalf("item 3 (off-curve point): err = %v, want ErrBadKey", res[3].Err)
	}
	if res[4].OK || res[4].Err != nil {
		t.Fatalf("item 4 (tampered s): %+v", res[4])
	}
}

// TestDeriveNonceFillsOrderWidth pins the uniformity fix: nonces must
// cover the full bit width of the group order — in particular P-384
// nonces must exceed 2^256, which a single mod-reduced SHA-256 digest
// can never produce — and always land in [1, order−1].
func TestDeriveNonceFillsOrderWidth(t *testing.T) {
	for _, id := range []uint8{CurveP256, CurveP384} {
		curve, err := CurveByID(id)
		if err != nil {
			t.Fatal(err)
		}
		n := curve.Order
		d := big.NewInt(0x5eed)
		maxBits := 0
		for i := 0; i < 200; i++ {
			k := deriveNonce(n, int64(i), 0, d, big.NewInt(int64(i+1)))
			if k.Sign() <= 0 || k.Cmp(n) >= 0 {
				t.Fatalf("curve %d: nonce %d out of [1, n-1]", id, i)
			}
			if k.BitLen() > maxBits {
				maxBits = k.BitLen()
			}
		}
		// 200 draws with the top bit uniform: P(all top bits zero) = 2^-200.
		if maxBits < n.BitLen() {
			t.Fatalf("curve %d: max nonce width %d < order width %d — biased derivation",
				id, maxBits, n.BitLen())
		}
	}
}

// TestDeriveNonceFieldBoundaries pins the length-prefix fix: shifting
// bytes between d and digest must change the nonce.
func TestDeriveNonceFieldBoundaries(t *testing.T) {
	curve, err := CurveByID(CurveP256)
	if err != nil {
		t.Fatal(err)
	}
	n := curve.Order
	a := deriveNonce(n, 0, 0, big.NewInt(0x0102), big.NewInt(0x03))
	b := deriveNonce(n, 0, 0, big.NewInt(0x01), big.NewInt(0x0203))
	if a.Cmp(b) == 0 {
		t.Fatal("distinct (d, digest) pairs with identical concatenation share a nonce")
	}
	// And it stays deterministic.
	if a.Cmp(deriveNonce(n, 0, 0, big.NewInt(0x0102), big.NewInt(0x03))) != 0 {
		t.Fatal("nonce derivation is not deterministic")
	}
}

func TestKeyHandles(t *testing.T) {
	key := testKey(t, 256, 6)
	h1 := RSAKeyHandle(key.N)
	h2 := RSAKeyHandle(key.N)
	if len(h1) != 32 || string(h1) != string(h2) {
		t.Fatal("RSA key handle not deterministic")
	}
	other := testKey(t, 256, 7)
	if string(h1) == string(RSAKeyHandle(other.N)) {
		t.Fatal("distinct keys share a handle")
	}
	if RSAKeyHandle(nil) != nil {
		t.Fatal("nil modulus must map to nil handle (least-inflight routing)")
	}
	e1 := ECDSAKeyHandle(CurveP256, big.NewInt(5))
	e2 := ECDSAKeyHandle(CurveP384, big.NewInt(5))
	if string(e1) == string(e2) {
		t.Fatal("curve id must be part of the ECDSA handle")
	}
}
