// Package faults injects deterministic, seedable hardware-style
// faults into Montgomery cores. The paper's array computes one MMM in
// 3l+4 clock cycles across l+1 cells; a transient upset in any cell's
// result flip-flop silently corrupts T, and because T feeds back as an
// operand of the next multiplication under the no-final-subtraction
// regime (T stays in [0, 2N-1], never canonicalized), one flipped bit
// amplifies across the remaining squarings of an exponentiation — the
// Bellcore failure mode. This package models exactly that: a wrapper
// around any multiplier/exponentiator that perturbs *results* (bit-flip
// or stuck-at, one-shot or persistent, per-core, rate-limited,
// fire-after-N) so the integrity subsystem and the quarantine logic can
// be exercised in unit tests, loadgen, and CI chaos runs.
//
// Everything is deterministic given a seed: each core id derives its
// own rand stream, so a 4-worker engine with a seeded injector produces
// the same fault pattern on every run regardless of scheduling.
//
// Note the distinction from internal/logic's gate-level fault points,
// which flip wires *inside* a simulated circuit to study the netlist
// itself. This package corrupts at the operation boundary — cheap,
// mode-agnostic (reference arithmetic or circuit simulation alike), and
// composable with the engine's per-worker core ownership.
package faults

import (
	"math/big"
	"math/rand"
	"sync/atomic"

	"repro/internal/expo"
)

// Kind selects the corruption model.
type Kind uint8

const (
	// BitFlip inverts one bit of the result (transient upset).
	BitFlip Kind = iota
	// StuckAt forces one bit of the result to a fixed value
	// (permanent cell defect). A stuck-at fault whose target bit
	// already holds the stuck value does not manifest — exactly like
	// hardware — so even a persistent stuck-at corrupts only the
	// results whose correct value disagrees with the defect.
	StuckAt
)

// String names the kind for logs.
func (k Kind) String() string {
	if k == StuckAt {
		return "stuck-at"
	}
	return "bit-flip"
}

// Option configures an Injector.
type Option func(*Injector)

// WithSeed fixes the deterministic seed (default 1).
func WithSeed(s int64) Option { return func(in *Injector) { in.seed = s } }

// WithRate sets the per-operation fault probability in [0, 1]
// (default 1: every eligible operation is perturbed).
func WithRate(r float64) Option { return func(in *Injector) { in.rate = r } }

// WithBitFlip makes the injector flip the given bit; bit < 0 picks a
// random bit of the result each time. BitFlip is already the default
// kind; this option pins the position.
func WithBitFlip(bit int) Option {
	return func(in *Injector) { in.kind = BitFlip; in.bit = bit }
}

// WithStuckAt makes the injector force the given bit to val&1; bit < 0
// picks a random position per operation.
func WithStuckAt(bit int, val uint) Option {
	return func(in *Injector) { in.kind = StuckAt; in.bit = bit; in.stuckVal = val & 1 }
}

// WithCores restricts the fault to the listed core ids (default: all).
func WithCores(ids ...int) Option {
	return func(in *Injector) {
		in.cores = make(map[int]struct{}, len(ids))
		for _, id := range ids {
			in.cores[id] = struct{}{}
		}
	}
}

// WithAfter arms the fault only after n operations have passed through
// each core — corruption mid-burn-in rather than on the first op.
func WithAfter(n int64) Option { return func(in *Injector) { in.after = n } }

// WithOneShot limits each core to a single manifested fault (transient
// upset); the default is persistent.
func WithOneShot() Option { return func(in *Injector) { in.oneShot = true } }

// Injector is the shared fault configuration plus its global state. It
// is safe for concurrent use: mutable state is atomic, and all
// per-operation randomness lives in the per-core handles.
type Injector struct {
	kind     Kind
	seed     int64
	rate     float64
	bit      int
	stuckVal uint
	after    int64
	oneShot  bool
	cores    map[int]struct{} // nil = every core

	cleared atomic.Bool
	fired   atomic.Int64
}

// New builds an injector; with no options it bit-flips a random bit of
// every result on every core.
func New(opts ...Option) *Injector {
	in := &Injector{kind: BitFlip, seed: 1, rate: 1, bit: -1}
	for _, o := range opts {
		o(in)
	}
	if in.rate < 0 {
		in.rate = 0
	}
	if in.rate > 1 {
		in.rate = 1
	}
	return in
}

// Clear heals the fault: no further perturbations occur until Arm.
// This is how tests (and chaos drivers) model a transient defect going
// away so quarantined cores can pass their re-probe.
func (in *Injector) Clear() { in.cleared.Store(true) }

// Arm re-enables a cleared injector.
func (in *Injector) Arm() { in.cleared.Store(false) }

// Cleared reports whether the fault is currently healed.
func (in *Injector) Cleared() bool { return in.cleared.Load() }

// Injected returns how many operations were actually corrupted (faults
// that did not manifest — stuck-at matching the correct bit — are not
// counted).
func (in *Injector) Injected() int64 { return in.fired.Load() }

// Core derives the per-core handle for core id. The handle owns its
// deterministic rand stream and operation counter and is confined to
// one goroutine — exactly the engine's one-worker-one-core discipline.
func (in *Injector) Core(id int) *Core {
	_, targeted := in.cores[id]
	return &Core{
		in:     in,
		id:     id,
		active: in.cores == nil || targeted,
		rng:    rand.New(rand.NewSource(in.seed*1000003 + int64(id)*2654435761 + 97)),
	}
}

// Core is one core's view of the injector. Not safe for concurrent
// use; each worker owns its own.
type Core struct {
	in     *Injector
	id     int
	active bool
	rng    *rand.Rand
	ops    int64
	done   bool
}

// Perturb possibly corrupts v, a result of at most width bits
// (width ≤ 0 falls back to v's own length), and reports whether it
// did. v itself is never mutated; a corrupted result is a fresh
// big.Int. A nil Core never perturbs, so callers can hold one
// unconditionally.
func (c *Core) Perturb(v *big.Int, width int) (*big.Int, bool) {
	if c == nil || !c.active || c.in.cleared.Load() {
		return v, false
	}
	c.ops++
	if c.ops <= c.in.after {
		return v, false
	}
	if c.in.oneShot && c.done {
		return v, false
	}
	if c.in.rate < 1 && c.rng.Float64() >= c.in.rate {
		return v, false
	}
	if width < 1 {
		width = v.BitLen()
		if width < 1 {
			width = 1
		}
	}
	bit := c.in.bit
	if bit < 0 || bit >= width {
		bit = c.rng.Intn(width)
	}
	out := new(big.Int).Set(v)
	switch c.in.kind {
	case StuckAt:
		if out.Bit(bit) == c.in.stuckVal {
			return v, false // defect present but not manifested
		}
		out.SetBit(out, bit, c.in.stuckVal)
	default:
		out.SetBit(out, bit, out.Bit(bit)^1)
	}
	c.done = true
	c.in.fired.Add(1)
	return out, true
}

// Multiplier is the result-bearing surface of core.Multiplier.
type Multiplier interface {
	Mont(x, y *big.Int) (*big.Int, error)
}

// Exponentiator is the result-bearing surface of expo.Exponentiator.
type Exponentiator interface {
	ModExp(base, exp *big.Int) (*big.Int, expo.Report, error)
}

// WrapMultiplier returns inner with this core's faults applied to its
// results; width is the result width in bits (l+1 for Mont, whose
// results live in [0, 2N-1]).
func (c *Core) WrapMultiplier(inner Multiplier, width int) Multiplier {
	return &faultyMultiplier{c: c, inner: inner, width: width}
}

// WrapExponentiator is WrapMultiplier for exponentiators; width is l
// for ModExp results in [0, N-1].
func (c *Core) WrapExponentiator(inner Exponentiator, width int) Exponentiator {
	return &faultyExponentiator{c: c, inner: inner, width: width}
}

type faultyMultiplier struct {
	c     *Core
	inner Multiplier
	width int
}

func (f *faultyMultiplier) Mont(x, y *big.Int) (*big.Int, error) {
	v, err := f.inner.Mont(x, y)
	if err != nil {
		return v, err
	}
	v, _ = f.c.Perturb(v, f.width)
	return v, nil
}

type faultyExponentiator struct {
	c     *Core
	inner Exponentiator
	width int
}

func (f *faultyExponentiator) ModExp(base, exp *big.Int) (*big.Int, expo.Report, error) {
	v, rep, err := f.inner.ModExp(base, exp)
	if err != nil {
		return v, rep, err
	}
	v, _ = f.c.Perturb(v, f.width)
	return v, rep, nil
}
