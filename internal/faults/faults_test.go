package faults

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/expo"
)

// TestPerturbDeterminism: two injectors with the same seed must corrupt
// the same operations in the same way — the whole point of seedable
// chaos is that a failing run can be replayed bit for bit.
func TestPerturbDeterminism(t *testing.T) {
	run := func() []string {
		in := New(WithSeed(42), WithRate(0.5))
		c := in.Core(3)
		rng := rand.New(rand.NewSource(7))
		var out []string
		for i := 0; i < 64; i++ {
			v := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 128))
			p, hit := c.Perturb(v, 128)
			if hit {
				out = append(out, p.Text(16))
			} else if p != v {
				t.Fatal("non-perturbed result must be the same pointer")
			}
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("rate 0.5 over 64 ops fired nothing — seed stream broken")
	}
	if len(a) != len(b) {
		t.Fatalf("runs disagree on fault count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across identically-seeded runs", i)
		}
	}
}

// TestPerturbPinnedBitFlip: a pinned bit-flip changes exactly that bit
// and never mutates the input.
func TestPerturbPinnedBitFlip(t *testing.T) {
	in := New(WithBitFlip(5))
	c := in.Core(0)
	v := big.NewInt(0b1000000)
	orig := new(big.Int).Set(v)
	p, hit := c.Perturb(v, 8)
	if !hit {
		t.Fatal("rate-1 injector did not fire")
	}
	if v.Cmp(orig) != 0 {
		t.Fatal("Perturb mutated its input")
	}
	if want := new(big.Int).SetBit(orig, 5, 1); p.Cmp(want) != 0 {
		t.Fatalf("got %b, want %b", p, want)
	}
	if in.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", in.Injected())
	}
}

// TestStuckAtManifestation: a stuck-at-0 defect corrupts only values
// whose correct bit is 1, exactly like the hardware defect it models.
func TestStuckAtManifestation(t *testing.T) {
	in := New(WithStuckAt(2, 0))
	c := in.Core(0)

	// Bit 2 already 0: defect present but silent, not counted.
	p, hit := c.Perturb(big.NewInt(0b0011), 8)
	if hit || p.Int64() != 0b0011 {
		t.Fatalf("non-manifesting stuck-at fired: hit=%v v=%b", hit, p)
	}
	if in.Injected() != 0 {
		t.Fatal("silent stuck-at must not count as injected")
	}

	// Bit 2 is 1: the defect manifests.
	p, hit = c.Perturb(big.NewInt(0b0111), 8)
	if !hit || p.Int64() != 0b0011 {
		t.Fatalf("stuck-at-0 on bit 2: hit=%v v=%b, want 0b0011", hit, p)
	}
}

// TestOneShot: a one-shot injector manifests exactly once per core;
// silent stuck-ats do not consume the shot.
func TestOneShot(t *testing.T) {
	in := New(WithStuckAt(0, 0), WithOneShot())
	c := in.Core(0)
	if _, hit := c.Perturb(big.NewInt(2), 8); hit {
		t.Fatal("bit already stuck value: must not manifest")
	}
	if _, hit := c.Perturb(big.NewInt(3), 8); !hit {
		t.Fatal("first manifesting op must fire")
	}
	if _, hit := c.Perturb(big.NewInt(3), 8); hit {
		t.Fatal("one-shot fired twice")
	}
	// A different core of the same injector still has its shot.
	if _, hit := in.Core(1).Perturb(big.NewInt(3), 8); !hit {
		t.Fatal("one-shot must be per core, not global")
	}
}

// TestAfter: the fault stays dormant for the first n operations.
func TestAfter(t *testing.T) {
	in := New(WithAfter(3))
	c := in.Core(0)
	for i := 0; i < 3; i++ {
		if _, hit := c.Perturb(big.NewInt(1), 8); hit {
			t.Fatalf("op %d fired during the burn-in window", i)
		}
	}
	if _, hit := c.Perturb(big.NewInt(1), 8); !hit {
		t.Fatal("op after the window must fire")
	}
}

// TestCoreTargeting: WithCores restricts the fault to the listed ids.
func TestCoreTargeting(t *testing.T) {
	in := New(WithCores(1, 3))
	for id, want := range map[int]bool{0: false, 1: true, 2: false, 3: true} {
		_, hit := in.Core(id).Perturb(big.NewInt(1), 8)
		if hit != want {
			t.Errorf("core %d: hit=%v, want %v", id, hit, want)
		}
	}
}

// TestClearArm: Clear heals the fault mid-flight (how tests model a
// transient defect going away so quarantined cores re-probe clean),
// Arm brings it back.
func TestClearArm(t *testing.T) {
	in := New()
	c := in.Core(0)
	in.Clear()
	if !in.Cleared() {
		t.Fatal("Cleared() false after Clear")
	}
	if _, hit := c.Perturb(big.NewInt(1), 8); hit {
		t.Fatal("cleared injector fired")
	}
	in.Arm()
	if _, hit := c.Perturb(big.NewInt(1), 8); !hit {
		t.Fatal("re-armed injector did not fire")
	}
}

// TestRateZeroAndNil: rate 0 and a nil Core are both inert, so callers
// can hold a handle unconditionally.
func TestRateZeroAndNil(t *testing.T) {
	c := New(WithRate(0)).Core(0)
	for i := 0; i < 100; i++ {
		if _, hit := c.Perturb(big.NewInt(1), 8); hit {
			t.Fatal("rate-0 injector fired")
		}
	}
	var nilCore *Core
	v := big.NewInt(7)
	if p, hit := nilCore.Perturb(v, 8); hit || p != v {
		t.Fatal("nil Core must be a no-op")
	}
}

type fakeMul struct{ v *big.Int }

func (f fakeMul) Mont(x, y *big.Int) (*big.Int, error) { return f.v, nil }

type fakeExp struct{ v *big.Int }

func (f fakeExp) ModExp(base, exp *big.Int) (*big.Int, expo.Report, error) {
	return f.v, expo.Report{}, nil
}

// TestWrappers: the wrapped surfaces corrupt successful results and
// pass errors through untouched.
func TestWrappers(t *testing.T) {
	in := New(WithBitFlip(0))
	c := in.Core(0)

	clean := big.NewInt(0b10)
	m := c.WrapMultiplier(fakeMul{v: clean}, 8)
	got, err := m.Mont(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 0b11 {
		t.Fatalf("wrapped Mont = %b, want bit 0 flipped", got)
	}

	x := c.WrapExponentiator(fakeExp{v: big.NewInt(0b10)}, 8)
	ev, _, err := x.ModExp(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Int64() != 0b11 {
		t.Fatalf("wrapped ModExp = %b, want bit 0 flipped", ev)
	}
}

type errMul struct{ err error }

func (f errMul) Mont(x, y *big.Int) (*big.Int, error) { return nil, f.err }

// TestWrapperErrorPassthrough: a failing inner core's error is not
// perturbed into a "result".
func TestWrapperErrorPassthrough(t *testing.T) {
	sentinel := errors.New("core broke")
	m := New().Core(0).WrapMultiplier(errMul{err: sentinel}, 8)
	if _, err := m.Mont(nil, nil); !errors.Is(err, sentinel) {
		t.Fatalf("wrapper swallowed the inner error: %v", err)
	}
}
