package qos

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/obs"
)

// Plane is one process's QoS admission plane: the tenant table, a
// token bucket and weighted concurrency share per tenant, and the
// montsys_qos_* metric block. The server consults it before the global
// in-flight gate; the engine reports lane sheds and depths into it; the
// obs mux renders it on /quotaz.
//
// Concurrency shares are hard caps: tenant i may hold at most
// max(1, budget·wᵢ/Σw) in-flight slots, so the shares sum to roughly
// the global budget and a greedy tenant can never occupy the slots a
// well-behaved tenant's weight entitles it to. Unknown tenants fold
// into a single OtherTenant bucket governed by the "*" policy — both
// for quota (they share one bucket, so inventing tenant names buys
// nothing) and for metric cardinality.
type Plane struct {
	cfg    Config
	budget int // global in-flight budget the shares slice up; ≤ 0 = no share caps

	tenants map[string]*tenantState // configured tenants by name
	other   *tenantState            // the "*" fold-in bucket

	laneDepth [NumClasses]*obs.Gauge
}

// tenantState is one tenant's live quota state plus its pre-registered
// metric handles (per-tenant series are created once at construction,
// never on the hot path).
type tenantState struct {
	cfg      TenantConfig
	label    string // metric label: cfg.Name, or OtherTenant for "*"
	bucket   *Bucket
	share    int64
	inflight atomic.Int64

	admits       *obs.Counter
	rateLimited  *obs.Counter
	shareRejects *obs.Counter
	sheds        [NumClasses]*obs.Counter
	inflightG    *obs.Gauge
	tokensMilli  *obs.Gauge
	latency      *obs.Histogram
}

// NewPlane builds the admission plane. budget is the server's global
// in-flight bound that weighted shares carve up (≤ 0 disables share
// enforcement, leaving only rate limiting). reg may be nil — in tests
// and benchmarks the plane then runs on unregistered instruments.
func NewPlane(cfg Config, budget int, reg *obs.Registry) *Plane {
	if cfg.Default.Name == "" {
		cfg.Default = DefaultConfig().Default
	}
	p := &Plane{cfg: cfg, budget: budget, tenants: make(map[string]*tenantState, len(cfg.Tenants))}
	sumW := clampWeight(cfg.Default.Weight)
	for _, tc := range cfg.Tenants {
		sumW += clampWeight(tc.Weight)
	}
	for _, tc := range cfg.Tenants {
		p.tenants[tc.Name] = newTenantState(tc, tc.Name, budget, sumW, reg)
	}
	p.other = newTenantState(cfg.Default, OtherTenant, budget, sumW, reg)
	for c := Class(0); c < NumClasses; c++ {
		p.laneDepth[c] = gauge(reg, "montsys_qos_lane_depth",
			"Jobs queued in each engine scheduling lane.", obs.Label("class", c.String()))
	}
	return p
}

func clampWeight(w int) int {
	if w < 1 {
		return 1
	}
	return w
}

func newTenantState(tc TenantConfig, label string, budget, sumW int, reg *obs.Registry) *tenantState {
	st := &tenantState{
		cfg:    tc,
		label:  label,
		bucket: NewBucket(tc.Rate, tc.Burst),
	}
	if budget > 0 {
		st.share = int64(budget * clampWeight(tc.Weight) / sumW)
		if st.share < 1 {
			st.share = 1
		}
	}
	tl := obs.Label("tenant", label)
	st.admits = counter(reg, "montsys_qos_admits_total",
		"Requests admitted by per-tenant QoS admission.", tl)
	st.rateLimited = counter(reg, "montsys_qos_rate_limited_total",
		"Requests rejected because the tenant's token bucket was empty.", tl)
	st.shareRejects = counter(reg, "montsys_qos_share_rejects_total",
		"Requests rejected because the tenant exceeded its concurrency share.", tl)
	for c := Class(0); c < NumClasses; c++ {
		st.sheds[c] = counter(reg, "montsys_qos_sheds_total",
			"Queued jobs shed by the engine's lowest-class-first overload policy.",
			tl, obs.Label("class", c.String()))
	}
	st.inflightG = gauge(reg, "montsys_qos_inflight",
		"Requests currently holding a tenant concurrency slot.", tl)
	st.tokensMilli = gauge(reg, "montsys_qos_tokens_milli",
		"Milli-tokens remaining in the tenant's bucket at last admission.", tl)
	st.latency = histogram(reg, "montsys_qos_latency",
		"Per-tenant request latency (admission to response).", tl)
	return st
}

func counter(reg *obs.Registry, name, help string, labels ...string) *obs.Counter {
	if reg == nil {
		return &obs.Counter{}
	}
	return reg.CounterLabeled(name, help, labels...)
}

func gauge(reg *obs.Registry, name, help string, labels ...string) *obs.Gauge {
	if reg == nil {
		return &obs.Gauge{}
	}
	return reg.GaugeLabeled(name, help, labels...)
}

func histogram(reg *obs.Registry, name, help string, labels ...string) *obs.Histogram {
	if reg == nil {
		return &obs.Histogram{}
	}
	return reg.HistogramLabeled(name, help, labels...)
}

// state maps a wire tenant name to its quota bucket.
func (p *Plane) state(tenant string) *tenantState {
	if st, ok := p.tenants[tenant]; ok {
		return st
	}
	return p.other
}

// Lookup returns the effective config for a tenant (its own entry or
// the default policy) — the class a request falls into when the frame
// does not name one.
func (p *Plane) Lookup(tenant string) TenantConfig {
	return p.state(tenant).cfg
}

// Admit runs per-tenant admission for one request at time now. On
// success it returns a release closure that must be called exactly
// once when the request finishes (it frees the concurrency slot and
// records the per-tenant latency). On failure it returns
// *errs.RateLimited (bucket empty, with the retry-after hint) or an
// ErrOverloaded wrap (concurrency share exhausted).
func (p *Plane) Admit(tenant string, now time.Time) (release func(outcome time.Duration), err error) {
	st := p.state(tenant)
	ok, retryAfter, remaining := st.bucket.Take(now)
	st.tokensMilli.Set(int64(remaining * 1000))
	if !ok {
		st.rateLimited.Inc()
		return nil, &errs.RateLimited{Tenant: st.label, RetryAfter: retryAfter}
	}
	if st.share > 0 {
		if st.inflight.Add(1) > st.share {
			st.inflight.Add(-1)
			st.shareRejects.Inc()
			return nil, fmt.Errorf("tenant %q over concurrency share %d: %w",
				st.label, st.share, errs.ErrOverloaded)
		}
		st.inflightG.Set(st.inflight.Load())
	}
	st.admits.Inc()
	return func(elapsed time.Duration) {
		if st.share > 0 {
			st.inflightG.Set(st.inflight.Add(-1))
		}
		st.latency.ObserveDuration(elapsed)
	}, nil
}

// Shed implements the engine's QoS observer: a queued job for tenant
// was dropped by the shed-lowest-class-first overload policy.
func (p *Plane) Shed(tenant string, class Class) {
	if class >= NumClasses {
		class = BestEffort
	}
	p.state(tenant).sheds[class].Inc()
}

// LaneDepth implements the engine's QoS observer: the scheduling lane
// for class now holds depth queued jobs.
func (p *Plane) LaneDepth(class Class, depth int) {
	if class < NumClasses {
		p.laneDepth[class].Set(int64(depth))
	}
}

// WriteQuotaz renders the plain-text quota page served at /quotaz —
// one line per configured tenant plus the fold-in bucket, in the same
// key=value grammar /statusz uses.
func (p *Plane) WriteQuotaz(w io.Writer) {
	now := time.Now()
	fmt.Fprintf(w, "qos tenants=%d budget=%d\n", len(p.tenants), p.budget)
	names := make([]string, 0, len(p.tenants))
	for name := range p.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p.tenants[name].writeQuota(w, now)
	}
	p.other.writeQuota(w, now)
}

func (st *tenantState) writeQuota(w io.Writer, now time.Time) {
	sheds := int64(0)
	for c := Class(0); c < NumClasses; c++ {
		sheds += st.sheds[c].Value()
	}
	p99 := time.Duration(st.latency.Snapshot().Quantile(0.99))
	fmt.Fprintf(w,
		"tenant=%s class=%s rate=%g burst=%g weight=%d share=%d tokens=%.1f inflight=%d admits=%d rate_limited=%d share_rejects=%d sheds=%d p99=%s\n",
		st.label, st.cfg.Class, st.cfg.Rate, st.cfg.Burst, clampWeight(st.cfg.Weight),
		st.share, st.bucket.Tokens(now), st.inflight.Load(),
		st.admits.Value(), st.rateLimited.Value(), st.shareRejects.Value(), sheds, p99)
}
