package qos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/errs"
)

func TestClassRoundTrip(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Fatalf("ParseClass(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if _, err := ParseClass("bulk"); err == nil {
		t.Fatal("ParseClass accepted unknown class")
	}
}

func TestBucketRefillAndRetryAfter(t *testing.T) {
	b := NewBucket(10, 2) // 10 tokens/s, burst 2
	now := time.Unix(100, 0)
	for i := 0; i < 2; i++ {
		ok, _, _ := b.Take(now)
		if !ok {
			t.Fatalf("take %d within burst denied", i)
		}
	}
	ok, retry, _ := b.Take(now)
	if ok {
		t.Fatal("take beyond burst admitted")
	}
	// Empty bucket at 10/s: one token in 100ms.
	if retry < 90*time.Millisecond || retry > 110*time.Millisecond {
		t.Fatalf("retry-after = %v, want ~100ms", retry)
	}
	// After the hint elapses, exactly one token has accrued.
	now = now.Add(retry)
	if ok, _, _ := b.Take(now); !ok {
		t.Fatal("take denied after retry-after elapsed")
	}
	if ok, _, _ := b.Take(now); ok {
		t.Fatal("second take admitted without refill")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(0, 1)
	for i := 0; i < 1000; i++ {
		if ok, _, _ := b.Take(time.Unix(0, 0)); !ok {
			t.Fatal("unlimited bucket denied")
		}
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("acme:rate=200,burst=50,weight=4,class=interactive;hog:rate=20,weight=1,class=best-effort;*:rate=100,class=batch")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(cfg.Tenants))
	}
	acme := cfg.Tenants[0]
	if acme.Name != "acme" || acme.Rate != 200 || acme.Burst != 50 || acme.Weight != 4 || acme.Class != Interactive {
		t.Fatalf("acme = %+v", acme)
	}
	hog := cfg.Tenants[1]
	if hog.Class != BestEffort || hog.Burst != 20 { // burst defaults to rate
		t.Fatalf("hog = %+v", hog)
	}
	if cfg.Default.Rate != 100 || cfg.Default.Class != Batch {
		t.Fatalf("default = %+v", cfg.Default)
	}
	for _, bad := range []string{"a:rate=x", "a:nope=1", ":rate=1", "a:rate=1;a:rate=2", "a:class=zippy"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestPlaneRateLimit(t *testing.T) {
	cfg, err := ParseSpec("acme:rate=10,burst=1,weight=1")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(cfg, 0, nil)
	now := time.Unix(50, 0)
	rel, err := p.Admit("acme", now)
	if err != nil {
		t.Fatalf("first admit: %v", err)
	}
	rel(time.Millisecond)
	_, err = p.Admit("acme", now)
	if !errors.Is(err, errs.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	var rl *errs.RateLimited
	if !errors.As(err, &rl) || rl.RetryAfter <= 0 || rl.Tenant != "acme" {
		t.Fatalf("structured error = %+v", rl)
	}
	// The rendered form round-trips through the wire-message parser.
	back, ok := errs.ParseRateLimited(rl.Error())
	if !ok || back.Tenant != "acme" || back.RetryAfter != rl.RetryAfter {
		t.Fatalf("ParseRateLimited(%q) = %+v, %v", rl.Error(), back, ok)
	}
}

func TestPlaneConcurrencyShares(t *testing.T) {
	// Budget 8, weights 3:1 (+ default 1) → acme share 4, hog 1.
	cfg, err := ParseSpec("acme:weight=3;hog:weight=1")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(cfg, 8, nil)
	now := time.Unix(0, 0)
	var rels []func(time.Duration)
	for i := 0; i < 4; i++ {
		rel, err := p.Admit("acme", now)
		if err != nil {
			t.Fatalf("acme admit %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if _, err := p.Admit("acme", now); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("acme over share: err = %v, want ErrOverloaded", err)
	}
	// Another tenant still has its slice.
	if _, err := p.Admit("hog", now); err != nil {
		t.Fatalf("hog admit while acme saturated: %v", err)
	}
	// Releasing a slot readmits.
	rels[0](time.Millisecond)
	if _, err := p.Admit("acme", now); err != nil {
		t.Fatalf("acme admit after release: %v", err)
	}
}

func TestPlaneUnknownTenantFoldsIn(t *testing.T) {
	cfg, err := ParseSpec("*:rate=10,burst=1")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(cfg, 0, nil)
	now := time.Unix(0, 0)
	if _, err := p.Admit("mystery", now); err != nil {
		t.Fatalf("first unknown tenant: %v", err)
	}
	// A different invented name shares the same fold-in bucket.
	_, err = p.Admit("mystery2", now)
	if !errors.Is(err, errs.ErrRateLimited) {
		t.Fatalf("second unknown tenant: err = %v, want ErrRateLimited", err)
	}
	var rl *errs.RateLimited
	if !errors.As(err, &rl) || rl.Tenant != OtherTenant {
		t.Fatalf("fold-in label = %+v", rl)
	}
}

func TestQuotazRendering(t *testing.T) {
	cfg, err := ParseSpec("acme:rate=100,weight=2,class=interactive;hog:rate=10,class=best-effort")
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlane(cfg, 16, nil)
	if rel, err := p.Admit("acme", time.Unix(0, 0)); err == nil {
		rel(time.Millisecond)
	}
	p.Shed("hog", BestEffort)
	var sb strings.Builder
	p.WriteQuotaz(&sb)
	out := sb.String()
	for _, want := range []string{
		"tenant=acme", "tenant=hog", "tenant=other",
		"class=best-effort", "admits=1", "sheds=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("quotaz missing %q:\n%s", want, out)
		}
	}
}

func TestIdentityContext(t *testing.T) {
	ctx := WithIdentity(context.Background(), Identity{Tenant: "acme", Class: Batch})
	if id := FromContext(ctx); id.Tenant != "acme" || id.Class != Batch {
		t.Fatalf("FromContext = %+v", id)
	}
	if id := FromContext(context.Background()); id != (Identity{}) {
		t.Fatalf("untagged context = %+v", id)
	}
}
