package qos

// The numbers behind BENCH_qos.json: what one request pays at the
// admission gate when -qos is armed. The claim the JSON records is
// that the uncontended fast path is nanoseconds against a request
// path measured in hundreds of microseconds — under 3% overhead, and
// in practice well under 1%.

import (
	"testing"
	"time"
)

func benchPlane(b *testing.B) *Plane {
	b.Helper()
	cfg, err := ParseSpec("acme:rate=1e9,burst=1e9,weight=4,class=interactive;bulk:rate=1e9,weight=1,class=best-effort")
	if err != nil {
		b.Fatal(err)
	}
	return NewPlane(cfg, 1024, nil)
}

// BenchmarkAdmitConfigured: the uncontended fast path for a named
// tenant — bucket take, share charge, release with a latency sample.
func BenchmarkAdmitConfigured(b *testing.B) {
	p := benchPlane(b)
	now := time.Unix(1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		release, err := p.Admit("acme", now)
		if err != nil {
			b.Fatal(err)
		}
		release(time.Millisecond)
	}
}

// BenchmarkAdmitUnlimitedDefault: an untagged legacy request folding
// into the default policy — the cost every old client pays the moment
// a server arms -qos.
func BenchmarkAdmitUnlimitedDefault(b *testing.B) {
	p := NewPlane(DefaultConfig(), 1024, nil)
	now := time.Unix(1000, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		release, err := p.Admit("", now)
		if err != nil {
			b.Fatal(err)
		}
		release(0)
	}
}

// BenchmarkAdmitRateLimitedReject: the rejection path — what serving
// a hostile flood costs per rejected request (bucket check plus one
// structured error).
func BenchmarkAdmitRateLimitedReject(b *testing.B) {
	cfg, err := ParseSpec("hog:rate=0.001,burst=1,weight=1,class=batch")
	if err != nil {
		b.Fatal(err)
	}
	p := NewPlane(cfg, 1024, nil)
	now := time.Unix(1000, 0)
	if release, err := p.Admit("hog", now); err != nil {
		b.Fatal(err)
	} else {
		release(0) // drain the single burst token
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Admit("hog", now); err == nil {
			b.Fatal("expected rate-limited rejection")
		}
	}
}
