package qos

import (
	"sync"
	"time"
)

// Bucket is a token bucket: capacity `burst` tokens refilled at `rate`
// tokens per second. Take is mutex-guarded rather than lock-free — one
// short critical section per admission is far below the cost of the
// frame decode that precedes it, and a mutex keeps the refill
// arithmetic exact (no CAS retry drift).
type Bucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// NewBucket returns a full bucket. rate ≤ 0 means "unlimited": Take
// always succeeds. burst is clamped to at least 1 so a positive rate
// can ever admit.
func NewBucket(rate, burst float64) *Bucket {
	if burst < 1 {
		burst = 1
	}
	return &Bucket{rate: rate, burst: burst, tokens: burst}
}

// refillLocked advances the bucket to now. Callers hold mu.
func (b *Bucket) refillLocked(now time.Time) {
	if b.last.IsZero() {
		b.last = now
		return
	}
	if dt := now.Sub(b.last); dt > 0 {
		b.tokens += dt.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Take consumes one token if available and reports whether it did,
// plus the tokens remaining (for the montsys_qos_tokens_milli gauge).
// When it does not admit, retryAfter is the time until one full token
// will have accrued — the hint the server sends back on the wire so a
// limited client waits exactly as long as it must instead of hammering
// with jittered backoff.
func (b *Bucket) Take(now time.Time) (ok bool, retryAfter time.Duration, remaining float64) {
	if b.rate <= 0 {
		return true, 0, b.burst
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	if b.tokens >= 1 {
		b.tokens--
		return true, 0, b.tokens
	}
	need := 1 - b.tokens
	retryAfter = time.Duration(need / b.rate * float64(time.Second))
	if retryAfter <= 0 {
		retryAfter = time.Millisecond
	}
	return false, retryAfter, b.tokens
}

// Tokens reports the token count after refilling to now (for the
// quota page and the montsys_qos_tokens gauge).
func (b *Bucket) Tokens(now time.Time) float64 {
	if b.rate <= 0 {
		return b.burst
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked(now)
	return b.tokens
}
