// Package qos is the multi-tenant quality-of-service plane: tenant
// identity, priority classes, per-tenant token-bucket rate limiting,
// and weight-proportional concurrency shares. The serving tiers thread
// it through end to end — the wire protocol carries (tenant, class) on
// tagged op variants, server admission consults a Plane before the
// global in-flight gate, the engine schedules per-class lanes
// (earliest deadline first within a class, strict priority with aging
// across classes), and the cluster exempts best-effort traffic from
// hedging.
//
// The model is the source paper's Fig. 4 host handshake read as an
// admission decision: the host holds a job in IDLE until the array is
// ready to take it through MUL1⇄MUL2 to OUT. With one systolic array
// and many competing streams (the quad-core framing of arXiv
// 2009.03468), *which* job the host releases next is policy — this
// package makes that policy tenant- and deadline-aware instead of
// first-come-first-served.
package qos

import (
	"context"
	"fmt"
)

// Class is a scheduling priority class. Lower values are more urgent.
// The zero value is Interactive so an untagged request (an old client,
// or a tenant with no configured class) is never accidentally starved.
type Class uint8

const (
	// Interactive is latency-sensitive traffic: served first, hedged,
	// and shed last.
	Interactive Class = 0

	// Batch is throughput traffic that tolerates queueing but must not
	// starve: it ages into the interactive lane's priority.
	Batch Class = 1

	// BestEffort is scavenger traffic: first to shed under overload and
	// exempt from cluster hedging (a hedge spends fleet capacity that
	// best-effort work has no claim on).
	BestEffort Class = 2

	// NumClasses is the number of scheduling classes (and engine lanes).
	NumClasses = 3
)

// String returns the canonical spelling used in config specs, metric
// labels, and quota pages.
func (c Class) String() string {
	switch c {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass parses the spellings String produces (plus "besteffort"
// and "best_effort" for flag ergonomics).
func ParseClass(s string) (Class, error) {
	switch s {
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "best-effort", "besteffort", "best_effort":
		return BestEffort, nil
	}
	return Interactive, fmt.Errorf("qos: unknown class %q (want interactive, batch, or best-effort)", s)
}

// tenantKey is the unexported context key type for the tenant identity.
type tenantKey struct{}

// Identity is the (tenant, class) pair carried on a request. The zero
// value — empty tenant, Interactive class — is "untagged": the wire
// layer sends a plain frame and the QoS plane applies the default
// tenant policy.
type Identity struct {
	Tenant string
	Class  Class
}

// WithIdentity returns a context carrying the tenant identity. Every
// tier propagates it: the client tags outgoing frames with it, the
// server stamps it from the decoded frame before invoking the handler,
// and the cluster's backend calls inherit it so a routed, hedged, or
// failed-over attempt carries the same tenant as the original.
func WithIdentity(ctx context.Context, id Identity) context.Context {
	return context.WithValue(ctx, tenantKey{}, id)
}

// FromContext returns the tenant identity on ctx, or the zero
// (untagged) identity.
func FromContext(ctx context.Context) Identity {
	id, _ := ctx.Value(tenantKey{}).(Identity)
	return id
}
