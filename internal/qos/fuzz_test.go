package qos

// Fuzz over the tenant-policy spec grammar: whatever an operator (or a
// hostile config source) puts on -qos, ParseSpec must return a clean
// error, never panic, and never produce a config that Validate-level
// invariants reject (negative rates, zero weights).

import (
	"strings"
	"testing"
)

func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("*:rate=100,burst=200,weight=5")
	f.Add("acme:rate=500,burst=1000,weight=10,class=interactive;bulk:rate=50,weight=2,class=batch")
	f.Add("free:class=best-effort")
	f.Add("a:rate=1;;b:rate=2;")
	f.Add("a:rate=-1")
	f.Add("a:rate=999999999999999999999999")
	f.Add(":rate=1")
	f.Add("a:bogus=1")
	f.Add("a:class=nope")
	f.Fuzz(func(t *testing.T, spec string) {
		// "@" names a config file; fuzzing must stay out of the
		// filesystem, so redirect those inputs into the inline grammar.
		spec = strings.TrimLeft(spec, "@")
		cfg, err := ParseSpec(spec)
		if err != nil {
			return
		}
		for _, tc := range cfg.Tenants {
			if tc.Name == "" {
				t.Fatalf("accepted a nameless tenant: %+v", tc)
			}
			if tc.Weight < 1 {
				t.Fatalf("accepted weight %d for %q; parseTenant clamps to ≥ 1", tc.Weight, tc.Name)
			}
			if tc.Class >= NumClasses {
				t.Fatalf("accepted unknown class %d for %q", tc.Class, tc.Name)
			}
		}
	})
}
