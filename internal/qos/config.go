package qos

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// TenantConfig is one tenant's quota: a token-bucket rate/burst, a
// concurrency weight, and a default scheduling class for requests that
// do not name one.
type TenantConfig struct {
	Name   string
	Rate   float64 // requests per second; ≤ 0 = unlimited
	Burst  float64 // bucket capacity; clamped to ≥ 1
	Weight int     // concurrency share weight; clamped to ≥ 1
	Class  Class
}

// Config is the tenant table for one process. Default applies to every
// tenant not named in Tenants (including the empty tenant of an
// untagged legacy frame), so an unconfigured tenant is policed rather
// than unlimited.
type Config struct {
	Tenants []TenantConfig
	Default TenantConfig
}

// DefaultConfig is the policy when no -qos flag is given anywhere: a
// single unlimited default tenant. It keeps the plane inert so the
// uncontended single-tenant path pays only the bucket fast path.
func DefaultConfig() Config {
	return Config{Default: TenantConfig{Name: "*", Rate: 0, Burst: 1, Weight: 1, Class: Interactive}}
}

// ParseSpec parses the -qos flag grammar shared by montsysd and
// montsyslb:
//
//	tenant:rate=R,burst=B,weight=W,class=C[;tenant2:...]
//
// Fields are optional and default to rate=0 (unlimited), burst=R (one
// second of rate, or 1), weight=1, class=interactive. The tenant name
// "*" configures the default policy for tenants not named in the spec.
// A spec beginning with "@" names a file whose contents (newlines or
// semicolons between entries, #-comments allowed) are parsed the same
// way.
func ParseSpec(spec string) (Config, error) {
	cfg := DefaultConfig()
	if spec == "" {
		return cfg, nil
	}
	if strings.HasPrefix(spec, "@") {
		raw, err := os.ReadFile(spec[1:])
		if err != nil {
			return cfg, fmt.Errorf("qos: reading config file: %w", err)
		}
		lines := make([]string, 0, 8)
		for _, ln := range strings.Split(string(raw), "\n") {
			if i := strings.IndexByte(ln, '#'); i >= 0 {
				ln = ln[:i]
			}
			if ln = strings.TrimSpace(ln); ln != "" {
				lines = append(lines, ln)
			}
		}
		spec = strings.Join(lines, ";")
	}
	seen := map[string]bool{}
	for _, ent := range strings.Split(spec, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		tc, err := parseTenant(ent)
		if err != nil {
			return cfg, err
		}
		if seen[tc.Name] {
			return cfg, fmt.Errorf("qos: tenant %q configured twice", tc.Name)
		}
		seen[tc.Name] = true
		if tc.Name == "*" {
			cfg.Default = tc
		} else {
			cfg.Tenants = append(cfg.Tenants, tc)
		}
	}
	sort.Slice(cfg.Tenants, func(i, j int) bool { return cfg.Tenants[i].Name < cfg.Tenants[j].Name })
	return cfg, nil
}

func parseTenant(ent string) (TenantConfig, error) {
	name, rest, ok := strings.Cut(ent, ":")
	name = strings.TrimSpace(name)
	if name == "" {
		return TenantConfig{}, fmt.Errorf("qos: entry %q has no tenant name", ent)
	}
	tc := TenantConfig{Name: name, Weight: 1, Class: Interactive}
	if !ok || strings.TrimSpace(rest) == "" {
		tc.Burst = 1
		return tc, nil
	}
	burstSet := false
	for _, f := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
		if !ok {
			return tc, fmt.Errorf("qos: tenant %q: field %q is not key=value", name, f)
		}
		switch k {
		case "rate":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return tc, fmt.Errorf("qos: tenant %q: bad rate %q", name, v)
			}
			tc.Rate = r
		case "burst":
			b, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return tc, fmt.Errorf("qos: tenant %q: bad burst %q", name, v)
			}
			tc.Burst = b
			burstSet = true
		case "weight":
			w, err := strconv.Atoi(v)
			if err != nil || w < 1 {
				return tc, fmt.Errorf("qos: tenant %q: bad weight %q (want integer ≥ 1)", name, v)
			}
			tc.Weight = w
		case "class":
			c, err := ParseClass(v)
			if err != nil {
				return tc, fmt.Errorf("qos: tenant %q: %v", name, err)
			}
			tc.Class = c
		default:
			return tc, fmt.Errorf("qos: tenant %q: unknown field %q", name, k)
		}
	}
	if !burstSet {
		// Default burst: one second of rate, so a quota of rate=R admits
		// R back-to-back requests before throttling to the steady rate.
		tc.Burst = tc.Rate
		if tc.Burst < 1 {
			tc.Burst = 1
		}
	}
	return tc, nil
}

// TenantNames returns the configured tenant names (for metric
// pre-registration) — the named tenants plus OtherTenant for the
// fold-in bucket of unconfigured ones.
func (c Config) TenantNames() []string {
	out := make([]string, 0, len(c.Tenants)+1)
	for _, t := range c.Tenants {
		out = append(out, t.Name)
	}
	return append(out, OtherTenant)
}

// OtherTenant is the metric label and quota bucket that every tenant
// not named in the config folds into. Folding bounds metric
// cardinality: an adversary inventing tenant names per request cannot
// grow the registry.
const OtherTenant = "other"
