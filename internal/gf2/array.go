package gf2

import (
	"fmt"

	"repro/internal/bits"
)

// Array is the GF(2^m) twin of the paper's linear systolic array
// (systolic.Array): the same one-row pipelined structure and the same
// cell schedule t_{i,j} at clock 2i+j, with the carry chain gated off —
// so there are no C0/C1 registers at all, each cell is the XOR/AND
// skeleton of the dual-field PE, and a multiplication needs m iterations
// (3m-1 clocks total) instead of l+2 (3l+4 clocks). Comparing this
// structure with systolic.Array is the array-level justification for the
// dual-field design: the integer array is this plus carries.
type Array struct {
	M int // extension degree

	f Poly // modulus polynomial, degree M
	b Poly // multiplicand, degree < M

	regT   bits.Vec // regT[j] = T(j) register, j = 1..M (index 0 unused)
	stageX []bits.Bit
	stageM []bits.Bit

	cycle int
	wT    bits.Vec
}

// NewArray builds the GF(2^m) array for field polynomial f (degree ≥ 2,
// constant term 1) and multiplicand b (degree < m).
func NewArray(f, b Poly) (*Array, error) {
	m := f.Degree()
	if m < 2 {
		return nil, fmt.Errorf("gf2: modulus degree must be at least 2, got %d", m)
	}
	if f.Coeff(0) != 1 {
		return nil, fmt.Errorf("gf2: modulus must have a nonzero constant term")
	}
	if b.Degree() >= m {
		return nil, fmt.Errorf("gf2: operand degree %d out of range", b.Degree())
	}
	nStages := (m + 1) / 2
	return &Array{
		M:      m,
		f:      f.Clone(),
		b:      b.Clone(),
		regT:   bits.New(m + 1),
		stageX: make([]bits.Bit, nStages+1),
		stageM: make([]bits.Bit, nStages+1),
		wT:     bits.New(m + 1),
	}, nil
}

// Reset clears the pipeline.
func (a *Array) Reset() {
	for i := range a.regT {
		a.regT[i] = 0
	}
	for k := range a.stageX {
		a.stageX[k] = 0
		a.stageM[k] = 0
	}
	a.cycle = 0
}

// Step advances one clock with multiplier coefficient ain presented to
// the rightmost cell (held for two clocks per coefficient, exactly like
// the integer array's X register bit).
func (a *Array) Step(ain bits.Bit) {
	m := a.M

	// Rightmost cell: quotient digit m_i = t_{i-1,1} ⊕ a_i·b_0
	// (f_0 = 1, the GF(2) analogue of N' = 1).
	mi := a.regT[1] ^ (ain & bits.Bit(a.b.Coeff(0)))

	xFor := func(j int) bits.Bit { return a.stageX[(j+1)/2] }
	mFor := func(j int) bits.Bit { return a.stageM[(j+1)/2] }

	// Cells j = 1..m: w_j = t_{i-1,j+1} ⊕ x·b_j ⊕ m·f_j. Cell m sees
	// b_m = 0 and f_m = 1, mirroring the integer leftmost cell's n_l = 0
	// simplification — but with no carry to drop: the dual-field array
	// has no overflow hazard by construction.
	for j := 1; j <= m; j++ {
		tIn := bits.Bit(0)
		if j+1 <= m {
			tIn = a.regT[j+1]
		}
		a.wT[j] = tIn ^ (xFor(j) & bits.Bit(a.b.Coeff(j))) ^ (mFor(j) & bits.Bit(a.f.Coeff(j)))
	}

	copy(a.regT, a.wT)
	if a.cycle%2 == 0 {
		for k := len(a.stageX) - 1; k >= 2; k-- {
			a.stageX[k] = a.stageX[k-1]
			a.stageM[k] = a.stageM[k-1]
		}
		a.stageX[1] = ain
		a.stageM[1] = mi
	}
	a.cycle++
}

// Run performs one multiplication a·b·x^(-m) mod f through the pipeline:
// coefficient a_i is presented during clocks 2i and 2i+1; result
// coefficient c is captured from T(c+1) at the end of clock 2(m-1)+c+1.
// Total: 3m-1 clocks — shorter than the integer array's 3l+4 because
// there are neither extra iterations (no Walter bound) nor carries.
func (a *Array) Run(x Poly) (Poly, int, error) {
	m := a.M
	if x.Degree() >= m {
		return Poly{}, 0, fmt.Errorf("gf2: operand degree %d out of range", x.Degree())
	}
	a.Reset()
	result := NewPoly(m - 1)
	total := 3*m - 1
	for c := 0; c < total; c++ {
		a.Step(bits.Bit(x.Coeff(c / 2)))
		if b := c - (2*m - 1); b >= 0 && b <= m-1 {
			result.SetCoeff(b, uint64(a.regT[b+1]))
		}
	}
	return result, total, nil
}
