package gf2

import (
	"errors"
	"fmt"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/systolic"
)

// Field is a binary extension field GF(2^m) = GF(2)[x]/(f) with the
// Montgomery constants for R = x^m.
type Field struct {
	F Poly // irreducible modulus polynomial, degree m
	M int  // extension degree

	rr Poly // R² mod f = x^(2m) mod f
}

// NewField builds the field for an irreducible f of degree ≥ 2 with a
// nonzero constant term (gcd(f, x) = 1, the GF(2^m) analogue of the odd-
// modulus requirement). Irreducibility itself is the caller's contract —
// the arithmetic is well-defined mod any such f, and the tests use known
// irreducible trinomials/pentanomials.
func NewField(f Poly) (*Field, error) {
	m := f.Degree()
	if m < 2 {
		return nil, errors.New("gf2: modulus degree must be at least 2")
	}
	if f.Coeff(0) != 1 {
		return nil, errors.New("gf2: modulus must have a nonzero constant term")
	}
	r2 := NewPoly(2 * m)
	r2.SetCoeff(2*m, 1)
	return &Field{F: f, M: m, rr: r2.Mod(f)}, nil
}

// Iterations returns the loop count of the Montgomery multiplication —
// exactly m, with no +2 slack: the carry-free field needs no Walter
// bound because "T < 2N" has no meaning and degrees cannot creep.
func (fd *Field) Iterations() int { return fd.M }

// Mont computes a·b·x^(-m) mod f with the bit-serial Montgomery loop —
// the GF(2^m) twin of the paper's Algorithm 2. Inputs must have degree
// < m; so does the output (exactly, not just within a bound).
func (fd *Field) Mont(a, b Poly) Poly {
	if a.Degree() >= fd.M || b.Degree() >= fd.M {
		panic(fmt.Sprintf("gf2: operand degree out of range (max %d)", fd.M-1))
	}
	t := Poly{}
	for i := 0; i < fd.M; i++ {
		if a.Coeff(i) == 1 {
			t = t.Add(b)
		}
		// m_i = t_0 (+ a_i·b_0 already folded in above); over GF(2) the
		// quotient digit is simply the constant coefficient after the
		// a_i·B addition, because f_0 = 1.
		if t.Coeff(0) == 1 {
			t = t.Add(fd.F)
		}
		t = t.Shr()
	}
	return t
}

// MontClosedForm is the oracle: a·b·(x^m)⁻¹ mod f via plain polynomial
// arithmetic and an extended-Euclid inverse of x^m.
func (fd *Field) MontClosedForm(a, b Poly) Poly {
	xm := NewPoly(fd.M)
	xm.SetCoeff(fd.M, 1)
	inv, err := Inverse(xm.Mod(fd.F), fd.F)
	if err != nil {
		panic("gf2: x^m not invertible — modulus has x as a factor")
	}
	return a.Mul(b).Mod(fd.F).Mul(inv).Mod(fd.F)
}

// ToMont maps a (deg < m) into the Montgomery domain a·x^m mod f.
func (fd *Field) ToMont(a Poly) Poly { return fd.Mont(a, fd.rr) }

// FromMont strips the x^m factor.
func (fd *Field) FromMont(t Poly) Poly { return fd.Mont(t, FromUint64(1)) }

// MulMod is the full field multiplication a·b mod f through the
// Montgomery core (two passes).
func (fd *Field) MulMod(a, b Poly) Poly {
	return fd.Mont(fd.ToMont(a), b)
}

// Exp computes a^e mod f (e as a big-endian bit slice is overkill; a
// uint64 exponent covers the tests and inversion uses Inverse instead).
func (fd *Field) Exp(a Poly, e uint64) Poly {
	result := FromUint64(1)
	acc := a.Clone()
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			result = result.MulMod(acc, fd.F)
		}
		acc = acc.MulMod(acc, fd.F)
	}
	return result
}

// Inverse computes a⁻¹ mod f by the extended Euclidean algorithm over
// GF(2)[x]. It errors when gcd(a, f) ≠ 1.
func Inverse(a, f Poly) (Poly, error) {
	if a.IsZero() {
		return Poly{}, errors.New("gf2: zero has no inverse")
	}
	// Extended Euclid: maintain r0 = u0·a (mod f-multiples), r1 = u1·a.
	r0, r1 := f.Clone(), a.Mod(f)
	u0, u1 := Poly{}, FromUint64(1)
	for !r1.IsZero() {
		dr0, dr1 := r0.Degree(), r1.Degree()
		if dr0 < dr1 {
			r0, r1 = r1, r0
			u0, u1 = u1, u0
			continue
		}
		shift := dr0 - dr1
		r0 = r0.Add(r1.Shl(shift))
		u0 = u0.Add(u1.Shl(shift))
	}
	if r0.Degree() != 0 {
		return Poly{}, errors.New("gf2: not invertible (gcd ≠ 1)")
	}
	return u0.Mod(f), nil
}

// ---- dual-field cell model ----

// DualCellOut mirrors systolic.RegularOut for the dual-field cell.
type DualCellOut struct {
	T  bits.Bit
	C0 bits.Bit
	C1 bits.Bit
}

// DualRegularCell is the Savaş-style dual-field processing element: the
// paper's regular cell (Fig. 1a) with a field-select input. fsel = 1
// behaves exactly as the GF(p) cell; fsel = 0 gates the carry chain, so
// the two full adders and the half adder degenerate to XOR trees and the
// cell computes the GF(2^m) recurrence t = tIn ⊕ a·y ⊕ m·f.
func DualRegularCell(fsel, tIn, xi, yj, mi, nj, c1In, c0In bits.Bit) DualCellOut {
	// Gate the incoming carries: in GF(2) mode they are forced low.
	c1In &= fsel
	c0In &= fsel
	out := systolic.RegularCell(tIn, xi, yj, mi, nj, c1In, c0In)
	return DualCellOut{
		T:  out.T,
		C0: out.C0 & fsel,
		C1: out.C1 & fsel,
	}
}

// IterModel is the GF(2^m) twin of systolic.IterModel: one loop
// iteration per call over the dual-field cells, verifying that the gated
// datapath really computes the field multiplication.
type IterModel struct {
	fd *Field
	b  Poly
	t  Poly
}

// NewIterModel prepares a dual-field iteration model for B = b.
func NewIterModel(fd *Field, b Poly) (*IterModel, error) {
	if b.Degree() >= fd.M {
		return nil, fmt.Errorf("gf2: operand degree %d out of range", b.Degree())
	}
	return &IterModel{fd: fd, b: b.Clone(), t: Poly{}}, nil
}

// Reset clears the accumulator.
func (im *IterModel) Reset() { im.t = Poly{} }

// StepIteration performs one loop iteration with multiplier coefficient
// ai, using DualRegularCell for every digit (fsel = 0).
func (im *IterModel) StepIteration(ai uint64) {
	m := im.fd.M
	w := NewPoly(m + 1)
	// Rightmost: quotient digit mi = t_0 ⊕ ai·b_0 (since f_0 = 1).
	mi := bits.Bit(im.t.Coeff(0)) ^ (bits.Bit(ai) & bits.Bit(im.b.Coeff(0)))
	for j := 1; j <= m; j++ {
		out := DualRegularCell(0,
			bits.Bit(im.t.Coeff(j)),
			bits.Bit(ai), bits.Bit(im.b.Coeff(j)),
			mi, bits.Bit(im.fd.F.Coeff(j)),
			0, 0)
		if out.C0 != 0 || out.C1 != 0 {
			panic("gf2: dual cell leaked a carry in GF(2) mode")
		}
		w.SetCoeff(j, uint64(out.T))
	}
	// T ← W / x (the shifted read; w_0 is zero by construction of mi).
	im.t = w.Shr()
}

// RunMul multiplies a·b·x^(-m) mod f through the cell model.
func (im *IterModel) RunMul(a Poly) (Poly, error) {
	if a.Degree() >= im.fd.M {
		return Poly{}, fmt.Errorf("gf2: operand degree %d out of range", a.Degree())
	}
	im.Reset()
	for i := 0; i < im.fd.M; i++ {
		im.StepIteration(a.Coeff(i))
	}
	return im.t.Clone(), nil
}

// BuildDualRegularCell instantiates the dual-field processing element in
// gates: the paper's Fig. 1(a) regular cell with its three carry signals
// gated by the field-select net. fsel = 1 gives bit-exact GF(p)
// behaviour; fsel = 0 turns the FA/HA adders into XOR trees computing
// the GF(2^m) recurrence. Gate cost over the plain cell: 4 AND gates
// (two gating the carry inputs, two gating the carry outputs).
func BuildDualRegularCell(nl *logic.Netlist, fsel, tIn, xi, yj, mi, nj, c1In, c0In logic.Signal) (t, c0, c1 logic.Signal) {
	gc1In := nl.AndGate(c1In, fsel)
	gc0In := nl.AndGate(c0In, fsel)
	t, c0raw, c1raw := systolic.BuildRegularCell(nl, tIn, xi, yj, mi, nj, gc1In, gc0In)
	c0 = nl.AndGate(c0raw, fsel)
	c1 = nl.AndGate(c1raw, fsel)
	return t, c0, c1
}
