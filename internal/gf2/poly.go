// Package gf2 extends the reproduction toward the dual-field multiplier
// the paper's §2 highlights (Savaş, Tenca, Koç, CHES 2000): the same
// Montgomery datapath serving both GF(p) and GF(2^m). Over GF(2^m) the
// Montgomery loop
//
//	T ← (T + a_i·B + m_i·F) / x,   m_i = t_0 + a_i·b_0
//
// is carry-free — addition is XOR — so the systolic cells degrade to
// their XOR/AND skeleton and, unlike the integer case, exactly m
// iterations suffice with R = x^m and no output-bound slack at all: a
// concrete illustration of why dual-field hardware gates the carry chain
// rather than duplicating the array.
//
// The package provides bit-packed polynomial arithmetic over GF(2), the
// Montgomery multiplication/exponentiation over GF(2^m), and the
// dual-field cell model (a field-select input that forces the carry
// signals of the paper's regular cell to zero), all property-tested
// against a reference shift-and-xor implementation.
package gf2

import (
	"fmt"
	mathbits "math/bits"
	"strings"
)

// Poly is a polynomial over GF(2), bit-packed little-endian: bit i of
// the backing words is the coefficient of x^i.
type Poly struct {
	w []uint64
}

// NewPoly returns the zero polynomial with capacity for deg+1
// coefficients.
func NewPoly(deg int) Poly {
	if deg < 0 {
		return Poly{}
	}
	return Poly{w: make([]uint64, deg/64+1)}
}

// FromUint64 builds a polynomial from packed coefficients.
func FromUint64(bits uint64) Poly {
	return Poly{w: []uint64{bits}}
}

// FromCoeffs builds a polynomial with the given exponents set, e.g.
// FromCoeffs(163, 7, 6, 3, 0) is the NIST B-163 pentanomial.
func FromCoeffs(exps ...int) Poly {
	max := 0
	for _, e := range exps {
		if e < 0 {
			panic(fmt.Sprintf("gf2: negative exponent %d", e))
		}
		if e > max {
			max = e
		}
	}
	p := NewPoly(max)
	for _, e := range exps {
		p.SetCoeff(e, 1)
	}
	return p
}

// Clone returns an independent copy.
func (p Poly) Clone() Poly {
	return Poly{w: append([]uint64(nil), p.w...)}
}

// Coeff returns coefficient i (0 beyond the backing words).
func (p Poly) Coeff(i int) uint64 {
	if i < 0 {
		panic("gf2: negative coefficient index")
	}
	wi := i / 64
	if wi >= len(p.w) {
		return 0
	}
	return (p.w[wi] >> (i % 64)) & 1
}

// SetCoeff sets coefficient i to v (0 or 1), growing as needed.
func (p *Poly) SetCoeff(i int, v uint64) {
	if v > 1 {
		panic(fmt.Sprintf("gf2: invalid coefficient %d", v))
	}
	wi := i / 64
	for wi >= len(p.w) {
		p.w = append(p.w, 0)
	}
	if v == 1 {
		p.w[wi] |= 1 << (i % 64)
	} else {
		p.w[wi] &^= 1 << (i % 64)
	}
}

// Degree returns the degree (-1 for the zero polynomial).
func (p Poly) Degree() int {
	for i := len(p.w) - 1; i >= 0; i-- {
		if p.w[i] != 0 {
			return 64*i + mathbits.Len64(p.w[i]) - 1
		}
	}
	return -1
}

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return p.Degree() == -1 }

// Equal reports coefficient-wise equality.
func (p Poly) Equal(q Poly) bool {
	n := len(p.w)
	if len(q.w) > n {
		n = len(q.w)
	}
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(p.w) {
			a = p.w[i]
		}
		if i < len(q.w) {
			b = q.w[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Add returns p + q (XOR).
func (p Poly) Add(q Poly) Poly {
	n := len(p.w)
	if len(q.w) > n {
		n = len(q.w)
	}
	out := Poly{w: make([]uint64, n)}
	for i := range out.w {
		if i < len(p.w) {
			out.w[i] ^= p.w[i]
		}
		if i < len(q.w) {
			out.w[i] ^= q.w[i]
		}
	}
	return out
}

// Shl returns p·x^k.
func (p Poly) Shl(k int) Poly {
	if k < 0 {
		panic("gf2: negative shift")
	}
	d := p.Degree()
	if d < 0 {
		return Poly{}
	}
	out := NewPoly(d + k)
	for i := 0; i <= d; i++ {
		if p.Coeff(i) == 1 {
			out.SetCoeff(i+k, 1)
		}
	}
	return out
}

// Shr returns p / x (dropping the constant coefficient).
func (p Poly) Shr() Poly {
	out := Poly{w: make([]uint64, len(p.w))}
	for i := range p.w {
		out.w[i] = p.w[i] >> 1
		if i+1 < len(p.w) {
			out.w[i] |= p.w[i+1] << 63
		}
	}
	return out
}

// Mul returns the carry-less product p·q (schoolbook over words).
func (p Poly) Mul(q Poly) Poly {
	dp, dq := p.Degree(), q.Degree()
	if dp < 0 || dq < 0 {
		return Poly{}
	}
	out := NewPoly(dp + dq)
	for i := 0; i <= dp; i++ {
		if p.Coeff(i) == 0 {
			continue
		}
		for wi, w := range q.w {
			if w == 0 {
				continue
			}
			// out ^= w << (i + 64*wi)
			base := i + 64*wi
			lo := base / 64
			sh := uint(base % 64)
			for lo >= len(out.w) {
				out.w = append(out.w, 0)
			}
			out.w[lo] ^= w << sh
			if sh != 0 {
				if lo+1 >= len(out.w) {
					out.w = append(out.w, 0)
				}
				out.w[lo+1] ^= w >> (64 - sh)
			}
		}
	}
	return out
}

// Mod returns p mod f (f non-zero).
func (p Poly) Mod(f Poly) Poly {
	df := f.Degree()
	if df < 0 {
		panic("gf2: division by zero polynomial")
	}
	r := p.Clone()
	for {
		dr := r.Degree()
		if dr < df {
			return r
		}
		r = r.Add(f.Shl(dr - df))
	}
}

// MulMod returns p·q mod f.
func (p Poly) MulMod(q, f Poly) Poly { return p.Mul(q).Mod(f) }

// String renders the polynomial in conventional form.
func (p Poly) String() string {
	d := p.Degree()
	if d < 0 {
		return "0"
	}
	var terms []string
	for i := d; i >= 0; i-- {
		if p.Coeff(i) == 1 {
			switch i {
			case 0:
				terms = append(terms, "1")
			case 1:
				terms = append(terms, "x")
			default:
				terms = append(terms, fmt.Sprintf("x^%d", i))
			}
		}
	}
	return strings.Join(terms, " + ")
}
