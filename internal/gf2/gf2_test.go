package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/logic"
)

// nistB163 is the NIST B-163 field polynomial x^163+x^7+x^6+x^3+1.
func nistB163() Poly { return FromCoeffs(163, 7, 6, 3, 0) }

func randPoly(rng *rand.Rand, maxDeg int) Poly {
	p := NewPoly(maxDeg)
	for i := 0; i <= maxDeg; i++ {
		if rng.Intn(2) == 1 {
			p.SetCoeff(i, 1)
		}
	}
	return p
}

func TestPolyBasics(t *testing.T) {
	p := FromCoeffs(5, 2, 0) // x^5 + x^2 + 1
	if p.Degree() != 5 || p.Coeff(2) != 1 || p.Coeff(3) != 0 {
		t.Fatalf("FromCoeffs wrong: %s", p)
	}
	if p.String() != "x^5 + x^2 + 1" {
		t.Errorf("String = %q", p.String())
	}
	if (Poly{}).String() != "0" || !(Poly{}).IsZero() {
		t.Error("zero polynomial misbehaves")
	}
	if FromCoeffs(1).String() != "x" {
		t.Errorf("x renders as %q", FromCoeffs(1).String())
	}
	q := p.Clone()
	q.SetCoeff(0, 0)
	if p.Coeff(0) != 1 {
		t.Error("Clone not independent")
	}
	if !p.Equal(p.Clone()) || p.Equal(q) {
		t.Error("Equal wrong")
	}
}

func TestPolyAddIsXor(t *testing.T) {
	a := FromUint64(0b1011)
	b := FromUint64(0b1101)
	if got := a.Add(b); !got.Equal(FromUint64(0b0110)) {
		t.Errorf("Add = %s", got)
	}
	// Characteristic 2: p + p = 0.
	if !a.Add(a).IsZero() {
		t.Error("p + p != 0")
	}
}

func TestPolyShifts(t *testing.T) {
	p := FromUint64(0b101)
	if got := p.Shl(3); !got.Equal(FromUint64(0b101000)) {
		t.Errorf("Shl = %s", got)
	}
	if got := p.Shr(); !got.Equal(FromUint64(0b10)) {
		t.Errorf("Shr = %s", got)
	}
	if !(Poly{}).Shl(5).IsZero() {
		t.Error("0 << 5 != 0")
	}
	// Shr across word boundaries.
	q := NewPoly(64)
	q.SetCoeff(64, 1)
	if q.Shr().Degree() != 63 {
		t.Error("Shr across word boundary wrong")
	}
}

// Mul against a naive coefficient-by-coefficient reference.
func TestPolyMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 100; trial++ {
		a := randPoly(rng, 90)
		b := randPoly(rng, 70)
		got := a.Mul(b)
		want := Poly{}
		for i := 0; i <= a.Degree(); i++ {
			if a.Coeff(i) == 1 {
				want = want.Add(b.Shl(i))
			}
		}
		if !got.Equal(want) {
			t.Fatalf("Mul mismatch:\n a=%s\n b=%s", a, b)
		}
	}
}

func TestPolyMod(t *testing.T) {
	f := FromCoeffs(3, 1, 0) // x^3 + x + 1, irreducible
	// x^3 mod f = x + 1.
	if got := FromCoeffs(3).Mod(f); !got.Equal(FromCoeffs(1, 0)) {
		t.Errorf("x^3 mod f = %s", got)
	}
	if got := FromUint64(0b101).Mod(f); !got.Equal(FromUint64(0b101)) {
		t.Error("Mod of smaller degree changed the value")
	}
}

func TestInverse(t *testing.T) {
	f := FromCoeffs(8, 4, 3, 1, 0) // AES polynomial, irreducible
	rng := rand.New(rand.NewSource(162))
	for trial := 0; trial < 50; trial++ {
		a := randPoly(rng, 7)
		if a.IsZero() {
			continue
		}
		inv, err := Inverse(a, f)
		if err != nil {
			t.Fatalf("Inverse(%s) failed: %v", a, err)
		}
		if got := a.MulMod(inv, f); !got.Equal(FromUint64(1)) {
			t.Fatalf("a·a⁻¹ = %s", got)
		}
	}
	if _, err := Inverse(Poly{}, f); err == nil {
		t.Error("inverse of zero accepted")
	}
	// Non-invertible: gcd(x, x^3+x) = x.
	if _, err := Inverse(FromCoeffs(1), FromCoeffs(3, 1)); err == nil {
		t.Error("non-coprime inverse accepted")
	}
}

func TestNewFieldValidation(t *testing.T) {
	if _, err := NewField(FromCoeffs(1, 0)); err == nil {
		t.Error("degree-1 modulus accepted")
	}
	if _, err := NewField(FromCoeffs(3, 1)); err == nil {
		t.Error("modulus with zero constant term accepted")
	}
	fd, err := NewField(FromCoeffs(8, 4, 3, 1, 0))
	if err != nil || fd.M != 8 || fd.Iterations() != 8 {
		t.Fatalf("field setup: %v %+v", err, fd)
	}
}

// The GF(2^m) Montgomery loop against the closed form, across fields.
func TestMontMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	for _, f := range []Poly{
		FromCoeffs(3, 1, 0),
		FromCoeffs(8, 4, 3, 1, 0),
		FromCoeffs(17, 3, 0),
		nistB163(),
	} {
		fd, err := NewField(f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			a := randPoly(rng, fd.M-1)
			b := randPoly(rng, fd.M-1)
			got := fd.Mont(a, b)
			if got.Degree() >= fd.M {
				t.Fatalf("m=%d: output degree %d out of range", fd.M, got.Degree())
			}
			if want := fd.MontClosedForm(a, b); !got.Equal(want) {
				t.Fatalf("m=%d: Mont wrong", fd.M)
			}
		}
	}
}

func TestMontOperandBoundPanics(t *testing.T) {
	fd, _ := NewField(FromCoeffs(3, 1, 0))
	defer func() {
		if recover() == nil {
			t.Error("oversized operand accepted")
		}
	}()
	fd.Mont(FromCoeffs(3), FromUint64(1))
}

func TestDomainRoundTrip(t *testing.T) {
	fd, _ := NewField(nistB163())
	rng := rand.New(rand.NewSource(164))
	for trial := 0; trial < 20; trial++ {
		a := randPoly(rng, fd.M-1)
		am := fd.ToMont(a)
		if !fd.FromMont(am).Equal(a) {
			t.Fatal("domain round trip failed")
		}
	}
}

func TestMulModAndExp(t *testing.T) {
	fd, _ := NewField(FromCoeffs(8, 4, 3, 1, 0))
	rng := rand.New(rand.NewSource(165))
	for trial := 0; trial < 30; trial++ {
		a := randPoly(rng, 7)
		b := randPoly(rng, 7)
		if got, want := fd.MulMod(a, b), a.MulMod(b, fd.F); !got.Equal(want) {
			t.Fatal("MulMod wrong")
		}
	}
	// Fermat in GF(2^8): a^(2^8-1) = 1 for a ≠ 0.
	for trial := 0; trial < 20; trial++ {
		a := randPoly(rng, 7)
		if a.IsZero() {
			continue
		}
		if got := fd.Exp(a, 255); !got.Equal(FromUint64(1)) {
			t.Fatalf("a^255 = %s for a = %s", got, a)
		}
	}
	if got := fd.Exp(randPoly(rng, 7), 0); !got.Equal(FromUint64(1)) {
		t.Error("a^0 != 1")
	}
}

// The dual-field cell with fsel=1 must be EXACTLY the paper's regular
// cell; with fsel=0 it must never emit a carry and must compute the
// XOR recurrence.
func TestDualCellBothModes(t *testing.T) {
	for v := 0; v < 1<<7; v++ {
		tIn, xi, yj := uint8(v&1), uint8(v>>1&1), uint8(v>>2&1)
		mi, nj := uint8(v>>3&1), uint8(v>>4&1)
		c1In, c0In := uint8(v>>5&1), uint8(v>>6&1)

		gfp := DualRegularCell(1, tIn, xi, yj, mi, nj, c1In, c0In)
		lhs := 4*int(gfp.C1) + 2*int(gfp.C0) + int(gfp.T)
		rhs := int(tIn) + int(xi&yj) + int(mi&nj) + 2*int(c1In) + int(c0In)
		if lhs != rhs {
			t.Fatalf("fsel=1 diverges from Eq. (4) at %07b", v)
		}

		gf2 := DualRegularCell(0, tIn, xi, yj, mi, nj, c1In, c0In)
		if gf2.C0 != 0 || gf2.C1 != 0 {
			t.Fatalf("fsel=0 leaked a carry at %07b", v)
		}
		if gf2.T != tIn^(xi&yj)^(mi&nj) {
			t.Fatalf("fsel=0 digit wrong at %07b", v)
		}
	}
}

// The dual-cell iteration model must equal the field's Montgomery
// multiplication — the array really is reusable across fields.
func TestDualIterModelMatchesMont(t *testing.T) {
	rng := rand.New(rand.NewSource(166))
	for _, f := range []Poly{FromCoeffs(3, 1, 0), FromCoeffs(8, 4, 3, 1, 0), FromCoeffs(17, 3, 0)} {
		fd, _ := NewField(f)
		for trial := 0; trial < 30; trial++ {
			a := randPoly(rng, fd.M-1)
			b := randPoly(rng, fd.M-1)
			im, err := NewIterModel(fd, b)
			if err != nil {
				t.Fatal(err)
			}
			got, err := im.RunMul(a)
			if err != nil {
				t.Fatal(err)
			}
			if want := fd.Mont(a, b); !got.Equal(want) {
				t.Fatalf("m=%d: dual-cell model diverges", fd.M)
			}
		}
	}
	fd, _ := NewField(FromCoeffs(3, 1, 0))
	if _, err := NewIterModel(fd, FromCoeffs(5)); err == nil {
		t.Error("oversized b accepted")
	}
	im, _ := NewIterModel(fd, FromUint64(1))
	if _, err := im.RunMul(FromCoeffs(5)); err == nil {
		t.Error("oversized a accepted")
	}
}

// Property: Mont is commutative and linear in each argument (over the
// packed-uint64 subset).
func TestQuickMontProperties(t *testing.T) {
	fd, _ := NewField(FromCoeffs(17, 3, 0))
	mask := uint64(1)<<17 - 1
	f := func(a, b, c uint64) bool {
		pa, pb, pc := FromUint64(a&mask), FromUint64(b&mask), FromUint64(c&mask)
		// commutativity
		if !fd.Mont(pa, pb).Equal(fd.Mont(pb, pa)) {
			return false
		}
		// left linearity: Mont(a+c, b) = Mont(a,b) + Mont(c,b)
		lhs := fd.Mont(pa.Add(pc), pb)
		rhs := fd.Mont(pa, pb).Add(fd.Mont(pc, pb))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The GF(2^m) pipelined array must reproduce Field.Mont exactly, in
// 3m-1 clocks, across fields and operands, with instance reuse.
func TestGF2ArrayMatchesMont(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	for _, f := range []Poly{
		FromCoeffs(3, 1, 0),
		FromCoeffs(8, 4, 3, 1, 0),
		FromCoeffs(17, 3, 0),
		FromCoeffs(31, 3, 0),
	} {
		fd, err := NewField(f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			a := randPoly(rng, fd.M-1)
			b := randPoly(rng, fd.M-1)
			arr, err := NewArray(f, b)
			if err != nil {
				t.Fatal(err)
			}
			got, cycles, err := arr.Run(a)
			if err != nil {
				t.Fatal(err)
			}
			if cycles != 3*fd.M-1 {
				t.Fatalf("m=%d: %d cycles, want %d", fd.M, cycles, 3*fd.M-1)
			}
			if want := fd.Mont(a, b); !got.Equal(want) {
				t.Fatalf("m=%d: array wrong:\n a=%s\n b=%s\n got=%s\n want=%s",
					fd.M, a, b, got, want)
			}
			// Reuse the same instance.
			a2 := randPoly(rng, fd.M-1)
			got2, _, err := arr.Run(a2)
			if err != nil {
				t.Fatal(err)
			}
			if want := fd.Mont(a2, b); !got2.Equal(want) {
				t.Fatalf("m=%d: array reuse wrong", fd.M)
			}
		}
	}
}

func TestGF2ArrayValidation(t *testing.T) {
	if _, err := NewArray(FromCoeffs(1, 0), FromUint64(1)); err == nil {
		t.Error("degree-1 modulus accepted")
	}
	if _, err := NewArray(FromCoeffs(3, 1), FromUint64(1)); err == nil {
		t.Error("zero constant term accepted")
	}
	if _, err := NewArray(FromCoeffs(3, 1, 0), FromCoeffs(3)); err == nil {
		t.Error("oversized b accepted")
	}
	arr, _ := NewArray(FromCoeffs(3, 1, 0), FromUint64(1))
	if _, _, err := arr.Run(FromCoeffs(3)); err == nil {
		t.Error("oversized a accepted")
	}
}

// The iteration-count contrast the dual-field design exposes: m loops
// and 3m-1 clocks over GF(2^m) versus l+2 loops and 3l+4 clocks over
// GF(p) at the same width — the carry-free field needs no Walter slack.
func TestGF2FewerIterationsThanGFp(t *testing.T) {
	const width = 16
	fd, _ := NewField(FromCoeffs(width, 5, 3, 1, 0))
	if fd.Iterations() != width {
		t.Errorf("GF(2^m) iterations = %d, want m", fd.Iterations())
	}
	gfpIterations := width + 2 // l+2 per the paper
	if fd.Iterations() >= gfpIterations {
		t.Error("dual-field advantage missing")
	}
	arr, _ := NewArray(FromCoeffs(width, 5, 3, 1, 0), FromUint64(0x1234))
	_, cycles, err := arr.Run(FromUint64(0x2b))
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 3*width-1 || cycles >= 3*width+4 {
		t.Errorf("cycle contrast wrong: %d", cycles)
	}
}

// The gate-level dual cell must match the behavioural dual cell in both
// field modes, over all 2^8 input combinations.
func TestBuildDualRegularCell(t *testing.T) {
	nl := logic.New()
	in := nl.InputVec("in", 8) // fsel, tIn, xi, yj, mi, nj, c1In, c0In
	tOut, c0, c1 := BuildDualRegularCell(nl, in[0], in[1], in[2], in[3], in[4], in[5], in[6], in[7])
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 1<<8; v++ {
		vals := make(bits.Vec, 8)
		for i := range vals {
			vals[i] = bits.Bit(v >> i & 1)
		}
		sim.SetMany(in, vals)
		want := DualRegularCell(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7])
		if sim.Get(tOut) != want.T || sim.Get(c0) != want.C0 || sim.Get(c1) != want.C1 {
			t.Fatalf("gate dual cell mismatch at %08b", v)
		}
	}
}
