package obs

import (
	"io"
	"strconv"
	"sync"
	"time"
)

// WideEvent is one wide structured request log record: everything known
// about a sampled request at one layer, denormalized into a single
// line, in the "canonical log line" style. Every layer that touches a
// sampled request emits one (Layer "client", "route", "server" or
// "engine"), all sharing the trace id, so a grep for one trace id
// reconstructs the request's whole story without joining log streams.
type WideEvent struct {
	Layer    string // emitting layer: "client" | "route" | "server" | "engine"
	Op       string // "mont" | "modexp" | "batch_modexp"
	TraceID  TraceID
	SpanID   SpanID
	Parent   SpanID
	Outcome  string        // wire code string or engine outcome
	Tenant   string        // tenant the request was accounted to (QoS)
	Class    string        // QoS class name when the request was tagged
	Kit      string        // concrete compute kit (engine layer)
	Backend  string        // chosen backend address (route layer)
	Bits     int           // modulus width in bits
	Batch    int           // jobs in the request (batch ops)
	Dur      time.Duration // whole-span duration at this layer
	Queue    time.Duration // queue wait portion (engine layer)
	Attempts int           // tries incl. hedges/failovers (client/route)
	Hedged   bool          // a hedge was launched (route layer)
	Err      string        // error detail when Outcome isn't ok
}

// WideWriter serializes wide events as one JSON line each. The writer
// is zero-cost when off: a nil *WideWriter is valid and Emit on it is
// an inlineable nil-check — callers keep unconditional Emit calls on
// the hot path and pay one predictable branch when logging is
// disabled. When on, serialization is a hand-rolled append into a
// reused buffer under the writer's mutex: no reflection, one Write
// call per event.
type WideWriter struct {
	mu  sync.Mutex
	w   io.Writer
	buf []byte
	now func() time.Time // test seam
}

// NewWideWriter wraps w (a file, stdout, a test buffer). Returns nil —
// the disabled writer — when w is nil.
func NewWideWriter(w io.Writer) *WideWriter {
	if w == nil {
		return nil
	}
	return &WideWriter{w: w, now: time.Now}
}

// Enabled reports whether events will actually be written.
func (ww *WideWriter) Enabled() bool { return ww != nil }

// Emit writes one event as a JSON line. No-op on a nil receiver.
func (ww *WideWriter) Emit(ev *WideEvent) {
	if ww == nil {
		return
	}
	ww.mu.Lock()
	defer ww.mu.Unlock()
	b := ww.buf[:0]
	b = append(b, `{"ts":"`...)
	b = ww.now().UTC().AppendFormat(b, time.RFC3339Nano)
	b = append(b, `","layer":`...)
	b = strconv.AppendQuote(b, ev.Layer)
	b = append(b, `,"op":`...)
	b = strconv.AppendQuote(b, ev.Op)
	if !ev.TraceID.IsZero() {
		b = append(b, `,"trace_id":"`...)
		b = append(b, ev.TraceID.String()...)
		b = append(b, `","span_id":"`...)
		b = append(b, ev.SpanID.String()...)
		b = append(b, '"')
		if !ev.Parent.IsZero() {
			b = append(b, `,"parent_id":"`...)
			b = append(b, ev.Parent.String()...)
			b = append(b, '"')
		}
	}
	b = append(b, `,"outcome":`...)
	b = strconv.AppendQuote(b, ev.Outcome)
	if ev.Tenant != "" {
		b = append(b, `,"tenant":`...)
		b = strconv.AppendQuote(b, ev.Tenant)
	}
	if ev.Class != "" {
		b = append(b, `,"class":`...)
		b = strconv.AppendQuote(b, ev.Class)
	}
	if ev.Kit != "" {
		b = append(b, `,"kit":`...)
		b = strconv.AppendQuote(b, ev.Kit)
	}
	if ev.Backend != "" {
		b = append(b, `,"backend":`...)
		b = strconv.AppendQuote(b, ev.Backend)
	}
	if ev.Bits > 0 {
		b = append(b, `,"modulus_bits":`...)
		b = strconv.AppendInt(b, int64(ev.Bits), 10)
	}
	if ev.Batch > 0 {
		b = append(b, `,"batch":`...)
		b = strconv.AppendInt(b, int64(ev.Batch), 10)
	}
	b = append(b, `,"dur_us":`...)
	b = strconv.AppendInt(b, ev.Dur.Microseconds(), 10)
	if ev.Queue > 0 {
		b = append(b, `,"queue_us":`...)
		b = strconv.AppendInt(b, ev.Queue.Microseconds(), 10)
	}
	if ev.Attempts > 0 {
		b = append(b, `,"attempts":`...)
		b = strconv.AppendInt(b, int64(ev.Attempts), 10)
	}
	if ev.Hedged {
		b = append(b, `,"hedged":true`...)
	}
	if ev.Err != "" {
		b = append(b, `,"err":`...)
		b = strconv.AppendQuote(b, ev.Err)
	}
	b = append(b, '}', '\n')
	ww.buf = b
	_, _ = ww.w.Write(b)
}
