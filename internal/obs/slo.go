package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// sloWindows are the burn-rate lookback windows: the fast window pages
// on sharp regressions, the slow window on sustained slow burn — the
// standard multi-window pairing, sized to this system's 1h metric
// horizon.
var sloWindows = []struct {
	name string
	dur  time.Duration
}{
	{"5m", 5 * time.Minute},
	{"1h", time.Hour},
}

// SLOSource reports an objective's cumulative totals since process
// start: how many events happened and how many violated the objective.
// Sources are closures over the existing registry counters and
// histograms — the SLO plane derives everything from metrics that are
// already collected, it never instruments the hot path itself.
type SLOSource func() (total, bad int64)

// objective is one registered SLO: a named source, a target (e.g.
// 0.999 = 99.9% of events good), and the exported burn-rate gauges.
type objective struct {
	name   string
	detail string // human description for /statusz
	target float64
	src    SLOSource
	burn   []*Gauge // per window, milli-units
}

// cum is one objective's cumulative (total, bad) at a sample instant.
type cum struct{ total, bad int64 }

// SLOTracker turns cumulative good/bad sources into rolling
// multi-window burn rates. Every interval it snapshots each source
// into a time-stamped ring (sized to the longest window) and, per
// objective and window, computes
//
//	burn = (Δbad/Δtotal) / (1 − target)
//
// — the rate the error budget is being spent: 1.0 burns exactly the
// budget, 14.4 on the 5m window is the classic "page now" threshold.
// Burn rates are exported as montsys_slo_burn_rate_milli{slo,window}
// gauges (milli-units: the registry's gauges are integers) and as the
// human /statusz page.
type SLOTracker struct {
	mu         sync.Mutex
	reg        *Registry
	interval   time.Duration
	objectives []*objective
	ring       []sloSample
	next       int
	full       bool
	started    time.Time
	stop       chan struct{}
	stopOnce   sync.Once
	now        func() time.Time // test seam
}

type sloSample struct {
	at   time.Time
	vals []cum // parallel to objectives at sample time
}

// NewSLOTracker builds a tracker snapshotting every interval (≤ 0
// selects 10s) into reg. Call AddObjective, then Start.
func NewSLOTracker(reg *Registry, interval time.Duration) *SLOTracker {
	if interval <= 0 {
		interval = 10 * time.Second
	}
	depth := int(sloWindows[len(sloWindows)-1].dur/interval) + 2
	t := &SLOTracker{
		reg:      reg,
		interval: interval,
		ring:     make([]sloSample, depth),
		stop:     make(chan struct{}),
		now:      time.Now,
	}
	t.started = t.now()
	return t
}

// AddObjective registers one SLO: name labels the exported series,
// detail describes it on /statusz, target is the good fraction
// objective (0 < target < 1, e.g. 0.999), src its cumulative counter
// pair. Safe to call before Start; not safe concurrently with it.
func (t *SLOTracker) AddObjective(name, detail string, target float64, src SLOSource) {
	if target <= 0 || target >= 1 {
		// A target of exactly 1 makes the budget zero and every burn
		// rate infinite; clamp into the open interval instead.
		if target >= 1 {
			target = 0.9999999
		} else {
			target = 0.5
		}
	}
	o := &objective{name: name, detail: detail, target: target, src: src}
	for _, w := range sloWindows {
		o.burn = append(o.burn, t.reg.GaugeLabeled("montsys_slo_burn_rate_milli",
			"Error-budget burn rate per objective and window, in milli-units (1000 = burning exactly the budget).",
			Label("slo", name), Label("window", w.name)))
	}
	t.mu.Lock()
	t.objectives = append(t.objectives, o)
	t.mu.Unlock()
}

// Start launches the periodic sampler. Close stops it.
func (t *SLOTracker) Start() {
	go func() {
		tick := time.NewTicker(t.interval)
		defer tick.Stop()
		for {
			select {
			case <-t.stop:
				return
			case <-tick.C:
				t.Tick()
			}
		}
	}()
}

// Close stops the sampler goroutine. Idempotent.
func (t *SLOTracker) Close() { t.stopOnce.Do(func() { close(t.stop) }) }

// Tick takes one sample and refreshes the burn-rate gauges. Called by
// the Start loop; exported so tests and /statusz can force a fresh
// sample without waiting out the interval.
func (t *SLOTracker) Tick() {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	s := sloSample{at: now, vals: make([]cum, len(t.objectives))}
	for i, o := range t.objectives {
		total, bad := o.src()
		s.vals[i] = cum{total, bad}
	}
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next, t.full = 0, true
	}
	for i, o := range t.objectives {
		for wi, w := range sloWindows {
			burn, _, _, _ := t.windowBurn(now, i, o, w.dur, s.vals[i])
			o.burn[wi].Set(int64(burn*1000 + 0.5))
		}
	}
}

// windowBurn computes one objective's burn over the trailing window
// ending at now, given its current cumulative values. The baseline is
// the newest ring sample at least window old (or the oldest held one
// during warm-up, when the process is younger than the window). Must
// be called with t.mu held.
func (t *SLOTracker) windowBurn(now time.Time, idx int, o *objective,
	window time.Duration, cur cum) (burn, badRatio float64, dTotal, dBad int64) {
	cutoff := now.Add(-window)
	var base cum
	found := false
	held := t.next
	if t.full {
		held = len(t.ring)
	}
	// Scan newest-to-oldest; the first sample at or before the cutoff
	// is the tightest baseline. Fall back to the oldest held sample.
	for k := 1; k <= held; k++ {
		i := (t.next - k + len(t.ring)) % len(t.ring)
		s := t.ring[i]
		if idx >= len(s.vals) {
			break // objective added after this sample was taken
		}
		base, found = s.vals[idx], true
		if !s.at.After(cutoff) {
			break
		}
	}
	if !found {
		return 0, 0, 0, 0
	}
	dTotal, dBad = cur.total-base.total, cur.bad-base.bad
	if dTotal <= 0 {
		return 0, 0, dTotal, dBad
	}
	badRatio = float64(dBad) / float64(dTotal)
	burn = badRatio / (1 - o.target)
	return burn, badRatio, dTotal, dBad
}

// WriteStatusz renders the human SLO page: one line per objective and
// window, greppable and machine-parsable (key=value pairs). Takes a
// fresh sample first so the page is never staler than one HTTP round
// trip.
func (t *SLOTracker) WriteStatusz(w io.Writer) {
	t.Tick()
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	fmt.Fprintf(w, "montsys SLO status — burn_rate 1.00 spends exactly the error budget; >1 overspends\n")
	fmt.Fprintf(w, "uptime=%s interval=%s objectives=%d\n\n",
		now.Sub(t.started).Round(time.Second), t.interval, len(t.objectives))
	order := make([]int, len(t.objectives))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return t.objectives[order[i]].name < t.objectives[order[j]].name
	})
	for _, idx := range order {
		o := t.objectives[idx]
		total, bad := o.src()
		cur := cum{total, bad}
		fmt.Fprintf(w, "# %s: %s (target %.4g%%)\n", o.name, o.detail, o.target*100)
		for _, win := range sloWindows {
			burn, badRatio, dTotal, dBad := t.windowBurn(now, idx, o, win.dur, cur)
			fmt.Fprintf(w,
				"slo=%s window=%s target=%.6f total=%d bad=%d bad_ratio=%.6f burn_rate=%.4f\n",
				o.name, win.name, o.target, dTotal, dBad, badRatio, burn)
		}
		fmt.Fprintln(w)
	}
}
