package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing lock-free counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (d ≥ 0 by convention).
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a lock-free instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by d (negative to decrement).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v exceeds the current value — a
// high-watermark update, lock-free via CAS.
func (g *Gauge) SetMax(v int64) {
	for {
		old := g.v.Load()
		if v <= old || g.v.CompareAndSwap(old, v) {
			return
		}
	}
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates registry entries for TYPE lines.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// entry is one registered metric: a base name (the Prometheus metric
// family), an optional pre-rendered label set, and the instrument.
type entry struct {
	base   string // e.g. montsys_jobs_total
	labels string // e.g. `kind="modexp"` (no braces), may be empty
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named metrics and renders them in Prometheus text
// exposition format. Registration takes a mutex; reads and instrument
// updates are lock-free. Registering the same (name, labels) pair twice
// returns the existing instrument, so packages can idempotently declare
// what they need.
type Registry struct {
	mu      sync.Mutex
	entries []*entry
	index   map[string]*entry // base + "{" + labels + "}"
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*entry)}
}

// Label renders one Prometheus label pair for use with the *Labeled
// registration calls.
func Label(k, v string) string { return k + `="` + v + `"` }

func (r *Registry) register(base, labels, help string, kind metricKind) *entry {
	key := base + "{" + labels + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.index[key]; ok {
		return e
	}
	e := &entry{base: base, labels: labels, help: help, kind: kind}
	switch kind {
	case kindCounter:
		e.counter = &Counter{}
	case kindGauge:
		e.gauge = &Gauge{}
	case kindHistogram:
		e.hist = &Histogram{}
	}
	r.entries = append(r.entries, e)
	r.index[key] = e
	return e
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, "", help, kindCounter).counter
}

// CounterLabeled registers (or fetches) a counter with a fixed label
// set, e.g. CounterLabeled("montsys_jobs_total", "...", Label("kind", "modexp")).
func (r *Registry) CounterLabeled(name, help string, labels ...string) *Counter {
	return r.register(name, joinLabels(labels), help, kindCounter).counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, "", help, kindGauge).gauge
}

// GaugeLabeled registers (or fetches) a gauge with a fixed label set.
func (r *Registry) GaugeLabeled(name, help string, labels ...string) *Gauge {
	return r.register(name, joinLabels(labels), help, kindGauge).gauge
}

// Histogram registers (or fetches) an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, "", help, kindHistogram).hist
}

// HistogramLabeled registers (or fetches) a histogram with a fixed
// label set.
func (r *Registry) HistogramLabeled(name, help string, labels ...string) *Histogram {
	return r.register(name, joinLabels(labels), help, kindHistogram).hist
}

func joinLabels(labels []string) string {
	out := ""
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l
	}
	return out
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers once per metric
// family, histograms as cumulative _bucket{le=...} series plus _sum and
// _count, durations kept in their native nanosecond unit with the
// bucket bounds expressed in seconds (suffix the metric name _seconds
// to follow convention).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()

	// Group by family so HELP/TYPE appear once, families sorted by name
	// and series within a family in registration order.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].base < entries[j].base })
	lastBase := ""
	for _, e := range entries {
		if e.base != lastBase {
			lastBase = e.base
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.base, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.base, typeName(e.kind)); err != nil {
				return err
			}
		}
		if err := writeEntry(w, e); err != nil {
			return err
		}
	}
	return nil
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

func writeEntry(w io.Writer, e *entry) error {
	switch e.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", series(e.base, e.labels), e.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %d\n", series(e.base, e.labels), e.gauge.Value())
		return err
	default:
		return writeHistogram(w, e)
	}
}

// series renders `name` or `name{labels}`, with extra labels appended
// after any fixed ones.
func series(base, labels string, extra ...string) string {
	all := labels
	for _, x := range extra {
		if all != "" {
			all += ","
		}
		all += x
	}
	if all == "" {
		return base
	}
	return base + "{" + all + "}"
}

func writeHistogram(w io.Writer, e *entry) error {
	s := e.hist.Snapshot()
	// Cumulative buckets up to the highest occupied one; le bounds in
	// seconds (samples are nanoseconds).
	top := 0
	for i := range s.Buckets {
		if s.Buckets[i] > 0 {
			top = i
		}
	}
	var cum int64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		le := strconv.FormatFloat(float64(BucketUpper(i))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s %d\n",
			series(e.base+"_bucket", e.labels, Label("le", le)), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s %d\n",
		series(e.base+"_bucket", e.labels, Label("le", "+Inf")), s.Count); err != nil {
		return err
	}
	sum := strconv.FormatFloat(float64(s.Sum)/1e9, 'g', -1, 64)
	if _, err := fmt.Fprintf(w, "%s %s\n", series(e.base+"_sum", e.labels), sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", series(e.base+"_count", e.labels), s.Count)
	return err
}
