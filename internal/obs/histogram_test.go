package obs

import (
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the log₂ bucketing: bucket 0 holds v ≤ 0,
// bucket i holds [2^(i-1), 2^i).
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1024, 11}, {1025, 11}, {2047, 11}, {2048, 12},
		{1 << 62, 63},   // clamped into the last bucket
		{1<<63 - 1, 63}, // MaxInt64 too
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.want {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds are one below the next power of two, and every value
	// is ≤ the upper bound of its own bucket.
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %d", BucketUpper(0))
	}
	if BucketUpper(3) != 7 || BucketUpper(11) != 2047 {
		t.Errorf("BucketUpper: %d %d", BucketUpper(3), BucketUpper(11))
	}
	for _, v := range []int64{1, 2, 3, 100, 1e6, 1e12} {
		if ub := BucketUpper(BucketIndex(v)); v > ub {
			t.Errorf("value %d above its bucket bound %d", v, ub)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Errorf("empty histogram snapshot not zero: %+v", s)
	}
	// 100 samples 1..100: p50 falls in the bucket holding 50 ([32,64)),
	// so the estimate is its upper bound 63; max is exact.
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("count/sum/max: %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	if s.P50 != 63 {
		t.Errorf("p50 = %d, want bucket bound 63", s.P50)
	}
	if s.P99 != 100 || s.Quantile(1) != 100 {
		t.Errorf("p99 = %d, q1 = %d, want clamped to max 100", s.P99, s.Quantile(1))
	}
	if s.Mean() != 50.5 {
		t.Errorf("mean = %v", s.Mean())
	}
	// Quantile estimates never undershoot the true quantile (upper-bound
	// semantics) and never exceed max.
	if s.P90 < 90 || s.P90 > 100 {
		t.Errorf("p90 = %d outside [90, 100]", s.P90)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines —
// meaningful under -race — and checks totals survive.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i + 1))
				if i%100 == 0 {
					_ = h.Snapshot() // concurrent reads race-test the loads
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	if s.Max != goroutines*per {
		t.Errorf("max = %d, want %d", s.Max, goroutines*per)
	}
	var bucketSum int64
	for _, b := range s.Buckets {
		bucketSum += b
	}
	if bucketSum != s.Count {
		t.Errorf("bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.Sum != 3e6 {
		t.Errorf("duration sample: %+v", s)
	}
}
