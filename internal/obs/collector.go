package obs

import (
	"sync"
	"time"
)

// Collector turns engine observer callbacks into registry metrics and
// tracer spans. It satisfies internal/engine's Observer interface
// structurally (the methods use only basic types), so attaching it is
//
//	col := obs.NewCollector()
//	eng, _ := engine.New(engine.WithObserver(col))
//
// and the whole layer stays out of the engine's dependency graph.
// All methods are safe for concurrent use and cheap: a handful of
// atomic adds per job, plus one short-mutex ring write when tracing is
// enabled.
type Collector struct {
	reg    *Registry
	tracer *Tracer
	wide   *WideWriter

	submitted map[string]*Counter // by job kind
	finished  map[string]*Counter // by kind — labeled also by outcome below
	outcomes  map[string]map[string]*Counter
	muls      map[string]*Counter

	queueDepth     *Gauge
	queueHighWater *Gauge
	modelCycles    *Counter
	simCycles      *Counter

	latency   map[string]*Histogram // submit→finish, by kind
	queueWait *Histogram
	exec      *Histogram
	failedLat *Histogram

	// kitLat holds submit→finish latency histograms per concrete
	// compute kit, registered lazily on the first job a kit completes
	// (obs cannot enumerate the engine's kits without importing it).
	// The read-locked fast path costs one RWMutex.RLock per completed
	// job; registration happens once per kit name.
	kitMu  sync.RWMutex
	kitLat map[string]*Histogram

	cacheHits      *Counter
	cacheMisses    *Counter
	cacheEvictions *Counter

	integrityEvents    map[string]*Counter
	quarantinedWorkers *Gauge
}

// CollectorOption configures NewCollector.
type CollectorOption func(*collectorConfig)

type collectorConfig struct {
	registry *Registry
	traceCap int
	tracing  bool
	wide     *WideWriter
}

// WithRegistry collects into an existing registry (default: a fresh
// one), letting several engines share one /metrics page.
func WithRegistry(r *Registry) CollectorOption {
	return func(c *collectorConfig) { c.registry = r }
}

// WithTracing enables the span ring buffer, keeping the most recent
// capacity spans (≤ 0 selects DefaultTraceCapacity).
func WithTracing(capacity int) CollectorOption {
	return func(c *collectorConfig) { c.tracing, c.traceCap = true, capacity }
}

// WithWideEvents emits one wide JSON log line per sampled job the
// engine finishes (layer "engine"). A nil writer leaves it off.
func WithWideEvents(w *WideWriter) CollectorOption {
	return func(c *collectorConfig) { c.wide = w }
}

// jobKinds are the engine's job kinds; anything else lands on "other".
var jobKinds = []string{"modexp", "mont", "other"}

// outcomes are the engine's job terminal states, plus "requeued" —
// the non-terminal state of a job sent back to the queue so a healthy
// core can recompute a result that failed its integrity check.
var outcomes = []string{"ok", "failed", "canceled", "requeued"}

// integrityEvents are the engine's integrity lifecycle events (see
// engine.IntegrityObserver); anything new lands on "other" so an
// engine upgrade can't panic an old collector.
var integrityEvents = []string{
	"check_failed", "quarantine", "probe_failed", "reinstate",
	"panic", "watchdog", "recompute", "other",
}

// NewCollector builds a collector with every metric pre-registered, so
// the hot path never touches the registry lock.
func NewCollector(opts ...CollectorOption) *Collector {
	cfg := collectorConfig{}
	for _, o := range opts {
		o(&cfg)
	}
	reg := cfg.registry
	if reg == nil {
		reg = NewRegistry()
	}
	c := &Collector{
		reg:       reg,
		wide:      cfg.wide,
		submitted: map[string]*Counter{},
		finished:  map[string]*Counter{},
		outcomes:  map[string]map[string]*Counter{},
		muls:      map[string]*Counter{},
		latency:   map[string]*Histogram{},
		kitLat:    map[string]*Histogram{},
	}
	if cfg.tracing {
		c.tracer = NewTracer(cfg.traceCap)
	}
	for _, k := range jobKinds {
		c.submitted[k] = reg.CounterLabeled("montsys_jobs_submitted_total",
			"Jobs accepted into the engine queue.", Label("kind", k))
		c.finished[k] = reg.CounterLabeled("montsys_jobs_finished_total",
			"Jobs that reached a terminal state.", Label("kind", k))
		c.muls[k] = reg.CounterLabeled("montsys_mont_muls_total",
			"Montgomery products executed across all cores.", Label("kind", k))
		c.latency[k] = reg.HistogramLabeled("montsys_job_latency_seconds",
			"Submit-to-finish latency of completed jobs.", Label("kind", k))
		c.outcomes[k] = map[string]*Counter{}
		for _, o := range outcomes {
			c.outcomes[k][o] = reg.CounterLabeled("montsys_job_outcomes_total",
				"Job terminal states by kind and outcome.",
				Label("kind", k), Label("outcome", o))
		}
	}
	c.queueDepth = reg.Gauge("montsys_queue_depth",
		"Jobs currently waiting in the submission queue.")
	c.queueHighWater = reg.Gauge("montsys_queue_high_watermark",
		"Deepest the submission queue has been.")
	c.modelCycles = reg.Counter("montsys_model_cycles_total",
		"Cycles by the paper's Eq.-based accounting (Model mode reports).")
	c.simCycles = reg.Counter("montsys_simulated_cycles_total",
		"Clock cycles measured on simulated MMMC circuits (Simulate mode).")
	c.queueWait = reg.Histogram("montsys_job_queue_wait_seconds",
		"Enqueue-to-dequeue wait of every job a core picked up.")
	c.exec = reg.Histogram("montsys_job_exec_seconds",
		"Dequeue-to-finish execution time of completed jobs.")
	c.failedLat = reg.Histogram("montsys_job_failed_latency_seconds",
		"Submit-to-finish latency of failed and canceled jobs.")
	c.cacheHits = reg.Counter("montsys_ctx_cache_hits_total",
		"Modulus-context LRU hits.")
	c.cacheMisses = reg.Counter("montsys_ctx_cache_misses_total",
		"Modulus-context LRU misses (precomputations run).")
	c.cacheEvictions = reg.Counter("montsys_ctx_cache_evictions_total",
		"Modulus contexts evicted from the LRU.")
	c.integrityEvents = map[string]*Counter{}
	for _, ev := range integrityEvents {
		c.integrityEvents[ev] = reg.CounterLabeled("montsys_integrity_events_total",
			"Engine integrity lifecycle events (failed checks, quarantines, probes, recomputes).",
			Label("event", ev))
	}
	c.quarantinedWorkers = reg.Gauge("montsys_quarantined_workers",
		"Worker cores currently benched by the integrity subsystem.")
	return c
}

// Registry exposes the collector's metrics registry (for the HTTP
// handler or custom exporters).
func (c *Collector) Registry() *Registry { return c.reg }

// Tracer returns the span ring buffer, nil unless WithTracing was
// given.
func (c *Collector) Tracer() *Tracer { return c.tracer }

// SetEngineInfo publishes a one-shot info gauge describing an attached
// engine (workers, execution mode, array variant) the way Prometheus
// convention spells build_info.
func (c *Collector) SetEngineInfo(workers int, mode, variant string) {
	c.reg.GaugeLabeled("montsys_engine_info",
		"Constant 1, labeled with the attached engine's configuration.",
		Label("mode", mode), Label("variant", variant)).Set(1)
	c.reg.Gauge("montsys_engine_workers",
		"Worker cores of the attached engine.").Set(int64(workers))
}

func (c *Collector) kind(k string) string {
	if _, ok := c.submitted[k]; !ok {
		return "other"
	}
	return k
}

// JobSubmitted implements engine.Observer: a job entered the queue.
func (c *Collector) JobSubmitted(kind string) {
	kind = c.kind(kind)
	c.submitted[kind].Inc()
	c.queueDepth.Add(1)
	c.queueHighWater.SetMax(c.queueDepth.Value())
}

// JobStarted implements engine.Observer: a core dequeued a job after
// waiting queueWait.
func (c *Collector) JobStarted(kind string, worker int, queueWait time.Duration) {
	c.queueDepth.Add(-1)
	c.queueWait.ObserveDuration(queueWait)
}

// JobFinished implements engine.Observer: a job reached outcome
// ("ok" | "failed" | "canceled") on the given worker core. start is the
// enqueue instant; queueWait and exec split its total latency; muls,
// modelCycles and simCycles are the job's own work accounting (zero
// for failures). It is the span-less compatibility path: the full
// bookkeeping lives in JobSpan, which engines that know about spans
// (kit identity, trace context, integrity timing) call directly.
func (c *Collector) JobFinished(kind string, worker int, outcome string,
	start time.Time, queueWait, exec time.Duration, muls, modelCycles, simCycles int64) {
	c.JobSpan(Span{
		Name: kind, Worker: worker, Outcome: outcome,
		Start: start, QueueWait: queueWait, Exec: exec,
		Muls: muls, ModelCycles: modelCycles, SimCycles: simCycles,
	})
}

// JobSpan implements engine.SpanObserver: the span-shaped superset of
// JobFinished. One call does all terminal-state bookkeeping — outcome
// counters, latency/exec histograms (aggregate and per-kit), work
// accounting, the tracer ring, and (for sampled spans with wide
// events on) one wide engine log line.
func (c *Collector) JobSpan(s Span) {
	kind := c.kind(s.Name)
	c.finished[kind].Inc()
	if m, ok := c.outcomes[kind][s.Outcome]; ok {
		m.Inc()
	}
	total := s.QueueWait + s.Exec
	switch s.Outcome {
	case "ok":
		c.latency[kind].ObserveDuration(total)
		c.exec.ObserveDuration(s.Exec)
		c.muls[kind].Add(s.Muls)
		c.modelCycles.Add(s.ModelCycles)
		c.simCycles.Add(s.SimCycles)
		if s.Kit != "" {
			c.kitLatency(s.Kit).ObserveDuration(total)
		}
	case "requeued":
		// Not terminal: the job's next run does the latency accounting.
	default:
		c.failedLat.ObserveDuration(total)
	}
	if c.tracer != nil {
		c.tracer.Record(s)
	}
	if c.wide != nil && !s.TraceID.IsZero() {
		c.wide.Emit(&WideEvent{
			Layer: "engine", Op: kind,
			TraceID: s.TraceID, SpanID: s.SpanID, Parent: s.Parent,
			Outcome: s.Outcome, Kit: s.Kit,
			Dur: total, Queue: s.QueueWait,
		})
	}
}

// kitLatency returns the per-kit latency histogram, registering it on
// first use.
func (c *Collector) kitLatency(kit string) *Histogram {
	c.kitMu.RLock()
	h := c.kitLat[kit]
	c.kitMu.RUnlock()
	if h != nil {
		return h
	}
	c.kitMu.Lock()
	defer c.kitMu.Unlock()
	if h := c.kitLat[kit]; h != nil {
		return h
	}
	h = c.reg.HistogramLabeled("montsys_job_kit_latency_seconds",
		"Submit-to-finish latency of completed jobs by concrete compute kit.",
		Label("kit", kit))
	c.kitLat[kit] = h
	return h
}

// CacheHit implements engine.Observer.
func (c *Collector) CacheHit() { c.cacheHits.Inc() }

// CacheMiss implements engine.Observer.
func (c *Collector) CacheMiss() { c.cacheMisses.Inc() }

// CacheEviction implements engine.Observer.
func (c *Collector) CacheEviction() { c.cacheEvictions.Inc() }

// IntegrityEvent implements engine.IntegrityObserver: one integrity
// lifecycle event on the given worker core. Quarantine and
// reinstatement additionally move the quarantined-workers gauge so a
// dashboard shows benched cores directly.
func (c *Collector) IntegrityEvent(event string, worker int) {
	m, ok := c.integrityEvents[event]
	if !ok {
		m = c.integrityEvents["other"]
	}
	m.Inc()
	switch event {
	case "quarantine":
		c.quarantinedWorkers.Add(1)
	case "reinstate":
		c.quarantinedWorkers.Add(-1)
	}
	// Quarantines and reinstatements are rare, load-bearing moments —
	// mark them on the worker's trace track so a Perfetto view shows
	// when the core was benched amid its job slices.
	if c.tracer != nil && (event == "quarantine" || event == "reinstate") {
		c.tracer.RecordInstant("integrity/"+event, worker, time.Now())
	}
}
