package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTracerWraparoundConcurrent hammers a tiny ring from many
// goroutines — far past its capacity — and checks the ring's
// invariants afterwards: capacity spans held, every record counted in
// Total, Spans() in oldest-first order, and the export still valid
// JSON. Under -race this doubles as the data-race check on the ring's
// wraparound bookkeeping (the CI race job runs this package).
func TestTracerWraparoundConcurrent(t *testing.T) {
	const capacity, goroutines, each = 8, 8, 100
	tr := NewTracer(capacity)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				tr.Record(Span{
					Name: fmt.Sprintf("modexp-%d-%d", g, i), Worker: g,
					Outcome: "ok",
					Start:   base.Add(time.Duration(g*each+i) * time.Microsecond),
					Exec:    time.Microsecond,
				})
			}
		}(g)
	}
	wg.Wait()

	if got := tr.Len(); got != capacity {
		t.Fatalf("Len = %d, want %d (capacity)", got, capacity)
	}
	if got := tr.Total(); got != goroutines*each {
		t.Fatalf("Total = %d, want %d", got, goroutines*each)
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("Spans holds %d, want %d", len(spans), capacity)
	}
	for _, s := range spans {
		if s.Name == "" || s.Outcome != "ok" {
			t.Fatalf("torn span survived the wraparound: %+v", s)
		}
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export after wraparound not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("export after wraparound is empty")
	}
}
