package obs

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"time"
)

// Span is one recorded job lifecycle: enqueued at Start, waited
// QueueWait in the submission queue, then executed for Exec on worker
// core Worker. SimCycles carries the MMMC clock cycles measured inside
// the job when the engine runs in Simulate mode (0 in Model mode).
type Span struct {
	Name      string        // job kind: "modexp" | "mont"
	Worker    int           // core that executed the job
	Outcome   string        // "ok" | "failed" | "canceled"
	Start     time.Time     // enqueue instant
	QueueWait time.Duration // enqueue → dequeue
	Exec      time.Duration // dequeue → finish
	SimCycles int64         // measured MMMC cycles (Simulate mode)
}

// Tracer is a bounded ring buffer of job spans. When full, the oldest
// span is overwritten — a crash-cart flight recorder, not an archival
// log. All methods are safe for concurrent use; recording takes a
// short mutex (two copies and two index bumps), negligible next to a
// modular exponentiation.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	full  bool
	total int64
}

// DefaultTraceCapacity bounds a Tracer built with capacity ≤ 0.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer keeping the most recent capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// Record appends one span, overwriting the oldest when full.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of spans currently held (≤ capacity).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Total returns the number of spans ever recorded, including ones the
// ring has since overwritten.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the held spans oldest-first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// traceEvent is one Chrome trace-event ("Trace Event Format", the JSON
// consumed by Perfetto and chrome://tracing). Only the fields the
// complete-event ("X") and metadata ("M") phases need.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the held spans as a Chrome trace-event JSON
// document: one "queued" slice and one execution slice per job, on a
// per-worker-core track, timestamps relative to the earliest span.
// Open the output in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	var base time.Time
	workers := map[int]bool{}
	for i := range spans {
		if base.IsZero() || spans[i].Start.Before(base) {
			base = spans[i].Start
		}
		workers[spans[i].Worker] = true
	}
	events := make([]traceEvent, 0, 2*len(spans)+len(workers))
	for id := range workers {
		events = append(events, traceEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: id,
			Args: map[string]any{"name": "core-" + strconv.Itoa(id)},
		})
	}
	for i := range spans {
		s := &spans[i]
		ts := float64(s.Start.Sub(base)) / float64(time.Microsecond)
		wait := float64(s.QueueWait) / float64(time.Microsecond)
		exec := float64(s.Exec) / float64(time.Microsecond)
		if s.QueueWait > 0 {
			events = append(events, traceEvent{
				Name: s.Name + "/queued", Phase: "X", Cat: "queue",
				Ts: ts, Dur: wait, Pid: 1, Tid: s.Worker,
			})
		}
		args := map[string]any{"outcome": s.Outcome}
		if s.SimCycles > 0 {
			args["simCycles"] = s.SimCycles
		}
		events = append(events, traceEvent{
			Name: s.Name, Phase: "X", Cat: "exec",
			Ts: ts + wait, Dur: exec, Pid: 1, Tid: s.Worker,
			Args: args,
		})
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
