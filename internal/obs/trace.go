package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Span is one recorded unit of work. Engine job spans are the original
// shape: enqueued at Start, waited QueueWait in the submission queue,
// then executed for Exec on worker core Worker, with SimCycles carrying
// measured MMMC clock cycles in Simulate mode and Integrity the time
// spent re-verifying the result. Since the tracing plane went
// cluster-wide the same struct also records client, route and server
// spans: those set Track to a named lane instead of a worker core, and
// sampled requests thread TraceID/SpanID/Parent through every layer so
// the exported spans of one request join into a single tree.
type Span struct {
	Name      string        // "modexp", "server/modexp", "route/modexp", ...
	Worker    int           // core that executed the job (Track == "")
	Track     string        // named lane ("client", "route", "server"); "" = worker core
	Outcome   string        // "ok" | "failed" | "canceled" | wire code string
	Start     time.Time     // span open instant (enqueue, for engine jobs)
	QueueWait time.Duration // enqueue → dequeue (engine jobs)
	Exec      time.Duration // dequeue → finish, or whole span duration
	Integrity time.Duration // tail of Exec spent in the integrity check
	SimCycles int64         // measured MMMC cycles (Simulate mode)
	Kit       string        // concrete compute kit ("model", "cios", ...)

	// Work accounting carried so Collector.JobSpan can do the full
	// metrics bookkeeping from a span alone (zero for failures and for
	// non-engine spans).
	Muls        int64 // Montgomery products executed by the job
	ModelCycles int64 // paper-formula cycles (Model-mode reports)

	// Cross-process identity, zero for untraced work. Parent is the
	// span id of the enclosing span in the calling layer (zero = root).
	TraceID TraceID
	SpanID  SpanID
	Parent  SpanID

	// Attrs are free-form key/value annotations exported into the
	// trace-event args (pick reason, backend address, hedge verdict...).
	Attrs []Attr

	// Instant marks a point event (quarantine, probe) rather than a
	// duration: exported as a Chrome instant event at Start.
	Instant bool
}

// Attr is one key/value span annotation.
type Attr struct{ Key, Val string }

// Tracer is a bounded ring buffer of spans. When full, the oldest span
// is overwritten — a crash-cart flight recorder, not an archival log.
// All methods are safe for concurrent use; recording takes a short
// mutex (two copies and two index bumps), negligible next to a modular
// exponentiation.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  int
	full  bool
	total int64

	procName string
	procPid  int
}

// DefaultTraceCapacity bounds a Tracer built with capacity ≤ 0.
const DefaultTraceCapacity = 4096

// NewTracer returns a tracer keeping the most recent capacity spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// SetProcess names the process in the Chrome export: Perfetto shows
// one named process group per exporting daemon instead of "pid 1", and
// the real pid keeps tracks from colliding when traces from several
// processes are merged into one file (see cmd/tracecat).
func (t *Tracer) SetProcess(name string) {
	t.mu.Lock()
	t.procName, t.procPid = name, os.Getpid()
	t.mu.Unlock()
}

// Record appends one span, overwriting the oldest when full.
func (t *Tracer) Record(s Span) {
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.total++
	t.mu.Unlock()
}

// RecordInstant appends a point event (quarantine, probe verdict) on a
// worker-core track at time now.
func (t *Tracer) RecordInstant(name string, worker int, now time.Time) {
	t.Record(Span{Name: name, Worker: worker, Start: now, Instant: true})
}

// Len returns the number of spans currently held (≤ capacity).
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Total returns the number of spans ever recorded, including ones the
// ring has since overwritten.
func (t *Tracer) Total() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Spans returns the held spans oldest-first.
func (t *Tracer) Spans() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		return append([]Span(nil), t.ring[:t.next]...)
	}
	out := make([]Span, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// traceEvent is one Chrome trace-event ("Trace Event Format", the JSON
// consumed by Perfetto and chrome://tracing). Only the fields the
// complete-event ("X"), instant-event ("i") and metadata ("M") phases
// need.
type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`            // microseconds
	Dur   float64        `json:"dur,omitempty"` // microseconds
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"` // instant-event scope
	Args  map[string]any `json:"args,omitempty"`
}

// namedTrackBase is the first tid handed to named (non-worker) tracks,
// far above any plausible worker-core id.
const namedTrackBase = 1000

// WriteChromeTrace exports the held spans as a Chrome trace-event JSON
// document: process_name/thread_name metadata first (so Perfetto shows
// the daemon and its cores by name, not bare pids/tids), then one
// "queued" slice and one execution slice per job — with a nested
// integrity slice when the result was re-verified — on a per-worker
// track, plus client/route/server spans on named tracks. Sampled spans
// carry trace_id/span_id/parent_id in their args; cmd/tracecat joins
// the exports of several processes on those ids. Timestamps are
// absolute wall-clock microseconds, so independently exported traces
// line up when merged. Open the output in Perfetto (ui.perfetto.dev)
// or chrome://tracing.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	t.mu.Lock()
	procName, pid := t.procName, t.procPid
	t.mu.Unlock()
	if pid == 0 {
		pid = 1
	}

	workers := map[int]bool{}
	named := map[string]int{}
	for i := range spans {
		if spans[i].Track != "" {
			named[spans[i].Track] = 0
		} else {
			workers[spans[i].Worker] = true
		}
	}
	workerIDs := make([]int, 0, len(workers))
	for id := range workers {
		workerIDs = append(workerIDs, id)
	}
	sort.Ints(workerIDs)
	trackNames := make([]string, 0, len(named))
	for name := range named {
		trackNames = append(trackNames, name)
	}
	sort.Strings(trackNames)
	for i, name := range trackNames {
		named[name] = namedTrackBase + i
	}

	events := make([]traceEvent, 0, 2*len(spans)+len(workers)+len(named)+1)
	if procName != "" {
		events = append(events, traceEvent{
			Name: "process_name", Phase: "M", Pid: pid,
			Args: map[string]any{"name": procName},
		})
	}
	for _, id := range workerIDs {
		events = append(events, traceEvent{
			Name: "thread_name", Phase: "M", Pid: pid, Tid: id,
			Args: map[string]any{"name": "core-" + strconv.Itoa(id)},
		})
	}
	for _, name := range trackNames {
		events = append(events, traceEvent{
			Name: "thread_name", Phase: "M", Pid: pid, Tid: named[name],
			Args: map[string]any{"name": name},
		})
	}

	for i := range spans {
		s := &spans[i]
		tid := s.Worker
		if s.Track != "" {
			tid = named[s.Track]
		}
		ts := float64(s.Start.UnixNano()) / float64(time.Microsecond)
		if s.Instant {
			events = append(events, traceEvent{
				Name: s.Name, Phase: "i", Cat: "event", Scope: "t",
				Ts: ts, Pid: pid, Tid: tid,
			})
			continue
		}
		wait := float64(s.QueueWait) / float64(time.Microsecond)
		exec := float64(s.Exec) / float64(time.Microsecond)
		if s.QueueWait > 0 {
			events = append(events, traceEvent{
				Name: s.Name + "/queued", Phase: "X", Cat: "queue",
				Ts: ts, Dur: wait, Pid: pid, Tid: tid,
				Args: traceIDArgs(s, nil),
			})
		}
		args := map[string]any{"outcome": s.Outcome}
		if s.SimCycles > 0 {
			args["simCycles"] = s.SimCycles
		}
		if s.Kit != "" {
			args["kit"] = s.Kit
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		cat := "exec"
		if s.Track != "" {
			cat = s.Track
		}
		events = append(events, traceEvent{
			Name: s.Name, Phase: "X", Cat: cat,
			Ts: ts + wait, Dur: exec, Pid: pid, Tid: tid,
			Args: traceIDArgs(s, args),
		})
		if s.Integrity > 0 {
			integ := float64(s.Integrity) / float64(time.Microsecond)
			events = append(events, traceEvent{
				Name: s.Name + "/integrity", Phase: "X", Cat: "integrity",
				Ts: ts + wait + exec - integ, Dur: integ, Pid: pid, Tid: tid,
				Args: traceIDArgs(s, nil),
			})
		}
	}
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{events, "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// traceIDArgs adds the span's cross-process identity to args (creating
// the map if needed) when the span belongs to a sampled trace.
func traceIDArgs(s *Span, args map[string]any) map[string]any {
	if s.TraceID.IsZero() {
		return args
	}
	if args == nil {
		args = make(map[string]any, 3)
	}
	args["trace_id"] = s.TraceID.String()
	args["span_id"] = s.SpanID.String()
	if !s.Parent.IsZero() {
		args["parent_id"] = s.Parent.String()
	}
	return args
}
