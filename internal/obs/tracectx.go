package obs

import (
	"context"
	"encoding/hex"
	mrand "math/rand/v2"
)

// TraceID identifies one request end to end: 16 opaque bytes minted at
// the edge (montsys.Client or loadgen) and carried unchanged through
// the balancer, the backend server and the engine. The zero value
// means "untraced".
type TraceID [16]byte

// SpanID identifies one span within a trace: 8 opaque bytes. The zero
// value means "no parent" (a root span).
type SpanID [8]byte

// IsZero reports whether the id is the all-zero (untraced) value.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// IsZero reports whether the id is the all-zero (root) value.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the id as 32 lowercase hex digits (W3C traceparent
// style), the form loadgen prints for failed requests and the trace
// export writes into span args.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// String renders the id as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID decodes the 32-hex-digit form String produces.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, true
}

// NewTraceID mints a random trace id. math/rand/v2's global generator
// is seeded from the OS and safe for concurrent use; trace ids need
// uniqueness, not unpredictability.
func NewTraceID() TraceID {
	var id TraceID
	hi, lo := mrand.Uint64(), mrand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(hi >> (8 * uint(i)))
		id[8+i] = byte(lo >> (8 * uint(i)))
	}
	return id
}

// NewSpanID mints a random span id.
func NewSpanID() SpanID {
	var id SpanID
	v := mrand.Uint64()
	for i := 0; i < 8; i++ {
		id[i] = byte(v >> (8 * uint(i)))
	}
	return id
}

// SampledAt decides head-based sampling for this trace id at the given
// rate (0 = never, 1 = always). The decision is a deterministic
// function of the id — an FNV-1a hash compared against rate·2⁶⁴ — so
// every process that sees the same trace id reaches the same verdict
// without coordination, and a fleet sampling at mixed rates still
// nests correctly (a 1% backend keeps every span of a trace a 1%
// client chose to sample).
func (id TraceID) SampledAt(rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range id {
		h ^= uint64(b)
		h *= prime64
	}
	// Compare in 53-bit space so rate·2⁵³ converts to uint64 exactly
	// (float64 holds 53 mantissa bits; rate < 1 keeps it in range).
	return h>>11 < uint64(rate*float64(1<<53))
}

// TraceContext is the per-request trace state that rides a
// context.Context across layers and (via the traced wire ops) across
// processes: the trace id, the span id of the current enclosing span —
// the parent of whatever span the next layer opens — and the head
// sampling verdict.
type TraceContext struct {
	TraceID TraceID
	SpanID  SpanID // current span; parent for the next layer down
	Sampled bool
}

// NewTraceContext mints a root trace context, sampled at rate. The
// SpanID is zero: the first span opened under it is a root span.
func NewTraceContext(rate float64) TraceContext {
	id := NewTraceID()
	return TraceContext{TraceID: id, Sampled: id.SampledAt(rate)}
}

// Child returns a copy of the context re-parented under span id —
// what a layer stores into the request context after opening its own
// span, so the next layer's spans become its children.
func (tc TraceContext) Child(id SpanID) TraceContext {
	tc.SpanID = id
	return tc
}

type traceCtxKey struct{}

// ContextWithTrace attaches a trace context to ctx. Attaching an
// unsampled context is allowed (the ids still propagate; nothing is
// recorded or sent traced on the wire).
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFromContext extracts the trace context, ok=false if none is
// attached.
func TraceFromContext(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
