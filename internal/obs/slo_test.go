package obs

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// sloClock drives an SLOTracker through fabricated time.
type sloClock struct{ at time.Time }

func (c *sloClock) now() time.Time          { return c.at }
func (c *sloClock) advance(d time.Duration) { c.at = c.at.Add(d) }
func newSLOClock() *sloClock                { return &sloClock{at: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)} }
func tickAt(t *SLOTracker, c *sloClock, d time.Duration) {
	c.advance(d)
	t.Tick()
}

// TestSLOBurnRateMath pins the burn-rate formula on a fabricated
// timeline: a service at 99.9% target that serves 1000 req/min and
// starts failing 10/min burns 10× budget on the 5m window once the
// window holds only bad minutes, while the 1h window — diluted by the
// clean head — burns less.
func TestSLOBurnRateMath(t *testing.T) {
	reg := NewRegistry()
	clk := newSLOClock()
	tr := NewSLOTracker(reg, time.Minute)
	tr.now = clk.now

	var total, bad int64
	tr.AddObjective("modexp_availability", "modexp requests answered ok", 0.999,
		func() (int64, int64) { return total, bad })

	tr.Tick() // baseline sample at t=0
	// Five clean minutes, then five minutes failing 1% of traffic.
	for m := 1; m <= 10; m++ {
		total += 1000
		if m > 5 {
			bad += 10
		}
		tickAt(tr, clk, time.Minute)
	}

	// 5m window: baseline = minute-5 sample → Δtotal 5000, Δbad 50,
	// bad_ratio 0.01, burn 0.01/0.001 = 10 → 10000 milli.
	// 1h window: warm-up fallback to the oldest sample (t=0) → Δtotal
	// 10000, Δbad 50, bad_ratio 0.005, burn 5 → 5000 milli.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`montsys_slo_burn_rate_milli{slo="modexp_availability",window="5m"} 10000`,
		`montsys_slo_burn_rate_milli{slo="modexp_availability",window="1h"} 5000`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestSLOBurnZeroTraffic: an idle objective (no new events in the
// window) burns nothing rather than dividing by zero.
func TestSLOBurnZeroTraffic(t *testing.T) {
	reg := NewRegistry()
	clk := newSLOClock()
	tr := NewSLOTracker(reg, time.Minute)
	tr.now = clk.now
	tr.AddObjective("idle", "no traffic", 0.999, func() (int64, int64) { return 0, 0 })
	tr.Tick()
	for i := 0; i < 8; i++ {
		tickAt(tr, clk, time.Minute)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `montsys_slo_burn_rate_milli{slo="idle",window="5m"} 0`) {
		t.Errorf("idle burn not zero:\n%s", sb.String())
	}
}

// TestSLOTargetClamp: a target of exactly 1 (zero error budget) is
// clamped instead of producing infinite burn rates.
func TestSLOTargetClamp(t *testing.T) {
	reg := NewRegistry()
	clk := newSLOClock()
	tr := NewSLOTracker(reg, time.Minute)
	tr.now = clk.now
	var total, bad int64
	tr.AddObjective("strict", "impossible target", 1.0,
		func() (int64, int64) { return total, bad })
	tr.Tick()
	total, bad = 1000, 1000 // everything fails
	tickAt(tr, clk, time.Minute)
	// Must not panic or overflow; the gauge just reads very large.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `slo="strict"`) {
		t.Errorf("strict objective not exported:\n%s", sb.String())
	}
}

// TestWriteStatuszParses: the /statusz page carries one machine-
// parsable key=value line per objective and window, with burn_rate
// agreeing with the exported gauge.
func TestWriteStatuszParses(t *testing.T) {
	reg := NewRegistry()
	clk := newSLOClock()
	tr := NewSLOTracker(reg, time.Minute)
	tr.now = clk.now
	var total, bad int64
	tr.AddObjective("modexp_availability", "modexp requests answered ok", 0.999,
		func() (int64, int64) { return total, bad })
	tr.Tick()
	for m := 1; m <= 5; m++ {
		total += 1000
		bad += 10
		tickAt(tr, clk, time.Minute)
	}

	var sb strings.Builder
	tr.WriteStatusz(&sb)
	out := sb.String()

	found := false
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "slo=modexp_availability window=5m ") {
			continue
		}
		found = true
		fields := map[string]string{}
		for _, kv := range strings.Fields(line) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				t.Fatalf("malformed field %q in %q", kv, line)
			}
			fields[k] = v
		}
		burn, err := strconv.ParseFloat(fields["burn_rate"], 64)
		if err != nil {
			t.Fatalf("burn_rate %q: %v", fields["burn_rate"], err)
		}
		// All 5 minutes in the window failed 1% → burn 10.
		if burn < 9.9 || burn > 10.1 {
			t.Errorf("burn_rate = %v, want ≈ 10", burn)
		}
		if fields["target"] != "0.999000" {
			t.Errorf("target = %q", fields["target"])
		}
		if fields["total"] != "5000" || fields["bad"] != "50" {
			t.Errorf("deltas: total=%q bad=%q", fields["total"], fields["bad"])
		}
	}
	if !found {
		t.Fatalf("no 5m line for the objective:\n%s", out)
	}
	if !strings.Contains(out, "window=1h") {
		t.Errorf("statusz missing the 1h window:\n%s", out)
	}
}
