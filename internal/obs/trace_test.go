package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func span(i int, worker int) Span {
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return Span{
		Name: "modexp", Worker: worker, Outcome: "ok",
		Start:     base.Add(time.Duration(i) * time.Millisecond),
		QueueWait: 100 * time.Microsecond,
		Exec:      time.Duration(i+1) * time.Millisecond,
		SimCycles: int64(i),
	}
}

// TestTracerRingBounded: the ring keeps only the most recent capacity
// spans, oldest-first, while Total counts everything.
func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(span(i, 0))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	spans := tr.Spans()
	for i, s := range spans {
		if want := time.Duration(6+i+1) * time.Millisecond; s.Exec != want {
			t.Errorf("span %d: exec %v, want %v (oldest-first order)", i, s.Exec, want)
		}
	}
}

func TestTracerDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	if len(tr.ring) != DefaultTraceCapacity {
		t.Errorf("default capacity %d", len(tr.ring))
	}
}

// TestChromeTraceExport: the export is valid JSON in the trace-event
// format — a traceEvents array of "X" slices with µs timestamps plus
// thread-name metadata — which is what Perfetto/chrome://tracing load.
func TestChromeTraceExport(t *testing.T) {
	tr := NewTracer(16)
	tr.Record(span(0, 0))
	tr.Record(span(1, 1))
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Ts    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			Pid   int            `json:"pid"`
			Tid   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var metas, queued, execs int
	for _, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "M":
			metas++
		case "X":
			if strings.HasSuffix(ev.Name, "/queued") {
				queued++
				if ev.Dur != 100 { // 100µs queue wait
					t.Errorf("queued dur = %v µs, want 100", ev.Dur)
				}
			} else {
				execs++
				if ev.Args["outcome"] != "ok" {
					t.Errorf("exec args missing outcome: %v", ev.Args)
				}
			}
			if ev.Ts < 0 {
				t.Errorf("negative timestamp %v", ev.Ts)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Phase)
		}
	}
	if metas != 2 || queued != 2 || execs != 2 {
		t.Errorf("event census: %d metas, %d queued, %d execs (want 2 each)",
			metas, queued, execs)
	}
	// Timestamps are absolute wall-clock µs (so traces exported by
	// separate processes line up when merged). The second span was
	// enqueued 1ms after the first and waited 100µs, so its exec slice
	// starts at base + 1100µs.
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	wantTs := float64(base.Add(1100*time.Microsecond).UnixNano()) / 1e3
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Name == "modexp" && ev.Tid == 1 {
			found = true
			if ev.Ts != wantTs {
				t.Errorf("second exec ts = %v µs, want %v", ev.Ts, wantTs)
			}
		}
	}
	if !found {
		t.Error("missing exec slice for worker 1")
	}
}

// TestChromeTraceProcessMetadata: SetProcess adds a process_name
// metadata event and stamps every event with the real pid, so merged
// multi-process traces attribute slices to the right daemon.
func TestChromeTraceProcessMetadata(t *testing.T) {
	tr := NewTracer(4)
	tr.SetProcess("montsysd")
	tr.Record(span(0, 0))
	var sb strings.Builder
	if err := tr.WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"process_name"`) || !strings.Contains(out, "montsysd") {
		t.Errorf("export missing process_name metadata: %s", out)
	}
	if strings.Contains(out, `"pid":1,`) {
		t.Errorf("export still uses placeholder pid 1: %s", out)
	}
}

// TestChromeTraceEmpty: an empty tracer still exports a loadable
// document.
func TestChromeTraceEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewTracer(4).WriteChromeTrace(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "traceEvents") {
		t.Errorf("empty export: %q", sb.String())
	}
}
