// Package obs is the observability layer over the reproduction: a
// lock-free metrics core (counters, gauges, log-bucketed latency
// histograms), a bounded ring-buffer span tracer exporting Chrome
// trace-event JSON, and an HTTP handler serving Prometheus text-format
// /metrics, expvar, pprof and /trace.
//
// The paper's whole argument is quantitative — exact cycle counts
// (3l+4 per MMM), a critical path independent of l — so the software
// reproduction gets the same treatment: every engine job is measured
// (queue wait vs. execute time, percentiles not just means, model- vs.
// simulated-cycle totals), and a running engine can be watched live.
//
// The package deliberately depends only on the standard library and is
// import-cycle-free with internal/engine: engine imports obs for its
// histogram-backed stats, while obs.Collector satisfies the
// engine.Observer interface structurally (its methods use only basic
// types), so obs never needs to import engine.
package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumBuckets is the number of logarithmic histogram buckets. Bucket i
// (i ≥ 1) counts values v with bits.Len64(v) == i, i.e. the half-open
// range [2^(i-1), 2^i); bucket 0 counts v ≤ 0. The last bucket absorbs
// everything ≥ 2^(NumBuckets-2). For nanosecond latencies this spans
// sub-ns to ~146 years in 64 buckets — two buckets per decade, plenty
// for p50/p90/p99 resolution on a log-normal-ish latency distribution.
const NumBuckets = 64

// Histogram is a lock-free log₂-bucketed histogram of int64 samples
// (conventionally nanoseconds). The zero value is ready to use; all
// methods are safe for concurrent use. Recording is three atomic adds
// and (rarely) a CAS loop for the max — cheap enough for per-job hot
// paths.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// BucketIndex returns the bucket a value falls into: 0 for v ≤ 0,
// otherwise bits.Len64(v) clamped to the last bucket.
func BucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	i := bits.Len64(uint64(v))
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	return i
}

// BucketUpper returns the inclusive upper bound of bucket i
// (0 for bucket 0, 2^i − 1 otherwise; the last bucket is unbounded and
// reports its nominal bound).
func BucketUpper(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketIndex(v)].Add(1)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Nanoseconds()) }

// Snapshot captures a consistent-enough view of the histogram. Counts
// are read bucket-by-bucket without a global lock, so a snapshot taken
// mid-recording may be off by in-flight samples — fine for monitoring,
// and the only cost lock-freedom asks.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P90 = s.Quantile(0.90)
	s.P99 = s.Quantile(0.99)
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram with
// precomputed percentiles.
type HistogramSnapshot struct {
	Count int64
	Sum   int64
	Max   int64
	P50   int64
	P90   int64
	P99   int64

	Buckets [NumBuckets]int64
}

// Quantile returns an upper-bound estimate of the q-th quantile
// (0 < q ≤ 1): the upper edge of the bucket where the cumulative count
// crosses q·Count, clamped to the observed Max. Zero if the histogram
// is empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++ // ceil
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range s.Buckets {
		cum += s.Buckets[i]
		if cum >= rank {
			ub := BucketUpper(i)
			if s.Max > 0 && ub > s.Max {
				ub = s.Max
			}
			return ub
		}
	}
	return s.Max
}

// CountAtOrBelow returns how many samples landed in buckets wholly at
// or below v — the "good event" count for a latency SLO with objective
// v. The objective effectively rounds up to the enclosing bucket
// boundary (log₂ buckets: ≤ 2× coarse), which is the resolution this
// histogram offers; SLO consumers document the rounded bound.
func (s HistogramSnapshot) CountAtOrBelow(v int64) int64 {
	var cum int64
	for i := range s.Buckets {
		if BucketUpper(i) > v {
			break
		}
		cum += s.Buckets[i]
	}
	return cum
}

// Mean returns the average sample, 0 if empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
