package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
)

// NewHandler builds the observability HTTP mux for a collector:
//
//	/metrics          Prometheus text exposition of the registry
//	/debug/vars       expvar (Go runtime memstats, cmdline)
//	/debug/pprof/...  net/http/pprof (profile, heap, goroutine, trace)
//	/trace            Chrome trace-event JSON of the span ring buffer
//	/                 a plain-text index of the above
//
// Serve it wherever convenient, e.g.
//
//	go http.ListenAndServe(":9090", obs.NewHandler(col))
//
// then scrape /metrics, run `go tool pprof host:9090/debug/pprof/profile`,
// and open /trace in Perfetto (ui.perfetto.dev).
func NewHandler(c *Collector) http.Handler {
	return NewMux(c.Registry(), c.Tracer(), nil)
}

// NewMux builds the same observability mux from the parts directly —
// for processes without an engine Collector (montsyslb collects into a
// bare registry) or with an SLO tracker to serve. A nil tracer makes
// /trace answer 404; a nil slo does the same for /statusz. Processes
// with a QoS plane use NewQoSMux to serve /quotaz too.
func NewMux(r *Registry, t *Tracer, slo *SLOTracker) http.Handler {
	return NewQoSMux(r, t, slo, nil)
}

// NewQoSMux is NewMux plus a /quotaz page rendering per-tenant quota
// state from q (the QoS plane). A nil q makes /quotaz answer 404.
func NewQoSMux(r *Registry, t *Tracer, slo *SLOTracker, q Quotaz) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/trace", TraceHandler(t))
	mux.Handle("/statusz", StatuszHandler(slo))
	mux.Handle("/quotaz", QuotazHandler(q))
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, "montsys observability\n\n"+
			"/metrics          Prometheus text format\n"+
			"/statusz          human SLO page (burn rates per objective and window)\n"+
			"/quotaz           per-tenant QoS quota and usage page\n"+
			"/debug/vars       expvar JSON\n"+
			"/debug/pprof/     pprof index (profile, heap, goroutine, ...)\n"+
			"/trace            Chrome trace-event JSON (open in Perfetto)\n")
	})
	return mux
}

// MetricsHandler serves one registry in Prometheus text format.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
}

// TraceHandler serves a tracer's spans as Chrome trace-event JSON,
// downloadable and loadable in Perfetto. A nil tracer (collector built
// without WithTracing) answers 404.
func TraceHandler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled (build the collector with WithTracing)",
				http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="montsys-trace.json"`)
		_ = t.WriteChromeTrace(w)
	})
}

// Quotaz renders a per-tenant quota/usage page — the QoS plane
// implements it. A tiny interface here keeps obs free of a qos import
// (obs is a leaf package everything else builds on).
type Quotaz interface {
	WriteQuotaz(w io.Writer)
}

// QuotazHandler serves the per-tenant QoS quota page. A nil source
// answers 404 (no QoS plane configured).
func QuotazHandler(q Quotaz) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if q == nil {
			http.Error(w, "QoS disabled (start with -qos to configure tenant quotas)",
				http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		q.WriteQuotaz(w)
	})
}

// StatuszHandler serves an SLO tracker's human status page. A nil
// tracker answers 404.
func StatuszHandler(t *SLOTracker) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "SLO tracking disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		t.WriteStatusz(w)
	})
}
