package obs

import (
	"context"
	"testing"
)

// TestTraceIDStringParseRoundTrip: the 32-hex form survives a
// String→Parse round trip, and malformed inputs are rejected.
func TestTraceIDStringParseRoundTrip(t *testing.T) {
	id := NewTraceID()
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() length = %d, want 32", len(s))
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("round trip: %v %v, want %v", back, ok, id)
	}
	for _, bad := range []string{"", "abc", s[:31], s + "0", "zz" + s[2:]} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

// TestSampledAtDeterministic is the property the whole propagation
// design leans on: the sampling verdict is a pure function of the
// trace id, so every process reaches the same decision without
// coordination, and verdicts are monotone in the rate — a trace a 1%
// head sampled stays sampled at any backend running ≥ 1%.
func TestSampledAtDeterministic(t *testing.T) {
	rates := []float64{0.001, 0.01, 0.1, 0.5, 0.9}
	for i := 0; i < 2000; i++ {
		id := NewTraceID()
		if id.SampledAt(0) {
			t.Fatal("rate 0 sampled")
		}
		if !id.SampledAt(1) {
			t.Fatal("rate 1 not sampled")
		}
		prev := false
		for _, r := range rates {
			got := id.SampledAt(r)
			if got != id.SampledAt(r) {
				t.Fatalf("verdict at %v not deterministic", r)
			}
			if prev && !got {
				t.Fatalf("verdict not monotone: sampled at lower rate, dropped at %v", r)
			}
			prev = got
		}
	}
}

// TestSampledAtRate: the empirical sampling rate over many random ids
// lands near the requested rate (FNV-1a spreads the ids well enough).
func TestSampledAtRate(t *testing.T) {
	const n, rate = 20000, 0.1
	hits := 0
	for i := 0; i < n; i++ {
		if NewTraceID().SampledAt(rate) {
			hits++
		}
	}
	got := float64(hits) / n
	if got < rate/2 || got > rate*2 {
		t.Fatalf("empirical rate %.4f, want ≈ %.2f", got, rate)
	}
}

// TestTraceContextPropagation: context attach/extract round trip, root
// minting, and Child re-parenting.
func TestTraceContextPropagation(t *testing.T) {
	if _, ok := TraceFromContext(context.Background()); ok {
		t.Fatal("empty context claims a trace")
	}
	tc := NewTraceContext(1)
	if !tc.Sampled || tc.TraceID.IsZero() || !tc.SpanID.IsZero() {
		t.Fatalf("root context: %+v", tc)
	}
	span := NewSpanID()
	child := tc.Child(span)
	if child.SpanID != span || child.TraceID != tc.TraceID || !child.Sampled {
		t.Fatalf("Child: %+v", child)
	}
	ctx := ContextWithTrace(context.Background(), child)
	got, ok := TraceFromContext(ctx)
	if !ok || got != child {
		t.Fatalf("extract: %+v %v, want %+v", got, ok, child)
	}
	if NewTraceContext(0).Sampled {
		t.Fatal("rate-0 root context sampled")
	}
}
