package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestWideEventJSONShape: a fully-populated event serializes to one
// parseable JSON line carrying every documented key, with the ids in
// their hex forms.
func TestWideEventJSONShape(t *testing.T) {
	var buf bytes.Buffer
	ww := NewWideWriter(&buf)
	ww.now = func() time.Time { return time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC) }

	tid := NewTraceID()
	sid, pid := NewSpanID(), NewSpanID()
	ww.Emit(&WideEvent{
		Layer: "route", Op: "modexp",
		TraceID: tid, SpanID: sid, Parent: pid,
		Outcome: "overloaded", Kit: "cios", Backend: "127.0.0.1:7077",
		Bits: 512, Batch: 8,
		Dur: 1500 * time.Microsecond, Queue: 250 * time.Microsecond,
		Attempts: 2, Hedged: true, Err: "engine: overloaded",
	})

	line := buf.String()
	if !strings.HasSuffix(line, "\n") || strings.Count(line, "\n") != 1 {
		t.Fatalf("not one line: %q", line)
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, line)
	}
	want := map[string]any{
		"ts":           "2026-01-02T03:04:05Z",
		"layer":        "route",
		"op":           "modexp",
		"trace_id":     tid.String(),
		"span_id":      sid.String(),
		"parent_id":    pid.String(),
		"outcome":      "overloaded",
		"kit":          "cios",
		"backend":      "127.0.0.1:7077",
		"modulus_bits": float64(512),
		"batch":        float64(8),
		"dur_us":       float64(1500),
		"queue_us":     float64(250),
		"attempts":     float64(2),
		"hedged":       true,
		"err":          "engine: overloaded",
	}
	for k, v := range want {
		if ev[k] != v {
			t.Errorf("%s = %v, want %v", k, ev[k], v)
		}
	}
	if len(ev) != len(want) {
		t.Errorf("extra keys: got %d fields, want %d: %s", len(ev), len(want), line)
	}
}

// TestWideEventOmitsEmptyFields: zero-valued optional fields stay off
// the line entirely — wide events stay narrow when there is nothing to
// say.
func TestWideEventOmitsEmptyFields(t *testing.T) {
	var buf bytes.Buffer
	ww := NewWideWriter(&buf)
	ww.Emit(&WideEvent{Layer: "server", Op: "mont", Outcome: "ok"})

	var ev map[string]any
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	for _, absent := range []string{
		"trace_id", "span_id", "parent_id", "kit", "backend",
		"modulus_bits", "batch", "queue_us", "attempts", "hedged", "err",
	} {
		if _, ok := ev[absent]; ok {
			t.Errorf("zero field %q serialized: %s", absent, buf.String())
		}
	}
	for _, present := range []string{"ts", "layer", "op", "outcome", "dur_us"} {
		if _, ok := ev[present]; !ok {
			t.Errorf("required field %q missing: %s", present, buf.String())
		}
	}
}

// TestWideWriterDisabled: the nil writer is the documented off switch —
// constructing on nil returns nil, and Emit/Enabled on nil are safe.
func TestWideWriterDisabled(t *testing.T) {
	ww := NewWideWriter(nil)
	if ww != nil {
		t.Fatal("NewWideWriter(nil) != nil")
	}
	if ww.Enabled() {
		t.Fatal("nil writer claims enabled")
	}
	ww.Emit(&WideEvent{Layer: "client", Op: "modexp"}) // must not panic
}

// TestWideWriterConcurrent: concurrent emitters never interleave
// mid-line (every line parses) and never lose events. Run under -race
// this also proves the buffer reuse is properly serialized.
func TestWideWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	ww := NewWideWriter(&safeWriter{w: &buf})
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ww.Emit(&WideEvent{Layer: "engine", Op: "modexp", Outcome: "ok"})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != goroutines*each {
		t.Fatalf("%d lines, want %d", len(lines), goroutines*each)
	}
	for _, l := range lines {
		if !json.Valid([]byte(l)) {
			t.Fatalf("corrupt line: %q", l)
		}
	}
}

// safeWriter makes a bytes.Buffer safe for the concurrent test without
// relying on WideWriter's own mutex (the property under test).
type safeWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *safeWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}
