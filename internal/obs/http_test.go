package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestHandlerEndToEnd drives a Collector like the engine would and
// checks every endpoint answers with the right shape.
func TestHandlerEndToEnd(t *testing.T) {
	col := NewCollector(WithTracing(128))
	col.SetEngineInfo(4, "model", "guarded")
	col.JobSubmitted("modexp")
	col.JobStarted("modexp", 0, 50*time.Microsecond)
	col.JobFinished("modexp", 0, "ok", time.Now().Add(-time.Millisecond),
		50*time.Microsecond, 900*time.Microsecond, 7, 1234, 0)
	col.JobSubmitted("mont")
	col.JobStarted("mont", 1, time.Microsecond)
	col.JobFinished("mont", 1, "canceled", time.Now(), time.Microsecond, 0, 0, 0, 0)
	col.CacheHit()
	col.CacheMiss()
	col.CacheEviction()

	srv := httptest.NewServer(NewHandler(col))
	defer srv.Close()

	code, body, hdr := get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	for _, want := range []string{
		`montsys_jobs_submitted_total{kind="modexp"} 1`,
		`montsys_jobs_submitted_total{kind="mont"} 1`,
		`montsys_job_outcomes_total{kind="modexp",outcome="ok"} 1`,
		`montsys_job_outcomes_total{kind="mont",outcome="canceled"} 1`,
		`montsys_mont_muls_total{kind="modexp"} 7`,
		"montsys_model_cycles_total 1234",
		"montsys_ctx_cache_hits_total 1",
		"montsys_ctx_cache_evictions_total 1",
		"montsys_queue_high_watermark 1",
		"montsys_queue_depth 0",
		"montsys_engine_workers 4",
		`montsys_engine_info{mode="model",variant="guarded"} 1`,
		`montsys_job_latency_seconds_count{kind="modexp"} 1`,
		"montsys_job_failed_latency_seconds_count 1",
		"montsys_job_queue_wait_seconds_count 2",
		"# TYPE montsys_job_latency_seconds histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, _ = get(t, srv, "/debug/vars")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Errorf("/debug/vars: %d, valid JSON = %v", code, json.Valid([]byte(body)))
	}

	code, body, _ = get(t, srv, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d", code)
	}

	code, body, hdr = get(t, srv, "/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace: %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/trace content type %q", ct)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("/trace exported no events")
	}

	code, body, _ = get(t, srv, "/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Errorf("index: %d %q", code, body)
	}
	if code, _, _ := get(t, srv, "/nosuch"); code != http.StatusNotFound {
		t.Errorf("unknown path: %d", code)
	}
}

// TestTraceHandlerDisabled: a collector without tracing answers 404 on
// /trace rather than an empty document.
func TestTraceHandlerDisabled(t *testing.T) {
	srv := httptest.NewServer(NewHandler(NewCollector()))
	defer srv.Close()
	if code, _, _ := get(t, srv, "/trace"); code != http.StatusNotFound {
		t.Errorf("/trace without tracing: %d", code)
	}
}

// TestCollectorUnknownKind routes unknown job kinds to "other" instead
// of dropping them.
func TestCollectorUnknownKind(t *testing.T) {
	col := NewCollector()
	col.JobSubmitted("mystery")
	col.JobFinished("mystery", 0, "ok", time.Now(), 0, time.Microsecond, 1, 0, 0)
	var sb strings.Builder
	if err := col.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `montsys_jobs_submitted_total{kind="other"} 1`) {
		t.Error("unknown kind not routed to other")
	}
}
