package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// sampleLine matches one Prometheus text-format sample.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.eE+-]+|\+Inf|NaN)$`)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRegistryPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	c := r.CounterLabeled("jobs_total", "Jobs.", Label("kind", "modexp"))
	c2 := r.CounterLabeled("jobs_total", "Jobs.", Label("kind", "mont"))
	g := r.Gauge("queue_depth", "Depth.")
	h := r.Histogram("latency_seconds", "Latency.")
	c.Add(3)
	c2.Inc()
	g.Set(7)
	h.Observe(1500) // ns → bucket [1024, 2048)
	h.Observe(1)

	out := render(t, r)
	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("malformed sample line: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE jobs_total counter",
		`jobs_total{kind="modexp"} 3`,
		`jobs_total{kind="mont"} 1`,
		"# TYPE queue_depth gauge",
		"queue_depth 7",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="+Inf"} 2`,
		"latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// HELP/TYPE emitted once per family even with several label sets.
	if n := strings.Count(out, "# TYPE jobs_total"); n != 1 {
		t.Errorf("TYPE jobs_total emitted %d times", n)
	}
}

// TestHistogramBucketsCumulative checks the exported buckets are
// cumulative, non-decreasing, with increasing le bounds and a +Inf
// bucket equal to the count.
func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "L.")
	for _, v := range []int64{1, 2, 3, 1000, 1000000, 5} {
		h.Observe(v)
	}
	out := render(t, r)
	var lastCum int64 = -1
	lastLe := -1.0
	var infCum, count int64 = -1, -1
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		switch {
		case strings.HasPrefix(line, "lat_bucket{"):
			m := sampleLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("bad bucket line %q", line)
			}
			cum, _ := strconv.ParseInt(m[3], 10, 64)
			if cum < lastCum {
				t.Errorf("bucket counts not cumulative at %q", line)
			}
			lastCum = cum
			leStr := strings.TrimSuffix(strings.TrimPrefix(m[2], `{le="`), `"}`)
			if leStr == "+Inf" {
				infCum = cum
				continue
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				t.Fatalf("bad le %q: %v", leStr, err)
			}
			if le <= lastLe {
				t.Errorf("le bounds not increasing at %q", line)
			}
			lastLe = le
		case strings.HasPrefix(line, "lat_count"):
			m := sampleLine.FindStringSubmatch(line)
			count, _ = strconv.ParseInt(m[3], 10, 64)
		}
	}
	if infCum != 6 || count != 6 {
		t.Errorf("+Inf bucket %d / count %d, want 6/6", infCum, count)
	}
}

// TestRegistryIdempotentRegistration: same (name, labels) returns the
// same instrument.
func TestRegistryIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.")
	b := r.Counter("x_total", "X.")
	if a != b {
		t.Error("duplicate registration returned a distinct counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("instruments not shared")
	}
	if l := r.CounterLabeled("x_total", "X.", Label("k", "v")); l == a {
		t.Error("labeled series must be distinct from unlabeled")
	}
}

func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	if g.Value() != 5 {
		t.Errorf("SetMax regressed: %d", g.Value())
	}
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("SetMax did not raise: %d", g.Value())
	}
}
