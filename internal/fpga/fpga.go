// Package fpga is the technology model that stands in for the Xilinx
// synthesis and place-and-route flow the paper used: it maps a gate-level
// netlist (internal/logic) onto 4-input LUTs, packs LUTs and flip-flops
// into Virtex-E slices, and estimates the achievable clock period from
// LUT levels on the critical path.
//
// The model is calibrated once against the paper's own Table 2 row for
// l = 32 on the Xilinx V812E-BG-560-8 (Virtex-E, speed grade -8), then
// applied uniformly to every width — so the scaling behaviour (linear
// slices, constant clock period) is a model output, not a per-row fit.
// EXPERIMENTS.md records model-vs-paper for every row.
package fpga

import (
	"fmt"
	"math"

	"repro/internal/logic"
)

// Tech holds the calibrated device timing/packing constants.
type Tech struct {
	Name string

	// Timing, in nanoseconds.
	TClkQ   float64 // flip-flop clock-to-out
	TSetup  float64 // flip-flop setup
	TLUT    float64 // one LUT4 logic delay
	TNet    float64 // average routing delay per LUT level
	TNetFix float64 // fixed clock-tree / final-net margin

	// Packing: effective (LUTs + FFs) absorbed per slice. An ideal
	// Virtex-E slice holds 2 LUTs + 2 FFs = 4 cells; real P&R on this
	// design family achieves less because LUT/FF pairing is constrained
	// by the carry-chain layout.
	CellsPerSlice float64
}

// VirtexE is the calibrated Xilinx V812E-BG-560-8 model.
//
// Calibration: the paper's l = 32 row (225 slices, 9.256 ns). The MMMC
// netlist at l = 32 maps to ≈ cells(32) LUT+FF cells; CellsPerSlice is
// chosen so that cells(32)/CellsPerSlice ≈ 225, and the timing constants
// are chosen so a 3-LUT-level register-to-register path lands near
// 10 ns. Both constants are then FROZEN for all other widths.
var VirtexE = Tech{
	Name:          "Xilinx V812E-BG-560-8 (Virtex-E -8)",
	TClkQ:         1.37,
	TSetup:        0.96,
	TLUT:          1.00,
	TNet:          1.56,
	TNetFix:       0.00,
	CellsPerSlice: 3.55,
}

// MapResult is the outcome of technology mapping one netlist.
type MapResult struct {
	LUTs      int // 4-input LUTs after greedy cone covering
	FFs       int // flip-flops
	Slices    int // estimated Virtex-E slices
	LUTLevels int // LUT levels on the worst register-to-register path

	ClockPeriodNs float64 // estimated minimum clock period
	ClockMHz      float64
}

// String renders the mapping summary.
func (r MapResult) String() string {
	return fmt.Sprintf("%d LUTs, %d FFs, %d slices, %d LUT levels, Tp=%.3f ns (%.1f MHz)",
		r.LUTs, r.FFs, r.Slices, r.LUTLevels, r.ClockPeriodNs, r.ClockMHz)
}

// Map performs technology mapping and timing/area estimation.
func (t Tech) Map(nl *logic.Netlist) (MapResult, error) {
	order, err := logic.TopoGates(nl)
	if err != nil {
		return MapResult{}, err
	}
	gates := nl.Gates()
	dffs := nl.DFFs()
	numSignals := nl.NumSignals()

	// Driver gate per net (-1 = PI, FF Q, or constant).
	driver := make([]int, numSignals)
	for i := range driver {
		driver[i] = -1
	}
	for gi, g := range gates {
		driver[g.Out] = gi
	}

	// Fanout per net: gate input pins plus FF D/CE/CLR pins.
	fanout := make([]int, numSignals)
	for _, g := range gates {
		for _, in := range logic.GateInputs(g) {
			fanout[in]++
		}
	}
	for _, ff := range dffs {
		fanout[ff.D]++
		if ff.CE != logic.Const1 {
			fanout[ff.CE]++
		}
		if ff.CLR != logic.Const0 {
			fanout[ff.CLR]++
		}
	}

	// Greedy cone covering: walk gates in topo order; each gate merges a
	// fanin gate's cone when the fanin has fanout 1 and the merged leaf
	// set still fits a LUT4. Absorbed gates disappear into their
	// consumer's LUT.
	// Phase 1 — cone construction. Walk gates in topo order; each gate's
	// cone starts at its direct inputs, then (a) in-lines any leaf that
	// is the sole consumer of a gate output (absorption), and (b)
	// in-lines multi-fanout leaves by duplicating their logic into this
	// LUT (replication — free when the merged cone still fits four
	// inputs, and what lets a 5-gate full adder map to two 3-input
	// LUTs). Replication leaves the source gate in place for its other
	// consumers; liveness analysis below trims sources that end up with
	// no remaining readers.
	leaves := make([][]logic.Signal, len(gates))
	for _, gi := range order {
		g := gates[gi]
		merged := unionSize(nil, logic.GateInputs(g))
		expand := func(requireSoleReader bool) {
			for changed := true; changed; {
				changed = false
				for i, s := range merged {
					d := driver[s]
					if d < 0 {
						continue
					}
					if requireSoleReader && fanout[s] != 1 {
						continue
					}
					candidate := make([]logic.Signal, 0, len(merged)+3)
					candidate = append(candidate, merged[:i]...)
					candidate = append(candidate, merged[i+1:]...)
					candidate = unionSize(candidate, leaves[d])
					if len(candidate) <= 4 {
						merged = candidate
						changed = true
						break
					}
				}
			}
		}
		expand(true)  // absorption
		expand(false) // replication
		leaves[gi] = merged
	}

	// Phase 2 — liveness: a gate is a live LUT root iff its output is
	// read by a flip-flop pin, a declared primary output, or appears as
	// a leaf of another live root. Trace back from the sinks.
	liveRoot := make([]bool, len(gates))
	var visit func(s logic.Signal)
	visit = func(s logic.Signal) {
		d := driver[s]
		if d < 0 || liveRoot[d] {
			return
		}
		liveRoot[d] = true
		for _, leaf := range leaves[d] {
			visit(leaf)
		}
	}
	for _, ff := range dffs {
		visit(ff.D)
		visit(ff.CE)
		visit(ff.CLR)
	}
	for _, out := range nl.Outputs() {
		visit(out)
	}

	// Phase 3 — count live LUTs and compute LUT levels over live roots.
	level := make([]int, numSignals) // LUT depth at each net
	luts := 0
	for _, gi := range order {
		if !liveRoot[gi] {
			continue
		}
		g := gates[gi]
		// Route-through: a Buf whose cone is a bare wire costs nothing.
		isWire := g.Kind == logic.Buf && len(leaves[gi]) == 1 && driver[leaves[gi][0]] == -1
		maxIn := 0
		for _, leaf := range leaves[gi] {
			if level[leaf] > maxIn {
				maxIn = level[leaf]
			}
		}
		if isWire {
			level[g.Out] = maxIn
			continue
		}
		luts++
		level[g.Out] = maxIn + 1
	}
	critical := 0
	sinkLevel := func(s logic.Signal) {
		if level[s] > critical {
			critical = level[s]
		}
	}
	for _, ff := range dffs {
		sinkLevel(ff.D)
		sinkLevel(ff.CE)
		sinkLevel(ff.CLR)
	}
	for _, out := range nl.Outputs() {
		sinkLevel(out)
	}

	ffs := len(dffs)
	slices := int(math.Ceil(float64(luts+ffs) / t.CellsPerSlice))
	minSlices := int(math.Ceil(math.Max(float64(luts), float64(ffs)) / 2))
	if slices < minSlices {
		slices = minSlices
	}

	tp := t.TClkQ + t.TSetup + t.TNetFix + float64(critical)*(t.TLUT+t.TNet)
	return MapResult{
		LUTs:          luts,
		FFs:           ffs,
		Slices:        slices,
		LUTLevels:     critical,
		ClockPeriodNs: tp,
		ClockMHz:      1000 / tp,
	}, nil
}

// unionSize returns the union of two small signal sets (order preserved,
// no duplicates). Sets here have at most 4+4 elements, so linear scans
// beat maps.
func unionSize(a, b []logic.Signal) []logic.Signal {
	out := append([]logic.Signal(nil), a...)
	for _, s := range b {
		found := false
		for _, t := range out {
			if t == s {
				found = true
				break
			}
		}
		if !found {
			out = append(out, s)
		}
	}
	return out
}
