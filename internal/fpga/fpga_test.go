package fpga

import (
	"math"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/systolic"
)

func TestMapEmptyNetlist(t *testing.T) {
	r, err := VirtexE.Map(logic.New())
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 0 || r.FFs != 0 || r.Slices != 0 || r.LUTLevels != 0 {
		t.Errorf("empty netlist mapped to %+v", r)
	}
}

func TestMapSingleGate(t *testing.T) {
	nl := logic.New()
	a, b := nl.Input("a"), nl.Input("b")
	x := nl.AndGate(a, b)
	nl.AddDFF(x, 0, "q")
	r, err := VirtexE.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 1 || r.FFs != 1 || r.LUTLevels != 1 {
		t.Errorf("single gate: %+v", r)
	}
}

// A 5-gate full adder must collapse to 2 LUTs (3-input sum, 3-input
// carry): the absorption logic at work.
func TestMapFullAdderTwoLUTs(t *testing.T) {
	nl := logic.New()
	a, b, c := nl.Input("a"), nl.Input("b"), nl.Input("cin")
	s, co := nl.FullAdder(a, b, c)
	nl.AddDFF(s, 0, "qs")
	nl.AddDFF(co, 0, "qc")
	r, err := VirtexE.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 2 {
		t.Errorf("full adder mapped to %d LUTs, want 2", r.LUTs)
	}
	if r.LUTLevels != 1 {
		t.Errorf("full adder LUT levels = %d, want 1", r.LUTLevels)
	}
}

// A chain too wide for one LUT must split: 6-input AND tree = 2 LUTs,
// 2 levels.
func TestMapWideCone(t *testing.T) {
	nl := logic.New()
	in := nl.InputVec("a", 6)
	x := nl.AndGate(in[0], in[1])
	x = nl.AndGate(x, in[2])
	x = nl.AndGate(x, in[3])
	x = nl.AndGate(x, in[4])
	x = nl.AndGate(x, in[5])
	nl.AddDFF(x, 0, "q")
	r, err := VirtexE.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 2 || r.LUTLevels != 2 {
		t.Errorf("6-input cone: %d LUTs %d levels, want 2/2", r.LUTs, r.LUTLevels)
	}
}

// Shared fanout with small cones: replication duplicates the shared gate
// into both consumers (2 LUTs, 1 level) and liveness trims the original.
func TestMapSharedFanoutReplicates(t *testing.T) {
	nl := logic.New()
	a, b, c := nl.Input("a"), nl.Input("b"), nl.Input("c")
	shared := nl.XorGate(a, b)
	nl.AddDFF(nl.AndGate(shared, c), 0, "q1")
	nl.AddDFF(nl.OrGate(shared, c), 0, "q2")
	r, err := VirtexE.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 2 || r.LUTLevels != 1 {
		t.Errorf("shared fanout: %d LUTs %d levels, want 2/1", r.LUTs, r.LUTLevels)
	}
}

// A shared gate whose consumers' cones exceed four inputs cannot be
// replicated and must remain its own LUT.
func TestMapSharedFanoutTooWide(t *testing.T) {
	nl := logic.New()
	in := nl.InputVec("a", 6)
	shared := nl.XorGate(in[0], in[1])
	w1 := nl.AndGate(nl.AndGate(in[2], in[3]), nl.AndGate(in[4], in[5]))
	nl.AddDFF(nl.AndGate(shared, w1), 0, "q1")
	nl.AddDFF(nl.OrGate(shared, w1), 0, "q2")
	r, err := VirtexE.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	// shared (2 inputs) still replicates into both consumers, but the
	// 4-input w1 cone cannot: it stays a shared LUT root. Expect the two
	// consumer LUTs + w1 = 3 LUTs over 2 levels.
	if r.LUTs != 3 || r.LUTLevels != 2 {
		t.Errorf("wide shared fanout: %d LUTs %d levels, want 3/2", r.LUTs, r.LUTLevels)
	}
}

// Route-through buffers (wire from input/FF to FF) cost no LUT.
func TestMapRouteThroughBuf(t *testing.T) {
	nl := logic.New()
	a := nl.Input("a")
	q := nl.AddDFF(nl.BufGate(a), 0, "q1")
	nl.AddDFF(nl.BufGate(q), 0, "q2")
	r, err := VirtexE.Map(nl)
	if err != nil {
		t.Fatal(err)
	}
	if r.LUTs != 0 || r.FFs != 2 {
		t.Errorf("route-through: %d LUTs %d FFs", r.LUTs, r.FFs)
	}
}

func TestMapRejectsLoops(t *testing.T) {
	nl := logic.New()
	// Build a loop via the systolic feedback helper pattern, unpatched:
	// a gate reading a later gate's output.
	a := nl.Input("a")
	g1 := nl.BufGate(a)
	gates := nl.Gates()
	_ = gates
	// Directly construct a cycle.
	nl2 := logic.New()
	b := nl2.Input("b")
	x1 := nl2.AndGate(b, b)
	nl2.PatchGateInput(0, x1) // gate 0 now reads its own output
	if _, err := VirtexE.Map(nl2); err == nil {
		t.Error("loop not rejected")
	}
	_ = g1
}

// Table 2 reproduction properties: the mapped MMMC must have (a) slice
// counts that grow linearly in l, (b) a clock period that is EXACTLY
// constant across widths — the paper's headline architectural claim —
// and (c) a slice count within 20% of the paper's own Table 2 values.
func TestVirtexEModelAgainstTable2(t *testing.T) {
	paper := map[int]struct {
		slices int
		tpNs   float64
	}{
		32:   {225, 9.256},
		64:   {418, 9.221},
		128:  {806, 10.242},
		256:  {1548, 9.956},
		512:  {2972, 10.501},
		1024: {5706, 10.458},
	}
	var tp0 float64
	for _, l := range []int{32, 64, 128, 256, 512, 1024} {
		nl := logic.New()
		if _, err := mmmc.BuildNetlist(nl, l, systolic.Faithful); err != nil {
			t.Fatal(err)
		}
		r, err := VirtexE.Map(nl)
		if err != nil {
			t.Fatal(err)
		}
		if tp0 == 0 {
			tp0 = r.ClockPeriodNs
		} else if r.ClockPeriodNs != tp0 {
			t.Errorf("l=%d: Tp %.3f != %.3f — clock period not constant", l, r.ClockPeriodNs, tp0)
		}
		row := paper[l]
		if ratio := float64(r.Slices) / float64(row.slices); ratio < 0.8 || ratio > 1.2 {
			t.Errorf("l=%d: %d slices vs paper %d (ratio %.2f)", l, r.Slices, row.slices, ratio)
		}
		if math.Abs(r.ClockPeriodNs-row.tpNs) > 1.5 {
			t.Errorf("l=%d: Tp %.3f ns vs paper %.3f ns", l, r.ClockPeriodNs, row.tpNs)
		}
	}
}

// The model must still simulate correctly after mapping — mapping is
// analysis-only and must not mutate the netlist.
func TestMapDoesNotMutate(t *testing.T) {
	nl := logic.New()
	p, err := mmmc.BuildNetlist(nl, 8, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := VirtexE.Map(nl); err != nil {
		t.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	// One quick multiplication end-to-end: 3·5·R⁻¹ mod 2N, N=251.
	sim.SetMany(p.XBus, bits.FromUint64(3, 9))
	sim.SetMany(p.YBus, bits.FromUint64(5, 9))
	sim.SetMany(p.NBus, bits.FromUint64(251, 8))
	sim.Set(p.Start, 1)
	sim.Step()
	sim.Set(p.Start, 0)
	for i := 0; i < 3*8+4; i++ {
		sim.Step()
	}
	if sim.Get(p.Done) != 1 {
		t.Error("netlist broken after mapping")
	}
}

func TestMapResultString(t *testing.T) {
	r := MapResult{LUTs: 10, FFs: 5, Slices: 7, LUTLevels: 3, ClockPeriodNs: 9.9, ClockMHz: 101}
	if r.String() == "" {
		t.Error("empty String")
	}
}
