package kits

import "testing"

func TestParseRoundTrip(t *testing.T) {
	for _, k := range []Kit{Model, Sim, CIOS, Big, Auto} {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Errorf("Parse(%q) = %v, %v", k.String(), got, err)
		}
	}
	// Aliases and case folding.
	for s, want := range map[string]Kit{
		"simulate": Sim, "highradix": CIOS, "word": CIOS,
		"CIOS": CIOS, " big ": Big, "Auto": Auto,
	} {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Parse("fpga"); err == nil {
		t.Error("Parse accepted junk")
	}
	if Kit(99).Valid() || Kit(-1).Valid() {
		t.Error("out-of-range kit reported Valid")
	}
}

func TestBucketEdges(t *testing.T) {
	for _, tc := range []struct{ bits, want int }{
		{1, 0}, {255, 0}, {256, 0},
		{257, 1}, {512, 1},
		{513, 2}, {1024, 2},
		{1025, 3}, {2048, 3},
		{2049, 4}, {4096, 4},
	} {
		if got := Bucket(tc.bits); got != tc.want {
			t.Errorf("Bucket(%d) = %d, want %d (%s)", tc.bits, got, tc.want, BucketLabel(got))
		}
	}
	for b := 0; b < NumBuckets; b++ {
		if BucketLabel(b) == "" {
			t.Errorf("bucket %d has no label", b)
		}
		if rep := bucketRep[b]; Bucket(rep) != b {
			t.Errorf("representative %d falls outside bucket %d", rep, b)
		}
	}
}

// TestSelectorDeterministic pins a hand-written table and checks Pick
// returns exactly the pinned choice for every cell — no re-measuring,
// no randomness — plus the defensive fallbacks: a table that somehow
// names Sim or garbage yields Model, never a crash or a sim circuit.
func TestSelectorDeterministic(t *testing.T) {
	tbl := &Table{}
	tbl.Picks[Bucket(1024)][int(OpModExp)] = CIOS
	tbl.Picks[Bucket(1024)][int(OpMont)] = Big
	tbl.Picks[Bucket(256)][int(OpModExp)] = Model
	tbl.Picks[Bucket(4096)][int(OpModExp)] = Sim     // invalid by policy
	tbl.Picks[Bucket(4096)][int(OpMont)] = Kit(42)   // garbage
	sel := NewSelector(tbl)

	for i := 0; i < 3; i++ { // repeated picks must not drift
		if k := sel.Pick(OpModExp, 1024); k != CIOS {
			t.Errorf("Pick(modexp,1024) = %s, want cios", k)
		}
		if k := sel.Pick(OpMont, 1024); k != Big {
			t.Errorf("Pick(mont,1024) = %s, want big", k)
		}
		if k := sel.Pick(OpModExp, 200); k != Model {
			t.Errorf("Pick(modexp,200) = %s, want model", k)
		}
		if k := sel.Pick(OpModExp, 4096); k != Model {
			t.Errorf("Pick of pinned Sim = %s, want model fallback", k)
		}
		if k := sel.Pick(OpMont, 4096); k != Model {
			t.Errorf("Pick of garbage kit = %s, want model fallback", k)
		}
	}
	if sel.Table() != tbl {
		t.Error("Table() does not expose the pinned table")
	}
}

// TestProcessTable checks the process-level memoization: every call
// returns the same measured table, and its picks are concrete kits
// (never Sim, never Auto) in every cell.
func TestProcessTable(t *testing.T) {
	a := ProcessTable()
	b := ProcessTable()
	if a != b {
		t.Fatal("ProcessTable re-measured")
	}
	for bkt := 0; bkt < NumBuckets; bkt++ {
		for op := 0; op < NumOps; op++ {
			k := a.Picks[bkt][op]
			if !k.Valid() || k == Auto || k == Sim {
				t.Errorf("bucket %s op %s picked %s", BucketLabel(bkt), Op(op), k)
			}
		}
	}
	if a.String() == "" {
		t.Error("empty table rendering")
	}
}
