// Package kits names the compute backends ("kits") the system can run a
// Montgomery operation on, and implements the engine's auto-selector: a
// bounded, process-cached startup microbenchmark that tables per-kit
// throughput by (modulus bit-length bucket, operation shape) and picks
// the fastest kit per job.
//
// The kits are the paper's design points made concrete:
//
//   - Model — the radix-2 Algorithm 2 reference loop plus the paper's
//     closed-form cycle model (3l+4 per multiplication). Bit-exact with
//     the hardware, host-speed arithmetic. The default.
//   - Sim — the cycle-accurate simulated systolic array. Slowest by
//     orders of magnitude; exists for fidelity, never for throughput,
//     so the auto-selector will not pick it.
//   - CIOS — the production radix-2^64 word-serial fast path
//     (internal/highradix.Word): the §2 radix-2^α trade-off taken to
//     α = 64, carry-save accumulation in the word loop, no final
//     subtraction on the hot path.
//   - Big — math/big's own modular arithmetic as an oracle backend.
//   - Auto — not a backend: a request to pick one of the above per job
//     from the benchmark table.
package kits

import (
	"fmt"
	"strings"
)

// Kit identifies a compute backend.
type Kit int

const (
	// Model is the paper-faithful radix-2 reference path (default).
	Model Kit = iota
	// Sim is the cycle-accurate simulated systolic circuit.
	Sim
	// CIOS is the radix-2^64 word-serial fast path.
	CIOS
	// Big is the math/big oracle backend.
	Big
	// Auto selects a concrete kit per job from the benchmark table.
	Auto
)

// NumKits counts the concrete kits (Auto is a selection policy, not a
// backend) — the size for per-kit stats arrays.
const NumKits = int(Auto)

// String returns the flag-friendly lowercase name.
func (k Kit) String() string {
	switch k {
	case Model:
		return "model"
	case Sim:
		return "sim"
	case CIOS:
		return "cios"
	case Big:
		return "big"
	case Auto:
		return "auto"
	}
	return fmt.Sprintf("kit(%d)", int(k))
}

// Parse maps a flag value (case-insensitive: model|sim|cios|big|auto)
// to its Kit.
func Parse(s string) (Kit, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "model":
		return Model, nil
	case "sim", "simulate":
		return Sim, nil
	case "cios", "highradix", "word":
		return CIOS, nil
	case "big":
		return Big, nil
	case "auto":
		return Auto, nil
	}
	return Model, fmt.Errorf("kits: unknown kit %q (want model|sim|cios|big|auto)", s)
}

// Valid reports whether k names a known kit (including Auto).
func (k Kit) Valid() bool { return k >= Model && k <= Auto }

// Op is the operation shape a selection is made for.
type Op int

const (
	// OpModExp is a full modular exponentiation.
	OpModExp Op = iota
	// OpMont is a single Montgomery multiplication.
	OpMont

	// NumOps sizes per-op tables.
	NumOps = int(OpMont) + 1
)

func (o Op) String() string {
	switch o {
	case OpModExp:
		return "modexp"
	case OpMont:
		return "mont"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Modulus bit-length buckets. Jobs are bucketed by BitLen(N); the
// boundaries track the operand sizes the serving stack actually sees
// (RSA-shaped 1024/2048 plus smaller ECC-shaped moduli).
var bucketBounds = [...]int{256, 512, 1024, 2048}

// NumBuckets is the number of bit-length buckets.
const NumBuckets = len(bucketBounds) + 1

// Bucket maps a modulus bit length to its bucket index: ≤256, ≤512,
// ≤1024, ≤2048, >2048.
func Bucket(bits int) int {
	for i, b := range bucketBounds {
		if bits <= b {
			return i
		}
	}
	return NumBuckets - 1
}

// BucketLabel names a bucket for reports.
func BucketLabel(i int) string {
	if i < len(bucketBounds) {
		return fmt.Sprintf("<=%d", bucketBounds[i])
	}
	return fmt.Sprintf(">%d", bucketBounds[len(bucketBounds)-1])
}

// bucketRep is the representative modulus bit length benchmarked for
// each bucket.
var bucketRep = [NumBuckets]int{256, 512, 1024, 2048, 3072}
