package kits

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"time"

	"repro/internal/highradix"
	"repro/internal/mont"
)

// Table records, for each (bit-length bucket, op shape) cell, the kit
// the microbenchmark found fastest and the measured rates behind that
// choice. A Table is immutable once built; tests pin one to make the
// selector deterministic.
type Table struct {
	// Picks[bucket][op] is the chosen kit for that cell.
	Picks [NumBuckets][NumOps]Kit
	// Rates[bucket][op][kit] is the measured throughput in ops/sec
	// (0 = not measured; Sim is never measured).
	Rates [NumBuckets][NumOps][NumKits]float64
}

// Selector answers "which kit for this job?" from a pinned Table.
// Selectors are immutable and safe for concurrent use.
type Selector struct {
	t *Table
}

// NewSelector wraps a table — typically ProcessTable(), or a pinned
// literal in tests.
func NewSelector(t *Table) *Selector { return &Selector{t: t} }

// Table exposes the underlying table (for stats reporting).
func (s *Selector) Table() *Table { return s.t }

// Pick returns the concrete kit for an operation on a modulus of the
// given bit length. The result is never Sim and never Auto.
func (s *Selector) Pick(op Op, bits int) Kit {
	k := s.t.Picks[Bucket(bits)][op]
	if k < Model || k >= Kit(NumKits) || k == Sim {
		return Model
	}
	return k
}

// measureBudget bounds the time spent per (bucket, op, kit) cell. With
// NumBuckets×NumOps×3 cells the whole table costs well under a second,
// once per process.
const measureBudget = 4 * time.Millisecond

// benchExp is the exponent used to rank modexp throughput: F4 = 65537,
// the ubiquitous RSA public exponent — 17 multiplications, enough to
// amortize domain entry/exit without making startup slow.
var benchExp = big.NewInt(65537)

// Measure runs the bounded microbenchmark and builds a fresh Table.
// Candidates are Model, CIOS and Big; the Sim kit is excluded by design
// (it is 10³–10⁶× slower than every alternative — benchmarking it would
// dominate startup to confirm a foregone conclusion). Each cell runs
// ops until measureBudget elapses, always completing at least one, so a
// slow kit costs at most one op over budget.
//
// Most callers want ProcessTable, which memoizes one Measure per
// process.
func Measure() *Table {
	t := &Table{}
	rng := rand.New(rand.NewSource(0x6b697473)) // fixed: same moduli every run
	for b := 0; b < NumBuckets; b++ {
		l := bucketRep[b]
		n := randOdd(rng, l)
		ctx, err := mont.NewCtx(n)
		if err != nil {
			// Unreachable for the fixed representative moduli; fall back
			// to the default kit for the whole bucket.
			for op := 0; op < NumOps; op++ {
				t.Picks[b][op] = Model
			}
			continue
		}
		w := highradix.NewWord(ctx)
		x := new(big.Int).Rand(rng, n)
		y := new(big.Int).Rand(rng, n)

		t.Rates[b][int(OpModExp)][int(Model)] = rate(func() {
			if _, _, err := ctx.Exp(x, benchExp); err != nil {
				panic(err)
			}
		})
		t.Rates[b][int(OpModExp)][int(CIOS)] = rate(func() {
			if _, err := w.ModExp(x, benchExp); err != nil {
				panic(err)
			}
		})
		t.Rates[b][int(OpModExp)][int(Big)] = rate(func() {
			new(big.Int).Exp(x, benchExp, n)
		})

		t.Rates[b][int(OpMont)][int(Model)] = rate(func() { ctx.Mul(x, y) })
		t.Rates[b][int(OpMont)][int(CIOS)] = rate(func() {
			if _, err := w.Mont(x, y); err != nil {
				panic(err)
			}
		})
		t.Rates[b][int(OpMont)][int(Big)] = rate(func() { ctx.MulClosedForm(x, y) })

		for op := 0; op < NumOps; op++ {
			t.Picks[b][op] = best(t.Rates[b][op])
		}
	}
	return t
}

// rate measures ops/sec for f within measureBudget (at least one op).
func rate(f func()) float64 {
	start := time.Now()
	ops := 0
	for {
		f()
		ops++
		if time.Since(start) >= measureBudget {
			break
		}
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		elapsed = 1e-9
	}
	return float64(ops) / elapsed
}

// best returns the kit with the highest measured rate, preferring the
// earlier enum value on exact ties (Model wins a dead heat, keeping the
// choice stable).
func best(rates [NumKits]float64) Kit {
	k, r := Model, rates[int(Model)]
	for i := 0; i < NumKits; i++ {
		if rates[i] > r {
			k, r = Kit(i), rates[i]
		}
	}
	return k
}

var (
	processOnce sync.Once
	processTbl  *Table
)

// ProcessTable returns the per-process benchmark table, running Measure
// exactly once (on first call — construction of an Auto engine or core)
// and caching the result for the process lifetime.
func ProcessTable() *Table {
	processOnce.Do(func() { processTbl = Measure() })
	return processTbl
}

// String renders the table's picks, one line per bucket, for stats and
// debug output.
func (t *Table) String() string {
	var sb []byte
	for b := 0; b < NumBuckets; b++ {
		sb = append(sb, fmt.Sprintf("%s: modexp=%s mont=%s\n",
			BucketLabel(b), t.Picks[b][int(OpModExp)], t.Picks[b][int(OpMont)])...)
	}
	return string(sb)
}

// randOdd draws an odd l-bit modulus with the top bit set.
func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}
