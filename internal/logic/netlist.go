// Package logic is a structural gate-level hardware substrate: netlists of
// two-input gates and D flip-flops, a levelized cycle-accurate simulator,
// and static timing analysis.
//
// It stands in for the FPGA fabric the paper targets. The systolic array
// of Fig. 1/2 is constructed as a netlist in this package (see
// internal/systolic), simulated clock edge by clock edge, measured for
// area (gate census) and speed (critical path), and emitted as Verilog or
// VCD waveforms. The simulator is strictly synchronous: all combinational
// gates settle between edges (levelized evaluation), then every flip-flop
// loads its D input at once — the same abstraction as the paper's
// single-clock design.
package logic

import (
	"fmt"

	"repro/internal/bits"
)

// Signal identifies a net in a netlist. Signals 0 and 1 are the constant
// nets low and high.
type Signal int32

// Const0 and Const1 are the constant-low and constant-high nets, valid in
// every netlist.
const (
	Const0 Signal = 0
	Const1 Signal = 1
)

// GateKind enumerates the primitive gate types. They match the gate
// vocabulary the paper uses for its area figures (AND, OR, XOR, plus NOT
// and BUF for glue logic).
type GateKind uint8

// Primitive gate kinds.
const (
	And GateKind = iota
	Or
	Xor
	Not
	Buf
	numGateKinds
)

// String returns the conventional name of the gate kind.
func (k GateKind) String() string {
	switch k {
	case And:
		return "AND"
	case Or:
		return "OR"
	case Xor:
		return "XOR"
	case Not:
		return "NOT"
	case Buf:
		return "BUF"
	default:
		return fmt.Sprintf("GateKind(%d)", uint8(k))
	}
}

// Gate is one primitive gate instance. For Not and Buf only input A is
// used.
type Gate struct {
	Kind GateKind
	A, B Signal
	Out  Signal
}

// DFF is a positive-edge D flip-flop with a synchronous reset value, a
// clock-enable net CE, and a synchronous clear net CLR. On a clock edge:
// if CLR is high the flip-flop returns to Init; otherwise if CE is high
// it captures D; otherwise it holds. Virtex-E slice flip-flops provide
// both CE and synchronous set/reset natively, so neither costs fabric
// gates — the paper's shared x/m pipeline registers and the MMMC's
// IDLE-state reset rely on them.
type DFF struct {
	D    Signal
	Q    Signal
	CE   Signal
	CLR  Signal
	Init bits.Bit
}

// Netlist is a mutable structural circuit description. Build it with the
// constructor methods, then Compile it into a Sim for execution.
type Netlist struct {
	numSignals int32
	gates      []Gate
	dffs       []DFF
	inputs     []Signal
	outputs    []Signal
	names      map[Signal]string
	byName     map[string]Signal

	// macro census, for matching the paper's FA/HA cell inventories
	fullAdders int
	halfAdders int
}

// New returns an empty netlist containing only the constant nets.
func New() *Netlist {
	return &Netlist{
		numSignals: 2, // Const0, Const1
		names:      map[Signal]string{Const0: "const0", Const1: "const1"},
		byName:     map[string]Signal{"const0": Const0, "const1": Const1},
	}
}

func (n *Netlist) newSignal() Signal {
	s := Signal(n.numSignals)
	n.numSignals++
	return s
}

func (n *Netlist) checkSignal(s Signal) {
	if s < 0 || int32(s) >= n.numSignals {
		panic(fmt.Sprintf("logic: signal %d out of range (have %d)", s, n.numSignals))
	}
}

// Input declares a new primary input net with the given name.
func (n *Netlist) Input(name string) Signal {
	s := n.newSignal()
	n.inputs = append(n.inputs, s)
	n.setName(s, name)
	return s
}

// InputVec declares width primary inputs named name(0)..name(width-1),
// LSB first.
func (n *Netlist) InputVec(name string, width int) []Signal {
	v := make([]Signal, width)
	for i := range v {
		v[i] = n.Input(fmt.Sprintf("%s(%d)", name, i))
	}
	return v
}

// Name attaches a diagnostic name to an existing signal (used by the VCD
// and Verilog emitters). Later names override earlier ones.
func (n *Netlist) Name(s Signal, name string) {
	n.checkSignal(s)
	n.setName(s, name)
}

func (n *Netlist) setName(s Signal, name string) {
	if prev, ok := n.byName[name]; ok && prev != s {
		panic(fmt.Sprintf("logic: duplicate signal name %q", name))
	}
	n.names[s] = name
	n.byName[name] = s
}

// SignalByName looks a signal up by its diagnostic name.
func (n *Netlist) SignalByName(name string) (Signal, bool) {
	s, ok := n.byName[name]
	return s, ok
}

// NameOf returns the diagnostic name of s, or a generated placeholder.
func (n *Netlist) NameOf(s Signal) string {
	if name, ok := n.names[s]; ok {
		return name
	}
	return fmt.Sprintf("n%d", s)
}

func (n *Netlist) gate2(kind GateKind, a, b Signal) Signal {
	n.checkSignal(a)
	n.checkSignal(b)
	out := n.newSignal()
	n.gates = append(n.gates, Gate{Kind: kind, A: a, B: b, Out: out})
	return out
}

// AndGate adds a 2-input AND gate and returns its output net.
func (n *Netlist) AndGate(a, b Signal) Signal { return n.gate2(And, a, b) }

// OrGate adds a 2-input OR gate and returns its output net.
func (n *Netlist) OrGate(a, b Signal) Signal { return n.gate2(Or, a, b) }

// XorGate adds a 2-input XOR gate and returns its output net.
func (n *Netlist) XorGate(a, b Signal) Signal { return n.gate2(Xor, a, b) }

// NotGate adds an inverter and returns its output net.
func (n *Netlist) NotGate(a Signal) Signal {
	n.checkSignal(a)
	out := n.newSignal()
	n.gates = append(n.gates, Gate{Kind: Not, A: a, B: Const0, Out: out})
	return out
}

// BufGate adds a buffer and returns its output net.
func (n *Netlist) BufGate(a Signal) Signal {
	n.checkSignal(a)
	out := n.newSignal()
	n.gates = append(n.gates, Gate{Kind: Buf, A: a, B: Const0, Out: out})
	return out
}

// PatchGateInput rewires the A input of an existing gate. It exists to
// close feedback loops through flip-flops: allocate a buffer whose output
// feeds a DFF, build the downstream logic reading the DFF's Q, then patch
// the buffer's input to the real D net. Must be called before Compile or
// AnalyzeTiming.
func (n *Netlist) PatchGateInput(gateIndex int, a Signal) {
	if gateIndex < 0 || gateIndex >= len(n.gates) {
		panic(fmt.Sprintf("logic: gate index %d out of range", gateIndex))
	}
	n.checkSignal(a)
	n.gates[gateIndex].A = a
}

// FullAdder instantiates the canonical 5-gate full adder
// (2 XOR + 2 AND + 1 OR) and returns (sum, carry). This is the FA of
// Fig. 1; the census counts it both as a macro and as primitive gates.
func (n *Netlist) FullAdder(a, b, cin Signal) (sum, cout Signal) {
	axb := n.XorGate(a, b)
	sum = n.XorGate(axb, cin)
	and1 := n.AndGate(a, b)
	and2 := n.AndGate(axb, cin)
	cout = n.OrGate(and1, and2)
	n.fullAdders++
	return sum, cout
}

// HalfAdder instantiates the canonical 2-gate half adder (XOR + AND) and
// returns (sum, carry).
func (n *Netlist) HalfAdder(a, b Signal) (sum, cout Signal) {
	sum = n.XorGate(a, b)
	cout = n.AndGate(a, b)
	n.halfAdders++
	return sum, cout
}

// AddDFF adds an always-enabled D flip-flop with reset value init and
// returns its Q net.
func (n *Netlist) AddDFF(d Signal, init bits.Bit, name string) Signal {
	return n.AddDFFCE(d, Const1, init, name)
}

// AddDFFCE adds a D flip-flop gated by the clock-enable net ce.
func (n *Netlist) AddDFFCE(d, ce Signal, init bits.Bit, name string) Signal {
	return n.AddDFFFull(d, ce, Const0, init, name)
}

// AddDFFFull adds a D flip-flop with both a clock enable and a
// synchronous clear.
func (n *Netlist) AddDFFFull(d, ce, clr Signal, init bits.Bit, name string) Signal {
	n.checkSignal(d)
	n.checkSignal(ce)
	n.checkSignal(clr)
	if init > 1 {
		panic(fmt.Sprintf("logic: invalid DFF init %d", init))
	}
	q := n.newSignal()
	n.dffs = append(n.dffs, DFF{D: d, Q: q, CE: ce, CLR: clr, Init: init})
	if name != "" {
		n.setName(q, name)
	}
	return q
}

// Counts of netlist elements.

// NumSignals returns the number of nets, including the two constants.
func (n *Netlist) NumSignals() int { return int(n.numSignals) }

// NumGates returns the number of primitive gates.
func (n *Netlist) NumGates() int { return len(n.gates) }

// NumDFFs returns the number of flip-flops.
func (n *Netlist) NumDFFs() int { return len(n.dffs) }

// Inputs returns the primary input nets in declaration order.
func (n *Netlist) Inputs() []Signal { return append([]Signal(nil), n.inputs...) }

// MarkOutput declares s a primary output: analysis passes (technology
// mapping, timing) treat it as a live sink even if no flip-flop reads it.
func (n *Netlist) MarkOutput(s Signal, name string) {
	n.checkSignal(s)
	n.outputs = append(n.outputs, s)
	if name != "" {
		if prev, ok := n.byName[name]; !ok || prev != s {
			n.setName(s, name)
		}
	}
}

// Outputs returns the declared primary output nets.
func (n *Netlist) Outputs() []Signal { return append([]Signal(nil), n.outputs...) }

// Gates returns a copy of the gate list (for emitters and analyzers).
func (n *Netlist) Gates() []Gate { return append([]Gate(nil), n.gates...) }

// DFFs returns a copy of the flip-flop list.
func (n *Netlist) DFFs() []DFF { return append([]DFF(nil), n.dffs...) }

// Census tallies a netlist's primitive gates and macro cells — the
// quantities the paper reports for Fig. 2 ("(5l−3) XOR + (7l−7) AND +
// (4l−5) OR gates and 4l flip-flops").
type Census struct {
	And, Or, Xor, Not, Buf int
	DFF                    int
	FullAdders             int
	HalfAdders             int
}

// Census computes the gate census of the netlist.
func (n *Netlist) Census() Census {
	c := Census{
		DFF:        len(n.dffs),
		FullAdders: n.fullAdders,
		HalfAdders: n.halfAdders,
	}
	for _, g := range n.gates {
		switch g.Kind {
		case And:
			c.And++
		case Or:
			c.Or++
		case Xor:
			c.Xor++
		case Not:
			c.Not++
		case Buf:
			c.Buf++
		}
	}
	return c
}

// TotalGates returns the total primitive gate count.
func (c Census) TotalGates() int { return c.And + c.Or + c.Xor + c.Not + c.Buf }

// String renders the census in the paper's style.
func (c Census) String() string {
	return fmt.Sprintf("%d XOR + %d AND + %d OR + %d NOT + %d BUF gates, %d flip-flops (%d FA, %d HA macros)",
		c.Xor, c.And, c.Or, c.Not, c.Buf, c.DFF, c.FullAdders, c.HalfAdders)
}
