package logic

import (
	"fmt"

	"repro/internal/bits"
)

// Stuck-at fault simulation: the classic manufacturing-test model. A
// fault pins one net to a constant; a test set detects it when any
// observed output differs from the fault-free run. The reproduction uses
// this the way a hardware team would have on the paper's FPGA design —
// to grade test vectors for the systolic array and to demonstrate that
// ordinary multiplications propagate almost every cell defect to the
// RESULT bus (failure-injection testing).

// Fault is a single stuck-at fault site.
type Fault struct {
	Net     Signal
	StuckAt bits.Bit
}

// String renders the fault conventionally.
func (f Fault) String() string { return fmt.Sprintf("net %d stuck-at-%d", f.Net, f.StuckAt) }

// AllStuckAtFaults enumerates the full single-stuck-at fault list: every
// gate output and every flip-flop output, at 0 and at 1. (Primary inputs
// are excluded — they are the tester's own pins.)
func AllStuckAtFaults(n *Netlist) []Fault {
	var faults []Fault
	add := func(s Signal) {
		faults = append(faults, Fault{s, 0}, Fault{s, 1})
	}
	for _, g := range n.gates {
		add(g.Out)
	}
	for _, ff := range n.dffs {
		add(ff.Q)
	}
	return faults
}

// Force pins a net to a constant until Unforce: the simulator applies
// the override after every settle pass and every clock edge, so all
// fanout sees the faulty value. Forcing Const0/Const1 is rejected.
func (s *Sim) Force(sig Signal, v bits.Bit) {
	if v > 1 {
		panic(fmt.Sprintf("logic: invalid forced value %d", v))
	}
	s.n.checkSignal(sig)
	if sig == Const0 || sig == Const1 {
		panic("logic: cannot force a constant net")
	}
	if s.force == nil {
		s.force = map[Signal]bits.Bit{}
	}
	s.force[sig] = v
	s.settle()
}

// Unforce removes a pin override.
func (s *Sim) Unforce(sig Signal) {
	delete(s.force, sig)
	s.settle()
}

// ClearForces removes all overrides.
func (s *Sim) ClearForces() {
	s.force = nil
	s.settle()
}

// FaultReport summarizes a fault campaign.
type FaultReport struct {
	Total      int
	Detected   int
	Undetected []Fault
}

// Coverage returns the detected fraction (1.0 when Total is 0).
func (r FaultReport) Coverage() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.Total)
}

// String renders the summary.
func (r FaultReport) String() string {
	return fmt.Sprintf("%d/%d faults detected (%.1f%% coverage)",
		r.Detected, r.Total, 100*r.Coverage())
}

// RunFaultCampaign grades a test driver against a fault list. driver
// must reset-drive the simulator deterministically and return the
// observed responses (any per-run signature — typically sampled outputs
// per cycle). The fault-free signature is collected first; each fault is
// then injected and the signatures compared.
func RunFaultCampaign(n *Netlist, faults []Fault, driver func(s *Sim) []bits.Vec) (FaultReport, error) {
	sim, err := Compile(n)
	if err != nil {
		return FaultReport{}, err
	}
	golden := driver(sim)

	rep := FaultReport{Total: len(faults)}
	for _, f := range faults {
		sim.Reset()
		sim.ClearForces()
		sim.Force(f.Net, f.StuckAt)
		got := driver(sim)
		if signaturesDiffer(golden, got) {
			rep.Detected++
		} else {
			rep.Undetected = append(rep.Undetected, f)
		}
	}
	return rep, nil
}

func signaturesDiffer(a, b []bits.Vec) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if !bits.Equal(a[i], b[i]) {
			return true
		}
	}
	return false
}
