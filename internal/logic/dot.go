package logic

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT renders the netlist as a Graphviz digraph — the quick way to
// eyeball a generated cell or controller (dot -Tsvg). Inputs are boxes,
// gates are ellipses labelled with their kind, flip-flops are double
// circles; edges follow signal flow. Intended for small netlists (single
// cells, tiny controllers); it refuses anything above maxGates to keep
// the output viewable.
func WriteDOT(w io.Writer, n *Netlist, name string, maxGates int) error {
	if maxGates > 0 && len(n.gates) > maxGates {
		return fmt.Errorf("logic: netlist has %d gates, DOT cap is %d", len(n.gates), maxGates)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %q {\n  rankdir=LR;\n", name)

	node := func(s Signal) string { return fmt.Sprintf("n%d", s) }

	for _, in := range n.inputs {
		fmt.Fprintf(bw, "  %s [shape=box,label=%q];\n", node(in), n.NameOf(in))
	}
	fmt.Fprintf(bw, "  %s [shape=box,label=\"0\"];\n", node(Const0))
	fmt.Fprintf(bw, "  %s [shape=box,label=\"1\"];\n", node(Const1))

	for _, g := range n.gates {
		fmt.Fprintf(bw, "  %s [shape=ellipse,label=%q];\n", node(g.Out), g.Kind.String())
		for _, in := range gateInputs(g) {
			fmt.Fprintf(bw, "  %s -> %s;\n", node(in), node(g.Out))
		}
	}
	for _, ff := range n.dffs {
		fmt.Fprintf(bw, "  %s [shape=doublecircle,label=%q];\n", node(ff.Q), n.NameOf(ff.Q))
		fmt.Fprintf(bw, "  %s -> %s;\n", node(ff.D), node(ff.Q))
		if ff.CE != Const1 {
			fmt.Fprintf(bw, "  %s -> %s [style=dashed,label=\"ce\"];\n", node(ff.CE), node(ff.Q))
		}
		if ff.CLR != Const0 {
			fmt.Fprintf(bw, "  %s -> %s [style=dotted,label=\"clr\"];\n", node(ff.CLR), node(ff.Q))
		}
	}
	for _, out := range n.outputs {
		fmt.Fprintf(bw, "  out_%d [shape=box,label=%q,style=bold];\n", out, n.NameOf(out))
		fmt.Fprintf(bw, "  %s -> out_%d;\n", node(out), out)
	}
	fmt.Fprintf(bw, "}\n")
	return bw.Flush()
}
