package logic

import (
	"fmt"

	"repro/internal/bits"
)

// EventSim is an event-driven simulator for the same netlists Sim
// executes: instead of re-evaluating every gate each settle pass, it
// propagates only from nets whose values changed, the way production
// logic simulators work. On circuits with sparse switching activity
// (a systolic array mid-drain, an idle controller) this touches a small
// fraction of the gates per cycle.
//
// EventSim is behaviourally identical to Sim — the equivalence is
// property-tested on random netlists and on the full MMM circuit — and
// exists both as a faster engine for long simulations and as a
// cross-check that the levelized engine's semantics are right.
type EventSim struct {
	n      *Netlist
	vals   []bits.Bit
	level  []int32   // topological level per gate (for ordered processing)
	fanout [][]int32 // net -> consuming gate indices
	ffNext []bits.Bit
	cycle  int

	// event queue: gates pending evaluation, bucketed by level, with a
	// membership flag to deduplicate scheduling.
	pending  [][]int32
	inQueue  []bool
	maxLevel int32
}

// NewEventSim compiles a netlist for event-driven execution.
func NewEventSim(n *Netlist) (*EventSim, error) {
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	s := &EventSim{
		n:      n,
		vals:   make([]bits.Bit, n.numSignals),
		level:  make([]int32, len(n.gates)),
		fanout: make([][]int32, n.numSignals),
		ffNext: make([]bits.Bit, len(n.dffs)),
	}
	// Levels: longest path from sources, so a gate is evaluated only
	// after all its same-pass predecessors.
	netLevel := make([]int32, n.numSignals)
	for _, gi := range order {
		g := n.gates[gi]
		lv := int32(0)
		for _, in := range gateInputs(g) {
			if netLevel[in] > lv {
				lv = netLevel[in]
			}
		}
		s.level[gi] = lv
		netLevel[g.Out] = lv + 1
		if lv > s.maxLevel {
			s.maxLevel = lv
		}
	}
	for gi, g := range n.gates {
		for _, in := range gateInputs(g) {
			s.fanout[in] = append(s.fanout[in], int32(gi))
		}
	}
	s.pending = make([][]int32, s.maxLevel+1)
	s.inQueue = make([]bool, len(n.gates))
	s.Reset()
	return s, nil
}

// Reset restores initial state (DFF init values, inputs low) and settles.
func (s *EventSim) Reset() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	s.vals[Const1] = 1
	for _, ff := range s.n.dffs {
		s.vals[ff.Q] = ff.Init
	}
	s.cycle = 0
	// Full initial settle: schedule every gate once.
	for gi := range s.n.gates {
		if !s.inQueue[gi] {
			s.inQueue[gi] = true
			s.pending[s.level[gi]] = append(s.pending[s.level[gi]], int32(gi))
		}
	}
	s.drain()
}

// Cycle returns the clock edges since Reset.
func (s *EventSim) Cycle() int { return s.cycle }

// Get reads a settled net value.
func (s *EventSim) Get(sig Signal) bits.Bit {
	s.n.checkSignal(sig)
	return s.vals[sig]
}

// GetVec reads a vector of nets LSB-first.
func (s *EventSim) GetVec(sigs []Signal) bits.Vec {
	v := make(bits.Vec, len(sigs))
	for i, sig := range sigs {
		v[i] = s.Get(sig)
	}
	return v
}

// Set drives an input and propagates the change.
func (s *EventSim) Set(in Signal, v bits.Bit) {
	if v > 1 {
		panic(fmt.Sprintf("logic: invalid input value %d", v))
	}
	s.n.checkSignal(in)
	if s.vals[in] == v {
		return
	}
	s.vals[in] = v
	s.touch(in)
	s.drain()
}

// SetMany drives several inputs with one propagation pass.
func (s *EventSim) SetMany(ins []Signal, vs []bits.Bit) {
	if len(ins) != len(vs) {
		panic("logic: SetMany length mismatch")
	}
	any := false
	for i, in := range ins {
		if vs[i] > 1 {
			panic(fmt.Sprintf("logic: invalid input value %d", vs[i]))
		}
		s.n.checkSignal(in)
		if s.vals[in] != vs[i] {
			s.vals[in] = vs[i]
			s.touch(in)
			any = true
		}
	}
	if any {
		s.drain()
	}
}

// Step advances one clock edge: capture all DFF inputs, commit, then
// propagate only from flip-flops whose outputs actually changed.
func (s *EventSim) Step() {
	for i, ff := range s.n.dffs {
		switch {
		case s.vals[ff.CLR] == 1:
			s.ffNext[i] = ff.Init
		case s.vals[ff.CE] == 1:
			s.ffNext[i] = s.vals[ff.D]
		default:
			s.ffNext[i] = s.vals[ff.Q]
		}
	}
	any := false
	for i, ff := range s.n.dffs {
		if s.vals[ff.Q] != s.ffNext[i] {
			s.vals[ff.Q] = s.ffNext[i]
			s.touch(ff.Q)
			any = true
		}
	}
	s.cycle++
	if any {
		s.drain()
	}
}

// touch schedules every consumer of a changed net.
func (s *EventSim) touch(sig Signal) {
	for _, gi := range s.fanout[sig] {
		if !s.inQueue[gi] {
			s.inQueue[gi] = true
			s.pending[s.level[gi]] = append(s.pending[s.level[gi]], gi)
		}
	}
}

// drain processes pending gates level by level; gates whose output does
// not change schedule nothing further. Scheduling only ever targets
// levels at or above the one being drained (fanout goes forward), so a
// single sweep suffices.
func (s *EventSim) drain() {
	for lv := int32(0); lv <= s.maxLevel; lv++ {
		bucket := s.pending[lv]
		if len(bucket) == 0 {
			continue
		}
		s.pending[lv] = bucket[:0]
		for _, gi := range bucket {
			s.inQueue[gi] = false
			g := &s.n.gates[gi]
			a := s.vals[g.A]
			var out bits.Bit
			switch g.Kind {
			case And:
				out = a & s.vals[g.B]
			case Or:
				out = a | s.vals[g.B]
			case Xor:
				out = a ^ s.vals[g.B]
			case Not:
				out = a ^ 1
			case Buf:
				out = a
			}
			if out != s.vals[g.Out] {
				s.vals[g.Out] = out
				s.touch(g.Out)
			}
		}
	}
}
