package logic

import (
	"errors"
	"fmt"

	"repro/internal/bits"
)

// Sim executes a compiled netlist cycle by cycle. Between clock edges all
// combinational gates are evaluated once in topological (levelized)
// order; Step then commits every flip-flop simultaneously, modelling a
// single global clock edge.
type Sim struct {
	n      *Netlist
	order  []int // gate indices in topological order
	vals   []bits.Bit
	ffNext []bits.Bit // scratch for the two-phase DFF commit
	cycle  int

	// force holds stuck-at overrides (see Force in faults.go); applied
	// after every settle pass and every clock edge.
	force map[Signal]bits.Bit
}

// ErrCombinationalLoop is returned by Compile when the gate graph is
// cyclic without an intervening flip-flop.
var ErrCombinationalLoop = errors.New("logic: combinational loop")

// Compile levelizes the netlist and returns a simulator with all
// flip-flops in their reset state and all inputs low.
func Compile(n *Netlist) (*Sim, error) {
	order, err := levelize(n)
	if err != nil {
		return nil, err
	}
	s := &Sim{
		n:      n,
		order:  order,
		vals:   make([]bits.Bit, n.numSignals),
		ffNext: make([]bits.Bit, len(n.dffs)),
	}
	s.Reset()
	return s, nil
}

// TopoGates returns gate indices in dependency order — the same
// levelization Compile uses. Exported for analysis passes (technology
// mapping, timing) that walk the combinational graph.
func TopoGates(n *Netlist) ([]int, error) { return levelize(n) }

// GateInputs returns the input nets a gate actually reads (one for
// Not/Buf, two otherwise).
func GateInputs(g Gate) []Signal { return gateInputs(g) }

// levelize returns gate indices in dependency order. DFF Q outputs and
// primary inputs are sources; an edge runs from each gate input net to
// the gate. Kahn's algorithm; leftover gates indicate a loop.
func levelize(n *Netlist) ([]int, error) {
	// driverGate[s] = index of the gate driving net s, or -1.
	driverGate := make([]int, n.numSignals)
	for i := range driverGate {
		driverGate[i] = -1
	}
	for gi, g := range n.gates {
		if driverGate[g.Out] != -1 {
			return nil, fmt.Errorf("logic: net %s has multiple drivers", n.NameOf(g.Out))
		}
		driverGate[g.Out] = gi
	}
	for _, ff := range n.dffs {
		if driverGate[ff.Q] != -1 {
			return nil, fmt.Errorf("logic: net %s driven by both gate and DFF", n.NameOf(ff.Q))
		}
	}

	indeg := make([]int, len(n.gates))
	dependents := make([][]int32, len(n.gates)) // gate -> gates reading its output
	for gi, g := range n.gates {
		for _, in := range gateInputs(g) {
			if d := driverGate[in]; d != -1 {
				indeg[gi]++
				dependents[d] = append(dependents[d], int32(gi))
			}
		}
	}
	queue := make([]int, 0, len(n.gates))
	for gi, d := range indeg {
		if d == 0 {
			queue = append(queue, gi)
		}
	}
	order := make([]int, 0, len(n.gates))
	for len(queue) > 0 {
		gi := queue[0]
		queue = queue[1:]
		order = append(order, gi)
		for _, dep := range dependents[gi] {
			indeg[dep]--
			if indeg[dep] == 0 {
				queue = append(queue, int(dep))
			}
		}
	}
	if len(order) != len(n.gates) {
		return nil, ErrCombinationalLoop
	}
	return order, nil
}

func gateInputs(g Gate) []Signal {
	if g.Kind == Not || g.Kind == Buf {
		return []Signal{g.A}
	}
	return []Signal{g.A, g.B}
}

// Reset returns every flip-flop to its init value, zeroes the inputs and
// re-settles the combinational logic. The cycle counter restarts at 0.
func (s *Sim) Reset() {
	for i := range s.vals {
		s.vals[i] = 0
	}
	s.vals[Const1] = 1
	for _, ff := range s.n.dffs {
		s.vals[ff.Q] = ff.Init
	}
	s.cycle = 0
	s.settle()
}

// Cycle returns the number of clock edges since Reset.
func (s *Sim) Cycle() int { return s.cycle }

// Set drives a primary input net and re-settles the combinational logic.
func (s *Sim) Set(in Signal, v bits.Bit) {
	if v > 1 {
		panic(fmt.Sprintf("logic: invalid input value %d", v))
	}
	s.n.checkSignal(in)
	s.vals[in] = v
	s.settle()
}

// SetMany drives several inputs at once with a single settle pass.
func (s *Sim) SetMany(ins []Signal, vs []bits.Bit) {
	if len(ins) != len(vs) {
		panic("logic: SetMany length mismatch")
	}
	for i, in := range ins {
		if vs[i] > 1 {
			panic(fmt.Sprintf("logic: invalid input value %d", vs[i]))
		}
		s.n.checkSignal(in)
		s.vals[in] = vs[i]
	}
	s.settle()
}

// Get reads the settled value of any net.
func (s *Sim) Get(sig Signal) bits.Bit {
	s.n.checkSignal(sig)
	return s.vals[sig]
}

// GetVec reads a vector of nets LSB-first.
func (s *Sim) GetVec(sigs []Signal) bits.Vec {
	v := make(bits.Vec, len(sigs))
	for i, sig := range sigs {
		v[i] = s.Get(sig)
	}
	return v
}

// Step advances one clock edge: flip-flops capture their (already
// settled) D inputs simultaneously, then combinational logic re-settles.
func (s *Sim) Step() {
	// Capture first, commit second: D, CE and CLR values must be pre-edge.
	for i, ff := range s.n.dffs {
		switch {
		case s.vals[ff.CLR] == 1:
			s.ffNext[i] = ff.Init
		case s.vals[ff.CE] == 1:
			s.ffNext[i] = s.vals[ff.D]
		default:
			s.ffNext[i] = s.vals[ff.Q]
		}
	}
	for i, ff := range s.n.dffs {
		s.vals[ff.Q] = s.ffNext[i]
	}
	s.cycle++
	s.settle()
}

// settle evaluates every gate once in topological order, honouring any
// stuck-at overrides.
func (s *Sim) settle() {
	if len(s.force) == 0 {
		s.settleFast()
		return
	}
	for sig, v := range s.force {
		s.vals[sig] = v
	}
	for _, gi := range s.order {
		g := &s.n.gates[gi]
		if _, forced := s.force[g.Out]; forced {
			continue
		}
		a := s.vals[g.A]
		switch g.Kind {
		case And:
			s.vals[g.Out] = a & s.vals[g.B]
		case Or:
			s.vals[g.Out] = a | s.vals[g.B]
		case Xor:
			s.vals[g.Out] = a ^ s.vals[g.B]
		case Not:
			s.vals[g.Out] = a ^ 1
		case Buf:
			s.vals[g.Out] = a
		}
	}
}

// settleFast is the force-free hot path.
func (s *Sim) settleFast() {
	for _, gi := range s.order {
		g := &s.n.gates[gi]
		a := s.vals[g.A]
		switch g.Kind {
		case And:
			s.vals[g.Out] = a & s.vals[g.B]
		case Or:
			s.vals[g.Out] = a | s.vals[g.B]
		case Xor:
			s.vals[g.Out] = a ^ s.vals[g.B]
		case Not:
			s.vals[g.Out] = a ^ 1
		case Buf:
			s.vals[g.Out] = a
		}
	}
}
