package logic

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
)

// randomNetlist builds a random DAG of gates and flip-flops for
// differential testing between the two engines.
func randomNetlist(rng *rand.Rand, nInputs, nGates, nFFs int) (*Netlist, []Signal, []Signal) {
	n := New()
	pool := []Signal{Const0, Const1}
	ins := n.InputVec("in", nInputs)
	pool = append(pool, ins...)

	// Flip-flops first (feedback allowed: their D binds later).
	ffQ := make([]Signal, nFFs)
	ffSet := make([]func(Signal), nFFs)
	for i := 0; i < nFFs; i++ {
		ffQ[i], ffSet[i] = n.FeedbackFF(Const0, bits.Bit(rng.Intn(2)), "")
		pool = append(pool, ffQ[i])
	}
	for i := 0; i < nGates; i++ {
		a := pool[rng.Intn(len(pool))]
		b := pool[rng.Intn(len(pool))]
		var out Signal
		switch rng.Intn(5) {
		case 0:
			out = n.AndGate(a, b)
		case 1:
			out = n.OrGate(a, b)
		case 2:
			out = n.XorGate(a, b)
		case 3:
			out = n.NotGate(a)
		default:
			out = n.BufGate(a)
		}
		pool = append(pool, out)
	}
	for i := 0; i < nFFs; i++ {
		ffSet[i](pool[rng.Intn(len(pool))])
	}
	// Observe a sample of nets.
	var watch []Signal
	for i := 0; i < 16; i++ {
		watch = append(watch, pool[rng.Intn(len(pool))])
	}
	watch = append(watch, ffQ...)
	return n, ins, watch
}

// Differential test: the event-driven engine must match the levelized
// engine net-for-net over random circuits and random stimulus.
func TestEventSimMatchesLevelized(t *testing.T) {
	rng := rand.New(rand.NewSource(231))
	for trial := 0; trial < 20; trial++ {
		n, ins, watch := randomNetlist(rng, 6, 60, 10)
		lev, err := Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEventSim(n)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 50; step++ {
			vec := make(bits.Vec, len(ins))
			for i := range vec {
				vec[i] = bits.Bit(rng.Intn(2))
			}
			lev.SetMany(ins, vec)
			ev.SetMany(ins, vec)
			for _, s := range watch {
				if lev.Get(s) != ev.Get(s) {
					t.Fatalf("trial %d step %d: net %d differs (lev=%d ev=%d)",
						trial, step, s, lev.Get(s), ev.Get(s))
				}
			}
			lev.Step()
			ev.Step()
		}
		if lev.Cycle() != ev.Cycle() {
			t.Fatal("cycle counters diverged")
		}
	}
}

func TestEventSimResetAndValidation(t *testing.T) {
	n := New()
	a := n.Input("a")
	q := n.AddDFF(a, 1, "q")
	ev, err := NewEventSim(n)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Get(q) != 1 {
		t.Fatal("init value wrong")
	}
	ev.Set(a, 1)
	ev.Step()
	if ev.Get(q) != 1 {
		t.Fatal("capture wrong")
	}
	ev.Set(a, 0)
	ev.Step()
	if ev.Get(q) != 0 {
		t.Fatal("capture wrong after change")
	}
	ev.Reset()
	if ev.Get(q) != 1 || ev.Cycle() != 0 {
		t.Fatal("Reset incomplete")
	}
	if got := ev.GetVec([]Signal{a, q}); got.Uint64() != 0b10 {
		t.Fatalf("GetVec = %v", got)
	}
	for name, f := range map[string]func(){
		"Set invalid":     func() { ev.Set(a, 2) },
		"SetMany lengths": func() { ev.SetMany([]Signal{a}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEventSimRejectsLoops(t *testing.T) {
	n := New()
	a := n.Input("a")
	x1 := n.AndGate(a, a)
	n.PatchGateInput(0, x1)
	if _, err := NewEventSim(n); err == nil {
		t.Error("combinational loop accepted")
	}
}
