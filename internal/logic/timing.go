package logic

import "fmt"

// DelayModel assigns a propagation delay to each gate kind, in
// nanoseconds. The paper expresses its critical path in units of
// T_FA(cin→cout) and T_HA(cin→cout); with the canonical 5-gate FA those
// correspond to one AND+OR level and one AND level respectively, so a
// DelayModel fixes the conversion to absolute time.
type DelayModel struct {
	And, Or, Xor, Not, Buf float64
}

// UnitDelays counts every gate as one delay unit — useful for expressing
// paths in "gate levels", independent of technology.
var UnitDelays = DelayModel{And: 1, Or: 1, Xor: 1, Not: 1, Buf: 0}

// Delay returns the model's delay for one gate kind.
func (d DelayModel) Delay(k GateKind) float64 {
	switch k {
	case And:
		return d.And
	case Or:
		return d.Or
	case Xor:
		return d.Xor
	case Not:
		return d.Not
	case Buf:
		return d.Buf
	default:
		panic(fmt.Sprintf("logic: unknown gate kind %d", k))
	}
}

// FACarryDelay returns T_FA(cin→cout) under the model: in the canonical
// full adder the carry-in passes one AND and one OR.
func (d DelayModel) FACarryDelay() float64 { return d.And + d.Or }

// HACarryDelay returns T_HA(in→cout): a single AND.
func (d DelayModel) HACarryDelay() float64 { return d.And }

// TimingReport is the result of static timing analysis over one netlist.
type TimingReport struct {
	// CriticalDelay is the longest register-to-register (or input-to-
	// register, or register-to-output) combinational delay.
	CriticalDelay float64
	// CriticalLevels is the gate count along that path.
	CriticalLevels int
	// Path lists the nets along the critical path, source to sink.
	Path []Signal
}

// AnalyzeTiming performs longest-path static timing analysis. Sources are
// primary inputs, constants and DFF Q pins (all at arrival time 0); sinks
// are DFF D pins and the extra sink nets supplied by the caller (e.g.
// primary outputs). The netlist must be acyclic (Compile validates this;
// AnalyzeTiming performs its own levelization and returns the same error
// for loops).
func AnalyzeTiming(n *Netlist, d DelayModel, sinks ...Signal) (TimingReport, error) {
	order, err := levelize(n)
	if err != nil {
		return TimingReport{}, err
	}

	arrival := make([]float64, n.numSignals)
	levels := make([]int, n.numSignals)
	from := make([]Signal, n.numSignals) // predecessor net on the longest path
	for i := range from {
		from[i] = -1
	}

	for _, gi := range order {
		g := &n.gates[gi]
		bestT, bestL, bestFrom := arrival[g.A], levels[g.A], g.A
		if g.Kind != Not && g.Kind != Buf {
			if arrival[g.B] > bestT || (arrival[g.B] == bestT && levels[g.B] > bestL) {
				bestT, bestL, bestFrom = arrival[g.B], levels[g.B], g.B
			}
		}
		arrival[g.Out] = bestT + d.Delay(g.Kind)
		levels[g.Out] = bestL + 1
		from[g.Out] = bestFrom
	}

	var rep TimingReport
	worst := Signal(-1)
	consider := func(s Signal) {
		if arrival[s] > rep.CriticalDelay ||
			(arrival[s] == rep.CriticalDelay && levels[s] > rep.CriticalLevels) {
			rep.CriticalDelay = arrival[s]
			rep.CriticalLevels = levels[s]
			worst = s
		}
	}
	for _, ff := range n.dffs {
		consider(ff.D)
		consider(ff.CE)
		consider(ff.CLR)
	}
	for _, s := range n.outputs {
		consider(s)
	}
	for _, s := range sinks {
		n.checkSignal(s)
		consider(s)
	}
	if worst >= 0 {
		for s := worst; s >= 0; s = from[s] {
			rep.Path = append(rep.Path, s)
		}
		// reverse to source→sink order
		for i, j := 0, len(rep.Path)-1; i < j; i, j = i+1, j-1 {
			rep.Path[i], rep.Path[j] = rep.Path[j], rep.Path[i]
		}
	}
	return rep, nil
}
