package logic

import (
	"strings"
	"testing"

	"repro/internal/bits"
)

func TestForceBasics(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	x := n.AndGate(a, b)
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMany([]Signal{a, b}, bits.Vec{1, 1})
	if s.Get(x) != 1 {
		t.Fatal("sanity")
	}
	s.Force(x, 0)
	if s.Get(x) != 0 {
		t.Fatal("force ineffective")
	}
	s.Unforce(x)
	if s.Get(x) != 1 {
		t.Fatal("unforce ineffective")
	}
	s.Force(x, 0)
	s.ClearForces()
	if s.Get(x) != 1 {
		t.Fatal("ClearForces ineffective")
	}
}

func TestForcePropagatesDownstream(t *testing.T) {
	n := New()
	a := n.Input("a")
	x := n.NotGate(a) // x = !a
	y := n.NotGate(x) // y = a
	q := n.AddDFF(y, 0, "q")
	s, _ := Compile(n)
	s.Set(a, 1)
	s.Force(x, 1) // stuck-at-1 although !a = 0
	if s.Get(y) != 0 {
		t.Fatal("downstream gate did not see forced value")
	}
	s.Step()
	if s.Get(q) != 0 {
		t.Fatal("flip-flop did not capture faulty value")
	}
}

func TestForceOnFFOutput(t *testing.T) {
	n := New()
	a := n.Input("a")
	q := n.AddDFF(a, 0, "q")
	s, _ := Compile(n)
	s.Set(a, 1)
	s.Force(q, 0)
	s.Step() // would capture 1, but stuck at 0
	if s.Get(q) != 0 {
		t.Fatal("FF output force ineffective across edges")
	}
}

func TestForceValidation(t *testing.T) {
	n := New()
	a := n.Input("a")
	s, _ := Compile(n)
	for name, f := range map[string]func(){
		"invalid value": func() { s.Force(a, 2) },
		"const net":     func() { s.Force(Const1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAllStuckAtFaults(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	x := n.AndGate(a, b)
	n.AddDFF(x, 0, "q")
	faults := AllStuckAtFaults(n)
	// 1 gate + 1 FF, two polarities each.
	if len(faults) != 4 {
		t.Fatalf("%d faults, want 4", len(faults))
	}
	if !strings.Contains(faults[0].String(), "stuck-at-0") {
		t.Errorf("fault String: %s", faults[0])
	}
}

// Exhaustive vectors on a full adder must detect every stuck-at fault —
// the adder is fully testable.
func TestFaultCampaignFullAdderComplete(t *testing.T) {
	n := New()
	in := n.InputVec("in", 3)
	sum, cout := n.FullAdder(in[0], in[1], in[2])
	n.MarkOutput(sum, "sum")
	n.MarkOutput(cout, "cout")

	driver := func(s *Sim) []bits.Vec {
		var obs []bits.Vec
		for v := 0; v < 8; v++ {
			s.SetMany(in, bits.Vec{bits.Bit(v & 1), bits.Bit(v >> 1 & 1), bits.Bit(v >> 2 & 1)})
			obs = append(obs, bits.Vec{s.Get(sum), s.Get(cout)})
		}
		return obs
	}
	rep, err := RunFaultCampaign(n, AllStuckAtFaults(n), driver)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage() != 1.0 {
		t.Fatalf("full adder not fully covered: %s (undetected: %v)", rep, rep.Undetected)
	}
	if !strings.Contains(rep.String(), "100.0%") {
		t.Errorf("report string: %s", rep)
	}
}

// A fault on a net that never influences the outputs must go undetected
// (negative control for the campaign machinery).
func TestFaultCampaignUndetectable(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	x := n.AndGate(a, b)
	n.XorGate(a, b) // dangling gate, unobserved
	n.MarkOutput(x, "x")
	driver := func(s *Sim) []bits.Vec {
		s.SetMany([]Signal{a, b}, bits.Vec{1, 1})
		return []bits.Vec{{s.Get(x)}}
	}
	rep, err := RunFaultCampaign(n, AllStuckAtFaults(n), driver)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Undetected) < 2 {
		t.Fatalf("dangling-gate faults should be undetectable: %s", rep)
	}
	if rep.Coverage() >= 1.0 {
		t.Fatal("coverage should be below 100%")
	}
}

func TestFaultReportEmpty(t *testing.T) {
	r := FaultReport{}
	if r.Coverage() != 1 {
		t.Error("empty campaign coverage != 1")
	}
}
