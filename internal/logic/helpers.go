package logic

import (
	"fmt"

	"repro/internal/bits"
)

// Structural building blocks shared by the MMM circuit and the
// exponentiator: multiplexers, balanced reduction trees, comparators,
// prefix networks and deferred-binding flip-flops.

// Mux2 builds sel ? a : b (2 AND + 1 OR + 1 NOT).
func (n *Netlist) Mux2(sel, a, b Signal) Signal {
	return n.OrGate(n.AndGate(sel, a), n.AndGate(n.NotGate(sel), b))
}

// AndTree reduces terms with a balanced tree of AND gates (Const1 for an
// empty list).
func (n *Netlist) AndTree(terms []Signal) Signal {
	return n.reduceTree(terms, Const1, n.AndGate)
}

// OrTree reduces terms with a balanced tree of OR gates (Const0 for an
// empty list).
func (n *Netlist) OrTree(terms []Signal) Signal {
	return n.reduceTree(terms, Const0, n.OrGate)
}

func (n *Netlist) reduceTree(terms []Signal, empty Signal, op func(a, b Signal) Signal) Signal {
	if len(terms) == 0 {
		return empty
	}
	work := append([]Signal(nil), terms...)
	for len(work) > 1 {
		next := make([]Signal, 0, (len(work)+1)/2)
		for i := 0; i+1 < len(work); i += 2 {
			next = append(next, op(work[i], work[i+1]))
		}
		if len(work)%2 == 1 {
			next = append(next, work[len(work)-1])
		}
		work = next
	}
	return work[0]
}

// EqualsConst builds a comparator asserting when the bus equals k
// (balanced AND tree, logarithmic depth).
func (n *Netlist) EqualsConst(bus []Signal, k int) Signal {
	if k >= 1<<len(bus) {
		panic(fmt.Sprintf("logic: comparator constant %d exceeds %d-bit bus", k, len(bus)))
	}
	terms := make([]Signal, len(bus))
	for i, s := range bus {
		if (k>>i)&1 == 1 {
			terms[i] = s
		} else {
			terms[i] = n.NotGate(s)
		}
	}
	return n.AndTree(terms)
}

// IsZero asserts when every bus bit is low.
func (n *Netlist) IsZero(bus []Signal) Signal {
	return n.NotGate(n.OrTree(bus))
}

// PrefixAnds returns p[i] = bus[0] & … & bus[i] via a Kogge–Stone
// parallel-prefix network (logarithmic depth).
func (n *Netlist) PrefixAnds(bus []Signal) []Signal {
	p := append([]Signal(nil), bus...)
	for stride := 1; stride < len(p); stride *= 2 {
		next := append([]Signal(nil), p...)
		for i := stride; i < len(p); i++ {
			next[i] = n.AndGate(p[i], p[i-stride])
		}
		p = next
	}
	return p
}

// IncrementLogic returns the combinational successor of the bus value
// (carry-lookahead via PrefixAnds; the final carry out is dropped).
func (n *Netlist) IncrementLogic(bus []Signal) []Signal {
	prefix := n.PrefixAnds(bus)
	out := make([]Signal, len(bus))
	for i := range bus {
		carry := Const1
		if i > 0 {
			carry = prefix[i-1]
		}
		out[i] = n.XorGate(bus[i], carry)
	}
	return out
}

// DecrementLogic returns the combinational predecessor of the bus value:
// bit i flips when all lower bits are zero.
func (n *Netlist) DecrementLogic(bus []Signal) []Signal {
	inv := make([]Signal, len(bus))
	for i, s := range bus {
		inv[i] = n.NotGate(s)
	}
	prefix := n.PrefixAnds(inv)
	out := make([]Signal, len(bus))
	for i := range bus {
		borrow := Const1
		if i > 0 {
			borrow = prefix[i-1]
		}
		out[i] = n.XorGate(bus[i], borrow)
	}
	return out
}

// FeedbackFF allocates a flip-flop whose D net is bound after downstream
// logic exists (for nets that depend on this flip-flop's own Q). The
// returned setter must be called exactly once.
func (n *Netlist) FeedbackFF(clr Signal, init bits.Bit, name string) (Signal, func(Signal)) {
	buf := n.BufGate(Const0)
	gi := n.NumGates() - 1
	q := n.AddDFFFull(buf, Const1, clr, init, name)
	bound := false
	return q, func(d Signal) {
		if bound {
			panic(fmt.Sprintf("logic: D of %s bound twice", name))
		}
		bound = true
		n.PatchGateInput(gi, d)
	}
}
