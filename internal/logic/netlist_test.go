package logic

import (
	"strings"
	"testing"

	"repro/internal/bits"
)

func TestGateKindString(t *testing.T) {
	cases := map[GateKind]string{And: "AND", Or: "OR", Xor: "XOR", Not: "NOT", Buf: "BUF"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if !strings.Contains(GateKind(99).String(), "99") {
		t.Error("unknown kind String")
	}
}

func TestConstants(t *testing.T) {
	n := New()
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if s.Get(Const0) != 0 || s.Get(Const1) != 1 {
		t.Fatal("constants wrong")
	}
	s.Step()
	if s.Get(Const1) != 1 {
		t.Fatal("Const1 lost after Step")
	}
}

func TestPrimitiveGateTruthTables(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	and := n.AndGate(a, b)
	or := n.OrGate(a, b)
	xor := n.XorGate(a, b)
	not := n.NotGate(a)
	buf := n.BufGate(a)
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for av := bits.Bit(0); av <= 1; av++ {
		for bv := bits.Bit(0); bv <= 1; bv++ {
			s.SetMany([]Signal{a, b}, []bits.Bit{av, bv})
			if s.Get(and) != av&bv {
				t.Errorf("AND(%d,%d) = %d", av, bv, s.Get(and))
			}
			if s.Get(or) != av|bv {
				t.Errorf("OR(%d,%d) = %d", av, bv, s.Get(or))
			}
			if s.Get(xor) != av^bv {
				t.Errorf("XOR(%d,%d) = %d", av, bv, s.Get(xor))
			}
			if s.Get(not) != av^1 {
				t.Errorf("NOT(%d) = %d", av, s.Get(not))
			}
			if s.Get(buf) != av {
				t.Errorf("BUF(%d) = %d", av, s.Get(buf))
			}
		}
	}
}

// The gate-level full adder must agree with the behavioural one on all
// eight input combinations, and the half adder on all four.
func TestAdderMacrosExhaustive(t *testing.T) {
	n := New()
	a, b, cin := n.Input("a"), n.Input("b"), n.Input("cin")
	fs, fc := n.FullAdder(a, b, cin)
	hs, hc := n.HalfAdder(a, b)
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for av := bits.Bit(0); av <= 1; av++ {
		for bv := bits.Bit(0); bv <= 1; bv++ {
			for cv := bits.Bit(0); cv <= 1; cv++ {
				s.SetMany([]Signal{a, b, cin}, []bits.Bit{av, bv, cv})
				wantS, wantC := bits.FullAdd(av, bv, cv)
				if s.Get(fs) != wantS || s.Get(fc) != wantC {
					t.Errorf("FA(%d,%d,%d) = %d,%d want %d,%d",
						av, bv, cv, s.Get(fs), s.Get(fc), wantS, wantC)
				}
				hwS, hwC := bits.HalfAdd(av, bv)
				if s.Get(hs) != hwS || s.Get(hc) != hwC {
					t.Errorf("HA(%d,%d) = %d,%d", av, bv, s.Get(hs), s.Get(hc))
				}
			}
		}
	}
}

func TestCensus(t *testing.T) {
	n := New()
	a, b, c := n.Input("a"), n.Input("b"), n.Input("c")
	n.FullAdder(a, b, c) // 2 XOR + 2 AND + 1 OR
	n.HalfAdder(a, b)    // 1 XOR + 1 AND
	n.NotGate(a)
	n.BufGate(b)
	n.AddDFF(c, 0, "q")
	got := n.Census()
	want := Census{And: 3, Or: 1, Xor: 3, Not: 1, Buf: 1, DFF: 1, FullAdders: 1, HalfAdders: 1}
	if got != want {
		t.Fatalf("Census = %+v, want %+v", got, want)
	}
	if got.TotalGates() != 9 {
		t.Errorf("TotalGates = %d", got.TotalGates())
	}
	if !strings.Contains(got.String(), "3 XOR + 3 AND + 1 OR") {
		t.Errorf("Census.String = %q", got.String())
	}
}

// A DFF chain must shift one position per Step and honour init values.
func TestDFFShiftRegister(t *testing.T) {
	n := New()
	in := n.Input("in")
	q1 := n.AddDFF(in, 0, "q1")
	q2 := n.AddDFF(q1, 1, "q2")
	q3 := n.AddDFF(q2, 0, "q3")
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	// init: q1=0 q2=1 q3=0
	if s.Get(q1) != 0 || s.Get(q2) != 1 || s.Get(q3) != 0 {
		t.Fatal("init values wrong")
	}
	s.Set(in, 1)
	s.Step() // q1=1 q2=0 q3=1
	if s.Get(q1) != 1 || s.Get(q2) != 0 || s.Get(q3) != 1 {
		t.Fatalf("after step 1: %d %d %d", s.Get(q1), s.Get(q2), s.Get(q3))
	}
	s.Set(in, 0)
	s.Step() // q1=0 q2=1 q3=0
	if s.Get(q1) != 0 || s.Get(q2) != 1 || s.Get(q3) != 0 {
		t.Fatal("after step 2 wrong")
	}
	if s.Cycle() != 2 {
		t.Errorf("Cycle = %d", s.Cycle())
	}
	s.Reset()
	if s.Get(q2) != 1 || s.Cycle() != 0 {
		t.Error("Reset did not restore init state")
	}
}

// Two cross-coupled DFFs (a toggling pair) exercise the simultaneous
// commit: values must swap, not smear.
func TestDFFSimultaneousCommit(t *testing.T) {
	n := New()
	// q1 <- q2, q2 <- q1, initialized to different values.
	// Build with a placeholder input then rewire via gates: feed q2 into
	// d1 using a Buf so declaration order doesn't matter.
	q2Probe := n.Input("placeholder") // will be ignored
	_ = q2Probe
	// Declare DFFs with temporary D, then we cannot rewire; instead use
	// the idiom of creating DFFs whose D nets are created after: not
	// supported. Swap via XOR trick instead:
	// q1' = q2 requires q2 to exist first:
	d1 := n.Input("d1seed")
	q1 := n.AddDFF(d1, 0, "q1")
	q2 := n.AddDFF(q1, 1, "q2")
	// Close the loop approximately: drive d1 from q2 via a Buf is not
	// possible post-hoc, so emulate one exchange step manually.
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	s.Set(d1, s.Get(q2)) // d1 = q2 = 1
	s.Step()
	if s.Get(q1) != 1 || s.Get(q2) != 0 {
		t.Fatalf("swap failed: q1=%d q2=%d", s.Get(q1), s.Get(q2))
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	n := New()
	a := n.Input("a")
	// Create a loop through two gates by abusing signal numbering:
	// gate1 reads gate2's output before it exists — construct manually.
	g1out := n.newSignal()
	g2out := n.newSignal()
	n.gates = append(n.gates,
		Gate{Kind: And, A: a, B: g2out, Out: g1out},
		Gate{Kind: Or, A: g1out, B: a, Out: g2out},
	)
	if _, err := Compile(n); err != ErrCombinationalLoop {
		t.Fatalf("Compile err = %v, want loop", err)
	}
	if _, err := AnalyzeTiming(n, UnitDelays); err != ErrCombinationalLoop {
		t.Fatalf("AnalyzeTiming err = %v, want loop", err)
	}
}

func TestMultipleDriversDetected(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	out := n.AndGate(a, b)
	n.gates = append(n.gates, Gate{Kind: Or, A: a, B: b, Out: out})
	if _, err := Compile(n); err == nil {
		t.Fatal("multiple drivers not detected")
	}
}

func TestNames(t *testing.T) {
	n := New()
	a := n.Input("a")
	x := n.AndGate(a, a)
	n.Name(x, "result")
	if got, ok := n.SignalByName("result"); !ok || got != x {
		t.Error("SignalByName failed")
	}
	if n.NameOf(x) != "result" {
		t.Errorf("NameOf = %q", n.NameOf(x))
	}
	y := n.OrGate(a, a)
	if !strings.HasPrefix(n.NameOf(y), "n") {
		t.Errorf("placeholder name = %q", n.NameOf(y))
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate name did not panic")
		}
	}()
	n.Name(y, "result")
}

func TestInputVecAndGetVec(t *testing.T) {
	n := New()
	v := n.InputVec("x", 4)
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	s.SetMany(v, bits.FromUint64(0b1010, 4))
	if got := s.GetVec(v).Uint64(); got != 0b1010 {
		t.Errorf("GetVec = %#b", got)
	}
}

func TestSimPanics(t *testing.T) {
	n := New()
	a := n.Input("a")
	s, _ := Compile(n)
	for name, f := range map[string]func(){
		"Set invalid value":     func() { s.Set(a, 2) },
		"Set invalid signal":    func() { s.Set(Signal(999), 0) },
		"SetMany length":        func() { s.SetMany([]Signal{a}, nil) },
		"SetMany invalid value": func() { s.SetMany([]Signal{a}, []bits.Bit{3}) },
		"Get invalid signal":    func() { s.Get(Signal(-1)) },
		"DFF invalid init":      func() { n.AddDFF(a, 2, "bad") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// A ripple-carry adder built from FullAdder macros must add correctly for
// all 8-bit operand pairs (exhaustive over a sample) — an integration test
// of builder + simulator.
func TestRippleCarryAdder(t *testing.T) {
	const w = 8
	n := New()
	av := n.InputVec("a", w)
	bv := n.InputVec("b", w)
	sum := make([]Signal, w+1)
	carry := Signal(Const0)
	for i := 0; i < w; i++ {
		sum[i], carry = n.FullAdder(av[i], bv[i], carry)
	}
	sum[w] = carry
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 13 {
			s.SetMany(av, bits.FromUint64(uint64(a), w))
			s.SetMany(bv, bits.FromUint64(uint64(b), w))
			if got := s.GetVec(sum).Uint64(); got != uint64(a+b) {
				t.Fatalf("%d + %d = %d", a, b, got)
			}
		}
	}
}

func TestAnalyzeTimingRippleCarry(t *testing.T) {
	const w = 4
	n := New()
	av := n.InputVec("a", w)
	bv := n.InputVec("b", w)
	var couts []Signal
	carry := Signal(Const0)
	var sumLast Signal
	for i := 0; i < w; i++ {
		sumLast, carry = n.FullAdder(av[i], bv[i], carry)
		couts = append(couts, carry)
	}
	rep, err := AnalyzeTiming(n, UnitDelays, sumLast, carry)
	if err != nil {
		t.Fatal(err)
	}
	// Longest path runs through the carry chain: the first FA reaches its
	// cout in 3 levels (XOR → AND → OR via the a⊕b term) and every later
	// FA adds AND + OR = 2 levels, so the final carry arrives at
	// 3 + 2(w-1) = 2w+1 levels — one more than the final sum bit.
	if rep.CriticalLevels != 2*w+1 {
		t.Errorf("CriticalLevels = %d, want %d", rep.CriticalLevels, 2*w+1)
	}
	if rep.CriticalDelay != float64(2*w+1) {
		t.Errorf("CriticalDelay = %v", rep.CriticalDelay)
	}
	if len(rep.Path) == 0 {
		t.Error("empty critical path")
	}
	_ = couts
}

// Timing must treat DFF boundaries as cuts: a pipelined circuit's
// critical path is per-stage, not end-to-end.
func TestAnalyzeTimingPipelineCut(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	// Stage 1: 3 XORs in a row.
	x := n.XorGate(n.XorGate(n.XorGate(a, b), b), a)
	q := n.AddDFF(x, 0, "q")
	// Stage 2: 2 XORs.
	y := n.XorGate(n.XorGate(q, b), a)
	rep, err := AnalyzeTiming(n, UnitDelays, y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalLevels != 3 {
		t.Errorf("CriticalLevels = %d, want 3 (stage 1)", rep.CriticalLevels)
	}
}

func TestDelayModelHelpers(t *testing.T) {
	d := DelayModel{And: 2, Or: 3, Xor: 5, Not: 1, Buf: 0}
	if d.FACarryDelay() != 5 {
		t.Errorf("FACarryDelay = %v", d.FACarryDelay())
	}
	if d.HACarryDelay() != 2 {
		t.Errorf("HACarryDelay = %v", d.HACarryDelay())
	}
	for _, k := range []GateKind{And, Or, Xor, Not, Buf} {
		if d.Delay(k) < 0 {
			t.Errorf("Delay(%v) negative", k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Delay(unknown) did not panic")
		}
	}()
	d.Delay(GateKind(42))
}

func TestAnalyzeTimingEmptyNetlist(t *testing.T) {
	n := New()
	rep, err := AnalyzeTiming(n, UnitDelays)
	if err != nil || rep.CriticalDelay != 0 || len(rep.Path) != 0 {
		t.Errorf("empty netlist: %+v err=%v", rep, err)
	}
}

func TestWriteDOT(t *testing.T) {
	n := New()
	a, b := n.Input("a"), n.Input("b")
	x := n.XorGate(a, b)
	clr := n.Input("clr")
	q := n.AddDFFFull(x, a, clr, 0, "q")
	n.MarkOutput(q, "qout")
	var sb strings.Builder
	if err := WriteDOT(&sb, n, "cell", 100); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "cell"`, "shape=box", "XOR", "doublecircle",
		`label="ce"`, `label="clr"`, `label="qout"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in DOT output", want)
		}
	}
	if err := WriteDOT(&sb, n, "cell", 0); err != nil {
		t.Fatal("maxGates 0 should mean unlimited")
	}
	big := New()
	in := big.InputVec("i", 2)
	for i := 0; i < 20; i++ {
		big.AndGate(in[0], in[1])
	}
	if err := WriteDOT(&sb, big, "big", 5); err == nil {
		t.Error("gate cap not enforced")
	}
}
