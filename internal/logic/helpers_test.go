package logic

import (
	"fmt"
	"testing"

	"repro/internal/bits"
)

func TestMux2(t *testing.T) {
	n := New()
	sel, a, b := n.Input("sel"), n.Input("a"), n.Input("b")
	out := n.Mux2(sel, a, b)
	s, _ := Compile(n)
	for v := 0; v < 8; v++ {
		sv, av, bv := bits.Bit(v&1), bits.Bit(v>>1&1), bits.Bit(v>>2&1)
		s.SetMany([]Signal{sel, a, b}, bits.Vec{sv, av, bv})
		want := bv
		if sv == 1 {
			want = av
		}
		if s.Get(out) != want {
			t.Fatalf("Mux2(%d,%d,%d) = %d", sv, av, bv, s.Get(out))
		}
	}
}

func TestAndOrTrees(t *testing.T) {
	for _, width := range []int{0, 1, 2, 3, 7, 8} {
		n := New()
		in := n.InputVec("in", width)
		andOut := n.AndTree(in)
		orOut := n.OrTree(in)
		s, err := Compile(n)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 1<<width; v++ {
			vec := make(bits.Vec, width)
			wantAnd, wantOr := bits.Bit(1), bits.Bit(0)
			for i := range vec {
				vec[i] = bits.Bit(v >> i & 1)
				wantAnd &= vec[i]
				wantOr |= vec[i]
			}
			s.SetMany(in, vec)
			if s.Get(andOut) != wantAnd || s.Get(orOut) != wantOr {
				t.Fatalf("width=%d v=%0*b: trees wrong", width, width, v)
			}
		}
	}
}

func TestEqualsConstAndIsZero(t *testing.T) {
	n := New()
	in := n.InputVec("in", 5)
	eq13 := n.EqualsConst(in, 13)
	zero := n.IsZero(in)
	s, _ := Compile(n)
	for v := 0; v < 32; v++ {
		s.SetMany(in, bits.FromUint64(uint64(v), 5))
		if got := s.Get(eq13); (got == 1) != (v == 13) {
			t.Fatalf("EqualsConst(13) at %d = %d", v, got)
		}
		if got := s.Get(zero); (got == 1) != (v == 0) {
			t.Fatalf("IsZero at %d = %d", v, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized constant did not panic")
		}
	}()
	n.EqualsConst(in, 32)
}

func TestPrefixAnds(t *testing.T) {
	n := New()
	in := n.InputVec("in", 6)
	pre := n.PrefixAnds(in)
	s, _ := Compile(n)
	for v := 0; v < 64; v++ {
		s.SetMany(in, bits.FromUint64(uint64(v), 6))
		acc := bits.Bit(1)
		for i := 0; i < 6; i++ {
			acc &= bits.Bit(v >> i & 1)
			if s.Get(pre[i]) != acc {
				t.Fatalf("v=%06b: prefix[%d] = %d, want %d", v, i, s.Get(pre[i]), acc)
			}
		}
	}
}

func TestIncrementDecrementLogic(t *testing.T) {
	const w = 5
	n := New()
	in := n.InputVec("in", w)
	inc := n.IncrementLogic(in)
	dec := n.DecrementLogic(in)
	s, _ := Compile(n)
	for v := 0; v < 1<<w; v++ {
		s.SetMany(in, bits.FromUint64(uint64(v), w))
		wantInc := uint64(v+1) & (1<<w - 1)
		wantDec := uint64(v-1) & (1<<w - 1)
		if got := s.GetVec(inc).Uint64(); got != wantInc {
			t.Fatalf("inc(%d) = %d, want %d", v, got, wantInc)
		}
		if got := s.GetVec(dec).Uint64(); got != wantDec {
			t.Fatalf("dec(%d) = %d, want %d", v, got, wantDec)
		}
	}
}

func TestFeedbackFF(t *testing.T) {
	n := New()
	q, set := n.FeedbackFF(Const0, 1, "toggle")
	set(n.NotGate(q))
	s, err := Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		want := bits.Bit((i + 1) % 2)
		if s.Get(q) != want {
			t.Fatalf("cycle %d: q = %d, want %d", i, s.Get(q), want)
		}
		s.Step()
	}
	defer func() {
		if recover() == nil {
			t.Error("double bind did not panic")
		}
	}()
	set(Const0)
}

func TestFeedbackFFWithClear(t *testing.T) {
	n := New()
	clr := n.Input("clr")
	q, set := n.FeedbackFF(clr, 0, "counterbit")
	set(Const1) // always load 1 unless cleared
	s, _ := Compile(n)
	s.Step()
	if s.Get(q) != 1 {
		t.Fatal("FF did not load")
	}
	s.Set(clr, 1)
	s.Step()
	if s.Get(q) != 0 {
		t.Fatal("clear ineffective")
	}
}

// Keep the ripple: a quick structural sanity check that tree builders
// really are logarithmic (depth, not just function).
func TestTreeDepthLogarithmic(t *testing.T) {
	n := New()
	in := n.InputVec("in", 64)
	out := n.AndTree(in)
	n.MarkOutput(out, "out")
	rep, err := AnalyzeTiming(n, UnitDelays)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalLevels != 6 {
		t.Errorf("64-input AND tree depth = %d, want 6", rep.CriticalLevels)
	}
	_ = fmt.Sprint(rep)
}
