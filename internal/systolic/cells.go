// Package systolic implements the paper's core contribution: the linear
// systolic array for Montgomery modular multiplication without final
// subtraction (Figs. 1 and 2), at three levels of fidelity.
//
//   - Cell equations (this file): the four cell types of Fig. 1 as pure
//     bit functions, matching Eqs. (4)–(9) of the paper, plus gate-level
//     builders producing exactly the gate mix the paper states per cell.
//   - Iteration model (iter.go): one row computation T_{i-1} → W_i per
//     call, the digit-parallel view used to prove the array computes
//     Algorithm 2.
//   - Pipelined array (array.go): the cycle-accurate linear array of
//     Fig. 2, where cell j computes t_{i,j} at clock 2i+j.
//
// A reproduction note: the paper's leftmost cell (Fig. 1d) computes the
// top result bit with a bare XOR, silently dropping the weight-2^(l+2)
// carry. That is only sound when the y operand satisfies
// Y + N ≤ 2^(l+1); chained exponentiation feeds Y < 2N, which violates
// the condition for moduli above (2/3)·2^l and produces wrong results.
// This package therefore provides both the Faithful variant (exactly the
// paper) and a Guarded variant that appends one cap cell and one extra
// T flip-flop, making the array correct for all X, Y < 2N. See
// EXPERIMENTS.md for the characterization.
package systolic

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/logic"
)

// Bit re-exports the bit type used throughout the cell equations.
type Bit = bits.Bit

// RegularOut is the output bundle of a regular cell: the result digit t
// and the two carries of Eq. (4), c0 at weight 2 and c1 at weight 4
// (relative to the cell's digit position).
type RegularOut struct {
	T  Bit // t_{i,j}
	C0 Bit // c0_{i,j}
	C1 Bit // c1_{i,j}
}

// RegularCell evaluates Eq. (4), the paper's Fig. 1(a):
//
//	4·c1 + 2·c0 + t = tIn + xi·yj + mi·nj + 2·c1In + c0In
//
// where tIn = t_{i-1,j+1} (the division by two is realized by the shifted
// read). The decomposition mirrors the schematic: FA(tIn, xi·yj, c0In),
// then HA with mi·nj for the digit, then FA over the weight-2 column.
func RegularCell(tIn, xi, yj, mi, nj, c1In, c0In Bit) RegularOut {
	a := xi & yj // AND gate 1
	b := mi & nj // AND gate 2
	s1, ca := bits.FullAdd(tIn, a, c0In)
	t, cb := bits.HalfAdd(s1, b)
	c0, c1 := bits.FullAdd(ca, cb, c1In)
	return RegularOut{T: t, C0: c0, C1: c1}
}

// RightmostOut is the output bundle of the rightmost cell: the quotient
// digit m_i it generates, and the single weight-2 carry of Eq. (7).
// The digit t_{i,0} is identically zero and therefore not produced.
type RightmostOut struct {
	M  Bit // m_i, Eq. (5)
	C0 Bit // c0_{i,0}, Eq. (7)
}

// RightmostCell evaluates Eqs. (5)–(7), the paper's Fig. 1(b). It
// *generates* m_i = tIn ⊕ xi·y0 rather than receiving it, and emits
// c0 = tIn ∨ xi·y0 (the OR form of Eq. (7), valid because the weight-1
// column sums to zero by construction of m_i).
func RightmostCell(tIn, xi, y0 Bit) RightmostOut {
	a := xi & y0
	return RightmostOut{
		M:  tIn ^ a,
		C0: tIn | a,
	}
}

// FirstBitCell evaluates Eq. (8), the paper's Fig. 1(c) for digit j = 1:
//
//	4·c1 + 2·c0 + t = tIn + xi·y1 + mi·n1 + c0In
//
// Identical to a regular cell except the weight-2 column has no c1 input
// (the rightmost cell produces none), so the final full adder degrades to
// a half adder: 1 FA + 2 HA + 2 AND.
func FirstBitCell(tIn, xi, y1, mi, n1, c0In Bit) RegularOut {
	a := xi & y1
	b := mi & n1
	s1, ca := bits.FullAdd(tIn, a, c0In)
	t, cb := bits.HalfAdd(s1, b)
	c0, c1 := bits.HalfAdd(ca, cb)
	return RegularOut{T: t, C0: c0, C1: c1}
}

// LeftmostOut is the output bundle of the paper's leftmost cell
// (Fig. 1d): the two top digits of the row. Dropped reports whether the
// cell discarded a weight-4 carry — the overflow hazard documented in the
// package comment. A Faithful array propagates the (possibly wrong)
// digits exactly as the hardware would; Dropped lets tests and the
// Guarded variant detect the event.
type LeftmostOut struct {
	TL  Bit // t_{i,l}
	TL1 Bit // t_{i,l+1}
	// Dropped is the weight-4 carry the 1 FA + 1 AND + 1 XOR
	// implementation cannot represent.
	Dropped Bit
}

// LeftmostCell evaluates Eq. (9), the paper's Fig. 1(d), exploiting
// n_l = 0 so no m_i·n_l term exists:
//
//	2·t_{i,l+1} + t_{i,l} = tIn + xi·yl + 2·c1In + c0In
//
// The implementation is FA(tIn, xi·yl, c0In) for t_{i,l} plus a bare XOR
// for t_{i,l+1}; the XOR loses the carry ca·c1In whenever both are set.
func LeftmostCell(tIn, xi, yl, c1In, c0In Bit) LeftmostOut {
	a := xi & yl
	s1, ca := bits.FullAdd(tIn, a, c0In)
	return LeftmostOut{
		TL:      s1,
		TL1:     ca ^ c1In,
		Dropped: ca & c1In,
	}
}

// CapOut is the output bundle of the guard cap cell.
type CapOut struct {
	TL1 Bit // t_{i,l+1}
	TL2 Bit // t_{i,l+2}
}

// CapCell is the Guarded variant's extra top cell. The guarded leftmost
// cell keeps both weight-2 outputs (c0 = ca⊕c1In as the paper's XOR, plus
// c1 = ca·c1In from one extra AND); the cap cell then folds them into
// digits l+1 and l+2:
//
//	2·t_{i,l+2} + t_{i,l+1} = tIn2 + c0 + 2·c1
//
// where tIn2 = t_{i-1,l+2} is the guard flip-flop. Because every
// intermediate row satisfies W < 8N < 2^(l+3), the weight-2^(l+3) carry
// of this cell is provably zero, so one HA and one XOR suffice — the
// guard closes the hazard with 2 gates, 1 AND (in the leftmost cell) and
// 1 flip-flop.
func CapCell(tIn2, c0, c1 Bit) CapOut {
	s, c := bits.HalfAdd(tIn2, c0)
	return CapOut{TL1: s, TL2: c ^ c1}
}

// Gate-level builders. Each returns the same output bundle as its
// behavioural counterpart, as netlist signals. The gate mix per cell is
// asserted by tests against the paper's Fig. 1 inventory.

// BuildRegularCell instantiates Fig. 1(a): 2 FA + 1 HA + 2 AND.
func BuildRegularCell(n *logic.Netlist, tIn, xi, yj, mi, nj, c1In, c0In logic.Signal) (t, c0, c1 logic.Signal) {
	a := n.AndGate(xi, yj)
	b := n.AndGate(mi, nj)
	s1, ca := n.FullAdder(tIn, a, c0In)
	t, cb := n.HalfAdder(s1, b)
	c0, c1 = n.FullAdder(ca, cb, c1In)
	return t, c0, c1
}

// BuildRightmostCell instantiates Fig. 1(b): 1 AND + 1 OR + 1 XOR.
func BuildRightmostCell(n *logic.Netlist, tIn, xi, y0 logic.Signal) (m, c0 logic.Signal) {
	a := n.AndGate(xi, y0)
	m = n.XorGate(tIn, a)
	c0 = n.OrGate(tIn, a)
	return m, c0
}

// BuildFirstBitCell instantiates Fig. 1(c): 1 FA + 2 HA + 2 AND.
func BuildFirstBitCell(n *logic.Netlist, tIn, xi, y1, mi, n1, c0In logic.Signal) (t, c0, c1 logic.Signal) {
	a := n.AndGate(xi, y1)
	b := n.AndGate(mi, n1)
	s1, ca := n.FullAdder(tIn, a, c0In)
	t, cb := n.HalfAdder(s1, b)
	c0, c1 = n.HalfAdder(ca, cb)
	return t, c0, c1
}

// BuildLeftmostCell instantiates Fig. 1(d): 1 FA + 1 AND + 1 XOR.
func BuildLeftmostCell(n *logic.Netlist, tIn, xi, yl, c1In, c0In logic.Signal) (tl, tl1 logic.Signal) {
	a := n.AndGate(xi, yl)
	s1, ca := n.FullAdder(tIn, a, c0In)
	tl1 = n.XorGate(ca, c1In)
	return s1, tl1
}

// BuildGuardedLeftmostCell is the leftmost cell keeping both weight-2
// outputs: the paper's cell plus one AND for the carry it would drop.
func BuildGuardedLeftmostCell(n *logic.Netlist, tIn, xi, yl, c1In, c0In logic.Signal) (tl, c0, c1 logic.Signal) {
	a := n.AndGate(xi, yl)
	s1, ca := n.FullAdder(tIn, a, c0In)
	c0 = n.XorGate(ca, c1In)
	c1 = n.AndGate(ca, c1In)
	return s1, c0, c1
}

// BuildCapCell instantiates the guard cap: 1 HA + 1 XOR.
func BuildCapCell(n *logic.Netlist, tIn2, c0, c1 logic.Signal) (tl1, tl2 logic.Signal) {
	s, c := n.HalfAdder(tIn2, c0)
	tl2 = n.XorGate(c, c1)
	return s, tl2
}

// Variant selects between the paper's exact array and the overflow-safe
// extension.
type Variant int

const (
	// Faithful reproduces Fig. 1/2 exactly, including the leftmost
	// cell's dropped carry. Correct only while Y + N ≤ 2^(l+1).
	Faithful Variant = iota
	// Guarded appends the cap cell and guard flip-flop; correct for all
	// X, Y ∈ [0, 2N-1].
	Guarded
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case Faithful:
		return "faithful"
	case Guarded:
		return "guarded"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}
