package systolic

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mont"
)

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(Guarded, bits.FromUint64(1, 1), bits.New(2)); err == nil {
		t.Error("1-bit modulus accepted")
	}
	if _, err := NewArray(Guarded, bits.FromUint64(6, 3), bits.New(3)); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := NewArray(Guarded, bits.FromUint64(5, 3), bits.FromUint64(255, 8)); err == nil {
		t.Error("oversized y accepted")
	}
	a, err := NewArray(Guarded, bits.FromUint64(13, 4), bits.FromUint64(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Run(bits.FromUint64(63, 6)); err == nil {
		t.Error("oversized x accepted")
	}
}

// The pipelined array must produce exactly the iteration model's result
// in exactly 3l+4 clock cycles, for both variants, across sizes and
// operand patterns.
func TestArrayMatchesIterModel(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, variant := range []Variant{Faithful, Guarded} {
		for _, l := range []int{2, 3, 4, 5, 8, 16, 33, 64} {
			nBig := randOdd(rng, l)
			n2 := new(big.Int).Lsh(nBig, 1)
			for trial := 0; trial < 20; trial++ {
				x := new(big.Int).Rand(rng, n2)
				y := new(big.Int).Rand(rng, n2)
				nv := bits.FromBig(nBig, l)
				yv := bits.FromBig(y, l+1)
				xv := bits.FromBig(x, l+1)

				im, err := NewIterModel(variant, nv, yv)
				if err != nil {
					t.Fatal(err)
				}
				var want bits.Vec
				if variant == Guarded {
					want, err = im.RunMul(xv)
					if err != nil {
						t.Fatal(err)
					}
				} else {
					// Faithful RunMul may legitimately produce the
					// dropped-carry value; compute it without the
					// guard-bit panic path.
					im.Reset()
					for i := 0; i <= l+1; i++ {
						im.StepIteration(xv.Bit(i))
					}
					want = im.T()
				}

				arr, err := NewArray(variant, nv, yv)
				if err != nil {
					t.Fatal(err)
				}
				var got bits.Vec
				var cycles int
				if variant == Guarded {
					got, cycles, err = arr.Run(xv)
					if err != nil {
						t.Fatal(err)
					}
				} else {
					got, cycles = runFaithful(arr, xv)
				}
				if cycles != 3*l+4 {
					t.Fatalf("variant=%v l=%d: cycles = %d, want %d", variant, l, cycles, 3*l+4)
				}
				if !bits.Equal(got, want) {
					t.Fatalf("variant=%v l=%d x=%s y=%s N=%s: array %s != iter %s",
						variant, l, x, y, nBig, got.Big(), want.Big())
				}
				if arr.DroppedCarries() != im.DroppedCarries() {
					t.Fatalf("dropped carry counts diverge: array %d iter %d",
						arr.DroppedCarries(), im.DroppedCarries())
				}
			}
		}
	}
}

// runFaithful mirrors Array.Run without the guarded-only assertions.
func runFaithful(a *Array, x bits.Vec) (bits.Vec, int) {
	l := a.L
	a.Reset()
	result := bits.New(l + 1)
	total := 3*l + 4
	for c := 0; c < total; c++ {
		a.Step(x.Bit(c / 2))
		if b := c - (2*l + 3); b >= 0 && b <= l {
			result[b] = a.regT[b+1]
		}
	}
	result[l] = a.tl1Shadow
	return result, total
}

// Schedule conformance: during the run, T(j) must hold t_{i,j} exactly at
// the clocks 2i+j the paper states, for every i and j. The reference
// digits come from replaying the iteration model row by row.
func TestArraySchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	l := 12
	nBig := randOdd(rng, l)
	n2 := new(big.Int).Lsh(nBig, 1)
	for trial := 0; trial < 10; trial++ {
		x := new(big.Int).Rand(rng, n2)
		y := new(big.Int).Rand(rng, n2)
		nv := bits.FromBig(nBig, l)
		yv := bits.FromBig(y, l+1)
		xv := bits.FromBig(x, l+1)

		// Reference rows: w[i][j] = t_{i,j} from the iteration model
		// (W_i = 2·T_i, so t_{i,j} = bit j of 2·T_i).
		im, _ := NewIterModel(Guarded, nv, yv)
		rows := make([]bits.Vec, l+2)
		for i := 0; i <= l+1; i++ {
			im.StepIteration(xv.Bit(i))
			rows[i] = im.T().Shl(1) // W_i
		}

		arr, _ := NewArray(Guarded, nv, yv)
		arr.Reset()
		for c := 0; c < 3*l+4; c++ {
			arr.Step(xv.Bit(c / 2))
			// After the edge ending clock c, T(j) holds t_{i,j} with
			// 2i+j = c, for 1 ≤ j ≤ l+1 and 0 ≤ i ≤ l+1. The guard digit
			// t_{i,l+2} is produced by the cap cell one clock early,
			// alongside t_{i,l+1}.
			for j := 1; j <= l+1; j++ {
				i := (c - j) / 2
				if (c-j)%2 != 0 || i < 0 || i > l+1 {
					continue
				}
				if got, want := arr.regT[j], rows[i].Bit(j); got != want {
					t.Fatalf("clock %d: T(%d) = %d, want t_{%d,%d} = %d",
						c, j, got, i, j, want)
				}
			}
			if i := (c - l - 1) / 2; (c-l-1)%2 == 0 && i >= 0 && i <= l+1 {
				if got, want := arr.regT[l+2], rows[i].Bit(l+2); got != want {
					t.Fatalf("clock %d: T(%d) = %d, want t_{%d,%d} = %d",
						c, l+2, got, i, l+2, want)
				}
			}
		}
	}
}

// End-to-end: guarded array against the mont reference for many random
// multiplications, including the hazard-prone all-ones modulus.
func TestGuardedArrayMatchesMont(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, l := range []int{8, 16, 32} {
		for _, nBig := range []*big.Int{
			randOdd(rng, l),
			new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1)),
		} {
			ctx, err := mont.NewCtx(nBig)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 15; trial++ {
				x := new(big.Int).Rand(rng, ctx.N2)
				y := new(big.Int).Rand(rng, ctx.N2)
				arr, _ := NewArray(Guarded, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
				got, _, err := arr.Run(bits.FromBig(x, l+1))
				if err != nil {
					t.Fatal(err)
				}
				if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
					t.Fatalf("l=%d: array != Algorithm 2", l)
				}
			}
		}
	}
}

// The array must be reusable: two Runs with different x on the same
// instance must both be correct (Reset clears all state).
func TestArrayReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	l := 16
	nBig := randOdd(rng, l)
	ctx, _ := mont.NewCtx(nBig)
	y := new(big.Int).Rand(rng, ctx.N2)
	arr, _ := NewArray(Guarded, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
	for trial := 0; trial < 5; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		got, _, err := arr.Run(bits.FromBig(x, l+1))
		if err != nil {
			t.Fatal(err)
		}
		if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatalf("reuse trial %d wrong", trial)
		}
	}
}

func TestArrayAccessors(t *testing.T) {
	arr, _ := NewArray(Guarded, bits.FromUint64(13, 4), bits.FromUint64(9, 5))
	if arr.Cycle() != 0 {
		t.Error("fresh array cycle != 0")
	}
	arr.Step(1)
	if arr.Cycle() != 1 {
		t.Error("cycle not advancing")
	}
	if len(arr.TRegister()) != arr.L+2 {
		t.Errorf("TRegister width = %d", len(arr.TRegister()))
	}
	arr.Reset()
	if arr.Cycle() != 0 || !arr.TRegister().IsZero() {
		t.Error("Reset incomplete")
	}
}

// ---- Gate-level netlist ----

// simArrayNetlist runs one multiplication through the gate-level array,
// capturing result bits on the same schedule as Array.Run.
func simArrayNetlist(t *testing.T, sim *logic.Sim, p *Ports, x bits.Vec) bits.Vec {
	t.Helper()
	l := p.L
	// Pulse clear for one cycle.
	sim.Set(p.Clear, 1)
	sim.Step()
	sim.Set(p.Clear, 0)
	result := bits.New(l + 1)
	for c := 0; c < 3*l+4; c++ {
		sim.Set(p.Xin, x.Bit(c/2))
		sim.Step()
		if b := c - (2*l + 3); b >= 0 && b <= l {
			result[b] = sim.Get(p.T[b])
		}
	}
	if p.Variant == Faithful {
		result[l] = sim.Get(p.TDelayed)
	}
	return result
}

// The gate-level array must agree with the behavioural array signal for
// signal: identical T register contents at every clock and identical
// final results, for both variants.
func TestNetlistMatchesBehaviouralArray(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, variant := range []Variant{Faithful, Guarded} {
		for _, l := range []int{2, 3, 5, 8, 16} {
			nBig := randOdd(rng, l)
			n2 := new(big.Int).Lsh(nBig, 1)

			nl := logic.New()
			p, err := BuildArrayNetlist(nl, l, variant)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := logic.Compile(nl)
			if err != nil {
				t.Fatal(err)
			}
			nv := bits.FromBig(nBig, l)
			sim.SetMany(p.N, nv)

			for trial := 0; trial < 8; trial++ {
				x := new(big.Int).Rand(rng, n2)
				y := new(big.Int).Rand(rng, n2)
				yv := bits.FromBig(y, l+1)
				xv := bits.FromBig(x, l+1)
				sim.SetMany(p.Y, yv)

				arr, _ := NewArray(variant, nv, yv)
				arr.Reset()

				// Clear the netlist registers.
				sim.Set(p.Clear, 1)
				sim.Step()
				sim.Set(p.Clear, 0)

				for c := 0; c < 3*l+4; c++ {
					xbit := xv.Bit(c / 2)
					sim.Set(p.Xin, xbit)
					// Compare the combinational m before the edge.
					// (Valid on even cycles, when cell 0 computes.)
					arr.Step(xbit)
					sim.Step()
					tTop := l + 1
					if variant == Guarded {
						tTop = l + 2
					}
					for j := 1; j <= tTop; j++ {
						if sim.Get(p.T[j-1]) != arr.regT[j] {
							t.Fatalf("variant=%v l=%d clock %d: netlist T(%d)=%d behavioural=%d",
								variant, l, c, j, sim.Get(p.T[j-1]), arr.regT[j])
						}
					}
					shadow := arr.tl1Shadow
					if variant == Guarded {
						shadow = arr.tl2Shadow
					}
					if sim.Get(p.TDelayed) != shadow {
						t.Fatalf("variant=%v l=%d clock %d: delayed T mismatch", variant, l, c)
					}
				}
			}
		}
	}
}

// End-to-end gate-level check against the mont reference.
func TestNetlistEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, l := range []int{8, 16, 32} {
		nBig := randOdd(rng, l)
		ctx, _ := mont.NewCtx(nBig)
		nl := logic.New()
		p, err := BuildArrayNetlist(nl, l, Guarded)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := logic.Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		sim.SetMany(p.N, bits.FromBig(nBig, l))
		for trial := 0; trial < 5; trial++ {
			x := new(big.Int).Rand(rng, ctx.N2)
			y := new(big.Int).Rand(rng, ctx.N2)
			sim.SetMany(p.Y, bits.FromBig(y, l+1))
			got := simArrayNetlist(t, sim, p, bits.FromBig(x, l+1))
			if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
				t.Fatalf("l=%d: gate-level result wrong", l)
			}
		}
	}
}

// Fig. 2 area claim: the faithful array's primitive-gate census must
// follow the closed-form counts of our cell decomposition —
// (5l−2) XOR, (7l−4) AND, (2l−1) OR — linear in l exactly as the paper's
// formula (5l−3, 7l−7, 4l−5), and the flip-flop count must be 4l+2
// (the paper counts 4l; ours adds the phase toggle and one extra shared
// stage for odd l). See EXPERIMENTS.md for the reconciliation.
func TestArrayAreaFormula(t *testing.T) {
	for _, l := range []int{4, 8, 16, 32, 64, 128} {
		nl := logic.New()
		_, err := BuildArrayNetlist(nl, l, Faithful)
		if err != nil {
			t.Fatal(err)
		}
		cen := nl.Census()
		if cen.Xor != 5*l-2 {
			t.Errorf("l=%d: XOR = %d, want %d", l, cen.Xor, 5*l-2)
		}
		if cen.And != 7*l-4 {
			t.Errorf("l=%d: AND = %d, want %d", l, cen.And, 7*l-4)
		}
		if cen.Or != 2*l-1 {
			t.Errorf("l=%d: OR = %d, want %d", l, cen.Or, 2*l-1)
		}
		// FF inventory: T(l+1) + C0(l) + C1(l-1) + 2·⌊(l+1)/2⌋ stages +
		// phase toggle + the T(l+1) self-loop delay register.
		wantFF := (l + 1) + l + (l - 1) + 2*((l+1)/2) + 1 + 1
		if cen.DFF != wantFF {
			t.Errorf("l=%d: DFF = %d, want %d", l, cen.DFF, wantFF)
		}
		// Macro inventory: (l-2) regular cells × (2 FA + 1 HA) +
		// first-bit (1 FA + 2 HA) + leftmost (1 FA).
		if cen.FullAdders != 2*(l-2)+2 {
			t.Errorf("l=%d: FA macros = %d", l, cen.FullAdders)
		}
		if cen.HalfAdders != (l-2)+2 {
			t.Errorf("l=%d: HA macros = %d", l, cen.HalfAdders)
		}
	}
}

// Fig. 2 timing claim: the critical path is constant — independent of the
// operand length l — and spans the 2·T_FA + T_HA carry chain of one
// regular cell.
func TestArrayCriticalPathConstant(t *testing.T) {
	var baseline float64
	for _, l := range []int{4, 8, 16, 64, 256, 1024} {
		nl := logic.New()
		_, err := BuildArrayNetlist(nl, l, Faithful)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := logic.AnalyzeTiming(nl, logic.UnitDelays)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == 0 {
			baseline = rep.CriticalDelay
			t.Logf("critical path: %.0f gate levels (%d nets)", rep.CriticalDelay, len(rep.Path))
		} else if rep.CriticalDelay != baseline {
			t.Errorf("l=%d: critical path %v != baseline %v — not constant in l",
				l, rep.CriticalDelay, baseline)
		}
	}
	// The guard must not lengthen the critical path.
	nl := logic.New()
	if _, err := BuildArrayNetlist(nl, 64, Guarded); err != nil {
		t.Fatal(err)
	}
	rep, err := logic.AnalyzeTiming(nl, logic.UnitDelays)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CriticalDelay > baseline {
		t.Errorf("guarded critical path %v exceeds faithful %v", rep.CriticalDelay, baseline)
	}
}

func TestBuildArrayNetlistValidation(t *testing.T) {
	nl := logic.New()
	if _, err := BuildArrayNetlist(nl, 1, Faithful); err == nil {
		t.Error("l=1 accepted")
	}
	if _, err := BuildArrayNetlist(nl, 4, Variant(9)); err == nil {
		t.Error("unknown variant accepted")
	}
}

// Property test: for random small widths, operands and variants, the
// pipelined array and the iteration model agree (quick-checked on top of
// the structured tests above).
func TestQuickArrayEquivalence(t *testing.T) {
	f := func(seed int64, pickL uint8, guarded bool) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 2 + int(pickL%14)
		variant := Faithful
		if guarded {
			variant = Guarded
		}
		nBig := randOdd(rng, l)
		n2 := new(big.Int).Lsh(nBig, 1)
		x := new(big.Int).Rand(rng, n2)
		y := new(big.Int).Rand(rng, n2)
		nv := bits.FromBig(nBig, l)
		yv := bits.FromBig(y, l+1)
		xv := bits.FromBig(x, l+1)

		im, err := NewIterModel(variant, nv, yv)
		if err != nil {
			return false
		}
		im.Reset()
		for i := 0; i <= l+1; i++ {
			im.StepIteration(xv.Bit(i))
		}
		want := im.T()

		arr, err := NewArray(variant, nv, yv)
		if err != nil {
			return false
		}
		var got bits.Vec
		if variant == Guarded {
			got, _, err = arr.Run(xv)
			if err != nil {
				return false
			}
		} else {
			got, _ = runFaithful(arr, xv)
		}
		return bits.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
