package systolic

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/mont"
)

func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func TestNewIterModelValidation(t *testing.T) {
	if _, err := NewIterModel(Guarded, bits.FromUint64(1, 2), bits.New(2)); err == nil {
		t.Error("1-bit modulus accepted")
	}
	if _, err := NewIterModel(Guarded, bits.FromUint64(6, 3), bits.New(3)); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := NewIterModel(Guarded, bits.FromUint64(5, 3), bits.FromUint64(255, 8)); err == nil {
		t.Error("oversized y accepted")
	}
	m, err := NewIterModel(Guarded, bits.FromUint64(13, 4), bits.FromUint64(9, 5))
	if err != nil || m.L != 4 {
		t.Fatalf("valid model rejected: %v", err)
	}
	if _, err := m.RunMul(bits.FromUint64(63, 6)); err == nil {
		t.Error("oversized x accepted")
	}
}

// The guarded iteration model must compute Algorithm 2 exactly for all
// operands in [0, 2N-1], across moduli sizes, including worst-case
// all-ones moduli where the faithful variant overflows.
func TestGuardedIterMatchesAlgorithm2(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, l := range []int{2, 3, 4, 8, 16, 32, 64, 128} {
		for _, nBig := range []*big.Int{
			randOdd(rng, l),
			new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1)), // 2^l - 1
		} {
			ctx, err := mont.NewCtx(nBig)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 30; trial++ {
				x := new(big.Int).Rand(rng, ctx.N2)
				y := new(big.Int).Rand(rng, ctx.N2)
				m, err := NewIterModel(Guarded, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
				if err != nil {
					t.Fatal(err)
				}
				got, err := m.RunMul(bits.FromBig(x, l+1))
				if err != nil {
					t.Fatal(err)
				}
				want := ctx.Mul(x, y)
				if got.Big().Cmp(want) != 0 {
					t.Fatalf("l=%d N=%s x=%s y=%s: got %s want %s",
						l, nBig, x, y, got.Big(), want)
				}
				if m.Iterations() != l+2 {
					t.Fatalf("iterations = %d, want %d", m.Iterations(), l+2)
				}
				if m.DroppedCarries() != 0 {
					t.Fatal("guarded variant reported dropped carries")
				}
			}
		}
	}
}

// The faithful model matches Algorithm 2 exactly whenever Y + N ≤ 2^(l+1)
// (the implicit operand condition of Fig. 1d), and drops no carries there.
func TestFaithfulIterCorrectUnderSafeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for _, l := range []int{3, 4, 8, 16, 32, 64} {
		nBig := randOdd(rng, l)
		ctx, err := mont.NewCtx(nBig)
		if err != nil {
			t.Fatal(err)
		}
		// ySafe < 2^(l+1) - N
		yBound := new(big.Int).Lsh(big.NewInt(1), uint(l+1))
		yBound.Sub(yBound, nBig)
		if yBound.Cmp(ctx.N2) > 0 {
			yBound.Set(ctx.N2)
		}
		for trial := 0; trial < 50; trial++ {
			x := new(big.Int).Rand(rng, ctx.N2)
			y := new(big.Int).Rand(rng, yBound)
			m, _ := NewIterModel(Faithful, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
			got, err := m.RunMul(bits.FromBig(x, l+1))
			if err != nil {
				t.Fatal(err)
			}
			if m.DroppedCarries() != 0 {
				t.Fatalf("l=%d: dropped carry under safe bound (N=%s y=%s)", l, nBig, y)
			}
			want := ctx.Mul(x, y)
			if got.Big().Cmp(want) != 0 {
				t.Fatalf("l=%d: faithful mismatch under safe bound", l)
			}
		}
	}
}

// Reproduce the overflow hazard: for an all-ones modulus (top of the
// range) there exist operands X, Y < 2N for which the faithful array
// drops a carry and computes a value not congruent to x·y·R⁻¹ — the
// deviation documented in EXPERIMENTS.md. The guarded variant must agree
// with Algorithm 2 on the very same operands.
func TestFaithfulOverflowHazard(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, l := range []int{4, 8, 16} {
		nBig := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1))
		ctx, err := mont.NewCtx(nBig)
		if err != nil {
			t.Fatal(err)
		}
		foundDrop := false
		for trial := 0; trial < 2000 && !foundDrop; trial++ {
			x := new(big.Int).Rand(rng, ctx.N2)
			y := new(big.Int).Rand(rng, ctx.N2)
			fm, _ := NewIterModel(Faithful, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
			got, err := fm.RunMul(bits.FromBig(x, l+1))
			if err != nil {
				t.Fatal(err)
			}
			want := ctx.Mul(x, y)
			if fm.DroppedCarries() > 0 {
				foundDrop = true
				// A dropped carry must be visible as either a wrong
				// residue or the same value (the error can cancel mod N
				// only by coincidence, which we don't require). What we
				// do require: the guarded variant is right regardless.
				gm, _ := NewIterModel(Guarded, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
				gv, _ := gm.RunMul(bits.FromBig(x, l+1))
				if gv.Big().Cmp(want) != 0 {
					t.Fatalf("guarded wrong on hazard operands")
				}
			} else if got.Big().Cmp(want) != 0 {
				t.Fatalf("faithful wrong without a reported drop: l=%d x=%s y=%s", l, x, y)
			}
		}
		if !foundDrop {
			t.Errorf("l=%d: expected to find a dropped carry for N=2^l-1", l)
		}
	}
}

func TestIterResetAndAccessors(t *testing.T) {
	nv := bits.FromUint64(13, 4)
	m, _ := NewIterModel(Guarded, nv, bits.FromUint64(9, 5))
	m.StepIteration(1)
	if m.Iterations() != 1 {
		t.Fatal("iteration count")
	}
	if m.T().IsZero() {
		t.Fatal("T should be nonzero after a step with x=1, y=9")
	}
	m.Reset()
	if m.Iterations() != 0 || !m.T().IsZero() {
		t.Fatal("Reset incomplete")
	}
}

// m_i returned by StepIteration must match Algorithm 2's quotient digit.
func TestIterQuotientDigits(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	l := 16
	nBig := randOdd(rng, l)
	for trial := 0; trial < 20; trial++ {
		x := new(big.Int).Rand(rng, new(big.Int).Lsh(nBig, 1))
		y := new(big.Int).Rand(rng, new(big.Int).Lsh(nBig, 1))
		m, _ := NewIterModel(Guarded, bits.FromBig(nBig, l), bits.FromBig(y, l+1))
		tRef := new(big.Int)
		for i := 0; i <= l+1; i++ {
			xi := Bit(x.Bit(i))
			wantMi := (tRef.Bit(0) + x.Bit(i)*y.Bit(0)) & 1
			gotMi := m.StepIteration(xi)
			if uint(gotMi) != wantMi {
				t.Fatalf("m_%d = %d, want %d", i, gotMi, wantMi)
			}
			if xi == 1 {
				tRef.Add(tRef, y)
			}
			if wantMi == 1 {
				tRef.Add(tRef, nBig)
			}
			tRef.Rsh(tRef, 1)
			if m.T().Big().Cmp(tRef) != 0 {
				t.Fatalf("T after iteration %d: got %s want %s", i, m.T().Big(), tRef)
			}
		}
	}
}
