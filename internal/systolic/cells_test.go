package systolic

import (
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
)

// Exhaustively verify the regular cell against Eq. (4):
// 4·c1 + 2·c0 + t = tIn + xi·yj + mi·nj + 2·c1In + c0In.
func TestRegularCellEq4(t *testing.T) {
	for v := 0; v < 1<<7; v++ {
		tIn, xi, yj := Bit(v&1), Bit(v>>1&1), Bit(v>>2&1)
		mi, nj := Bit(v>>3&1), Bit(v>>4&1)
		c1In, c0In := Bit(v>>5&1), Bit(v>>6&1)
		out := RegularCell(tIn, xi, yj, mi, nj, c1In, c0In)
		lhs := 4*int(out.C1) + 2*int(out.C0) + int(out.T)
		rhs := int(tIn) + int(xi&yj) + int(mi&nj) + 2*int(c1In) + int(c0In)
		if lhs != rhs {
			t.Fatalf("Eq4 violated for v=%07b: lhs=%d rhs=%d", v, lhs, rhs)
		}
	}
}

// Exhaustively verify the rightmost cell against Eqs. (5)–(7): m_i makes
// the weight-1 column vanish and c0 carries the remainder.
func TestRightmostCellEq567(t *testing.T) {
	for v := 0; v < 1<<3; v++ {
		tIn, xi, y0 := Bit(v&1), Bit(v>>1&1), Bit(v>>2&1)
		out := RightmostCell(tIn, xi, y0)
		// Eq (5): m = (tIn + xi·y0) mod 2.
		if out.M != (tIn+xi&y0)&1 {
			t.Fatalf("Eq5 violated for v=%03b", v)
		}
		// Eq (6): 2·c0 + t0 = tIn + xi·y0 + m with t0 = 0.
		if 2*int(out.C0) != int(tIn)+int(xi&y0)+int(out.M) {
			t.Fatalf("Eq6 violated for v=%03b", v)
		}
	}
}

// Exhaustively verify the 1st-bit cell against Eq. (8).
func TestFirstBitCellEq8(t *testing.T) {
	for v := 0; v < 1<<6; v++ {
		tIn, xi, y1 := Bit(v&1), Bit(v>>1&1), Bit(v>>2&1)
		mi, n1, c0In := Bit(v>>3&1), Bit(v>>4&1), Bit(v>>5&1)
		out := FirstBitCell(tIn, xi, y1, mi, n1, c0In)
		lhs := 4*int(out.C1) + 2*int(out.C0) + int(out.T)
		rhs := int(tIn) + int(xi&y1) + int(mi&n1) + int(c0In)
		if lhs != rhs {
			t.Fatalf("Eq8 violated for v=%06b: lhs=%d rhs=%d", v, lhs, rhs)
		}
	}
}

// Exhaustively verify the leftmost cell against Eq. (9), including the
// precise characterization of when the carry drop occurs.
func TestLeftmostCellEq9(t *testing.T) {
	for v := 0; v < 1<<5; v++ {
		tIn, xi, yl := Bit(v&1), Bit(v>>1&1), Bit(v>>2&1)
		c1In, c0In := Bit(v>>3&1), Bit(v>>4&1)
		out := LeftmostCell(tIn, xi, yl, c1In, c0In)
		rhs := int(tIn) + int(xi&yl) + 2*int(c1In) + int(c0In)
		lhs := 2*int(out.TL1) + int(out.TL)
		// The cell is exact iff the sum fits in two digits; otherwise it
		// loses exactly 4 and must flag Dropped.
		if rhs < 4 {
			if lhs != rhs || out.Dropped != 0 {
				t.Fatalf("v=%05b: lhs=%d rhs=%d dropped=%d", v, lhs, rhs, out.Dropped)
			}
		} else {
			if lhs != rhs-4 || out.Dropped != 1 {
				t.Fatalf("v=%05b overflow: lhs=%d rhs=%d dropped=%d", v, lhs, rhs, out.Dropped)
			}
		}
	}
}

// The cap cell must be exact whenever its own top carry is zero, which
// the W < 2^(l+3) bound guarantees; verify exactness on all inputs where
// tIn2 + c0 + 2·c1 < 4 and that the only inexact input is the provably
// unreachable all-ones-with-c1 case.
func TestCapCellEquation(t *testing.T) {
	for v := 0; v < 1<<3; v++ {
		tIn2, c0, c1 := Bit(v&1), Bit(v>>1&1), Bit(v>>2&1)
		out := CapCell(tIn2, c0, c1)
		rhs := int(tIn2) + int(c0) + 2*int(c1)
		lhs := 2*int(out.TL2) + int(out.TL1)
		if rhs < 4 && lhs != rhs {
			t.Fatalf("cap cell wrong for reachable input %03b: lhs=%d rhs=%d", v, lhs, rhs)
		}
		if rhs == 4 && lhs != 0 {
			t.Fatalf("cap cell unreachable case should wrap to 0, got %d", lhs)
		}
	}
}

// The guarded leftmost must be exact on all inputs (it keeps the carry).
func TestGuardedLeftmostExact(t *testing.T) {
	for v := 0; v < 1<<5; v++ {
		tIn, xi, yl := Bit(v&1), Bit(v>>1&1), Bit(v>>2&1)
		c1In, c0In := Bit(v>>3&1), Bit(v>>4&1)
		tl, c0, c1 := guardedLeftmost(tIn, xi, yl, c1In, c0In)
		lhs := 4*int(c1) + 2*int(c0) + int(tl)
		rhs := int(tIn) + int(xi&yl) + 2*int(c1In) + int(c0In)
		if lhs != rhs {
			t.Fatalf("guarded leftmost wrong for %05b: lhs=%d rhs=%d", v, lhs, rhs)
		}
	}
}

// Gate-level cell builders must agree with the behavioural cells on every
// input combination, and instantiate exactly the gate mix of Fig. 1.
func TestBuildCellsMatchBehaviouralAndCensus(t *testing.T) {
	t.Run("regular", func(t *testing.T) {
		nl := logic.New()
		in := nl.InputVec("in", 7)
		tOut, c0, c1 := BuildRegularCell(nl, in[0], in[1], in[2], in[3], in[4], in[5], in[6])
		cen := nl.Census()
		// Fig. 1(a): 2 FA + 1 HA + 2 AND.
		if cen.FullAdders != 2 || cen.HalfAdders != 1 || cen.And != 7 || cen.Xor != 5 || cen.Or != 2 {
			t.Errorf("regular cell census: %s", cen)
		}
		sim, err := logic.Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 1<<7; v++ {
			vals := make(bits.Vec, 7)
			for i := range vals {
				vals[i] = Bit(v >> i & 1)
			}
			sim.SetMany(in, vals)
			want := RegularCell(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5], vals[6])
			if sim.Get(tOut) != want.T || sim.Get(c0) != want.C0 || sim.Get(c1) != want.C1 {
				t.Fatalf("gate regular cell mismatch at %07b", v)
			}
		}
	})

	t.Run("rightmost", func(t *testing.T) {
		nl := logic.New()
		in := nl.InputVec("in", 3)
		m, c0 := BuildRightmostCell(nl, in[0], in[1], in[2])
		cen := nl.Census()
		// Fig. 1(b): 1 AND + 1 OR + 1 XOR.
		if cen.And != 1 || cen.Or != 1 || cen.Xor != 1 || cen.TotalGates() != 3 {
			t.Errorf("rightmost cell census: %s", cen)
		}
		sim, _ := logic.Compile(nl)
		for v := 0; v < 1<<3; v++ {
			vals := bits.Vec{Bit(v & 1), Bit(v >> 1 & 1), Bit(v >> 2 & 1)}
			sim.SetMany(in, vals)
			want := RightmostCell(vals[0], vals[1], vals[2])
			if sim.Get(m) != want.M || sim.Get(c0) != want.C0 {
				t.Fatalf("gate rightmost cell mismatch at %03b", v)
			}
		}
	})

	t.Run("firstbit", func(t *testing.T) {
		nl := logic.New()
		in := nl.InputVec("in", 6)
		tOut, c0, c1 := BuildFirstBitCell(nl, in[0], in[1], in[2], in[3], in[4], in[5])
		cen := nl.Census()
		// Fig. 1(c): 1 FA + 2 HA + 2 AND.
		if cen.FullAdders != 1 || cen.HalfAdders != 2 || cen.And != 6 || cen.Xor != 4 || cen.Or != 1 {
			t.Errorf("firstbit cell census: %s", cen)
		}
		sim, _ := logic.Compile(nl)
		for v := 0; v < 1<<6; v++ {
			vals := make(bits.Vec, 6)
			for i := range vals {
				vals[i] = Bit(v >> i & 1)
			}
			sim.SetMany(in, vals)
			want := FirstBitCell(vals[0], vals[1], vals[2], vals[3], vals[4], vals[5])
			if sim.Get(tOut) != want.T || sim.Get(c0) != want.C0 || sim.Get(c1) != want.C1 {
				t.Fatalf("gate firstbit cell mismatch at %06b", v)
			}
		}
	})

	t.Run("leftmost", func(t *testing.T) {
		nl := logic.New()
		in := nl.InputVec("in", 5)
		tl, tl1 := BuildLeftmostCell(nl, in[0], in[1], in[2], in[3], in[4])
		cen := nl.Census()
		// Fig. 1(d): 1 FA + 1 AND + 1 XOR.
		if cen.FullAdders != 1 || cen.And != 3 || cen.Xor != 3 || cen.Or != 1 {
			t.Errorf("leftmost cell census: %s", cen)
		}
		sim, _ := logic.Compile(nl)
		for v := 0; v < 1<<5; v++ {
			vals := make(bits.Vec, 5)
			for i := range vals {
				vals[i] = Bit(v >> i & 1)
			}
			sim.SetMany(in, vals)
			want := LeftmostCell(vals[0], vals[1], vals[2], vals[3], vals[4])
			if sim.Get(tl) != want.TL || sim.Get(tl1) != want.TL1 {
				t.Fatalf("gate leftmost cell mismatch at %05b", v)
			}
		}
	})

	t.Run("cap", func(t *testing.T) {
		nl := logic.New()
		in := nl.InputVec("in", 3)
		tl1, tl2 := BuildCapCell(nl, in[0], in[1], in[2])
		cen := nl.Census()
		if cen.HalfAdders != 1 || cen.Xor != 2 || cen.And != 1 {
			t.Errorf("cap cell census: %s", cen)
		}
		sim, _ := logic.Compile(nl)
		for v := 0; v < 1<<3; v++ {
			vals := bits.Vec{Bit(v & 1), Bit(v >> 1 & 1), Bit(v >> 2 & 1)}
			sim.SetMany(in, vals)
			want := CapCell(vals[0], vals[1], vals[2])
			if sim.Get(tl1) != want.TL1 || sim.Get(tl2) != want.TL2 {
				t.Fatalf("gate cap cell mismatch at %03b", v)
			}
		}
	})

	t.Run("guardedLeftmost", func(t *testing.T) {
		nl := logic.New()
		in := nl.InputVec("in", 5)
		tl, c0, c1 := BuildGuardedLeftmostCell(nl, in[0], in[1], in[2], in[3], in[4])
		sim, _ := logic.Compile(nl)
		for v := 0; v < 1<<5; v++ {
			vals := make(bits.Vec, 5)
			for i := range vals {
				vals[i] = Bit(v >> i & 1)
			}
			sim.SetMany(in, vals)
			wantTL, wantC0, wantC1 := guardedLeftmost(vals[0], vals[1], vals[2], vals[3], vals[4])
			if sim.Get(tl) != wantTL || sim.Get(c0) != wantC0 || sim.Get(c1) != wantC1 {
				t.Fatalf("gate guarded leftmost mismatch at %05b", v)
			}
		}
	})
}

func TestVariantString(t *testing.T) {
	if Faithful.String() != "faithful" || Guarded.String() != "guarded" {
		t.Error("variant names wrong")
	}
	if Variant(9).String() == "" {
		t.Error("unknown variant name empty")
	}
}
