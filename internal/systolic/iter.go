package systolic

import (
	"fmt"

	"repro/internal/bits"
)

// IterModel is the digit-parallel (one row per call) view of the array:
// each StepIteration consumes one x bit and advances T_{i-1} → T_i using
// exactly the cell equations of Fig. 1. It is the bridge between
// Algorithm 2 (internal/mont) and the cycle-accurate pipelined array:
// tests verify IterModel against the algorithm and the pipelined array
// against IterModel.
type IterModel struct {
	L       int
	Variant Variant

	n bits.Vec // modulus, l bits
	y bits.Vec // multiplicand, l+1 bits

	t bits.Vec // T_{i-1}; l+1 bits (Faithful) or l+2 (Guarded)

	iter    int // iterations performed
	dropped int // leftmost-cell carry drops observed (Faithful hazard)
}

// NewIterModel prepares a model for modulus n (exactly l significant
// bits, odd, l ≥ 2) and multiplicand y < 2^(l+1). The multiplier x is
// supplied bit by bit through StepIteration.
func NewIterModel(variant Variant, n, y bits.Vec) (*IterModel, error) {
	l := n.BitLen()
	if l < 2 {
		return nil, fmt.Errorf("systolic: modulus must have at least 2 bits, got %d", l)
	}
	if n.Bit(0) != 1 {
		return nil, fmt.Errorf("systolic: modulus must be odd")
	}
	if y.BitLen() > l+1 {
		return nil, fmt.Errorf("systolic: y has %d bits, limit %d", y.BitLen(), l+1)
	}
	tWidth := l + 1
	if variant == Guarded {
		tWidth = l + 2
	}
	return &IterModel{
		L:       l,
		Variant: variant,
		n:       n.Resize(l),
		y:       y.Resize(l + 1),
		t:       bits.New(tWidth),
	}, nil
}

// Reset clears T and the iteration counter for a new multiplication with
// the same n and y.
func (m *IterModel) Reset() {
	for i := range m.t {
		m.t[i] = 0
	}
	m.iter = 0
	m.dropped = 0
}

// StepIteration performs one loop iteration of Algorithm 2 with
// multiplier bit xi, updating T in place, and returns the quotient digit
// m_i the rightmost cell generated.
func (m *IterModel) StepIteration(xi Bit) Bit {
	l := m.L
	t := m.t

	// Rightmost cell, j = 0: generates m_i, emits c0.
	r := RightmostCell(t.Bit(0), xi, m.y[0])
	mi := r.M
	c0, c1 := r.C0, Bit(0) // no c1 out of cell 0

	w := bits.New(len(t) + 1) // w[j] = t_{i,j}; w[0] = 0 by construction

	// First-bit cell, j = 1.
	fb := FirstBitCell(t.Bit(1), xi, m.y[1], mi, m.n.Bit(1), c0)
	w[1], c0, c1 = fb.T, fb.C0, fb.C1

	// Regular cells, j = 2 .. l-1.
	for j := 2; j <= l-1; j++ {
		reg := RegularCell(t.Bit(j), xi, m.y[j], mi, m.n.Bit(j), c1, c0)
		w[j], c0, c1 = reg.T, reg.C0, reg.C1
	}

	// Leftmost handling, j = l (n_l = 0).
	switch m.Variant {
	case Faithful:
		lm := LeftmostCell(t.Bit(l), xi, m.y[l], c1, c0)
		w[l], w[l+1] = lm.TL, lm.TL1
		m.dropped += int(lm.Dropped)
	case Guarded:
		// Guarded leftmost keeps both weight-2 outputs…
		a := xi & m.y[l]
		s1, ca := bits.FullAdd(t.Bit(l), a, c0)
		gc0 := ca ^ c1
		gc1 := ca & c1
		w[l] = s1
		// …and the cap cell folds them with the guard bit t_{i-1,l+2}.
		cap := CapCell(t.Bit(l+1), gc0, gc1)
		w[l+1], w[l+2] = cap.TL1, cap.TL2
	default:
		panic(fmt.Sprintf("systolic: unknown variant %v", m.Variant))
	}

	// T_i = W_i / 2: bit b of the new T is w[b+1].
	for b := 0; b < len(t); b++ {
		t[b] = w[b+1]
	}
	m.iter++
	return mi
}

// Iterations returns the number of iterations performed since Reset.
func (m *IterModel) Iterations() int { return m.iter }

// DroppedCarries returns how many times the Faithful leftmost cell
// discarded a carry — each such event means the hardware diverged from
// Algorithm 2. Always zero for the Guarded variant.
func (m *IterModel) DroppedCarries() int { return m.dropped }

// T returns a copy of the current T value.
func (m *IterModel) T() bits.Vec { return m.t.Clone() }

// RunMul performs a complete multiplication: l+2 iterations over the
// bits of x (x < 2^(l+1), so iteration l+1 always sees x bit 0, as the
// MMMC's zero-filled shift register guarantees). It returns the result
// T = x·y·2^{-(l+2)} mod 2N as an (l+1)-bit vector.
func (m *IterModel) RunMul(x bits.Vec) (bits.Vec, error) {
	if x.BitLen() > m.L+1 {
		return nil, fmt.Errorf("systolic: x has %d bits, limit %d", x.BitLen(), m.L+1)
	}
	m.Reset()
	for i := 0; i <= m.L+1; i++ {
		m.StepIteration(x.Bit(i))
	}
	res := m.t.Clone()
	if m.Variant == Guarded {
		// The guard bit of the final row is provably zero (T < 2N).
		if res[m.L+1] != 0 {
			panic("systolic: guarded array final guard bit set; bound violated")
		}
		res = res[:m.L+1]
	}
	return res, nil
}
