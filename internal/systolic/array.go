package systolic

import (
	"fmt"

	"repro/internal/bits"
)

// Array is the cycle-accurate behavioural model of the complete linear
// systolic array of Fig. 2. One Step is one clock cycle; cell j computes
// the digit t_{i,j} at clock 2i+j exactly as the paper schedules it.
//
// Register inventory (matching the paper's 4l flip-flop count):
//
//	T(1..l+1)      — row digits, the MMMC's T register (+T(l+2) guarded)
//	C0(0..l-1)     — weight-2 carries between neighbouring cells
//	C1(1..l-1)     — weight-4 carries between neighbouring cells
//	x/m stages     — ⌈l/2⌉ two-cycle pipeline stages each, clock-enabled
//	                 on even cycles, sharing one register per two cells
//	                 (the x_{(l-2)/2}, m_{(l-2)/2} registers of Fig. 2)
//
// The x operand enters bit-serially: bit i must be presented during
// clocks 2i and 2i+1, which is what the MMMC's right-shifting X register
// does (one shift per MUL2 state).
type Array struct {
	L       int
	Variant Variant

	n bits.Vec // modulus, l bits, static during a multiplication
	y bits.Vec // multiplicand, l+1 bits, static during a multiplication

	regT  bits.Vec // regT[j] = T(j), j = 1..l+1 (index 0 unused); +T(l+2) guarded
	regC0 bits.Vec // regC0[j] = carry c0 out of cell j, j = 0..l-1 (+l guarded)
	regC1 bits.Vec // regC1[j] = carry c1 out of cell j, j = 1..l-1 (+l guarded)

	stageX []Bit // stageX[k], k = 1..⌈l/2⌉: x bit for cells 2k-1, 2k
	stageM []Bit // stageM[k]: m bit for cells 2k-1, 2k

	// Self-loop delay registers. The leftmost cell (Faithful) and the cap
	// cell (Guarded) consume their own previous-row output; because a
	// cell is active only every other clock, that feedback value must
	// survive two edges, so it passes through a second flip-flop — the
	// duplicated T(l+1) register visible in Fig. 2.
	tl1Shadow Bit // Faithful: delayed T(l+1), the leftmost cell's tIn
	tl2Shadow Bit // Guarded: delayed T(l+2), the cap cell's tIn

	// pre-edge scratch buffers for the two-phase latch in Step
	wT, wC0, wC1 bits.Vec

	cycle   int
	dropped int
}

// NewArray builds an array for modulus n (odd, exactly l ≥ 2 significant
// bits) and multiplicand y < 2^(l+1).
func NewArray(variant Variant, n, y bits.Vec) (*Array, error) {
	l := n.BitLen()
	if l < 2 {
		return nil, fmt.Errorf("systolic: modulus must have at least 2 bits, got %d", l)
	}
	if n.Bit(0) != 1 {
		return nil, fmt.Errorf("systolic: modulus must be odd")
	}
	if y.BitLen() > l+1 {
		return nil, fmt.Errorf("systolic: y has %d bits, limit %d", y.BitLen(), l+1)
	}
	tTop := l + 1
	cTop := l - 1
	if variant == Guarded {
		tTop = l + 2
		cTop = l
	}
	nStages := (l + 1) / 2
	if nStages < 1 {
		nStages = 1
	}
	return &Array{
		L:       l,
		Variant: variant,
		n:       n.Resize(l),
		y:       y.Resize(l + 1),
		regT:    bits.New(tTop + 1),
		regC0:   bits.New(cTop + 1),
		regC1:   bits.New(cTop + 1),
		stageX:  make([]Bit, nStages+1), // index 0 unused
		stageM:  make([]Bit, nStages+1),
		wT:      bits.New(tTop + 1),
		wC0:     bits.New(cTop + 1),
		wC1:     bits.New(cTop + 1),
	}, nil
}

// Reset clears every register for a new multiplication (the MMMC does
// this in its IDLE state).
func (a *Array) Reset() {
	clearVec(a.regT)
	clearVec(a.regC0)
	clearVec(a.regC1)
	for k := range a.stageX {
		a.stageX[k] = 0
		a.stageM[k] = 0
	}
	a.tl1Shadow = 0
	a.tl2Shadow = 0
	a.cycle = 0
	a.dropped = 0
}

func clearVec(v bits.Vec) {
	for i := range v {
		v[i] = 0
	}
}

// Cycle returns the number of clock edges since Reset.
func (a *Array) Cycle() int { return a.cycle }

// DroppedCarries reports leftmost-cell carry drops (Faithful hazard).
func (a *Array) DroppedCarries() int { return a.dropped }

// TRegister returns the current contents of T(1..top) as a value
// (T(1) is bit 0). Note that between result captures this is a skewed
// mix of rows, not a single T_i — see Run for the capture schedule.
func (a *Array) TRegister() bits.Vec {
	return bits.Vec(a.regT[1:]).Clone()
}

// TBit returns the current value of the T(j) register, 1 ≤ j ≤ l+1
// (l+2 for Guarded).
func (a *Array) TBit(j int) Bit {
	if j < 1 || j >= len(a.regT) {
		panic(fmt.Sprintf("systolic: T(%d) out of range", j))
	}
	return a.regT[j]
}

// TL1Delayed returns the delayed T(l+1) register (Faithful self-loop
// chain); the final result's top bit is read from here.
func (a *Array) TL1Delayed() Bit { return a.tl1Shadow }

// xFor returns the x bit visible to cell j this cycle; mFor the m bit.
// Cell 0 receives x directly from the external input.
func (a *Array) xFor(j int) Bit { return a.stageX[(j+1)/2] }
func (a *Array) mFor(j int) Bit { return a.stageM[(j+1)/2] }

// Step advances the array by one clock cycle with external x input xin
// (the X register's bit 0). All cell outputs are computed from the
// current register values, then every register latches simultaneously;
// the x/m pipeline stages latch only on even→odd edges (their shared
// clock-enable), giving each stage the two-cycle hold of Fig. 2.
func (a *Array) Step(xin Bit) {
	l := a.L

	// Combinational phase: every cell computes from current registers.
	r := RightmostCell(a.regT[1], xin, a.y[0])

	fb := FirstBitCell(a.regT[2], a.xFor(1), a.y[1], a.mFor(1), a.n.Bit(1), a.regC0[0])

	wT, wC0, wC1 := a.wT, a.wC0, a.wC1 // next register values, index j
	wT[1], wC0[1], wC1[1] = fb.T, fb.C0, fb.C1
	wC0[0] = r.C0

	for j := 2; j <= l-1; j++ {
		reg := RegularCell(a.regT[j+1], a.xFor(j), a.y[j], a.mFor(j), a.n.Bit(j), a.regC1[j-1], a.regC0[j-1])
		wT[j], wC0[j], wC1[j] = reg.T, reg.C0, reg.C1
	}

	switch a.Variant {
	case Faithful:
		lm := LeftmostCell(a.tl1Shadow, a.xFor(l), a.y[l], a.regC1[l-1], a.regC0[l-1])
		wT[l], wT[l+1] = lm.TL, lm.TL1
		// Count drops only on the cell's valid phase (clock 2i+l with
		// 0 ≤ i ≤ l+1); on the off phase it chews pipeline bubbles whose
		// carries are never consumed.
		if i := a.cycle - l; i >= 0 && i%2 == 0 && i/2 <= l+1 {
			a.dropped += int(lm.Dropped)
		}
	case Guarded:
		xl := a.xFor(l)
		s1, gc0, gc1 := guardedLeftmost(a.regT[l+1], xl, a.y[l], a.regC1[l-1], a.regC0[l-1])
		wT[l], wC0[l], wC1[l] = s1, gc0, gc1
		cap := CapCell(a.tl2Shadow, a.regC0[l], a.regC1[l])
		wT[l+1], wT[l+2] = cap.TL1, cap.TL2
	default:
		panic(fmt.Sprintf("systolic: unknown variant %v", a.Variant))
	}

	// Sequential phase: latch everything at the clock edge. The shadow
	// registers capture the pre-edge primary values (two-FF chain).
	if a.Variant == Faithful {
		a.tl1Shadow = a.regT[l+1]
	} else {
		a.tl2Shadow = a.regT[l+2]
	}
	copy(a.regT, wT)
	copy(a.regC0, wC0)
	copy(a.regC1, wC1)
	if a.cycle%2 == 0 {
		// Shared x/m stages advance on even→odd edges only.
		for k := len(a.stageX) - 1; k >= 2; k-- {
			a.stageX[k] = a.stageX[k-1]
			a.stageM[k] = a.stageM[k-1]
		}
		if len(a.stageX) > 1 {
			a.stageX[1] = xin
			a.stageM[1] = r.M
		}
	}
	a.cycle++
}

// guardedLeftmost is the behavioural guarded leftmost cell: the paper's
// FA plus one AND keeping the would-be-dropped carry.
func guardedLeftmost(tIn, xi, yl, c1In, c0In Bit) (tl, c0, c1 Bit) {
	aBit := xi & yl
	s1, ca := bits.FullAdd(tIn, aBit, c0In)
	return s1, ca ^ c1In, ca & c1In
}

// Run performs one complete Montgomery multiplication through the
// pipelined array: x bit i is presented during clocks 2i and 2i+1, and
// result bit b is captured from T(b+1) at the end of clock 2l+3+b — the
// unique cycle at which t_{l+1,b+1} sits in that register (this is the
// per-bit capture the MMMC's result register performs). The total is
// exactly 3l+4 clock cycles, the paper's T_MMM figure.
func (a *Array) Run(x bits.Vec) (bits.Vec, int, error) {
	l := a.L
	if x.BitLen() > l+1 {
		return nil, 0, fmt.Errorf("systolic: x has %d bits, limit %d", x.BitLen(), l+1)
	}
	a.Reset()
	result := bits.New(l + 1)
	total := 3*l + 4
	for c := 0; c < total; c++ {
		a.Step(x.Bit(c / 2))
		// After the edge ending clock c, T(j) holds t_{i,j} with
		// 2i+j = c; captures fall at c = 2l+3+b ⇒ read T(b+1).
		if b := c - (2*l + 3); b >= 0 && b <= l {
			result[b] = a.regT[b+1]
		}
	}
	if a.Variant == Faithful {
		// The faithful T(l+1) is written by the leftmost cell one clock
		// earlier than the uniform schedule (at 2i+l); the final top bit
		// therefore sits in the delay register after the last edge.
		result[l] = a.tl1Shadow
	}
	if a.Variant == Guarded && a.regT[l+2] != 0 {
		panic("systolic: guarded array final guard bit set; bound violated")
	}
	return result, total, nil
}
