package systolic

import (
	"fmt"

	"repro/internal/bits"
)

// Array2D is the full two-dimensional systolic array of §4.2, before the
// paper folds it: one row of cells per loop iteration ("the i-th row
// computes T_i from T_{i-1}"), l+2 rows of l+1 cells, cell (i,j) active
// at clock 2i+j. Each row owns the multiplier bit x_i of the wavefront
// currently passing through it (delivered just in time at clock 2i+2k
// for the k-th queued multiplication) and generates its own quotient
// digit m_i in its rightmost cell, exactly as the folded array does.
//
// The linear Array of Fig. 2 is this structure projected onto a single
// row. The 2D form costs l+2 times the cell area but accepts a NEW
// multiplication every 2 clock cycles: latency stays 3l+4, throughput
// becomes one product per 2 clocks — the trade systolic architectures
// exist to navigate, and the reason the paper can say its folded design
// "can be used for arbitrary precisions" at 1/(l+2) of this area.
//
// The rows use the Guarded cell set (the unfolded array has no reason to
// reproduce the folded leftmost cell's dropped carry), so results are
// correct for all operands below 2N.
type Array2D struct {
	L int

	n bits.Vec // modulus, l bits
	y bits.Vec // multiplicand, l+1 bits (broadcast per column)

	// Inter/intra-row registers, indexed [row][position].
	rowT  []bits.Vec // rowT[i][j] = t_{i,j}, j = 1..l+2
	rowC0 []bits.Vec // carries out of row i's cells 0..l
	rowC1 []bits.Vec

	// Intra-row x/m pipelines (one shared stage per two cells, as in
	// Fig. 2), indexed [row][stage]; stage 0 is the head (the row's
	// externally delivered x bit / generated m digit).
	xStage [][]Bit
	mStage [][]Bit

	// tl2Shadow[i] is the two-cycle delay register on the cap-digit path
	// from row i-1's cap cell to row i's: the producer runs at clock
	// 2(i-1)+l+1 and the consumer at 2i+l+1, two cycles apart, exactly
	// like the folded array's T(l+1)/T(l+2) self-loop.
	tl2Shadow []Bit

	cycle int

	// queue of multiplier operands; queue[k] is the k-th multiplication,
	// whose wavefront enters row 0 at clock 2k.
	queue []bits.Vec

	// scratch for the two-phase latch
	wT, wC0, wC1 []bits.Vec
}

// NewArray2D builds the unfolded array for modulus n and multiplicand y.
func NewArray2D(n, y bits.Vec) (*Array2D, error) {
	l := n.BitLen()
	if l < 2 {
		return nil, fmt.Errorf("systolic: modulus must have at least 2 bits, got %d", l)
	}
	if n.Bit(0) != 1 {
		return nil, fmt.Errorf("systolic: modulus must be odd")
	}
	if y.BitLen() > l+1 {
		return nil, fmt.Errorf("systolic: y has %d bits, limit %d", y.BitLen(), l+1)
	}
	rows := l + 2
	a := &Array2D{
		L:         l,
		n:         n.Resize(l),
		y:         y.Resize(l + 1),
		rowT:      make([]bits.Vec, rows),
		rowC0:     make([]bits.Vec, rows),
		rowC1:     make([]bits.Vec, rows),
		xStage:    make([][]Bit, rows),
		mStage:    make([][]Bit, rows),
		tl2Shadow: make([]Bit, rows),
		wT:        make([]bits.Vec, rows),
		wC0:       make([]bits.Vec, rows),
		wC1:       make([]bits.Vec, rows),
	}
	nStages := (l + 1) / 2
	for i := 0; i < rows; i++ {
		a.rowT[i] = bits.New(l + 3)
		a.rowC0[i] = bits.New(l + 1)
		a.rowC1[i] = bits.New(l + 1)
		a.xStage[i] = make([]Bit, nStages+1)
		a.mStage[i] = make([]Bit, nStages+1)
		a.wT[i] = bits.New(l + 3)
		a.wC0[i] = bits.New(l + 1)
		a.wC1[i] = bits.New(l + 1)
	}
	return a, nil
}

// Reset clears all state and the operand queue.
func (a *Array2D) Reset() {
	for i := range a.rowT {
		clearVec(a.rowT[i])
		clearVec(a.rowC0[i])
		clearVec(a.rowC1[i])
		for k := range a.xStage[i] {
			a.xStage[i][k] = 0
			a.mStage[i][k] = 0
		}
		a.tl2Shadow[i] = 0
	}
	a.cycle = 0
	a.queue = nil
}

// Enqueue schedules a multiplier operand. The k-th enqueued operand's
// wavefront enters row 0 at clock 2k; its result row emerges l+2 rows
// later. Operands may be enqueued at any time before their start clock.
func (a *Array2D) Enqueue(x bits.Vec) error {
	if x.BitLen() > a.L+1 {
		return fmt.Errorf("systolic: x has %d bits, limit %d", x.BitLen(), a.L+1)
	}
	a.queue = append(a.queue, x.Resize(a.L+1))
	return nil
}

// headX returns the x bit delivered to row i at clock c: bit i of the
// multiplication whose wavefront occupies the row, i.e. operand
// k = ⌊(c-2i)/2⌋ (zero outside the schedule).
func (a *Array2D) headX(i, c int) Bit {
	rel := c - 2*i
	if rel < 0 {
		return 0
	}
	k := rel / 2
	if k >= len(a.queue) {
		return 0
	}
	return a.queue[k].Bit(i)
}

// Step advances the whole 2D array by one clock.
func (a *Array2D) Step() {
	l := a.L
	rows := l + 2
	c := a.cycle

	for i := 0; i < rows; i++ {
		// tIn for row i's cell j: row i-1's t register, shifted read
		// (row 0 reads T_{-1} = 0).
		tIn := func(j int) Bit {
			if i == 0 {
				return 0
			}
			return a.rowT[i-1].Bit(j + 1)
		}
		xHead := a.headX(i, c)

		r := RightmostCell(tIn(0), xHead, a.y[0])
		xFor := func(j int) Bit { return a.xStage[i][(j+1)/2] }
		mFor := func(j int) Bit { return a.mStage[i][(j+1)/2] }

		fb := FirstBitCell(tIn(1), xFor(1), a.y[1], mFor(1), a.n.Bit(1), a.rowC0[i][0])
		a.wT[i][1], a.wC0[i][1], a.wC1[i][1] = fb.T, fb.C0, fb.C1
		a.wC0[i][0] = r.C0

		for j := 2; j <= l-1; j++ {
			reg := RegularCell(tIn(j), xFor(j), a.y[j], mFor(j), a.n.Bit(j),
				a.rowC1[i][j-1], a.rowC0[i][j-1])
			a.wT[i][j], a.wC0[i][j], a.wC1[i][j] = reg.T, reg.C0, reg.C1
		}

		s1, gc0, gc1 := guardedLeftmost(tIn(l), xFor(l), a.y[l],
			a.rowC1[i][l-1], a.rowC0[i][l-1])
		a.wT[i][l], a.wC0[i][l], a.wC1[i][l] = s1, gc0, gc1
		capOut := CapCell(a.tl2Shadow[i], a.rowC0[i][l], a.rowC1[i][l])
		a.wT[i][l+1], a.wT[i][l+2] = capOut.TL1, capOut.TL2

		// Stage heads for the intra-row pipelines.
		a.xStage[i][0] = xHead
		a.mStage[i][0] = r.M
	}

	// Latch phase. Row i's cells run at clocks ≡ i·2+j; its x/m stages
	// advance at the end of clocks where its rightmost cell was active —
	// clock parity (c - 2i) even ⇔ c even. All rows share the phase.
	even := c%2 == 0
	for i := rows - 1; i >= 0; i-- {
		// Shadow first: it captures the pre-edge value of the upstream
		// row's cap digit (row 0's upstream is T_{-1} = 0).
		if i == 0 {
			a.tl2Shadow[i] = 0
		} else {
			a.tl2Shadow[i] = a.rowT[i-1].Bit(l + 2)
		}
		copy(a.rowT[i], a.wT[i])
		copy(a.rowC0[i], a.wC0[i])
		copy(a.rowC1[i], a.wC1[i])
		if even {
			st, mt := a.xStage[i], a.mStage[i]
			for k := len(st) - 1; k >= 1; k-- {
				st[k] = st[k-1]
				mt[k] = mt[k-1]
			}
		}
	}
	a.cycle++
}

// resultBit reads result bit b of the k-th enqueued multiplication; call
// it right after the Step for clock 2k+2l+3+b.
func (a *Array2D) resultBit(b int) Bit {
	return a.rowT[a.L+1].Bit(b + 1)
}

// Run performs one multiplication and returns the result and latency —
// the same 3l+4 as the linear array (the 2D form wins on throughput,
// not latency).
func (a *Array2D) Run(x bits.Vec) (bits.Vec, int, error) {
	a.Reset()
	if err := a.Enqueue(x); err != nil {
		return nil, 0, err
	}
	l := a.L
	result := bits.New(l + 1)
	total := 3*l + 4
	for c := 0; c < total; c++ {
		a.Step()
		if b := c - (2*l + 3); b >= 0 && b <= l {
			result[b] = a.resultBit(b)
		}
	}
	return result, total, nil
}

// RunBatch pushes a sequence of multiplications through the pipeline,
// starting one every 2 clocks, and returns all results plus the total
// cycle count — 3l+4 + 2(K−1) for K operands, i.e. an amortized
// throughput of one Montgomery product per 2 clock cycles.
func (a *Array2D) RunBatch(xs []bits.Vec) ([]bits.Vec, int, error) {
	a.Reset()
	for _, x := range xs {
		if err := a.Enqueue(x); err != nil {
			return nil, 0, err
		}
	}
	l := a.L
	k := len(xs)
	results := make([]bits.Vec, k)
	for i := range results {
		results[i] = bits.New(l + 1)
	}
	total := 3*l + 4 + 2*(k-1)
	if k == 0 {
		total = 0
	}
	for c := 0; c < total; c++ {
		a.Step()
		// Result bit b of multiplication m lands at clock 2m+2l+3+b.
		for m := 0; m < k; m++ {
			if b := c - 2*m - (2*l + 3); b >= 0 && b <= l {
				results[m][b] = a.resultBit(b)
			}
		}
	}
	return results, total, nil
}
