package systolic

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/mont"
)

func TestNewArray2DValidation(t *testing.T) {
	if _, err := NewArray2D(bits.FromUint64(1, 1), bits.New(2)); err == nil {
		t.Error("1-bit modulus accepted")
	}
	if _, err := NewArray2D(bits.FromUint64(6, 3), bits.New(3)); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := NewArray2D(bits.FromUint64(5, 3), bits.FromUint64(255, 8)); err == nil {
		t.Error("oversized y accepted")
	}
	a, err := NewArray2D(bits.FromUint64(13, 4), bits.FromUint64(9, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Enqueue(bits.FromUint64(63, 6)); err == nil {
		t.Error("oversized x accepted")
	}
}

// The 2D array must compute the same products as the linear array and
// Algorithm 2, in the same 3l+4 latency, including hazard-zone moduli.
func TestArray2DMatchesLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, l := range []int{2, 3, 4, 8, 16, 32} {
		for _, nBig := range []*big.Int{
			randOdd(rng, l),
			new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1)),
		} {
			ctx, err := mont.NewCtx(nBig)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				x := new(big.Int).Rand(rng, ctx.N2)
				y := new(big.Int).Rand(rng, ctx.N2)
				nv := bits.FromBig(nBig, l)
				yv := bits.FromBig(y, l+1)
				a2d, err := NewArray2D(nv, yv)
				if err != nil {
					t.Fatal(err)
				}
				got, cycles, err := a2d.Run(bits.FromBig(x, l+1))
				if err != nil {
					t.Fatal(err)
				}
				if cycles != 3*l+4 {
					t.Fatalf("l=%d: latency %d, want %d", l, cycles, 3*l+4)
				}
				if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
					t.Fatalf("l=%d N=%s x=%s y=%s: 2D array wrong: got %s want %s",
						l, nBig, x, y, got.Big(), ctx.Mul(x, y))
				}
			}
		}
	}
}

// Pipelining: K multiplications sharing one y must all be correct and
// finish in 3l+4 + 2(K-1) cycles — amortized one product per 2 clocks.
func TestArray2DBatchThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	for _, l := range []int{4, 8, 16} {
		nBig := randOdd(rng, l)
		ctx, _ := mont.NewCtx(nBig)
		y := new(big.Int).Rand(rng, ctx.N2)
		a2d, err := NewArray2D(bits.FromBig(nBig, l), bits.FromBig(y, l+1))
		if err != nil {
			t.Fatal(err)
		}
		const k = 17
		xs := make([]bits.Vec, k)
		want := make([]*big.Int, k)
		for i := range xs {
			x := new(big.Int).Rand(rng, ctx.N2)
			xs[i] = bits.FromBig(x, l+1)
			want[i] = ctx.Mul(x, y)
		}
		results, total, err := a2d.RunBatch(xs)
		if err != nil {
			t.Fatal(err)
		}
		if wantTotal := 3*l + 4 + 2*(k-1); total != wantTotal {
			t.Fatalf("l=%d: batch took %d cycles, want %d", l, total, wantTotal)
		}
		for i, r := range results {
			if r.Big().Cmp(want[i]) != 0 {
				t.Fatalf("l=%d: batch result %d wrong: got %s want %s",
					l, i, r.Big(), want[i])
			}
		}
	}
}

func TestArray2DBatchEmpty(t *testing.T) {
	a2d, _ := NewArray2D(bits.FromUint64(13, 4), bits.FromUint64(9, 5))
	results, total, err := a2d.RunBatch(nil)
	if err != nil || len(results) != 0 || total != 0 {
		t.Errorf("empty batch: %v %d %v", results, total, err)
	}
}

// Reuse after Reset.
func TestArray2DReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	l := 8
	nBig := randOdd(rng, l)
	ctx, _ := mont.NewCtx(nBig)
	y := new(big.Int).Rand(rng, ctx.N2)
	a2d, _ := NewArray2D(bits.FromBig(nBig, l), bits.FromBig(y, l+1))
	for trial := 0; trial < 4; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		got, _, err := a2d.Run(bits.FromBig(x, l+1))
		if err != nil {
			t.Fatal(err)
		}
		if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatalf("reuse trial %d wrong", trial)
		}
	}
}
