// Package integrity provides the per-operation result checks behind
// the engine's end-to-end "no wrong answer ever leaves the process"
// guarantee — the software analogue of the redundant-core comparison
// in the quad-core RSA processor literature, at a fraction of the
// cost.
//
// Three checks exist, cheapest first:
//
//   - VerifyWitness: given the quotient witness M from
//     mont.Ctx.MulWitness, the Montgomery identity holds over the
//     integers — T·R = x·y + M·N exactly — and an identity over ℤ can
//     be verified in a small-prime residue system with word arithmetic
//     only. A corrupted T (or M) survives only if every checked prime
//     divides the error, i.e. with probability < ∏ 1/pᵢ ≈ 2⁻¹²⁴ for
//     the default four 31-bit primes. This is the check a hardware
//     array would run in parallel RNS checker cells, fed by the same
//     mᵢ broadcast wire the paper's Fig. 1 cells already carry.
//
//   - CheckMont: for results produced by an opaque core (the simulated
//     circuit, or any multiplier a fault injector may have corrupted)
//     no witness is available, and residues alone cannot verify a
//     congruence mod N — the reduction erases residue information mod
//     every other prime. The check therefore pays for two big
//     multiplications and one reduction: T ∈ [0, 2N) and
//     (T·R − x·y) mod N == 0. Still far cheaper than the bit-serial
//     reference multiplication it guards.
//
//   - CheckModExp: full re-verification of an exponentiation against
//     math/big's Exp. There is no sound shortcut for an externally
//     computed modexp (see above), but big.Int's word-level Montgomery
//     arithmetic is an order of magnitude faster than the bit-serial
//     Model path and several orders faster than circuit simulation, so
//     even re-checking every job costs only a few percent
//     (BENCH_faults.json). A Sampler makes the rate configurable.
package integrity

import (
	"fmt"
	"math/big"

	"repro/internal/errs"
	"repro/internal/mont"
)

// defaultPrimes are four 31-bit primes; their product is ≈ 2¹²⁴, so a
// random corruption of the witness identity passes VerifyWitness with
// probability below 2⁻¹²⁴. They fit in uint32 so every per-prime step
// is a uint64 multiply-accumulate, never a big.Int op.
var defaultPrimes = []uint32{2147483647, 2147483629, 2147483587, 2147483579}

// System is a small-prime residue checker. The zero value is not
// usable; construct with NewSystem.
type System struct {
	primes []uint32
}

// NewSystem returns a residue system over k of the default primes
// (k ≤ 0 or k > len selects all of them).
func NewSystem(k int) *System {
	if k <= 0 || k > len(defaultPrimes) {
		k = len(defaultPrimes)
	}
	return &System{primes: defaultPrimes[:k]}
}

// Primes reports how many primes the system checks against.
func (s *System) Primes() int { return len(s.primes) }

// residue computes v mod p for word-sized p, scanning v's magnitude
// most-significant word first. v must be non-negative.
func residue(v *big.Int, p uint32) uint64 {
	words := v.Bits()
	var r uint64
	for i := len(words) - 1; i >= 0; i-- {
		w := uint64(words[i])
		// 64-bit words: fold the two 32-bit halves so the running value
		// stays below 2⁶⁴ before each reduction.
		if _w := uint(0); _w == 0 && bigWordBits == 64 {
			r = (r<<32 | w>>32) % uint64(p)
			r = (r<<32 | w&0xFFFFFFFF) % uint64(p)
		} else {
			r = (r<<32 | w) % uint64(p)
		}
	}
	return r
}

const bigWordBits = 32 << (^big.Word(0) >> 63)

// VerifyWitness checks the integer identity T·R = x·y + M·N in the
// residue system, where m is the quotient witness from
// mont.Ctx.MulWitness. It returns nil when the identity holds mod
// every prime, and an ErrIntegrity-wrapped error naming the first
// prime that refuted it otherwise.
func (s *System) VerifyWitness(ctx *mont.Ctx, x, y, t, m *big.Int) error {
	return s.VerifyWitnessRN(ctx.N, ctx.R, x, y, t, m)
}

// VerifyWitnessRN is VerifyWitness for an arbitrary (N, R) pair: the
// identity T·R = x·y + M·N is R-generic, so the same residue check
// covers the radix-2 path (R = 2^(l+2)) and the word-level CIOS kit
// (R = 2^(64·S), witness from highradix.Word.MulWitness) alike.
func (s *System) VerifyWitnessRN(n, r, x, y, t, m *big.Int) error {
	for _, p := range s.primes {
		pp := uint64(p)
		lhs := residue(t, p) * residue(r, p) % pp
		rhs := (residue(x, p)*residue(y, p) + residue(m, p)*residue(n, p)) % pp
		if lhs != rhs {
			return fmt.Errorf("integrity: witness identity T·R = x·y + M·N fails mod %d: %w",
				p, errs.ErrIntegrity)
		}
	}
	return nil
}

// CheckMont verifies a Montgomery product T claimed for operands
// (x, y) under ctx, with no witness available: the range invariant
// T ∈ [0, 2N) and the residue identity T·R ≡ x·y (mod N), paid for
// with full-width arithmetic (two multiplications and one reduction).
func CheckMont(ctx *mont.Ctx, x, y, t *big.Int) error {
	if t == nil || t.Sign() < 0 || t.Cmp(ctx.N2) >= 0 {
		return fmt.Errorf("integrity: Mont result outside [0, 2N): %w", errs.ErrIntegrity)
	}
	d := new(big.Int).Mul(t, ctx.R)
	d.Sub(d, new(big.Int).Mul(x, y))
	d.Mod(d, ctx.N)
	if d.Sign() != 0 {
		return fmt.Errorf("integrity: Mont residue check T·R ≢ x·y (mod N): %w", errs.ErrIntegrity)
	}
	return nil
}

// CheckModExp fully re-verifies v = base^exp mod N against math/big.
func CheckModExp(n, base, exp, v *big.Int) error {
	if v == nil || v.Sign() < 0 || v.Cmp(n) >= 0 {
		return fmt.Errorf("integrity: ModExp result outside [0, N): %w", errs.ErrIntegrity)
	}
	if want := new(big.Int).Exp(base, exp, n); v.Cmp(want) != 0 {
		return fmt.Errorf("integrity: ModExp re-verification mismatch: %w", errs.ErrIntegrity)
	}
	return nil
}

// RecomputeMont is the trusted fallback path: it recomputes the
// product on the reference core with a witness and verifies the
// witness identity before returning, so a recomputed result is never
// handed back unchecked.
func (s *System) RecomputeMont(ctx *mont.Ctx, x, y *big.Int) (*big.Int, error) {
	t, m := ctx.MulWitness(x, y)
	if err := s.VerifyWitness(ctx, x, y, t, m); err != nil {
		return nil, fmt.Errorf("integrity: reference recompute failed its own check: %w", err)
	}
	return t, nil
}

// Sampler decides, deterministically and without shared state, which
// operations get the expensive full re-verification. A Sampler is
// confined to one goroutine (each engine worker owns its own); rate 1
// checks everything, rate 0 nothing, 0.25 every fourth operation — the
// error accumulator spreads checks evenly instead of bursting.
type Sampler struct {
	rate float64
	acc  float64
}

// NewSampler clamps rate into [0, 1].
func NewSampler(rate float64) *Sampler {
	if rate < 0 {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{rate: rate}
}

// Rate reports the configured sampling rate.
func (s *Sampler) Rate() float64 { return s.rate }

// Next reports whether the next operation should be fully verified.
func (s *Sampler) Next() bool {
	s.acc += s.rate
	if s.acc >= 1 {
		s.acc--
		return true
	}
	return false
}
