package integrity

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/errs"
	"repro/internal/mont"
)

// randCtx builds a context for a random odd l-bit modulus.
func randCtx(t *testing.T, rng *rand.Rand, l int) *mont.Ctx {
	t.Helper()
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	ctx, err := mont.NewCtx(n)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// TestResidue: the word-arithmetic residue fold agrees with big.Int
// division across sizes that straddle word boundaries.
func TestResidue(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, bits := range []int{0, 1, 31, 32, 33, 63, 64, 65, 512, 1031} {
		v := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		for _, p := range defaultPrimes {
			want := new(big.Int).Mod(v, big.NewInt(int64(p))).Uint64()
			if got := residue(v, p); got != want {
				t.Fatalf("residue(%d-bit, %d) = %d, want %d", bits, p, got, want)
			}
		}
	}
}

// TestWitnessIdentity: MulWitness's quotient makes T·R = x·y + M·N an
// exact integer identity, VerifyWitness accepts it, and any single-bit
// corruption of T is refuted.
func TestWitnessIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSystem(0)
	for trial := 0; trial < 20; trial++ {
		ctx := randCtx(t, rng, 64+trial*16)
		x := new(big.Int).Rand(rng, ctx.N)
		y := new(big.Int).Rand(rng, ctx.N)
		tt, m := ctx.MulWitness(x, y)

		// Exact over ℤ, not merely mod N.
		lhs := new(big.Int).Mul(tt, ctx.R)
		rhs := new(big.Int).Mul(x, y)
		rhs.Add(rhs, new(big.Int).Mul(m, ctx.N))
		if lhs.Cmp(rhs) != 0 {
			t.Fatal("T·R != x·y + M·N over the integers")
		}
		if tt.Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatal("MulWitness product disagrees with Mul")
		}
		if err := s.VerifyWitness(ctx, x, y, tt, m); err != nil {
			t.Fatalf("clean witness refused: %v", err)
		}

		// Flip one bit of T: must be caught and typed.
		bad := new(big.Int).Set(tt)
		bit := rng.Intn(ctx.L)
		bad.SetBit(bad, bit, bad.Bit(bit)^1)
		err := s.VerifyWitness(ctx, x, y, bad, m)
		if err == nil {
			t.Fatalf("bit %d corruption passed the witness check", bit)
		}
		if !errors.Is(err, errs.ErrIntegrity) {
			t.Fatalf("witness failure not typed ErrIntegrity: %v", err)
		}
	}
}

// TestCheckMont: accepts real products, rejects corrupted and
// out-of-range ones with ErrIntegrity.
func TestCheckMont(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := randCtx(t, rng, 256)
	x := new(big.Int).Rand(rng, ctx.N)
	y := new(big.Int).Rand(rng, ctx.N)
	tt := ctx.Mul(x, y)

	if err := CheckMont(ctx, x, y, tt); err != nil {
		t.Fatalf("clean product refused: %v", err)
	}
	bad := new(big.Int).Set(tt)
	bad.SetBit(bad, 7, bad.Bit(7)^1)
	if err := CheckMont(ctx, x, y, bad); !errors.Is(err, errs.ErrIntegrity) {
		t.Fatalf("corrupted product: err = %v, want ErrIntegrity", err)
	}
	if err := CheckMont(ctx, x, y, new(big.Int).Set(ctx.N2)); !errors.Is(err, errs.ErrIntegrity) {
		t.Fatalf("T = 2N out of range: err = %v, want ErrIntegrity", err)
	}
	if err := CheckMont(ctx, x, y, nil); !errors.Is(err, errs.ErrIntegrity) {
		t.Fatalf("nil T: err = %v, want ErrIntegrity", err)
	}
}

// TestCheckModExp: the full re-verification accepts math/big's answer
// and rejects anything else.
func TestCheckModExp(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 255))
	n.SetBit(n, 255, 1)
	n.SetBit(n, 0, 1)
	base := new(big.Int).Rand(rng, n)
	exp := big.NewInt(65537)
	v := new(big.Int).Exp(base, exp, n)

	if err := CheckModExp(n, base, exp, v); err != nil {
		t.Fatalf("correct result refused: %v", err)
	}
	bad := new(big.Int).Xor(v, big.NewInt(1<<20))
	bad.Mod(bad, n)
	if err := CheckModExp(n, base, exp, bad); !errors.Is(err, errs.ErrIntegrity) {
		t.Fatalf("wrong result: err = %v, want ErrIntegrity", err)
	}
	if err := CheckModExp(n, base, exp, n); !errors.Is(err, errs.ErrIntegrity) {
		t.Fatalf("v = N out of range: err = %v, want ErrIntegrity", err)
	}
}

// TestRecomputeMont: the trusted fallback returns the same product as
// the plain reference path.
func TestRecomputeMont(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := randCtx(t, rng, 192)
	s := NewSystem(0)
	for i := 0; i < 10; i++ {
		x := new(big.Int).Rand(rng, ctx.N)
		y := new(big.Int).Rand(rng, ctx.N)
		v, err := s.RecomputeMont(ctx, x, y)
		if err != nil {
			t.Fatal(err)
		}
		if v.Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatal("RecomputeMont disagrees with Mul")
		}
	}
}

// TestSampler: the error accumulator checks exactly rate×n of n ops,
// spread evenly rather than in bursts.
func TestSampler(t *testing.T) {
	if s := NewSampler(1); !s.Next() || !s.Next() {
		t.Fatal("rate 1 must check every op")
	}
	s := NewSampler(0)
	for i := 0; i < 100; i++ {
		if s.Next() {
			t.Fatal("rate 0 must never check")
		}
	}
	s = NewSampler(0.25)
	hits, maxGap, gap := 0, 0, 0
	for i := 0; i < 100; i++ {
		if s.Next() {
			hits++
			if gap > maxGap {
				maxGap = gap
			}
			gap = 0
		} else {
			gap++
		}
	}
	if hits != 25 {
		t.Fatalf("rate 0.25 over 100 ops: %d checks, want 25", hits)
	}
	if maxGap > 4 {
		t.Fatalf("checks bursty: max gap %d between checks", maxGap)
	}
	// Clamping.
	if NewSampler(-1).Rate() != 0 || NewSampler(2).Rate() != 1 {
		t.Fatal("rate not clamped into [0, 1]")
	}
}

// TestSystemPrimeCount: NewSystem clamps its prime count.
func TestSystemPrimeCount(t *testing.T) {
	if NewSystem(0).Primes() != len(defaultPrimes) {
		t.Fatal("k=0 must select all primes")
	}
	if NewSystem(2).Primes() != 2 {
		t.Fatal("k=2 must select two primes")
	}
	if NewSystem(99).Primes() != len(defaultPrimes) {
		t.Fatal("oversized k must clamp to all primes")
	}
}
