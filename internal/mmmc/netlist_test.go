package mmmc

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mont"
	"repro/internal/systolic"
)

func TestCounterWidth(t *testing.T) {
	cases := map[int]int{2: 4, 8: 5, 16: 6, 32: 7, 1024: 12}
	for l, want := range cases {
		if got := CounterWidth(l); got != want {
			t.Errorf("CounterWidth(%d) = %d, want %d", l, got, want)
		}
	}
}

// runNetlist drives a compiled gate-level MMMC through one multiplication
// exactly as an external master would: present operands, raise START for
// one clock, then clock until DONE.
func runNetlist(t *testing.T, sim *logic.Sim, p *NetPorts, x, y, n bits.Vec) (bits.Vec, int) {
	t.Helper()
	l := p.L
	sim.SetMany(p.XBus, x.Resize(l+1))
	sim.SetMany(p.YBus, y.Resize(l+1))
	sim.SetMany(p.NBus, n.Resize(l))
	sim.Set(p.Start, 1)
	sim.Step() // load edge: registers capture, state → MUL1
	sim.Set(p.Start, 0)
	cycles := 0
	for sim.Get(p.Done) == 0 {
		sim.Step()
		cycles++
		if cycles > 4*l+16 {
			t.Fatal("gate-level DONE never asserted")
		}
	}
	return sim.GetVec(p.Result), cycles
}

// The gate-level MMMC must equal the behavioural circuit: same results,
// same cycle count (3l+4), for both variants, across widths.
func TestNetlistMatchesBehavioural(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, variant := range []systolic.Variant{systolic.Faithful, systolic.Guarded} {
		for _, l := range []int{2, 3, 5, 8, 16} {
			nBig := randOdd(rng, l)
			nl := logic.New()
			p, err := BuildNetlist(nl, l, variant)
			if err != nil {
				t.Fatal(err)
			}
			sim, err := logic.Compile(nl)
			if err != nil {
				t.Fatal(err)
			}
			beh, _ := New(l, variant)
			n2 := new(big.Int).Lsh(nBig, 1)
			yBound := n2
			if variant == systolic.Faithful {
				// Stay inside the faithful-safe region so both models
				// compute the true product (they'd also agree outside
				// it, but keep the oracle checkable).
				yBound = new(big.Int).Lsh(big.NewInt(1), uint(l+1))
				yBound = yBound.Sub(yBound, nBig)
				if yBound.Cmp(n2) > 0 {
					yBound = n2
				}
			}
			for trial := 0; trial < 6; trial++ {
				x := new(big.Int).Rand(rng, n2)
				y := new(big.Int).Rand(rng, yBound)
				xv, yv, nv := bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l)

				wantRes, wantCycles, err := beh.Run(xv, yv, nv)
				if err != nil {
					t.Fatal(err)
				}
				gotRes, gotCycles := runNetlist(t, sim, p, xv, yv, nv)
				if gotCycles != wantCycles {
					t.Fatalf("variant=%v l=%d: netlist %d cycles, behavioural %d",
						variant, l, gotCycles, wantCycles)
				}
				if !bits.Equal(gotRes, wantRes) {
					t.Fatalf("variant=%v l=%d: netlist %s != behavioural %s",
						variant, l, gotRes.Big(), wantRes.Big())
				}
			}
		}
	}
}

// Gate-level end-to-end against the mont reference, with back-to-back
// restarts on the same netlist instance.
func TestNetlistEndToEndAndRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	l := 16
	nBig := randOdd(rng, l)
	ctx, _ := mont.NewCtx(nBig)
	nl := logic.New()
	p, err := BuildNetlist(nl, l, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		y := new(big.Int).Rand(rng, ctx.N2)
		got, cycles, errRun := func() (bits.Vec, int, error) {
			r, c := runNetlist(t, sim, p, bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l))
			return r, c, nil
		}()
		if errRun != nil {
			t.Fatal(errRun)
		}
		if cycles != 3*l+4 {
			t.Fatalf("cycles = %d", cycles)
		}
		if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatalf("trial %d: gate-level MMMC wrong", trial)
		}
	}
}

// The OUT state must hold DONE and a stable RESULT until the next START.
func TestNetlistOutHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	l := 8
	nBig := randOdd(rng, l)
	nl := logic.New()
	p, _ := BuildNetlist(nl, l, systolic.Guarded)
	sim, _ := logic.Compile(nl)
	x := new(big.Int).Rand(rng, new(big.Int).Lsh(nBig, 1))
	res, _ := runNetlist(t, sim, p, bits.FromBig(x, l+1), bits.FromUint64(5, l+1), bits.FromBig(nBig, l))
	for i := 0; i < 5; i++ {
		sim.Step()
		if sim.Get(p.Done) != 1 {
			t.Fatal("DONE dropped while waiting in OUT")
		}
		if !bits.Equal(sim.GetVec(p.Result), res) {
			t.Fatal("RESULT changed while waiting in OUT")
		}
	}
}

// The controller's control-register complement: 2-bit state register
// plus the cycle counter — linear-logarithmic in l as the paper argues
// (§4.4), in contrast to Blum–Paar's 3·⌈l/u⌉ control bits.
func TestControlBits(t *testing.T) {
	for _, l := range []int{32, 128, 1024} {
		nl := logic.New()
		p, err := BuildNetlist(nl, l, systolic.Guarded)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Counter) != CounterWidth(l) {
			t.Errorf("l=%d: counter has %d bits", l, len(p.Counter))
		}
		// State register: 2 bits.
		if p.StateS0 == p.StateS1 {
			t.Error("state bits aliased")
		}
	}
}

func TestBuildNetlistValidation(t *testing.T) {
	nl := logic.New()
	if _, err := BuildNetlist(nl, 1, systolic.Guarded); err == nil {
		t.Error("l=1 accepted")
	}
}

// The event-driven engine must run the full MMM circuit identically to
// the levelized engine — same RESULT, same DONE timing.
func TestNetlistEventSimEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	l := 12
	nBig := randOdd(rng, l)
	nl := logic.New()
	p, err := BuildNetlist(nl, l, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	lev, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := logic.NewEventSim(nl)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		x := new(big.Int).Rand(rng, new(big.Int).Lsh(nBig, 1))
		y := new(big.Int).Rand(rng, new(big.Int).Lsh(nBig, 1))
		xv, yv, nv := bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l)
		// Drive both in lockstep.
		lev.SetMany(p.XBus, xv)
		ev.SetMany(p.XBus, xv)
		lev.SetMany(p.YBus, yv)
		ev.SetMany(p.YBus, yv)
		lev.SetMany(p.NBus, nv)
		ev.SetMany(p.NBus, nv)
		lev.Set(p.Start, 1)
		ev.Set(p.Start, 1)
		lev.Step()
		ev.Step()
		lev.Set(p.Start, 0)
		ev.Set(p.Start, 0)
		for c := 0; c < 3*l+4; c++ {
			lev.Step()
			ev.Step()
			if lev.Get(p.Done) != ev.Get(p.Done) {
				t.Fatalf("trial %d clock %d: DONE differs", trial, c)
			}
		}
		if !bits.Equal(lev.GetVec(p.Result), ev.GetVec(p.Result)) {
			t.Fatalf("trial %d: engines disagree on RESULT", trial)
		}
	}
}

// Outside the faithful-safe operand region the faithful variant computes
// a WRONG product — and the gate-level netlist must be wrong in exactly
// the same way (bit-exact bug equivalence between behavioural and gate
// models). This pins down that the hazard is a property of the paper's
// design, not of either simulation engine.
func TestNetlistFaithfulHazardBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	l := 8
	// All-ones modulus maximizes the hazard rate.
	nBig := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1))
	ctx, _ := mont.NewCtx(nBig)

	nl := logic.New()
	p, err := BuildNetlist(nl, l, systolic.Faithful)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	beh, _ := New(l, systolic.Faithful)

	sawWrong := false
	for trial := 0; trial < 300 && !sawWrong; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		y := new(big.Int).Rand(rng, ctx.N2)
		xv, yv, nv := bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l)
		want, _, err := beh.Run(xv, yv, nv)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := runNetlist(t, sim, p, xv, yv, nv)
		if !bits.Equal(got, want) {
			t.Fatalf("behavioural and gate-level faithful models diverge")
		}
		if want.Big().Cmp(ctx.Mul(x, y)) != 0 {
			sawWrong = true // both wrong, identically — the paper's bug
		}
	}
	if !sawWrong {
		t.Error("expected at least one hazard-corrupted product at N = 2^l - 1")
	}
}
