package mmmc

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/systolic"
)

// NetPorts exposes the primary inputs and outputs of a gate-level MMMC
// built by BuildNetlist — the external interface of Fig. 3.
type NetPorts struct {
	L       int
	Variant systolic.Variant

	// Inputs.
	Start logic.Signal
	XBus  []logic.Signal // l+1 nets
	YBus  []logic.Signal // l+1 nets
	NBus  []logic.Signal // l nets

	// Outputs.
	Done   logic.Signal
	Result []logic.Signal // l+1 nets

	// Debug visibility (not part of the paper's interface).
	StateS1, StateS0 logic.Signal // state encoding: 00 IDLE, 01 MUL1, 10 MUL2, 11 OUT
	Counter          []logic.Signal
	Array            *systolic.Ports
}

// CounterWidth returns the number of counter bits needed to count to
// 3l+3 — the paper states log2(l+2)+2 control bits overall; a counter
// addressing the full 3l+4 schedule needs ⌈log2(3l+4)⌉.
func CounterWidth(l int) int {
	w := 0
	for v := 3*l + 3; v > 0; v >>= 1 {
		w++
	}
	return w
}

// BuildNetlist constructs a complete gate-level MMMC: ASM controller
// (2-bit state register, cycle counter, two comparators), the X shift
// register, Y and N holding registers, the systolic array, and the
// RESULT register with its walking-token capture chain. The netlist is
// cycle-equivalent to the behavioural Circuit (conformance-tested).
func BuildNetlist(nl *logic.Netlist, l int, variant systolic.Variant) (*NetPorts, error) {
	if l < 2 {
		return nil, fmt.Errorf("mmmc: modulus width must be at least 2, got %d", l)
	}
	p, err := BuildCore(nl, l, variant,
		nl.Input("START"), nl.InputVec("XBUS", l+1), nl.InputVec("YBUS", l+1), nl.InputVec("NBUS", l))
	if err != nil {
		return nil, err
	}
	nl.MarkOutput(p.Done, "DONE")
	return p, nil
}

// BuildCore constructs the gate-level MMMC with caller-supplied nets for
// its interface, so it can be embedded in a larger design (the gate-level
// exponentiator drives these from its own registers and muxes).
func BuildCore(nl *logic.Netlist, l int, variant systolic.Variant, start logic.Signal, xbus, ybus, nbus []logic.Signal) (*NetPorts, error) {
	if l < 2 {
		return nil, fmt.Errorf("mmmc: modulus width must be at least 2, got %d", l)
	}
	if len(xbus) != l+1 || len(ybus) != l+1 || len(nbus) != l {
		return nil, fmt.Errorf("mmmc: bus widths %d/%d/%d, want %d/%d/%d",
			len(xbus), len(ybus), len(nbus), l+1, l+1, l)
	}
	p := &NetPorts{
		L:       l,
		Variant: variant,
		Start:   start,
		XBus:    xbus,
		YBus:    ybus,
		NBus:    nbus,
	}

	// ---- Controller ----
	// State register with deferred next-state logic.
	s1, setS1 := nl.FeedbackFF(logic.Const0, 0, "state.s1")
	s0, setS0 := nl.FeedbackFF(logic.Const0, 0, "state.s0")
	p.StateS1, p.StateS0 = s1, s0

	ns1 := nl.NotGate(s1)
	ns0 := nl.NotGate(s0)
	isIdle := nl.AndGate(ns1, ns0)
	isMul1 := nl.AndGate(ns1, s0)
	isMul2 := nl.AndGate(s1, ns0)
	isOut := nl.AndGate(s1, s0)
	inMul := nl.OrGate(isMul1, isMul2)

	// load: START accepted in IDLE or OUT.
	load := nl.AndGate(p.Start, nl.OrGate(isIdle, isOut))
	nl.Name(load, "load")

	// Cycle counter: increments during MUL1/MUL2, clears on load.
	w := CounterWidth(l)
	cnt := make([]logic.Signal, w)
	setCnt := make([]func(logic.Signal), w)
	for i := 0; i < w; i++ {
		cnt[i], setCnt[i] = nl.FeedbackFF(load, 0, fmt.Sprintf("counter(%d)", i))
	}
	// Carry-lookahead increment: logarithmic-depth prefix network (the
	// FPGA's dedicated carry chain would make it effectively constant;
	// the tree keeps the model conservative).
	inc := nl.IncrementLogic(cnt)
	for i := 0; i < w; i++ {
		// Hold unless counting: D = inMul ? successor : Q.
		setCnt[i](nl.Mux2(inMul, inc[i], cnt[i]))
	}
	p.Counter = cnt

	// Comparators. count-end fires at counter == 3l+3 (the clock of the
	// last result capture); the token comparator fires at 2l+2, one
	// clock before the first capture.
	countEnd := nl.EqualsConst(cnt, 3*l+3)
	nl.Name(countEnd, "count-end")
	tokenStart := nl.EqualsConst(cnt, 2*l+2)
	nl.Name(tokenStart, "token-start")

	// Next-state logic (count-end is honoured in both MUL states; see
	// the package comment on the ASM reconstruction).
	mulEnd := nl.AndGate(inMul, countEnd)
	stayOut := nl.AndGate(isOut, nl.NotGate(p.Start))
	nLoad := nl.NotGate(load)
	// nextS1: MUL1→MUL2/OUT, MUL2 end→OUT, OUT stays (unless load).
	nextS1 := nl.AndGate(nLoad, nl.OrGate(nl.OrGate(isMul1, mulEnd), stayOut))
	// nextS0: load→MUL1; MUL1 end→OUT; MUL2→MUL1 or OUT (s0=1 either
	// way); OUT stays.
	mul1End := nl.AndGate(isMul1, countEnd)
	nextS0 := nl.OrGate(load, nl.OrGate(nl.OrGate(mul1End, isMul2), stayOut))
	setS1(nextS1)
	setS0(nextS0)

	p.Done = isOut

	// ---- Datapath ----
	// X shift register: load from XBUS, shift right (zero fill) each
	// MUL2, hold otherwise.
	shiftX := isMul2
	xCE := nl.OrGate(load, shiftX)
	xQ := make([]logic.Signal, l+2)
	setX := make([]func(logic.Signal), l+1)
	for i := 0; i <= l; i++ {
		xQ[i], setX[i] = nl.FeedbackFF(logic.Const0, 0, fmt.Sprintf("X(%d)", i))
	}
	xQ[l+1] = logic.Const0 // zero fill at the MSB
	for i := 0; i <= l; i++ {
		d := nl.Mux2(load, p.XBus[i], xQ[i+1])
		setX[i](nl.Mux2(xCE, d, xQ[i]))
	}

	// Y and N holding registers: capture on load only.
	yQ := make([]logic.Signal, l+1)
	for i := 0; i <= l; i++ {
		yQ[i] = nl.AddDFFCE(p.YBus[i], load, 0, fmt.Sprintf("Yreg(%d)", i))
	}
	nQ := make([]logic.Signal, l)
	for i := 0; i < l; i++ {
		nQ[i] = nl.AddDFFCE(p.NBus[i], load, 0, fmt.Sprintf("Nreg(%d)", i))
	}

	// Systolic array, cleared on load.
	arr, err := systolic.BuildArrayCore(nl, l, variant, xQ[0], yQ, nQ, load)
	if err != nil {
		return nil, err
	}
	p.Array = arr

	// ---- RESULT register with walking-token capture ----
	token := make([]logic.Signal, l+1)
	prev := tokenStart
	for b := 0; b <= l; b++ {
		token[b] = nl.AddDFFFull(prev, logic.Const1, load, 0, fmt.Sprintf("token(%d)", b))
		prev = token[b]
	}
	res := make([]logic.Signal, l+1)
	for b := 0; b <= l; b++ {
		// Result bit b latches the combinational digit t_{l+1,b+1} on
		// the same edge T(b+1) does (clock 2l+3+b).
		d := arr.TD[b]
		ce := token[b]
		if b == l && variant == systolic.Faithful {
			// The faithful leftmost cell produces the top digit one
			// clock early, together with digit l.
			d = arr.TD[l]
			ce = token[l-1]
		}
		res[b] = nl.AddDFFFull(d, ce, load, 0, fmt.Sprintf("RESULT(%d)", b))
	}
	p.Result = res
	return p, nil
}
