// Package mmmc implements the Montgomery Modular Multiplication Circuit
// of the paper's Fig. 3/4: the systolic array wrapped in a datapath
// (X/Y/N/T registers, counter, comparator) and an algorithmic-state-
// machine controller with states IDLE → MUL1 ⇄ MUL2 → OUT.
//
// The circuit follows the paper's interface: three l-bit-class data
// inputs X, Y, N, a START input, a DONE output and a RESULT output. One
// multiplication takes exactly 3l+4 clock cycles of computation (the
// paper's T_MMM), after which the controller enters OUT with DONE high.
//
// One reconstruction detail: the paper stores cell outputs in a single
// (l+1)-bit T register, but because the array is skewed (cell j finishes
// row i at clock 2i+j) no single-instant snapshot of T contains the final
// row. The RESULT register here therefore captures bit b at clock
// 2l+3+b — a one-hot token that walks up the register, costing l+1
// enable flip-flops and no extra compute cycles. The paper's stated
// counter comparison ("counter reaches 2(l+1)") does not by itself
// resolve the skew; the token capture preserves both the interface and
// the 3l+4-cycle figure. See EXPERIMENTS.md.
package mmmc

import (
	"errors"
	"fmt"

	"repro/internal/bits"
	"repro/internal/systolic"
)

// State is the controller state of the ASM chart (Fig. 4).
type State uint8

// Controller states.
const (
	Idle State = iota
	Mul1
	Mul2
	Out
)

// String names the state as in Fig. 4.
func (s State) String() string {
	switch s {
	case Idle:
		return "IDLE"
	case Mul1:
		return "MUL1"
	case Mul2:
		return "MUL2"
	case Out:
		return "OUT"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Circuit is the cycle-accurate behavioural MMMC.
type Circuit struct {
	L       int
	Variant systolic.Variant

	state   State
	counter int // clock counter within MUL1/MUL2, 0-based

	xReg bits.Vec // l+1 bits, shifts right one bit per MUL2 (zero fill)
	yReg bits.Vec // l+1 bits
	nReg bits.Vec // l bits

	array  *systolic.Array
	result bits.Vec // RESULT register with walking-token capture
	done   bool

	totalCycles int // cycles spent in MUL1/MUL2 for the last operation
}

// New creates an MMMC for l-bit moduli (l ≥ 2).
func New(l int, variant systolic.Variant) (*Circuit, error) {
	if l < 2 {
		return nil, fmt.Errorf("mmmc: modulus width must be at least 2, got %d", l)
	}
	return &Circuit{
		L:       l,
		Variant: variant,
		state:   Idle,
		result:  bits.New(l + 1),
	}, nil
}

// State returns the controller's current state.
func (c *Circuit) State() State { return c.state }

// Done returns the DONE output (high only in the OUT state).
func (c *Circuit) Done() bool { return c.done }

// Result returns the RESULT output; valid once Done reports true.
func (c *Circuit) Result() bits.Vec { return c.result.Clone() }

// CyclesPerMul returns the paper's T_MMM cycle count for this width,
// 3l + 4. Start-to-DONE measured on the simulator matches it exactly
// (conformance-tested).
func (c *Circuit) CyclesPerMul() int { return 3*c.L + 4 }

// Start performs the IDLE-state load: X, Y and N registers take the
// input values, the array state and counter clear, and the controller
// proceeds to MUL1. The modulus must be odd with exactly l significant
// bits; x and y must fit in l+1 bits. For the chaining guarantee
// (result < 2N usable directly as a next operand) callers should keep
// x, y < 2N; the Guarded variant is correct for all such operands, the
// Faithful variant additionally requires y + N ≤ 2^(l+1) (the paper's
// implicit condition).
func (c *Circuit) Start(x, y, n bits.Vec) error {
	if n.BitLen() != c.L {
		return fmt.Errorf("mmmc: modulus has %d significant bits, want exactly %d", n.BitLen(), c.L)
	}
	if n.Bit(0) != 1 {
		return errors.New("mmmc: modulus must be odd")
	}
	if x.BitLen() > c.L+1 {
		return fmt.Errorf("mmmc: x has %d bits, limit %d", x.BitLen(), c.L+1)
	}
	if y.BitLen() > c.L+1 {
		return fmt.Errorf("mmmc: y has %d bits, limit %d", y.BitLen(), c.L+1)
	}
	c.xReg = x.Resize(c.L + 1)
	c.yReg = y.Resize(c.L + 1)
	c.nReg = n.Resize(c.L)
	arr, err := systolic.NewArray(c.Variant, c.nReg, c.yReg)
	if err != nil {
		return err
	}
	c.array = arr
	c.array.Reset()
	c.result = bits.New(c.L + 1)
	c.counter = 0
	c.totalCycles = 0
	c.done = false
	c.state = Mul1
	return nil
}

// Step advances the circuit one clock cycle.
func (c *Circuit) Step() {
	switch c.state {
	case Idle, Out:
		// Waiting for START (Idle) or for the result to be read (Out):
		// no datapath activity.
		return
	case Mul1, Mul2:
		l := c.L
		c.array.Step(c.xReg.Bit(0))
		// RESULT register: the walking token enables bit b's capture at
		// the end of clock 2l+3+b.
		if b := c.counter - (2*l + 3); b >= 0 && b <= l {
			c.result[b] = c.array.TBit(b + 1)
		}
		if c.state == Mul2 {
			// Right-shift X with zero fill (guarantees X(0)=0 in the
			// last iteration, per §4.4).
			c.xReg.ShrInPlace(0)
		}
		c.totalCycles++
		// Comparator: count-end after the last capture clock 3l+3.
		if c.counter == 3*l+3 {
			if c.Variant == systolic.Faithful {
				// The faithful top bit lives in the T(l+1) delay
				// register (see systolic.Array).
				c.result[l] = c.faithfulTopBit()
			}
			c.state = Out
			c.done = true
			return
		}
		c.counter++
		if c.state == Mul1 {
			c.state = Mul2
		} else {
			c.state = Mul1
		}
	}
}

// faithfulTopBit reads the delayed T(l+1) register of the faithful array.
func (c *Circuit) faithfulTopBit() bits.Bit {
	return c.array.TL1Delayed()
}

// DroppedCarries reports faithful-variant carry drops during the last
// multiplication (always 0 for Guarded).
func (c *Circuit) DroppedCarries() int {
	if c.array == nil {
		return 0
	}
	return c.array.DroppedCarries()
}

// Run performs one complete multiplication: Start, then Step until DONE.
// It returns the result and the number of MUL1/MUL2 clock cycles, which
// conformance tests pin to exactly 3l+4.
func (c *Circuit) Run(x, y, n bits.Vec) (bits.Vec, int, error) {
	if err := c.Start(x, y, n); err != nil {
		return nil, 0, err
	}
	guard := 4*c.L + 16 // defensive bound; Done must arrive at 3l+4
	for i := 0; !c.done; i++ {
		if i > guard {
			return nil, 0, errors.New("mmmc: DONE never asserted")
		}
		c.Step()
	}
	return c.Result(), c.totalCycles, nil
}
