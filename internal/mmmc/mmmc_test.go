package mmmc

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/mont"
	"repro/internal/systolic"
)

func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, systolic.Guarded); err == nil {
		t.Error("l=1 accepted")
	}
	c, err := New(8, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	if c.State() != Idle || c.Done() {
		t.Error("fresh circuit not idle")
	}
	if c.CyclesPerMul() != 28 {
		t.Errorf("CyclesPerMul = %d", c.CyclesPerMul())
	}
}

func TestStartValidation(t *testing.T) {
	c, _ := New(8, systolic.Guarded)
	n := bits.FromUint64(251, 8)
	if err := c.Start(bits.FromUint64(1, 9), bits.FromUint64(1, 9), bits.FromUint64(5, 3).Resize(8)); err == nil {
		t.Error("modulus with wrong significant width accepted")
	}
	if err := c.Start(bits.FromUint64(1, 9), bits.FromUint64(1, 9), bits.FromUint64(250, 8)); err == nil {
		t.Error("even modulus accepted")
	}
	if err := c.Start(bits.FromUint64(1023, 10), bits.FromUint64(1, 9), n); err == nil {
		t.Error("oversized x accepted")
	}
	if err := c.Start(bits.FromUint64(1, 9), bits.FromUint64(1023, 10), n); err == nil {
		t.Error("oversized y accepted")
	}
	if err := c.Start(bits.FromUint64(3, 9), bits.FromUint64(7, 9), n); err != nil {
		t.Errorf("valid start rejected: %v", err)
	}
}

// The circuit must compute Mont(x,y) in exactly 3l+4 cycles — the
// paper's T_MMM count (Table 2's cycle basis) — for every width tested.
func TestRunMatchesMontAndCycleCount(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for _, l := range []int{2, 4, 8, 16, 32, 64} {
		nBig := randOdd(rng, l)
		ctx, err := mont.NewCtx(nBig)
		if err != nil {
			t.Fatal(err)
		}
		c, _ := New(l, systolic.Guarded)
		for trial := 0; trial < 10; trial++ {
			x := new(big.Int).Rand(rng, ctx.N2)
			y := new(big.Int).Rand(rng, ctx.N2)
			got, cycles, err := c.Run(bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l))
			if err != nil {
				t.Fatal(err)
			}
			if cycles != 3*l+4 {
				t.Fatalf("l=%d: %d cycles, want %d", l, cycles, 3*l+4)
			}
			if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
				t.Fatalf("l=%d: result wrong", l)
			}
			if !c.Done() || c.State() != Out {
				t.Fatal("DONE/OUT not asserted after Run")
			}
		}
	}
}

// The faithful circuit matches under the safe operand bound.
func TestFaithfulRunUnderSafeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	l := 16
	nBig := randOdd(rng, l)
	ctx, _ := mont.NewCtx(nBig)
	yBound := new(big.Int).Lsh(big.NewInt(1), uint(l+1))
	yBound.Sub(yBound, nBig)
	if yBound.Cmp(ctx.N2) > 0 {
		yBound.Set(ctx.N2)
	}
	c, _ := New(l, systolic.Faithful)
	for trial := 0; trial < 20; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		y := new(big.Int).Rand(rng, yBound)
		got, cycles, err := c.Run(bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l))
		if err != nil {
			t.Fatal(err)
		}
		if cycles != 3*l+4 {
			t.Fatalf("faithful cycles = %d", cycles)
		}
		if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatalf("faithful result wrong under safe bound")
		}
		if c.DroppedCarries() != 0 {
			t.Fatal("dropped carries under safe bound")
		}
	}
}

// ASM conformance: the state trace must be IDLE, then MUL1/MUL2
// alternating for 3l+4 cycles, then OUT; DONE exactly in OUT; X register
// shifts right once per MUL2.
func TestASMStateTrace(t *testing.T) {
	l := 8
	rng := rand.New(rand.NewSource(53))
	nBig := randOdd(rng, l)
	c, _ := New(l, systolic.Guarded)

	if c.State() != Idle {
		t.Fatal("must start in IDLE")
	}
	c.Step() // stepping in IDLE is a no-op
	if c.State() != Idle || c.Done() {
		t.Fatal("IDLE must hold without START")
	}

	x := new(big.Int).Rand(rng, new(big.Int).Lsh(nBig, 1))
	if err := c.Start(bits.FromBig(x, l+1), bits.FromUint64(3, l+1), bits.FromBig(nBig, l)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3*l+4; i++ {
		wantState := Mul1
		if i%2 == 1 {
			wantState = Mul2
		}
		if c.State() != wantState {
			t.Fatalf("cycle %d: state %v, want %v", i, c.State(), wantState)
		}
		if c.Done() {
			t.Fatalf("cycle %d: DONE asserted early", i)
		}
		c.Step()
	}
	if c.State() != Out || !c.Done() {
		t.Fatalf("after 3l+4 cycles: state %v done %v", c.State(), c.Done())
	}
	// OUT holds and the result is stable.
	r1 := c.Result()
	c.Step()
	if c.State() != Out || !bits.Equal(c.Result(), r1) {
		t.Fatal("OUT must hold the result")
	}
}

// The circuit must be restartable: a second Start reuses all state.
func TestRestart(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	l := 12
	nBig := randOdd(rng, l)
	ctx, _ := mont.NewCtx(nBig)
	c, _ := New(l, systolic.Guarded)
	for trial := 0; trial < 4; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		y := new(big.Int).Rand(rng, ctx.N2)
		got, _, err := c.Run(bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l))
		if err != nil {
			t.Fatal(err)
		}
		if got.Big().Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatalf("restart trial %d wrong", trial)
		}
	}
}

// Chaining: feeding results straight back as operands (the whole point
// of the no-subtraction design) must stay correct across a long chain.
func TestChainedMultiplications(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	l := 16
	// Use a modulus in the hazard zone (top of the range) to confirm the
	// guarded variant chains safely where the faithful one would not.
	nBig := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1))
	ctx, _ := mont.NewCtx(nBig)
	c, _ := New(l, systolic.Guarded)
	nv := bits.FromBig(nBig, l)

	a := new(big.Int).Rand(rng, ctx.N2)
	b := new(big.Int).Rand(rng, ctx.N2)
	av, bv := bits.FromBig(a, l+1), bits.FromBig(b, l+1)
	for i := 0; i < 20; i++ {
		got, _, err := c.Run(av, bv, nv)
		if err != nil {
			t.Fatal(err)
		}
		want := ctx.Mul(av.Big(), bv.Big())
		if got.Big().Cmp(want) != 0 {
			t.Fatalf("chain step %d wrong", i)
		}
		av, bv = bv, got // feed back with no reduction
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{Idle: "IDLE", Mul1: "MUL1", Mul2: "MUL2", Out: "OUT"}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(7).String() == "" {
		t.Error("unknown state empty")
	}
}
