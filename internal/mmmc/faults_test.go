package mmmc

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/systolic"
)

// Failure injection on the real design: inject every single stuck-at
// fault into the gate-level MMMC and grade a functional test of a few
// multiplications. Almost all datapath defects must corrupt RESULT or
// DONE — the quantified version of "ordinary operation propagates cell
// faults to the outputs". The threshold is deliberately below 100%:
// genuinely untestable sites exist (e.g. X-register high bits that this
// operand set never exercises, token positions masked by equal values).
func TestMMMCFaultCampaign(t *testing.T) {
	const l = 4
	rng := rand.New(rand.NewSource(171))
	nBig := randOdd(rng, l)

	nl := logic.New()
	p, err := BuildNetlist(nl, l, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}

	// Three fixed multiplications with varied operands as the test set.
	type vec struct{ x, y *big.Int }
	n2 := new(big.Int).Lsh(nBig, 1)
	var tests []vec
	for i := 0; i < 3; i++ {
		tests = append(tests, vec{
			x: new(big.Int).Rand(rng, n2),
			y: new(big.Int).Rand(rng, n2),
		})
	}

	driver := func(s *logic.Sim) []bits.Vec {
		var obs []bits.Vec
		for _, tv := range tests {
			s.SetMany(p.XBus, bits.FromBig(tv.x, l+1))
			s.SetMany(p.YBus, bits.FromBig(tv.y, l+1))
			s.SetMany(p.NBus, bits.FromBig(nBig, l))
			s.Set(p.Start, 1)
			s.Step()
			s.Set(p.Start, 0)
			for c := 0; c < 3*l+4; c++ {
				s.Step()
			}
			sig := append(s.GetVec(p.Result), s.Get(p.Done))
			obs = append(obs, sig)
		}
		return obs
	}

	faults := logic.AllStuckAtFaults(nl)
	rep, err := logic.RunFaultCampaign(nl, faults, driver)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("MMMC l=%d fault campaign: %s", l, rep)
	if rep.Coverage() < 0.80 {
		t.Errorf("fault coverage %.1f%% below 80%% — functional test too weak",
			100*rep.Coverage())
	}
	// The campaign must include a healthy fault population.
	if rep.Total < 400 {
		t.Errorf("only %d fault sites enumerated", rep.Total)
	}
}
