// Package wave writes Value Change Dump (VCD, IEEE 1364) files from
// gate-level simulations — the reproduction's stand-in for the logic
// analyzer / HDL-simulator waveform view the paper's authors had. Any
// signal of a compiled internal/logic netlist can be traced; the output
// opens in GTKWave or any other VCD viewer.
package wave

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bits"
	"repro/internal/logic"
)

// Writer emits a VCD document incrementally.
type Writer struct {
	w      *bufio.Writer
	ids    []string // VCD identifier per signal index
	names  []string
	last   []bits.Bit
	inited bool
	closed bool
	time   int
}

// NewWriter prepares a VCD writer for the named signals. The timescale
// is one nanosecond per simulation step by convention; module is the
// scope name in the VCD hierarchy.
func NewWriter(w io.Writer, module string, names []string) (*Writer, error) {
	if len(names) == 0 {
		return nil, errors.New("wave: no signals to trace")
	}
	if module == "" {
		module = "top"
	}
	vw := &Writer{
		w:     bufio.NewWriter(w),
		ids:   make([]string, len(names)),
		names: append([]string(nil), names...),
		last:  make([]bits.Bit, len(names)),
	}
	for i := range names {
		vw.ids[i] = vcdID(i)
	}
	fmt.Fprintf(vw.w, "$date\n    (generated)\n$end\n")
	fmt.Fprintf(vw.w, "$version\n    repro montgomery systolic simulator\n$end\n")
	fmt.Fprintf(vw.w, "$timescale 1ns $end\n")
	fmt.Fprintf(vw.w, "$scope module %s $end\n", sanitize(module))
	for i, n := range names {
		fmt.Fprintf(vw.w, "$var wire 1 %s %s $end\n", vw.ids[i], sanitize(n))
	}
	fmt.Fprintf(vw.w, "$upscope $end\n$enddefinitions $end\n")
	return vw, nil
}

// vcdID generates compact printable identifiers (base-94 over '!'..'~').
func vcdID(i int) string {
	const lo, hi = 33, 126
	n := hi - lo + 1
	var b []byte
	for {
		b = append(b, byte(lo+i%n))
		i /= n
		if i == 0 {
			break
		}
		i--
	}
	return string(b)
}

func sanitize(s string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "\t", "_")
	return r.Replace(s)
}

// Sample records the signal values at the given time (monotonically
// non-decreasing). Only changed values are emitted, per the format.
func (vw *Writer) Sample(time int, values bits.Vec) error {
	if vw.closed {
		return errors.New("wave: writer closed")
	}
	if len(values) != len(vw.ids) {
		return fmt.Errorf("wave: %d values for %d signals", len(values), len(vw.ids))
	}
	if vw.inited && time < vw.time {
		return fmt.Errorf("wave: time going backwards (%d < %d)", time, vw.time)
	}
	var changes []int
	for i, v := range values {
		if !vw.inited || v != vw.last[i] {
			changes = append(changes, i)
		}
	}
	if len(changes) == 0 {
		return nil
	}
	if !vw.inited {
		fmt.Fprintf(vw.w, "#%d\n$dumpvars\n", time)
	} else {
		fmt.Fprintf(vw.w, "#%d\n", time)
	}
	for _, i := range changes {
		fmt.Fprintf(vw.w, "%d%s\n", values[i]&1, vw.ids[i])
		vw.last[i] = values[i]
	}
	if !vw.inited {
		fmt.Fprintf(vw.w, "$end\n")
		vw.inited = true
	}
	vw.time = time
	return nil
}

// Close flushes the document.
func (vw *Writer) Close() error {
	if vw.closed {
		return nil
	}
	vw.closed = true
	return vw.w.Flush()
}

// Recorder couples a compiled simulator to a VCD writer: call Snapshot
// after every Sim.Step (and once before the first) to trace the chosen
// nets.
type Recorder struct {
	sim  *logic.Sim
	sigs []logic.Signal
	vw   *Writer
}

// NewRecorder traces the given nets of sim into w. If sigs is nil, every
// named net of the netlist is traced (sorted by name for determinism).
func NewRecorder(w io.Writer, module string, nl *logic.Netlist, sim *logic.Sim, sigs []logic.Signal) (*Recorder, error) {
	if sigs == nil {
		type ns struct {
			name string
			sig  logic.Signal
		}
		var all []ns
		for _, in := range nl.Inputs() {
			all = append(all, ns{nl.NameOf(in), in})
		}
		for _, ff := range nl.DFFs() {
			all = append(all, ns{nl.NameOf(ff.Q), ff.Q})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
		for _, e := range all {
			sigs = append(sigs, e.sig)
		}
	}
	names := make([]string, len(sigs))
	for i, s := range sigs {
		names[i] = nl.NameOf(s)
	}
	vw, err := NewWriter(w, module, names)
	if err != nil {
		return nil, err
	}
	return &Recorder{sim: sim, sigs: sigs, vw: vw}, nil
}

// Snapshot samples the traced nets at the simulator's current cycle.
func (r *Recorder) Snapshot() error {
	return r.vw.Sample(r.sim.Cycle(), r.sim.GetVec(r.sigs))
}

// Close finalizes the VCD document.
func (r *Recorder) Close() error { return r.vw.Close() }
