package wave

import (
	"strings"
	"testing"

	"repro/internal/logic"
)

func TestBusWriterBasics(t *testing.T) {
	var sb strings.Builder
	bw, err := NewBusWriter(&sb, "dp", []VarSpec{{"T", 4}, {"done", 1}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Sample(0, []uint64{0b1010, 0}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Sample(1, []uint64{0b1010, 0}); err != nil { // no change
		t.Fatal(err)
	}
	if err := bw.Sample(2, []uint64{0b0001, 1}); err != nil {
		t.Fatal(err)
	}
	bw.Close()
	out := sb.String()
	for _, want := range []string{
		"$var wire 4 ! T [3:0] $end",
		"$var wire 1 \" done $end",
		"b1010 !",
		"b1 !",
		"1\"",
		"#0", "#2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#1") {
		t.Error("unchanged sample emitted a timestamp")
	}
}

func TestBusWriterValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewBusWriter(&sb, "m", nil); err == nil {
		t.Error("no vars accepted")
	}
	if _, err := NewBusWriter(&sb, "m", []VarSpec{{"w", 0}}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewBusWriter(&sb, "m", []VarSpec{{"w", 65}}); err == nil {
		t.Error("width 65 accepted")
	}
	bw, _ := NewBusWriter(&sb, "m", []VarSpec{{"w", 2}})
	if err := bw.Sample(0, []uint64{5}); err == nil {
		t.Error("oversized value accepted")
	}
	if err := bw.Sample(0, []uint64{1, 2}); err == nil {
		t.Error("wrong value count accepted")
	}
	if err := bw.Sample(3, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Sample(1, []uint64{0}); err == nil {
		t.Error("time reversal accepted")
	}
	bw.Close()
	if err := bw.Sample(5, []uint64{0}); err == nil {
		t.Error("sample after close accepted")
	}
}

// Bus recorder over a real counter circuit: the 3-bit counter value must
// appear as b-prefixed vector changes.
func TestBusRecorderWithCounter(t *testing.T) {
	nl := logic.New()
	cnt := make([]logic.Signal, 3)
	set := make([]func(logic.Signal), 3)
	for i := range cnt {
		cnt[i], set[i] = nl.FeedbackFF(logic.Const0, 0, "c"+string(rune('0'+i)))
	}
	inc := nl.IncrementLogic(cnt)
	for i := range cnt {
		set[i](inc[i])
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rec, err := NewBusRecorder(&sb, "counter", sim, []BusGroup{{Name: "count", Signals: cnt}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := rec.Snapshot(); err != nil {
			t.Fatal(err)
		}
		if got := sim.GetVec(cnt); got.Uint64() != uint64(i) {
			t.Fatalf("cycle %d: counter = %v", i, got.Uint64())
		}
		sim.Step()
	}
	rec.Close()
	out := sb.String()
	for _, want := range []string{"b1 !", "b10 !", "b11 !", "b100 !", "b101 !"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}
