package wave

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/logic"
)

// Multi-bit VCD variables: buses render in viewers as single waveform
// rows with numeric values (e.g. the whole T register as one trace),
// which is how one actually reads a 1024-bit datapath.

// VarSpec declares one VCD variable; Width 1 is a scalar.
type VarSpec struct {
	Name  string
	Width int
}

// BusWriter emits a VCD document whose variables may be vectors.
type BusWriter struct {
	w      io.Writer
	vars   []VarSpec
	ids    []string
	last   []uint64
	inited bool
	time   int
	closed bool
}

// NewBusWriter prepares a writer for the given variables.
func NewBusWriter(w io.Writer, module string, vars []VarSpec) (*BusWriter, error) {
	if len(vars) == 0 {
		return nil, errors.New("wave: no variables to trace")
	}
	if module == "" {
		module = "top"
	}
	bw := &BusWriter{w: w, vars: append([]VarSpec(nil), vars...)}
	bw.ids = make([]string, len(vars))
	bw.last = make([]uint64, len(vars))
	fmt.Fprintf(w, "$date\n    (generated)\n$end\n")
	fmt.Fprintf(w, "$version\n    repro montgomery systolic simulator\n$end\n")
	fmt.Fprintf(w, "$timescale 1ns $end\n")
	fmt.Fprintf(w, "$scope module %s $end\n", sanitize(module))
	for i, v := range vars {
		if v.Width < 1 || v.Width > 64 {
			return nil, fmt.Errorf("wave: variable %q has width %d (1..64 supported)", v.Name, v.Width)
		}
		bw.ids[i] = vcdID(i)
		if v.Width == 1 {
			fmt.Fprintf(w, "$var wire 1 %s %s $end\n", bw.ids[i], sanitize(v.Name))
		} else {
			fmt.Fprintf(w, "$var wire %d %s %s [%d:0] $end\n",
				v.Width, bw.ids[i], sanitize(v.Name), v.Width-1)
		}
	}
	fmt.Fprintf(w, "$upscope $end\n$enddefinitions $end\n")
	return bw, nil
}

// Sample records the variable values at the given time.
func (bw *BusWriter) Sample(time int, values []uint64) error {
	if bw.closed {
		return errors.New("wave: writer closed")
	}
	if len(values) != len(bw.vars) {
		return fmt.Errorf("wave: %d values for %d variables", len(values), len(bw.vars))
	}
	if bw.inited && time < bw.time {
		return fmt.Errorf("wave: time going backwards (%d < %d)", time, bw.time)
	}
	var changed []int
	for i, v := range values {
		if v >= 1<<uint(bw.vars[i].Width) {
			return fmt.Errorf("wave: value %d exceeds %d-bit variable %q",
				v, bw.vars[i].Width, bw.vars[i].Name)
		}
		if !bw.inited || v != bw.last[i] {
			changed = append(changed, i)
		}
	}
	if len(changed) == 0 {
		return nil
	}
	if !bw.inited {
		fmt.Fprintf(bw.w, "#%d\n$dumpvars\n", time)
	} else {
		fmt.Fprintf(bw.w, "#%d\n", time)
	}
	for _, i := range changed {
		if bw.vars[i].Width == 1 {
			fmt.Fprintf(bw.w, "%d%s\n", values[i]&1, bw.ids[i])
		} else {
			fmt.Fprintf(bw.w, "b%s %s\n",
				strconv.FormatUint(values[i], 2), bw.ids[i])
		}
		bw.last[i] = values[i]
	}
	if !bw.inited {
		fmt.Fprintf(bw.w, "$end\n")
		bw.inited = true
	}
	bw.time = time
	return nil
}

// Close finalizes the document (the writer buffers nothing itself).
func (bw *BusWriter) Close() error {
	bw.closed = true
	return nil
}

// BusGroup names a set of netlist signals traced as one vector
// (Signals[0] is bit 0).
type BusGroup struct {
	Name    string
	Signals []logic.Signal
}

// BusRecorder couples a simulator to a BusWriter.
type BusRecorder struct {
	sim    *logic.Sim
	groups []BusGroup
	bw     *BusWriter
	vals   []uint64
}

// NewBusRecorder traces the given signal groups of sim into w.
func NewBusRecorder(w io.Writer, module string, sim *logic.Sim, groups []BusGroup) (*BusRecorder, error) {
	vars := make([]VarSpec, len(groups))
	for i, g := range groups {
		vars[i] = VarSpec{Name: g.Name, Width: len(g.Signals)}
	}
	bw, err := NewBusWriter(w, module, vars)
	if err != nil {
		return nil, err
	}
	return &BusRecorder{
		sim:    sim,
		groups: append([]BusGroup(nil), groups...),
		bw:     bw,
		vals:   make([]uint64, len(groups)),
	}, nil
}

// Snapshot samples all groups at the simulator's current cycle.
func (r *BusRecorder) Snapshot() error {
	for i, g := range r.groups {
		var v uint64
		for b := len(g.Signals) - 1; b >= 0; b-- {
			v = v<<1 | uint64(r.sim.Get(g.Signals[b]))
		}
		r.vals[i] = v
	}
	return r.bw.Sample(r.sim.Cycle(), r.vals)
}

// Close finalizes the VCD document.
func (r *BusRecorder) Close() error { return r.bw.Close() }
