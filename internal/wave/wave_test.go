package wave

import (
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
)

func TestVCDIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := vcdID(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		for _, ch := range id {
			if ch < 33 || ch > 126 {
				t.Fatalf("non-printable id char %q", ch)
			}
		}
		seen[id] = true
	}
}

func TestWriterBasics(t *testing.T) {
	var sb strings.Builder
	vw, err := NewWriter(&sb, "mmm", []string{"clk en", "T(1)"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(0, bits.Vec{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(1, bits.Vec{1, 1}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(2, bits.Vec{1, 1}); err != nil { // no change
		t.Fatal(err)
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module mmm $end",
		"$var wire 1 ! clk_en $end",
		"$var wire 1 \" T1 $end",
		"$dumpvars",
		"#0", "#1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#2") {
		t.Error("unchanged sample emitted a timestamp")
	}
}

func TestWriterValidation(t *testing.T) {
	var sb strings.Builder
	if _, err := NewWriter(&sb, "m", nil); err == nil {
		t.Error("no signals accepted")
	}
	vw, _ := NewWriter(&sb, "", []string{"a"})
	if err := vw.Sample(0, bits.Vec{0, 1}); err == nil {
		t.Error("wrong value count accepted")
	}
	if err := vw.Sample(5, bits.Vec{1}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(3, bits.Vec{0}); err == nil {
		t.Error("time reversal accepted")
	}
	vw.Close()
	if err := vw.Sample(6, bits.Vec{0}); err == nil {
		t.Error("sample after close accepted")
	}
	if err := vw.Close(); err != nil {
		t.Error("double close errored")
	}
}

// Recorder over a real simulation: a toggling flip-flop produces
// alternating value changes.
func TestRecorderWithSimulation(t *testing.T) {
	nl := logic.New()
	// Toggle FF: q' = NOT q, via the feedback pattern.
	buf := nl.BufGate(logic.Const0)
	q := nl.AddDFF(buf, 0, "q")
	nl.PatchGateInput(0, nl.NotGate(q))
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rec, err := NewRecorder(&sb, "toggle", nl, sim, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		sim.Step()
		if err := rec.Snapshot(); err != nil {
			t.Fatal(err)
		}
	}
	rec.Close()
	out := sb.String()
	// q toggles every cycle: timestamps #0..#4 all present.
	for _, ts := range []string{"#0", "#1", "#2", "#3", "#4"} {
		if !strings.Contains(out, ts) {
			t.Errorf("missing timestamp %s", ts)
		}
	}
}

// Recorder with explicit signal selection.
func TestRecorderExplicitSignals(t *testing.T) {
	nl := logic.New()
	a := nl.Input("a")
	q := nl.AddDFF(a, 0, "q")
	sim, _ := logic.Compile(nl)
	var sb strings.Builder
	rec, err := NewRecorder(&sb, "m", nl, sim, []logic.Signal{a, q})
	if err != nil {
		t.Fatal(err)
	}
	rec.Snapshot()
	sim.Set(a, 1)
	sim.Step()
	rec.Snapshot()
	rec.Close()
	if !strings.Contains(sb.String(), "$var wire 1 ! a $end") {
		t.Error("input signal not declared")
	}
}
