package wave

import (
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
)

// TestWriterClosedPaths: every write path refuses a closed writer, and
// closing is idempotent for both writer flavours.
func TestWriterClosedPaths(t *testing.T) {
	var sb strings.Builder
	vw, err := NewWriter(&sb, "m", []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(0, bits.Vec{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := vw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(1, bits.Vec{0, 0}); err == nil {
		t.Error("scalar writer: sample after close accepted")
	}
	if err := vw.Close(); err != nil {
		t.Error("scalar writer: double close errored")
	}

	bw, err := NewBusWriter(&sb, "m", []VarSpec{{Name: "t", Width: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Sample(0, []uint64{0x42}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Sample(1, []uint64{0x43}); err == nil {
		t.Error("bus writer: sample after close accepted")
	}
	if err := bw.Close(); err != nil {
		t.Error("bus writer: double close errored")
	}
}

// TestRecorderUnnamedSignals: tracing nets that never got a name falls
// back to the netlist's positional n<idx> names instead of failing —
// the "unknown signal name" path of Recorder/NameOf.
func TestRecorderUnnamedSignals(t *testing.T) {
	nl := logic.New()
	a := nl.Input("a")
	anon := nl.NotGate(a) // unnamed intermediate net
	var sb strings.Builder
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewRecorder(&sb, "m", nl, sim, []logic.Signal{a, anon})
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "$var wire 1 ! a $end") {
		t.Errorf("named signal missing from header:\n%s", out)
	}
	// The anonymous net shows up under its positional fallback name.
	if !strings.Contains(out, "n"+itoa(int(anon))) {
		t.Errorf("unnamed signal %d not traced under fallback name:\n%s", anon, out)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

// TestEmptySnapshotDeltas: samples that change nothing emit nothing —
// no timestamp line, no value lines — for both writer flavours, and a
// later real change still renders correctly.
func TestEmptySnapshotDeltas(t *testing.T) {
	var sb strings.Builder
	vw, err := NewWriter(&sb, "m", []string{"a"})
	if err != nil {
		t.Fatal(err)
	}
	if err := vw.Sample(0, bits.Vec{1}); err != nil {
		t.Fatal(err)
	}
	mark := sb.Len()
	for ti := 1; ti <= 3; ti++ {
		if err := vw.Sample(ti, bits.Vec{1}); err != nil {
			t.Fatal(err)
		}
	}
	if sb.Len() != mark {
		t.Errorf("unchanged samples emitted output: %q", sb.String()[mark:])
	}
	if err := vw.Sample(4, bits.Vec{0}); err != nil {
		t.Fatal(err)
	}
	vw.Close()
	out := sb.String()
	if strings.Contains(out, "#1") || strings.Contains(out, "#2") || strings.Contains(out, "#3") {
		t.Errorf("no-change timestamps leaked into the VCD:\n%s", out)
	}
	if !strings.Contains(out, "#4\n0!") {
		t.Errorf("real change at t=4 missing:\n%s", out)
	}

	sb.Reset()
	bw, err := NewBusWriter(&sb, "m", []VarSpec{{Name: "t", Width: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Sample(0, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	mark = sb.Len()
	if err := bw.Sample(1, []uint64{9}); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != mark {
		t.Errorf("bus writer emitted output for an empty delta: %q", sb.String()[mark:])
	}
}
