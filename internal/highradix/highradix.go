// Package highradix generalizes the paper's radix-2 design to word base
// 2^α, following the discussion in §2 (and Batina–Muurling [1]): with
// R = 2^(α·k) and k = ⌈(l+2)/α⌉ iterations the multiplication still
// needs no final subtraction for operands below 2N, and the iteration
// count drops by the radix factor — at the price of wider, slower
// processing elements (quotient-digit computation now needs the full
// N' = -N⁻¹ mod 2^α multiply the radix-2 design erased).
//
// The functional core is property-tested against math/big; the cost
// model feeds the radix-ablation benchmark that grounds the paper's
// claim that radix 2 maximizes clock frequency while higher radices
// trade frequency for fewer cycles (Blum–Paar [4] explore the same
// trade).
package highradix

import (
	"fmt"
	"math/big"

	"repro/internal/errs"
	"repro/internal/mont"
)

// Ctx is a high-radix Montgomery multiplication context.
type Ctx struct {
	N     *big.Int
	L     int      // bit length of N
	Alpha uint     // word size in bits (radix 2^Alpha)
	K     int      // iterations, ⌈(L+2)/Alpha⌉
	R     *big.Int // 2^(Alpha·K)
	N2    *big.Int // 2N

	nPrime *big.Int // -N⁻¹ mod 2^Alpha
	base   *big.Int // 2^Alpha
	mask   *big.Int // 2^Alpha - 1
}

// New builds a radix-2^alpha context for the odd modulus n.
func New(n *big.Int, alpha uint) (*Ctx, error) {
	if alpha == 0 || alpha > 64 {
		return nil, fmt.Errorf("highradix: alpha %d outside [1,64]: %w", alpha, errs.ErrOperandRange)
	}
	if n.Sign() <= 0 || n.Cmp(big.NewInt(3)) < 0 {
		return nil, mont.ErrModulusTooSmall
	}
	if n.Bit(0) == 0 {
		return nil, mont.ErrEvenModulus
	}
	l := n.BitLen()
	k := (l + 2 + int(alpha) - 1) / int(alpha)
	np, err := mont.NPrime(n, alpha)
	if err != nil {
		return nil, err
	}
	base := new(big.Int).Lsh(big.NewInt(1), alpha)
	return &Ctx{
		N:      new(big.Int).Set(n),
		L:      l,
		Alpha:  alpha,
		K:      k,
		R:      new(big.Int).Lsh(big.NewInt(1), alpha*uint(k)),
		N2:     new(big.Int).Lsh(n, 1),
		nPrime: np,
		base:   base,
		mask:   new(big.Int).Sub(base, big.NewInt(1)),
	}, nil
}

// Iterations returns k = ⌈(l+2)/α⌉, the paper's §2 figure.
func (c *Ctx) Iterations() int { return c.K }

// Mul computes x·y·R⁻¹ mod 2N with the word-serial loop and no final
// subtraction. Inputs must be in [0, 2N-1]; so is the output (the
// R ≥ 2^(l+2) > 4N bound carries over unchanged).
func (c *Ctx) Mul(x, y *big.Int) *big.Int {
	if x.Sign() < 0 || x.Cmp(c.N2) >= 0 || y.Sign() < 0 || y.Cmp(c.N2) >= 0 {
		panic("highradix: operand outside [0, 2N-1]")
	}
	t := new(big.Int)
	xi := new(big.Int)
	mi := new(big.Int)
	tmp := new(big.Int)
	for i := 0; i < c.K; i++ {
		// x_i = i-th base-2^α digit of x.
		xi.Rsh(x, uint(i)*c.Alpha)
		xi.And(xi, c.mask)
		// t += x_i·y
		t.Add(t, tmp.Mul(xi, y))
		// m_i = t·N' mod 2^α
		mi.And(t, c.mask)
		mi.Mul(mi, c.nPrime)
		mi.And(mi, c.mask)
		// t = (t + m_i·N) / 2^α
		t.Add(t, tmp.Mul(mi, c.N))
		t.Rsh(t, c.Alpha)
	}
	return t
}

// CostModel captures the hardware trade the radix sweep explores.
type CostModel struct {
	Alpha         uint
	Iterations    int     // loop iterations per multiplication
	CyclesPerMul  int     // clock cycles per multiplication
	ClockPeriodNs float64 // modelled clock period of one PE
	TimePerMulNs  float64 // cycles × period
	RelativeArea  float64 // PE area relative to the radix-2 cell
}

// Cost evaluates the model for this context, anchored at the paper's
// radix-2 figures: 3l+4 cycles at clock period tp2 (pass the Virtex-E
// model's value, ≈10 ns). Scaling assumptions, stated explicitly:
//
//   - cycles: the systolic schedule generalizes to 2k + ⌈l/α⌉ (digit
//     injection every 2 clocks, drain of one row of ⌈l/α⌉ PEs), which
//     reduces to the paper's 3l+4 at α = 1;
//   - clock period: the PE's critical path grows with the α×α partial
//     product and the N'-multiply; modelled as tp2·(1 + 0.35·(α-1)),
//     the linear trend Blum–Paar report between radix 2 and radix 16;
//   - area: an α-bit digit PE costs ≈ α² the gates of the bit PE
//     (array multiplier), amortized over l/α positions → relative area
//     per array ≈ α.
func (c *Ctx) Cost(tp2 float64) CostModel {
	alpha := int(c.Alpha)
	cycles := 2*c.K + (c.L+alpha-1)/alpha
	period := tp2 * (1 + 0.35*float64(alpha-1))
	return CostModel{
		Alpha:         c.Alpha,
		Iterations:    c.K,
		CyclesPerMul:  cycles,
		ClockPeriodNs: period,
		TimePerMulNs:  float64(cycles) * period,
		RelativeArea:  float64(alpha),
	}
}

// ModExp computes m^e mod N over the high-radix multiplier (reference
// use; applications use internal/expo for the paper's circuit).
func (c *Ctx) ModExp(m, e *big.Int) (*big.Int, error) {
	if e.Sign() <= 0 {
		return nil, fmt.Errorf("highradix: exponent must be positive: %w", errs.ErrOperandRange)
	}
	if m.Sign() < 0 || m.Cmp(c.N) >= 0 {
		return nil, fmt.Errorf("highradix: base must be in [0, N-1]: %w", errs.ErrOperandRange)
	}
	rr := new(big.Int).Mul(c.R, c.R)
	rr.Mod(rr, c.N)
	a := c.Mul(m, rr)
	mr := new(big.Int).Set(a)
	for i := e.BitLen() - 2; i >= 0; i-- {
		a = c.Mul(a, a)
		if e.Bit(i) == 1 {
			a = c.Mul(a, mr)
		}
	}
	a = c.Mul(a, big.NewInt(1))
	if a.Cmp(c.N) >= 0 {
		a.Sub(a, c.N)
	}
	return a, nil
}
