package highradix

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/errs"
	"repro/internal/mont"
)

func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(big.NewInt(101), 0); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("alpha 0: got %v, want ErrOperandRange", err)
	}
	if _, err := New(big.NewInt(101), 65); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("alpha 65: got %v, want ErrOperandRange", err)
	}
	if _, err := New(big.NewInt(4), 4); !errors.Is(err, mont.ErrEvenModulus) {
		t.Error("even modulus accepted")
	}
	if _, err := New(big.NewInt(1), 4); !errors.Is(err, mont.ErrModulusTooSmall) {
		t.Error("tiny modulus accepted")
	}
	c, err := New(big.NewInt(101), 4)
	if err != nil {
		t.Fatal(err)
	}
	// l=7, ⌈9/4⌉ = 3 iterations, R = 2^12.
	if c.Iterations() != 3 || c.R.Cmp(new(big.Int).Lsh(big.NewInt(1), 12)) != 0 {
		t.Errorf("k=%d R=%s", c.K, c.R)
	}
}

// Iteration count must reduce to the paper's l+2 at radix 2 and to
// ⌈(l+2)/α⌉ generally.
func TestIterationCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := randOdd(rng, 64)
	for _, alpha := range []uint{1, 2, 4, 8, 16} {
		c, err := New(n, alpha)
		if err != nil {
			t.Fatal(err)
		}
		want := (64 + 2 + int(alpha) - 1) / int(alpha)
		if c.Iterations() != want {
			t.Errorf("alpha=%d: k=%d want %d", alpha, c.K, want)
		}
	}
}

// Functional core vs math/big, all radices, with the no-subtraction
// output bound.
func TestMulMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	for _, alpha := range []uint{1, 2, 3, 4, 8, 13, 16, 32, 64} {
		for _, l := range []int{8, 61, 128} {
			n := randOdd(rng, l)
			c, err := New(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			rinv := new(big.Int).ModInverse(c.R, n)
			for trial := 0; trial < 15; trial++ {
				x := new(big.Int).Rand(rng, c.N2)
				y := new(big.Int).Rand(rng, c.N2)
				got := c.Mul(x, y)
				if got.Cmp(c.N2) >= 0 {
					t.Fatalf("alpha=%d l=%d: output ≥ 2N", alpha, l)
				}
				want := new(big.Int).Mul(x, y)
				want.Mul(want, rinv).Mod(want, n)
				if new(big.Int).Mod(got, n).Cmp(want) != 0 {
					t.Fatalf("alpha=%d l=%d: Mul wrong", alpha, l)
				}
			}
		}
	}
}

// Radix 1 must agree exactly with the paper's Algorithm 2 (same R, same
// intermediate sequence ⇒ same representative, not just same residue).
func TestRadix2MatchesAlgorithm2(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	n := randOdd(rng, 48)
	ctx, _ := mont.NewCtx(n)
	c, _ := New(n, 1)
	for trial := 0; trial < 50; trial++ {
		x := new(big.Int).Rand(rng, ctx.N2)
		y := new(big.Int).Rand(rng, ctx.N2)
		if c.Mul(x, y).Cmp(ctx.Mul(x, y)) != 0 {
			t.Fatal("radix-2 core diverges from Algorithm 2")
		}
	}
}

func TestMulBoundsPanic(t *testing.T) {
	c, _ := New(big.NewInt(13), 4)
	defer func() {
		if recover() == nil {
			t.Error("oversized operand accepted")
		}
	}()
	c.Mul(big.NewInt(26), big.NewInt(1))
}

func TestModExp(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	for _, alpha := range []uint{1, 4, 16} {
		n := randOdd(rng, 96)
		c, _ := New(n, alpha)
		m := new(big.Int).Rand(rng, n)
		e := new(big.Int).Rand(rng, n)
		if e.Sign() == 0 {
			e.SetInt64(3)
		}
		got, err := c.ModExp(m, e)
		if err != nil {
			t.Fatal(err)
		}
		if want := new(big.Int).Exp(m, e, n); got.Cmp(want) != 0 {
			t.Fatalf("alpha=%d: ModExp wrong", alpha)
		}
	}
	c, _ := New(big.NewInt(101), 4)
	if _, err := c.ModExp(big.NewInt(5), big.NewInt(0)); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("zero exponent: got %v, want ErrOperandRange", err)
	}
	if _, err := c.ModExp(big.NewInt(101), big.NewInt(3)); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("base = N: got %v, want ErrOperandRange", err)
	}
}

// The cost model must reproduce the paper's radix-2 anchor exactly and
// show the expected trade: cycles fall with α, clock period rises.
func TestCostModel(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	n := randOdd(rng, 1024)
	c2, _ := New(n, 1)
	cost2 := c2.Cost(10.0)
	if cost2.CyclesPerMul != 3*1024+4 {
		t.Errorf("radix-2 anchor: %d cycles, want %d", cost2.CyclesPerMul, 3*1024+4)
	}
	if cost2.ClockPeriodNs != 10.0 {
		t.Errorf("radix-2 anchor period %v", cost2.ClockPeriodNs)
	}
	prevCycles := cost2.CyclesPerMul
	prevPeriod := cost2.ClockPeriodNs
	for _, alpha := range []uint{2, 4, 8, 16} {
		c, _ := New(n, alpha)
		cost := c.Cost(10.0)
		if cost.CyclesPerMul >= prevCycles {
			t.Errorf("alpha=%d: cycles did not fall (%d)", alpha, cost.CyclesPerMul)
		}
		if cost.ClockPeriodNs <= prevPeriod {
			t.Errorf("alpha=%d: period did not rise", alpha)
		}
		prevCycles, prevPeriod = cost.CyclesPerMul, cost.ClockPeriodNs
	}
}
