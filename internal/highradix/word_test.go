package highradix

import (
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/errs"
	"repro/internal/mont"
)

// The word-level CIOS loop vs math/big, across the bit lengths the
// serving stack actually handles, with the no-subtraction output bound
// held at every step.
func TestWordMulMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for _, l := range []int{61, 128, 256, 512, 1024, 2048} {
		n := randOdd(rng, l)
		ctx, err := mont.NewCtx(n)
		if err != nil {
			t.Fatal(err)
		}
		w := NewWord(ctx)
		p := w.Params()
		if 64*p.S < l+2 {
			t.Fatalf("l=%d: S=%d violates 64·S ≥ l+2", l, p.S)
		}
		rinv := new(big.Int).ModInverse(p.R, n)
		a := make([]uint64, p.S)
		b := make([]uint64, p.S)
		out := make([]uint64, p.S)
		for trial := 0; trial < 25; trial++ {
			x := new(big.Int).Rand(rng, p.N2)
			y := new(big.Int).Rand(rng, p.N2)
			mont.WordsSetBig(a, x)
			mont.WordsSetBig(b, y)
			w.MulInto(out, a, b)
			got := mont.BigFromWords(out)
			if got.Cmp(p.N2) >= 0 {
				t.Fatalf("l=%d: output ≥ 2N", l)
			}
			want := new(big.Int).Mul(x, y)
			want.Mul(want, rinv).Mod(want, n)
			if new(big.Int).Mod(got, n).Cmp(want) != 0 {
				t.Fatalf("l=%d: word Mul wrong", l)
			}
		}
	}
}

// MulInto must tolerate out aliasing an input — the exponentiation
// ladder feeds results straight back in.
func TestWordMulAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	n := randOdd(rng, 256)
	ctx, _ := mont.NewCtx(n)
	w := NewWord(ctx)
	p := w.Params()
	a := make([]uint64, p.S)
	b := make([]uint64, p.S)
	want := make([]uint64, p.S)
	x := new(big.Int).Rand(rng, p.N2)
	y := new(big.Int).Rand(rng, p.N2)
	mont.WordsSetBig(a, x)
	mont.WordsSetBig(b, y)
	w.MulInto(want, a, b)

	got := make([]uint64, p.S)
	copy(got, a)
	w.MulInto(got, got, b) // out aliases a
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("aliased MulInto diverges")
		}
	}
	copy(got, a)
	w.MulInto(got, b, got) // out aliases b
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("aliased MulInto diverges (second operand)")
		}
	}
}

// The quotient witness must satisfy T·R = x·y + M·N exactly over ℤ —
// the identity internal/integrity verifies in a residue system.
func TestWordMulWitnessIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	for _, l := range []int{128, 521, 1024} {
		n := randOdd(rng, l)
		ctx, _ := mont.NewCtx(n)
		w := NewWord(ctx)
		p := w.Params()
		for trial := 0; trial < 10; trial++ {
			x := new(big.Int).Rand(rng, p.N2)
			y := new(big.Int).Rand(rng, p.N2)
			tt, m, err := w.MulWitness(x, y)
			if err != nil {
				t.Fatal(err)
			}
			lhs := new(big.Int).Mul(tt, p.R)
			rhs := new(big.Int).Mul(x, y)
			rhs.Add(rhs, new(big.Int).Mul(m, n))
			if lhs.Cmp(rhs) != 0 {
				t.Fatalf("l=%d: witness identity T·R = x·y + M·N fails", l)
			}
		}
	}
}

// Mont must preserve the paper's R = 2^(l+2) semantics (mod N) so the
// high-radix kit is a drop-in for the radix-2 path on the wire.
func TestWordMontPaperSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(604))
	for _, l := range []int{61, 256, 1024} {
		n := randOdd(rng, l)
		ctx, _ := mont.NewCtx(n)
		w := NewWord(ctx)
		for trial := 0; trial < 15; trial++ {
			x := new(big.Int).Rand(rng, ctx.N2)
			y := new(big.Int).Rand(rng, ctx.N2)
			got, err := w.Mont(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if got.Sign() < 0 || got.Cmp(ctx.N2) >= 0 {
				t.Fatalf("l=%d: Mont output outside [0, 2N)", l)
			}
			want := ctx.MulClosedForm(x, y)
			if new(big.Int).Mod(got, n).Cmp(want) != 0 {
				t.Fatalf("l=%d: Mont ≢ x·y·R⁻¹ (mod N)", l)
			}
		}
	}
	// Range validation surfaces the typed sentinel.
	n := randOdd(rng, 64)
	ctx, _ := mont.NewCtx(n)
	w := NewWord(ctx)
	if _, err := w.Mont(ctx.N2, big.NewInt(1)); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("Mont(2N, 1): got %v, want ErrOperandRange", err)
	}
}

func TestWordModExp(t *testing.T) {
	rng := rand.New(rand.NewSource(605))
	for _, l := range []int{61, 256, 1024, 2048} {
		n := randOdd(rng, l)
		ctx, _ := mont.NewCtx(n)
		w := NewWord(ctx)
		for trial := 0; trial < 5; trial++ {
			m := new(big.Int).Rand(rng, n)
			e := new(big.Int).Rand(rng, n)
			if e.Sign() == 0 {
				e.SetInt64(3)
			}
			got, err := w.ModExp(m, e)
			if err != nil {
				t.Fatal(err)
			}
			if want := new(big.Int).Exp(m, e, n); got.Cmp(want) != 0 {
				t.Fatalf("l=%d: word ModExp wrong", l)
			}
		}
	}
	n := randOdd(rng, 64)
	ctx, _ := mont.NewCtx(n)
	w := NewWord(ctx)
	if _, err := w.ModExp(big.NewInt(5), big.NewInt(0)); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("zero exponent: got %v, want ErrOperandRange", err)
	}
	if _, err := w.ModExp(n, big.NewInt(3)); !errors.Is(err, errs.ErrOperandRange) {
		t.Errorf("base = N: got %v, want ErrOperandRange", err)
	}
}

// The word-slice hot loop must not allocate — this is the gate CI's
// benchmark-regression job runs.
func TestMulIntoAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	n := randOdd(rng, 1024)
	ctx, _ := mont.NewCtx(n)
	w := NewWord(ctx)
	p := w.Params()
	a := make([]uint64, p.S)
	b := make([]uint64, p.S)
	out := make([]uint64, p.S)
	mont.WordsSetBig(a, new(big.Int).Rand(rng, p.N2))
	mont.WordsSetBig(b, new(big.Int).Rand(rng, p.N2))
	if avg := testing.AllocsPerRun(100, func() { w.MulInto(out, a, b) }); avg != 0 {
		t.Errorf("MulInto allocates %.1f objects/op, want 0", avg)
	}
	wit := make([]uint64, p.S)
	if avg := testing.AllocsPerRun(100, func() { w.MulWitnessInto(out, wit, a, b) }); avg != 0 {
		t.Errorf("MulWitnessInto allocates %.1f objects/op, want 0", avg)
	}
}

func benchWord(bits int) (*Word, []uint64, []uint64, []uint64) {
	rng := rand.New(rand.NewSource(int64(bits)))
	n := randOdd(rng, bits)
	ctx, err := mont.NewCtx(n)
	if err != nil {
		panic(err)
	}
	w := NewWord(ctx)
	p := w.Params()
	a := make([]uint64, p.S)
	b := make([]uint64, p.S)
	out := make([]uint64, p.S)
	mont.WordsSetBig(a, new(big.Int).Rand(rng, p.N2))
	mont.WordsSetBig(b, new(big.Int).Rand(rng, p.N2))
	return w, a, b, out
}

func BenchmarkWordMul1024(b *testing.B) {
	w, x, y, out := benchWord(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MulInto(out, x, y)
	}
}

func BenchmarkWordMul2048(b *testing.B) {
	w, x, y, out := benchWord(2048)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.MulInto(out, x, y)
	}
}

func benchModExp(b *testing.B, bits int) {
	rng := rand.New(rand.NewSource(int64(bits)))
	n := randOdd(rng, bits)
	ctx, err := mont.NewCtx(n)
	if err != nil {
		b.Fatal(err)
	}
	w := NewWord(ctx)
	m := new(big.Int).Rand(rng, n)
	e := new(big.Int).Rand(rng, n)
	if e.Sign() == 0 {
		e.SetInt64(3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.ModExp(m, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWordModExp1024(b *testing.B) { benchModExp(b, 1024) }
func BenchmarkWordModExp2048(b *testing.B) { benchModExp(b, 2048) }
