package highradix

import (
	"fmt"
	"math/big"
	mathbits "math/bits"

	"repro/internal/errs"
	"repro/internal/mont"
)

// Word is the production radix-2^64 Montgomery multiplier and
// exponentiator — the compute kit the engine selects when raw modexp
// throughput matters more than cycle-accurate fidelity. It is the
// word-level CIOS (Coarsely Integrated Operand Scanning) realization of
// the paper's §2 radix-2^α discussion at α = 64: one 64-bit digit of x
// is consumed per pass where the systolic array consumes one bit per
// two clocks, and the quotient digit costs the full N' = -N⁻¹ mod 2^64
// multiply the radix-2 design erased.
//
// Two properties carry over from the paper's bit-serial design:
//
//   - No final subtraction on the hot path. The Montgomery parameter is
//     R = 2^(64·S) with S = ⌈(l+2)/64⌉ (mont.WordParams), so R ≥
//     2^(l+2) > 4N — Walter's bound at word level. Operands in [0, 2N)
//     multiply to results in [0, 2N), which chain with no conditional
//     reduction; the single branch-free canonicalization happens once,
//     at the end of an exponentiation.
//
//   - Carry-save accumulation inside the word loop. The systolic PE
//     keeps its running sum as (carry, sum) pairs that never propagate
//     across the array within a cycle; the software analogue is the
//     (hi, lo) = Mul64 / Add64 chains below, where each inner step
//     retires one limb and hands at most one carry limb to the next —
//     the carries never ripple across the full accumulator inside the
//     loop.
//
// A Word owns mutable scratch buffers, so — exactly like the simulated
// circuit it stands beside — it is NOT safe for concurrent use: one Word
// per goroutine, sharing the immutable *mont.WordParams underneath.
// This is the same ownership split internal/engine applies to every kit.
type Word struct {
	p *mont.WordParams

	// Scratch, sized at construction so the hot loops never allocate.
	t    []uint64 // S+2-limb CIOS accumulator
	u    []uint64 // intermediate product (Mont two-step, ladder)
	am   []uint64 // base in the Montgomery domain
	acc  []uint64 // running ladder value
	tmp  []uint64 // ladder swap partner
	one  []uint64 // the constant 1
	xbuf []uint64 // operand conversion buffers
	ybuf []uint64
}

// NewWord builds the radix-2^64 kit over an existing Montgomery
// context, sharing its cached word-level precompute (first call per Ctx
// pays one inversion and two reductions; every later Word is
// allocation-only).
func NewWord(ctx *mont.Ctx) *Word {
	p := ctx.Word()
	w := &Word{
		p:    p,
		t:    make([]uint64, p.S+2),
		u:    make([]uint64, p.S),
		am:   make([]uint64, p.S),
		acc:  make([]uint64, p.S),
		tmp:  make([]uint64, p.S),
		one:  make([]uint64, p.S),
		xbuf: make([]uint64, p.S),
		ybuf: make([]uint64, p.S),
	}
	w.one[0] = 1
	return w
}

// Params exposes the shared word-level precompute.
func (w *Word) Params() *mont.WordParams { return w.p }

// MulInto sets out = a·b·R⁻¹ mod 2N with R = 2^(64·S), the word-serial
// CIOS loop with no final subtraction: operands and result live in
// [0, 2N) and out may be fed straight back in. out, a and b must each
// have S limbs; out may alias a or b (the product accumulates in
// scratch and is copied out last). The loop allocates nothing — CI
// gates this with testing.AllocsPerRun.
func (w *Word) MulInto(out, a, b []uint64) {
	w.mul(out, a, b, nil)
}

// MulWitnessInto is MulInto with a receipt: wit receives the S quotient
// digits m_i (little-endian limbs), tying the result to its inputs over
// the integers exactly as mont.Ctx.MulWitness does for the bit-serial
// path:
//
//	out·R = a·b + M·N   with M = Σ m_i·2^(64·i)
//
// so the engine's residue-system integrity checker works unchanged on
// the high-radix kit — the m_i words are what a radix-2^α array would
// broadcast where the paper's Fig. 1 cells broadcast the m_i bits.
func (w *Word) MulWitnessInto(out, wit, a, b []uint64) {
	w.mul(out, a, b, wit)
}

// mul is the CIOS hot loop. For each of the S passes it accumulates
// a_i·b into t limb-by-limb (carry-save style: one retire + one carry
// per step), derives the quotient digit m = t_0·N' mod 2^64, adds m·N
// and shifts one limb — fusing the shift into the second inner loop by
// writing to j-1.
func (w *Word) mul(out, a, b []uint64, wit []uint64) {
	s := w.p.S
	if len(out) != s || len(a) != s || len(b) != s {
		panic("highradix: MulInto operand limb count mismatch")
	}
	n := w.p.N
	n0inv := w.p.N0Inv
	t := w.t
	for i := range t {
		t[i] = 0
	}
	for i := 0; i < s; i++ {
		// t += a_i · b
		ai := a[i]
		var carry uint64
		for j := 0; j < s; j++ {
			hi, lo := mathbits.Mul64(ai, b[j])
			sum, c1 := mathbits.Add64(t[j], lo, 0)
			sum, c2 := mathbits.Add64(sum, carry, 0)
			t[j] = sum
			carry = hi + c1 + c2 // cannot overflow: hi ≤ 2^64-2
		}
		sum, c1 := mathbits.Add64(t[s], carry, 0)
		t[s] = sum
		t[s+1] += c1

		// m = t_0·N' mod 2^64; t = (t + m·N) / 2^64
		m := t[0] * n0inv
		if wit != nil {
			wit[i] = m
		}
		hi, lo := mathbits.Mul64(m, n[0])
		_, c1 = mathbits.Add64(t[0], lo, 0) // clears t[0] by construction
		carry = hi + c1
		for j := 1; j < s; j++ {
			hi, lo := mathbits.Mul64(m, n[j])
			sum, c2 := mathbits.Add64(t[j], lo, 0)
			sum, c3 := mathbits.Add64(sum, carry, 0)
			t[j-1] = sum
			carry = hi + c2 + c3
		}
		sum, c1 = mathbits.Add64(t[s], carry, 0)
		t[s-1] = sum
		t[s] = t[s+1] + c1
		t[s+1] = 0
	}
	// R > 4N and a, b < 2N give t = (a·b + M·N)/R < 4N²/R + N < 2N,
	// which fits S limbs — the top limbs are structurally zero and no
	// subtraction happens. (The bit-serial design's central property,
	// held at radix 2^64.)
	copy(out, t[:s])
}

// Mont computes x·y·2^-(l+2) mod 2N — the same mathematical function as
// the paper's Algorithm 2 (mod N; the in-[0, 2N) representative may
// differ by N) — via two word-level products: the first divides by the
// word-aligned R = 2^(64·S), the second multiplies by the precomputed
// Adj = 2^(2·64·S-(l+2)) mod N, leaving exactly the 2^(l+2) divided
// out. Operands must lie in [0, 2N-1].
func (w *Word) Mont(x, y *big.Int) (*big.Int, error) {
	if x.Sign() < 0 || x.Cmp(w.p.N2) >= 0 || y.Sign() < 0 || y.Cmp(w.p.N2) >= 0 {
		return nil, fmt.Errorf("highradix: Mont operands must be in [0, 2N-1]: %w", errs.ErrOperandRange)
	}
	mont.WordsSetBig(w.xbuf, x)
	mont.WordsSetBig(w.ybuf, y)
	w.MulInto(w.u, w.xbuf, w.ybuf)
	w.MulInto(w.tmp, w.u, w.p.Adj)
	return mont.BigFromWords(w.tmp), nil
}

// ModExp computes m^e mod N by left-to-right square-and-multiply
// (the paper's Algorithm 3) entirely in the word domain: one MulInto
// per square/multiply, conversions only at the edges. m must lie in
// [0, N-1]; e must be positive. The result is canonical in [0, N).
func (w *Word) ModExp(m, e *big.Int) (*big.Int, error) {
	if e.Sign() <= 0 {
		return nil, fmt.Errorf("highradix: exponent must be positive: %w", errs.ErrOperandRange)
	}
	if m.Sign() < 0 || m.Cmp(w.p.NBig) >= 0 {
		return nil, fmt.Errorf("highradix: base must be in [0, N-1]: %w", errs.ErrOperandRange)
	}
	s := w.p.S
	mont.WordsSetBig(w.xbuf, m)
	// Enter the domain: am = m·R mod 2N.
	w.MulInto(w.am, w.xbuf, w.p.RR)
	copy(w.acc, w.am)
	for i := e.BitLen() - 2; i >= 0; i-- {
		w.MulInto(w.tmp, w.acc, w.acc)
		w.acc, w.tmp = w.tmp, w.acc
		if e.Bit(i) == 1 {
			w.MulInto(w.tmp, w.acc, w.am)
			w.acc, w.tmp = w.tmp, w.acc
		}
	}
	// Leave the domain: Mont(acc, 1) ≤ N, then one branch-free
	// canonicalizing subtraction — off the hot loop, as in §3.
	w.MulInto(w.u, w.acc, w.one)
	var borrow uint64
	for i := 0; i < s; i++ {
		d, br := mathbits.Sub64(w.u[i], w.p.N[i], borrow)
		w.tmp[i] = d
		borrow = br
	}
	keep := -borrow // all-ones when u < N: keep u, else take u-N
	for i := 0; i < s; i++ {
		w.u[i] = (w.u[i] & keep) | (w.tmp[i] &^ keep)
	}
	return mont.BigFromWords(w.u), nil
}

// MulWitness is the big.Int face of MulWitnessInto, returning the
// product T and witness M for operands in [0, 2N-1) so integrity
// checkers can verify T·R = x·y + M·N over ℤ (R = 2^(64·S)).
func (w *Word) MulWitness(x, y *big.Int) (t, m *big.Int, err error) {
	if x.Sign() < 0 || x.Cmp(w.p.N2) >= 0 || y.Sign() < 0 || y.Cmp(w.p.N2) >= 0 {
		return nil, nil, fmt.Errorf("highradix: MulWitness operands must be in [0, 2N-1]: %w", errs.ErrOperandRange)
	}
	mont.WordsSetBig(w.xbuf, x)
	mont.WordsSetBig(w.ybuf, y)
	wit := make([]uint64, w.p.S)
	w.MulWitnessInto(w.u, wit, w.xbuf, w.ybuf)
	return mont.BigFromWords(w.u), mont.BigFromWords(wit), nil
}
