// Package baseline implements the comparison points of the paper's §2:
//
//   - Blum–Paar's radix-2 Montgomery multiplier [3], which uses the
//     sub-optimal bound R = 2^(l+3) and therefore runs one extra loop
//     iteration per multiplication ("the extra step in the main
//     algorithm"), the inefficiency the paper's R = 2^(l+2) removes;
//   - a textbook interleaved modular multiplier with conditional
//     subtractions, whose data-dependent cycle count is the contrast for
//     the paper's side-channel argument (§5, exercised by internal/sca).
//
// Functional correctness of each baseline is property-tested against
// math/big; the cycle models feed the comparison benchmarks.
package baseline

import (
	"fmt"
	"math/big"

	"repro/internal/mont"
)

// BlumPaar is the radix-2 Montgomery multiplier of Blum and Paar [3]
// modelled at the algorithm level: R = 2^(l+3), l+3 loop iterations, no
// final subtraction (their bound also guarantees outputs < 2N for inputs
// < 2N, it simply pays one more iteration for it).
type BlumPaar struct {
	N  *big.Int
	L  int      // bit length of N
	R  *big.Int // 2^(L+3)
	N2 *big.Int // 2N
	RR *big.Int // R² mod N
}

// NewBlumPaar builds the baseline context for an odd modulus.
func NewBlumPaar(n *big.Int) (*BlumPaar, error) {
	if n.Sign() <= 0 || n.Cmp(big.NewInt(3)) < 0 {
		return nil, mont.ErrModulusTooSmall
	}
	if n.Bit(0) == 0 {
		return nil, mont.ErrEvenModulus
	}
	l := n.BitLen()
	r := new(big.Int).Lsh(big.NewInt(1), uint(l+3))
	rr := new(big.Int).Mul(r, r)
	rr.Mod(rr, n)
	return &BlumPaar{
		N:  new(big.Int).Set(n),
		L:  l,
		R:  r,
		N2: new(big.Int).Lsh(n, 1),
		RR: rr,
	}, nil
}

// Iterations returns l+3 — one more than the paper's multiplier.
func (b *BlumPaar) Iterations() int { return b.L + 3 }

// CyclesPerMul models the clock cycles of one multiplication on the
// Blum–Paar systolic datapath: the same 2-cycles-per-iteration plus
// l-cycle drain schedule as the paper's circuit, with the extra
// iteration — 2(l+3) + l = 3l + 6.
func (b *BlumPaar) CyclesPerMul() int { return 3*b.L + 6 }

// ClockPeriodFactor is the relative clock-period penalty of the
// Blum–Paar processing element. Their cells carry 3-bit control
// registers steering four multiplexers on the critical path (§4.4 of the
// paper); the paper credits its own cells' simpler combinational logic
// for the higher clock frequency. The factor models two extra LUT
// levels on the register-to-register path (≈ 2·2.56 ns over ≈ 10 ns).
const ClockPeriodFactor = 1.5

// Mul computes x·y·R⁻¹ mod 2N (R = 2^(l+3)) with the l+3-iteration
// radix-2 loop. Inputs must be in [0, 2N-1]; so is the output.
func (b *BlumPaar) Mul(x, y *big.Int) *big.Int {
	if x.Sign() < 0 || x.Cmp(b.N2) >= 0 || y.Sign() < 0 || y.Cmp(b.N2) >= 0 {
		panic(fmt.Sprintf("baseline: operand outside [0, 2N-1]"))
	}
	t := new(big.Int)
	for i := 0; i <= b.L+2; i++ {
		mi := (t.Bit(0) + x.Bit(i)*y.Bit(0)) & 1
		if x.Bit(i) == 1 {
			t.Add(t, y)
		}
		if mi == 1 {
			t.Add(t, b.N)
		}
		t.Rsh(t, 1)
	}
	return t
}

// ModExp computes m^e mod N by square-and-multiply over the baseline
// multiplier, returning the result and the modelled cycle count
// (pre-processing, (squares+multiplies)·(3l+6), post-processing — the
// same structure as the paper's Eq. 10 with the slower multiplier).
func (b *BlumPaar) ModExp(m, e *big.Int) (*big.Int, int, error) {
	if e.Sign() <= 0 {
		return nil, 0, fmt.Errorf("baseline: exponent must be positive")
	}
	if m.Sign() < 0 || m.Cmp(b.N) >= 0 {
		return nil, 0, fmt.Errorf("baseline: base must be in [0, N-1]")
	}
	a := b.Mul(m, b.RR)
	mr := new(big.Int).Set(a)
	muls := 1
	for i := e.BitLen() - 2; i >= 0; i-- {
		a = b.Mul(a, a)
		muls++
		if e.Bit(i) == 1 {
			a = b.Mul(a, mr)
			muls++
		}
	}
	a = b.Mul(a, big.NewInt(1))
	muls++
	if a.Cmp(b.N) >= 0 {
		a.Sub(a, b.N)
	}
	// Pre/post modelled like the paper's §4.5 with the longer per-mul
	// cost folded in uniformly.
	cycles := muls * b.CyclesPerMul()
	return a, cycles, nil
}

// Interleaved is the textbook left-to-right interleaved modular
// multiplier: T = 2T + x_i·y, then up to two conditional subtractions of
// N per step. Its cycle count depends on the operand data — the property
// Montgomery designs remove and internal/sca measures.
type Interleaved struct {
	N *big.Int
	L int
}

// NewInterleaved builds the naive baseline (any modulus ≥ 2 works; no
// odd restriction, division is never used).
func NewInterleaved(n *big.Int) (*Interleaved, error) {
	if n.Cmp(big.NewInt(2)) < 0 {
		return nil, mont.ErrModulusTooSmall
	}
	return &Interleaved{N: new(big.Int).Set(n), L: n.BitLen()}, nil
}

// Mul computes x·y mod N and the number of datapath cycles consumed,
// counting one cycle per shift-add and one per performed subtraction.
// Inputs must be in [0, N-1].
func (in *Interleaved) Mul(x, y *big.Int) (*big.Int, int) {
	if x.Sign() < 0 || x.Cmp(in.N) >= 0 || y.Sign() < 0 || y.Cmp(in.N) >= 0 {
		panic("baseline: interleaved operand outside [0, N-1]")
	}
	t := new(big.Int)
	cycles := 0
	for i := in.L - 1; i >= 0; i-- {
		t.Lsh(t, 1)
		if x.Bit(i) == 1 {
			t.Add(t, y)
		}
		cycles++ // shift-add
		for t.Cmp(in.N) >= 0 {
			t.Sub(t, in.N)
			cycles++ // data-dependent subtraction
		}
	}
	return t, cycles
}

// MinCycles and MaxCycles bound Interleaved.Mul's cycle count: l
// shift-adds plus zero to 2l subtractions.
func (in *Interleaved) MinCycles() int { return in.L }

// MaxCycles returns the worst-case cycle count.
func (in *Interleaved) MaxCycles() int { return 3 * in.L }
