package baseline

import (
	"errors"
	"math/big"
)

// Barrett reduction: the other classic division-free modular reduction,
// included because the paper's §1 motivates Montgomery precisely against
// "the time consuming trial division" of straightforward methods.
// Barrett trades the division for two multiplications by a precomputed
// reciprocal μ = ⌊4^l / N⌋; unlike Montgomery it needs no domain
// conversion, but its multiplications are full double-width products,
// which is why bit-serial hardware prefers Montgomery's interleaved
// form. The cycle model reflects that: a Barrett modular multiplication
// costs three full multiplications' worth of add-shift cycles.
type Barrett struct {
	N  *big.Int
	L  int      // bit length of N
	Mu *big.Int // ⌊2^(2l) / N⌋
}

// NewBarrett precomputes the reciprocal for modulus n ≥ 3.
func NewBarrett(n *big.Int) (*Barrett, error) {
	if n.Cmp(big.NewInt(3)) < 0 {
		return nil, errors.New("baseline: modulus must be at least 3")
	}
	l := n.BitLen()
	mu := new(big.Int).Lsh(big.NewInt(1), uint(2*l))
	mu.Div(mu, n)
	return &Barrett{N: new(big.Int).Set(n), L: l, Mu: mu}, nil
}

// Reduce computes x mod N for 0 ≤ x < N² with at most two correcting
// subtractions (the classic Barrett bound).
func (b *Barrett) Reduce(x *big.Int) *big.Int {
	if x.Sign() < 0 {
		panic("baseline: negative input to Barrett reduction")
	}
	l := uint(b.L)
	// q = ⌊⌊x / 2^(l-1)⌋ · μ / 2^(l+1)⌋
	q := new(big.Int).Rsh(x, l-1)
	q.Mul(q, b.Mu)
	q.Rsh(q, l+1)
	r := new(big.Int).Mul(q, b.N)
	r.Sub(x, r)
	subs := 0
	for r.Cmp(b.N) >= 0 {
		r.Sub(r, b.N)
		subs++
		if subs > 2 {
			panic("baseline: Barrett bound violated")
		}
	}
	return r
}

// Mul computes x·y mod N (operands in [0, N-1]) and a bit-serial cycle
// estimate: one l-cycle shift-add multiplication for the product plus
// two for the reduction's reciprocal and back multiplications.
func (b *Barrett) Mul(x, y *big.Int) (*big.Int, int) {
	if x.Sign() < 0 || x.Cmp(b.N) >= 0 || y.Sign() < 0 || y.Cmp(b.N) >= 0 {
		panic("baseline: Barrett operand outside [0, N-1]")
	}
	prod := new(big.Int).Mul(x, y)
	return b.Reduce(prod), 3 * b.L
}

// ModExp computes m^e mod N by square-and-multiply over Barrett
// multiplication, returning the result and the modelled cycle count.
func (b *Barrett) ModExp(m, e *big.Int) (*big.Int, int, error) {
	if e.Sign() <= 0 {
		return nil, 0, errors.New("baseline: exponent must be positive")
	}
	if m.Sign() < 0 || m.Cmp(b.N) >= 0 {
		return nil, 0, errors.New("baseline: base must be in [0, N-1]")
	}
	a := new(big.Int).Set(m)
	cycles := 0
	for i := e.BitLen() - 2; i >= 0; i-- {
		var c int
		a, c = b.Mul(a, a)
		cycles += c
		if e.Bit(i) == 1 {
			a, c = b.Mul(a, m)
			cycles += c
		}
	}
	return a, cycles, nil
}
