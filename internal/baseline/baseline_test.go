package baseline

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/mont"
)

func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func TestNewBlumPaarValidation(t *testing.T) {
	if _, err := NewBlumPaar(big.NewInt(4)); err != mont.ErrEvenModulus {
		t.Errorf("even: %v", err)
	}
	if _, err := NewBlumPaar(big.NewInt(1)); err != mont.ErrModulusTooSmall {
		t.Errorf("small: %v", err)
	}
	b, err := NewBlumPaar(big.NewInt(101))
	if err != nil {
		t.Fatal(err)
	}
	if b.Iterations() != 10 || b.CyclesPerMul() != 27 {
		t.Errorf("iters=%d cycles=%d", b.Iterations(), b.CyclesPerMul())
	}
}

// The Blum–Paar loop must compute x·y·2^{-(l+3)} mod N with outputs
// below 2N for inputs below 2N — their (weaker) chaining invariant.
func TestBlumPaarMulMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for _, l := range []int{4, 8, 16, 64, 256} {
		n := randOdd(rng, l)
		b, err := NewBlumPaar(n)
		if err != nil {
			t.Fatal(err)
		}
		rinv := new(big.Int).ModInverse(b.R, n)
		for trial := 0; trial < 30; trial++ {
			x := new(big.Int).Rand(rng, b.N2)
			y := new(big.Int).Rand(rng, b.N2)
			got := b.Mul(x, y)
			if got.Cmp(b.N2) >= 0 {
				t.Fatalf("l=%d: output %s ≥ 2N", l, got)
			}
			want := new(big.Int).Mul(x, y)
			want.Mul(want, rinv).Mod(want, n)
			if new(big.Int).Mod(got, n).Cmp(want) != 0 {
				t.Fatalf("l=%d: BlumPaar.Mul wrong", l)
			}
		}
	}
}

func TestBlumPaarMulBoundsPanic(t *testing.T) {
	b, _ := NewBlumPaar(big.NewInt(13))
	defer func() {
		if recover() == nil {
			t.Error("oversized operand accepted")
		}
	}()
	b.Mul(big.NewInt(26), big.NewInt(1))
}

func TestBlumPaarModExp(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	for _, l := range []int{8, 32, 128} {
		n := randOdd(rng, l)
		b, _ := NewBlumPaar(n)
		for trial := 0; trial < 5; trial++ {
			m := new(big.Int).Rand(rng, n)
			e := new(big.Int).Rand(rng, n)
			if e.Sign() == 0 {
				e.SetInt64(3)
			}
			got, cycles, err := b.ModExp(m, e)
			if err != nil {
				t.Fatal(err)
			}
			if want := new(big.Int).Exp(m, e, n); got.Cmp(want) != 0 {
				t.Fatalf("l=%d: BlumPaar.ModExp wrong", l)
			}
			if cycles <= 0 || cycles%b.CyclesPerMul() != 0 {
				t.Errorf("cycle count %d not a multiple of per-mul cost", cycles)
			}
		}
	}
	b, _ := NewBlumPaar(big.NewInt(101))
	if _, _, err := b.ModExp(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, _, err := b.ModExp(big.NewInt(101), big.NewInt(3)); err == nil {
		t.Error("base = N accepted")
	}
}

// The headline comparison: the paper's multiplier must beat Blum–Paar by
// one iteration per multiplication — 3l+4 vs 3l+6 cycles — and by the
// clock-period factor on top.
func TestCycleAdvantageOverBlumPaar(t *testing.T) {
	for _, l := range []int{32, 1024} {
		ours := 3*l + 4
		n := randOdd(rand.New(rand.NewSource(int64(l))), l)
		b, _ := NewBlumPaar(n)
		if b.CyclesPerMul() != ours+2 {
			t.Errorf("l=%d: Blum–Paar %d cycles, ours %d", l, b.CyclesPerMul(), ours)
		}
	}
	if ClockPeriodFactor <= 1 {
		t.Error("clock period factor must exceed 1")
	}
}

func TestInterleavedMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for _, l := range []int{4, 8, 16, 64} {
		n := randOdd(rng, l)
		in, err := NewInterleaved(n)
		if err != nil {
			t.Fatal(err)
		}
		minSeen, maxSeen := 1<<30, 0
		for trial := 0; trial < 50; trial++ {
			x := new(big.Int).Rand(rng, n)
			y := new(big.Int).Rand(rng, n)
			got, cycles := in.Mul(x, y)
			want := new(big.Int).Mul(x, y)
			want.Mod(want, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("l=%d: interleaved wrong", l)
			}
			if cycles < in.MinCycles() || cycles > in.MaxCycles() {
				t.Fatalf("cycles %d outside [%d,%d]", cycles, in.MinCycles(), in.MaxCycles())
			}
			if cycles < minSeen {
				minSeen = cycles
			}
			if cycles > maxSeen {
				maxSeen = cycles
			}
		}
		// The whole point of this baseline: cycle count varies with data.
		if l >= 8 && minSeen == maxSeen {
			t.Errorf("l=%d: interleaved cycle count did not vary", l)
		}
	}
}

func TestInterleavedValidation(t *testing.T) {
	if _, err := NewInterleaved(big.NewInt(1)); err == nil {
		t.Error("modulus 1 accepted")
	}
	in, _ := NewInterleaved(big.NewInt(10)) // even modulus fine here
	got, _ := in.Mul(big.NewInt(7), big.NewInt(9))
	if got.Int64() != 3 {
		t.Errorf("7·9 mod 10 = %s", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized operand accepted")
		}
	}()
	in.Mul(big.NewInt(10), big.NewInt(1))
}

func TestBarrettValidation(t *testing.T) {
	if _, err := NewBarrett(big.NewInt(2)); err == nil {
		t.Error("modulus 2 accepted")
	}
	b, err := NewBarrett(big.NewInt(101))
	if err != nil || b.L != 7 {
		t.Fatalf("setup: %v", err)
	}
}

// Barrett reduction vs math/big over the full input range [0, N²).
func TestBarrettReduceMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for _, l := range []int{4, 8, 16, 64, 256, 1024} {
		n := randOdd(rng, l)
		b, err := NewBarrett(n)
		if err != nil {
			t.Fatal(err)
		}
		n2 := new(big.Int).Mul(n, n)
		for trial := 0; trial < 40; trial++ {
			x := new(big.Int).Rand(rng, n2)
			got := b.Reduce(x)
			want := new(big.Int).Mod(x, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("l=%d: Barrett reduce wrong for %s", l, x)
			}
		}
	}
}

// Even moduli work too (no gcd restriction, unlike Montgomery).
func TestBarrettEvenModulus(t *testing.T) {
	b, err := NewBarrett(big.NewInt(100))
	if err != nil {
		t.Fatal(err)
	}
	got, _ := b.Mul(big.NewInt(77), big.NewInt(88))
	if got.Int64() != 77*88%100 {
		t.Fatalf("77·88 mod 100 = %s", got)
	}
}

func TestBarrettModExp(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	for _, l := range []int{8, 64, 256} {
		n := randOdd(rng, l)
		b, _ := NewBarrett(n)
		m := new(big.Int).Rand(rng, n)
		e := new(big.Int).Rand(rng, n)
		if e.Sign() == 0 {
			e.SetInt64(3)
		}
		got, cycles, err := b.ModExp(m, e)
		if err != nil {
			t.Fatal(err)
		}
		if want := new(big.Int).Exp(m, e, n); got.Cmp(want) != 0 {
			t.Fatalf("l=%d: Barrett ModExp wrong", l)
		}
		if cycles <= 0 {
			t.Error("no cycles accounted")
		}
	}
	b, _ := NewBarrett(big.NewInt(101))
	if _, _, err := b.ModExp(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, _, err := b.ModExp(big.NewInt(101), big.NewInt(3)); err == nil {
		t.Error("base = N accepted")
	}
}

// The cycle-model comparison behind the paper's §1 motivation: per
// modular multiplication, Montgomery's interleaved form (3l+4 bit-serial
// cycles) beats Barrett's three full products (3l cycles each… i.e. 3l
// with our model per product — total 3·l for Barrett vs 3l+4; the real
// gap is that Barrett's products are double-width, modelled here as the
// 3× factor on l-cycle multiplications).
func TestBarrettCycleModel(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	n := randOdd(rng, 64)
	b, _ := NewBarrett(n)
	x := new(big.Int).Rand(rng, n)
	y := new(big.Int).Rand(rng, n)
	_, cycles := b.Mul(x, y)
	if cycles != 3*64 {
		t.Errorf("Barrett cycle model = %d", cycles)
	}
}
