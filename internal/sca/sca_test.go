package sca

import (
	"math/big"
	"math/rand"
	"testing"
)

func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

// §5 reproduction, timing side: the MMM circuit's cycle count must be
// exactly constant across random operands — 3l+4 always.
func TestMMMTimingConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for _, l := range []int{8, 16, 32} {
		n := randOdd(rng, l)
		res, err := MeasureMMMTiming(n, 40, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Constant() {
			t.Errorf("l=%d: MMM timing varies: %s", l, res)
		}
		if res.Min != 3*l+4 {
			t.Errorf("l=%d: cycles = %d, want %d", l, res.Min, 3*l+4)
		}
		if res.Variance != 0 {
			t.Errorf("l=%d: nonzero variance %v", l, res.Variance)
		}
	}
}

// The contrast: the conditional-subtraction baseline's timing varies.
func TestInterleavedTimingVaries(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	n := randOdd(rng, 32)
	res, err := MeasureInterleavedTiming(n, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.Constant() {
		t.Errorf("interleaved baseline timing unexpectedly constant: %s", res)
	}
	if res.Variance == 0 {
		t.Error("interleaved variance is zero")
	}
}

func TestTimingValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	n := randOdd(rng, 8)
	if _, err := MeasureMMMTiming(n, 0, rng); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := MeasureInterleavedTiming(n, 0, rng); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := MeasureMMMTiming(big.NewInt(8), 1, rng); err == nil {
		t.Error("even modulus accepted")
	}
}

func TestToggleTraceShape(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	l := 16
	n := randOdd(rng, l)
	x := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
	y := new(big.Int).Rand(rng, new(big.Int).Lsh(n, 1))
	tr, err := ToggleTrace(n, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) != 3*l+4 {
		t.Fatalf("trace length %d, want %d", len(tr), 3*l+4)
	}
	total := 0
	for _, v := range tr {
		if v < 0 || v > l+2 {
			t.Fatalf("toggle count %d out of range", v)
		}
		total += v
	}
	if total == 0 {
		t.Error("all-zero toggle trace for nonzero operands")
	}
}

// Toggle traces must depend on the data (the power proxy is NOT flat):
// two different operand pairs give different traces.
func TestToggleTraceDataDependent(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	n := randOdd(rng, 16)
	n2 := new(big.Int).Lsh(n, 1)
	x1, y1 := new(big.Int).Rand(rng, n2), new(big.Int).Rand(rng, n2)
	x2, y2 := new(big.Int).Rand(rng, n2), new(big.Int).Rand(rng, n2)
	t1, err := ToggleTrace(n, x1, y1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ToggleTrace(n, x2, y2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range t1 {
		if t1[i] != t2[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("toggle traces identical for different operands")
	}
	// Determinism: same operands → same trace.
	t1b, _ := ToggleTrace(n, x1, y1)
	for i := range t1 {
		if t1[i] != t1b[i] {
			t.Fatal("toggle trace not deterministic")
		}
	}
}

func TestWelchValidation(t *testing.T) {
	if _, err := Welch([][]int{{1}}, [][]int{{1}, {2}}); err == nil {
		t.Error("single-trace group accepted")
	}
	if _, err := Welch([][]int{{1, 2}, {3}}, [][]int{{1}, {2}}); err == nil {
		t.Error("ragged traces accepted")
	}
}

// Identical distributions must give small |t|; disjoint distributions
// must exceed the TVLA threshold.
func TestWelchDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(126))
	mk := func(mean int) [][]int {
		g := make([][]int, 50)
		for i := range g {
			tr := make([]int, 20)
			for p := range tr {
				tr[p] = mean + rng.Intn(3)
			}
			g[i] = tr
		}
		return g
	}
	same, err := Welch(mk(10), mk(10))
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbs(same) > TVLAThreshold {
		t.Errorf("identical distributions flagged: max |t| = %.2f", MaxAbs(same))
	}
	diff, err := Welch(mk(10), mk(20))
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbs(diff) < TVLAThreshold {
		t.Errorf("disjoint distributions not flagged: max |t| = %.2f", MaxAbs(diff))
	}
}

// The full TVLA experiment on the array: fixed-vs-random y must be
// detectable in the toggle traces (constant time ≠ flat power), which is
// exactly the nuance the reproduction documents for the paper's §5.
func TestFixedVsRandomDetectsPowerLeak(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	n := randOdd(rng, 16)
	// A low-weight fixed operand maximizes the toggle contrast against
	// the random group (TVLA commonly uses an extreme fixed class).
	fixedY := big.NewInt(1)
	tstat, err := FixedVsRandom(n, fixedY, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(tstat) != 3*16+4 {
		t.Fatalf("t trace length %d", len(tstat))
	}
	if MaxAbs(tstat) < TVLAThreshold {
		t.Errorf("expected a first-order toggle leak, max |t| = %.2f", MaxAbs(tstat))
	}
	if _, err := FixedVsRandom(n, fixedY, 1, rng); err == nil {
		t.Error("single trace per group accepted")
	}
}

func TestTimingResultString(t *testing.T) {
	r := summarize([]int{5, 5, 5})
	if r.String() == "" || !r.Constant() || r.Mean != 5 {
		t.Errorf("summarize: %+v", r)
	}
}
