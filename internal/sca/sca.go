// Package sca provides the side-channel instrumentation behind the
// paper's §5 claim: dropping every conditional reduction step makes the
// multiplier's control flow — and therefore its timing — independent of
// the operand data ("reduction steps … are presumed to be vulnerable to
// side-channel attacks").
//
// Two kinds of evidence are produced:
//
//   - Timing: cycle counts of the MMM circuit over arbitrary operand
//     sets (provably the constant 3l+4), contrasted with the
//     data-dependent cycle counts of the conditional-subtraction
//     baseline (internal/baseline.Interleaved).
//
//   - Power proxy: per-cycle register-toggle (Hamming-distance) traces
//     of the systolic array, plus Welch's t-test in the standard
//     fixed-vs-random (TVLA) configuration. Constant timing does NOT
//     imply flat power — the traces remain data-dependent — and the
//     t-test makes that distinction measurable.
package sca

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/bits"
	"repro/internal/mmmc"
	"repro/internal/systolic"
)

// TimingResult summarizes cycle counts over an operand set.
type TimingResult struct {
	Samples  int
	Min, Max int
	Mean     float64
	Variance float64
}

// Constant reports whether every sample took the same number of cycles.
func (r TimingResult) Constant() bool { return r.Min == r.Max }

// String renders the summary.
func (r TimingResult) String() string {
	return fmt.Sprintf("%d samples: min=%d max=%d mean=%.2f var=%.4f",
		r.Samples, r.Min, r.Max, r.Mean, r.Variance)
}

func summarize(cycles []int) TimingResult {
	r := TimingResult{Samples: len(cycles), Min: math.MaxInt, Max: 0}
	var sum float64
	for _, c := range cycles {
		if c < r.Min {
			r.Min = c
		}
		if c > r.Max {
			r.Max = c
		}
		sum += float64(c)
	}
	r.Mean = sum / float64(len(cycles))
	for _, c := range cycles {
		d := float64(c) - r.Mean
		r.Variance += d * d
	}
	r.Variance /= float64(len(cycles))
	return r
}

// MeasureMMMTiming runs trials random multiplications (operands < 2N)
// through the cycle-accurate MMM circuit and summarizes the cycle
// counts. The paper's design guarantees Constant() == true.
func MeasureMMMTiming(n *big.Int, trials int, rng *rand.Rand) (TimingResult, error) {
	if trials < 1 {
		return TimingResult{}, errors.New("sca: need at least one trial")
	}
	l := n.BitLen()
	c, err := mmmc.New(l, systolic.Guarded)
	if err != nil {
		return TimingResult{}, err
	}
	n2 := new(big.Int).Lsh(n, 1)
	nv := bits.FromBig(n, l)
	cycles := make([]int, trials)
	for i := range cycles {
		x := new(big.Int).Rand(rng, n2)
		y := new(big.Int).Rand(rng, n2)
		_, cyc, err := c.Run(bits.FromBig(x, l+1), bits.FromBig(y, l+1), nv)
		if err != nil {
			return TimingResult{}, err
		}
		cycles[i] = cyc
	}
	return summarize(cycles), nil
}

// MeasureInterleavedTiming is the contrast experiment: the conditional-
// subtraction baseline over the same operand distribution. Its cycle
// count varies with the data.
func MeasureInterleavedTiming(n *big.Int, trials int, rng *rand.Rand) (TimingResult, error) {
	if trials < 1 {
		return TimingResult{}, errors.New("sca: need at least one trial")
	}
	in, err := baseline.NewInterleaved(n)
	if err != nil {
		return TimingResult{}, err
	}
	cycles := make([]int, trials)
	for i := range cycles {
		x := new(big.Int).Rand(rng, n)
		y := new(big.Int).Rand(rng, n)
		_, cyc := in.Mul(x, y)
		cycles[i] = cyc
	}
	return summarize(cycles), nil
}

// ToggleTrace records the systolic array's register Hamming-distance per
// clock cycle during one multiplication — the standard switching-
// activity proxy for dynamic power.
func ToggleTrace(n, x, y *big.Int) ([]int, error) {
	l := n.BitLen()
	arr, err := systolic.NewArray(systolic.Guarded, bits.FromBig(n, l), bits.FromBig(y, l+1))
	if err != nil {
		return nil, err
	}
	xv := bits.FromBig(x, l+1)
	arr.Reset()
	prev := arr.TRegister()
	trace := make([]int, 3*l+4)
	for c := 0; c < 3*l+4; c++ {
		arr.Step(xv.Bit(c / 2))
		cur := arr.TRegister()
		trace[c] = hamming(prev, cur)
		prev = cur
	}
	return trace, nil
}

func hamming(a, b bits.Vec) int {
	d := 0
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a.Bit(i) != b.Bit(i) {
			d++
		}
	}
	return d
}

// Welch computes Welch's t-statistic per trace point between two groups
// of equal-length traces. |t| > 4.5 at any point is the conventional
// TVLA threshold for a detectable first-order leak.
func Welch(groupA, groupB [][]int) ([]float64, error) {
	if len(groupA) < 2 || len(groupB) < 2 {
		return nil, errors.New("sca: need at least two traces per group")
	}
	points := len(groupA[0])
	for _, tr := range append(append([][]int{}, groupA...), groupB...) {
		if len(tr) != points {
			return nil, errors.New("sca: trace lengths differ")
		}
	}
	t := make([]float64, points)
	for p := 0; p < points; p++ {
		ma, va := meanVar(groupA, p)
		mb, vb := meanVar(groupB, p)
		denom := math.Sqrt(va/float64(len(groupA)) + vb/float64(len(groupB)))
		if denom == 0 {
			t[p] = 0
			continue
		}
		t[p] = (ma - mb) / denom
	}
	return t, nil
}

func meanVar(group [][]int, p int) (mean, variance float64) {
	for _, tr := range group {
		mean += float64(tr[p])
	}
	mean /= float64(len(group))
	for _, tr := range group {
		d := float64(tr[p]) - mean
		variance += d * d
	}
	variance /= float64(len(group) - 1) // sample variance
	return mean, variance
}

// MaxAbs returns the largest |t| in a t-statistic trace.
func MaxAbs(t []float64) float64 {
	m := 0.0
	for _, v := range t {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// TVLAThreshold is the conventional pass/fail bound for Welch's t.
const TVLAThreshold = 4.5

// FixedVsRandom runs the standard TVLA experiment on the array's toggle
// traces: tracesPerGroup multiplications with a fixed y operand versus
// tracesPerGroup with random y (x random in both groups), returning the
// per-cycle t-statistic.
func FixedVsRandom(n, fixedY *big.Int, tracesPerGroup int, rng *rand.Rand) ([]float64, error) {
	if tracesPerGroup < 2 {
		return nil, errors.New("sca: need at least two traces per group")
	}
	n2 := new(big.Int).Lsh(n, 1)
	fixed := make([][]int, tracesPerGroup)
	random := make([][]int, tracesPerGroup)
	for i := 0; i < tracesPerGroup; i++ {
		x := new(big.Int).Rand(rng, n2)
		tr, err := ToggleTrace(n, x, fixedY)
		if err != nil {
			return nil, err
		}
		fixed[i] = tr

		x2 := new(big.Int).Rand(rng, n2)
		y2 := new(big.Int).Rand(rng, n2)
		tr2, err := ToggleTrace(n, x2, y2)
		if err != nil {
			return nil, err
		}
		random[i] = tr2
	}
	return Welch(fixed, random)
}
