package cluster

import (
	"context"
	"math/big"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faults"
)

// TestClusterIntegrityFailover is the end-to-end chaos story in one
// process: a two-backend fleet where one backend's only core flips a
// bit in every result. That backend runs integrity checking with
// recompute off, so it answers with the integrity wire code instead of
// a wrong value; the cluster fails those answers over for free, ejects
// the backend after the consecutive-failure threshold, and the client
// sees nothing but correct results.
func TestClusterIntegrityFailover(t *testing.T) {
	faultyOpts := []engine.Option{
		engine.WithWorkers(1),
		engine.WithIntegrityCheck(1),
		engine.WithIntegrityRecompute(false),
		engine.WithFaultInjector(faults.New(faults.WithBitFlip(-1), faults.WithSeed(9))),
	}
	_, _, faulty := startBackend(t, faultyOpts, nil)
	_, _, healthy := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)

	// Long probe interval: once the faulty backend is ejected it stays
	// out for the rest of the test (its transport Ping still succeeds,
	// so a probe would reinstate it — deliberately, see the package doc
	// on integrity ejection being a duty cycle).
	c, err := New([]string{faulty, healthy},
		WithHedging(false),
		WithProbeInterval(10*time.Minute),
		WithIntegrityEjectThreshold(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Distinct moduli spread the affinity homes across both backends,
	// so the faulty one keeps being picked until it is ejected.
	for i := 0; i < 24; i++ {
		n := testModulus(t, 128)
		base := big.NewInt(int64(100 + i))
		exp := big.NewInt(65537)
		got, err := c.ModExp(ctx, n, base, exp)
		if err != nil {
			t.Fatalf("ModExp %d: %v", i, err)
		}
		if got.Cmp(wantModExp(n, base, exp)) != 0 {
			t.Fatalf("ModExp %d: WRONG ANSWER reached the client", i)
		}
	}

	var fb *backend
	for _, b := range c.snapshot().backends {
		if b.addr == faulty {
			fb = b
		}
	}
	if fb.met.integrityFailures.Value() == 0 {
		t.Fatal("faulty backend never produced an integrity answer — routing starved it")
	}
	if c.met.failovers.Value() == 0 {
		t.Fatal("integrity answers did not fail over")
	}
	if fb.met.ejections.Value() == 0 {
		t.Fatalf("no ejection after %d integrity failures (threshold 3)",
			fb.met.integrityFailures.Value())
	}
	if fb.up() {
		t.Fatal("persistently corrupting backend still in rotation")
	}

	// Ejected-and-benched: further traffic lands on the healthy backend
	// and keeps being correct.
	n := testModulus(t, 128)
	got, err := c.ModExp(ctx, n, big.NewInt(3), big.NewInt(1001))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(3), big.NewInt(1001))) != 0 {
		t.Fatal("wrong answer after ejection")
	}
}

// TestClusterIntegrityStreakReset: a success from a backend resets its
// consecutive-integrity-failure streak, so sporadic (one-shot) faults
// never eject.
func TestClusterIntegrityStreakReset(t *testing.T) {
	// One-shot fault: exactly one corrupted answer, then clean forever.
	faultyOpts := []engine.Option{
		engine.WithWorkers(1),
		engine.WithIntegrityCheck(1),
		engine.WithIntegrityRecompute(false),
		engine.WithFaultInjector(faults.New(
			faults.WithBitFlip(-1), faults.WithSeed(13), faults.WithOneShot())),
	}
	_, _, a1 := startBackend(t, faultyOpts, nil)
	c, err := New([]string{a1},
		WithHedging(false),
		WithProbeInterval(10*time.Minute),
		WithIntegrityEjectThreshold(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	n := testModulus(t, 128)

	// Single backend: the one corrupted answer cannot fail over anywhere
	// else, so the first call errors. That is expected — this test is
	// about the streak, not the failover.
	sawIntegrity := false
	for i := 0; i < 8; i++ {
		_, err := c.ModExp(ctx, n, big.NewInt(int64(5+i)), big.NewInt(65537))
		if err != nil {
			sawIntegrity = true
		}
	}
	if !sawIntegrity {
		t.Fatal("one-shot fault never surfaced")
	}
	b := c.snapshot().backends[0]
	if b.met.ejections.Value() != 0 {
		t.Fatal("a single integrity failure ejected the backend despite threshold 2")
	}
	if !b.up() {
		t.Fatal("backend out of rotation after its streak was broken by successes")
	}
	if b.integrityStreak.Load() != 0 {
		t.Fatalf("streak = %d after clean answers, want 0", b.integrityStreak.Load())
	}
}
