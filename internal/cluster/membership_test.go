package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/errs"
)

// vclock is a manually-advanced time source for handover-window tests:
// the window "expires" exactly when the test says so, never because the
// test ran slowly.
type vclock struct {
	mu sync.Mutex
	t  time.Time
}

func newVClock() *vclock { return &vclock{t: time.Unix(1_700_000_000, 0)} }

func (v *vclock) now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.t
}

func (v *vclock) advance(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.t = v.t.Add(d)
}

// modulusHomedOn scans odd moduli until it finds one whose HRW home
// over addrs is want — and, when requires is non-nil, that also
// satisfies the extra predicate (e.g. "its home over the pre-join set
// was a specific other backend").
func modulusHomedOn(t *testing.T, addrs []string, want string,
	requires func(n *big.Int) bool) *big.Int {
	t.Helper()
	for i := int64(0); i < 1_000_000; i++ {
		n := big.NewInt(1<<16 + 2*i + 1)
		key := n.Bytes()
		best, bestScore := "", uint64(0)
		for _, a := range addrs {
			if s := hrwScore(key, a); best == "" || s > bestScore {
				best, bestScore = a, s
			}
		}
		if best != want {
			continue
		}
		if requires != nil && !requires(n) {
			continue
		}
		return n
	}
	t.Fatal("no modulus found with the required HRW homes")
	return nil
}

func waitBackendUp(t *testing.T, c *Cluster, addr string, want bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, st := range c.Status() {
			if st.Addr == addr && st.Up == want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s up=%v", addr, want)
}

// TestJoinMidFlight: a backend joined at runtime starts OUT of rotation,
// enters after its first successful probe, and then receives the
// affinity traffic HRW assigns it — while a joined-but-dead address
// stays down forever and costs the pool nothing.
func TestJoinMidFlight(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	c, err := New([]string{a1},
		WithHedging(false),
		WithHandover(0, 0), // instantaneous membership for this test
		WithProbeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A dead address joins, is probed, and never comes up.
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if n, err := c.Join(ctx, deadAddr, ""); err != nil || n != 2 {
		t.Fatalf("Join(dead) = (%d, %v), want (2, nil)", n, err)
	}
	for _, st := range c.Status() {
		if st.Addr == deadAddr && st.Up {
			t.Fatal("a runtime join entered rotation before proving itself")
		}
	}

	// A live backend joins and is routable after one probe RTT.
	if n, err := c.Join(ctx, a2, ""); err != nil || n != 3 {
		t.Fatalf("Join(a2) = (%d, %v), want (3, nil)", n, err)
	}
	waitBackendUp(t, c, a2, true)

	// Traffic for a modulus homed on the joined backend lands there.
	n := modulusHomedOn(t, []string{a1, a2}, a2, nil)
	got, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(10))
	if err != nil {
		t.Fatalf("ModExp after join: %v", err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(2), big.NewInt(10))) != 0 {
		t.Fatal("wrong result after join")
	}
	if c.met.backend(a2).picks["affinity"].Value() < 1 {
		t.Error("joined backend never received its affinity traffic")
	}
	if c.met.joins.Value() != 2 {
		t.Errorf("joins counter = %d, want 2", c.met.joins.Value())
	}
}

// TestJoinIdempotentAndBounded: re-joins are no-ops, zone changes
// relabel, the member table cap answers ErrOverloaded, and syntactically
// hostile addresses are rejected with ErrProtocol before touching the
// pool.
func TestJoinIdempotentAndBounded(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	c, err := New([]string{a1},
		WithHandover(0, 0),
		WithMaxMembers(2),
		WithProbeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if n, err := c.Join(ctx, "127.0.0.1:19701", "eu-1"); err != nil || n != 2 {
		t.Fatalf("Join = (%d, %v)", n, err)
	}
	// Same addr+zone: idempotent no-op.
	if n, err := c.Join(ctx, "127.0.0.1:19701", "eu-1"); err != nil || n != 2 {
		t.Fatalf("re-Join = (%d, %v), want (2, nil)", n, err)
	}
	if c.met.joins.Value() != 1 {
		t.Errorf("idempotent re-join counted as a change: joins = %d", c.met.joins.Value())
	}
	// Same addr, new zone: relabel, not growth.
	if n, err := c.Join(ctx, "127.0.0.1:19701", "eu-2"); err != nil || n != 2 {
		t.Fatalf("relabel Join = (%d, %v), want (2, nil)", n, err)
	}
	ms := c.Members()
	if len(ms) != 2 || ms[1].Zone != "eu-2" {
		t.Fatalf("Members after relabel = %v", ms)
	}
	// Table full.
	if _, err := c.Join(ctx, "127.0.0.1:19702", ""); !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("Join past cap = %v, want ErrOverloaded", err)
	}
	// Hostile fields.
	for _, bad := range []string{"", "noport", string(make([]byte, maxMemberField+1)) + ":1"} {
		if _, err := c.Join(ctx, bad, ""); !errors.Is(err, errs.ErrProtocol) {
			t.Errorf("Join(%.20q) = %v, want ErrProtocol", bad, err)
		}
	}
	// Goodbye of a non-member: idempotent.
	if n, err := c.Goodbye(ctx, "127.0.0.1:19799"); err != nil || n != 2 {
		t.Fatalf("Goodbye(non-member) = (%d, %v), want (2, nil)", n, err)
	}
	if c.met.leaves.Value() != 0 {
		t.Error("idempotent goodbye counted as a change")
	}
}

// TestHandoverDualRouting is the churn-tolerance core on a virtual
// clock: a join moves a modulus's HRW home, and during the handover
// window the OLD home keeps serving it (its mont.Ctx is warm) while
// exactly one background duplicate warms the NEW home. When the window
// expires, routing flips to the new home and the pool settles.
func TestHandoverDualRouting(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a3 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	vc := newVClock()
	c, err := New([]string{a1, a2},
		WithHedging(false),
		WithHandover(30*time.Second, 256),
		WithProbeInterval(time.Hour),
		withClock(vc.now))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// A modulus homed on a1 pre-join whose home moves to a3 post-join.
	n := modulusHomedOn(t, []string{a1, a2, a3}, a3, func(n *big.Int) bool {
		return hrwScore(n.Bytes(), a1) > hrwScore(n.Bytes(), a2)
	})

	// Warm the old home.
	if _, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(10)); err != nil {
		t.Fatal(err)
	}
	oldHomeAff := c.met.backend(a1).picks["affinity"].Value()
	if oldHomeAff < 1 {
		t.Fatal("pre-join request did not route to its affinity home")
	}

	if _, err := c.Join(ctx, a3, ""); err != nil {
		t.Fatal(err)
	}
	waitBackendUp(t, c, a3, true)

	// Inside the window: the old home answers, the new home warms once.
	for i := 0; i < 5; i++ {
		got, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(int64(10+i)))
		if err != nil {
			t.Fatalf("ModExp during handover: %v", err)
		}
		if got.Cmp(wantModExp(n, big.NewInt(2), big.NewInt(int64(10+i)))) != 0 {
			t.Fatal("wrong result during handover")
		}
	}
	if got := c.met.handoverDualRouted.Value(); got != 5 {
		t.Errorf("dual-routed = %d, want 5 (every in-window request)", got)
	}
	if got := c.met.backend(a1).picks["handover"].Value(); got != 5 {
		t.Errorf("old home handover picks = %d, want 5", got)
	}
	if got := c.met.handoverWarmups.Value(); got != 1 {
		t.Errorf("warmups = %d, want exactly 1 (deduped per modulus)", got)
	}
	if c.handoverActive(c.pool.Load()) != true {
		t.Fatal("window not active under the virtual clock")
	}

	// Window expires: routing flips to the new home, the pool settles.
	vc.advance(31 * time.Second)
	got, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(99))
	if err != nil {
		t.Fatalf("ModExp after handover: %v", err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(2), big.NewInt(99))) != 0 {
		t.Fatal("wrong result after handover")
	}
	if c.met.backend(a3).picks["affinity"].Value() < 1 {
		t.Error("routing never flipped to the new home after the window")
	}
	if p := c.pool.Load(); p.prev != nil {
		t.Error("pool did not settle after the window expired")
	}
}

// TestHandoverWarmCap: the per-epoch warm-up cap bounds context-cache
// churn — moved moduli past the cap are dual-routed but not warmed, and
// the suppression is counted rather than silent.
func TestHandoverWarmCap(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a3 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	vc := newVClock()
	c, err := New([]string{a1, a2},
		WithHedging(false),
		WithHandover(30*time.Second, 1), // at most ONE warm-up per change
		WithProbeInterval(time.Hour),
		withClock(vc.now))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Two distinct moduli that both move home to a3 on join.
	movesToA3 := func(prevHome string) func(*big.Int) bool {
		return func(n *big.Int) bool {
			return hrwScore(n.Bytes(), prevHome) > hrwScore(n.Bytes(), otherOf(prevHome, a1, a2))
		}
	}
	n1 := modulusHomedOn(t, []string{a1, a2, a3}, a3, movesToA3(a1))
	n2 := modulusHomedOn(t, []string{a1, a2, a3}, a3, func(n *big.Int) bool {
		return n.Cmp(n1) != 0 && movesToA3(a1)(n)
	})

	if _, err := c.Join(ctx, a3, ""); err != nil {
		t.Fatal(err)
	}
	waitBackendUp(t, c, a3, true)

	for _, n := range []*big.Int{n1, n2} {
		if _, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(10)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.met.handoverWarmups.Value(); got != 1 {
		t.Errorf("warmups = %d, want 1 (capped)", got)
	}
	if got := c.met.warmSuppressed.Value(); got != 1 {
		t.Errorf("suppressed = %d, want 1 (the over-cap modulus, counted)", got)
	}
}

func otherOf(x, a, b string) string {
	if x == a {
		return b
	}
	return a
}

// TestGoodbyeHandoverAndRetirement: a graceful leave keeps the departed
// backend serving its warm moduli through the window, then retires it —
// probe loop stopped, client closed — when the window settles.
func TestGoodbyeHandoverAndRetirement(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	vc := newVClock()
	c, err := New([]string{a1, a2},
		WithHedging(false),
		WithHandover(30*time.Second, 256),
		WithProbeInterval(time.Hour),
		withClock(vc.now))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	n := modulusHomedOn(t, []string{a1, a2}, a1, nil)
	var departing *backend
	for _, b := range c.snapshot().backends {
		if b.addr == a1 {
			departing = b
		}
	}

	if _, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(10)); err != nil {
		t.Fatal(err)
	}
	if cnt, err := c.Goodbye(ctx, a1); err != nil || cnt != 1 {
		t.Fatalf("Goodbye = (%d, %v), want (1, nil)", cnt, err)
	}
	if ms := c.Members(); len(ms) != 1 || ms[0].Addr != a2 {
		t.Fatalf("Members after goodbye = %v, want just %s", ms, a2)
	}

	// In-window: the departed-but-alive old home still serves its warm
	// modulus.
	if _, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(11)); err != nil {
		t.Fatalf("ModExp during leave handover: %v", err)
	}
	if got := c.met.backend(a1).picks["handover"].Value(); got < 1 {
		t.Errorf("departed backend handover picks = %d, want ≥ 1", got)
	}

	// Window settles: the departed backend is retired for real.
	vc.advance(31 * time.Second)
	got, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(12))
	if err != nil {
		t.Fatalf("ModExp after leave settled: %v", err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(2), big.NewInt(12))) != 0 {
		t.Fatal("wrong result after leave settled")
	}
	select {
	case <-departing.gone:
	default:
		t.Error("departed backend not retired after the window settled")
	}
	if c.met.leaves.Value() != 1 {
		t.Errorf("leaves = %d, want 1", c.met.leaves.Value())
	}
}

// TestGoodbyeUnderLoad: a graceful leave in the middle of concurrent
// traffic produces zero client-visible errors and zero wrong answers —
// the departing backend's warm contexts hand over instead of cliffing.
func TestGoodbyeUnderLoad(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(2)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(2)}, nil)
	c, err := New([]string{a1, a2},
		WithHedging(false),
		WithRetryBudget(1.0, 64))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	const workers, perWorker = 4, 20
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	n := testModulus(t, 192)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				base := big.NewInt(int64(w*1000 + i + 2))
				exp := big.NewInt(int64(65537 + i))
				got, err := c.ModExp(ctx, n, base, exp)
				if err != nil {
					errc <- fmt.Errorf("worker %d req %d: %w", w, i, err)
					return
				}
				if got.Cmp(wantModExp(n, base, exp)) != 0 {
					errc <- fmt.Errorf("worker %d req %d: WRONG ANSWER", w, i)
					return
				}
				if i == perWorker/2 && w == 0 {
					if _, err := c.Goodbye(ctx, a1); err != nil {
						errc <- fmt.Errorf("goodbye: %w", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if ms := c.Members(); len(ms) != 1 || ms[0].Addr != a2 {
		t.Fatalf("Members after goodbye = %v", ms)
	}
}

// TestZonePreferenceAndBadZoneHedge exercises the zone rules directly
// against choose(): least-inflight ties go to the local zone, hedges
// never enter a zone absorbing failures, and primary routing still may
// when that zone holds the only capacity.
func TestZonePreferenceAndBadZoneHedge(t *testing.T) {
	// A dead seed keeps New() happy; routing below uses a synthetic
	// membership, never the pool.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	seed := ln.Addr().String()
	ln.Close()
	c, err := New([]string{seed},
		WithZone("z1"),
		WithAffinity(false),
		WithProbeInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	mk := func(addr, zone string, up bool) *backend {
		b := c.newBackend(addr, zone, up)
		t.Cleanup(func() { b.cl.Close() })
		return b
	}
	local := mk("127.0.0.1:21001", "z1", true)
	remote := mk("127.0.0.1:21002", "z2", true)
	remote2 := mk("127.0.0.1:21003", "z2", false) // down: z2 is 1-of-2 down = bad

	// Tie on inflight: the local backend wins every rotation.
	p := &membership{backends: []*backend{remote, local}}
	for i := 0; i < 8; i++ {
		b, reason, _ := c.choose(p, nil, map[*backend]bool{}, false)
		if b != local || reason != "least_inflight" {
			t.Fatalf("tie pick %d = (%s, %s), want local z1 least_inflight", i, b.addr, reason)
		}
	}
	// A strictly-less-loaded remote beats zone preference.
	local.inflight.Store(5)
	if b, _, _ := c.choose(p, nil, map[*backend]bool{}, false); b != remote {
		t.Fatalf("loaded-local pick = %s, want remote", b.addr)
	}
	local.inflight.Store(0)

	// z2 is absorbing failures: hedges skip its up member...
	pBad := &membership{backends: []*backend{remote, remote2, local}}
	if !zoneBad(pBad, "z2") {
		t.Fatal("z2 with 1 of 2 down not considered bad")
	}
	before := c.met.hedgeZoneSkips.Value()
	if b, _, _ := c.choose(pBad, nil, map[*backend]bool{}, true); b != local {
		t.Fatalf("hedge pick = %v, want the z1 backend", b)
	}
	if c.met.hedgeZoneSkips.Value() <= before {
		t.Error("hedge zone skip not counted")
	}
	// ...even when that leaves nothing to hedge onto...
	if b, _, _ := c.choose(pBad, nil, map[*backend]bool{local: true}, true); b != nil {
		t.Fatalf("hedge into a bad zone: picked %s", b.addr)
	}
	// ...while primary routing still uses it (slow beats unavailable).
	if b, _, _ := c.choose(pBad, nil, map[*backend]bool{local: true}, false); b != remote {
		t.Fatalf("primary pick with only bad-zone capacity = %v, want remote", b)
	}
}

// TestMemberParsing covers the -backends grammar: inline lists, zone
// labels, dedupe, comments in member files, and rejection of garbage.
func TestMemberParsing(t *testing.T) {
	ms, err := ParseMemberList(" b1:9001=eu-1, b2:9002 ,b1:9001,, ")
	if err != nil {
		t.Fatal(err)
	}
	want := []Member{{Addr: "b1:9001", Zone: "eu-1"}, {Addr: "b2:9002"}}
	if len(ms) != 2 || ms[0] != want[0] || ms[1] != want[1] {
		t.Fatalf("ParseMemberList = %v, want %v", ms, want)
	}
	for _, bad := range []string{"noport", ":", "=eu-1"} {
		if _, err := ParseMemberList(bad); err == nil {
			t.Errorf("ParseMemberList(%q) accepted", bad)
		}
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "members")
	content := "# fleet\nb1:9001=eu-1   # primary\n\n  b2:9002\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ms, err = LoadMemberFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0] != want[0] || ms[1] != want[1] {
		t.Fatalf("LoadMemberFile = %v, want %v", ms, want)
	}
	if _, err := LoadMemberFile(filepath.Join(dir, "absent")); err == nil {
		t.Error("LoadMemberFile(absent) accepted")
	}
}

// TestJoinAfterClose: membership ops on a closed cluster fail typed.
func TestJoinAfterClose(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	c, err := New([]string{a1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Join(context.Background(), "127.0.0.1:19701", ""); !errors.Is(err, errs.ErrEngineClosed) {
		t.Fatalf("Join after Close = %v, want ErrEngineClosed", err)
	}
	if _, err := c.Goodbye(context.Background(), a1); !errors.Is(err, errs.ErrEngineClosed) {
		t.Fatalf("Goodbye after Close = %v, want ErrEngineClosed", err)
	}
}
