package cluster

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/qos"
)

// pickReasons label why the router chose a backend:
//
//	affinity        HRW home of the request's modulus (warm ctx cache)
//	spill           affinity home overloaded; least-inflight instead
//	least_inflight  no affinity key (or affinity disabled)
//	failover        previous backend failed; next choice
//	hedge           tail-latency hedge fired on a second backend
//	handover        old HRW home serving a moved modulus during the window
//	warmup          background duplicate warming a modulus's new home
var pickReasons = []string{
	"affinity", "spill", "least_inflight", "failover", "hedge",
	"handover", "warmup",
}

// metrics is the cluster's instrument block, pre-registered so the
// request hot path never touches the registry lock. Registered into
// the same obs.Registry as the proxy's server metrics (and scraped next
// to the backends' pages) it completes the client → balancer → backend
// → engine → systolic-core metrics story:
//
//	montsys_cluster_backend_up{backend}          1 = in rotation (gauge)
//	montsys_cluster_backend_inflight{backend}    cluster-side in-flight (gauge)
//	montsys_cluster_breaker_state{backend}       0 closed, 1 half-open, 2 open
//	montsys_cluster_picks_total{backend,reason}  routing decisions (counter)
//	montsys_cluster_affinity_hits_total          requests routed to their HRW home
//	montsys_cluster_affinity_spills_total        affinity home overloaded, spilled
//	montsys_cluster_keyhandle_requests_total     signing requests routed by key handle
//	montsys_cluster_hedges_total                 hedge requests launched
//	montsys_cluster_hedge_wins_total             hedges that answered first
//	montsys_cluster_failovers_total              attempts moved to another backend
//	montsys_cluster_retry_budget_denied_total    hedges/retries the budget refused
//	montsys_cluster_probe_failures_total{backend}
//	montsys_cluster_ejections_total{backend}     health + integrity ejections
//	montsys_cluster_reinstatements_total{backend}
//	montsys_cluster_integrity_failures_total{backend}  ErrIntegrity answers
//	montsys_cluster_request_seconds              end-to-end latency histogram
//	montsys_cluster_tenant_picks_total{tenant}   routed attempts by tenant
//	montsys_cluster_tenant_sheds_total{tenant}   attempts answered rate-limited
//	                                             or overloaded, by tenant
//	montsys_cluster_members                      routable member count (gauge)
//	montsys_cluster_membership_changes_total{kind}  joins and leaves
//	montsys_cluster_handover_dual_routed_total   requests served by a moved
//	                                             modulus's old home
//	montsys_cluster_handover_warmups_total       background duplicates sent to
//	                                             warm a new home (= measured
//	                                             context-cache churn)
//	montsys_cluster_handover_warm_suppressed_total  warm-ups dropped by the
//	                                             per-epoch cap
//	montsys_cluster_hedge_zone_skips_total       hedge candidates skipped for
//	                                             living in a known-bad zone
//
// The per-tenant series exist only for tenants named via WithTenants;
// everything else folds into the qos.OtherTenant label, bounding
// cardinality exactly the way the QoS plane bounds its quotas.
// Per-backend series are pre-registered for seeds and registered on
// first sight for runtime joins (obs.Registry registration is
// idempotent, so a re-join reuses the existing series).
type metrics struct {
	latency            *obs.Histogram
	hedges             *obs.Counter
	hedgeWins          *obs.Counter
	affinityHits       *obs.Counter
	affinitySpills     *obs.Counter
	keyhandleReqs      *obs.Counter
	failovers          *obs.Counter
	budgetDenied       *obs.Counter
	members            *obs.Gauge
	joins              *obs.Counter
	leaves             *obs.Counter
	handoverDualRouted *obs.Counter
	handoverWarmups    *obs.Counter
	warmSuppressed     *obs.Counter
	hedgeZoneSkips     *obs.Counter
	tenantPicks        map[string]*obs.Counter
	tenantSheds        map[string]*obs.Counter

	reg        *obs.Registry
	mu         sync.Mutex // guards perBackend after construction
	perBackend map[string]*backendMetrics
}

type backendMetrics struct {
	up                *obs.Gauge
	inflight          *obs.Gauge
	breakerState      *obs.Gauge
	picks             map[string]*obs.Counter
	probeFailures     *obs.Counter
	ejections         *obs.Counter
	reinstatements    *obs.Counter
	integrityFailures *obs.Counter
}

func newMetrics(reg *obs.Registry, seeds []Member, tenants []string) *metrics {
	m := &metrics{
		reg:         reg,
		perBackend:  make(map[string]*backendMetrics, len(seeds)),
		tenantPicks: make(map[string]*obs.Counter, len(tenants)+1),
		tenantSheds: make(map[string]*obs.Counter, len(tenants)+1),
	}
	for _, t := range append([]string{qos.OtherTenant}, tenants...) {
		if _, dup := m.tenantPicks[t]; dup {
			continue
		}
		tl := obs.Label("tenant", t)
		m.tenantPicks[t] = reg.CounterLabeled("montsys_cluster_tenant_picks_total",
			"Routed backend attempts (primary, hedge, failover) by tenant.", tl)
		m.tenantSheds[t] = reg.CounterLabeled("montsys_cluster_tenant_sheds_total",
			"Backend attempts answered rate-limited or overloaded, by tenant.", tl)
	}
	m.latency = reg.Histogram("montsys_cluster_request_seconds",
		"End-to-end latency of successful cluster requests (feeds the hedge delay).")
	m.hedges = reg.Counter("montsys_cluster_hedges_total",
		"Hedge requests launched after the p99-derived delay.")
	m.hedgeWins = reg.Counter("montsys_cluster_hedge_wins_total",
		"Hedge requests that answered before the primary.")
	m.affinityHits = reg.Counter("montsys_cluster_affinity_hits_total",
		"Requests routed to their modulus's rendezvous-hash home backend.")
	m.affinitySpills = reg.Counter("montsys_cluster_affinity_spills_total",
		"Requests whose affinity home was overloaded and spilled to least-inflight.")
	m.keyhandleReqs = reg.Counter("montsys_cluster_keyhandle_requests_total",
		"Signing requests routed on the affinity plane by key handle rather than raw modulus.")
	m.failovers = reg.Counter("montsys_cluster_failovers_total",
		"Attempts moved to another backend after a failoverable error.")
	m.budgetDenied = reg.Counter("montsys_cluster_retry_budget_denied_total",
		"Hedges and overload retries refused by the retry budget.")
	m.members = reg.Gauge("montsys_cluster_members",
		"Backends in the routable member table (up or not).")
	m.joins = reg.CounterLabeled("montsys_cluster_membership_changes_total",
		"Membership changes applied, by kind.", obs.Label("kind", "join"))
	m.leaves = reg.CounterLabeled("montsys_cluster_membership_changes_total",
		"Membership changes applied, by kind.", obs.Label("kind", "leave"))
	m.handoverDualRouted = reg.Counter("montsys_cluster_handover_dual_routed_total",
		"Requests served by a moved modulus's old home during a handover window.")
	m.handoverWarmups = reg.Counter("montsys_cluster_handover_warmups_total",
		"Background duplicates sent to warm a moved modulus's new home.")
	m.warmSuppressed = reg.Counter("montsys_cluster_handover_warm_suppressed_total",
		"Handover warm-ups suppressed by the per-epoch cap.")
	m.hedgeZoneSkips = reg.Counter("montsys_cluster_hedge_zone_skips_total",
		"Hedge candidates skipped because their zone is absorbing failures.")
	for _, s := range seeds {
		m.backend(s.Addr)
	}
	return m
}

// backend returns the metric block for one backend address, creating
// and registering it on first sight — runtime joins mint their series
// here. obs.Registry registration is idempotent on (name, labels), so
// an address that leaves and rejoins resumes its existing series.
func (m *metrics) backend(addr string) *backendMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	if bm, ok := m.perBackend[addr]; ok {
		return bm
	}
	reg := m.reg
	bl := obs.Label("backend", addr)
	bm := &backendMetrics{
		up: reg.GaugeLabeled("montsys_cluster_backend_up",
			"1 while the backend is in rotation, 0 while ejected.", bl),
		inflight: reg.GaugeLabeled("montsys_cluster_backend_inflight",
			"Requests the cluster currently has in flight on the backend.", bl),
		breakerState: reg.GaugeLabeled("montsys_cluster_breaker_state",
			"Circuit breaker state: 0 closed, 1 half-open, 2 open.", bl),
		picks: make(map[string]*obs.Counter, len(pickReasons)),
		probeFailures: reg.CounterLabeled("montsys_cluster_probe_failures_total",
			"Health probes that failed or answered draining.", bl),
		ejections: reg.CounterLabeled("montsys_cluster_ejections_total",
			"Times the backend was taken out of rotation.", bl),
		reinstatements: reg.CounterLabeled("montsys_cluster_reinstatements_total",
			"Times a probe brought the backend back into rotation.", bl),
		integrityFailures: reg.CounterLabeled("montsys_cluster_integrity_failures_total",
			"ErrIntegrity answers from the backend (corrupted compute detected).", bl),
	}
	for _, r := range pickReasons {
		bm.picks[r] = reg.CounterLabeled("montsys_cluster_picks_total",
			"Routing decisions by backend and reason.",
			bl, obs.Label("reason", r))
	}
	m.perBackend[addr] = bm
	return bm
}

// tenantCounter folds unknown tenants onto the qos.OtherTenant series.
func tenantCounter(byTenant map[string]*obs.Counter, tenant string) *obs.Counter {
	if c, ok := byTenant[tenant]; ok {
		return c
	}
	return byTenant[qos.OtherTenant]
}

// tenantPick records one routed attempt against its tenant.
func (m *metrics) tenantPick(tenant string) { tenantCounter(m.tenantPicks, tenant).Inc() }

// tenantShed records one quota rejection (rate-limited or overloaded
// answer) against its tenant.
func (m *metrics) tenantShed(tenant string) { tenantCounter(m.tenantSheds, tenant).Inc() }

// pick records one routing decision.
func (m *metrics) pick(b *backend, reason string) {
	if c, ok := b.met.picks[reason]; ok {
		c.Inc()
	}
	switch reason {
	case "affinity":
		m.affinityHits.Inc()
	case "spill":
		m.affinitySpills.Inc()
	}
}
