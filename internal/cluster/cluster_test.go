package cluster

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/errs"
	"repro/internal/server"
)

// startBackend boots a real engine + wire server on 127.0.0.1:0, like a
// montsysd would, and returns the pieces a routing test needs: the
// server (to drain it mid-test), the engine (to read its context-cache
// stats), and the address.
func startBackend(t *testing.T, engOpts []engine.Option, srvOpts []server.Option) (*server.Server, *engine.Engine, string) {
	t.Helper()
	eng, err := engine.New(engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.NewServer(eng, srvOpts...)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // tests that drained already get an error we ignore
		// A test can finish before the Serve goroutine is scheduled at
		// all; Serve then observes the shutdown and returns ErrDraining,
		// which is fine.
		if err := <-serveErr; err != nil && !errors.Is(err, errs.ErrDraining) {
			t.Errorf("Serve: %v", err)
		}
		eng.Close()
	})
	return srv, eng, ln.Addr().String()
}

// testModulus returns a random odd l-bit modulus.
func testModulus(t *testing.T, l int) *big.Int {
	t.Helper()
	n, err := rand.Prime(rand.Reader, l)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func wantModExp(n, base, exp *big.Int) *big.Int {
	return new(big.Int).Exp(base, exp, n)
}

// A two-backend cluster answers single ops and batches correctly.
func TestClusterModExpAndBatch(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(2)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(2)}, nil)
	c, err := New([]string{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n := testModulus(t, 256)
	for i := 0; i < 8; i++ {
		base := big.NewInt(int64(1000 + i))
		exp := big.NewInt(int64(65537 + i))
		got, err := c.ModExp(ctx, n, base, exp)
		if err != nil {
			t.Fatalf("ModExp: %v", err)
		}
		if got.Cmp(wantModExp(n, base, exp)) != 0 {
			t.Fatalf("ModExp wrong result for i=%d", i)
		}
	}

	jobs := make([]engine.ModExpJob, 6)
	for i := range jobs {
		jobs[i] = engine.ModExpJob{N: n, Base: big.NewInt(int64(7 + i)), Exp: big.NewInt(int64(101 + i))}
	}
	res, err := c.ModExpBatch(ctx, jobs)
	if err != nil {
		t.Fatalf("ModExpBatch: %v", err)
	}
	if len(res) != len(jobs) {
		t.Fatalf("batch returned %d results for %d jobs", len(res), len(jobs))
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Value.Cmp(wantModExp(jobs[i].N, jobs[i].Base, jobs[i].Exp)) != 0 {
			t.Fatalf("job %d: wrong value", i)
		}
	}

	if got := len(c.Status()); got != 2 {
		t.Fatalf("Status() has %d backends, want 2", got)
	}
	for _, st := range c.Status() {
		if !st.Up || st.Breaker != "closed" {
			t.Fatalf("healthy backend status %+v", st)
		}
	}
}

// Affinity routing partitions the modulus space: with single-worker
// engines, each distinct modulus precomputes its Montgomery context on
// exactly ONE backend, so the fleet-wide miss count equals the number
// of distinct moduli. (Random or least-inflight routing would
// precompute most moduli on both backends.)
func TestClusterAffinityPartitionsCtxCache(t *testing.T) {
	_, e1, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, e2, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	c, err := New([]string{a1, a2}, WithHedging(false)) // determinism: no hedges to a non-home backend
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const moduli = 12
	ns := make([]*big.Int, moduli)
	for i := range ns {
		ns[i] = testModulus(t, 192)
	}
	// Three passes over the working set, sequentially (in-flight is zero
	// at each pick, so no spills).
	total := 0
	for pass := 0; pass < 3; pass++ {
		for i, n := range ns {
			base, exp := big.NewInt(int64(2+i)), big.NewInt(int64(65537+pass))
			got, err := c.ModExp(ctx, n, base, exp)
			if err != nil {
				t.Fatalf("ModExp: %v", err)
			}
			if got.Cmp(wantModExp(n, base, exp)) != 0 {
				t.Fatal("wrong result")
			}
			total++
		}
	}

	misses := e1.Stats().CtxMisses + e2.Stats().CtxMisses
	if misses != moduli {
		t.Errorf("fleet ctx-cache misses = %d, want exactly %d (one home per modulus)", misses, moduli)
	}
	if hits := c.met.affinityHits.Value(); hits != int64(total) {
		t.Errorf("affinity hits = %d, want %d (every pick should be an affinity hit)", hits, total)
	}
	if e1.Stats().CtxMisses == 0 || e2.Stats().CtxMisses == 0 {
		t.Errorf("moduli did not spread: misses %d / %d", e1.Stats().CtxMisses, e2.Stats().CtxMisses)
	}
}

// The drain-failover acceptance test: one of two backends is drained
// mid-flight (exactly what SIGTERM triggers in montsysd) and every
// request — in-flight, retried, and new — completes with zero
// client-visible errors.
func TestClusterDrainFailoverZeroErrors(t *testing.T) {
	srv1, _, a1 := startBackend(t,
		[]engine.Option{engine.WithWorkers(2)},
		[]server.Option{server.WithMaxInflight(256)})
	_, _, a2 := startBackend(t,
		[]engine.Option{engine.WithWorkers(2)},
		[]server.Option{server.WithMaxInflight(256)})
	c, err := New([]string{a1, a2},
		WithProbeInterval(20*time.Millisecond),
		WithProbeTimeout(time.Second),
		WithRetryBudget(1.0, 64), // generous: the test wants zero errors, not budget pressure
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	n := testModulus(t, 192)

	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				base := big.NewInt(int64(w*1000 + i + 2))
				exp := big.NewInt(int64(65537 + i))
				got, err := c.ModExp(ctx, n, base, exp)
				if err != nil {
					errc <- fmt.Errorf("worker %d req %d: %w", w, i, err)
					return
				}
				if got.Cmp(wantModExp(n, base, exp)) != 0 {
					errc <- fmt.Errorf("worker %d req %d: wrong result", w, i)
					return
				}
			}
		}(w)
	}

	// Pull one backend out from under the load, mid-flight.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		time.Sleep(30 * time.Millisecond)
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := srv1.Shutdown(sctx); err != nil {
			errc <- fmt.Errorf("drain: %w", err)
		}
	}()

	wg.Wait()
	<-drained
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// The probes must have noticed: the drained backend is out of
	// rotation by now (it answered draining or its listener is gone).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := c.Status(); !st[0].Up {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("drained backend still in rotation after 5s of probes")
}

// A cluster whose every backend is unreachable surfaces a typed
// ErrBackendDown.
func TestClusterAllBackendsDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing will ever listen here again (probably)

	c, err := New([]string{addr},
		WithProbeInterval(time.Hour), // no probe interference
		WithClientOptions(server.WithDialTimeout(time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = c.ModExp(ctx, big.NewInt(13), big.NewInt(2), big.NewInt(5))
	if !errors.Is(err, errs.ErrBackendDown) {
		t.Fatalf("error does not wrap ErrBackendDown: %v", err)
	}
}

// Health probes eject a dead backend and reinstate it when it returns
// on the same address.
func TestClusterEjectAndReinstate(t *testing.T) {
	eng1, err := engine.New(engine.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := server.NewServer(eng1)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv1.Serve(ln) }()

	c, err := New([]string{addr},
		WithProbeInterval(10*time.Millisecond),
		WithProbeTimeout(200*time.Millisecond),
		WithFailThreshold(2),
		WithReinstateBackoff(10*time.Millisecond, 50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitUp := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if c.Status()[0].Up == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timeout waiting for %s", what)
	}

	// Kill the backend; probes eject it.
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	srv1.Shutdown(sctx)
	scancel()
	<-serveErr
	eng1.Close()
	waitUp(false, "ejection of a dead backend")

	// Resurrect it on the same address; backed-off probes reinstate it.
	eng2, err := engine.New(engine.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := server.NewServer(eng2)
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err) // port stolen between listens: rare, not our bug
	}
	serveErr2 := make(chan error, 1)
	go func() { serveErr2 <- srv2.Serve(ln2) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
		<-serveErr2
		eng2.Close()
	})
	waitUp(true, "reinstatement of a recovered backend")

	// And it serves again.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	n := testModulus(t, 128)
	got, err := c.ModExp(ctx, n, big.NewInt(3), big.NewInt(19))
	if err != nil {
		t.Fatalf("ModExp after reinstatement: %v", err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(3), big.NewInt(19))) != 0 {
		t.Fatal("wrong result after reinstatement")
	}
}

// A backend that accepts connections but never answers (the worst
// failure mode: no error, just silence) is rescued by the hedge — the
// request races onto the healthy backend and completes.
func TestClusterHedgesPastStuckBackend(t *testing.T) {
	// The stuck "backend": accepts and swallows bytes forever.
	stuck, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stuck.Close() })
	go func() {
		for {
			nc, err := stuck.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) { defer nc.Close(); io.Copy(io.Discard, nc) }(nc)
		}
	}()

	_, _, healthy := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	addrs := []string{stuck.Addr().String(), healthy}

	c, err := New(addrs,
		WithProbeInterval(time.Hour), // probes must not eject the stuck backend mid-test
		WithHedgeDelayBounds(5*time.Millisecond, 20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Craft a modulus whose affinity home is the stuck backend, so the
	// primary pick is guaranteed to hang and only the hedge can win.
	var n *big.Int
	for i := int64(0); ; i++ {
		cand := new(big.Int).Add(big.NewInt(1<<20+2*i), big.NewInt(1)) // odd
		if hrwScore(cand.Bytes(), addrs[0]) > hrwScore(cand.Bytes(), addrs[1]) {
			n = cand
			break
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	got, err := c.ModExp(ctx, n, big.NewInt(2), big.NewInt(10))
	if err != nil {
		t.Fatalf("hedged ModExp: %v", err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(2), big.NewInt(10))) != 0 {
		t.Fatal("wrong result from hedge")
	}
	if c.met.hedges.Value() < 1 {
		t.Error("no hedge launched against a stuck primary")
	}
	if c.met.hedgeWins.Value() < 1 {
		t.Error("hedge launched but did not win against a stuck primary")
	}
}

// Calls after Close fail fast with ErrEngineClosed.
func TestClusterClosed(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	c, err := New([]string{a1})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	c.Close() // idempotent
	_, err = c.ModExp(context.Background(), big.NewInt(13), big.NewInt(2), big.NewInt(5))
	if !errors.Is(err, errs.ErrEngineClosed) {
		t.Fatalf("post-Close error = %v, want ErrEngineClosed", err)
	}
}

// Duplicate and empty addresses are dropped; an empty pool is an error.
func TestClusterNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New(nil) succeeded")
	}
	if _, err := New([]string{"", ""}); err == nil {
		t.Error("New with only empty addresses succeeded")
	}
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	c, err := New([]string{a1, a1, ""})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Addrs(); len(got) != 1 || got[0] != a1 {
		t.Fatalf("Addrs() = %v, want just %s deduped", got, a1)
	}
}
