package cluster

import "hash/fnv"

// hrwScore is the rendezvous (highest-random-weight) score of one
// backend for one affinity key. Every router hashing the same key over
// the same backend set ranks the backends identically, with no shared
// state and no ring to rebalance: the affinity home of a modulus is
// simply the backend maximizing this score. When a backend leaves, only
// the keys it owned move (to their second-ranked choice); every other
// key keeps its home — exactly the property the engine's per-modulus
// context cache wants from a balancer.
//
// FNV-1a is not cryptographic, and does not need to be: the key is a
// public modulus and the score only spreads load. A 0xff separator
// keeps (key, addr) pairs prefix-unambiguous (addresses are ASCII,
// moduli are raw bytes).
func hrwScore(key []byte, addr string) uint64 {
	h := fnv.New64a()
	h.Write(key)
	h.Write([]byte{0xff})
	h.Write([]byte(addr))
	return h.Sum64()
}

// hrwBest returns the backend in cands maximizing hrwScore for key.
// cands must be non-empty.
func hrwBest(key []byte, cands []*backend) *backend {
	best := cands[0]
	bestScore := hrwScore(key, best.addr)
	for _, b := range cands[1:] {
		if s := hrwScore(key, b.addr); s > bestScore {
			best, bestScore = b, s
		}
	}
	return best
}
