package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*breaker, *fakeClock, *[]int) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var states []int
	b := newBreaker(threshold, cooldown, func(s int) { states = append(states, s) })
	b.now = clk.now
	return b, clk, &states
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker open after %d failures (threshold 3)", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker still closed at threshold")
	}
	if b.State() != breakerOpen {
		t.Fatalf("state = %s, want open", breakerStateName(b.State()))
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success() // streak broken
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("non-consecutive failures tripped the breaker")
	}
}

func TestBreakerHalfOpenCycle(t *testing.T) {
	b, clk, _ := newTestBreaker(1, time.Second)
	b.Failure()
	if b.Allow() {
		t.Fatal("open breaker admitted a request before cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but no trial admitted")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state = %s, want half-open", breakerStateName(b.State()))
	}
	// Exactly one trial: a second Allow while half-open is denied.
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second trial")
	}
	// Failed trial reopens immediately for a fresh cooldown.
	b.Failure()
	if b.State() != breakerOpen {
		t.Fatal("failed trial did not reopen the breaker")
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request before the new cooldown")
	}
	// A successful trial closes it.
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("no trial after second cooldown")
	}
	b.Success()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("successful trial did not close the breaker")
	}
}

func TestBreakerResetAndGaugeHook(t *testing.T) {
	b, _, states := newTestBreaker(1, time.Hour)
	b.Failure()
	b.Reset()
	if b.State() != breakerClosed || !b.Allow() {
		t.Fatal("Reset did not close the breaker")
	}
	want := []int{breakerOpen, breakerClosed}
	if len(*states) != len(want) {
		t.Fatalf("state transitions = %v, want %v", *states, want)
	}
	for i, s := range want {
		if (*states)[i] != s {
			t.Fatalf("state transitions = %v, want %v", *states, want)
		}
	}
}
