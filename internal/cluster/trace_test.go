package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"math/big"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/obs"
)

// TestRouteSpansRecorded: a sampled request through the balancer layer
// produces one route-attempt span carrying the chosen backend and pick
// reason, parented on the ambient span, plus the backend call span the
// cluster's own client pool records — all on the request's trace id.
func TestRouteSpansRecorded(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)

	tracer := obs.NewTracer(64)
	var wideBuf bytes.Buffer
	c, err := New([]string{a1, a2},
		WithTracer(tracer),
		WithWideEvents(obs.NewWideWriter(&wideBuf)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	ctx = obs.ContextWithTrace(ctx, tc)

	n := testModulus(t, 128)
	got, err := c.ModExp(ctx, n, big.NewInt(7), big.NewInt(65537))
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(wantModExp(n, big.NewInt(7), big.NewInt(65537))) != 0 {
		t.Fatal("wrong answer")
	}

	var route, call obs.Span
	var haveRoute, haveCall bool
	for _, s := range tracer.Spans() {
		switch {
		case s.Name == "route/modexp":
			route, haveRoute = s, true
		case s.Name == "call/modexp":
			call, haveCall = s, true
		}
	}
	if !haveRoute {
		t.Fatalf("no route span recorded: %+v", tracer.Spans())
	}
	if route.TraceID != tc.TraceID || route.Parent != tc.SpanID {
		t.Fatalf("route span not joined to the ambient trace: %+v", route)
	}
	attrs := map[string]string{}
	for _, a := range route.Attrs {
		attrs[a.Key] = a.Val
	}
	if attrs["backend"] != a1 && attrs["backend"] != a2 {
		t.Errorf("backend attr = %q, want one of the pool", attrs["backend"])
	}
	if attrs["pick"] == "" {
		t.Errorf("route span missing the pick reason: %+v", route.Attrs)
	}
	// The balancer's backend client shares the tracer: its call span
	// nests under the route attempt.
	if !haveCall {
		t.Fatalf("no backend call span recorded: %+v", tracer.Spans())
	}
	if call.TraceID != tc.TraceID || call.Parent != route.SpanID {
		t.Fatalf("call span not nested under the route attempt: %+v", call)
	}

	// And the wide log got a route-layer line for the same trace.
	var sawRouteLine bool
	for _, line := range strings.Split(strings.TrimSpace(wideBuf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("wide line not JSON: %v\n%s", err, line)
		}
		if ev["layer"] == "route" && ev["trace_id"] == tc.TraceID.String() {
			sawRouteLine = true
			if ev["backend"] == "" || ev["outcome"] != "ok" {
				t.Errorf("route wide event payload: %v", ev)
			}
		}
	}
	if !sawRouteLine {
		t.Fatalf("no route wide event:\n%s", wideBuf.String())
	}
}

// TestUnsampledRequestsRecordNoRouteSpans: tracing is head-based — a
// request with no (or an unsampled) trace context must leave the
// tracer untouched on the routing layer.
func TestUnsampledRequestsRecordNoRouteSpans(t *testing.T) {
	_, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)

	tracer := obs.NewTracer(64)
	c, err := New([]string{a1}, WithTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	n := testModulus(t, 128)
	if _, err := c.ModExp(ctx, n, big.NewInt(7), big.NewInt(65537)); err != nil {
		t.Fatal(err)
	}
	// Unsampled ambient context: ids propagate, nothing is recorded.
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), Sampled: false}
	if _, err := c.ModExp(obs.ContextWithTrace(ctx, tc), n, big.NewInt(9), big.NewInt(65537)); err != nil {
		t.Fatal(err)
	}
	for _, s := range tracer.Spans() {
		if strings.HasPrefix(s.Name, "route/") || strings.HasPrefix(s.Name, "call/") {
			t.Fatalf("unsampled request recorded %+v", s)
		}
	}
}

// TestFailoverAttemptsShareTrace: when the first backend fails over,
// every attempt leaves its own route span on the same trace — the
// trace shows the retry story, not just the final success.
func TestFailoverAttemptsShareTrace(t *testing.T) {
	srv1, _, a1 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)
	_, _, a2 := startBackend(t, []engine.Option{engine.WithWorkers(1)}, nil)

	tracer := obs.NewTracer(64)
	c, err := New([]string{a1, a2},
		WithTracer(tracer),
		// Probes would eject the drained backend before any request saw
		// it; an hour-long interval keeps it in rotation so requests
		// homed there actually hit the draining answer and fail over.
		WithProbeInterval(time.Hour),
		WithRetryBudget(1, 16))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Drain backend 1 so requests homed there answer draining and fail
	// over to backend 2.
	dctx, dcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer dcancel()
	if err := srv1.Shutdown(dctx); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Distinct moduli spread the affinity homes across both backends,
	// so some requests are homed on the drained one and must fail over
	// (16 misses in a row has probability 2⁻¹⁶).
	var traced []obs.TraceID
	for i := 0; i < 16; i++ {
		tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
		traced = append(traced, tc.TraceID)
		if _, err := c.ModExp(obs.ContextWithTrace(ctx, tc), testModulus(t, 128),
			big.NewInt(int64(100+i)), big.NewInt(65537)); err != nil {
			t.Fatalf("ModExp %d: %v", i, err)
		}
	}

	perTrace := map[obs.TraceID][]obs.Span{}
	for _, s := range tracer.Spans() {
		if strings.HasPrefix(s.Name, "route/") {
			perTrace[s.TraceID] = append(perTrace[s.TraceID], s)
		}
	}
	for _, id := range traced {
		if len(perTrace[id]) == 0 {
			t.Fatalf("trace %s has no route spans", id)
		}
	}
	var sawFailover bool
	for _, spans := range perTrace {
		if len(spans) < 2 {
			continue
		}
		sawFailover = true
		// The trace must tell the retry story: a failed first attempt
		// (draining or the connection already refused) and a failover
		// attempt that succeeded.
		var failed, failedOver bool
		for _, s := range spans {
			attrs := map[string]string{}
			for _, a := range s.Attrs {
				attrs[a.Key] = a.Val
			}
			if s.Outcome != "ok" {
				failed = true
			}
			if attrs["pick"] == "failover" && s.Outcome == "ok" {
				failedOver = true
			}
		}
		if !failed || !failedOver {
			t.Errorf("multi-attempt trace missing the retry story: %+v", spans)
		}
	}
	if !sawFailover {
		t.Fatal("no request failed over: every trace has a single route span")
	}
}
