package cluster

import (
	"context"
	"math/big"
	"testing"

	"repro/internal/cryptosvc"
	"repro/internal/engine"
	"repro/internal/kits"
)

func signingBackendOpts() []engine.Option {
	return []engine.Option{engine.WithWorkers(2), engine.WithKit(kits.CIOS)}
}

// A two-backend cluster serves the full signing surface: keygen over
// the wire, RSA sign/verify, ECDSA sign and batch verify — all with the
// cluster acting as the SignHandler a montsyslb would front with.
func TestClusterSigningRoundTrip(t *testing.T) {
	_, _, a1 := startBackend(t, signingBackendOpts(), nil)
	_, _, a2 := startBackend(t, signingBackendOpts(), nil)
	c, err := New([]string{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	key, err := c.KeygenRSA(ctx, 256, 42)
	if err != nil {
		t.Fatalf("KeygenRSA: %v", err)
	}
	if err := key.Validate(); err != nil {
		t.Fatalf("generated key invalid: %v", err)
	}

	digest := big.NewInt(0xCAFEBABE)
	sig, err := c.SignRSA(ctx, key, digest)
	if err != nil {
		t.Fatalf("SignRSA: %v", err)
	}
	if got := new(big.Int).Exp(sig, key.E, key.N); got.Cmp(digest) != 0 {
		t.Fatalf("signature does not verify: sig^e = %v, want %v", got, digest)
	}
	ok, err := c.VerifyRSA(ctx, key.N, key.E, digest, sig)
	if err != nil || !ok {
		t.Fatalf("VerifyRSA = %v, %v; want true, nil", ok, err)
	}

	cv, err := cryptosvc.CurveByID(cryptosvc.CurveP256)
	if err != nil {
		t.Fatal(err)
	}
	d := big.NewInt(0x1337)
	pt, err := cv.ScalarBaseMult(d)
	if err != nil {
		t.Fatal(err)
	}
	qx, qy, ok := cv.Affine(pt)
	if !ok {
		t.Fatal("public point at infinity")
	}
	r, s, err := c.SignECDSA(ctx, cryptosvc.CurveP256, d, digest, 7)
	if err != nil {
		t.Fatalf("SignECDSA: %v", err)
	}
	res, err := c.VerifyECDSABatch(ctx, cryptosvc.CurveP256, []cryptosvc.ECDSAVerifyItem{
		{Qx: qx, Qy: qy, R: r, S: s, Digest: digest},
		{Qx: qx, Qy: qy, R: r, S: s, Digest: big.NewInt(999)}, // wrong digest
	})
	if err != nil {
		t.Fatalf("VerifyECDSABatch: %v", err)
	}
	if !res[0].OK || res[0].Err != nil {
		t.Errorf("item 0 = %+v, want OK", res[0])
	}
	if res[1].OK || res[1].Err != nil {
		t.Errorf("item 1 = %+v, want clean false", res[1])
	}

	if got := c.met.keyhandleReqs.Value(); got < 4 {
		t.Errorf("keyhandle_requests_total = %d, want >= 4 (sign, verify, ecdsa sign, batch)", got)
	}
}

// Repeated signs under one key ride the affinity plane: every request
// carries the same key handle, so (with both backends healthy) they all
// land on the key's HRW home.
func TestClusterSignKeyHandleAffinity(t *testing.T) {
	_, e1, a1 := startBackend(t, signingBackendOpts(), nil)
	_, e2, a2 := startBackend(t, signingBackendOpts(), nil)
	c, err := New([]string{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	key, err := c.KeygenRSA(ctx, 256, 99)
	if err != nil {
		t.Fatal(err)
	}
	before := c.met.affinityHits.Value()
	const signs = 6
	for i := 0; i < signs; i++ {
		if _, err := c.SignRSA(ctx, key, big.NewInt(int64(1000+i))); err != nil {
			t.Fatalf("sign %d: %v", i, err)
		}
	}
	if got := c.met.affinityHits.Value() - before; got < signs {
		t.Errorf("affinity hits during signing = %d, want >= %d", got, signs)
	}
	// All the CRT exponentiations for this key warmed exactly one
	// backend's engine (the other may have served only the keygen).
	s1, s2 := e1.Stats(), e2.Stats()
	if s1.Completed > 0 && s2.Completed > 0 {
		t.Logf("note: both engines saw jobs (%d/%d) — keygen and signs split", s1.Completed, s2.Completed)
	}
	if s1.Completed == 0 && s2.Completed == 0 {
		t.Error("neither engine saw any jobs")
	}
}

// Signing fails over: with one backend drained mid-run, signs keep
// answering from the survivor and every signature stays valid.
func TestClusterSignFailover(t *testing.T) {
	srv1, _, a1 := startBackend(t, signingBackendOpts(), nil)
	_, _, a2 := startBackend(t, signingBackendOpts(), nil)
	c, err := New([]string{a1, a2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	key, err := c.KeygenRSA(ctx, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(ctx)
	cancel() // immediate: Shutdown begins draining and returns
	srv1.Shutdown(sctx)

	for i := 0; i < 8; i++ {
		digest := big.NewInt(int64(0xD000 + i))
		sig, err := c.SignRSA(ctx, key, digest)
		if err != nil {
			t.Fatalf("sign %d after drain: %v", i, err)
		}
		if got := new(big.Int).Exp(sig, key.E, key.N); got.Cmp(digest) != 0 {
			t.Fatalf("sign %d after drain: invalid signature", i)
		}
	}
}
