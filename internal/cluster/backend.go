package cluster

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/server"
)

// backend is one montsysd instance as the cluster sees it: the wire
// client, the cluster-side in-flight count (the load signal for
// least-inflight and spill decisions), the health flag the probe loop
// owns, and the request-driven circuit breaker.
type backend struct {
	addr string
	zone string
	cl   *server.Client

	// gone is closed when the backend is retired from the pool (a
	// settled departure or cluster Close), stopping its probe loop.
	gone chan struct{}

	inflight atomic.Int64
	upFlag   atomic.Bool

	// integrityStreak counts consecutive ErrIntegrity answers from
	// live traffic; any success resets it, and reaching the configured
	// threshold ejects the backend (see Cluster.observe).
	integrityStreak atomic.Int64

	br  *breaker
	met *backendMetrics
}

func (b *backend) up() bool { return b.upFlag.Load() }

func (b *backend) setUp(v bool) {
	b.upFlag.Store(v)
	if v {
		b.met.up.Set(1)
	} else {
		b.met.up.Set(0)
	}
}

func (b *backend) acquire() {
	b.inflight.Add(1)
	b.met.inflight.Add(1)
}

func (b *backend) release() {
	b.inflight.Add(-1)
	b.met.inflight.Add(-1)
}

// probeLoop health-checks one backend until the cluster closes or the
// backend is retired from the pool. While the backend is up, probes run
// every probeInterval; failThreshold consecutive failures (or a single
// draining answer — the backend itself said it is going away) eject it.
// While down, probes back off exponentially up to reinstateMax, and the
// first success reinstates the backend and resets its breaker. Every
// wait is jittered to 50–150% so a fleet of balancers neither probes
// nor reinstates in lockstep. initial delays the first probe: seeds
// stagger across a jittered probe interval, while a runtime Join probes
// immediately so the new member enters rotation after one RTT.
func (c *Cluster) probeLoop(b *backend, initial time.Duration) {
	defer c.wg.Done()
	fails := 0
	backoff := c.cfg.reinstateBase
	timer := time.NewTimer(initial)
	defer timer.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-b.gone:
			return
		case <-timer.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.probeTimeout)
		_, err := b.cl.Ping(ctx)
		cancel()

		next := c.cfg.probeInterval
		if err == nil {
			fails = 0
			backoff = c.cfg.reinstateBase
			if !b.up() {
				b.br.Reset()
				b.integrityStreak.Store(0)
				b.setUp(true)
				b.met.reinstatements.Inc()
			}
		} else {
			fails++
			b.met.probeFailures.Inc()
			if b.up() && (fails >= c.cfg.failThreshold || errors.Is(err, errs.ErrDraining)) {
				b.setUp(false)
				b.met.ejections.Inc()
			}
			if !b.up() {
				next = backoff
				backoff *= 2
				if backoff > c.cfg.reinstateMax {
					backoff = c.cfg.reinstateMax
				}
			}
		}
		timer.Reset(jitter(next))
	}
}

// jitter spreads d to 50–150% of its nominal value.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
