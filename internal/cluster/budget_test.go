package cluster

import (
	"sync"
	"testing"
)

// The budget starts full so cold-start failovers are never starved.
func TestBudgetStartsFull(t *testing.T) {
	rb := newRetryBudget(0.1, 4)
	for i := 0; i < 4; i++ {
		if !rb.spend() {
			t.Fatalf("spend %d refused on a full budget of 4", i+1)
		}
	}
	if rb.spend() {
		t.Fatal("spend succeeded past the burst cap")
	}
}

// Fractional ratios accumulate exactly: at ratio 0.1 every 10 primary
// requests mint one retry token.
func TestBudgetFractionalAccrual(t *testing.T) {
	rb := newRetryBudget(0.1, 4)
	for i := 0; i < 4; i++ {
		rb.spend()
	}
	for i := 0; i < 9; i++ {
		rb.credit()
	}
	if rb.spend() {
		t.Fatal("9 credits at ratio 0.1 minted a full token")
	}
	rb.credit() // the 10th
	if !rb.spend() {
		t.Fatal("10 credits at ratio 0.1 did not mint a token")
	}
}

// Credits cap at the burst; a long quiet period cannot bank an
// unbounded retry storm.
func TestBudgetCapped(t *testing.T) {
	rb := newRetryBudget(1.0, 2)
	for i := 0; i < 100; i++ {
		rb.credit()
	}
	spent := 0
	for rb.spend() {
		spent++
	}
	if spent != 2 {
		t.Fatalf("spent %d tokens, want burst cap 2", spent)
	}
}

// Concurrent credit/spend never over-issues: total successful spends
// cannot exceed initial burst + credits minted.
func TestBudgetConcurrent(t *testing.T) {
	rb := newRetryBudget(1.0, 8)
	const workers, iters = 8, 1000
	var spent int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			for i := 0; i < iters; i++ {
				rb.credit()
				if rb.spend() {
					local++
				}
			}
			mu.Lock()
			spent += local
			mu.Unlock()
		}()
	}
	wg.Wait()
	max := int64(8 + workers*iters) // initial burst + every credit
	if spent > max {
		t.Fatalf("spent %d > max possible %d", spent, max)
	}
}
