package cluster

import (
	"crypto/rand"
	"fmt"
	"testing"
)

func mkBackends(addrs ...string) []*backend {
	out := make([]*backend, len(addrs))
	for i, a := range addrs {
		out[i] = &backend{addr: a}
	}
	return out
}

// The same key always ranks the same home, regardless of candidate
// order — determinism is the whole point of rendezvous hashing.
func TestHRWDeterministic(t *testing.T) {
	a := mkBackends("h1:7077", "h2:7077", "h3:7077")
	b := mkBackends("h3:7077", "h1:7077", "h2:7077")
	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("modulus-%d", i))
		if hrwBest(key, a).addr != hrwBest(key, b).addr {
			t.Fatalf("key %q: home depends on candidate order", key)
		}
	}
}

// Keys spread across the pool instead of piling onto one backend.
func TestHRWBalance(t *testing.T) {
	bs := mkBackends("h1:7077", "h2:7077", "h3:7077", "h4:7077")
	counts := map[string]int{}
	const keys = 4096
	for i := 0; i < keys; i++ {
		key := make([]byte, 64)
		rand.Read(key)
		counts[hrwBest(key, bs).addr]++
	}
	want := keys / len(bs)
	for addr, n := range counts {
		if n < want/2 || n > want*2 {
			t.Errorf("%s got %d of %d keys (expected near %d)", addr, n, keys, want)
		}
	}
}

// Removing one backend moves only the keys it owned; every other key
// keeps its home. This is what keeps backend context caches warm
// across pool changes.
func TestHRWMinimalDisruption(t *testing.T) {
	full := mkBackends("h1:7077", "h2:7077", "h3:7077", "h4:7077")
	smaller := full[:3] // h4 leaves
	moved, owned := 0, 0
	for i := 0; i < 2048; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		before := hrwBest(key, full).addr
		after := hrwBest(key, smaller).addr
		if before == "h4:7077" {
			owned++
			continue // these must move; anywhere is fine
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the departed backend moved homes", moved)
	}
	if owned == 0 {
		t.Error("departed backend owned no keys; balance test should have caught this")
	}
}

// Prefix ambiguity between key and address must not collide scores:
// (key="ab", addr="c") vs (key="a", addr="bc").
func TestHRWSeparator(t *testing.T) {
	if hrwScore([]byte("ab"), "c") == hrwScore([]byte("a"), "bc") {
		t.Error("prefix-ambiguous (key, addr) pairs collide")
	}
}
