package cluster

import (
	"sync"
	"time"
)

// Breaker states, exported on the montsys_cluster_breaker_state gauge.
const (
	breakerClosed   = 0 // healthy: requests flow
	breakerHalfOpen = 1 // probing: exactly one trial request allowed
	breakerOpen     = 2 // tripped: requests rejected until the cooldown
)

func breakerStateName(s int) string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker is a per-backend circuit breaker over transport failures.
// threshold consecutive failures open it; after cooldown one trial
// request is let through (half-open) — success closes the breaker,
// failure reopens it for another cooldown. Application-level errors
// (even modulus, overload fast-fails) never trip it: those prove the
// transport works.
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // swap in tests
	onState   func(int)        // gauge hook, called with mu held (atomic set)

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration, onState func(int)) *breaker {
	if onState == nil {
		onState = func(int) {}
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now, onState: onState}
}

// Allow reports whether a request may be sent. In the open state it
// transitions to half-open once the cooldown elapses, admitting exactly
// one trial; callers that are denied must pick another backend.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.setState(breakerHalfOpen)
			return true // the trial request
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// Success records a working round trip and closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	if b.state != breakerClosed {
		b.setState(breakerClosed)
	}
}

// Failure records a transport failure: threshold consecutive ones trip
// the breaker, and a failed half-open trial reopens it immediately.
func (b *breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.threshold) {
		b.openedAt = b.now()
		b.setState(breakerOpen)
	}
}

// Reset force-closes the breaker (a health probe just succeeded, so the
// transport demonstrably works again).
func (b *breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails = 0
	b.setState(breakerClosed)
}

// State returns the current state for status snapshots.
func (b *breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

func (b *breaker) setState(s int) {
	if b.state != s {
		b.state = s
		b.onState(s)
	}
}
