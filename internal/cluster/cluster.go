// Package cluster is the routing tier over a fleet of montsysd
// backends: one Cluster fans requests out to N servers speaking the
// montsys wire protocol and makes them behave like a single, larger,
// more reliable engine — the same move the paper makes inside one
// exponentiator when it replicates and pipelines MMM arrays (§5,
// Fig. 5), lifted one level up.
//
// The router is built from four cooperating mechanisms:
//
//   - A health-checked backend pool. Every backend is probed with the
//     wire protocol's Ping op; consecutive failures (or a draining
//     answer) eject it, and probes with jittered exponential backoff
//     reinstate it when it recovers. A per-backend circuit breaker
//     catches what probes miss between rounds: transport failures on
//     live traffic trip it, a cooldown later one trial request may
//     close it again.
//
//   - Modulus-affinity routing. The engine behind each backend keeps a
//     per-modulus Montgomery context LRU; a request for modulus N is
//     an order of magnitude cheaper where N's context is already warm.
//     Rendezvous (HRW) hashing on the modulus gives every N a stable
//     "home" backend with no shared state and minimal movement when
//     the pool changes; repeat-modulus traffic therefore lands on warm
//     caches. A home that is overloaded (relative to the least-loaded
//     backend) is spilled away from; requests with no affinity key use
//     least-inflight selection.
//
//   - Tail-latency hedging. After a delay derived from the cluster's
//     own p99 latency, a slow request is raced against a second
//     backend and the first answer wins (the loser is cancelled).
//     Hedges spend from a global retry budget so they can never
//     amplify an outage.
//
//   - Failover. ErrDraining / ErrBackendDown / ErrEngineClosed /
//     ErrIntegrity answers move the request to the next backend for
//     free (the first backend is doing no work for us — and an
//     integrity answer means its result must never be trusted anyway);
//     ErrOverloaded failovers spend from the retry budget (both
//     backends did admission work, and the fleet is evidently
//     stressed). Application errors — even modulus, operand range —
//     fail immediately: they are deterministic.
//
//   - Integrity ejection. A backend answering ErrIntegrity is
//     corrupting compute, not failing transport, so the breaker and
//     the health probe both consider it fine. Consecutive integrity
//     answers (WithIntegrityEjectThreshold) therefore eject it
//     directly, the same lever the probe loop uses; the next clean
//     health probe reinstates it, so a persistently corrupting
//     backend duty-cycles mostly-out-of-rotation instead of serving
//     poison at full rate.
//
// All of it is observable: montsys_cluster_* metrics register into the
// same obs.Registry as everything else, so one /metrics page spans
// client → balancer → backend → engine → systolic core.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/errs"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/server"
)

// Option configures New.
type Option func(*config)

type config struct {
	registry *obs.Registry

	probeInterval time.Duration
	probeTimeout  time.Duration
	failThreshold int
	reinstateBase time.Duration
	reinstateMax  time.Duration

	breakerThreshold int
	breakerCooldown  time.Duration

	affinity   bool
	spillSlack int64

	hedge    bool
	hedgeMin time.Duration
	hedgeMax time.Duration

	budgetRatio float64
	budgetBurst int

	integrityEject int

	zone            string
	handoverWindow  time.Duration
	handoverMaxWarm int
	maxMembers      int
	clock           func() time.Time

	tracer *obs.Tracer
	wide   *obs.WideWriter

	tenants []string

	clientOpts []server.ClientOption
}

// WithRegistry collects the cluster's metrics into an existing registry
// (default: a fresh one), so the balancer's /metrics page carries the
// router and its wire server together.
func WithRegistry(r *obs.Registry) Option { return func(c *config) { c.registry = r } }

// WithProbeInterval sets the health-probe cadence for in-rotation
// backends (default 1s).
func WithProbeInterval(d time.Duration) Option { return func(c *config) { c.probeInterval = d } }

// WithProbeTimeout bounds each Ping probe (default 1s).
func WithProbeTimeout(d time.Duration) Option { return func(c *config) { c.probeTimeout = d } }

// WithFailThreshold sets how many consecutive probe failures eject a
// backend (default 3). A draining answer ejects immediately regardless.
func WithFailThreshold(n int) Option { return func(c *config) { c.failThreshold = n } }

// WithReinstateBackoff sets the probe backoff envelope for ejected
// backends: base doubles per failed probe up to max, jittered 50–150%
// (defaults 500ms, 30s).
func WithReinstateBackoff(base, max time.Duration) Option {
	return func(c *config) { c.reinstateBase, c.reinstateMax = base, max }
}

// WithBreaker tunes the per-backend circuit breaker: threshold
// consecutive transport failures open it, and after cooldown one trial
// request may close it (defaults 5, 2s).
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *config) { c.breakerThreshold, c.breakerCooldown = threshold, cooldown }
}

// WithAffinity toggles modulus-affinity (HRW) routing (default on).
// Off, every request uses least-inflight selection.
func WithAffinity(on bool) Option { return func(c *config) { c.affinity = on } }

// WithSpillSlack sets the load headroom an affinity home is allowed
// over the least-loaded backend before requests spill away from it: the
// home is used while its in-flight count ≤ 2×(least in-flight)+slack
// (default 8).
func WithSpillSlack(n int) Option { return func(c *config) { c.spillSlack = int64(n) } }

// WithHedging toggles tail-latency hedging (default on). Hedges spend
// from the retry budget.
func WithHedging(on bool) Option { return func(c *config) { c.hedge = on } }

// WithHedgeDelayBounds clamps the p99-derived hedge delay (defaults
// 1ms, 250ms). Until enough latency samples exist, max is used.
func WithHedgeDelayBounds(min, max time.Duration) Option {
	return func(c *config) { c.hedgeMin, c.hedgeMax = min, max }
}

// WithRetryBudget sets the global retry budget: hedges and overload
// retries spend one token each, and tokens accrue at ratio per primary
// request up to burst (defaults 0.1, 16). A zero ratio with a small
// burst effectively disables load-adding retries after the burst.
func WithRetryBudget(ratio float64, burst int) Option {
	return func(c *config) { c.budgetRatio, c.budgetBurst = ratio, burst }
}

// WithIntegrityEjectThreshold sets how many consecutive ErrIntegrity
// answers from one backend eject it from rotation (default 3; 0
// disables integrity ejection). Any successful answer resets the
// streak. Unlike probe ejection this fires from live traffic — a
// corrupting backend passes every transport-level health check.
func WithIntegrityEjectThreshold(n int) Option {
	return func(c *config) { c.integrityEject = n }
}

// WithTracer records a route-attempt span for every backend call made
// on behalf of a sampled request: one span per attempt (primary,
// hedge, failover), tagged with the backend, the pick reason, whether
// the attempt was the winning copy, and whether it spent retry budget.
// The same tracer is handed to every backend client so its call spans
// nest under the route spans, and the trace context is forwarded on
// the wire so the backend's own spans join the same tree.
func WithTracer(t *obs.Tracer) Option { return func(c *config) { c.tracer = t } }

// WithWideEvents emits one structured "route" event per backend
// attempt of a sampled request — the balancer's line in the per-request
// wide-event log.
func WithWideEvents(w *obs.WideWriter) Option { return func(c *config) { c.wide = w } }

// WithTenants names the tenants the cluster keeps per-tenant pick and
// shed counters for. Requests from any other tenant (or untagged ones)
// fold into the qos.OtherTenant series, so metric cardinality stays
// bounded by configuration — the same containment rule the QoS plane
// applies to quotas.
func WithTenants(names []string) Option {
	return func(c *config) { c.tenants = append(c.tenants, names...) }
}

// WithClientOptions passes extra options to every backend's wire
// client. The cluster defaults each client to zero internal retries —
// the router owns retry policy, and a client silently retrying against
// the same backend would blur failover — but an explicit
// WithMaxRetries here overrides that.
func WithClientOptions(opts ...server.ClientOption) Option {
	return func(c *config) { c.clientOpts = append(c.clientOpts, opts...) }
}

// WithZone names the failure domain this balancer runs in. Zone-aware
// routing then prefers a local backend for least-inflight picks when
// one is no more loaded than the global least — cross-zone hops cost
// real latency, so ties and better go local — and hedges never launch
// into a zone that is visibly failing (see zoneBad). An empty zone (the
// default) disables both preferences.
func WithZone(zone string) Option { return func(c *config) { c.zone = zone } }

// WithHandover tunes gradual membership handover: window is how long
// moved moduli stay dual-routed after a join/leave (default 30s; 0
// makes membership changes instantaneous), and maxWarm caps the
// background warm-up calls — equivalently the mont.Ctx entries built at
// new homes — per membership change (default 256; suppressed warm-ups
// past the cap are counted, not silently dropped).
func WithHandover(window time.Duration, maxWarm int) Option {
	return func(c *config) { c.handoverWindow, c.handoverMaxWarm = window, maxWarm }
}

// WithMaxMembers bounds the member table (default 64). Runtime Joins
// beyond the bound answer ErrOverloaded — the lever that keeps a
// hostile registration loop from growing the table without limit.
func WithMaxMembers(n int) Option { return func(c *config) { c.maxMembers = n } }

// withClock substitutes the cluster's time source — virtual-clock
// membership tests only.
func withClock(now func() time.Time) Option { return func(c *config) { c.clock = now } }

// Cluster routes montsys requests over a pool of montsysd backends.
// It implements the same call surface as server.Client (ModExp, Mont,
// ModExpBatch) and satisfies server.Handler, so it can sit behind a
// wire server of its own — that composition is the montsyslb proxy —
// and server.MembershipHandler, so that wire server accepts runtime
// join/goodbye (see membership.go). A Cluster is safe for concurrent
// use by multiple goroutines.
type Cluster struct {
	cfg    config
	met    *metrics
	budget *retryBudget

	// pool is the membership snapshot; readers load it lock-free,
	// changes serialize on memMu (see membership.go).
	pool  atomic.Pointer[membership]
	memMu sync.Mutex

	now  func() time.Time
	warm warmState

	// baseCtx parents handover warm-up calls, so Close cancels them.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	clOpts []server.ClientOption // resolved backend-client options

	rr     atomic.Uint64 // least-inflight tie-break rotation
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
}

// Cluster is the balancer's membership surface behind OpJoin/OpGoodbye.
var _ server.MembershipHandler = (*Cluster)(nil)

// New builds a cluster over the seed members and starts their health
// probes. Each entry is "host:port" or "host:port=zone". Seed members
// begin in rotation (optimistically up — they came from configuration,
// not from an unauthenticated frame); connections are dialed lazily by
// the underlying clients. The pool can change at runtime afterwards
// via Join/Goodbye.
func New(addrs []string, opts ...Option) (*Cluster, error) {
	seeds := make([]Member, 0, len(addrs))
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if a == "" || seen[a] {
			continue
		}
		m, err := parseMember(a)
		if err != nil {
			return nil, err
		}
		if seen[m.Addr] {
			continue
		}
		seen[a], seen[m.Addr] = true, true
		seeds = append(seeds, m)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("cluster: no backend addresses")
	}
	cfg := config{
		probeInterval:    time.Second,
		probeTimeout:     time.Second,
		failThreshold:    3,
		reinstateBase:    500 * time.Millisecond,
		reinstateMax:     30 * time.Second,
		breakerThreshold: 5,
		breakerCooldown:  2 * time.Second,
		affinity:         true,
		spillSlack:       8,
		hedge:            true,
		hedgeMin:         time.Millisecond,
		hedgeMax:         250 * time.Millisecond,
		budgetRatio:      0.1,
		budgetBurst:      16,
		integrityEject:   3,
		handoverWindow:   30 * time.Second,
		handoverMaxWarm:  256,
		maxMembers:       64,
		clock:            time.Now,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.registry == nil {
		cfg.registry = obs.NewRegistry()
	}
	if cfg.failThreshold < 1 {
		cfg.failThreshold = 1
	}
	if cfg.hedgeMax < cfg.hedgeMin {
		cfg.hedgeMax = cfg.hedgeMin
	}
	if cfg.handoverMaxWarm < 0 {
		cfg.handoverMaxWarm = 0
	}
	if cfg.maxMembers < len(seeds) {
		cfg.maxMembers = len(seeds)
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{
		cfg:        cfg,
		met:        newMetrics(cfg.registry, seeds, cfg.tenants),
		budget:     newRetryBudget(cfg.budgetRatio, cfg.budgetBurst),
		now:        cfg.clock,
		baseCtx:    ctx,
		baseCancel: cancel,
		stop:       make(chan struct{}),
	}
	clOpts := []server.ClientOption{server.WithMaxRetries(0)}
	if cfg.tracer != nil {
		// Backend call spans record into the balancer's own tracer and
		// nest under the route-attempt spans (rate 0: the balancer
		// propagates sampled contexts, it never mints roots).
		clOpts = append(clOpts, server.WithClientTracing(cfg.tracer, 0))
	}
	c.clOpts = append(clOpts, cfg.clientOpts...)

	backends := make([]*backend, 0, len(seeds))
	for _, m := range seeds {
		backends = append(backends, c.newBackend(m.Addr, m.Zone, true))
	}
	c.pool.Store(&membership{backends: backends})
	c.met.members.Set(int64(len(backends)))
	for _, b := range backends {
		c.wg.Add(1)
		go c.probeLoop(b, jitter(c.cfg.probeInterval))
	}
	return c, nil
}

// newBackend builds one pool entry with its client, breaker and metric
// block. Dynamically joined backends start down (up=false) until their
// first probe succeeds; seeds start up.
func (c *Cluster) newBackend(addr, zone string, up bool) *backend {
	bm := c.met.backend(addr)
	b := &backend{
		addr: addr,
		zone: zone,
		cl:   server.Dial(addr, c.clOpts...),
		met:  bm,
		gone: make(chan struct{}),
	}
	b.br = newBreaker(c.cfg.breakerThreshold, c.cfg.breakerCooldown,
		func(s int) { bm.breakerState.Set(int64(s)) })
	b.setUp(up)
	return b
}

// Close stops the health probes, cancels in-flight warm-ups, and
// closes every backend client. In-flight calls fail; further calls
// return ErrEngineClosed-wrapped errors.
func (c *Cluster) Close() error {
	c.memMu.Lock()
	already := c.closed.Swap(true)
	c.memMu.Unlock()
	if already {
		return nil
	}
	// Barrier: any maybeWarm holding warm.mu before this either sees
	// closed or has already registered in wg; none can start after.
	c.warm.mu.Lock()
	c.warm.mu.Unlock() //nolint:staticcheck // empty critical section is the point
	c.baseCancel()
	close(c.stop)
	c.wg.Wait()
	p := c.pool.Load()
	for _, b := range p.backends {
		b.cl.Close()
	}
	for _, b := range p.departed {
		b.cl.Close()
	}
	return nil
}

// Registry returns the registry the cluster's metrics live in.
func (c *Cluster) Registry() *obs.Registry { return c.cfg.registry }

// Addrs lists the routable backend addresses in pool order.
func (c *Cluster) Addrs() []string {
	p := c.snapshot()
	out := make([]string, len(p.backends))
	for i, b := range p.backends {
		out[i] = b.addr
	}
	return out
}

// BackendStatus is one backend's routing state at a point in time.
type BackendStatus struct {
	Addr     string
	Zone     string // failure-domain label ("" when unlabeled)
	Up       bool   // in rotation (health probes)
	Inflight int64  // cluster-side requests currently on it
	Breaker  string // "closed" | "half-open" | "open"
}

// Status snapshots every routable backend, in pool order.
func (c *Cluster) Status() []BackendStatus {
	p := c.snapshot()
	out := make([]BackendStatus, len(p.backends))
	for i, b := range p.backends {
		out[i] = BackendStatus{
			Addr:     b.addr,
			Zone:     b.zone,
			Up:       b.up(),
			Inflight: b.inflight.Load(),
			Breaker:  breakerStateName(b.br.State()),
		}
	}
	return out
}

// ModExp computes Base^Exp mod N on the cluster, routing by N's
// affinity home and hedging the tail.
func (c *Cluster) ModExp(ctx context.Context, n, base, exp *big.Int) (*big.Int, error) {
	return doCall(c, ctx, "modexp", affinityKey(n), true,
		func(ctx context.Context, b *backend) (*big.Int, error) {
			return b.cl.ModExp(ctx, n, base, exp)
		})
}

// Mont computes the raw Montgomery product X·Y·R⁻¹ mod 2N on the
// cluster.
func (c *Cluster) Mont(ctx context.Context, n, x, y *big.Int) (*big.Int, error) {
	return doCall(c, ctx, "mont", affinityKey(n), true,
		func(ctx context.Context, b *backend) (*big.Int, error) {
			return b.cl.Mont(ctx, n, x, y)
		})
}

// ModExpBatch runs an order-preserving batch on one backend, routed by
// the first job's modulus (batches overwhelmingly share one). Batches
// fail over as a unit but are not hedged — racing a large batch doubles
// real work, not just tail risk.
func (c *Cluster) ModExpBatch(ctx context.Context, jobs []engine.ModExpJob) ([]engine.ModExpResult, error) {
	var key []byte
	if len(jobs) > 0 {
		key = affinityKey(jobs[0].N)
	}
	return doCall(c, ctx, "batch_modexp", key, false,
		func(ctx context.Context, b *backend) ([]engine.ModExpResult, error) {
			return b.cl.ModExpBatch(ctx, jobs)
		})
}

// affinityKey is the HRW key of a modulus (nil for a nil modulus — the
// request then routes by least-inflight and the backend rejects it).
func affinityKey(n *big.Int) []byte {
	if n == nil {
		return nil
	}
	return n.Bytes()
}

// failoverable reports whether an error from one backend justifies
// trying another: instance-local conditions yes, deterministic
// application errors no.
func failoverable(err error) bool {
	return errors.Is(err, errs.ErrOverloaded) ||
		errors.Is(err, errs.ErrDraining) ||
		errors.Is(err, errs.ErrBackendDown) ||
		errors.Is(err, errs.ErrEngineClosed) ||
		errors.Is(err, errs.ErrIntegrity)
}

// doCall is the routing loop shared by every cluster operation: pick a
// backend, attempt (with hedging when hedgeable), and on a failoverable
// error move to the next backend — draining/down moves are free,
// overload moves spend retry budget. Generic because ModExpBatch
// returns a slice while the single ops return a value.
//
// The membership snapshot is taken once per call: a concurrent
// join/leave never changes routing mid-request. During a handover
// window the first pick may dual-route — serve from the modulus's old
// (warm) home while maybeWarm duplicates the call onto the new home in
// the background.
func doCall[T any](c *Cluster, ctx context.Context, op string, key []byte, hedgeable bool,
	call func(context.Context, *backend) (T, error)) (T, error) {
	var zero T
	if c.closed.Load() {
		return zero, fmt.Errorf("cluster: closed: %w", errs.ErrEngineClosed)
	}
	c.budget.credit()
	p := c.snapshot()
	tried := make(map[*backend]bool, len(p.backends)+1)
	var lastErr error
	budgeted := false // did retry budget fund the upcoming attempt?
	// One extra iteration: a handover primary can live outside
	// p.backends (a departed-but-warm old home).
	for i := 0; i <= len(p.backends); i++ {
		b, reason, warmTarget := c.pick(p, key, tried, false)
		if b == nil {
			break
		}
		if i > 0 {
			reason, warmTarget = "failover", nil
		}
		tried[b] = true
		if reason == "handover" {
			c.met.handoverDualRouted.Inc()
		}
		if warmTarget != nil {
			maybeWarm(c, p, warmTarget, key, call)
		}
		v, err := attempt(c, ctx, op, p, b, key, tried, reason, budgeted, hedgeable, call)
		if err == nil {
			return v, nil
		}
		lastErr = err
		if ctx.Err() != nil || !failoverable(err) {
			return zero, err
		}
		budgeted = errors.Is(err, errs.ErrOverloaded)
		if budgeted && !c.budget.spend() {
			c.met.budgetDenied.Inc()
			return zero, err
		}
		c.met.failovers.Inc()
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no backend in rotation: %w", errs.ErrBackendDown)
	}
	return zero, lastErr
}

// attempt runs one routed request on primary, hedging onto a second
// backend if the p99-derived delay expires first. The first success
// wins and cancels the other; hedge launches spend retry budget.
//
// For sampled requests every launch — primary and hedge — gets its own
// child span: the backend client inherits the launch's trace context,
// so its call span (and the remote server's spans) nest under the
// route attempt that carried them. A lock-free won marker decides
// which copy of a hedged race answered first; the loser's span says so.
func attempt[T any](c *Cluster, ctx context.Context, op string, p *membership,
	primary *backend, key []byte,
	tried map[*backend]bool, reason string, budgeted, hedgeable bool,
	call func(context.Context, *backend) (T, error)) (T, error) {
	var zero T
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	tc, _ := obs.TraceFromContext(ctx)
	tenant := qos.FromContext(ctx).Tenant
	var won atomic.Bool // first successful copy takes it; losers record hedge_lost

	type result struct {
		v      T
		err    error
		hedged bool
	}
	ch := make(chan result, 2) // both goroutines can always deliver and exit
	launch := func(b *backend, reason string, hedged, spent bool) {
		b.acquire()
		go func() {
			actx := cctx
			var span obs.SpanID
			if tc.Sampled {
				span = obs.NewSpanID()
				actx = obs.ContextWithTrace(actx, tc.Child(span))
			}
			t0 := time.Now()
			v, err := call(actx, b)
			b.release()
			elapsed := time.Since(t0)
			c.observe(b, err, elapsed)
			if errors.Is(err, errs.ErrRateLimited) || errors.Is(err, errs.ErrOverloaded) {
				c.met.tenantShed(tenant)
			}
			first := err == nil && won.CompareAndSwap(false, true)
			c.recordAttempt(tc, span, op, b, reason, t0, elapsed, err, hedged, spent, first)
			ch <- result{v, err, hedged}
		}()
	}
	c.met.pick(primary, reason)
	c.met.tenantPick(tenant)
	launch(primary, reason, false, budgeted)

	var hedgeC <-chan time.Time
	// Best-effort traffic is exempt from hedging: a hedge spends fleet
	// capacity (and retry budget) to shave tail latency, and best-effort
	// is by definition the class whose tail nobody is paying for.
	if hedgeable && c.cfg.hedge && len(p.backends) > 1 &&
		qos.FromContext(ctx).Class != qos.BestEffort {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}

	outstanding := 1
	var lastErr error
	for outstanding > 0 {
		select {
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if r.hedged {
					c.met.hedgeWins.Inc()
				}
				cancel() // the slower copy unwinds into the buffered channel
				return r.v, nil
			}
			lastErr = r.err
		case <-hedgeC:
			hedgeC = nil
			h, _, _ := c.pick(p, key, tried, true)
			if h == nil {
				continue
			}
			if !c.budget.spend() {
				c.met.budgetDenied.Inc()
				continue
			}
			tried[h] = true
			c.met.hedges.Inc()
			c.met.pick(h, "hedge")
			c.met.tenantPick(tenant)
			launch(h, "hedge", true, true)
			outstanding++
		}
	}
	return zero, lastErr
}

// recordAttempt emits the route-attempt span and wide event for one
// finished backend call of a sampled request. won is true for the copy
// that answered first with a success — on a hedged race exactly one
// attempt carries winner=true, and a losing-but-successful copy is the
// hedge loss the span names explicitly.
func (c *Cluster) recordAttempt(tc obs.TraceContext, span obs.SpanID, op string,
	b *backend, reason string, start time.Time, elapsed time.Duration, err error,
	hedged, budgeted, won bool) {
	if !tc.Sampled || (c.cfg.tracer == nil && c.cfg.wide == nil) {
		return
	}
	outcome := routeOutcome(err)
	if c.cfg.tracer != nil {
		s := obs.Span{
			Name:    "route/" + op,
			Track:   "route",
			Outcome: outcome,
			Start:   start,
			Exec:    elapsed,
			TraceID: tc.TraceID,
			SpanID:  span,
			Parent:  tc.SpanID,
			Attrs: []obs.Attr{
				{Key: "backend", Val: b.addr},
				{Key: "pick", Val: reason},
			},
		}
		if hedged || won {
			hw := "lost"
			if won {
				hw = "won"
			}
			s.Attrs = append(s.Attrs, obs.Attr{Key: "race", Val: hw})
		}
		if budgeted {
			s.Attrs = append(s.Attrs, obs.Attr{Key: "budget", Val: "spent"})
		}
		c.cfg.tracer.Record(s)
	}
	c.cfg.wide.Emit(&obs.WideEvent{
		Layer:   "route",
		Op:      op,
		TraceID: tc.TraceID,
		SpanID:  span,
		Parent:  tc.SpanID,
		Outcome: outcome,
		Backend: b.addr,
		Dur:     elapsed,
		Hedged:  hedged,
		Err:     errString(err),
	})
}

// routeOutcome classifies one backend-call error the way the wire codes
// would, so route spans and server spans speak the same outcome names.
func routeOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, errs.ErrRateLimited):
		return "rate_limited"
	case errors.Is(err, errs.ErrOverloaded):
		return "overloaded"
	case errors.Is(err, errs.ErrDraining):
		return "draining"
	case errors.Is(err, errs.ErrBackendDown):
		return "backend_down"
	case errors.Is(err, errs.ErrEngineClosed):
		return "engine_closed"
	case errors.Is(err, errs.ErrIntegrity):
		return "integrity"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "error"
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// observe feeds one finished backend call into the breaker, the
// latency histogram and the integrity streak. Only transport failures
// trip the breaker: an application error or an explicit
// overload/drain answer proves the transport works, and a
// cancellation says nothing either way. Integrity answers prove the
// transport works too — the backend is corrupting, not unreachable —
// so they feed their own ejection streak instead of the breaker.
func (c *Cluster) observe(b *backend, err error, elapsed time.Duration) {
	switch {
	case err == nil:
		b.br.Success()
		b.integrityStreak.Store(0)
		c.met.latency.ObserveDuration(elapsed)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// no signal
	case errors.Is(err, errs.ErrBackendDown):
		b.br.Failure()
	case errors.Is(err, errs.ErrIntegrity):
		b.br.Success()
		b.met.integrityFailures.Inc()
		streak := b.integrityStreak.Add(1)
		if c.cfg.integrityEject > 0 && streak >= int64(c.cfg.integrityEject) && b.up() {
			b.setUp(false)
			b.integrityStreak.Store(0)
			b.met.ejections.Inc()
		}
	default:
		b.br.Success()
	}
}

// hedgeDelay derives the hedge trigger from the cluster's own latency:
// p99 clamped to [hedgeMin, hedgeMax], with hedgeMax used until enough
// samples exist for a meaningful percentile.
func (c *Cluster) hedgeDelay() time.Duration {
	s := c.met.latency.Snapshot()
	if s.Count < 16 {
		return c.cfg.hedgeMax
	}
	d := time.Duration(s.P99)
	if d < c.cfg.hedgeMin {
		d = c.cfg.hedgeMin
	}
	if d > c.cfg.hedgeMax {
		d = c.cfg.hedgeMax
	}
	return d
}

// pick chooses the next backend: among in-rotation, not-yet-tried
// backends whose breaker admits a request, the modulus's HRW home
// unless it is overloaded (then the least-inflight backend), or plain
// least-inflight when there is no affinity key. Returns nil when no
// backend qualifies. Backends whose breaker denies the request are
// marked tried, so callers naturally move past them. During a handover
// window the pick may be the modulus's old home, in which case
// warmTarget names the new home for maybeWarm; forHedge picks skip the
// handover path and known-bad zones.
func (c *Cluster) pick(p *membership, key []byte, tried map[*backend]bool,
	forHedge bool) (b *backend, reason string, warmTarget *backend) {
	for {
		b, reason, warmTarget := c.choose(p, key, tried, forHedge)
		if b == nil {
			return nil, "", nil
		}
		if b.br.Allow() {
			return b, reason, warmTarget
		}
		tried[b] = true
	}
}

func (c *Cluster) choose(p *membership, key []byte, excluded map[*backend]bool,
	forHedge bool) (pick *backend, reason string, warmTarget *backend) {
	cands := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if !b.up() || excluded[b] {
			continue
		}
		if forHedge && zoneBad(p, b.zone) {
			// Never hedge into a known-bad zone: the hedge exists to
			// dodge slowness, and a zone absorbing failures is where
			// slowness lives. Primary routing still may use it — when it
			// holds the only up backends, slow beats unavailable.
			c.met.hedgeZoneSkips.Inc()
			continue
		}
		cands = append(cands, b)
	}
	if len(cands) == 0 {
		return nil, "", nil
	}

	// Least-inflight with a rotating tie-break, so equal backends share
	// load instead of the first one absorbing it all.
	start := int(c.rr.Add(1)) % len(cands)
	least := cands[start]
	min := least.inflight.Load()
	for k := 1; k < len(cands); k++ {
		b := cands[(start+k)%len(cands)]
		if v := b.inflight.Load(); v < min {
			least, min = b, v
		}
	}
	// Zone preference: a local-zone candidate no more loaded than the
	// global least wins the least-inflight pick — cross-zone hops cost
	// latency, so ties (and better) go local.
	if c.cfg.zone != "" && least.zone != c.cfg.zone {
		var local *backend
		var lmin int64
		for _, b := range cands {
			if b.zone != c.cfg.zone {
				continue
			}
			if v := b.inflight.Load(); local == nil || v < lmin {
				local, lmin = b, v
			}
		}
		if local != nil && lmin <= min {
			least, min = local, lmin
		}
	}

	if c.cfg.affinity && len(key) > 0 {
		home := hrwBest(key, cands)
		if !forHedge && c.handoverActive(p) {
			// Dual-route a moved modulus: its old home still holds the
			// warm mont.Ctx, so it serves the request (no cold-cache
			// cliff) while the new home is warmed in the background. Old
			// homes are resolved over the previous routable set — which
			// may include a departed backend that is still up and
			// answering; one that stopped answering probes has dropped
			// out of up() and the modulus routes to its new home at once.
			old := c.oldHome(p, key, excluded)
			if old != nil && old != home &&
				old.inflight.Load() <= 2*min+c.cfg.spillSlack {
				return old, "handover", home
			}
		}
		if home.inflight.Load() <= 2*min+c.cfg.spillSlack {
			return home, "affinity", nil
		}
		return least, "spill", nil
	}
	return least, "least_inflight", nil
}

// oldHome resolves a key's HRW home over the pre-change routable set.
func (c *Cluster) oldHome(p *membership, key []byte, excluded map[*backend]bool) *backend {
	old := make([]*backend, 0, len(p.prev))
	for _, b := range p.prev {
		if b.up() && !excluded[b] {
			old = append(old, b)
		}
	}
	if len(old) == 0 {
		return nil
	}
	return hrwBest(key, old)
}
