package cluster

import "sync/atomic"

// retryBudget is the cluster-wide brake on retry amplification: hedges
// and overload failovers — the retries that add load to an already
// stressed fleet — each spend one token, and tokens are only minted as
// a fraction of primary requests (ratio per request, capped at burst).
// During a partial outage the budget lets a bounded slice of traffic
// retry; past that the original error surfaces instead of the cluster
// multiplying its own load until everything falls over. Failovers that
// merely move a request (backend draining or down — the first backend
// is doing no work) are deliberately exempt.
//
// Tokens are stored in millitokens so fractional ratios accumulate
// exactly; all operations are lock-free CAS loops.
type retryBudget struct {
	tokens atomic.Int64 // millitokens
	perReq int64        // millitokens credited per primary request
	max    int64        // cap (burst × 1000)
}

func newRetryBudget(ratio float64, burst int) *retryBudget {
	if ratio < 0 {
		ratio = 0
	}
	if burst < 1 {
		burst = 1
	}
	rb := &retryBudget{perReq: int64(ratio * 1000), max: int64(burst) * 1000}
	rb.tokens.Store(rb.max) // start full: cold-start failovers must work
	return rb
}

// credit mints tokens for one primary request.
func (rb *retryBudget) credit() {
	for {
		cur := rb.tokens.Load()
		next := cur + rb.perReq
		if next > rb.max {
			next = rb.max
		}
		if next == cur || rb.tokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// spend takes one token, reporting false (and taking nothing) when the
// budget is exhausted.
func (rb *retryBudget) spend() bool {
	for {
		cur := rb.tokens.Load()
		if cur < 1000 {
			return false
		}
		if rb.tokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}
