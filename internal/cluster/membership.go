package cluster

// Dynamic membership: the pool of backends is an immutable snapshot
// swapped atomically on every join/leave, the way the engine swaps
// mont.Ctx generations — readers never lock, writers serialize on
// memMu. A membership change does not cut traffic over instantly:
// HRW affinity means most moduli keep their home, and the ones that
// move enter a bounded handover window during which the old home keeps
// answering (its mont.Ctx cache is warm) while the router warms the
// new home with background duplicates of live traffic. When the window
// closes, routing settles on the new assignment and departed backends
// are retired. This is the paper's Fig. 5 replicated-array scaling
// made elastic: arrays can be added or removed while the conveyor
// keeps moving, and the warm-up cost of the move is measured
// (montsys_cluster_handover_warmups_total) and capped
// (WithHandover's maxWarm).

import (
	"context"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/errs"
)

// maxMemberField mirrors the wire codec's cap on addr and zone fields,
// so a Join accepted here is always encodable.
const maxMemberField = 256

// membership is one immutable snapshot of the pool. backends is the
// routable set; during a handover window (now < until) prev holds the
// routable set from before the change so moved moduli can keep
// resolving their old home, and departed holds former members that
// stay alive — still probed, still answering — until the window ends
// and settle retires them.
type membership struct {
	epoch    uint64
	backends []*backend
	prev     []*backend
	until    time.Time
	departed []*backend
}

// handoverActive reports whether p is inside its handover window.
func (c *Cluster) handoverActive(p *membership) bool {
	return p.prev != nil && c.now().Before(p.until)
}

// snapshot returns the current membership, lazily settling an expired
// handover window first so no background timer is needed: the first
// request (or probe, or status read) past the deadline completes the
// handover.
func (c *Cluster) snapshot() *membership {
	p := c.pool.Load()
	if p.prev != nil && !c.now().Before(p.until) {
		c.settle(p)
		p = c.pool.Load()
	}
	return p
}

// settle completes an expired handover window: install the pruned
// snapshot and retire the departed backends. No-op if the pool moved
// under us (another settle, or a newer membership change that opened a
// fresh window).
func (c *Cluster) settle(old *membership) {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	p := c.pool.Load()
	if p != old || p.prev == nil || c.now().Before(p.until) {
		return
	}
	c.pool.Store(&membership{epoch: p.epoch + 1, backends: p.backends})
	for _, b := range p.departed {
		c.retire(b)
	}
}

// retire stops a departed backend's probe loop and closes its client.
// Called exactly once per backend, always under memMu.
func (c *Cluster) retire(b *backend) {
	close(b.gone)
	b.cl.Close()
}

// install swaps in a new routable set under memMu. When a handover
// window is configured the outgoing routable set is kept as prev (so
// moved moduli dual-route) and departing backends stay alive in
// departed; otherwise departures retire immediately. Back-to-back
// changes chain: the window restarts and already-departed backends ride
// along until the latest window closes.
func (c *Cluster) installLocked(p *membership, next []*backend, departing []*backend) {
	dep := make([]*backend, 0, len(p.departed)+len(departing))
	dep = append(dep, p.departed...)
	dep = append(dep, departing...)
	m := &membership{epoch: p.epoch + 1, backends: next}
	if c.cfg.handoverWindow > 0 && len(p.backends) > 0 {
		m.prev = p.backends
		m.until = c.now().Add(c.cfg.handoverWindow)
		m.departed = dep
	} else {
		for _, b := range dep {
			c.retire(b)
		}
	}
	c.pool.Store(m)
	c.met.members.Set(int64(len(next)))
}

// settleLocked is snapshot's settle pass for callers already holding
// memMu (Join/Goodbye), so a change lands on a settled base.
func (c *Cluster) settleLocked() *membership {
	p := c.pool.Load()
	if p.prev != nil && !c.now().Before(p.until) {
		c.pool.Store(&membership{epoch: p.epoch + 1, backends: p.backends})
		for _, b := range p.departed {
			c.retire(b)
		}
		p = c.pool.Load()
	}
	return p
}

// checkMember validates a join's fields against the same caps the wire
// codec enforces, plus a syntactic address check — a balancer must not
// let one hostile frame park an unroutable string in the member table.
func checkMember(addr, zone string) error {
	if addr == "" || len(addr) > maxMemberField {
		return fmt.Errorf("cluster: member address of %d bytes outside [1, %d]: %w",
			len(addr), maxMemberField, errs.ErrProtocol)
	}
	if len(zone) > maxMemberField {
		return fmt.Errorf("cluster: member zone of %d bytes exceeds limit %d: %w",
			len(zone), maxMemberField, errs.ErrProtocol)
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil || host == "" || port == "" {
		return fmt.Errorf("cluster: member address %q is not host:port: %w",
			addr, errs.ErrProtocol)
	}
	return nil
}

// Join adds a backend to the pool at runtime, or relabels its zone if
// the address is already a member. It implements the wire protocol's
// OpJoin (the Cluster is a server.MembershipHandler, so montsyslb's
// front door accepts self-registration). Idempotent: a re-join with
// the same zone is a no-op answering the current member count.
//
// A joined backend starts OUT of rotation and is probed immediately:
// traffic only routes to it after its first successful Ping. A hostile
// or mistaken Join of a dead address therefore costs the pool nothing
// — it sits down until it proves itself, while WithMaxMembers bounds
// how many such entries can exist at all.
func (c *Cluster) Join(ctx context.Context, addr, zone string) (int, error) {
	if err := checkMember(addr, zone); err != nil {
		return 0, err
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return 0, fmt.Errorf("cluster: closed: %w", errs.ErrEngineClosed)
	}
	p := c.settleLocked()

	var relabeled *backend
	next := make([]*backend, 0, len(p.backends)+1)
	for _, b := range p.backends {
		if b.addr == addr {
			if b.zone == zone {
				return len(p.backends), nil
			}
			// Zone change: the old entry departs (staying warm through
			// the window) and a fresh entry joins under the new label.
			relabeled = b
			continue
		}
		next = append(next, b)
	}
	if len(next)+1 > c.cfg.maxMembers {
		return 0, fmt.Errorf("cluster: member table full (%d of %d): %w",
			len(p.backends), c.cfg.maxMembers, errs.ErrOverloaded)
	}
	nb := c.newBackend(addr, zone, false)
	next = append(next, nb)

	var departing []*backend
	if relabeled != nil {
		departing = []*backend{relabeled}
	}
	c.installLocked(p, next, departing)
	c.met.joins.Inc()
	c.wg.Add(1)
	go c.probeLoop(nb, 0) // immediate first probe: join latency = one RTT
	return len(next), nil
}

// Goodbye removes a backend from the pool at runtime, implementing the
// wire protocol's OpGoodbye. Idempotent: an address that is not a
// member answers the current count unchanged. The departing backend
// leaves the routable set immediately — no new affinity assignments —
// but while it still answers probes it remains eligible as the OLD
// home of moved moduli for the handover window, so a graceful
// departure hands its warm contexts over instead of cliffing them. A
// backend that says goodbye because it is draining stops answering
// probes within one round and drops out of the window early.
func (c *Cluster) Goodbye(ctx context.Context, addr string) (int, error) {
	if err := checkMember(addr, ""); err != nil {
		return 0, err
	}
	c.memMu.Lock()
	defer c.memMu.Unlock()
	if c.closed.Load() {
		return 0, fmt.Errorf("cluster: closed: %w", errs.ErrEngineClosed)
	}
	p := c.settleLocked()

	var leaving *backend
	next := make([]*backend, 0, len(p.backends))
	for _, b := range p.backends {
		if b.addr == addr {
			leaving = b
			continue
		}
		next = append(next, b)
	}
	if leaving == nil {
		return len(p.backends), nil
	}
	c.installLocked(p, next, []*backend{leaving})
	c.met.leaves.Inc()
	return len(next), nil
}

// Member is one pool entry as configuration sees it.
type Member struct {
	Addr string
	Zone string
}

// Members lists the current routable members in pool order — the diff
// base for montsyslb's -backends @file watch loop.
func (c *Cluster) Members() []Member {
	p := c.snapshot()
	out := make([]Member, len(p.backends))
	for i, b := range p.backends {
		out[i] = Member{Addr: b.addr, Zone: b.zone}
	}
	return out
}

// ParseMemberList parses a comma-separated "addr[=zone]" list — the
// -backends flag syntax.
func ParseMemberList(s string) ([]Member, error) {
	var out []Member
	seen := make(map[string]bool)
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		m, err := parseMember(f)
		if err != nil {
			return nil, err
		}
		if seen[m.Addr] {
			continue
		}
		seen[m.Addr] = true
		out = append(out, m)
	}
	return out, nil
}

// LoadMemberFile parses a member file: one "addr[=zone]" per line,
// #-comments and blank lines ignored — the -backends @file syntax.
func LoadMemberFile(path string) ([]Member, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading member file: %w", err)
	}
	lines := make([]string, 0, 8)
	for _, ln := range strings.Split(string(raw), "\n") {
		if i := strings.IndexByte(ln, '#'); i >= 0 {
			ln = ln[:i]
		}
		if ln = strings.TrimSpace(ln); ln != "" {
			lines = append(lines, ln)
		}
	}
	return ParseMemberList(strings.Join(lines, ","))
}

// parseMember parses one "addr[=zone]" entry.
func parseMember(f string) (Member, error) {
	addr, zone, _ := strings.Cut(f, "=")
	addr, zone = strings.TrimSpace(addr), strings.TrimSpace(zone)
	if err := checkMember(addr, zone); err != nil {
		return Member{}, err
	}
	return Member{Addr: addr, Zone: zone}, nil
}

// warmState dedupes handover warm-ups: one background duplicate per
// moved modulus per membership epoch, at most maxWarm per epoch. The
// counter doubles as the measured context-cache churn of the change —
// each warm-up is exactly one mont.Ctx the new home builds that it did
// not have.
type warmState struct {
	mu    sync.Mutex
	epoch uint64
	seen  map[string]bool
	n     int
}

// maybeWarm launches one background duplicate of a dual-routed request
// against the modulus's new home, so its mont.Ctx LRU is warm before
// the handover window closes and routing flips. The result is
// discarded — correctness never depends on it — and the launch is
// deduped per modulus and capped per epoch (suppressions are counted,
// so an over-cap churn event is visible, not silent).
func maybeWarm[T any](c *Cluster, p *membership, target *backend, key []byte,
	call func(context.Context, *backend) (T, error)) {
	c.warm.mu.Lock()
	if c.closed.Load() {
		c.warm.mu.Unlock()
		return
	}
	if c.warm.epoch != p.epoch {
		c.warm.epoch, c.warm.seen, c.warm.n = p.epoch, make(map[string]bool, 64), 0
	}
	k := string(key)
	if c.warm.seen[k] {
		c.warm.mu.Unlock()
		return
	}
	if c.warm.n >= c.cfg.handoverMaxWarm {
		c.warm.mu.Unlock()
		c.met.warmSuppressed.Inc()
		return
	}
	c.warm.seen[k] = true
	c.warm.n++
	c.wg.Add(1)
	c.warm.mu.Unlock()

	c.met.handoverWarmups.Inc()
	c.met.pick(target, "warmup")
	target.acquire()
	go func() {
		defer c.wg.Done()
		defer target.release()
		ctx, cancel := context.WithTimeout(c.baseCtx, warmTimeout)
		defer cancel()
		call(ctx, target)
	}()
}

// warmTimeout bounds one handover warm-up call; building a mont.Ctx
// and answering one op is milliseconds, so a warm-up that takes longer
// is stuck behind an unhealthy backend and not worth waiting for.
const warmTimeout = 3 * time.Second

// zoneBad reports whether a zone is failing wholesale: at least two
// members and at least half of them out of rotation. Hedges never
// launch into a bad zone — a hedge is a bet placed with fleet
// capacity, and a zone visibly absorbing failures is the worst odds on
// the board. (Primary routing still may: when the bad zone holds the
// only up backends, slow beats unavailable.)
func zoneBad(p *membership, zone string) bool {
	if zone == "" {
		return false
	}
	var n, down int
	for _, b := range p.backends {
		if b.zone != zone {
			continue
		}
		n++
		if !b.up() {
			down++
		}
	}
	return n >= 2 && down*2 >= n
}
