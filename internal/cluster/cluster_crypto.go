package cluster

// Signing-service routing. The cluster implements server.SignHandler by
// forwarding each op through the same doCall loop as the compute ops,
// so signing inherits failover, hedging, breakers and the retry budget
// unchanged. Routing reuses the HRW affinity plane: instead of the raw
// modulus, signing ops hash a *key handle* (cryptosvc.RSAKeyHandle /
// ECDSAKeyHandle), which pins every request for one private key to one
// backend — warm Montgomery context for that key's moduli — without the
// balancer ever treating private material as a routing key directly.
//
// Hedging: keygen and both sign ops are deterministic (keygen and the
// ECDSA nonce derive from the request seed; RSA blinding cancels out of
// the final signature), so racing a hedge returns the same bytes and is
// safe. Batch verify follows ModExpBatch's rule — failover as a unit,
// no hedge, because racing a whole batch doubles real work.

import (
	"context"
	"math/big"

	"repro/internal/cryptosvc"
	"repro/internal/rsa"
	"repro/internal/server"
)

// Cluster fronts signing backends: montsyslb serves the signing ops by
// routing them here.
var _ server.SignHandler = (*Cluster)(nil)

// keyhandle marks a signing request routed by key handle and returns
// the handle unchanged, so the call sites below stay one expression.
func (c *Cluster) keyhandle(h []byte) []byte {
	if h != nil {
		c.met.keyhandleReqs.Inc()
	}
	return h
}

// KeygenRSA generates a deterministic RSA key on one backend
// (reproduction/test-only — see server.OpKeygenRSA). There is no key
// yet to route by, so it goes to the least-loaded backend; determinism
// (same bits+seed → same key) makes hedging safe.
func (c *Cluster) KeygenRSA(ctx context.Context, bits int, seed int64) (*rsa.PrivateKey, error) {
	return doCall(c, ctx, "keygen_rsa", nil, true,
		func(ctx context.Context, b *backend) (*rsa.PrivateKey, error) {
			return b.cl.KeygenRSA(ctx, bits, seed)
		})
}

// SignRSA signs on the key's home backend (HRW over the key handle of
// its modulus).
func (c *Cluster) SignRSA(ctx context.Context, key *rsa.PrivateKey, digest *big.Int) (*big.Int, error) {
	var h []byte
	if key != nil {
		h = cryptosvc.RSAKeyHandle(key.N)
	}
	return doCall(c, ctx, "sign_rsa", c.keyhandle(h), true,
		func(ctx context.Context, b *backend) (*big.Int, error) {
			return b.cl.SignRSA(ctx, key, digest)
		})
}

// VerifyRSA verifies on the same home backend as signatures under the
// same modulus, sharing its warm context.
func (c *Cluster) VerifyRSA(ctx context.Context, n, e, digest, sig *big.Int) (bool, error) {
	return doCall(c, ctx, "verify_rsa", c.keyhandle(cryptosvc.RSAKeyHandle(n)), true,
		func(ctx context.Context, b *backend) (bool, error) {
			return b.cl.VerifyRSA(ctx, n, e, digest, sig)
		})
}

// SignECDSA signs on the key's home backend (HRW over curve + private
// scalar handle). The nonce derives from seed, so hedged copies agree.
func (c *Cluster) SignECDSA(ctx context.Context, curveID uint8, d, digest *big.Int, seed int64) (*big.Int, *big.Int, error) {
	type sig struct{ r, s *big.Int }
	v, err := doCall(c, ctx, "sign_ecdsa", c.keyhandle(cryptosvc.ECDSAKeyHandle(curveID, d)), true,
		func(ctx context.Context, b *backend) (sig, error) {
			r, s, err := b.cl.SignECDSA(ctx, curveID, d, digest, seed)
			return sig{r, s}, err
		})
	if err != nil {
		return nil, nil, err
	}
	return v.r, v.s, nil
}

// VerifyECDSABatch verifies a batch on one backend, routed by the first
// item's public point (batches overwhelmingly verify under one key).
// Like ModExpBatch it fails over as a unit and is not hedged.
func (c *Cluster) VerifyECDSABatch(ctx context.Context, curveID uint8, items []cryptosvc.ECDSAVerifyItem) ([]cryptosvc.VerifyResult, error) {
	var h []byte
	if len(items) > 0 {
		h = cryptosvc.ECDSAKeyHandle(curveID, items[0].Qx, items[0].Qy)
	}
	return doCall(c, ctx, "verify_ecdsa_batch", c.keyhandle(h), false,
		func(ctx context.Context, b *backend) ([]cryptosvc.VerifyResult, error) {
			return b.cl.VerifyECDSABatch(ctx, curveID, items)
		})
}
