package rsa

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/kits"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(221))
	key, err := GenerateKey(96, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("bind this message to its sender")
	sig, rep, err := key.SignSHA256(msg, kits.Model)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalCycles <= 0 {
		t.Error("empty signing report")
	}
	ok, err := key.PublicKey.VerifySHA256(msg, sig, kits.Model)
	if err != nil || !ok {
		t.Fatalf("valid signature rejected (%v)", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	key, err := GenerateKey(64, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("original")
	sig, _, err := key.SignSHA256(msg, kits.Model)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := key.PublicKey.VerifySHA256([]byte("tampered"), sig, kits.Model); ok {
		t.Error("tampered message accepted")
	}
	bad := new(big.Int).Add(sig, big.NewInt(1))
	bad.Mod(bad, key.N)
	if bad.Sign() == 0 {
		bad.SetInt64(2)
	}
	if ok, _ := key.PublicKey.VerifySHA256(msg, bad, kits.Model); ok {
		t.Error("tampered signature accepted")
	}
	if ok, _ := key.PublicKey.VerifySHA256(msg, big.NewInt(0), kits.Model); ok {
		t.Error("zero signature accepted")
	}
	if ok, _ := key.PublicKey.VerifySHA256(msg, key.N, kits.Model); ok {
		t.Error("out-of-range signature accepted")
	}
	other, _ := GenerateKey(64, nil, rng)
	if ok, _ := other.PublicKey.VerifySHA256(msg, sig, kits.Model); ok {
		t.Error("signature accepted under the wrong key")
	}
}

// Signature through the cycle-accurate circuit.
func TestSignSimulated(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	key, err := GenerateKey(32, big.NewInt(17), rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("gates")
	sig, rep, err := key.SignSHA256(msg, kits.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SimulatedMulCycles == 0 {
		t.Error("no simulated cycles recorded")
	}
	ok, err := key.PublicKey.VerifySHA256(msg, sig, kits.Sim)
	if err != nil || !ok {
		t.Fatalf("simulated signature rejected (%v)", err)
	}
}

// Blinded decryption must recover plaintexts exactly like the plain
// path, and different blinds must not change the result.
func TestDecryptBlinded(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	key, err := GenerateKey(96, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		m := new(big.Int).Rand(rng, key.N)
		c, _, err := key.Encrypt(m, kits.Model)
		if err != nil {
			t.Fatal(err)
		}
		got, rep, err := key.DecryptBlinded(c, kits.Model, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got.Cmp(m) != 0 {
			t.Fatalf("blinded decrypt wrong")
		}
		if rep.TotalCycles <= 0 {
			t.Error("empty blinded report")
		}
	}
	if _, _, err := key.DecryptBlinded(key.N, kits.Model, rng); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
}
