package rsa

import (
	"crypto/sha256"
	"errors"
	"math/big"
	"math/rand"

	"repro/internal/expo"
	"repro/internal/kits"
)

// Textbook RSA signatures over SHA-256 digests: s = H(m)^D mod N,
// verified by H(m) ≟ s^E mod N. Like the encryption side, this is the
// unpadded scheme the paper's "digital signatures … uniquely bind a
// message to its sender" introduction refers to — a demonstration of the
// exponentiator, not a deployment-grade scheme (no PSS/PKCS#1 padding).

// SignSHA256 signs a message: the SHA-256 digest, reduced mod N, is
// raised to the private exponent (via CRT when available).
func (priv *PrivateKey) SignSHA256(message []byte, k kits.Kit) (*big.Int, expo.Report, error) {
	digest := sha256.Sum256(message)
	h := new(big.Int).SetBytes(digest[:])
	h.Mod(h, priv.N)
	if h.Sign() == 0 {
		return nil, expo.Report{}, errors.New("rsa: degenerate digest")
	}
	if priv.P != nil && priv.Q != nil {
		return priv.decryptCRTValue(h, k)
	}
	ex, err := newExp(priv.N, k)
	if err != nil {
		return nil, expo.Report{}, err
	}
	return ex.ModExp(h, priv.D)
}

// decryptCRTValue applies the CRT private-key operation to an arbitrary
// value (shared by Decrypt-style paths and signing).
func (priv *PrivateKey) decryptCRTValue(v *big.Int, k kits.Kit) (*big.Int, expo.Report, error) {
	return priv.DecryptCRT(v, k)
}

// VerifySHA256 checks a signature against a message.
func (pub *PublicKey) VerifySHA256(message []byte, sig *big.Int, k kits.Kit) (bool, error) {
	if sig.Sign() <= 0 || sig.Cmp(pub.N) >= 0 {
		return false, nil
	}
	digest := sha256.Sum256(message)
	h := new(big.Int).SetBytes(digest[:])
	h.Mod(h, pub.N)
	ex, err := newExp(pub.N, k)
	if err != nil {
		return false, err
	}
	recovered, _, err := ex.ModExp(sig, pub.E)
	if err != nil {
		return false, err
	}
	return recovered.Cmp(h) == 0, nil
}

// DecryptBlinded performs the private-key operation with base blinding,
// the standard countermeasure against the timing/power attacks the
// paper's §5 motivates: a fresh random r masks the ciphertext as
// c·r^E mod N before exponentiation, and the mask is removed with one
// modular inversion afterwards, so the exponentiation's operand sequence
// is decorrelated from the attacker-chosen ciphertext.
func (priv *PrivateKey) DecryptBlinded(c *big.Int, k kits.Kit, rng *rand.Rand) (*big.Int, expo.Report, error) {
	if c.Sign() < 0 || c.Cmp(priv.N) >= 0 {
		return nil, expo.Report{}, errors.New("rsa: ciphertext out of range")
	}
	// Draw r coprime to N (overwhelmingly likely; retry otherwise).
	var r, rInv *big.Int
	for attempt := 0; ; attempt++ {
		if attempt > 100 {
			return nil, expo.Report{}, errors.New("rsa: could not find invertible blind")
		}
		r = new(big.Int).Rand(rng, priv.N)
		if r.Sign() == 0 {
			continue
		}
		if rInv = new(big.Int).ModInverse(r, priv.N); rInv != nil {
			break
		}
	}
	ex, err := newExp(priv.N, k)
	if err != nil {
		return nil, expo.Report{}, err
	}
	// blindedC = c·r^E mod N
	rE, repBlind, err := ex.ModExp(r, priv.E)
	if err != nil {
		return nil, expo.Report{}, err
	}
	blinded := new(big.Int).Mul(c, rE)
	blinded.Mod(blinded, priv.N)
	// m' = blindedC^D mod N = m·r mod N
	mPrime, rep, err := ex.ModExp(blinded, priv.D)
	if err != nil {
		return nil, expo.Report{}, err
	}
	m := new(big.Int).Mul(mPrime, rInv)
	m.Mod(m, priv.N)
	rep.Squares += repBlind.Squares
	rep.Multiplies += repBlind.Multiplies
	rep.TotalCycles += repBlind.TotalCycles
	rep.SimulatedMulCycles += repBlind.SimulatedMulCycles
	return m, rep, nil
}
