// Package rsa implements the application the paper's §4.5 motivates:
// textbook RSA over the reproduced Montgomery exponentiator. Everything
// cryptographic is built from this repository's own arithmetic — prime
// generation uses Miller–Rabin whose modular exponentiations run through
// internal/mont, and encryption/decryption run through internal/expo
// (optionally through the cycle-accurate simulated circuit).
//
// This is *raw* RSA — no padding — matching the paper's scope
// (C = M^E mod N); it demonstrates the multiplier, it is not a secure
// encryption scheme.
package rsa

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/expo"
	"repro/internal/kits"
	"repro/internal/mont"
)

// PublicKey is an RSA public key (N, E).
type PublicKey struct {
	N *big.Int
	E *big.Int
}

// PrivateKey is an RSA private key with the CRT constants.
type PrivateKey struct {
	PublicKey
	D *big.Int // private exponent

	P, Q *big.Int // prime factors of N
	DP   *big.Int // D mod (P-1)
	DQ   *big.Int // D mod (Q-1)
	QInv *big.Int // Q⁻¹ mod P
}

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// IsProbablePrime runs rounds of Miller–Rabin on the odd candidate n,
// with witnesses drawn from rng, using the repository's own Montgomery
// exponentiation (not math/big.ProbablyPrime) — the point is to dogfood
// the arithmetic the paper builds.
func IsProbablePrime(n *big.Int, rounds int, rng *rand.Rand) (bool, error) {
	if n.Cmp(two) < 0 {
		return false, nil
	}
	if n.Cmp(big.NewInt(3)) <= 0 {
		return true, nil
	}
	if n.Bit(0) == 0 {
		return false, nil
	}
	// n-1 = d·2^s with d odd.
	nm1 := new(big.Int).Sub(n, one)
	d := new(big.Int).Set(nm1)
	s := 0
	for d.Bit(0) == 0 {
		d.Rsh(d, 1)
		s++
	}
	ctx, err := mont.NewCtx(n)
	if err != nil {
		return false, err
	}
	limit := new(big.Int).Sub(n, big.NewInt(3)) // witnesses in [2, n-2]
	for round := 0; round < rounds; round++ {
		a := new(big.Int).Rand(rng, limit)
		a.Add(a, two)
		x, _, err := ctx.Exp(a, d)
		if err != nil {
			return false, err
		}
		if x.Cmp(one) == 0 || x.Cmp(nm1) == 0 {
			continue
		}
		composite := true
		for i := 0; i < s-1; i++ {
			// Plain modular squaring (ctx.Mul would be a Montgomery
			// product, off by a factor R⁻¹).
			x.Mul(x, x)
			x.Mod(x, n)
			if x.Cmp(nm1) == 0 {
				composite = false
				break
			}
		}
		if composite {
			return false, nil
		}
	}
	return true, nil
}

// GeneratePrime returns a random prime of exactly bitLen bits.
func GeneratePrime(bitLen int, rng *rand.Rand) (*big.Int, error) {
	if bitLen < 4 {
		return nil, fmt.Errorf("rsa: prime length %d too small", bitLen)
	}
	span := new(big.Int).Lsh(one, uint(bitLen-1))
	for attempt := 0; attempt < 100*bitLen; attempt++ {
		p := new(big.Int).Rand(rng, span)
		p.Or(p, span)     // force exact bit length
		p.SetBit(p, 0, 1) // force odd
		ok, err := IsProbablePrime(p, 20, rng)
		if err != nil {
			return nil, err
		}
		if ok {
			return p, nil
		}
	}
	return nil, errors.New("rsa: prime generation exhausted attempts")
}

// GenerateKey produces an RSA key pair with an n-bit modulus (n even,
// n ≥ 16) and public exponent e (default 65537 when nil). rng supplies
// all randomness, so key generation is reproducible under a fixed seed.
func GenerateKey(bits int, e *big.Int, rng *rand.Rand) (*PrivateKey, error) {
	if bits < 16 || bits%2 != 0 {
		return nil, fmt.Errorf("rsa: modulus length %d must be even and at least 16", bits)
	}
	if e == nil {
		e = big.NewInt(65537)
	}
	if e.Bit(0) == 0 || e.Cmp(big.NewInt(3)) < 0 {
		return nil, errors.New("rsa: public exponent must be odd and at least 3")
	}
	for attempt := 0; attempt < 1000; attempt++ {
		p, err := GeneratePrime(bits/2, rng)
		if err != nil {
			return nil, err
		}
		q, err := GeneratePrime(bits/2, rng)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		if p.Cmp(q) < 0 {
			p, q = q, p
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		// λ(N) = lcm(p-1, q-1), as in the paper's §4.5.
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)
		d := new(big.Int).ModInverse(e, lambda)
		if d == nil {
			continue // e not invertible; new primes
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, E: new(big.Int).Set(e)},
			D:         d,
			P:         p,
			Q:         q,
			DP:        new(big.Int).Mod(d, pm1),
			DQ:        new(big.Int).Mod(d, qm1),
			QInv:      new(big.Int).ModInverse(q, p),
		}, nil
	}
	return nil, errors.New("rsa: key generation exhausted attempts")
}

// newExp builds an exponentiator for n on the requested compute kit.
// kits.Auto resolves through the process benchmark table per modulus —
// in particular the two half-size CRT moduli resolve independently, so
// they ride the CIOS fast path whenever it wins their bucket.
func newExp(n *big.Int, k kits.Kit) (*expo.Exponentiator, error) {
	if k == kits.Auto {
		k = kits.NewSelector(kits.ProcessTable()).Pick(kits.OpModExp, n.BitLen())
	}
	return expo.NewKit(n, k)
}

// Encrypt computes C = M^E mod N through the exponentiator on the given
// compute kit (kits.Model for the paper-faithful path, kits.CIOS for
// host speed, kits.Sim for the cycle-accurate circuit, kits.Auto to let
// the benchmark table choose). It returns the ciphertext and the
// exponentiation report.
func (pub *PublicKey) Encrypt(m *big.Int, k kits.Kit) (*big.Int, expo.Report, error) {
	ex, err := newExp(pub.N, k)
	if err != nil {
		return nil, expo.Report{}, err
	}
	return ex.ModExp(m, pub.E)
}

// Decrypt computes M = C^D mod N directly (no CRT).
func (priv *PrivateKey) Decrypt(c *big.Int, k kits.Kit) (*big.Int, expo.Report, error) {
	ex, err := newExp(priv.N, k)
	if err != nil {
		return nil, expo.Report{}, err
	}
	return ex.ModExp(c, priv.D)
}

// DecryptCRT computes M = C^D mod N with the Chinese Remainder Theorem:
// two half-length exponentiations (mod P and mod Q) recombined — the
// standard ~4× speedup, included as the paper's natural extension for
// RSA deployments. The combined cycle report sums both halves.
func (priv *PrivateKey) DecryptCRT(c *big.Int, k kits.Kit) (*big.Int, expo.Report, error) {
	exP, err := newExp(priv.P, k)
	if err != nil {
		return nil, expo.Report{}, err
	}
	exQ, err := newExp(priv.Q, k)
	if err != nil {
		return nil, expo.Report{}, err
	}
	cp := new(big.Int).Mod(c, priv.P)
	cq := new(big.Int).Mod(c, priv.Q)
	m1, rep1, err := exP.ModExp(cp, priv.DP)
	if err != nil {
		return nil, expo.Report{}, err
	}
	m2, rep2, err := exQ.ModExp(cq, priv.DQ)
	if err != nil {
		return nil, expo.Report{}, err
	}
	// m = m2 + q·(qInv·(m1 - m2) mod p)
	h := new(big.Int).Sub(m1, m2)
	h.Mul(h, priv.QInv)
	h.Mod(h, priv.P)
	m := new(big.Int).Mul(h, priv.Q)
	m.Add(m, m2)

	rep := expo.Report{
		L:           rep1.L,
		Squares:     rep1.Squares + rep2.Squares,
		Multiplies:  rep1.Multiplies + rep2.Multiplies,
		PreCycles:   rep1.PreCycles + rep2.PreCycles,
		MulCycles:   rep1.MulCycles + rep2.MulCycles,
		PostCycles:  rep1.PostCycles + rep2.PostCycles,
		TotalCycles: rep1.TotalCycles + rep2.TotalCycles,
		SimulatedMulCycles: rep1.SimulatedMulCycles +
			rep2.SimulatedMulCycles,
	}
	return m, rep, nil
}

// Validate checks the internal consistency of a private key.
func (priv *PrivateKey) Validate() error {
	n := new(big.Int).Mul(priv.P, priv.Q)
	if n.Cmp(priv.N) != 0 {
		return errors.New("rsa: N ≠ P·Q")
	}
	pm1 := new(big.Int).Sub(priv.P, one)
	qm1 := new(big.Int).Sub(priv.Q, one)
	gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
	lambda := new(big.Int).Mul(pm1, qm1)
	lambda.Div(lambda, gcd)
	ed := new(big.Int).Mul(priv.E, priv.D)
	ed.Mod(ed, lambda)
	if ed.Cmp(one) != 0 {
		return errors.New("rsa: E·D ≢ 1 mod λ(N)")
	}
	return nil
}
