package rsa

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/kits"
)

func TestIsProbablePrimeKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	primes := []int64{2, 3, 5, 7, 13, 101, 257, 7919, 104729}
	for _, p := range primes {
		ok, err := IsProbablePrime(big.NewInt(p), 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%d flagged composite", p)
		}
	}
	composites := []int64{0, 1, 4, 9, 15, 91, 561, 41041, 104730}
	for _, c := range composites {
		ok, err := IsProbablePrime(big.NewInt(c), 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%d flagged prime", c)
		}
	}
}

// Carmichael numbers defeat Fermat tests; Miller–Rabin must reject them.
func TestIsProbablePrimeCarmichael(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for _, c := range []int64{561, 1105, 1729, 2465, 2821, 6601, 8911, 62745, 162401} {
		ok, err := IsProbablePrime(big.NewInt(c), 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("Carmichael %d flagged prime", c)
		}
	}
}

// Cross-check against math/big's ProbablyPrime over a range.
func TestIsProbablePrimeAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for v := int64(5); v < 2000; v += 2 {
		n := big.NewInt(v)
		got, err := IsProbablePrime(n, 20, rng)
		if err != nil {
			t.Fatal(err)
		}
		if want := n.ProbablyPrime(20); got != want {
			t.Errorf("%d: got %v want %v", v, got, want)
		}
	}
}

func TestGeneratePrime(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	for _, bits := range []int{8, 16, 32, 64} {
		p, err := GeneratePrime(bits, rng)
		if err != nil {
			t.Fatal(err)
		}
		if p.BitLen() != bits {
			t.Errorf("prime has %d bits, want %d", p.BitLen(), bits)
		}
		if !p.ProbablyPrime(30) {
			t.Errorf("generated %s is not prime", p)
		}
	}
	if _, err := GeneratePrime(2, rng); err == nil {
		t.Error("tiny prime length accepted")
	}
}

func TestGenerateKeyAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	key, err := GenerateKey(64, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Validate(); err != nil {
		t.Fatal(err)
	}
	if key.N.BitLen() != 64 {
		t.Errorf("modulus has %d bits", key.N.BitLen())
	}
	for trial := 0; trial < 5; trial++ {
		m := new(big.Int).Rand(rng, key.N)
		c, _, err := key.Encrypt(m, kits.Model)
		if err != nil {
			t.Fatal(err)
		}
		back, _, err := key.Decrypt(c, kits.Model)
		if err != nil {
			t.Fatal(err)
		}
		if back.Cmp(m) != 0 {
			t.Fatalf("round trip failed")
		}
		backCRT, rep, err := key.DecryptCRT(c, kits.Model)
		if err != nil {
			t.Fatal(err)
		}
		if backCRT.Cmp(m) != 0 {
			t.Fatalf("CRT round trip failed")
		}
		if rep.TotalCycles <= 0 {
			t.Error("CRT report empty")
		}
	}
}

// CRT must cost roughly half the straight decryption in modelled cycles
// (two exponentiations at half the width: 2·(4.5(l/2)²) vs 4.5l² → ~2×).
func TestCRTCycleAdvantage(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	key, err := GenerateKey(128, nil, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := new(big.Int).Rand(rng, key.N)
	_, repFull, err := key.Decrypt(c, kits.Model)
	if err != nil {
		t.Fatal(err)
	}
	_, repCRT, err := key.DecryptCRT(c, kits.Model)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(repFull.TotalCycles) / float64(repCRT.TotalCycles)
	if ratio < 1.5 || ratio > 3.0 {
		t.Errorf("CRT speedup ratio %.2f outside [1.5, 3.0]", ratio)
	}
}

// End-to-end through the cycle-accurate simulated circuit at small size.
func TestRoundTripSimulated(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	key, err := GenerateKey(32, big.NewInt(17), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(0xBEEF)
	c, repEnc, err := key.Encrypt(m, kits.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if repEnc.SimulatedMulCycles == 0 {
		t.Error("simulated encryption reported no circuit cycles")
	}
	back, _, err := key.DecryptCRT(c, kits.Sim)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(m) != 0 {
		t.Fatal("simulated round trip failed")
	}
}

func TestGenerateKeyValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(108))
	if _, err := GenerateKey(15, nil, rng); err == nil {
		t.Error("odd bit count accepted")
	}
	if _, err := GenerateKey(8, nil, rng); err == nil {
		t.Error("tiny modulus accepted")
	}
	if _, err := GenerateKey(32, big.NewInt(4), rng); err == nil {
		t.Error("even exponent accepted")
	}
}

// Determinism: the same seed must generate the same key.
func TestGenerateKeyDeterministic(t *testing.T) {
	k1, err := GenerateKey(48, nil, rand.New(rand.NewSource(109)))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := GenerateKey(48, nil, rand.New(rand.NewSource(109)))
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 || k1.D.Cmp(k2.D) != 0 {
		t.Error("key generation not deterministic under fixed seed")
	}
}
