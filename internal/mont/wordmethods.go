package mont

import (
	mathbits "math/bits"
)

// Word-level Montgomery multiplication variants from the Koç–Acar–
// Kaliski taxonomy, alongside CIOS (cios.go): SOS (Separated Operand
// Scanning — multiply fully, then reduce fully) and FIOS (Finely
// Integrated Operand Scanning — one fused inner loop). All three compute
// the same a·b·R⁻¹ mod N with R = 2^(64s) and are cross-tested against
// each other; the benchmark harness uses them to ground the paper's
// radix discussion in measurable software trade-offs.

// MulSOS sets out = a·b·R⁻¹ mod N with the SOS method: a full s×s
// schoolbook product into a double-width buffer, then s Montgomery
// reduction passes, then the conditional subtraction.
func (c *CIOS) MulSOS(out, a, b *Nat) {
	checkSameLen(a, b)
	checkSameLen(out, a)
	s := len(a.limbs)
	t := make([]uint64, 2*s+1)

	// Multiplication phase.
	for i := 0; i < s; i++ {
		var carry uint64
		for j := 0; j < s; j++ {
			hi, lo := mathbits.Mul64(a.limbs[i], b.limbs[j])
			sum, c1 := mathbits.Add64(t[i+j], lo, 0)
			sum, c2 := mathbits.Add64(sum, carry, 0)
			t[i+j] = sum
			carry = hi + c1 + c2
		}
		t[i+s] += carry
	}

	// Reduction phase: clear the low s limbs one at a time.
	for i := 0; i < s; i++ {
		m := t[i] * c.n0inv
		var carry uint64
		for j := 0; j < s; j++ {
			hi, lo := mathbits.Mul64(m, c.n.limbs[j])
			sum, c1 := mathbits.Add64(t[i+j], lo, 0)
			sum, c2 := mathbits.Add64(sum, carry, 0)
			t[i+j] = sum
			carry = hi + c1 + c2
		}
		// Propagate the reduction carry up the remaining limbs.
		for k := i + s; carry != 0; k++ {
			sum, c1 := mathbits.Add64(t[k], carry, 0)
			t[k] = sum
			carry = c1
		}
	}

	c.finalSub(out, t[s:2*s], t[2*s])
}

// MulFIOS sets out = a·b·R⁻¹ mod N with the FIOS method: the partial
// product and the reduction are interleaved inside a single inner loop
// per word of a (one pass over b and N together).
func (c *CIOS) MulFIOS(out, a, b *Nat) {
	checkSameLen(a, b)
	checkSameLen(out, a)
	s := len(a.limbs)
	t := make([]uint64, s+2)

	for i := 0; i < s; i++ {
		ai := a.limbs[i]
		// t[0] + a_i·b_0 determines this pass's quotient digit.
		hi0, lo0 := mathbits.Mul64(ai, b.limbs[0])
		sum0, cc := mathbits.Add64(t[0], lo0, 0)
		m := sum0 * c.n0inv
		mhi, mlo := mathbits.Mul64(m, c.n.limbs[0])
		_, c2 := mathbits.Add64(sum0, mlo, 0)

		carryMul := hi0 + cc // carry chain of the a_i·b products
		carryRed := mhi + c2 // carry chain of the m·N products
		for j := 1; j < s; j++ {
			hi, lo := mathbits.Mul64(ai, b.limbs[j])
			sum, c1 := mathbits.Add64(t[j], lo, 0)
			sum, c3 := mathbits.Add64(sum, carryMul, 0)
			carryMul = hi + c1 + c3

			rhi, rlo := mathbits.Mul64(m, c.n.limbs[j])
			sum, c4 := mathbits.Add64(sum, rlo, 0)
			sum, c5 := mathbits.Add64(sum, carryRed, 0)
			carryRed = rhi + c4 + c5

			t[j-1] = sum
		}
		sum, c1 := mathbits.Add64(t[s], carryMul, 0)
		sum, c3 := mathbits.Add64(sum, carryRed, 0)
		t[s-1] = sum
		t[s] = t[s+1] + c1 + c3
		t[s+1] = 0
	}

	c.finalSub(out, t[:s], t[s])
}

// finalSub performs the shared branch-free conditional subtraction: the
// accumulator value is top·2^(64s) + limbs, in [0, 2N); keep limbs − N
// unless the accumulator was below N.
func (c *CIOS) finalSub(out *Nat, limbs []uint64, top uint64) {
	res := &Nat{limbs: limbs}
	borrow := out.SubInto(res, c.n)
	restore := (1 - top) & borrow
	mask := -restore
	for i := range out.limbs {
		out.limbs[i] = (res.limbs[i] & mask) | (out.limbs[i] &^ mask)
	}
}
