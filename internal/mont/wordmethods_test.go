package mont

import (
	"math/big"
	"math/rand"
	"testing"
)

// SOS and FIOS must agree with CIOS (and hence with math/big) on random
// operands across widths, including single-limb and boundary widths.
func TestWordMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for _, l := range []int{16, 63, 64, 65, 128, 511, 512, 1024} {
		n := randOdd(rng, l)
		c, err := NewCIOS(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 15; trial++ {
			xa := randBelow(rng, n)
			xb := randBelow(rng, n)
			a, _ := c.NewOperand(xa)
			b, _ := c.NewOperand(xb)
			ref := NewNat(c.Words())
			sos := NewNat(c.Words())
			fios := NewNat(c.Words())
			c.Mul(ref, a, b)
			c.MulSOS(sos, a, b)
			c.MulFIOS(fios, a, b)
			if !sos.Equal(ref) {
				t.Fatalf("l=%d: SOS diverges from CIOS:\n x=%s\n y=%s", l, xa, xb)
			}
			if !fios.Equal(ref) {
				t.Fatalf("l=%d: FIOS diverges from CIOS:\n x=%s\n y=%s", l, xa, xb)
			}
		}
	}
}

// Edge operands: zero, one, N-1, values with all-ones limbs.
func TestWordMethodsEdgeOperands(t *testing.T) {
	n, _ := new(big.Int).SetString("ffffffffffffffffffffffffffffff61", 16)
	c, err := NewCIOS(n)
	if err != nil {
		t.Fatal(err)
	}
	nm1 := new(big.Int).Sub(n, big.NewInt(1))
	edges := []*big.Int{big.NewInt(0), big.NewInt(1), big.NewInt(2), nm1,
		new(big.Int).Rsh(nm1, 1)}
	for _, xa := range edges {
		for _, xb := range edges {
			a, _ := c.NewOperand(xa)
			b, _ := c.NewOperand(xb)
			ref, sos, fios := NewNat(c.Words()), NewNat(c.Words()), NewNat(c.Words())
			c.Mul(ref, a, b)
			c.MulSOS(sos, a, b)
			c.MulFIOS(fios, a, b)
			if !sos.Equal(ref) || !fios.Equal(ref) {
				t.Fatalf("edge (%s, %s): methods disagree", xa, xb)
			}
		}
	}
}

// A full exponentiation chain over each method must land on the same
// result (stress for accumulated carry-handling differences).
func TestWordMethodsChained(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	n := randOdd(rng, 256)
	c, _ := NewCIOS(n)
	x := randBelow(rng, n)
	a, _ := c.NewOperand(x)

	run := func(mul func(out, p, q *Nat)) *Nat {
		acc := a.Clone()
		out := NewNat(c.Words())
		for i := 0; i < 50; i++ {
			mul(out, acc, a)
			acc, out = out, acc
		}
		return acc
	}
	ref := run(c.Mul)
	sos := run(c.MulSOS)
	fios := run(c.MulFIOS)
	if !sos.Equal(ref) || !fios.Equal(ref) {
		t.Fatal("chained word methods disagree")
	}
}
