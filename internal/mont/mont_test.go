package mont

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// randOdd returns a random odd modulus of exactly bits bits.
func randOdd(rng *rand.Rand, bitLen int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bitLen-1)))
	n.SetBit(n, bitLen-1, 1) // force exact length
	n.SetBit(n, 0, 1)        // force odd
	return n
}

func randBelow(rng *rand.Rand, bound *big.Int) *big.Int {
	return new(big.Int).Rand(rng, bound)
}

func TestNewCtxValidation(t *testing.T) {
	if _, err := NewCtx(big.NewInt(4)); err != ErrEvenModulus {
		t.Errorf("even modulus: err = %v", err)
	}
	if _, err := NewCtx(big.NewInt(1)); err != ErrModulusTooSmall {
		t.Errorf("modulus 1: err = %v", err)
	}
	if _, err := NewCtx(big.NewInt(0)); err != ErrModulusTooSmall {
		t.Errorf("modulus 0: err = %v", err)
	}
	if _, err := NewCtx(big.NewInt(-7)); err != ErrModulusTooSmall {
		t.Errorf("negative modulus: err = %v", err)
	}
	c, err := NewCtx(big.NewInt(7))
	if err != nil {
		t.Fatal(err)
	}
	if c.L != 3 || c.R.Int64() != 32 {
		t.Errorf("ctx for 7: L=%d R=%s", c.L, c.R)
	}
	if c.Iterations() != 5 {
		t.Errorf("Iterations = %d, want l+2 = 5", c.Iterations())
	}
}

// Algorithm 2's output must equal xyR⁻¹ mod N (up to a multiple of N
// below 2N) and must stay below 2N for inputs below 2N.
func TestMulMatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, l := range []int{4, 8, 16, 32, 64, 128, 256} {
		n := randOdd(rng, l)
		c, err := NewCtx(n)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			x := randBelow(rng, c.N2)
			y := randBelow(rng, c.N2)
			got := c.Mul(x, y)
			if got.Cmp(c.N2) >= 0 {
				t.Fatalf("l=%d: Mul out of bound: %s >= 2N", l, got)
			}
			want := c.MulClosedForm(x, y)
			if new(big.Int).Mod(got, n).Cmp(want) != 0 {
				t.Fatalf("l=%d: Mul(%s,%s) ≡ %s, want %s", l, x, y, got, want)
			}
		}
	}
}

func TestMulOperandBoundPanics(t *testing.T) {
	c, _ := NewCtx(big.NewInt(13))
	defer func() {
		if recover() == nil {
			t.Error("operand 2N did not panic")
		}
	}()
	c.Mul(big.NewInt(26), big.NewInt(1))
}

func TestToFromMontRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, l := range []int{8, 31, 64, 160, 512} {
		n := randOdd(rng, l)
		c, _ := NewCtx(n)
		for trial := 0; trial < 20; trial++ {
			x := randBelow(rng, n)
			xm := c.ToMont(x)
			if xm.Cmp(c.N2) >= 0 {
				t.Fatalf("ToMont out of bound")
			}
			// xm ≡ xR (mod N)
			want := new(big.Int).Mul(x, c.R)
			want.Mod(want, n)
			if new(big.Int).Mod(xm, n).Cmp(want) != 0 {
				t.Fatalf("ToMont wrong residue")
			}
			back := c.Reduce(c.FromMont(xm))
			if back.Cmp(x) != 0 {
				t.Fatalf("round trip: got %s want %s", back, x)
			}
		}
	}
}

// The chaining invariant of §3: FromMont output is ≤ N.
func TestFromMontAtMostN(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := randOdd(rng, 96)
	c, _ := NewCtx(n)
	for trial := 0; trial < 200; trial++ {
		x := randBelow(rng, c.N2)
		out := c.FromMont(x)
		if out.Cmp(c.N) > 0 {
			t.Fatalf("Mont(x,1) = %s > N", out)
		}
	}
}

func TestExpMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, l := range []int{8, 16, 64, 128, 256} {
		n := randOdd(rng, l)
		c, _ := NewCtx(n)
		for trial := 0; trial < 10; trial++ {
			m := randBelow(rng, n)
			e := randBelow(rng, n)
			if e.Sign() == 0 {
				e.SetInt64(1)
			}
			got, stats, err := c.Exp(m, e)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Exp(m, e, n)
			if got.Cmp(want) != 0 {
				t.Fatalf("l=%d: Exp mismatch", l)
			}
			if stats.Squares != e.BitLen()-1 {
				t.Errorf("squares = %d, want %d", stats.Squares, e.BitLen()-1)
			}
			wantMul := 0
			for i := e.BitLen() - 2; i >= 0; i-- {
				if e.Bit(i) == 1 {
					wantMul++
				}
			}
			if stats.Multiplies != wantMul {
				t.Errorf("multiplies = %d, want %d", stats.Multiplies, wantMul)
			}
			if stats.PreMuls != 1 || stats.PostMuls != 1 {
				t.Errorf("pre/post = %d/%d", stats.PreMuls, stats.PostMuls)
			}
			if stats.Total() != stats.Squares+stats.Multiplies+2 {
				t.Errorf("Total inconsistent")
			}
		}
	}
}

func TestExpEdgeCases(t *testing.T) {
	c, _ := NewCtx(big.NewInt(101))
	if _, _, err := c.Exp(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, _, err := c.Exp(big.NewInt(101), big.NewInt(3)); err == nil {
		t.Error("base = N accepted")
	}
	got, _, err := c.Exp(big.NewInt(0), big.NewInt(5))
	if err != nil || got.Sign() != 0 {
		t.Errorf("0^5 mod 101 = %v, err %v", got, err)
	}
	got, _, _ = c.Exp(big.NewInt(7), big.NewInt(1))
	if got.Int64() != 7 {
		t.Errorf("7^1 = %v", got)
	}
}

func TestAlgorithm1MatchesClosedForm(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, alpha := range []uint{1, 2, 4, 8, 16, 32} {
		for _, l := range []int{8, 16, 64, 160} {
			n := randOdd(rng, l)
			digits := (n.BitLen() + int(alpha) - 1) / int(alpha)
			r := new(big.Int).Lsh(big.NewInt(1), uint(digits)*alpha)
			rinv := new(big.Int).ModInverse(r, n)
			for trial := 0; trial < 10; trial++ {
				x := randBelow(rng, n)
				y := randBelow(rng, n)
				got, err := Algorithm1(x, y, n, alpha)
				if err != nil {
					t.Fatal(err)
				}
				want := new(big.Int).Mul(x, y)
				want.Mul(want, rinv).Mod(want, n)
				if got.Cmp(want) != 0 {
					t.Fatalf("alpha=%d l=%d: Algorithm1 mismatch", alpha, l)
				}
			}
		}
	}
}

func TestAlgorithm1Validation(t *testing.T) {
	n := big.NewInt(13)
	if _, err := Algorithm1(big.NewInt(1), big.NewInt(1), n, 0); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := Algorithm1(big.NewInt(1), big.NewInt(1), big.NewInt(4), 1); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := Algorithm1(big.NewInt(13), big.NewInt(1), n, 1); err == nil {
		t.Error("x = N accepted")
	}
}

// For alpha = 1 and odd N, N' must be 1 — the simplification the paper
// uses to erase the N' multiplication from the hardware.
func TestNPrimeRadix2IsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := randOdd(rng, 64)
		np, err := NPrime(n, 1)
		if err != nil {
			t.Fatal(err)
		}
		if np.Int64() != 1 {
			t.Fatalf("N' mod 2 = %s for N = %s", np, n)
		}
	}
}

func TestNPrimeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, alpha := range []uint{1, 2, 3, 8, 13, 32, 64} {
		mod := new(big.Int).Lsh(big.NewInt(1), alpha)
		for trial := 0; trial < 20; trial++ {
			n := randOdd(rng, 80)
			np, err := NPrime(n, alpha)
			if err != nil {
				t.Fatal(err)
			}
			// N·N' ≡ -1 mod 2^alpha
			prod := new(big.Int).Mul(n, np)
			prod.Add(prod, big.NewInt(1)).Mod(prod, mod)
			if prod.Sign() != 0 {
				t.Fatalf("alpha=%d: N·N'+1 ≢ 0 (N=%s N'=%s)", alpha, n, np)
			}
		}
	}
	if _, err := NPrime(big.NewInt(4), 8); err == nil {
		t.Error("NPrime of even N accepted")
	}
}

func TestWalterBound(t *testing.T) {
	n := big.NewInt(1000001) // odd, 20 bits
	r22 := new(big.Int).Lsh(big.NewInt(1), 22)
	r21 := new(big.Int).Lsh(big.NewInt(1), 21)
	if !WalterBoundOK(r22, n) {
		t.Error("2^22 > 4N should satisfy Walter bound")
	}
	if WalterBoundOK(r21, n) {
		t.Error("2^21 < 4N should fail Walter bound")
	}
	if MinExponentR(n) != 22 {
		t.Errorf("MinExponentR = %d", MinExponentR(n))
	}
	if !IwamuraBoundOK(r22, n) {
		t.Error("Iwamura bound should hold for 2^(l+2)")
	}
	num, den := OutputBound(4)
	if num != 8 || den != 4 {
		t.Errorf("OutputBound(4) = %d/%d", num, den)
	}
}

// MinExponentR must always be bitlen(N)+2 for odd N — the paper's fixed
// parameter choice.
func TestQuickMinExponentR(t *testing.T) {
	f := func(raw uint64) bool {
		n := new(big.Int).SetUint64(raw | 1)
		if n.Cmp(big.NewInt(3)) < 0 {
			return true
		}
		return MinExponentR(n) == n.BitLen()+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ChainClosed must hold exactly when Walter's bound holds, for power-of-
// two R near the boundary.
func TestChainClosedBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := randOdd(rng, 48)
		rGood := new(big.Int).Lsh(big.NewInt(1), uint(n.BitLen()+2))
		rBad := new(big.Int).Lsh(big.NewInt(1), uint(n.BitLen()+1))
		if !ChainClosed(rGood, n) {
			t.Fatalf("R=2^(l+2) should close the chain for N=%s", n)
		}
		if ChainClosed(rBad, n) {
			t.Fatalf("R=2^(l+1) should not close the chain for N=%s", n)
		}
	}
}

// Property test: for arbitrary operands below 2N the Algorithm-2 output
// bound and residue both hold.
func TestQuickMulInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := randOdd(rng, 61)
	c, _ := NewCtx(n)
	f := func(a, b uint64) bool {
		x := new(big.Int).SetUint64(a)
		x.Mod(x, c.N2)
		y := new(big.Int).SetUint64(b)
		y.Mod(y, c.N2)
		got := c.Mul(x, y)
		if got.Cmp(c.N2) >= 0 {
			return false
		}
		return new(big.Int).Mod(got, n).Cmp(c.MulClosedForm(x, y)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
