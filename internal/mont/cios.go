package mont

import (
	"errors"
	"math/big"
	mathbits "math/bits"
)

// CIOS is a word-level (radix 2^64) Montgomery multiplier using the
// Coarsely Integrated Operand Scanning method. It is the software
// high-radix counterpart of the paper's bit-serial array: where the
// systolic hardware processes one bit of x per two clock cycles, CIOS
// processes one 64-bit word of x per pass. The benchmark harness uses it
// to ground the paper's §2 discussion of radix trade-offs (⌈(n+2)/α⌉
// iterations for radix 2^α).
//
// Like the paper's Algorithm 2, the multiplication core contains no
// data-dependent branches; the final subtraction is performed as a
// constant-time conditional move.
type CIOS struct {
	n      *Nat     // modulus
	nWords int      // limb count
	n0inv  uint64   // -N⁻¹ mod 2^64
	rr     *Nat     // R² mod N with R = 2^(64·nWords)
	nBig   *big.Int // for conversions only
}

// NewCIOS builds a word-level Montgomery context for the odd modulus n.
func NewCIOS(n *big.Int) (*CIOS, error) {
	if n.Sign() <= 0 || n.Cmp(big.NewInt(3)) < 0 {
		return nil, ErrModulusTooSmall
	}
	if n.Bit(0) == 0 {
		return nil, ErrEvenModulus
	}
	nWords := (n.BitLen() + 63) / 64
	c := &CIOS{
		n:      natFromBig(n, nWords),
		nWords: nWords,
		nBig:   new(big.Int).Set(n),
	}
	c.n0inv = negInvMod64(c.n.limbs[0])

	r := new(big.Int).Lsh(big.NewInt(1), uint(64*nWords))
	rr := new(big.Int).Mul(r, r)
	rr.Mod(rr, n)
	c.rr = natFromBig(rr, nWords)
	return c, nil
}

// negInvMod64 returns -n⁻¹ mod 2^64 for odd n, by Hensel lifting.
// Five Newton steps double the precision 2 → 4 → 8 → 16 → 32 → 64.
func negInvMod64(n uint64) uint64 {
	inv := n // correct mod 2^2 for odd n? inv·n ≡ 1 mod 4 holds: n·n = 1 mod 8 for odd n, so start even stronger.
	// Newton: inv <- inv·(2 - n·inv), doubling correct bits each round.
	for i := 0; i < 5; i++ {
		inv *= 2 - n*inv
	}
	return -inv
}

// Words returns the limb count of the context.
func (c *CIOS) Words() int { return c.nWords }

// NewOperand converts x ∈ [0, N-1] into a context-sized Nat.
func (c *CIOS) NewOperand(x *big.Int) (*Nat, error) {
	if x.Sign() < 0 || x.Cmp(c.nBig) >= 0 {
		return nil, errors.New("mont: CIOS operand outside [0, N-1]")
	}
	return natFromBig(x, c.nWords), nil
}

// Big converts an operand back to big.Int form.
func (c *CIOS) Big(v *Nat) *big.Int {
	return new(big.Int).SetBytes(v.Bytes())
}

// Mul sets out = a·b·R⁻¹ mod N with the CIOS method. out must not alias
// a or b. Inputs and output are in [0, N-1].
func (c *CIOS) Mul(out, a, b *Nat) {
	checkSameLen(a, b)
	checkSameLen(out, a)
	s := len(a.limbs)
	// t has s+2 limbs: the running accumulator of Algorithm 1 with α=64.
	t := make([]uint64, s+2)
	for i := 0; i < s; i++ {
		// t += a_i · b
		var carry uint64
		for j := 0; j < s; j++ {
			hi, lo := mathbits.Mul64(a.limbs[i], b.limbs[j])
			sum, c1 := mathbits.Add64(t[j], lo, 0)
			sum, c2 := mathbits.Add64(sum, carry, 0)
			t[j] = sum
			carry = hi + c1 + c2 // cannot overflow: hi ≤ 2^64-2
		}
		sum, c1 := mathbits.Add64(t[s], carry, 0)
		t[s] = sum
		t[s+1] += c1

		// m = t_0 · n0inv mod 2^64; t += m·N; t >>= 64
		m := t[0] * c.n0inv
		hi, lo := mathbits.Mul64(m, c.n.limbs[0])
		_, c1 = mathbits.Add64(t[0], lo, 0)
		carry = hi + c1
		for j := 1; j < s; j++ {
			hi, lo := mathbits.Mul64(m, c.n.limbs[j])
			sum, c2 := mathbits.Add64(t[j], lo, 0)
			sum, c3 := mathbits.Add64(sum, carry, 0)
			t[j-1] = sum
			carry = hi + c2 + c3
		}
		sum, c1 = mathbits.Add64(t[s], carry, 0)
		t[s-1] = sum
		t[s] = t[s+1] + c1
		t[s+1] = 0
	}
	// Final conditional subtraction, branch-free: the accumulator value is
	// top·2^(64s) + res and lies in [0, 2N). Subtract N and keep the
	// difference unless the accumulator was below N (top == 0 and the
	// subtraction borrowed), in which case restore res.
	res := &Nat{limbs: t[:s]}
	top := t[s]
	borrow := out.SubInto(res, c.n)
	restore := (1 - top) & borrow // 1 when accumulator < N
	mask := -restore              // all-ones to restore, zero to keep t-N
	for i := range out.limbs {
		out.limbs[i] = (res.limbs[i] & mask) | (out.limbs[i] &^ mask)
	}
}

// ToMont maps x ∈ [0, N-1] into the Montgomery domain xR mod N.
func (c *CIOS) ToMont(out, x *Nat) { c.Mul(out, x, c.rr) }

// FromMont maps a Montgomery-domain value back: Mont(x, 1).
func (c *CIOS) FromMont(out, x *Nat) {
	one := NatFromUint64(1, c.nWords)
	c.Mul(out, x, one)
}

// Exp computes m^e mod N by left-to-right square-and-multiply over CIOS
// multiplications, mirroring Algorithm 3.
func (c *CIOS) Exp(m *Nat, e *big.Int) (*Nat, error) {
	if e.Sign() <= 0 {
		return nil, errors.New("mont: exponent must be positive")
	}
	am := NewNat(c.nWords)
	c.ToMont(am, m)
	acc := am.Clone()
	tmp := NewNat(c.nWords)
	for i := e.BitLen() - 2; i >= 0; i-- {
		c.Mul(tmp, acc, acc)
		acc, tmp = tmp, acc
		if e.Bit(i) == 1 {
			c.Mul(tmp, acc, am)
			acc, tmp = tmp, acc
		}
	}
	out := NewNat(c.nWords)
	c.FromMont(out, acc)
	return out, nil
}

func natFromBig(x *big.Int, nWords int) *Nat {
	return NatFromBytes(x.Bytes(), nWords)
}
