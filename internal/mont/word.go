package mont

import (
	"math/big"
)

// WordParams is the word-level (radix-2^64) precompute for one modulus:
// everything the high-radix CIOS fast path (internal/highradix.Word)
// needs that depends only on N. It generalizes the paper's host-side
// pre-processing — where the radix-2 design needs R² mod N and nothing
// else (N' degenerates to 1 at α = 1, §2), the radix-2^α design pays for
// the full N' = -N⁻¹ mod 2^α inverse and an R² against a word-aligned R.
//
// The limb count S is the smallest with 64·S ≥ l+2, so the word-level
// Montgomery parameter R = 2^(64·S) ≥ 2^(l+2) satisfies Walter's
// no-final-subtraction bound R > 4N exactly as the bit-serial design's
// does: operands in [0, 2N) multiply to results in [0, 2N) with no
// conditional subtraction on the hot path.
//
// A WordParams is immutable after construction and safe to share across
// goroutines; obtain one from Ctx.Word, which builds it lazily once per
// context and caches it.
type WordParams struct {
	L     int      // modulus bit length
	S     int      // limb count: smallest S with 64·S ≥ L+2 (⇒ R > 4N)
	N     []uint64 // modulus, S limbs little-endian
	N0Inv uint64   // -N⁻¹ mod 2^64 (the α=64 quotient constant N')
	RR    []uint64 // R² mod N with R = 2^(64·S), S limbs
	Adj   []uint64 // 2^(2·64·S - (L+2)) mod N: word-R → paper-R conversion

	R    *big.Int // 2^(64·S)
	NBig *big.Int // the modulus (shared with the owning Ctx; immutable)
	N2   *big.Int // 2N, the operand/result bound
}

// Word returns the word-level precompute for this context, building it
// on first use. The result is cached on the Ctx — one inversion and two
// reductions per modulus, ever — and is immutable, so it is safe to
// call from every worker core sharing the Ctx.
func (c *Ctx) Word() *WordParams {
	c.wordOnce.Do(func() { c.word = newWordParams(c) })
	return c.word
}

func newWordParams(c *Ctx) *WordParams {
	s := (c.L + 2 + 63) / 64
	r := new(big.Int).Lsh(big.NewInt(1), uint(64*s))
	rr := new(big.Int).Mul(r, r)
	rr.Mod(rr, c.N)
	// Adj converts a word-R Montgomery product chain back to the paper's
	// R = 2^(l+2) semantics: Mul_w(Mul_w(x, y), Adj) ≡ x·y·2^-(l+2)
	// (mod N), since the two word-level divisions by 2^(64·S) are
	// cancelled by Adj's 2^(2·64·S) up to the 2^(l+2) the paper divides
	// out.
	adj := new(big.Int).Lsh(big.NewInt(1), uint(2*64*s-(c.L+2)))
	adj.Mod(adj, c.N)
	p := &WordParams{
		L:    c.L,
		S:    s,
		N:    WordsFromBig(c.N, s),
		RR:   WordsFromBig(rr, s),
		Adj:  WordsFromBig(adj, s),
		R:    r,
		NBig: c.N,
		N2:   c.N2,
	}
	p.N0Inv = negInvMod64(p.N[0])
	return p
}

// WordsFromBig renders x into s little-endian 64-bit limbs. It panics
// if x is negative or does not fit — a bound violation by the caller.
func WordsFromBig(x *big.Int, s int) []uint64 {
	if x.Sign() < 0 {
		panic("mont: WordsFromBig of negative value")
	}
	if x.BitLen() > 64*s {
		panic("mont: WordsFromBig value does not fit")
	}
	out := make([]uint64, s)
	WordsSetBig(out, x)
	return out
}

// WordsSetBig fills out (little-endian limbs) with x, zero-padding the
// top. It panics if x is negative or does not fit — the allocation-free
// twin of WordsFromBig for hot-path callers with reusable buffers.
func WordsSetBig(out []uint64, x *big.Int) {
	if x.Sign() < 0 || x.BitLen() > 64*len(out) {
		panic("mont: WordsSetBig value out of range")
	}
	for i := range out {
		out[i] = 0
	}
	for i, w := range x.Bits() {
		if bigWordBits == 64 {
			out[i] = uint64(w)
		} else {
			out[i/2] |= uint64(w) << (32 * uint(i%2))
		}
	}
}

// BigFromWords converts little-endian limbs back to a big.Int.
func BigFromWords(v []uint64) *big.Int {
	buf := make([]byte, 8*len(v))
	for i, l := range v {
		for b := 0; b < 8; b++ {
			buf[len(buf)-1-(8*i+b)] = byte(l >> (8 * b))
		}
	}
	return new(big.Int).SetBytes(buf)
}

const bigWordBits = 32 << (^big.Word(0) >> 63)
