package mont

import (
	"math/big"
	"testing"
)

// FuzzAlgorithm2 checks the full Montgomery invariant set on arbitrary
// operand bytes: output < 2N, correct residue, agreement between the
// bit-serial and CIOS implementations. Run with `go test -fuzz
// FuzzAlgorithm2 ./internal/mont` for an open-ended search; the seed
// corpus runs under plain `go test`.
func FuzzAlgorithm2(f *testing.F) {
	f.Add([]byte{0x0d}, []byte{0x05}, []byte{0x09})
	f.Add([]byte{0xff, 0xff}, []byte{0x12, 0x34}, []byte{0xab, 0xcd})
	f.Add([]byte{0x01, 0x00, 0x01}, []byte{0xfe}, []byte{0x02})
	f.Fuzz(func(t *testing.T, nb, xb, yb []byte) {
		n := new(big.Int).SetBytes(nb)
		n.SetBit(n, 0, 1) // force odd
		if n.Cmp(big.NewInt(3)) < 0 || n.BitLen() > 256 {
			t.Skip()
		}
		ctx, err := NewCtx(n)
		if err != nil {
			t.Skip()
		}
		x := new(big.Int).SetBytes(xb)
		x.Mod(x, ctx.N2)
		y := new(big.Int).SetBytes(yb)
		y.Mod(y, ctx.N2)

		got := ctx.Mul(x, y)
		if got.Cmp(ctx.N2) >= 0 || got.Sign() < 0 {
			t.Fatalf("output bound violated: %s", got)
		}
		want := ctx.MulClosedForm(x, y)
		if new(big.Int).Mod(got, n).Cmp(want) != 0 {
			t.Fatalf("wrong residue: N=%s x=%s y=%s", n, x, y)
		}

		// Cross-check CIOS on canonical operands.
		cios, err := NewCIOS(n)
		if err != nil {
			t.Fatal(err)
		}
		xc := new(big.Int).Mod(x, n)
		yc := new(big.Int).Mod(y, n)
		a, _ := cios.NewOperand(xc)
		b, _ := cios.NewOperand(yc)
		out := NewNat(cios.Words())
		cios.Mul(out, a, b)
		r := new(big.Int).Lsh(big.NewInt(1), uint(64*cios.Words()))
		rinv := new(big.Int).ModInverse(r, n)
		wantC := new(big.Int).Mul(xc, yc)
		wantC.Mul(wantC, rinv).Mod(wantC, n)
		if cios.Big(out).Cmp(wantC) != 0 {
			t.Fatalf("CIOS wrong: N=%s x=%s y=%s", n, xc, yc)
		}
	})
}

// FuzzNPrime checks the Hensel inverse on arbitrary odd inputs.
func FuzzNPrime(f *testing.F) {
	f.Add([]byte{0x0d}, uint8(8))
	f.Add([]byte{0xff, 0x01}, uint8(32))
	f.Fuzz(func(t *testing.T, nb []byte, alpha uint8) {
		if alpha == 0 || alpha > 64 {
			t.Skip()
		}
		n := new(big.Int).SetBytes(nb)
		n.SetBit(n, 0, 1)
		if n.BitLen() > 512 {
			t.Skip()
		}
		np, err := NPrime(n, uint(alpha))
		if err != nil {
			t.Fatal(err)
		}
		mod := new(big.Int).Lsh(big.NewInt(1), uint(alpha))
		check := new(big.Int).Mul(n, np)
		check.Add(check, big.NewInt(1)).Mod(check, mod)
		if check.Sign() != 0 {
			t.Fatalf("N·N'+1 ≢ 0 mod 2^%d for N=%s", alpha, n)
		}
	})
}
