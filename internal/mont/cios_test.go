package mont

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNatBytesRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "ff", "100", "deadbeefcafebabe", "10000000000000000"}
	for _, cs := range cases {
		x, _ := new(big.Int).SetString(cs, 16)
		n := NatFromBytes(x.Bytes(), 3)
		if got := new(big.Int).SetBytes(n.Bytes()); got.Cmp(x) != 0 {
			t.Errorf("%s: round trip got %s", cs, got.Text(16))
		}
	}
}

func TestNatFromBytesOverflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized NatFromBytes did not panic")
		}
	}()
	b := bytes.Repeat([]byte{0xff}, 9)
	NatFromBytes(b, 1)
}

func TestNatCmpEqualBit(t *testing.T) {
	a := NatFromUint64(5, 2)
	b := NatFromUint64(9, 2)
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a.Clone()) != 0 {
		t.Error("Cmp ordering wrong")
	}
	if a.Equal(b) || !a.Equal(a.Clone()) {
		t.Error("Equal wrong")
	}
	if a.Bit(0) != 1 || a.Bit(1) != 0 || a.Bit(2) != 1 || a.Bit(200) != 0 {
		t.Error("Bit wrong")
	}
	if a.BitLen() != 3 || NewNat(2).BitLen() != 0 {
		t.Error("BitLen wrong")
	}
	if !NewNat(4).IsZero() || a.IsZero() {
		t.Error("IsZero wrong")
	}
}

func TestNatAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 200; trial++ {
		xa := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 192))
		xb := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 192))
		a := NatFromBytes(xa.Bytes(), 3)
		b := NatFromBytes(xb.Bytes(), 3)
		sum := NewNat(3)
		carry := sum.AddInto(a, b)
		want := new(big.Int).Add(xa, xb)
		mod := new(big.Int).Lsh(big.NewInt(1), 192)
		wantCarry := uint64(0)
		if want.Cmp(mod) >= 0 {
			wantCarry = 1
			want.Sub(want, mod)
		}
		if carry != wantCarry || new(big.Int).SetBytes(sum.Bytes()).Cmp(want) != 0 {
			t.Fatalf("AddInto mismatch")
		}

		diff := NewNat(3)
		borrow := diff.SubInto(a, b)
		if xa.Cmp(xb) >= 0 {
			if borrow != 0 {
				t.Fatal("unexpected borrow")
			}
			want := new(big.Int).Sub(xa, xb)
			if new(big.Int).SetBytes(diff.Bytes()).Cmp(want) != 0 {
				t.Fatal("SubInto mismatch")
			}
		} else if borrow != 1 {
			t.Fatal("missing borrow")
		}
	}
}

func TestNatCondSub(t *testing.T) {
	a := NatFromUint64(10, 2)
	b := NatFromUint64(3, 2)
	out := NewNat(2)
	out.CondSubInto(a, b, 0)
	if !out.Equal(a) {
		t.Error("choice=0 should keep a")
	}
	out.CondSubInto(a, b, 1)
	if !out.Equal(NatFromUint64(7, 2)) {
		t.Error("choice=1 should subtract")
	}
	defer func() {
		if recover() == nil {
			t.Error("choice=2 did not panic")
		}
	}()
	out.CondSubInto(a, b, 2)
}

func TestNatMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("limb mismatch did not panic")
		}
	}()
	NewNat(2).AddInto(NewNat(2), NewNat(3))
}

func TestNegInvMod64(t *testing.T) {
	for _, n := range []uint64{1, 3, 5, 0xffffffffffffffff, 0x123456789abcdef1} {
		inv := negInvMod64(n)
		if n*inv+1 != 0 {
			t.Errorf("negInvMod64(%#x): n·inv+1 = %#x, want 0", n, n*inv+1)
		}
	}
}

func TestCIOSValidation(t *testing.T) {
	if _, err := NewCIOS(big.NewInt(4)); err != ErrEvenModulus {
		t.Errorf("even: %v", err)
	}
	if _, err := NewCIOS(big.NewInt(1)); err != ErrModulusTooSmall {
		t.Errorf("small: %v", err)
	}
	c, err := NewCIOS(big.NewInt(101))
	if err != nil {
		t.Fatal(err)
	}
	if c.Words() != 1 {
		t.Errorf("Words = %d", c.Words())
	}
	if _, err := c.NewOperand(big.NewInt(101)); err == nil {
		t.Error("operand = N accepted")
	}
	if _, err := c.NewOperand(big.NewInt(-1)); err == nil {
		t.Error("negative operand accepted")
	}
}

func TestCIOSMulMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, l := range []int{16, 63, 64, 65, 128, 512, 1024} {
		n := randOdd(rng, l)
		c, err := NewCIOS(n)
		if err != nil {
			t.Fatal(err)
		}
		r := new(big.Int).Lsh(big.NewInt(1), uint(64*c.Words()))
		rinv := new(big.Int).ModInverse(r, n)
		for trial := 0; trial < 20; trial++ {
			xa := randBelow(rng, n)
			xb := randBelow(rng, n)
			a, _ := c.NewOperand(xa)
			b, _ := c.NewOperand(xb)
			out := NewNat(c.Words())
			c.Mul(out, a, b)
			want := new(big.Int).Mul(xa, xb)
			want.Mul(want, rinv).Mod(want, n)
			if c.Big(out).Cmp(want) != 0 {
				t.Fatalf("l=%d CIOS Mul mismatch: got %s want %s", l, c.Big(out), want)
			}
		}
	}
}

func TestCIOSToFromMont(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := randOdd(rng, 256)
	c, _ := NewCIOS(n)
	for trial := 0; trial < 50; trial++ {
		x := randBelow(rng, n)
		op, _ := c.NewOperand(x)
		xm, back := NewNat(c.Words()), NewNat(c.Words())
		c.ToMont(xm, op)
		c.FromMont(back, xm)
		if c.Big(back).Cmp(x) != 0 {
			t.Fatalf("CIOS domain round trip failed")
		}
	}
}

func TestCIOSExpMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, l := range []int{32, 128, 512, 1024} {
		n := randOdd(rng, l)
		c, _ := NewCIOS(n)
		m := randBelow(rng, n)
		e := randBelow(rng, n)
		if e.Sign() == 0 {
			e.SetInt64(3)
		}
		op, _ := c.NewOperand(m)
		got, err := c.Exp(op, e)
		if err != nil {
			t.Fatal(err)
		}
		want := new(big.Int).Exp(m, e, n)
		if c.Big(got).Cmp(want) != 0 {
			t.Fatalf("l=%d CIOS Exp mismatch", l)
		}
	}
	c, _ := NewCIOS(big.NewInt(13))
	if _, err := c.Exp(NatFromUint64(2, 1), big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
}

// Cross-check the two independent Montgomery implementations (bit-serial
// Algorithm 2 and word-level CIOS) against each other through full
// exponentiations.
func TestCrossImplementationExp(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		n := randOdd(rng, 160)
		ctx, _ := NewCtx(n)
		cios, _ := NewCIOS(n)
		m := randBelow(rng, n)
		e := randBelow(rng, n)
		if e.Sign() == 0 {
			e.SetInt64(5)
		}
		a, _, err := ctx.Exp(m, e)
		if err != nil {
			t.Fatal(err)
		}
		op, _ := cios.NewOperand(m)
		b, err := cios.Exp(op, e)
		if err != nil {
			t.Fatal(err)
		}
		if a.Cmp(cios.Big(b)) != 0 {
			t.Fatalf("implementations disagree: %s vs %s", a, cios.Big(b))
		}
	}
}

// Property: CIOS multiplication result is always canonical (< N).
func TestQuickCIOSCanonical(t *testing.T) {
	n, _ := new(big.Int).SetString("f000000000000000000000000000000d", 16)
	c, err := NewCIOS(n)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a0, a1, b0, b1 uint64) bool {
		xa := new(big.Int).SetUint64(a1)
		xa.Lsh(xa, 64).Or(xa, new(big.Int).SetUint64(a0)).Mod(xa, n)
		xb := new(big.Int).SetUint64(b1)
		xb.Lsh(xb, 64).Or(xb, new(big.Int).SetUint64(b0)).Mod(xb, n)
		a, _ := c.NewOperand(xa)
		b, _ := c.NewOperand(xb)
		out := NewNat(c.Words())
		c.Mul(out, a, b)
		return c.Big(out).Cmp(n) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
