package mont

import "math/big"

// Bound analysis for the Montgomery parameter R, following §2–3 of the
// paper and Walter (CT-RSA 2002). The paper's central algorithmic claim
// is that R = 2^(l+2) (i.e. R > 4N) admits inputs up to 2N with outputs
// below 2N, so the l+2-iteration loop needs no final subtraction, whereas
// Blum–Paar's R = 2^(l+3) costs one extra iteration per multiplication.

// WalterBoundOK reports whether R satisfies Walter's no-final-subtraction
// condition R > 4N (equivalently R ≥ 4N + 1; the paper writes 4N < R).
func WalterBoundOK(r, n *big.Int) bool {
	four := new(big.Int).Lsh(n, 2)
	return r.Cmp(four) > 0
}

// IwamuraBoundOK reports whether R satisfies the earlier, weaker
// Iwamura–Matsumoto–Imai condition R ≥ 2^(n+2) with N < 2^n, i.e.
// R ≥ 4·2^(bitlen(N)) — sufficient but not tight.
func IwamuraBoundOK(r, n *big.Int) bool {
	lim := new(big.Int).Lsh(big.NewInt(1), uint(n.BitLen()+2))
	return r.Cmp(lim) >= 0
}

// MinExponentR returns the minimal exponent r such that R = 2^r satisfies
// Walter's bound 4N < R for the given modulus. For an l-bit N this is
// l + 2 unless 4N is itself a power of two boundary case (N of the form
// 2^l - fits exactly), which cannot occur for odd N > 1; hence the paper's
// fixed choice r = l + 2.
func MinExponentR(n *big.Int) int {
	four := new(big.Int).Lsh(n, 2)
	// smallest r with 2^r > 4N
	r := four.BitLen()
	probe := new(big.Int).Lsh(big.NewInt(1), uint(r))
	if probe.Cmp(four) <= 0 {
		r++
	}
	return r
}

// OutputBound returns the paper's Eq. (2) worst-case bound on the output
// of one Montgomery multiplication with inputs < 2N and R ≥ kN:
// T < (4/k)·N + N, expressed as a rational (num, den) multiple of N.
// For k ≥ 4 the bound is ≤ 2N, which is the chaining invariant.
func OutputBound(k int64) (num, den int64) {
	// T < (4/k + 1)·N = ((4 + k)/k)·N
	return 4 + k, k
}

// ChainClosed reports whether, for the given R and N, the interval
// [0, 2N) is closed under Mont multiplication — the exact property a
// hardware exponentiator needs to feed outputs straight back as inputs.
// It evaluates the worst case of Eq. (2): T_max = ((2N-1)² + R·N)/R,
// requiring T_max < 2N.
func ChainClosed(r, n *big.Int) bool {
	x := new(big.Int).Lsh(n, 1)
	x.Sub(x, big.NewInt(1)) // 2N - 1
	t := new(big.Int).Mul(x, x)
	rn := new(big.Int).Mul(r, n)
	t.Add(t, rn)
	t.Div(t, r) // floor((XY + RN)/R) ≥ any reachable T
	return t.Cmp(new(big.Int).Lsh(n, 1)) < 0
}
