package mont

import (
	"fmt"
	mathbits "math/bits"
)

// Nat is an unsigned multiprecision integer stored as 64-bit limbs,
// least-significant first. It is the repository's own arithmetic core,
// independent of math/big, used by the word-level (CIOS) Montgomery
// multiplier — the software analogue of the paper's high-radix variants.
// All values of a given modulus context carry the same limb count, which
// keeps the CIOS loops branch-free in the data (the same property the
// paper's hardware gets from dropping the final subtraction).
type Nat struct {
	limbs []uint64
}

// NewNat returns a zero Nat with n limbs.
func NewNat(n int) *Nat {
	return &Nat{limbs: make([]uint64, n)}
}

// NatFromUint64 returns a Nat with n limbs holding x.
func NatFromUint64(x uint64, n int) *Nat {
	v := NewNat(n)
	if n > 0 {
		v.limbs[0] = x
	} else if x != 0 {
		panic("mont: NatFromUint64 with zero limbs")
	}
	return v
}

// NatFromBytes parses big-endian bytes into a Nat with n limbs.
// It panics if the value does not fit — a bound violation by the caller.
func NatFromBytes(b []byte, n int) *Nat {
	v := NewNat(n)
	for i, by := range b {
		shift := uint(8 * (len(b) - 1 - i))
		limb := int(shift / 64)
		if by != 0 && limb >= n {
			panic(fmt.Sprintf("mont: NatFromBytes value does not fit in %d limbs", n))
		}
		if limb < n {
			v.limbs[limb] |= uint64(by) << (shift % 64)
		}
	}
	return v
}

// Bytes renders v as minimal big-endian bytes (empty for zero).
func (v *Nat) Bytes() []byte {
	out := make([]byte, 8*len(v.limbs))
	for i, l := range v.limbs {
		for b := 0; b < 8; b++ {
			out[len(out)-1-(8*i+b)] = byte(l >> (8 * b))
		}
	}
	for len(out) > 0 && out[0] == 0 {
		out = out[1:]
	}
	return out
}

// Limbs returns the number of limbs.
func (v *Nat) Limbs() int { return len(v.limbs) }

// Clone returns an independent copy.
func (v *Nat) Clone() *Nat {
	w := NewNat(len(v.limbs))
	copy(w.limbs, v.limbs)
	return w
}

// IsZero reports whether v is zero. Constant-time in the limb count.
func (v *Nat) IsZero() bool {
	var acc uint64
	for _, l := range v.limbs {
		acc |= l
	}
	return acc == 0
}

// Cmp compares v and w (which must have equal limb counts),
// returning -1, 0 or +1.
func (v *Nat) Cmp(w *Nat) int {
	checkSameLen(v, w)
	for i := len(v.limbs) - 1; i >= 0; i-- {
		switch {
		case v.limbs[i] < w.limbs[i]:
			return -1
		case v.limbs[i] > w.limbs[i]:
			return +1
		}
	}
	return 0
}

// Equal reports whether v == w, in time independent of the values.
func (v *Nat) Equal(w *Nat) bool {
	checkSameLen(v, w)
	var acc uint64
	for i := range v.limbs {
		acc |= v.limbs[i] ^ w.limbs[i]
	}
	return acc == 0
}

// Bit returns bit i of v (0 beyond the top limb).
func (v *Nat) Bit(i int) uint {
	if i < 0 {
		panic("mont: negative bit index")
	}
	limb := i / 64
	if limb >= len(v.limbs) {
		return 0
	}
	return uint(v.limbs[limb]>>(i%64)) & 1
}

// BitLen returns the position of the highest set bit plus one.
func (v *Nat) BitLen() int {
	for i := len(v.limbs) - 1; i >= 0; i-- {
		if v.limbs[i] != 0 {
			return 64*i + mathbits.Len64(v.limbs[i])
		}
	}
	return 0
}

// AddInto sets v = a + b and returns the outgoing carry.
// All three must have the same limb count; v may alias a or b.
func (v *Nat) AddInto(a, b *Nat) uint64 {
	checkSameLen(a, b)
	checkSameLen(v, a)
	var carry uint64
	for i := range v.limbs {
		s, c := mathbits.Add64(a.limbs[i], b.limbs[i], carry)
		v.limbs[i] = s
		carry = c
	}
	return carry
}

// SubInto sets v = a - b and returns the outgoing borrow (1 if a < b).
// v may alias a or b.
func (v *Nat) SubInto(a, b *Nat) uint64 {
	checkSameLen(a, b)
	checkSameLen(v, a)
	var borrow uint64
	for i := range v.limbs {
		d, br := mathbits.Sub64(a.limbs[i], b.limbs[i], borrow)
		v.limbs[i] = d
		borrow = br
	}
	return borrow
}

// CondSubInto sets v = a - b if choice is 1, v = a if choice is 0,
// without branching on choice. It returns the borrow of the real
// subtraction regardless of choice. This is the software counterpart of a
// hardware conditional-subtract stage; the paper's Algorithm 2 never needs
// it, and internal/sca uses that contrast in its timing experiments.
func (v *Nat) CondSubInto(a, b *Nat, choice uint64) uint64 {
	checkSameLen(a, b)
	checkSameLen(v, a)
	if choice > 1 {
		panic("mont: CondSubInto choice must be 0 or 1")
	}
	mask := -choice // all-ones when choice == 1
	var borrow uint64
	for i := range v.limbs {
		d, br := mathbits.Sub64(a.limbs[i], b.limbs[i], borrow)
		borrow = br
		v.limbs[i] = (d & mask) | (a.limbs[i] &^ mask)
	}
	return borrow
}

func checkSameLen(a, b *Nat) {
	if len(a.limbs) != len(b.limbs) {
		panic(fmt.Sprintf("mont: limb count mismatch %d vs %d", len(a.limbs), len(b.limbs)))
	}
}
