package mont

import (
	"errors"
	"math/big"
)

// ExpStats records how a modular exponentiation decomposed into
// Montgomery multiplications. The cycle model in internal/expo uses the
// same decomposition, so these counters are also the reference for its
// cycle accounting (squares and multiplies each cost 3l+4 clock cycles in
// the paper's circuit).
type ExpStats struct {
	Squares    int // squarings performed (one per exponent bit below the MSB)
	Multiplies int // conditional multiplications (one per set bit below the MSB)
	PreMuls    int // Montgomery multiplications spent entering the domain
	PostMuls   int // Montgomery multiplications spent leaving the domain
}

// Total returns the total number of Montgomery multiplications.
func (s ExpStats) Total() int { return s.Squares + s.Multiplies + s.PreMuls + s.PostMuls }

// Exp computes m^e mod N with the paper's Algorithm 3 (left-to-right
// square-and-multiply) over Montgomery multiplication without final
// subtraction. m must lie in [0, N-1] and e must be positive.
//
// The sequence matches §4.5 of the paper exactly: one pre-multiplication
// by R² mod N maps m to mR mod 2N, every loop step is a Montgomery square
// optionally followed by a Montgomery multiply, and a final multiplication
// by 1 strips the R factor. All intermediate values stay below 2N and no
// subtraction ever happens — the property that makes the circuit's
// control flow data-independent.
func (c *Ctx) Exp(m, e *big.Int) (*big.Int, ExpStats, error) {
	var stats ExpStats
	if e.Sign() <= 0 {
		return nil, stats, errors.New("mont: exponent must be positive")
	}
	if m.Sign() < 0 || m.Cmp(c.N) >= 0 {
		return nil, stats, errors.New("mont: base must be in [0, N-1]")
	}
	// Enter the Montgomery domain: A = mR mod 2N.
	a := c.ToMont(m)
	stats.PreMuls = 1

	mr := new(big.Int).Set(a)
	// e_{t-1} is required to be 1 by Algorithm 3; scan from t-2 down.
	for i := e.BitLen() - 2; i >= 0; i-- {
		a = c.Mul(a, a)
		stats.Squares++
		if e.Bit(i) == 1 {
			a = c.Mul(a, mr)
			stats.Multiplies++
		}
	}

	// Leave the domain: Mont(A, 1) ≤ N.
	a = c.Mul(a, big.NewInt(1))
	stats.PostMuls = 1
	// Mont(·,1) can return exactly N when the residue is 0 mod N;
	// canonicalize for callers comparing against math/big.
	if a.Cmp(c.N) >= 0 {
		a.Sub(a, c.N)
	}
	return a, stats, nil
}
