// Package mont implements Montgomery modular multiplication exactly as
// specified in the paper: Algorithm 1 (the textbook form with a final
// subtraction, generic word base 2^α) and Algorithm 2 (the radix-2 form
// without a final subtraction that the systolic array realizes, using
// Walter's bound R = 2^(l+2) > 4N).
//
// These routines are the mathematical ground truth for the hardware
// models: the behavioural and gate-level simulations in internal/systolic
// and internal/mmmc are tested bit-for-bit against this package, and this
// package in turn is property-tested against math/big.
package mont

import (
	"errors"
	"fmt"
	"math/big"
	"sync"

	"repro/internal/bits"
	"repro/internal/errs"
)

// Ctx carries the per-modulus constants of the paper's radix-2 scheme.
//
// For an l-bit odd modulus N the Montgomery parameter is fixed at
// R = 2^(l+2), the smallest power of two satisfying Walter's no-final-
// subtraction bound R > 4N. Operands of Mul live in [0, 2N-1] and so does
// its result, which is what lets exponentiation chain multiplications with
// no conditional reduction — the property the paper's hardware exploits.
type Ctx struct {
	N *big.Int // the odd modulus
	L int      // bit length of N
	R *big.Int // Montgomery parameter, 2^(L+2)

	RR   *big.Int // R² mod N, used to enter the Montgomery domain
	RInv *big.Int // R⁻¹ mod N, used by the closed-form reference
	N2   *big.Int // 2N, the operand/result bound

	// Word-level (radix-2^64) precompute, built lazily by Word and
	// cached; sync.Once keeps the Ctx safe for concurrent use.
	wordOnce sync.Once
	word     *WordParams
}

// ErrEvenModulus is returned for moduli with gcd(N, 2) ≠ 1, which
// Montgomery's method cannot handle in radix 2. It is the sentinel from
// internal/errs, so errors.Is works across every layer of the system.
var ErrEvenModulus = errs.ErrEvenModulus

// ErrModulusTooSmall is returned for moduli below 3.
var ErrModulusTooSmall = errs.ErrModulusTooSmall

// NewCtx validates N and precomputes the Montgomery constants.
//
// A Ctx is immutable after NewCtx returns and is safe for concurrent
// use by multiple goroutines; internal/engine relies on this to share
// one cached Ctx across its worker cores.
func NewCtx(n *big.Int) (*Ctx, error) {
	if n.Sign() <= 0 || n.Cmp(big.NewInt(3)) < 0 {
		return nil, ErrModulusTooSmall
	}
	if n.Bit(0) == 0 {
		return nil, ErrEvenModulus
	}
	l := n.BitLen()
	r := new(big.Int).Lsh(big.NewInt(1), uint(l+2))
	rinv := new(big.Int).ModInverse(r, n)
	if rinv == nil {
		return nil, fmt.Errorf("mont: R = 2^%d not invertible mod N", l+2)
	}
	rr := new(big.Int).Mul(r, r)
	rr.Mod(rr, n)
	return &Ctx{
		N:    new(big.Int).Set(n),
		L:    l,
		R:    r,
		RR:   rr,
		RInv: rinv,
		N2:   new(big.Int).Lsh(n, 1),
	}, nil
}

// Iterations returns the number of loop iterations of Algorithm 2,
// l + 2 — the quantity the paper contrasts with Blum–Paar's l + 3.
func (c *Ctx) Iterations() int { return c.L + 2 }

// Mul computes Mont(x, y) = x·y·R⁻¹ mod 2N with Algorithm 2: the radix-2
// interleaved loop with no final subtraction. Inputs must lie in
// [0, 2N-1]; the output is again in [0, 2N-1].
func (c *Ctx) Mul(x, y *big.Int) *big.Int {
	c.checkOperand("x", x)
	c.checkOperand("y", y)
	t := new(big.Int)
	xiy := new(big.Int)
	for i := 0; i <= c.L+1; i++ {
		// m_i = (t_0 + x_i·y_0) mod 2
		mi := (t.Bit(0) + x.Bit(i)*y.Bit(0)) & 1
		// T = (T + x_i·y + m_i·N) / 2
		if x.Bit(i) == 1 {
			t.Add(t, xiy.Set(y))
		}
		if mi == 1 {
			t.Add(t, c.N)
		}
		t.Rsh(t, 1)
	}
	return t
}

// MulWitness is Mul with a receipt: alongside the product T it returns
// the quotient witness M = Σ mᵢ·2ⁱ accumulated by Algorithm 2, which
// ties the result to its inputs over the integers:
//
//	T·R = x·y + M·N   (exactly, no modular reduction)
//
// The identity is what makes cheap integrity checking possible. A
// residue system cannot verify T ≡ x·y·R⁻¹ (mod N) from residues alone
// — reduction mod N erases information mod every other prime — but
// with the witness in hand the identity holds over ℤ and therefore
// holds mod any small prime p, turning verification into a handful of
// word-sized multiplications (internal/integrity.System). This mirrors
// the hardware story: the mᵢ bits are exactly the qᵢ digits the
// paper's cells compute in Fig. 1, so a real array gets the witness
// for free on the mᵢ broadcast wire.
func (c *Ctx) MulWitness(x, y *big.Int) (t, m *big.Int) {
	c.checkOperand("x", x)
	c.checkOperand("y", y)
	t = new(big.Int)
	m = new(big.Int)
	xiy := new(big.Int)
	for i := 0; i <= c.L+1; i++ {
		mi := (t.Bit(0) + x.Bit(i)*y.Bit(0)) & 1
		if x.Bit(i) == 1 {
			t.Add(t, xiy.Set(y))
		}
		if mi == 1 {
			t.Add(t, c.N)
			m.SetBit(m, i, 1)
		}
		t.Rsh(t, 1)
	}
	return t, m
}

// MulClosedForm computes x·y·R⁻¹ mod N directly with math/big. It is the
// oracle that Mul (and everything stacked on Mul) is verified against:
// Mul's result taken mod N must equal MulClosedForm.
func (c *Ctx) MulClosedForm(x, y *big.Int) *big.Int {
	t := new(big.Int).Mul(x, y)
	t.Mul(t, c.RInv)
	return t.Mod(t, c.N)
}

// ToMont maps x ∈ [0, N-1] to its Montgomery representation
// xR mod 2N (< 2N), via Mont(x, R² mod N).
func (c *Ctx) ToMont(x *big.Int) *big.Int {
	return c.Mul(x, c.RR)
}

// FromMont maps a Montgomery-domain value back to the integer domain via
// Mont(t, 1). Per the paper (§3) the result is ≤ N, and < N whenever the
// value is not ≡ 0 mod N; callers that require a canonical representative
// should still reduce mod N, which Reduce does.
func (c *Ctx) FromMont(t *big.Int) *big.Int {
	return c.Mul(t, big.NewInt(1))
}

// Reduce returns v mod N. The hardware never performs this operation —
// that is the point of the paper — but host-side callers use it to
// canonicalize final results.
func (c *Ctx) Reduce(v *big.Int) *big.Int {
	return new(big.Int).Mod(v, c.N)
}

func (c *Ctx) checkOperand(name string, v *big.Int) {
	if v.Sign() < 0 || v.Cmp(c.N2) >= 0 {
		panic(fmt.Sprintf("mont: operand %s = %s outside [0, 2N-1]", name, v))
	}
}

// MulVec is Mul specialized to the bit-vector types the hardware models
// use. x and y must be at most l+1 bits (values < 2N); the result has
// l+1 bits. The loop mirrors the systolic array's digit recurrences and
// is the intermediate oracle between big.Int arithmetic and the cell
// equations.
func (c *Ctx) MulVec(x, y bits.Vec) bits.Vec {
	xb, yb := x.Big(), y.Big()
	c.checkOperand("x", xb)
	c.checkOperand("y", yb)
	t := c.Mul(xb, yb)
	return bits.FromBig(t, c.L+1)
}

// Algorithm1 is the paper's Algorithm 1: Montgomery multiplication in
// word base b = 2^alpha with the classical final subtraction. Inputs must
// lie in [0, N-1]; so does the output. It exists as a baseline (the form
// Blum–Paar-style designs must implement) and as a cross-check for the
// improved Algorithm 2.
func Algorithm1(x, y, n *big.Int, alpha uint) (*big.Int, error) {
	if alpha == 0 {
		return nil, errors.New("mont: word size alpha must be positive")
	}
	if n.Bit(0) == 0 {
		return nil, ErrEvenModulus
	}
	if x.Sign() < 0 || x.Cmp(n) >= 0 || y.Sign() < 0 || y.Cmp(n) >= 0 {
		return nil, errors.New("mont: Algorithm 1 requires operands in [0, N-1]")
	}
	base := new(big.Int).Lsh(big.NewInt(1), alpha) // b = 2^alpha
	baseMask := new(big.Int).Sub(base, big.NewInt(1))

	// l = number of base-b digits of N; R = b^l.
	l := (n.BitLen() + int(alpha) - 1) / int(alpha)

	nPrime, err := NPrime(n, alpha)
	if err != nil {
		return nil, err
	}

	t := new(big.Int)
	tmp := new(big.Int)
	for i := 0; i < l; i++ {
		// m_i = (t_0 + x_i·y_0)·N' mod b
		xi := digit(x, i, alpha, baseMask)
		t0 := tmp.And(t, baseMask)
		mi := new(big.Int).Mul(xi, digit(y, 0, alpha, baseMask))
		mi.Add(mi, t0)
		mi.Mul(mi, nPrime)
		mi.And(mi, baseMask)
		// T = (T + x_i·y + m_i·N) / b
		t.Add(t, tmp.Mul(xi, y))
		t.Add(t, tmp.Mul(mi, n))
		t.Rsh(t, alpha)
	}
	if t.Cmp(n) >= 0 {
		t.Sub(t, n)
	}
	return t, nil
}

// digit extracts the i-th base-2^alpha digit of x.
func digit(x *big.Int, i int, alpha uint, mask *big.Int) *big.Int {
	d := new(big.Int).Rsh(x, uint(i)*alpha)
	return d.And(d, mask)
}

// NPrime computes N' = -N⁻¹ mod 2^alpha by Hensel lifting (the standard
// Dussé–Kaliski iteration), without math/big's ModInverse, so the
// computation matches what a hardware pre-processor would do. For odd N
// the inverse always exists. For alpha = 1 this returns 1, the fact the
// paper uses to drop the N' multiplication entirely.
func NPrime(n *big.Int, alpha uint) (*big.Int, error) {
	if n.Bit(0) == 0 {
		return nil, ErrEvenModulus
	}
	// inv = N^-1 mod 2^k doubling k each round: inv <- inv·(2 - N·inv).
	inv := big.NewInt(1) // N^-1 mod 2
	two := big.NewInt(2)
	tmp := new(big.Int)
	for k := uint(1); k < alpha; k *= 2 {
		bitsNow := 2 * k
		if bitsNow > alpha {
			bitsNow = alpha
		}
		mask := tmp.Lsh(big.NewInt(1), bitsNow)
		mask = new(big.Int).Sub(mask, big.NewInt(1))
		t := new(big.Int).Mul(n, inv)
		t.Sub(two, t)
		inv.Mul(inv, t)
		inv.And(inv, mask)
	}
	// N' = -inv mod 2^alpha
	mod := new(big.Int).Lsh(big.NewInt(1), alpha)
	np := new(big.Int).Neg(inv)
	np.Mod(np, mod)
	return np, nil
}
