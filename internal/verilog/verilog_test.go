package verilog

import (
	"fmt"
	"math/big"
	"math/rand"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/systolic"
)

func TestMangle(t *testing.T) {
	cases := map[string]string{
		"T(12)":     "T_12",
		"clk en":    "clk_en",
		"a":         "a",
		"":          "net",
		"42x":       "n42x",
		"count-end": "count_end",
	}
	for in, want := range cases {
		if got := mangle(in); got != want {
			t.Errorf("mangle(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEmitStructure(t *testing.T) {
	nl := logic.New()
	a, b := nl.Input("a"), nl.Input("b")
	x := nl.XorGate(a, b)
	q := nl.AddDFFFull(x, a, b, 1, "q")
	nl.MarkOutput(q, "q_out")
	var sb strings.Builder
	if err := Emit(&sb, "tiny mod", nl); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"module tiny_mod (",
		"input  wire clk",
		"input  wire rst",
		"input  wire a",
		"output reg  q_out",
		"assign", "^",
		"always @(posedge clk)",
		"if (rst) q_out <= 1'b1;",
		"else if (b) q_out <= 1'b1;",
		"else if (a) q_out <= ",
		"endmodule",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestEmitDeterministic(t *testing.T) {
	build := func() string {
		nl := logic.New()
		p, err := mmmc.BuildNetlist(nl, 4, systolic.Guarded)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range p.Result {
			nl.MarkOutput(r, fmt.Sprintf("RES%d", i))
		}
		var sb strings.Builder
		if err := Emit(&sb, "mmmc4", nl); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if build() != build() {
		t.Error("emission not deterministic")
	}
}

// ---- Round-trip: re-parse the emitted Verilog subset and check the
// rebuilt netlist is cycle-equivalent to the original. ----

var (
	reAssign2 = regexp.MustCompile(`^assign (\w+) = (\S+) ([&|^]) (\S+);$`)
	reAssign1 = regexp.MustCompile(`^assign (\w+) = (~?)(\S+);$`)
	reRst     = regexp.MustCompile(`^if \(rst\) (\w+) <= 1'b([01]);$`)
	reClr     = regexp.MustCompile(`^else if \((\S+)\) (\w+) <= 1'b([01]);$`)
	reCE      = regexp.MustCompile(`^else if \((\S+)\) (\w+) <= (\S+);$`)
	reAlways  = regexp.MustCompile(`^else (\w+) <= (\S+);$`)
	reInput   = regexp.MustCompile(`^input  wire (\w+)[,)]?$`)
)

// reparse rebuilds a logic.Netlist from Emit's output. It understands
// exactly the subset Emit produces.
func reparse(t *testing.T, src string) (*logic.Netlist, map[string]logic.Signal) {
	t.Helper()
	nl := logic.New()
	sigs := map[string]logic.Signal{"1'b0": logic.Const0, "1'b1": logic.Const1}
	get := func(name string) logic.Signal {
		s, ok := sigs[name]
		if !ok {
			t.Fatalf("reparse: unknown signal %q", name)
		}
		return s
	}
	type ffDecl struct {
		q          string
		init       bits.Bit
		clr, ce, d string
	}
	var ffs []*ffDecl
	var cur *ffDecl

	// Pass 1: declare inputs and flip-flop placeholders; collect gates.
	type gateLine struct {
		out, a, op, b string
		neg           bool
	}
	var gates []gateLine
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case reInput.MatchString(line):
			name := reInput.FindStringSubmatch(line)[1]
			if name != "clk" && name != "rst" {
				sigs[name] = nl.Input(name)
			}
		case reAssign2.MatchString(line):
			m := reAssign2.FindStringSubmatch(line)
			gates = append(gates, gateLine{out: m[1], a: m[2], op: m[3], b: m[4]})
		case reAssign1.MatchString(line) && !reAssign2.MatchString(line):
			m := reAssign1.FindStringSubmatch(line)
			gates = append(gates, gateLine{out: m[1], a: m[3], neg: m[2] == "~", op: "buf"})
		case reRst.MatchString(line):
			m := reRst.FindStringSubmatch(line)
			cur = &ffDecl{q: m[1], init: bits.Bit(m[2][0] - '0')}
			ffs = append(ffs, cur)
		case reClr.MatchString(line):
			m := reClr.FindStringSubmatch(line)
			if cur == nil || cur.q != m[2] {
				t.Fatalf("reparse: clr line out of order: %s", line)
			}
			cur.clr = m[1]
		case reCE.MatchString(line):
			m := reCE.FindStringSubmatch(line)
			if cur == nil || cur.q != m[2] {
				t.Fatalf("reparse: ce line out of order: %s", line)
			}
			cur.ce, cur.d = m[1], m[3]
		case reAlways.MatchString(line):
			m := reAlways.FindStringSubmatch(line)
			if cur == nil || cur.q != m[1] {
				t.Fatalf("reparse: else line out of order: %s", line)
			}
			cur.ce, cur.d = "1'b1", m[2]
		}
	}
	// Flip-flop Q nets exist before gate wiring (feedback).
	ffSet := make([]func(d, ce, clr logic.Signal), len(ffs))
	for i, ff := range ffs {
		buf := nl.BufGate(logic.Const0)
		gi := nl.NumGates() - 1
		ceBuf := nl.BufGate(logic.Const1)
		ceGi := nl.NumGates() - 1
		clrBuf := nl.BufGate(logic.Const0)
		clrGi := nl.NumGates() - 1
		q := nl.AddDFFFull(buf, ceBuf, clrBuf, ff.init, ff.q)
		sigs[ff.q] = q
		ffSet[i] = func(d, ce, clr logic.Signal) {
			nl.PatchGateInput(gi, d)
			nl.PatchGateInput(ceGi, ce)
			nl.PatchGateInput(clrGi, clr)
		}
	}
	// Continuous assignments are order-independent in Verilog, and the
	// emitted list is not topologically sorted (feedback buffers precede
	// their drivers), so resolve gates to a fixed point: build each one
	// once all of its inputs exist.
	pending := append([]gateLine(nil), gates...)
	for len(pending) > 0 {
		progress := false
		var next []gateLine
		for _, g := range pending {
			_, aOK := sigs[g.a]
			_, bOK := sigs[g.b]
			if g.op == "buf" {
				bOK = true
			}
			if !aOK || !bOK {
				next = append(next, g)
				continue
			}
			var out logic.Signal
			switch g.op {
			case "&":
				out = nl.AndGate(get(g.a), get(g.b))
			case "|":
				out = nl.OrGate(get(g.a), get(g.b))
			case "^":
				out = nl.XorGate(get(g.a), get(g.b))
			case "buf":
				if g.neg {
					out = nl.NotGate(get(g.a))
				} else {
					out = nl.BufGate(get(g.a))
				}
			}
			sigs[g.out] = out
			progress = true
		}
		if !progress {
			t.Fatalf("reparse: %d gates unresolvable (combinational loop or missing signal)", len(next))
		}
		pending = next
	}
	for i, ff := range ffs {
		d := logic.Const0
		ce := logic.Signal(logic.Const0)
		if ff.d != "" {
			d = get(ff.d)
			ce = get(ff.ce)
		}
		clr := logic.Const0
		if ff.clr != "" {
			clr = get(ff.clr)
		}
		ffSet[i](d, ce, clr)
	}
	return nl, sigs
}

// Emit the 4-bit guarded MMMC, re-parse it, and run the same
// multiplication on both netlists: results and DONE timing must match.
func TestEmitRoundTripEquivalence(t *testing.T) {
	l := 4
	nl := logic.New()
	p, err := mmmc.BuildNetlist(nl, l, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Emit(&sb, "mmmc", nl); err != nil {
		t.Fatal(err)
	}
	nl2, sigs := reparse(t, sb.String())
	sim1, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	sim2, err := logic.Compile(nl2)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(131))
	nBig := big.NewInt(13)
	for trial := 0; trial < 3; trial++ {
		x := new(big.Int).Rand(rng, big.NewInt(26))
		y := new(big.Int).Rand(rng, big.NewInt(26))
		xv, yv, nv := bits.FromBig(x, l+1), bits.FromBig(y, l+1), bits.FromBig(nBig, l)

		// Drive sim1 via ports, sim2 via looked-up names.
		set2 := func(name string, v bits.Bit) {
			s, ok := sigs[mangle(name)]
			if !ok {
				t.Fatalf("signal %q missing in reparse", name)
			}
			sim2.Set(s, v)
		}
		sim1.SetMany(p.XBus, xv)
		sim1.SetMany(p.YBus, yv)
		sim1.SetMany(p.NBus, nv)
		sim1.Set(p.Start, 1)
		for i := 0; i <= l; i++ {
			set2(fmt.Sprintf("XBUS(%d)", i), xv.Bit(i))
			set2(fmt.Sprintf("YBUS(%d)", i), yv.Bit(i))
		}
		for i := 0; i < l; i++ {
			set2(fmt.Sprintf("NBUS(%d)", i), nv.Bit(i))
		}
		set2("START", 1)
		sim1.Step()
		sim2.Step()
		sim1.Set(p.Start, 0)
		set2("START", 0)

		for c := 0; c < 3*l+4; c++ {
			sim1.Step()
			sim2.Step()
		}
		done2 := sim2.Get(sigs[mangle("DONE")])
		if sim1.Get(p.Done) != 1 || done2 != 1 {
			t.Fatalf("DONE mismatch: orig=%d reparsed=%d", sim1.Get(p.Done), done2)
		}
		for b := 0; b <= l; b++ {
			r1 := sim1.Get(p.Result[b])
			r2 := sim2.Get(sigs[mangle(fmt.Sprintf("RESULT(%d)", b))])
			if r1 != r2 {
				t.Fatalf("trial %d: RESULT(%d) differs: %d vs %d", trial, b, r1, r2)
			}
		}
	}
}
