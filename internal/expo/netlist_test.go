package expo

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/logic"
	"repro/internal/systolic"
)

// runExpoNetlist drives the gate-level exponentiator through one
// exponentiation and returns the result and the cycle count.
func runExpoNetlist(t *testing.T, sim *logic.Sim, p *ExpoPorts, ctxRR, m, e, n *big.Int) (*big.Int, int) {
	t.Helper()
	l := p.L
	sim.SetMany(p.MBus, bits.FromBig(m, l+1))
	sim.SetMany(p.EBus, bits.FromBig(e, l))
	sim.SetMany(p.NBus, bits.FromBig(n, l))
	sim.SetMany(p.RRBus, bits.FromBig(ctxRR, l+1))
	sim.Set(p.Start, 1)
	sim.Step()
	sim.Set(p.Start, 0)
	cycles := 1
	// Generous bound: ~2l multiplications of 3l+4 cycles plus control.
	limit := (2*l + 4) * (3*l + 12)
	for sim.Get(p.Done) == 0 {
		sim.Step()
		cycles++
		if cycles > limit {
			t.Fatal("gate-level exponentiator never finished")
		}
	}
	return sim.GetVec(p.Result).Big(), cycles
}

// The gate-level exponentiator must match math/big for random bases and
// exponents, reuse across runs, and stay within a small control-overhead
// factor of the paper's idealized cycle count.
func TestExpoNetlistMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for _, l := range []int{4, 8, 12} {
		n := randOdd(rng, l)
		ref, err := New(n, Model)
		if err != nil {
			t.Fatal(err)
		}
		nl := logic.New()
		p, err := BuildExpoNetlist(nl, l, systolic.Guarded)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := logic.Compile(nl)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 6; trial++ {
			m := new(big.Int).Rand(rng, n)
			e := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l)))
			if e.Sign() == 0 {
				e.SetInt64(1)
			}
			want, rep, err := ref.ModExp(m, e)
			if err != nil {
				t.Fatal(err)
			}
			got, cycles, errRun := func() (*big.Int, int, error) {
				g, c := runExpoNetlist(t, sim, p, ref.Ctx().RR, m, e, n)
				return g, c, nil
			}()
			if errRun != nil {
				t.Fatal(errRun)
			}
			// Mont(A,1) may return exactly N for residue 0.
			gotMod := new(big.Int).Mod(got, n)
			if gotMod.Cmp(want) != 0 {
				t.Fatalf("l=%d m=%s e=%s: netlist %s, want %s", l, m, e, got, want)
			}
			// Cycle sanity: the idealized count plus bounded control
			// overhead (a few cycles per multiplication + the skip scan).
			ideal := rep.TotalCycles
			if cycles < rep.MulCycles {
				t.Fatalf("l=%d: %d cycles below the multiplication floor %d", l, cycles, rep.MulCycles)
			}
			maxOverhead := 6*(rep.Squares+rep.Multiplies+2) + 2*l + 16
			if cycles > ideal+maxOverhead {
				t.Fatalf("l=%d: %d cycles exceeds ideal %d + overhead %d", l, cycles, ideal, maxOverhead)
			}
		}
	}
}

// Edge exponents: 1 (no loop iterations), a power of two (squares only),
// all-ones (square+multiply every bit).
func TestExpoNetlistEdgeExponents(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	l := 8
	n := randOdd(rng, l)
	ref, _ := New(n, Model)
	nl := logic.New()
	p, err := BuildExpoNetlist(nl, l, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	m := new(big.Int).Rand(rng, n)
	for _, e := range []*big.Int{
		big.NewInt(1),
		big.NewInt(2),
		new(big.Int).Lsh(big.NewInt(1), uint(l-1)),
		new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1)),
	} {
		want := new(big.Int).Exp(m, e, n)
		got, _ := runExpoNetlist(t, sim, p, ref.Ctx().RR, m, e, n)
		if new(big.Int).Mod(got, n).Cmp(want) != 0 {
			t.Fatalf("e=%s: got %s want %s", e, got, want)
		}
	}
}

// RSA on gates: a complete encrypt/decrypt round trip through the
// gate-level exponentiator (the paper's full system demonstration).
func TestExpoNetlistRSARoundTrip(t *testing.T) {
	// 3233 = 61·53, e = 17, d = 413; l = 12.
	n := big.NewInt(3233)
	ref, err := New(n, Model)
	if err != nil {
		t.Fatal(err)
	}
	l := ref.L
	nl := logic.New()
	p, err := BuildExpoNetlist(nl, l, systolic.Guarded)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logic.Compile(nl)
	if err != nil {
		t.Fatal(err)
	}
	msg := big.NewInt(65)
	c, _ := runExpoNetlist(t, sim, p, ref.Ctx().RR, msg, big.NewInt(17), n)
	c.Mod(c, n)
	back, _ := runExpoNetlist(t, sim, p, ref.Ctx().RR, c, big.NewInt(413), n)
	back.Mod(back, n)
	if back.Cmp(msg) != 0 {
		t.Fatalf("gate-level RSA round trip: %s", back)
	}
}

func TestBuildExpoNetlistValidation(t *testing.T) {
	nl := logic.New()
	if _, err := BuildExpoNetlist(nl, 1, systolic.Guarded); err == nil {
		t.Error("l=1 accepted")
	}
}
