// Package expo implements the paper's modular exponentiator (§4.5):
// left-to-right square-and-multiply (Algorithm 3) where every
// multiplication is a Montgomery multiplication through the MMM circuit,
// with the paper's exact cycle accounting —
//
//	pre-processing  (M·R² and the R² constant)   5l + 10 cycles
//	each square or multiply                       3l + 4  cycles
//	post-processing (Mont(A, 1))                  l + 2   cycles
//
// giving Eq. (10):  3l² + 10l + 12 ≤ T_modexp ≤ 6l² + 14l + 12.
//
// Two execution modes are provided. Simulate pushes every multiplication
// through the cycle-accurate MMMC (internal/mmmc) — the ground truth, at
// simulation cost O(l²) per multiplication. Model computes the same
// values with the reference arithmetic (internal/mont) while accounting
// cycles with the paper's formulas; conformance tests pin the two modes
// to identical results and identical square/multiply counts, so Model is
// safe for the large bit lengths of Tables 1 and 2.
package expo

import (
	"fmt"
	"math/big"
	mathbits "math/bits"

	"repro/internal/bits"
	"repro/internal/errs"
	"repro/internal/highradix"
	"repro/internal/kits"
	"repro/internal/mmmc"
	"repro/internal/mont"
	"repro/internal/systolic"
)

// Mode selects how multiplications are executed.
type Mode int

const (
	// Model computes with reference arithmetic and accounts cycles by
	// the paper's formulas.
	Model Mode = iota
	// Simulate pushes every multiplication through the cycle-accurate
	// MMM circuit.
	Simulate
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Model:
		return "model"
	case Simulate:
		return "simulate"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Report describes one modular exponentiation's decomposition and cycle
// cost.
type Report struct {
	L          int
	Squares    int // squarings (one per exponent bit below the MSB)
	Multiplies int // conditional multiplies (one per set bit below the MSB)

	// Paper-model cycle accounting (§4.5).
	PreCycles   int // 5l + 10
	MulCycles   int // (Squares + Multiplies) · (3l + 4)
	PostCycles  int // l + 2
	TotalCycles int // sum of the above

	// SimulatedMulCycles counts the MUL1/MUL2 clock cycles actually
	// spent inside the simulated MMMC (Simulate mode only; 0 for Model).
	// Each multiplication measures exactly 3l+4, so this equals
	// (Squares+Multiplies+2)·(3l+4) — the +2 being the explicit pre- and
	// post-multiplications.
	SimulatedMulCycles int
}

// PaperLowerBound returns 3l²+10l+12, Eq. (10)'s minimum (single-bit
// exponent of length l under the paper's l-square convention).
func PaperLowerBound(l int) int { return 3*l*l + 10*l + 12 }

// PaperUpperBound returns 6l²+14l+12, Eq. (10)'s maximum (all-ones
// exponent).
func PaperUpperBound(l int) int { return 6*l*l + 14*l + 12 }

// PaperAverageCycles returns the midpoint of Eq. (10), 4.5l²+12l+12 —
// the balanced-Hamming-weight average behind Table 1.
func PaperAverageCycles(l int) float64 {
	return 4.5*float64(l)*float64(l) + 12*float64(l) + 12
}

// Exponentiator computes modular exponentiations over one modulus.
type Exponentiator struct {
	L    int
	Mode Mode     // retained for compatibility: Simulate iff Kit == kits.Sim
	Kit  kits.Kit // the concrete compute kit executing multiplications

	ctx     *mont.Ctx
	circuit *mmmc.Circuit
	nVec    bits.Vec
	word    *highradix.Word // CIOS kit only
}

// Option configures an Exponentiator beyond its mode.
type Option func(*config)

type config struct {
	variant systolic.Variant
}

// WithVariant selects the array variant used in Simulate mode. The
// default is Guarded, whose correctness holds for every chained operand
// (see internal/systolic); the paper's cycle counts are unaffected by
// the guard.
func WithVariant(v systolic.Variant) Option { return func(c *config) { c.variant = v } }

// New builds an exponentiator for the odd modulus n.
func New(n *big.Int, mode Mode, opts ...Option) (*Exponentiator, error) {
	ctx, err := mont.NewCtx(n)
	if err != nil {
		return nil, err
	}
	return NewFromCtx(ctx, mode, opts...)
}

// NewFromCtx builds an exponentiator over an existing Montgomery
// context, skipping the per-modulus precomputation. The Ctx is
// immutable and may be shared freely; the Exponentiator itself (whose
// Simulate-mode circuit and CIOS-kit scratch are mutable state) must
// stay confined to one goroutine. internal/engine uses this to share
// LRU-cached contexts across worker cores while giving each core an
// exclusive circuit.
func NewFromCtx(ctx *mont.Ctx, mode Mode, opts ...Option) (*Exponentiator, error) {
	k := kits.Model
	if mode == Simulate {
		k = kits.Sim
	}
	return NewKitFromCtx(ctx, k, opts...)
}

// NewKit builds an exponentiator on the given compute kit for the odd
// modulus n.
func NewKit(n *big.Int, k kits.Kit, opts ...Option) (*Exponentiator, error) {
	ctx, err := mont.NewCtx(n)
	if err != nil {
		return nil, err
	}
	return NewKitFromCtx(ctx, k, opts...)
}

// NewKitFromCtx builds an exponentiator on the given compute kit over an
// existing context. The kit must be concrete: callers wanting Auto
// resolve it first (internal/core and internal/engine do this through
// kits.ProcessTable / their pinned table).
func NewKitFromCtx(ctx *mont.Ctx, k kits.Kit, opts ...Option) (*Exponentiator, error) {
	if k == kits.Auto || !k.Valid() {
		return nil, fmt.Errorf("expo: kit %v is not a concrete compute kit: %w", k, errs.ErrOperandRange)
	}
	cfg := config{variant: systolic.Guarded}
	for _, o := range opts {
		o(&cfg)
	}
	mode := Model
	if k == kits.Sim {
		mode = Simulate
	}
	e := &Exponentiator{L: ctx.L, Mode: mode, Kit: k, ctx: ctx}
	switch k {
	case kits.Sim:
		c, err := mmmc.New(ctx.L, cfg.variant)
		if err != nil {
			return nil, err
		}
		e.circuit = c
		e.nVec = bits.FromBig(ctx.N, ctx.L)
	case kits.CIOS:
		e.word = highradix.NewWord(ctx)
	}
	return e, nil
}

// Ctx exposes the Montgomery context (for benchmarks and applications).
func (e *Exponentiator) Ctx() *mont.Ctx { return e.ctx }

// mulSim runs Mont(x, y) through the simulated circuit, accumulating the
// measured cycle count into the report.
func (e *Exponentiator) mulSim(x, y *big.Int, rep *Report) (*big.Int, error) {
	xv := bits.FromBig(x, e.L+1)
	yv := bits.FromBig(y, e.L+1)
	res, cycles, err := e.circuit.Run(xv, yv, e.nVec)
	if err != nil {
		return nil, err
	}
	rep.SimulatedMulCycles += cycles
	return res.Big(), nil
}

// ModExp computes m^exp mod N via Algorithm 3 over the MMMC. m must lie
// in [0, N-1]; exp must be positive.
func (e *Exponentiator) ModExp(m, exp *big.Int) (*big.Int, Report, error) {
	rep := Report{L: e.L}
	if exp.Sign() <= 0 {
		return nil, rep, fmt.Errorf("expo: exponent must be positive: %w", errs.ErrOperandRange)
	}
	if m.Sign() < 0 || m.Cmp(e.ctx.N) >= 0 {
		return nil, rep, fmt.Errorf("expo: base must be in [0, N-1]: %w", errs.ErrOperandRange)
	}

	// The fast kits run Algorithm 3 internally (CIOS: word-domain
	// ladder; Big: math/big's own windowed exponentiation). The Report
	// keeps the paper's accounting — squares and multiplies are a
	// function of the exponent alone for the binary ladder, so the
	// decomposition and cycle model stay identical across kits.
	switch e.Kit {
	case kits.CIOS:
		a, err := e.word.ModExp(m, exp)
		if err != nil {
			return nil, rep, err
		}
		e.fillLadderReport(&rep, exp)
		return a, rep, nil
	case kits.Big:
		a := new(big.Int).Exp(m, exp, e.ctx.N)
		e.fillLadderReport(&rep, exp)
		return a, rep, nil
	}

	mul := func(x, y *big.Int) (*big.Int, error) {
		if e.Mode == Simulate {
			return e.mulSim(x, y, &rep)
		}
		return e.ctx.Mul(x, y), nil
	}

	// Pre-processing: A = Mont(M, R² mod N) = M·R mod 2N.
	a, err := mul(m, e.ctx.RR)
	if err != nil {
		return nil, rep, err
	}
	mr := new(big.Int).Set(a)

	for i := exp.BitLen() - 2; i >= 0; i-- {
		if a, err = mul(a, a); err != nil {
			return nil, rep, err
		}
		rep.Squares++
		if exp.Bit(i) == 1 {
			if a, err = mul(a, mr); err != nil {
				return nil, rep, err
			}
			rep.Multiplies++
		}
	}

	// Post-processing: Mont(A, 1) strips the R factor.
	if a, err = mul(a, big.NewInt(1)); err != nil {
		return nil, rep, err
	}
	if a.Cmp(e.ctx.N) >= 0 {
		a.Sub(a, e.ctx.N)
	}

	l := e.L
	rep.PreCycles = 5*l + 10
	rep.MulCycles = (rep.Squares + rep.Multiplies) * (3*l + 4)
	rep.PostCycles = l + 2
	rep.TotalCycles = rep.PreCycles + rep.MulCycles + rep.PostCycles
	return a, rep, nil
}

// fillLadderReport fills the Report for a kit that ran the ladder
// internally: the binary square-and-multiply decomposition is a pure
// function of the exponent (one square per bit below the MSB, one
// multiply per set bit below the MSB), and the cycle model is §4.5's.
func (e *Exponentiator) fillLadderReport(rep *Report, exp *big.Int) {
	rep.Squares = exp.BitLen() - 1
	pop := 0
	for _, w := range exp.Bits() {
		pop += mathbits.OnesCount(uint(w))
	}
	rep.Multiplies = pop - 1
	l := e.L
	rep.PreCycles = 5*l + 10
	rep.MulCycles = (rep.Squares + rep.Multiplies) * (3*l + 4)
	rep.PostCycles = l + 2
	rep.TotalCycles = rep.PreCycles + rep.MulCycles + rep.PostCycles
}
