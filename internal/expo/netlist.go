package expo

import (
	"fmt"

	"repro/internal/logic"
	"repro/internal/mmmc"
	"repro/internal/systolic"
)

// Gate-level modular exponentiator — the paper's §4.5 deliverable as
// hardware: an embedded MMM circuit, operand registers, an exponent
// shift register, and a one-hot controller that sequences the
// pre-multiplication by R² mod N, the MSB-first square-and-multiply
// loop of Algorithm 3, and the final Mont(A, 1) post-multiplication.
//
// Interface: the caller supplies M (the base, < N), E (the exponent,
// up to l bits), N (the odd modulus) and the host-precomputed constant
// R² mod N, pulses START, clocks until DONE, and reads M^E mod N from
// RESULT. The sequencing overhead beyond the paper's idealized
// accounting is a handful of decision cycles per multiplication
// (measured by the conformance tests).

// ExpoPorts exposes the primary nets of a gate-level exponentiator.
type ExpoPorts struct {
	L int

	// Inputs.
	Start logic.Signal
	MBus  []logic.Signal // base, l+1 nets (value < N)
	EBus  []logic.Signal // exponent, l nets
	NBus  []logic.Signal // modulus, l nets
	RRBus []logic.Signal // R² mod N, l+1 nets (host-precomputed)

	// Outputs.
	Done   logic.Signal
	Result []logic.Signal // l+1 nets, M^E mod N (may equal N when ≡ 0)

	// Debug visibility.
	MMMC   *mmmc.NetPorts
	States map[string]logic.Signal
}

// BuildExpoNetlist constructs the complete gate-level exponentiator for
// l-bit moduli around one embedded MMM circuit.
func BuildExpoNetlist(nl *logic.Netlist, l int, variant systolic.Variant) (*ExpoPorts, error) {
	if l < 2 {
		return nil, fmt.Errorf("expo: modulus width must be at least 2, got %d", l)
	}
	p := &ExpoPorts{
		L:     l,
		Start: nl.Input("ESTART"),
		MBus:  nl.InputVec("MBUS", l+1),
		EBus:  nl.InputVec("EBUS", l),
		NBus:  nl.InputVec("ENBUS", l),
		RRBus: nl.InputVec("RRBUS", l+1),
	}

	// ---- One-hot controller ----
	stateNames := []string{
		"IDLE", "PRES", "PREW", "SKIP", "CHK",
		"SQS", "SQW", "MDEC", "MULS", "MULW",
		"SHIFT", "POSTS", "POSTW", "EOUT",
	}
	q := map[string]logic.Signal{}
	set := map[string]func(logic.Signal){}
	for i, name := range stateNames {
		init := uint8(0)
		if i == 0 {
			init = 1 // reset into IDLE
		}
		q[name], set[name] = nl.FeedbackFF(logic.Const0, init, "st."+name)
	}
	p.States = q

	load := nl.AndGate(p.Start, nl.OrGate(q["IDLE"], q["EOUT"]))
	nl.Name(load, "eload")

	// ---- Operand registers ----
	mReg := make([]logic.Signal, l+1)
	rrReg := make([]logic.Signal, l+1)
	for i := 0; i <= l; i++ {
		mReg[i] = nl.AddDFFCE(p.MBus[i], load, 0, fmt.Sprintf("Mreg(%d)", i))
		rrReg[i] = nl.AddDFFCE(p.RRBus[i], load, 0, fmt.Sprintf("RRreg(%d)", i))
	}
	nReg := make([]logic.Signal, l)
	for i := 0; i < l; i++ {
		nReg[i] = nl.AddDFFCE(p.NBus[i], load, 0, fmt.Sprintf("ENreg(%d)", i))
	}

	// Bit counter: loads l, decrements on every exponent shift.
	w := 0
	for v := l; v > 0; v >>= 1 {
		w++
	}
	cnt := make([]logic.Signal, w)
	setCnt := make([]func(logic.Signal), w)
	for i := 0; i < w; i++ {
		cnt[i], setCnt[i] = nl.FeedbackFF(logic.Const0, 0, fmt.Sprintf("bitcnt(%d)", i))
	}
	cntZero := nl.IsZero(cnt)
	nl.Name(cntZero, "bitcnt-zero")
	dec := nl.DecrementLogic(cnt)

	// Exponent shift register (MSB-first scan: shift left, zero fill).
	eQ := make([]logic.Signal, l)
	setE := make([]func(logic.Signal), l)
	for i := 0; i < l; i++ {
		eQ[i], setE[i] = nl.FeedbackFF(logic.Const0, 0, fmt.Sprintf("Ereg(%d)", i))
	}
	eTop := eQ[l-1]

	// shifting: SKIP consumes one bit per cycle (including the leading
	// 1 on its way out); SHIFT consumes the bit just processed.
	shifting := nl.OrGate(nl.AndGate(q["SKIP"], nl.NotGate(cntZero)), q["SHIFT"])
	for i := 0; i < l; i++ {
		low := logic.Const0
		if i > 0 {
			low = eQ[i-1]
		}
		shifted := nl.Mux2(shifting, low, eQ[i])
		setE[i](nl.Mux2(load, p.EBus[i], shifted))
	}
	for i := 0; i < w; i++ {
		lBit := logic.Const0
		if (l>>i)&1 == 1 {
			lBit = logic.Const1
		}
		held := nl.Mux2(shifting, dec[i], cnt[i])
		setCnt[i](nl.Mux2(load, lBit, held))
	}

	// ---- Embedded MMM circuit with operand muxes ----
	// x operand: M during PRE, A otherwise. y operand: RR during PRE,
	// A during SQ, MR during MUL, the constant 1 during POST.
	// A and MR are feedback registers latched from the MMMC's RESULT.
	aReg := make([]logic.Signal, l+1)
	setA := make([]func(logic.Signal), l+1)
	mrReg := make([]logic.Signal, l+1)
	setMR := make([]func(logic.Signal), l+1)
	for i := 0; i <= l; i++ {
		aReg[i], setA[i] = nl.FeedbackFF(logic.Const0, 0, fmt.Sprintf("A(%d)", i))
		mrReg[i], setMR[i] = nl.FeedbackFF(logic.Const0, 0, fmt.Sprintf("MR(%d)", i))
	}

	mmmcStart := nl.OrTree([]logic.Signal{q["PRES"], q["SQS"], q["MULS"], q["POSTS"]})
	nl.Name(mmmcStart, "mmmc-start")
	xbus := make([]logic.Signal, l+1)
	ybus := make([]logic.Signal, l+1)
	for i := 0; i <= l; i++ {
		xbus[i] = nl.Mux2(q["PRES"], mReg[i], aReg[i])
		yb := nl.OrTree([]logic.Signal{
			nl.AndGate(q["PRES"], rrReg[i]),
			nl.AndGate(q["SQS"], aReg[i]),
			nl.AndGate(q["MULS"], mrReg[i]),
		})
		if i == 0 {
			yb = nl.OrGate(yb, q["POSTS"]) // the constant 1
		}
		ybus[i] = yb
	}
	mc, err := mmmc.BuildCore(nl, l, variant, mmmcStart, xbus, ybus, nReg)
	if err != nil {
		return nil, err
	}
	p.MMMC = mc
	done := mc.Done

	// Register latching from the multiplier.
	aCE := nl.AndGate(nl.OrTree([]logic.Signal{q["PREW"], q["SQW"], q["MULW"]}), done)
	mrCE := nl.AndGate(q["PREW"], done)
	resCE := nl.AndGate(q["POSTW"], done)
	res := make([]logic.Signal, l+1)
	for i := 0; i <= l; i++ {
		setA[i](nl.Mux2(aCE, mc.Result[i], aReg[i]))
		setMR[i](nl.Mux2(mrCE, mc.Result[i], mrReg[i]))
		res[i] = nl.AddDFFCE(mc.Result[i], resCE, 0, fmt.Sprintf("ERESULT(%d)", i))
	}
	p.Result = res

	// ---- Next-state logic ----
	nDone := nl.NotGate(done)
	nStart := nl.NotGate(p.Start)
	skipStay := nl.AndTree([]logic.Signal{q["SKIP"], nl.NotGate(cntZero), nl.NotGate(eTop)})
	skipExit := nl.AndTree([]logic.Signal{q["SKIP"], nl.NotGate(cntZero), eTop})
	skipEmpty := nl.AndGate(q["SKIP"], cntZero)

	set["IDLE"](nl.AndGate(q["IDLE"], nStart))
	set["PRES"](load)
	set["PREW"](nl.OrGate(q["PRES"], nl.AndGate(q["PREW"], nDone)))
	set["SKIP"](nl.OrGate(nl.AndGate(q["PREW"], done), skipStay))
	set["CHK"](nl.OrGate(skipExit, q["SHIFT"]))
	set["SQS"](nl.AndGate(q["CHK"], nl.NotGate(cntZero)))
	set["SQW"](nl.OrGate(q["SQS"], nl.AndGate(q["SQW"], nDone)))
	set["MDEC"](nl.AndGate(q["SQW"], done))
	set["MULS"](nl.AndGate(q["MDEC"], eTop))
	set["MULW"](nl.OrGate(q["MULS"], nl.AndGate(q["MULW"], nDone)))
	set["SHIFT"](nl.OrGate(nl.AndGate(q["MULW"], done), nl.AndGate(q["MDEC"], nl.NotGate(eTop))))
	set["POSTS"](nl.OrGate(nl.AndGate(q["CHK"], cntZero), skipEmpty))
	set["POSTW"](nl.OrGate(q["POSTS"], nl.AndGate(q["POSTW"], nDone)))
	set["EOUT"](nl.OrGate(nl.AndGate(q["POSTW"], done), nl.AndGate(q["EOUT"], nStart)))

	p.Done = q["EOUT"]
	nl.MarkOutput(p.Done, "EDONE")
	for i, r := range res {
		nl.MarkOutput(r, fmt.Sprintf("EOUT(%d)", i))
	}
	return p, nil
}
