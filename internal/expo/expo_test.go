package expo

import (
	"math/big"
	"math/rand"
	"testing"
)

func randOdd(rng *rand.Rand, l int) *big.Int {
	n := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(l-1)))
	n.SetBit(n, l-1, 1)
	n.SetBit(n, 0, 1)
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(big.NewInt(4), Model); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := New(big.NewInt(1), Model); err == nil {
		t.Error("tiny modulus accepted")
	}
	e, err := New(big.NewInt(101), Simulate)
	if err != nil || e.L != 7 {
		t.Fatalf("valid modulus rejected: %v", err)
	}
	if e.Ctx() == nil {
		t.Error("Ctx nil")
	}
}

func TestModeString(t *testing.T) {
	if Model.String() != "model" || Simulate.String() != "simulate" {
		t.Error("mode names")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode name")
	}
}

func TestModExpValidation(t *testing.T) {
	e, _ := New(big.NewInt(101), Model)
	if _, _, err := e.ModExp(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, _, err := e.ModExp(big.NewInt(101), big.NewInt(3)); err == nil {
		t.Error("base = N accepted")
	}
	if _, _, err := e.ModExp(big.NewInt(-1), big.NewInt(3)); err == nil {
		t.Error("negative base accepted")
	}
}

// Model mode must agree with math/big across widths, and its cycle
// report must follow the paper's formulas exactly.
func TestModelMatchesBigAndCycleFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, l := range []int{8, 16, 64, 160, 512, 1024} {
		n := randOdd(rng, l)
		e, err := New(n, Model)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			m := new(big.Int).Rand(rng, n)
			x := new(big.Int).Rand(rng, n)
			if x.Sign() == 0 {
				x.SetInt64(3)
			}
			got, rep, err := e.ModExp(m, x)
			if err != nil {
				t.Fatal(err)
			}
			if want := new(big.Int).Exp(m, x, n); got.Cmp(want) != 0 {
				t.Fatalf("l=%d: ModExp mismatch", l)
			}
			if rep.Squares != x.BitLen()-1 {
				t.Errorf("squares = %d, want %d", rep.Squares, x.BitLen()-1)
			}
			if rep.PreCycles != 5*l+10 || rep.PostCycles != l+2 {
				t.Errorf("pre/post cycles = %d/%d", rep.PreCycles, rep.PostCycles)
			}
			if rep.MulCycles != (rep.Squares+rep.Multiplies)*(3*l+4) {
				t.Errorf("MulCycles inconsistent")
			}
			if rep.TotalCycles != rep.PreCycles+rep.MulCycles+rep.PostCycles {
				t.Errorf("TotalCycles inconsistent")
			}
			if rep.SimulatedMulCycles != 0 {
				t.Errorf("Model mode reported simulated cycles")
			}
		}
	}
}

// Simulate mode pushes every multiplication through the MMMC; it must
// produce the same result as Model and as math/big, and the simulated
// cycle count must be exactly (squares+multiplies+2)·(3l+4).
func TestSimulateMatchesModelAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, l := range []int{8, 16, 24} {
		n := randOdd(rng, l)
		sim, err := New(n, Simulate)
		if err != nil {
			t.Fatal(err)
		}
		mod, _ := New(n, Model)
		for trial := 0; trial < 4; trial++ {
			m := new(big.Int).Rand(rng, n)
			x := new(big.Int).Rand(rng, n)
			if x.Sign() == 0 {
				x.SetInt64(5)
			}
			gotSim, repSim, err := sim.ModExp(m, x)
			if err != nil {
				t.Fatal(err)
			}
			gotMod, repMod, err := mod.ModExp(m, x)
			if err != nil {
				t.Fatal(err)
			}
			if gotSim.Cmp(gotMod) != 0 {
				t.Fatalf("l=%d: Simulate %s != Model %s", l, gotSim, gotMod)
			}
			if want := new(big.Int).Exp(m, x, n); gotSim.Cmp(want) != 0 {
				t.Fatalf("l=%d: Simulate != math/big", l)
			}
			if repSim.Squares != repMod.Squares || repSim.Multiplies != repMod.Multiplies {
				t.Fatal("mode decompositions differ")
			}
			wantCycles := (repSim.Squares + repSim.Multiplies + 2) * (3*l + 4)
			if repSim.SimulatedMulCycles != wantCycles {
				t.Fatalf("simulated cycles %d, want %d", repSim.SimulatedMulCycles, wantCycles)
			}
		}
	}
}

// Hazard-zone modulus: an all-ones modulus exercises operands that break
// the faithful array; the Simulate path (guarded) must stay correct over
// a full exponentiation.
func TestSimulateHazardModulus(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	l := 16
	n := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1))
	// 2^16-1 = 65535 = 3·5·17·257 (odd, fine for Montgomery).
	e, err := New(n, Simulate)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 3; trial++ {
		m := new(big.Int).Rand(rng, n)
		x := new(big.Int).Rand(rng, n)
		if x.Sign() == 0 {
			x.SetInt64(7)
		}
		got, _, err := e.ModExp(m, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := new(big.Int).Exp(m, x, n); got.Cmp(want) != 0 {
			t.Fatalf("hazard modulus exponentiation wrong")
		}
	}
}

// Eq. (10) conformance: an all-ones exponent of length l must cost
// exactly the upper bound under the paper's convention that the MSB
// also costs a square+multiply... the paper counts l squares and l
// multiplies for an (l+1)-bit all-ones exponent; with an exactly l-bit
// all-ones exponent our measured count is (l-1) squares + (l-1)
// multiplies, giving UpperBound(l) - 2(3l+4). Both bounds are asserted
// as exact identities so any drift in the accounting is caught.
func TestEq10Bounds(t *testing.T) {
	for _, l := range []int{8, 32, 128} {
		if PaperUpperBound(l)-PaperLowerBound(l) != 3*l*l+4*l {
			t.Errorf("bound gap wrong at l=%d", l)
		}
		if got := PaperAverageCycles(l); got != (float64(PaperLowerBound(l))+float64(PaperUpperBound(l)))/2 {
			t.Errorf("average is not the midpoint at l=%d", l)
		}
	}

	rng := rand.New(rand.NewSource(74))
	l := 32
	n := randOdd(rng, l)
	e, _ := New(n, Model)
	m := new(big.Int).Rand(rng, n)

	// All-ones exponent with exactly l bits: 2^l - 1.
	ones := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(l)), big.NewInt(1))
	_, rep, err := e.ModExp(m, ones)
	if err != nil {
		t.Fatal(err)
	}
	wantOnes := PaperUpperBound(l) - 2*(3*l+4)
	if rep.TotalCycles != wantOnes {
		t.Errorf("all-ones exponent: %d cycles, want %d", rep.TotalCycles, wantOnes)
	}

	// Single-bit exponent 2^(l-1): squares only.
	single := new(big.Int).Lsh(big.NewInt(1), uint(l-1))
	_, rep, err = e.ModExp(m, single)
	if err != nil {
		t.Fatal(err)
	}
	wantSingle := PaperLowerBound(l) - (3*l + 4)
	if rep.TotalCycles != wantSingle {
		t.Errorf("single-bit exponent: %d cycles, want %d", rep.TotalCycles, wantSingle)
	}
}

// RSA-shaped sanity check: encrypt/decrypt round trip through the model
// exponentiator with a real (tiny) RSA key.
func TestRSARoundTrip(t *testing.T) {
	p, q := big.NewInt(61), big.NewInt(53)
	n := new(big.Int).Mul(p, q) // 3233
	e := big.NewInt(17)
	d := big.NewInt(413) // 17⁻¹ mod lcm(60,52)=780? 17·413=7021=9·780+1 ✓
	ex, err := New(n, Model)
	if err != nil {
		t.Fatal(err)
	}
	msg := big.NewInt(65)
	c, _, err := ex.ModExp(msg, e)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := ex.ModExp(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cmp(msg) != 0 {
		t.Fatalf("RSA round trip: %s", back)
	}
}
