package expo

import (
	"fmt"
	"math/big"

	"repro/internal/errs"
)

// Exponentiation variants beyond the paper's Algorithm 3. The paper's
// §5 argues its multiplier resists timing attacks because no data-
// dependent reduction exists *inside* a multiplication; at the exponent
// level, Algorithm 3 still performs a multiplication only for 1-bits.
// The Montgomery powering ladder closes that gap (uniform
// square-and-multiply sequence per bit); the fixed-window method is the
// standard throughput improvement. Both run over the same Montgomery
// core and the same cycle accounting.

// ModExpLadder computes m^exp mod N with the Montgomery powering ladder:
// exactly one multiplication and one squaring per exponent bit,
// independent of the bit's value, so the *operation sequence* leaks only
// the exponent length. Cycle accounting follows §4.5 with
// 2·(bits-1) multiplications.
func (e *Exponentiator) ModExpLadder(m, exp *big.Int) (*big.Int, Report, error) {
	rep := Report{L: e.L}
	if exp.Sign() <= 0 {
		return nil, rep, fmt.Errorf("expo: exponent must be positive: %w", errs.ErrOperandRange)
	}
	if m.Sign() < 0 || m.Cmp(e.ctx.N) >= 0 {
		return nil, rep, fmt.Errorf("expo: base must be in [0, N-1]: %w", errs.ErrOperandRange)
	}
	mul := func(x, y *big.Int) (*big.Int, error) {
		if e.Mode == Simulate {
			return e.mulSim(x, y, &rep)
		}
		return e.ctx.Mul(x, y), nil
	}

	// R0 = R mod 2N (the Montgomery representation of 1),
	// R1 = mR mod 2N.
	one := new(big.Int).Mod(e.ctx.R, e.ctx.N2)
	r1, err := mul(m, e.ctx.RR)
	if err != nil {
		return nil, rep, err
	}
	r0 := one

	for i := exp.BitLen() - 1; i >= 0; i-- {
		if exp.Bit(i) == 0 {
			if r1, err = mul(r0, r1); err != nil {
				return nil, rep, err
			}
			if r0, err = mul(r0, r0); err != nil {
				return nil, rep, err
			}
		} else {
			if r0, err = mul(r0, r1); err != nil {
				return nil, rep, err
			}
			if r1, err = mul(r1, r1); err != nil {
				return nil, rep, err
			}
		}
		rep.Squares++
		rep.Multiplies++
	}

	out, err := mul(r0, big.NewInt(1))
	if err != nil {
		return nil, rep, err
	}
	if out.Cmp(e.ctx.N) >= 0 {
		out.Sub(out, e.ctx.N)
	}
	l := e.L
	rep.PreCycles = 5*l + 10
	rep.MulCycles = (rep.Squares + rep.Multiplies) * (3*l + 4)
	rep.PostCycles = l + 2
	rep.TotalCycles = rep.PreCycles + rep.MulCycles + rep.PostCycles
	return out, rep, nil
}

// ModExpWindow computes m^exp mod N with the fixed-window (2^w-ary)
// method: a table of the first 2^w powers in the Montgomery domain, then
// w squarings plus at most one multiplication per window. Larger windows
// trade table-building multiplications for fewer per-window products —
// the software analogue of the paper's high-radix discussion.
func (e *Exponentiator) ModExpWindow(m, exp *big.Int, w int) (*big.Int, Report, error) {
	rep := Report{L: e.L}
	if w < 1 || w > 16 {
		return nil, rep, fmt.Errorf("expo: window width must be in [1, 16]: %w", errs.ErrOperandRange)
	}
	if exp.Sign() <= 0 {
		return nil, rep, fmt.Errorf("expo: exponent must be positive: %w", errs.ErrOperandRange)
	}
	if m.Sign() < 0 || m.Cmp(e.ctx.N) >= 0 {
		return nil, rep, fmt.Errorf("expo: base must be in [0, N-1]: %w", errs.ErrOperandRange)
	}
	mul := func(x, y *big.Int) (*big.Int, error) {
		if e.Mode == Simulate {
			return e.mulSim(x, y, &rep)
		}
		return e.ctx.Mul(x, y), nil
	}

	// Table: t[0] = R mod 2N (Montgomery 1), t[k] = m^k·R mod 2N.
	size := 1 << w
	table := make([]*big.Int, size)
	table[0] = new(big.Int).Mod(e.ctx.R, e.ctx.N2)
	mr, err := mul(m, e.ctx.RR)
	if err != nil {
		return nil, rep, err
	}
	tableMuls := 1 // the pre-multiplication above
	if size > 1 {
		table[1] = mr
	}
	for k := 2; k < size; k++ {
		if table[k], err = mul(table[k-1], mr); err != nil {
			return nil, rep, err
		}
		tableMuls++
	}

	// Consume the exponent in w-bit windows, most significant first.
	bitsTotal := exp.BitLen()
	windows := (bitsTotal + w - 1) / w
	acc := new(big.Int).Set(table[0])
	started := false
	for wi := windows - 1; wi >= 0; wi-- {
		if started {
			for s := 0; s < w; s++ {
				if acc, err = mul(acc, acc); err != nil {
					return nil, rep, err
				}
				rep.Squares++
			}
		}
		// Extract window value.
		val := 0
		for b := w - 1; b >= 0; b-- {
			idx := wi*w + b
			val <<= 1
			if idx < bitsTotal {
				val |= int(exp.Bit(idx))
			}
		}
		if val != 0 {
			if !started {
				acc = new(big.Int).Set(table[val])
				started = true
				continue
			}
			if acc, err = mul(acc, table[val]); err != nil {
				return nil, rep, err
			}
			rep.Multiplies++
		}
	}

	out, err := mul(acc, big.NewInt(1))
	if err != nil {
		return nil, rep, err
	}
	if out.Cmp(e.ctx.N) >= 0 {
		out.Sub(out, e.ctx.N)
	}
	l := e.L
	rep.PreCycles = 5*l + 10 + (tableMuls-1)*(3*l+4) // table build beyond the base pre-mul
	rep.MulCycles = (rep.Squares + rep.Multiplies) * (3*l + 4)
	rep.PostCycles = l + 2
	rep.TotalCycles = rep.PreCycles + rep.MulCycles + rep.PostCycles
	return out, rep, nil
}
