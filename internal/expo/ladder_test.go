package expo

import (
	"math/big"
	"math/rand"
	"testing"
)

// The ladder must agree with math/big and perform exactly one square
// plus one multiply per exponent bit — the uniform sequence property.
func TestLadderMatchesBigAndUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for _, l := range []int{8, 32, 128, 512} {
		n := randOdd(rng, l)
		e, err := New(n, Model)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			m := new(big.Int).Rand(rng, n)
			x := new(big.Int).Rand(rng, n)
			if x.Sign() == 0 {
				x.SetInt64(3)
			}
			got, rep, err := e.ModExpLadder(m, x)
			if err != nil {
				t.Fatal(err)
			}
			if want := new(big.Int).Exp(m, x, n); got.Cmp(want) != 0 {
				t.Fatalf("l=%d: ladder wrong", l)
			}
			if rep.Squares != x.BitLen() || rep.Multiplies != x.BitLen() {
				t.Fatalf("non-uniform sequence: %d squares, %d multiplies for %d bits",
					rep.Squares, rep.Multiplies, x.BitLen())
			}
		}
	}
}

// Two exponents of the same length must yield identical operation
// sequences (the SCA property the plain Algorithm 3 lacks).
func TestLadderSequenceIndependentOfBits(t *testing.T) {
	rng := rand.New(rand.NewSource(182))
	n := randOdd(rng, 64)
	e, _ := New(n, Model)
	m := new(big.Int).Rand(rng, n)

	allOnes := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), 60), big.NewInt(1))
	oneBit := new(big.Int).Lsh(big.NewInt(1), 59)
	_, repA, err := e.ModExpLadder(m, allOnes)
	if err != nil {
		t.Fatal(err)
	}
	_, repB, err := e.ModExpLadder(m, oneBit)
	if err != nil {
		t.Fatal(err)
	}
	if repA.TotalCycles != repB.TotalCycles {
		t.Fatalf("ladder cycle counts differ with Hamming weight: %d vs %d",
			repA.TotalCycles, repB.TotalCycles)
	}
	// Contrast: plain Algorithm 3 differs strongly between the two.
	_, repC, _ := e.ModExp(m, allOnes)
	_, repD, _ := e.ModExp(m, oneBit)
	if repC.TotalCycles == repD.TotalCycles {
		t.Fatal("Algorithm 3 unexpectedly uniform")
	}
}

// Ladder through the cycle-accurate circuit.
func TestLadderSimulated(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	n := randOdd(rng, 16)
	e, err := New(n, Simulate)
	if err != nil {
		t.Fatal(err)
	}
	m := new(big.Int).Rand(rng, n)
	x := big.NewInt(0x59)
	got, rep, err := e.ModExpLadder(m, x)
	if err != nil {
		t.Fatal(err)
	}
	if want := new(big.Int).Exp(m, x, n); got.Cmp(want) != 0 {
		t.Fatal("simulated ladder wrong")
	}
	if rep.SimulatedMulCycles == 0 {
		t.Error("no simulated cycles recorded")
	}
}

func TestLadderValidation(t *testing.T) {
	e, _ := New(big.NewInt(101), Model)
	if _, _, err := e.ModExpLadder(big.NewInt(5), big.NewInt(0)); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, _, err := e.ModExpLadder(big.NewInt(101), big.NewInt(3)); err == nil {
		t.Error("base = N accepted")
	}
}

// The window method must agree with math/big for every width, and wider
// windows must perform fewer multiplications on long exponents.
func TestWindowMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	for _, l := range []int{16, 64, 256} {
		n := randOdd(rng, l)
		e, _ := New(n, Model)
		for _, w := range []int{1, 2, 3, 4, 5} {
			for trial := 0; trial < 4; trial++ {
				m := new(big.Int).Rand(rng, n)
				x := new(big.Int).Rand(rng, n)
				if x.Sign() == 0 {
					x.SetInt64(7)
				}
				got, _, err := e.ModExpWindow(m, x, w)
				if err != nil {
					t.Fatal(err)
				}
				if want := new(big.Int).Exp(m, x, n); got.Cmp(want) != 0 {
					t.Fatalf("l=%d w=%d: window method wrong", l, w)
				}
			}
		}
	}
}

func TestWindowEdgeCases(t *testing.T) {
	e, _ := New(big.NewInt(101), Model)
	if _, _, err := e.ModExpWindow(big.NewInt(5), big.NewInt(3), 0); err == nil {
		t.Error("w=0 accepted")
	}
	if _, _, err := e.ModExpWindow(big.NewInt(5), big.NewInt(3), 17); err == nil {
		t.Error("w=17 accepted")
	}
	if _, _, err := e.ModExpWindow(big.NewInt(5), big.NewInt(0), 4); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, _, err := e.ModExpWindow(big.NewInt(101), big.NewInt(3), 4); err == nil {
		t.Error("base = N accepted")
	}
	// Exponent 1 and exponent shorter than the window.
	got, _, err := e.ModExpWindow(big.NewInt(7), big.NewInt(1), 4)
	if err != nil || got.Int64() != 7 {
		t.Errorf("7^1 = %v (%v)", got, err)
	}
	got, _, _ = e.ModExpWindow(big.NewInt(0), big.NewInt(5), 3)
	if got.Sign() != 0 {
		t.Errorf("0^5 = %v", got)
	}
}

// Window-4 must beat window-1 (≈ binary) in total multiplications on a
// long balanced exponent, and the cycle accounting must track it.
func TestWindowReducesMultiplies(t *testing.T) {
	rng := rand.New(rand.NewSource(185))
	l := 512
	n := randOdd(rng, l)
	e, _ := New(n, Model)
	m := new(big.Int).Rand(rng, n)
	x := new(big.Int).Rand(rng, n)
	x.SetBit(x, l-1, 1)
	_, rep1, err := e.ModExpWindow(m, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, rep4, err := e.ModExpWindow(m, x, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep4.Multiplies >= rep1.Multiplies {
		t.Errorf("w=4 multiplies %d not below w=1's %d", rep4.Multiplies, rep1.Multiplies)
	}
	if rep4.TotalCycles >= rep1.TotalCycles {
		t.Errorf("w=4 total cycles %d not below w=1's %d", rep4.TotalCycles, rep1.TotalCycles)
	}
}
