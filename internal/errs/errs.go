// Package errs is the single home of the repository's typed sentinel
// errors. Every layer — the reference arithmetic (internal/mont), the
// multiplier/exponentiator façade (internal/core, internal/expo), the
// concurrent engine (internal/engine) and the network serving layer
// (internal/server) — either returns these values directly or wraps
// them with fmt.Errorf("...: %w", ...), so callers can classify
// failures with errors.Is regardless of which fidelity level produced
// them. The root montsys package re-exports them all, and the wire
// protocol maps each to a stable response code so the classification
// survives a network hop.
package errs

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

var (
	// ErrEvenModulus reports a modulus with gcd(N, 2) ≠ 1, which
	// Montgomery's method cannot handle in radix 2.
	ErrEvenModulus = errors.New("modulus must be odd")

	// ErrModulusTooSmall reports a modulus below 3, for which the
	// paper's R = 2^(l+2) construction is degenerate.
	ErrModulusTooSmall = errors.New("modulus must be at least 3")

	// ErrOperandRange reports an operand outside the range its
	// operation admits — [0, 2N-1] for Mont, [0, N-1] for MulMod and
	// exponentiation bases, > 0 for exponents.
	ErrOperandRange = errors.New("operand out of range")

	// ErrEngineClosed reports a submission to an engine whose Close has
	// begun; no further jobs are accepted.
	ErrEngineClosed = errors.New("engine is closed")

	// ErrOverloaded reports a request rejected by the server's admission
	// control: the in-flight bound was reached and the server fast-fails
	// rather than queueing without limit. The condition is transient —
	// clients should retry with backoff.
	ErrOverloaded = errors.New("server overloaded")

	// ErrDraining reports a request that arrived while the server was
	// gracefully shutting down: accepted work is completing but no new
	// work is admitted. Transient from a fleet's point of view (another
	// instance may accept the retry).
	ErrDraining = errors.New("server draining")

	// ErrProtocol reports a malformed or oversized wire frame — a
	// version mismatch, an unknown opcode, or a truncated payload. Not
	// retryable: the same bytes will fail the same way.
	ErrProtocol = errors.New("protocol error")

	// ErrBackendDown reports that the transport to a backend failed: a
	// dial was refused (the wrapped chain carries the dial error) or a
	// connection died and the retry budget ran out before it could be
	// re-established. The cluster tier classifies this with errors.Is
	// to fail over to the next backend; from a single client's point of
	// view it is transient the way ErrDraining is — another instance
	// may answer the retry.
	ErrBackendDown = errors.New("backend down")

	// ErrRateLimited reports a request rejected by per-tenant admission
	// control: the tenant's token bucket is empty. Deliberately distinct
	// from ErrOverloaded — overload says the *server* is out of
	// capacity and a jittered-backoff retry may land in free capacity;
	// rate limiting says the *tenant* is over its own quota, and
	// retrying early can only fail again while burning server admission
	// work. The wire carries a retry-after hint (see RateLimited);
	// clients must not retry before it elapses.
	ErrRateLimited = errors.New("tenant rate limited")

	// ErrBadKey reports key material that fails its consistency checks
	// before any private-key operation runs: an RSA key whose N ≠ P·Q or
	// whose CRT residues disagree with D, an ECDSA scalar outside
	// [1, order-1], a public point not on its curve, or an unknown curve
	// id. Not retryable — the same key will fail the same way — and
	// deliberately distinct from ErrOperandRange so a signing client can
	// tell "fix your key" from "fix your message".
	ErrBadKey = errors.New("invalid key material")

	// ErrIntegrity reports a result that failed the engine's end-to-end
	// integrity checks: a Montgomery product whose residue identity
	// T·R ≡ x·y (mod N) does not hold, an exponentiation whose big.Int
	// re-verification mismatched, a core that panicked mid-job, or a job
	// the per-core watchdog declared stuck past its hardware-derived
	// cycle budget. It marks corrupted compute, not bad input: the
	// offending core is quarantined and (policy permitting) the job is
	// recomputed on a different core before this error ever surfaces.
	// The cluster tier treats it like ErrDraining — a free failover to
	// another backend, since the answer must never be trusted.
	ErrIntegrity = errors.New("result failed integrity check")
)

// RateLimited is the structured form of ErrRateLimited: which tenant
// was limited and how long until the next token accrues. It survives a
// network hop — the wire code's message renders via Error and the
// client side reparses it — so errors.As recovers the retry-after hint
// on either side of the connection.
type RateLimited struct {
	Tenant     string
	RetryAfter time.Duration
}

// Error renders the fixed grammar the wire round-trips:
//
//	tenant "acme" rate limited: retry after 25ms
//
// RetryAfter uses time.Duration.String, which time.ParseDuration
// accepts back verbatim.
func (e *RateLimited) Error() string {
	return fmt.Sprintf("tenant %q rate limited: retry after %s", e.Tenant, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrRateLimited) hold.
func (e *RateLimited) Unwrap() error { return ErrRateLimited }

// ParseRateLimited recovers a RateLimited from the rendered form in
// msg (ok=false if msg is not in Error's grammar). The wire's error
// responses carry only a code and a message, so the hint rides the
// message; this is the inverse the client uses.
func ParseRateLimited(msg string) (*RateLimited, bool) {
	// Search rather than prefix-match: intermediate layers may have
	// wrapped the rendered form in their own "layer: " prefixes.
	i := strings.Index(msg, "tenant \"")
	if i < 0 {
		return nil, false
	}
	rest := msg[i+len("tenant \""):]
	tenant, rest, ok := strings.Cut(rest, "\" rate limited: retry after ")
	if !ok {
		return nil, false
	}
	d, err := time.ParseDuration(strings.TrimSpace(rest))
	if err != nil {
		return nil, false
	}
	return &RateLimited{Tenant: tenant, RetryAfter: d}, true
}
