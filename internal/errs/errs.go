// Package errs is the single home of the repository's typed sentinel
// errors. Every layer — the reference arithmetic (internal/mont), the
// multiplier/exponentiator façade (internal/core, internal/expo), the
// concurrent engine (internal/engine) and the network serving layer
// (internal/server) — either returns these values directly or wraps
// them with fmt.Errorf("...: %w", ...), so callers can classify
// failures with errors.Is regardless of which fidelity level produced
// them. The root montsys package re-exports them all, and the wire
// protocol maps each to a stable response code so the classification
// survives a network hop.
package errs

import "errors"

var (
	// ErrEvenModulus reports a modulus with gcd(N, 2) ≠ 1, which
	// Montgomery's method cannot handle in radix 2.
	ErrEvenModulus = errors.New("modulus must be odd")

	// ErrModulusTooSmall reports a modulus below 3, for which the
	// paper's R = 2^(l+2) construction is degenerate.
	ErrModulusTooSmall = errors.New("modulus must be at least 3")

	// ErrOperandRange reports an operand outside the range its
	// operation admits — [0, 2N-1] for Mont, [0, N-1] for MulMod and
	// exponentiation bases, > 0 for exponents.
	ErrOperandRange = errors.New("operand out of range")

	// ErrEngineClosed reports a submission to an engine whose Close has
	// begun; no further jobs are accepted.
	ErrEngineClosed = errors.New("engine is closed")

	// ErrOverloaded reports a request rejected by the server's admission
	// control: the in-flight bound was reached and the server fast-fails
	// rather than queueing without limit. The condition is transient —
	// clients should retry with backoff.
	ErrOverloaded = errors.New("server overloaded")

	// ErrDraining reports a request that arrived while the server was
	// gracefully shutting down: accepted work is completing but no new
	// work is admitted. Transient from a fleet's point of view (another
	// instance may accept the retry).
	ErrDraining = errors.New("server draining")

	// ErrProtocol reports a malformed or oversized wire frame — a
	// version mismatch, an unknown opcode, or a truncated payload. Not
	// retryable: the same bytes will fail the same way.
	ErrProtocol = errors.New("protocol error")

	// ErrBackendDown reports that the transport to a backend failed: a
	// dial was refused (the wrapped chain carries the dial error) or a
	// connection died and the retry budget ran out before it could be
	// re-established. The cluster tier classifies this with errors.Is
	// to fail over to the next backend; from a single client's point of
	// view it is transient the way ErrDraining is — another instance
	// may answer the retry.
	ErrBackendDown = errors.New("backend down")

	// ErrBadKey reports key material that fails its consistency checks
	// before any private-key operation runs: an RSA key whose N ≠ P·Q or
	// whose CRT residues disagree with D, an ECDSA scalar outside
	// [1, order-1], a public point not on its curve, or an unknown curve
	// id. Not retryable — the same key will fail the same way — and
	// deliberately distinct from ErrOperandRange so a signing client can
	// tell "fix your key" from "fix your message".
	ErrBadKey = errors.New("invalid key material")

	// ErrIntegrity reports a result that failed the engine's end-to-end
	// integrity checks: a Montgomery product whose residue identity
	// T·R ≡ x·y (mod N) does not hold, an exponentiation whose big.Int
	// re-verification mismatched, a core that panicked mid-job, or a job
	// the per-core watchdog declared stuck past its hardware-derived
	// cycle budget. It marks corrupted compute, not bad input: the
	// offending core is quarantined and (policy permitting) the job is
	// recomputed on a different core before this error ever surfaces.
	// The cluster tier treats it like ErrDraining — a free failover to
	// another backend, since the answer must never be trusted.
	ErrIntegrity = errors.New("result failed integrity check")
)
