// Package ecc implements the paper's stated next step (§5 and ref [20]):
// elliptic-curve point multiplication over GF(p) built exclusively from
// the reproduced Montgomery multiplier — "this operation does not require
// modular exponentiation but modular multiplication only, so all required
// components are available".
//
// Curves are short Weierstrass y² = x³ + ax + b over an odd prime p.
// All field elements are kept in the Montgomery domain (x·R mod p), so
// every field multiplication is exactly one pass of the paper's
// Algorithm 2 (internal/mont.Ctx.Mul); additions and subtractions are
// plain modular ring operations; the only inversion happens when a
// Jacobian point is finally converted to affine coordinates, computed as
// z^(p-2) via the same Montgomery exponentiator.
//
// Scalar multiplication is provided both as left-to-right double-and-add
// and as a Montgomery ladder (the constant-sequence variant relevant to
// the paper's side-channel discussion).
package ecc

import (
	"errors"
	"fmt"
	"math/big"
	"sync/atomic"

	"repro/internal/mont"
)

// Curve is a short Weierstrass curve over GF(p) with a designated base
// point.
type Curve struct {
	P      *big.Int // field prime (odd, ≥ 5)
	A, B   *big.Int // curve coefficients
	Gx, Gy *big.Int // base point (affine, integer domain)
	Order  *big.Int // order of the base point (optional, may be nil)

	ctx *mont.Ctx
	aM  *big.Int // A in Montgomery domain, canonical
	bM  *big.Int // B in Montgomery domain, canonical

	// fieldMuls counts Montgomery multiplications performed — the
	// quantity a hardware cost model multiplies by T_MMM. Atomic:
	// process-wide curve instances (cryptosvc.CurveByID) serve
	// concurrent signing requests.
	fieldMuls atomic.Int64
}

// FieldMulCount returns the number of Montgomery field multiplications
// performed on this curve since construction or the last
// ResetFieldMuls — the quantity a hardware cost model multiplies by
// T_MMM.
func (c *Curve) FieldMulCount() int64 { return c.fieldMuls.Load() }

// ResetFieldMuls zeroes the field-multiplication counter (cost-model
// measurement runs bracket an operation with Reset + Count).
func (c *Curve) ResetFieldMuls() { c.fieldMuls.Store(0) }

// Point is a Jacobian-coordinate point with Montgomery-domain
// coordinates; Z = 0 encodes the point at infinity.
type Point struct {
	X, Y, Z *big.Int
}

// NewCurve validates the parameters and prepares the Montgomery context.
func NewCurve(p, a, b, gx, gy, order *big.Int) (*Curve, error) {
	if p.Cmp(big.NewInt(5)) < 0 || p.Bit(0) == 0 {
		return nil, errors.New("ecc: field prime must be odd and at least 5")
	}
	ctx, err := mont.NewCtx(p)
	if err != nil {
		return nil, err
	}
	c := &Curve{
		P:   new(big.Int).Set(p),
		A:   new(big.Int).Mod(a, p),
		B:   new(big.Int).Mod(b, p),
		ctx: ctx,
	}
	// Non-singularity: 4a³ + 27b² ≠ 0 mod p.
	disc := new(big.Int).Exp(c.A, big.NewInt(3), p)
	disc.Lsh(disc, 2)
	b2 := new(big.Int).Mul(c.B, c.B)
	b2.Mul(b2, big.NewInt(27))
	disc.Add(disc, b2)
	disc.Mod(disc, p)
	if disc.Sign() == 0 {
		return nil, errors.New("ecc: singular curve (4a³ + 27b² ≡ 0)")
	}
	c.aM = c.toM(c.A)
	c.bM = c.toM(c.B)
	if gx != nil && gy != nil {
		c.Gx = new(big.Int).Mod(gx, p)
		c.Gy = new(big.Int).Mod(gy, p)
		if !c.IsOnCurve(c.Gx, c.Gy) {
			return nil, errors.New("ecc: base point not on curve")
		}
	}
	if order != nil {
		c.Order = new(big.Int).Set(order)
	}
	return c, nil
}

// toM converts an integer-domain value into canonical Montgomery form.
func (c *Curve) toM(x *big.Int) *big.Int {
	return c.ctx.Reduce(c.ctx.ToMont(new(big.Int).Mod(x, c.P)))
}

// fromM converts back to the integer domain, canonical.
func (c *Curve) fromM(x *big.Int) *big.Int {
	return c.ctx.Reduce(c.ctx.FromMont(x))
}

// mul is one Montgomery field multiplication (one Algorithm-2 pass),
// canonicalized to [0, p).
func (c *Curve) mul(x, y *big.Int) *big.Int {
	c.fieldMuls.Add(1)
	return c.ctx.Reduce(c.ctx.Mul(x, y))
}

func (c *Curve) sqr(x *big.Int) *big.Int { return c.mul(x, x) }

func (c *Curve) add(x, y *big.Int) *big.Int {
	s := new(big.Int).Add(x, y)
	if s.Cmp(c.P) >= 0 {
		s.Sub(s, c.P)
	}
	return s
}

func (c *Curve) sub(x, y *big.Int) *big.Int {
	d := new(big.Int).Sub(x, y)
	if d.Sign() < 0 {
		d.Add(d, c.P)
	}
	return d
}

func (c *Curve) mulSmall(x *big.Int, k int64) *big.Int {
	v := new(big.Int).Mul(x, big.NewInt(k))
	return v.Mod(v, c.P)
}

// Infinity returns the point at infinity.
func (c *Curve) Infinity() *Point {
	return &Point{X: big.NewInt(1), Y: big.NewInt(1), Z: big.NewInt(0)}
}

// IsInfinity reports whether pt is the point at infinity.
func (c *Curve) IsInfinity(pt *Point) bool { return pt.Z.Sign() == 0 }

// NewPoint builds a Jacobian point from affine integer-domain
// coordinates, converting into the Montgomery domain.
func (c *Curve) NewPoint(x, y *big.Int) (*Point, error) {
	xm, ym := new(big.Int).Mod(x, c.P), new(big.Int).Mod(y, c.P)
	if !c.IsOnCurve(xm, ym) {
		return nil, fmt.Errorf("ecc: (%s, %s) not on curve", x, y)
	}
	return &Point{X: c.toM(xm), Y: c.toM(ym), Z: c.toM(big.NewInt(1))}, nil
}

// Base returns the curve's base point.
func (c *Curve) Base() (*Point, error) {
	if c.Gx == nil {
		return nil, errors.New("ecc: curve has no base point")
	}
	return c.NewPoint(c.Gx, c.Gy)
}

// IsOnCurve checks y² = x³ + ax + b for affine integer-domain (x, y).
func (c *Curve) IsOnCurve(x, y *big.Int) bool {
	lhs := new(big.Int).Mul(y, y)
	lhs.Mod(lhs, c.P)
	rhs := new(big.Int).Exp(x, big.NewInt(3), c.P)
	ax := new(big.Int).Mul(c.A, x)
	rhs.Add(rhs, ax)
	rhs.Add(rhs, c.B)
	rhs.Mod(rhs, c.P)
	return lhs.Cmp(rhs) == 0
}

// Double returns 2·pt (Jacobian doubling, general a).
func (c *Curve) Double(pt *Point) *Point {
	if c.IsInfinity(pt) || pt.Y.Sign() == 0 {
		return c.Infinity()
	}
	y2 := c.sqr(pt.Y)                       // Y²
	s := c.mul(pt.X, y2)                    // XY²
	s = c.mulSmall(s, 4)                    // S = 4XY²
	z2 := c.sqr(pt.Z)                       // Z²
	m := c.mulSmall(c.sqr(pt.X), 3)         // 3X²
	m = c.add(m, c.mul(c.aM, c.sqr(z2)))    // M = 3X² + aZ⁴
	x3 := c.sub(c.sqr(m), c.mulSmall(s, 2)) // X' = M² − 2S
	y4 := c.mulSmall(c.sqr(y2), 8)          // 8Y⁴
	y3 := c.sub(c.mul(m, c.sub(s, x3)), y4) // Y' = M(S − X') − 8Y⁴
	z3 := c.mulSmall(c.mul(pt.Y, pt.Z), 2)  // Z' = 2YZ
	return &Point{X: x3, Y: y3, Z: z3}
}

// Add returns p1 + p2 (Jacobian addition, handling all special cases).
func (c *Curve) Add(p1, p2 *Point) *Point {
	if c.IsInfinity(p1) {
		return &Point{X: new(big.Int).Set(p2.X), Y: new(big.Int).Set(p2.Y), Z: new(big.Int).Set(p2.Z)}
	}
	if c.IsInfinity(p2) {
		return &Point{X: new(big.Int).Set(p1.X), Y: new(big.Int).Set(p1.Y), Z: new(big.Int).Set(p1.Z)}
	}
	z1z1 := c.sqr(p1.Z)
	z2z2 := c.sqr(p2.Z)
	u1 := c.mul(p1.X, z2z2)
	u2 := c.mul(p2.X, z1z1)
	s1 := c.mul(p1.Y, c.mul(z2z2, p2.Z))
	s2 := c.mul(p2.Y, c.mul(z1z1, p1.Z))
	h := c.sub(u2, u1)
	r := c.sub(s2, s1)
	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return c.Double(p1)
		}
		return c.Infinity()
	}
	h2 := c.sqr(h)
	h3 := c.mul(h2, h)
	u1h2 := c.mul(u1, h2)
	x3 := c.sub(c.sub(c.sqr(r), h3), c.mulSmall(u1h2, 2))
	y3 := c.sub(c.mul(r, c.sub(u1h2, x3)), c.mul(s1, h3))
	z3 := c.mul(c.mul(p1.Z, p2.Z), h)
	return &Point{X: x3, Y: y3, Z: z3}
}

// ScalarMult returns k·pt by left-to-right double-and-add.
func (c *Curve) ScalarMult(pt *Point, k *big.Int) (*Point, error) {
	if k.Sign() < 0 {
		return nil, errors.New("ecc: negative scalar")
	}
	acc := c.Infinity()
	for i := k.BitLen() - 1; i >= 0; i-- {
		acc = c.Double(acc)
		if k.Bit(i) == 1 {
			acc = c.Add(acc, pt)
		}
	}
	return acc, nil
}

// ScalarMultLadder returns k·pt with a Montgomery ladder: one double and
// one add per scalar bit regardless of its value — the uniform operation
// sequence the paper's side-channel argument calls for at the protocol
// level.
func (c *Curve) ScalarMultLadder(pt *Point, k *big.Int) (*Point, error) {
	if k.Sign() < 0 {
		return nil, errors.New("ecc: negative scalar")
	}
	r0 := c.Infinity()
	r1 := &Point{X: new(big.Int).Set(pt.X), Y: new(big.Int).Set(pt.Y), Z: new(big.Int).Set(pt.Z)}
	for i := k.BitLen() - 1; i >= 0; i-- {
		if k.Bit(i) == 0 {
			r1 = c.Add(r0, r1)
			r0 = c.Double(r0)
		} else {
			r0 = c.Add(r0, r1)
			r1 = c.Double(r1)
		}
	}
	return r0, nil
}

// ScalarBaseMult returns k·G.
func (c *Curve) ScalarBaseMult(k *big.Int) (*Point, error) {
	g, err := c.Base()
	if err != nil {
		return nil, err
	}
	return c.ScalarMult(g, k)
}

// Affine converts a Jacobian point to affine integer-domain coordinates.
// The inversion Z⁻¹ = Z^(p-2) runs through the Montgomery exponentiator
// (Fermat), keeping the whole pipeline on the paper's multiplier. The
// second return is false for the point at infinity.
func (c *Curve) Affine(pt *Point) (x, y *big.Int, ok bool) {
	if c.IsInfinity(pt) {
		return nil, nil, false
	}
	z := c.fromM(pt.Z)
	pm2 := new(big.Int).Sub(c.P, big.NewInt(2))
	zinv, _, err := c.ctx.Exp(z, pm2)
	if err != nil {
		panic(fmt.Sprintf("ecc: inversion failed: %v", err))
	}
	zinvM := c.toM(zinv)
	zinv2 := c.mul(zinvM, zinvM)
	zinv3 := c.mul(zinv2, zinvM)
	x = c.fromM(c.mul(pt.X, zinv2))
	y = c.fromM(c.mul(pt.Y, zinv3))
	return x, y, true
}

// Equal reports whether two Jacobian points denote the same curve point.
func (c *Curve) Equal(p1, p2 *Point) bool {
	i1, i2 := c.IsInfinity(p1), c.IsInfinity(p2)
	if i1 || i2 {
		return i1 == i2
	}
	x1, y1, _ := c.Affine(p1)
	x2, y2, _ := c.Affine(p2)
	return x1.Cmp(x2) == 0 && y1.Cmp(y2) == 0
}

// P256 returns the NIST P-256 curve (parameters hardcoded from FIPS
// 186-4), used to cross-check this package against crypto/elliptic.
func P256() (*Curve, error) {
	p, _ := new(big.Int).SetString("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff", 16)
	b, _ := new(big.Int).SetString("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b", 16)
	gx, _ := new(big.Int).SetString("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296", 16)
	gy, _ := new(big.Int).SetString("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5", 16)
	n, _ := new(big.Int).SetString("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551", 16)
	a := new(big.Int).Sub(p, big.NewInt(3)) // a = -3 mod p
	return NewCurve(p, a, b, gx, gy, n)
}
