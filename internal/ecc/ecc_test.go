package ecc

import (
	"crypto/elliptic"
	"math/big"
	"math/rand"
	"testing"
)

// tinyCurve returns y² = x³ + 2x + 3 over GF(97) with base point (3, 6).
// Its group order is small enough to verify by brute force.
func tinyCurve(t *testing.T) *Curve {
	t.Helper()
	c, err := NewCurve(big.NewInt(97), big.NewInt(2), big.NewInt(3),
		big.NewInt(3), big.NewInt(6), nil)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(big.NewInt(4), big.NewInt(1), big.NewInt(1), nil, nil, nil); err == nil {
		t.Error("even prime accepted")
	}
	// Singular: a = b = 0.
	if _, err := NewCurve(big.NewInt(97), big.NewInt(0), big.NewInt(0), nil, nil, nil); err == nil {
		t.Error("singular curve accepted")
	}
	// Base point off curve.
	if _, err := NewCurve(big.NewInt(97), big.NewInt(2), big.NewInt(3),
		big.NewInt(3), big.NewInt(7), nil); err == nil {
		t.Error("off-curve base point accepted")
	}
}

func TestIsOnCurve(t *testing.T) {
	c := tinyCurve(t)
	if !c.IsOnCurve(big.NewInt(3), big.NewInt(6)) {
		t.Error("base point rejected")
	}
	if c.IsOnCurve(big.NewInt(3), big.NewInt(7)) {
		t.Error("off-curve point accepted")
	}
}

func TestNewPointRejectsOffCurve(t *testing.T) {
	c := tinyCurve(t)
	if _, err := c.NewPoint(big.NewInt(1), big.NewInt(1)); err == nil {
		t.Error("off-curve point constructed")
	}
}

// Affine(NewPoint(x, y)) must round-trip.
func TestAffineRoundTrip(t *testing.T) {
	c := tinyCurve(t)
	pt, err := c.NewPoint(big.NewInt(3), big.NewInt(6))
	if err != nil {
		t.Fatal(err)
	}
	x, y, ok := c.Affine(pt)
	if !ok || x.Int64() != 3 || y.Int64() != 6 {
		t.Fatalf("round trip: (%v, %v, %v)", x, y, ok)
	}
	if _, _, ok := c.Affine(c.Infinity()); ok {
		t.Error("infinity has affine coordinates")
	}
}

// Compare Double/Add against brute-force affine group law on the tiny
// curve, over every reachable multiple of G.
func TestGroupLawAgainstBruteForce(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()

	// Brute-force affine multiples of (3, 6).
	type aff struct{ x, y int64 }
	affAdd := func(p1, p2 *aff) *aff {
		// nil = infinity
		if p1 == nil {
			return p2
		}
		if p2 == nil {
			return p1
		}
		p := int64(97)
		mod := func(v int64) int64 { return ((v % p) + p) % p }
		inv := func(v int64) int64 {
			r := new(big.Int).ModInverse(big.NewInt(mod(v)), big.NewInt(p))
			return r.Int64()
		}
		var lam int64
		if p1.x == p2.x {
			if mod(p1.y+p2.y) == 0 {
				return nil
			}
			lam = mod(mod(3*p1.x*p1.x+2) * inv(2*p1.y))
		} else {
			lam = mod(mod(p2.y-p1.y) * inv(p2.x-p1.x))
		}
		x3 := mod(lam*lam - p1.x - p2.x)
		y3 := mod(lam*(p1.x-x3) - p1.y)
		return &aff{x3, y3}
	}

	ref := &aff{3, 6}
	jac := g
	for k := 2; k <= 40; k++ {
		ref = affAdd(ref, &aff{3, 6})
		jac = c.Add(jac, g)
		if ref == nil {
			if !c.IsInfinity(jac) {
				t.Fatalf("k=%d: expected infinity", k)
			}
			// Both wrapped; continue past infinity.
			ref = nil
			continue
		}
		x, y, ok := c.Affine(jac)
		if !ok || x.Int64() != ref.x || y.Int64() != ref.y {
			t.Fatalf("k=%d: got (%v,%v) want (%d,%d)", k, x, y, ref.x, ref.y)
		}
	}
}

// Doubling via Add(p, p) must agree with Double(p).
func TestAddOfEqualPointsDoubles(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	d1 := c.Double(g)
	d2 := c.Add(g, g)
	if !c.Equal(d1, d2) {
		t.Error("Add(g,g) != Double(g)")
	}
}

// P + (-P) must be infinity.
func TestAddInverse(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	neg, err := c.NewPoint(big.NewInt(3), big.NewInt(97-6))
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsInfinity(c.Add(g, neg)) {
		t.Error("P + (-P) != O")
	}
}

func TestInfinityIdentity(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	if !c.Equal(c.Add(g, c.Infinity()), g) {
		t.Error("P + O != P")
	}
	if !c.Equal(c.Add(c.Infinity(), g), g) {
		t.Error("O + P != P")
	}
	if !c.IsInfinity(c.Double(c.Infinity())) {
		t.Error("2·O != O")
	}
}

// Double-and-add and the Montgomery ladder must agree for many scalars,
// including 0 and 1.
func TestLadderMatchesDoubleAndAdd(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 60; trial++ {
		k := big.NewInt(int64(trial))
		if trial >= 50 {
			k = new(big.Int).Rand(rng, big.NewInt(1<<30))
		}
		p1, err := c.ScalarMult(g, k)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := c.ScalarMultLadder(g, k)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(p1, p2) {
			t.Fatalf("k=%s: ladder disagrees", k)
		}
	}
	if _, err := c.ScalarMult(g, big.NewInt(-1)); err == nil {
		t.Error("negative scalar accepted")
	}
	if _, err := c.ScalarMultLadder(g, big.NewInt(-1)); err == nil {
		t.Error("negative scalar accepted by ladder")
	}
}

// Cross-check scalar multiplication on P-256 against crypto/elliptic.
func TestP256AgainstStdlib(t *testing.T) {
	c, err := P256()
	if err != nil {
		t.Fatal(err)
	}
	std := elliptic.P256()
	rng := rand.New(rand.NewSource(112))
	for trial := 0; trial < 4; trial++ {
		k := new(big.Int).Rand(rng, c.Order)
		if k.Sign() == 0 {
			k.SetInt64(1)
		}
		pt, err := c.ScalarBaseMult(k)
		if err != nil {
			t.Fatal(err)
		}
		gx, gy, ok := c.Affine(pt)
		if !ok {
			t.Fatal("k·G at infinity unexpectedly")
		}
		wx, wy := std.ScalarBaseMult(k.Bytes())
		if gx.Cmp(wx) != 0 || gy.Cmp(wy) != 0 {
			t.Fatalf("P-256 scalar mult mismatch for k=%s", k)
		}
	}
}

// n·G must be the point at infinity on P-256.
func TestP256OrderAnnihilates(t *testing.T) {
	c, err := P256()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := c.ScalarBaseMult(c.Order)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsInfinity(pt) {
		t.Error("n·G != O on P-256")
	}
}

// The field-multiplication counter feeds the hardware cost model; a
// ladder step must cost a fixed number of multiplications per bit.
func TestFieldMulAccounting(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	c.ResetFieldMuls()
	if _, err := c.ScalarMultLadder(g, big.NewInt(0xFFFF)); err != nil {
		t.Fatal(err)
	}
	if c.FieldMulCount() == 0 {
		t.Error("no field multiplications counted")
	}
}
