package ecc

import (
	"errors"
	"fmt"
	"math/big"
)

// SEC1 point encoding: the wire format every ECC deployment speaks.
// Uncompressed (0x04 ‖ X ‖ Y) and compressed (0x02/0x03 ‖ X) forms, with
// decompression via the Tonelli–Shanks square root computed — like every
// other modular operation here — through the Montgomery exponentiator.

// byteLen returns the field element encoding length.
func (c *Curve) byteLen() int { return (c.P.BitLen() + 7) / 8 }

// Marshal encodes an affine point uncompressed (0x04 form). The point at
// infinity encodes as the single byte 0x00, as in SEC1 §2.3.3.
func (c *Curve) Marshal(pt *Point) []byte {
	x, y, ok := c.Affine(pt)
	if !ok {
		return []byte{0}
	}
	bl := c.byteLen()
	out := make([]byte, 1+2*bl)
	out[0] = 4
	x.FillBytes(out[1 : 1+bl])
	y.FillBytes(out[1+bl:])
	return out
}

// MarshalCompressed encodes an affine point compressed (0x02/0x03 form).
func (c *Curve) MarshalCompressed(pt *Point) []byte {
	x, y, ok := c.Affine(pt)
	if !ok {
		return []byte{0}
	}
	bl := c.byteLen()
	out := make([]byte, 1+bl)
	out[0] = byte(2 + y.Bit(0))
	x.FillBytes(out[1:])
	return out
}

// Unmarshal decodes either SEC1 form back to a validated curve point.
func (c *Curve) Unmarshal(data []byte) (*Point, error) {
	if len(data) == 0 {
		return nil, errors.New("ecc: empty encoding")
	}
	bl := c.byteLen()
	switch data[0] {
	case 0:
		if len(data) != 1 {
			return nil, errors.New("ecc: malformed infinity encoding")
		}
		return c.Infinity(), nil
	case 4:
		if len(data) != 1+2*bl {
			return nil, fmt.Errorf("ecc: uncompressed encoding needs %d bytes, got %d", 1+2*bl, len(data))
		}
		x := new(big.Int).SetBytes(data[1 : 1+bl])
		y := new(big.Int).SetBytes(data[1+bl:])
		return c.NewPoint(x, y)
	case 2, 3:
		if len(data) != 1+bl {
			return nil, fmt.Errorf("ecc: compressed encoding needs %d bytes, got %d", 1+bl, len(data))
		}
		x := new(big.Int).SetBytes(data[1:])
		if x.Cmp(c.P) >= 0 {
			return nil, errors.New("ecc: x out of range")
		}
		// y² = x³ + ax + b
		rhs := new(big.Int).Exp(x, big.NewInt(3), c.P)
		ax := new(big.Int).Mul(c.A, x)
		rhs.Add(rhs, ax)
		rhs.Add(rhs, c.B)
		rhs.Mod(rhs, c.P)
		y, err := c.SqrtMod(rhs)
		if err != nil {
			return nil, err
		}
		if y.Bit(0) != uint(data[0]&1) {
			y.Sub(c.P, y)
		}
		return c.NewPoint(x, y)
	default:
		return nil, fmt.Errorf("ecc: unknown encoding tag %#x", data[0])
	}
}

// SqrtMod computes a square root of a mod P (P odd prime), or errors if
// a is a non-residue. The p ≡ 3 (mod 4) fast path and the general
// Tonelli–Shanks both run their exponentiations through the Montgomery
// core.
func (c *Curve) SqrtMod(a *big.Int) (*big.Int, error) {
	a = new(big.Int).Mod(a, c.P)
	if a.Sign() == 0 {
		return big.NewInt(0), nil
	}
	exp := func(base, e *big.Int) *big.Int {
		r, _, err := c.ctx.Exp(new(big.Int).Mod(base, c.P), e)
		if err != nil {
			panic(fmt.Sprintf("ecc: exponentiation failed: %v", err))
		}
		return r
	}
	// Euler criterion.
	pm1 := new(big.Int).Sub(c.P, big.NewInt(1))
	half := new(big.Int).Rsh(pm1, 1)
	if exp(a, half).Cmp(big.NewInt(1)) != 0 {
		return nil, errors.New("ecc: not a quadratic residue")
	}
	if c.P.Bit(0) == 1 && c.P.Bit(1) == 1 { // p ≡ 3 (mod 4)
		e := new(big.Int).Add(c.P, big.NewInt(1))
		e.Rsh(e, 2)
		return exp(a, e), nil
	}
	// Tonelli–Shanks: p-1 = q·2^s with q odd.
	q := new(big.Int).Set(pm1)
	s := 0
	for q.Bit(0) == 0 {
		q.Rsh(q, 1)
		s++
	}
	// Find a non-residue z.
	z := big.NewInt(2)
	for exp(z, half).Cmp(pm1) != 0 {
		z.Add(z, big.NewInt(1))
	}
	m := s
	cc := exp(z, q)
	t := exp(a, q)
	qp1 := new(big.Int).Add(q, big.NewInt(1))
	qp1.Rsh(qp1, 1)
	r := exp(a, qp1)
	for t.Cmp(big.NewInt(1)) != 0 {
		// Find least i with t^(2^i) = 1.
		i := 0
		tt := new(big.Int).Set(t)
		for tt.Cmp(big.NewInt(1)) != 0 {
			tt.Mul(tt, tt)
			tt.Mod(tt, c.P)
			i++
			if i == m {
				return nil, errors.New("ecc: Tonelli–Shanks failed")
			}
		}
		b := new(big.Int).Set(cc)
		for j := 0; j < m-i-1; j++ {
			b.Mul(b, b)
			b.Mod(b, c.P)
		}
		m = i
		cc.Mul(b, b)
		cc.Mod(cc, c.P)
		t.Mul(t, cc)
		t.Mod(t, c.P)
		r.Mul(r, b)
		r.Mod(r, c.P)
	}
	return r, nil
}
