package ecc

import (
	"crypto/elliptic"
	"math/big"
	"math/rand"
	"testing"
)

// wNAF recoding invariants: digits reconstruct k, all nonzero digits are
// odd and within (-2^(w-1), 2^(w-1)), and no w consecutive digits hold
// two nonzeros.
func TestWNAFRecoding(t *testing.T) {
	rng := rand.New(rand.NewSource(241))
	for _, w := range []int{2, 3, 4, 5} {
		for trial := 0; trial < 100; trial++ {
			k := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
			digits := wnaf(k, w)
			acc := new(big.Int)
			for i := len(digits) - 1; i >= 0; i-- {
				acc.Lsh(acc, 1)
				acc.Add(acc, big.NewInt(int64(digits[i])))
			}
			if acc.Cmp(k) != 0 {
				t.Fatalf("w=%d: recoding does not reconstruct k", w)
			}
			half := 1 << (w - 1)
			lastNZ := -w
			for i, d := range digits {
				if d == 0 {
					continue
				}
				if d%2 == 0 || d >= half || d <= -half {
					t.Fatalf("w=%d: invalid digit %d", w, d)
				}
				if i-lastNZ < w {
					t.Fatalf("w=%d: nonzeros too close (%d, %d)", w, lastNZ, i)
				}
				lastNZ = i
			}
		}
	}
}

func TestNeg(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	if !c.IsInfinity(c.Add(g, c.Neg(g))) {
		t.Error("P + Neg(P) != O")
	}
	if !c.IsInfinity(c.Neg(c.Infinity())) {
		t.Error("Neg(O) != O")
	}
}

// wNAF scalar multiplication must agree with double-and-add across
// widths and scalars, including edge scalars.
func TestScalarMultWNAFMatches(t *testing.T) {
	c := tinyCurve(t)
	g, _ := c.Base()
	rng := rand.New(rand.NewSource(242))
	for _, w := range []int{2, 3, 4, 6} {
		for trial := 0; trial < 40; trial++ {
			var k *big.Int
			switch trial {
			case 0:
				k = big.NewInt(0)
			case 1:
				k = big.NewInt(1)
			case 2:
				k = big.NewInt(2)
			default:
				k = new(big.Int).Rand(rng, big.NewInt(1<<40))
			}
			want, err := c.ScalarMult(g, k)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.ScalarMultWNAF(g, k, w)
			if err != nil {
				t.Fatal(err)
			}
			if !c.Equal(got, want) {
				t.Fatalf("w=%d k=%s: wNAF disagrees", w, k)
			}
		}
	}
	if _, err := c.ScalarMultWNAF(g, big.NewInt(-1), 4); err == nil {
		t.Error("negative scalar accepted")
	}
	if _, err := c.ScalarMultWNAF(g, big.NewInt(5), 1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := c.ScalarMultWNAF(g, big.NewInt(5), 9); err == nil {
		t.Error("width 9 accepted")
	}
}

// P-384 cross-check against crypto/elliptic, via wNAF.
func TestP384AgainstStdlib(t *testing.T) {
	c, err := P384()
	if err != nil {
		t.Fatal(err)
	}
	std := elliptic.P384()
	rng := rand.New(rand.NewSource(243))
	g, err := c.Base()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2; trial++ {
		k := new(big.Int).Rand(rng, c.Order)
		if k.Sign() == 0 {
			k.SetInt64(1)
		}
		pt, err := c.ScalarMultWNAF(g, k, 5)
		if err != nil {
			t.Fatal(err)
		}
		gx, gy, ok := c.Affine(pt)
		if !ok {
			t.Fatal("unexpected infinity")
		}
		wx, wy := std.ScalarBaseMult(k.Bytes())
		if gx.Cmp(wx) != 0 || gy.Cmp(wy) != 0 {
			t.Fatalf("P-384 wNAF mismatch")
		}
	}
}

// SEC1 round trips, compressed and uncompressed, plus stdlib interop.
func TestMarshalRoundTrip(t *testing.T) {
	for _, mk := range []func() (*Curve, error){P256, P384} {
		c, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(244))
		k := new(big.Int).Rand(rng, c.Order)
		pt, err := c.ScalarBaseMult(k)
		if err != nil {
			t.Fatal(err)
		}
		unc := c.Marshal(pt)
		back, err := c.Unmarshal(unc)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(back, pt) {
			t.Fatal("uncompressed round trip failed")
		}
		comp := c.MarshalCompressed(pt)
		back2, err := c.Unmarshal(comp)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Equal(back2, pt) {
			t.Fatal("compressed round trip failed")
		}
		if len(comp) >= len(unc) {
			t.Error("compression did not compress")
		}
	}
}

func TestMarshalInteropWithStdlib(t *testing.T) {
	c, _ := P256()
	rng := rand.New(rand.NewSource(245))
	k := new(big.Int).Rand(rng, c.Order)
	pt, _ := c.ScalarBaseMult(k)
	ours := c.Marshal(pt)
	x, y := elliptic.P256().ScalarBaseMult(k.Bytes())
	std := elliptic.Marshal(elliptic.P256(), x, y)
	if string(ours) != string(std) {
		t.Fatal("SEC1 encoding differs from crypto/elliptic")
	}
	stdComp := elliptic.MarshalCompressed(elliptic.P256(), x, y)
	oursComp := c.MarshalCompressed(pt)
	if string(oursComp) != string(stdComp) {
		t.Fatal("compressed encoding differs from crypto/elliptic")
	}
}

func TestUnmarshalValidation(t *testing.T) {
	c := tinyCurve(t)
	if _, err := c.Unmarshal(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := c.Unmarshal([]byte{9, 1, 2}); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := c.Unmarshal([]byte{4, 1}); err == nil {
		t.Error("short uncompressed accepted")
	}
	if _, err := c.Unmarshal([]byte{2}); err == nil {
		t.Error("short compressed accepted")
	}
	if _, err := c.Unmarshal([]byte{0, 0}); err == nil {
		t.Error("long infinity accepted")
	}
	inf, err := c.Unmarshal([]byte{0})
	if err != nil || !c.IsInfinity(inf) {
		t.Error("infinity decoding broken")
	}
	if string(c.Marshal(c.Infinity())) != "\x00" {
		t.Error("infinity encoding broken")
	}
	// x with no square root on the curve: find one.
	found := false
	for x := int64(0); x < 97 && !found; x++ {
		rhs := new(big.Int).Exp(big.NewInt(x), big.NewInt(3), c.P)
		rhs.Add(rhs, new(big.Int).Mul(c.A, big.NewInt(x)))
		rhs.Add(rhs, c.B)
		rhs.Mod(rhs, c.P)
		if _, err := c.SqrtMod(rhs); err != nil {
			buf := append([]byte{2}, make([]byte, c.byteLen())...)
			buf[len(buf)-1] = byte(x)
			if _, err := c.Unmarshal(buf); err == nil {
				t.Error("non-residue x accepted")
			}
			found = true
		}
	}
	if !found {
		t.Skip("every x on this tiny curve had a residue")
	}
}

// SqrtMod over both prime classes: 97 ≡ 1 (mod 4) exercises full
// Tonelli–Shanks; P-256's prime ≡ 3 (mod 4) exercises the fast path.
func TestSqrtMod(t *testing.T) {
	c := tinyCurve(t) // p = 97 ≡ 1 (mod 4)
	for v := int64(0); v < 97; v++ {
		sq := new(big.Int).Mul(big.NewInt(v), big.NewInt(v))
		sq.Mod(sq, c.P)
		r, err := c.SqrtMod(sq)
		if err != nil {
			t.Fatalf("sqrt(%d²) failed: %v", v, err)
		}
		rr := new(big.Int).Mul(r, r)
		rr.Mod(rr, c.P)
		if rr.Cmp(sq) != 0 {
			t.Fatalf("sqrt wrong for %d²", v)
		}
	}
	p256, _ := P256()
	rng := rand.New(rand.NewSource(246))
	for trial := 0; trial < 5; trial++ {
		v := new(big.Int).Rand(rng, p256.P)
		sq := new(big.Int).Mul(v, v)
		sq.Mod(sq, p256.P)
		r, err := p256.SqrtMod(sq)
		if err != nil {
			t.Fatal(err)
		}
		rr := new(big.Int).Mul(r, r)
		rr.Mod(rr, p256.P)
		if rr.Cmp(sq) != 0 {
			t.Fatal("P-256 sqrt wrong")
		}
	}
}
