package ecc

import (
	"errors"
	"math/big"
)

// Width-w NAF scalar multiplication: the standard high-speed exponent
// recoding for curve arithmetic, mirroring what internal/expo's window
// method does for RSA. A wNAF recoding has at most one nonzero digit in
// any w consecutive positions, so k·P costs ~bits/(w+1) additions plus
// the doublings, against ~bits/2 additions for double-and-add.

// wnaf returns the width-w NAF digits of k, least significant first.
// Digits are odd integers in (-2^(w-1) ... 2^(w-1)) or zero.
func wnaf(k *big.Int, w int) []int {
	if k.Sign() < 0 {
		panic("ecc: negative scalar in wnaf")
	}
	var digits []int
	d := new(big.Int).Set(k)
	mod := int64(1) << w
	half := mod >> 1
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			// r = d mods 2^w (signed residue in (-2^(w-1), 2^(w-1)])
			r := int64(0)
			for i := 0; i < w; i++ {
				r |= int64(d.Bit(i)) << i
			}
			if r >= half {
				r -= mod
			}
			digits = append(digits, int(r))
			if r >= 0 {
				d.Sub(d, big.NewInt(r))
			} else {
				d.Add(d, big.NewInt(-r))
			}
		} else {
			digits = append(digits, 0)
		}
		d.Rsh(d, 1)
	}
	return digits
}

// Neg returns -pt (negating the Jacobian Y coordinate).
func (c *Curve) Neg(pt *Point) *Point {
	if c.IsInfinity(pt) {
		return c.Infinity()
	}
	return &Point{
		X: new(big.Int).Set(pt.X),
		Y: c.sub(big.NewInt(0), pt.Y),
		Z: new(big.Int).Set(pt.Z),
	}
}

// ScalarMultWNAF returns k·pt using width-w NAF recoding with a
// precomputed odd-multiples table {P, 3P, 5P, …, (2^(w-1)-1)P}.
func (c *Curve) ScalarMultWNAF(pt *Point, k *big.Int, w int) (*Point, error) {
	if k.Sign() < 0 {
		return nil, errors.New("ecc: negative scalar")
	}
	if w < 2 || w > 8 {
		return nil, errors.New("ecc: wNAF width must be in [2, 8]")
	}
	if k.Sign() == 0 {
		return c.Infinity(), nil
	}
	// Precompute odd multiples.
	tableSize := 1 << (w - 2) // entries for 1, 3, 5, …
	table := make([]*Point, tableSize)
	table[0] = &Point{X: new(big.Int).Set(pt.X), Y: new(big.Int).Set(pt.Y), Z: new(big.Int).Set(pt.Z)}
	if tableSize > 1 {
		twoP := c.Double(pt)
		for i := 1; i < tableSize; i++ {
			table[i] = c.Add(table[i-1], twoP)
		}
	}
	digits := wnaf(k, w)
	acc := c.Infinity()
	for i := len(digits) - 1; i >= 0; i-- {
		acc = c.Double(acc)
		d := digits[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			acc = c.Add(acc, table[(d-1)/2])
		} else {
			acc = c.Add(acc, c.Neg(table[(-d-1)/2]))
		}
	}
	return acc, nil
}

// P384 returns the NIST P-384 curve (FIPS 186-4 parameters).
func P384() (*Curve, error) {
	p, _ := new(big.Int).SetString("fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffeffffffff0000000000000000ffffffff", 16)
	b, _ := new(big.Int).SetString("b3312fa7e23ee7e4988e056be3f82d19181d9c6efe8141120314088f5013875ac656398d8a2ed19d2a85c8edd3ec2aef", 16)
	gx, _ := new(big.Int).SetString("aa87ca22be8b05378eb1c71ef320ad746e1d3b628ba79b9859f741e082542a385502f25dbf55296c3a545e3872760ab7", 16)
	gy, _ := new(big.Int).SetString("3617de4a96262c6f5d9e98bf9292dc29f8f41dbd289a147ce9da3113b5f0b8c00a60b1ce1d7e819d7a431d7c90ea0e5f", 16)
	n, _ := new(big.Int).SetString("ffffffffffffffffffffffffffffffffffffffffffffffffc7634d81f4372ddf581a0db248b0a77aecec196accc52973", 16)
	a := new(big.Int).Sub(p, big.NewInt(3))
	return NewCurve(p, a, b, gx, gy, n)
}
