package ecc

import (
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the SEC1 decoder: it must never
// panic, and anything it accepts must re-encode to a point on the curve.
func FuzzUnmarshal(f *testing.F) {
	c, err := P256()
	if err != nil {
		f.Fatal(err)
	}
	g, _ := c.Base()
	f.Add(c.Marshal(g))
	f.Add(c.MarshalCompressed(g))
	f.Add([]byte{0})
	f.Add([]byte{4, 1, 2, 3})
	f.Add([]byte{2, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		pt, err := c.Unmarshal(data)
		if err != nil {
			return
		}
		if c.IsInfinity(pt) {
			return
		}
		x, y, ok := c.Affine(pt)
		if !ok {
			t.Fatal("accepted point has no affine form")
		}
		if !c.IsOnCurve(x, y) {
			t.Fatalf("accepted point off curve: (%s, %s)", x, y)
		}
	})
}
