package bits

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	v := New(17)
	if len(v) != 17 {
		t.Fatalf("New(17) has length %d", len(v))
	}
	if !v.IsZero() {
		t.Fatalf("New(17) is not zero: %v", v)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer expectPanic(t, "New(-1)")
	New(-1)
}

func TestFromBigRoundTrip(t *testing.T) {
	cases := []string{"0", "1", "2", "ff", "100", "deadbeef", "ffffffffffffffff",
		"123456789abcdef0123456789abcdef"}
	for _, c := range cases {
		x, _ := new(big.Int).SetString(c, 16)
		v := FromBig(x, x.BitLen()+3)
		if got := v.Big(); got.Cmp(x) != 0 {
			t.Errorf("round trip %s: got %s", c, got.Text(16))
		}
	}
}

func TestFromBigNegativePanics(t *testing.T) {
	defer expectPanic(t, "FromBig(-1)")
	FromBig(big.NewInt(-1), 8)
}

func TestFromBigOverflowPanics(t *testing.T) {
	defer expectPanic(t, "FromBig(256, 8)")
	FromBig(big.NewInt(256), 8)
}

func TestUint64RoundTrip(t *testing.T) {
	for _, x := range []uint64{0, 1, 2, 3, 0xff, 0xdeadbeef, 1 << 63, ^uint64(0)} {
		v := FromUint64(x, 64)
		if got := v.Uint64(); got != x {
			t.Errorf("Uint64 round trip %#x: got %#x", x, got)
		}
	}
}

func TestUint64OverflowPanics(t *testing.T) {
	v := New(70)
	v[69] = 1
	defer expectPanic(t, "Uint64 of 70-bit value")
	v.Uint64()
}

func TestFromHex(t *testing.T) {
	v, err := FromHex("0xAB", 8)
	if err != nil {
		t.Fatal(err)
	}
	if v.Uint64() != 0xab {
		t.Fatalf("FromHex(0xAB) = %#x", v.Uint64())
	}
	if _, err := FromHex("xyz", 8); err == nil {
		t.Error("FromHex(xyz) did not fail")
	}
	if _, err := FromHex("1ff", 8); err == nil {
		t.Error("FromHex overflow did not fail")
	}
	v, err = FromHex("ff", -1)
	if err != nil || len(v) != 8 {
		t.Errorf("FromHex auto-size: len=%d err=%v", len(v), err)
	}
	v, err = FromHex("0", -1)
	if err != nil || len(v) != 1 {
		t.Errorf("FromHex auto-size zero: len=%d err=%v", len(v), err)
	}
}

func TestHexAndString(t *testing.T) {
	v := FromUint64(0b1011, 6)
	if v.Hex() != "b" {
		t.Errorf("Hex = %q", v.Hex())
	}
	if v.String() != "001011" {
		t.Errorf("String = %q", v.String())
	}
	if (Vec{}).String() != "0" {
		t.Errorf("empty String = %q", (Vec{}).String())
	}
}

func TestCloneIndependence(t *testing.T) {
	v := FromUint64(5, 4)
	w := v.Clone()
	w[0] = 0
	if v[0] != 1 {
		t.Fatal("Clone is not independent")
	}
}

func TestResize(t *testing.T) {
	v := FromUint64(5, 4)
	w := v.Resize(8)
	if w.Uint64() != 5 || len(w) != 8 {
		t.Fatalf("Resize widen: %v", w)
	}
	w = v.Resize(3)
	if w.Uint64() != 5 || len(w) != 3 {
		t.Fatalf("Resize narrow: %v", w)
	}
}

func TestResizeDropPanics(t *testing.T) {
	v := FromUint64(8, 4)
	defer expectPanic(t, "Resize dropping set bit")
	v.Resize(3)
}

func TestBitOutOfRange(t *testing.T) {
	v := FromUint64(1, 2)
	if v.Bit(100) != 0 {
		t.Error("Bit beyond length should be 0")
	}
	defer expectPanic(t, "Bit(-1)")
	v.Bit(-1)
}

func TestSetBit(t *testing.T) {
	v := New(4)
	v.SetBit(2, 1)
	if v.Uint64() != 4 {
		t.Fatalf("SetBit: %v", v)
	}
	defer expectPanic(t, "SetBit(…, 2)")
	v.SetBit(0, 2)
}

func TestOnesCountAndBitLen(t *testing.T) {
	v := FromUint64(0b101100, 10)
	if v.OnesCount() != 3 {
		t.Errorf("OnesCount = %d", v.OnesCount())
	}
	if v.BitLen() != 6 {
		t.Errorf("BitLen = %d", v.BitLen())
	}
	if New(5).BitLen() != 0 {
		t.Error("BitLen of zero != 0")
	}
}

func TestShrInPlace(t *testing.T) {
	v := FromUint64(0b1101, 4)
	v.ShrInPlace(0)
	if v.Uint64() != 0b0110 {
		t.Fatalf("ShrInPlace: %v", v)
	}
	v.ShrInPlace(1)
	if v.Uint64() != 0b1011 {
		t.Fatalf("ShrInPlace fill=1: %v", v)
	}
	empty := Vec{}
	empty.ShrInPlace(0) // must not panic
}

func TestShl(t *testing.T) {
	v := FromUint64(0b101, 3)
	w := v.Shl(2)
	if w.Uint64() != 0b10100 || len(w) != 5 {
		t.Fatalf("Shl: %v", w)
	}
}

func TestEqualAndCmp(t *testing.T) {
	a := FromUint64(5, 8)
	b := FromUint64(5, 3)
	if !Equal(a, b) {
		t.Error("Equal ignores width")
	}
	if Cmp(a, b) != 0 {
		t.Error("Cmp equal values != 0")
	}
	c := FromUint64(6, 3)
	if Cmp(a, c) != -1 || Cmp(c, a) != 1 {
		t.Error("Cmp ordering wrong")
	}
}

func TestAddMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := new(big.Int).Rand(rng, new(big.Int).Lsh(oneBig, 96))
		y := new(big.Int).Rand(rng, new(big.Int).Lsh(oneBig, 64))
		got := Add(FromBig(x, 96), FromBig(y, 64)).Big()
		want := new(big.Int).Add(x, y)
		if got.Cmp(want) != 0 {
			t.Fatalf("Add(%s,%s) = %s, want %s", x, y, got, want)
		}
	}
}

func TestSubMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := new(big.Int).Rand(rng, new(big.Int).Lsh(oneBig, 80))
		y := new(big.Int).Rand(rng, new(big.Int).Lsh(oneBig, 80))
		diff, borrow := Sub(FromBig(x, 80), FromBig(y, 80))
		if x.Cmp(y) >= 0 {
			if borrow != 0 {
				t.Fatalf("Sub(%s,%s) borrowed unexpectedly", x, y)
			}
			want := new(big.Int).Sub(x, y)
			if diff.Big().Cmp(want) != 0 {
				t.Fatalf("Sub mismatch: got %s want %s", diff.Big(), want)
			}
		} else if borrow != 1 {
			t.Fatalf("Sub(%s,%s) should borrow", x, y)
		}
	}
}

func TestFullAddExhaustive(t *testing.T) {
	for a := Bit(0); a <= 1; a++ {
		for b := Bit(0); b <= 1; b++ {
			for c := Bit(0); c <= 1; c++ {
				sum, cout := FullAdd(a, b, c)
				if total := a + b + c; sum != total&1 || cout != total>>1 {
					t.Errorf("FullAdd(%d,%d,%d) = %d,%d", a, b, c, sum, cout)
				}
			}
		}
	}
}

func TestHalfAddExhaustive(t *testing.T) {
	for a := Bit(0); a <= 1; a++ {
		for b := Bit(0); b <= 1; b++ {
			sum, cout := HalfAdd(a, b)
			if total := a + b; sum != total&1 || cout != total>>1 {
				t.Errorf("HalfAdd(%d,%d) = %d,%d", a, b, sum, cout)
			}
		}
	}
}

func TestFullAddInvalidPanics(t *testing.T) {
	defer expectPanic(t, "FullAdd(2,0,0)")
	FullAdd(2, 0, 0)
}

// Property: round-tripping any uint64 through Vec preserves the value,
// along with BitLen and OnesCount agreeing with math/bits semantics.
func TestQuickRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		v := FromUint64(x, 64)
		return v.Uint64() == x && v.Big().Uint64() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is commutative and agrees with native addition on values
// that cannot overflow.
func TestQuickAddCommutes(t *testing.T) {
	f := func(x, y uint32) bool {
		a, b := FromUint64(uint64(x), 32), FromUint64(uint64(y), 32)
		ab, ba := Add(a, b), Add(b, a)
		return Equal(ab, ba) && ab.Uint64() == uint64(x)+uint64(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub then Add restores the minuend when no borrow occurred.
func TestQuickSubAddInverse(t *testing.T) {
	f := func(x, y uint32) bool {
		if x < y {
			x, y = y, x
		}
		a, b := FromUint64(uint64(x), 32), FromUint64(uint64(y), 32)
		diff, borrow := Sub(a, b)
		if borrow != 0 {
			return false
		}
		return Add(diff, b).Uint64() == uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func expectPanic(t *testing.T, what string) {
	t.Helper()
	if recover() == nil {
		t.Errorf("%s did not panic", what)
	}
}
