// Package bits provides the little-endian bit-vector arithmetic that the
// rest of the repository is built on.
//
// The systolic array, the MMM circuit and the gate-level netlists all
// operate on individual bits; this package gives them a common value type,
// Vec, which stores one bit per byte in LSB-first order (Vec[0] is the 2^0
// digit). The representation trades memory for directness: every index in
// the paper's recurrences (t_{i,j}, y_j, n_j, ...) maps to a plain slice
// index, which keeps the hardware models easy to audit against the paper.
//
// Conversions to and from math/big.Int bridge the hardware world to the
// reference arithmetic used in tests and host-side pre-computations.
package bits

import (
	"fmt"
	"math/big"
	"strings"
)

// Bit is a single binary digit. Valid values are 0 and 1; the arithmetic
// helpers in this package panic on anything else so that corrupted signal
// values are caught at the point of injection rather than as silent
// mis-computation many cycles later.
type Bit = uint8

// Vec is a little-endian vector of bits: v[0] is the least significant
// digit. A nil Vec is a valid representation of zero.
type Vec []Bit

// New returns an all-zero vector of n bits.
func New(n int) Vec {
	if n < 0 {
		panic(fmt.Sprintf("bits: negative length %d", n))
	}
	return make(Vec, n)
}

// FromBig converts the absolute value of x into an n-bit vector.
// It panics if x is negative or does not fit in n bits: both indicate a
// bound violation in the caller (e.g. an operand ≥ R fed to the array).
func FromBig(x *big.Int, n int) Vec {
	if x.Sign() < 0 {
		panic("bits: FromBig of negative value")
	}
	if x.BitLen() > n {
		panic(fmt.Sprintf("bits: value of %d bits does not fit in %d", x.BitLen(), n))
	}
	v := New(n)
	for i := 0; i < x.BitLen(); i++ {
		v[i] = Bit(x.Bit(i))
	}
	return v
}

// Big converts v back to a big.Int.
func (v Vec) Big() *big.Int {
	x := new(big.Int)
	for i := len(v) - 1; i >= 0; i-- {
		x.Lsh(x, 1)
		switch v[i] {
		case 0:
		case 1:
			x.Or(x, oneBig)
		default:
			panic(fmt.Sprintf("bits: invalid bit value %d at index %d", v[i], i))
		}
	}
	return x
}

var oneBig = big.NewInt(1)

// FromUint64 converts x into an n-bit vector. It panics if x does not fit.
func FromUint64(x uint64, n int) Vec {
	return FromBig(new(big.Int).SetUint64(x), n)
}

// Uint64 converts v to a uint64. It panics if v does not fit in 64 bits.
func (v Vec) Uint64() uint64 {
	var x uint64
	for i := len(v) - 1; i >= 0; i-- {
		if i >= 64 && v[i] != 0 {
			panic("bits: Uint64 overflow")
		}
		x = x<<1 | uint64(v[i]&1)
	}
	return x
}

// FromHex parses a hexadecimal string (optionally 0x-prefixed) into an
// n-bit vector. If n < 0, the vector is sized to the value's bit length
// (minimum 1).
func FromHex(s string, n int) (Vec, error) {
	s = strings.TrimPrefix(strings.TrimSpace(s), "0x")
	x, ok := new(big.Int).SetString(s, 16)
	if !ok {
		return nil, fmt.Errorf("bits: invalid hex string %q", s)
	}
	if x.Sign() < 0 {
		return nil, fmt.Errorf("bits: negative hex value %q", s)
	}
	if n < 0 {
		n = x.BitLen()
		if n == 0 {
			n = 1
		}
	}
	if x.BitLen() > n {
		return nil, fmt.Errorf("bits: hex value needs %d bits, limit %d", x.BitLen(), n)
	}
	return FromBig(x, n), nil
}

// Hex renders v as a lowercase hexadecimal string without a 0x prefix.
func (v Vec) Hex() string {
	return v.Big().Text(16)
}

// String renders v MSB-first as a binary string, for debugging and
// waveform annotations.
func (v Vec) String() string {
	var b strings.Builder
	b.Grow(len(v))
	for i := len(v) - 1; i >= 0; i-- {
		b.WriteByte('0' + byte(v[i]&1))
	}
	if b.Len() == 0 {
		return "0"
	}
	return b.String()
}

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Resize returns a copy of v with exactly n bits, zero-extending or
// truncating at the most-significant end. Truncating a set bit panics,
// because it means the caller is silently discarding value.
func (v Vec) Resize(n int) Vec {
	w := New(n)
	for i, b := range v {
		if i >= n {
			if b != 0 {
				panic(fmt.Sprintf("bits: Resize(%d) drops set bit at index %d", n, i))
			}
			continue
		}
		w[i] = b
	}
	return w
}

// Bit returns the i-th bit, treating indices beyond the vector as zero.
// Negative indices panic.
func (v Vec) Bit(i int) Bit {
	if i < 0 {
		panic(fmt.Sprintf("bits: negative index %d", i))
	}
	if i >= len(v) {
		return 0
	}
	return v[i] & 1
}

// SetBit sets the i-th bit to b (0 or 1). The index must be in range.
func (v Vec) SetBit(i int, b Bit) {
	if b > 1 {
		panic(fmt.Sprintf("bits: invalid bit value %d", b))
	}
	v[i] = b
}

// IsZero reports whether every bit of v is zero.
func (v Vec) IsZero() bool {
	for _, b := range v {
		if b != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the Hamming weight of v.
func (v Vec) OnesCount() int {
	n := 0
	for _, b := range v {
		if b&1 == 1 {
			n++
		}
	}
	return n
}

// BitLen returns the index of the highest set bit plus one (0 for zero).
func (v Vec) BitLen() int {
	for i := len(v) - 1; i >= 0; i-- {
		if v[i]&1 == 1 {
			return i + 1
		}
	}
	return 0
}

// ShrInPlace shifts v right by one bit (dividing by two) and fills the
// most-significant position with fill. This mirrors the MMMC's X register,
// which shifts right each MUL2 state with a zero fill.
func (v Vec) ShrInPlace(fill Bit) {
	if fill > 1 {
		panic(fmt.Sprintf("bits: invalid fill bit %d", fill))
	}
	if len(v) == 0 {
		return
	}
	copy(v, v[1:])
	v[len(v)-1] = fill
}

// Shl returns v shifted left by k bits in a vector widened by k.
func (v Vec) Shl(k int) Vec {
	if k < 0 {
		panic(fmt.Sprintf("bits: negative shift %d", k))
	}
	w := New(len(v) + k)
	copy(w[k:], v)
	return w
}

// Equal reports whether a and b denote the same value (ignoring length:
// missing high bits are zero).
func Equal(a, b Vec) bool {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a.Bit(i) != b.Bit(i) {
			return false
		}
	}
	return true
}

// Cmp compares the values of a and b, returning -1, 0 or +1.
func Cmp(a, b Vec) int {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	for i := n - 1; i >= 0; i-- {
		ab, bb := a.Bit(i), b.Bit(i)
		switch {
		case ab < bb:
			return -1
		case ab > bb:
			return +1
		}
	}
	return 0
}

// Add returns a + b as a vector one bit wider than the wider input,
// computed with a ripple-carry chain of full adders. The hardware models
// use this for reference checks; it deliberately follows the same
// FA recurrence as the netlists.
func Add(a, b Vec) Vec {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	out := New(n + 1)
	var carry Bit
	for i := 0; i < n; i++ {
		s, c := FullAdd(a.Bit(i), b.Bit(i), carry)
		out[i] = s
		carry = c
	}
	out[n] = carry
	return out
}

// Sub returns a - b and whether the subtraction borrowed (i.e. a < b).
// The result has the same width as a.
func Sub(a, b Vec) (diff Vec, borrow Bit) {
	diff = New(len(a))
	for i := range diff {
		d := int(a.Bit(i)) - int(b.Bit(i)) - int(borrow)
		if d < 0 {
			d += 2
			borrow = 1
		} else {
			borrow = 0
		}
		diff[i] = Bit(d)
	}
	return diff, borrow
}

// FullAdd is a behavioural full adder: sum and carry of a + b + cin.
// It is the single source of truth for FA semantics; the gate-level FA in
// internal/logic is tested against it exhaustively.
func FullAdd(a, b, cin Bit) (sum, cout Bit) {
	checkBit(a)
	checkBit(b)
	checkBit(cin)
	t := a + b + cin
	return t & 1, t >> 1
}

// HalfAdd is a behavioural half adder: sum and carry of a + b.
func HalfAdd(a, b Bit) (sum, cout Bit) {
	checkBit(a)
	checkBit(b)
	t := a + b
	return t & 1, t >> 1
}

func checkBit(b Bit) {
	if b > 1 {
		panic(fmt.Sprintf("bits: invalid bit value %d", b))
	}
}
