package server

// Server-side execution of the signing-service ops. The engine-backed
// handler delegates to a cryptosvc.Service (blinded private-key paths,
// CRT over paired engine jobs, verify-before-release); the cluster
// balancer implements SignHandler itself and routes by key handle. A
// Handler that implements neither answers the signing ops with
// CodeProtocol, so a mixed fleet degrades to "no signing here", never
// to misparsed frames.

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/cryptosvc"
	"repro/internal/rsa"
)

// SignHandler extends Handler with the signing-service operations. The
// method set mirrors cryptosvc.Service — the engine-backed server, the
// wire client and the cluster balancer all satisfy it, which is what
// lets montsyslb front signing backends without protocol changes.
type SignHandler interface {
	Handler
	// KeygenRSA generates a deterministic RSA key from seed
	// (reproduction/test-only — see OpKeygenRSA).
	KeygenRSA(ctx context.Context, bits int, seed int64) (*rsa.PrivateKey, error)
	// SignRSA signs a digest with the blinded (service-configured)
	// private-key path, CRT when the key carries its factors.
	SignRSA(ctx context.Context, key *rsa.PrivateKey, digest *big.Int) (*big.Int, error)
	// VerifyRSA checks sig^E ≡ digest (mod n).
	VerifyRSA(ctx context.Context, n, e, digest, sig *big.Int) (bool, error)
	// SignECDSA signs a digest with the deterministic nonce derived
	// from seed.
	SignECDSA(ctx context.Context, curveID uint8, d, digest *big.Int, seed int64) (r, s *big.Int, err error)
	// VerifyECDSABatch verifies items with per-item verdicts.
	VerifyECDSABatch(ctx context.Context, curveID uint8, items []cryptosvc.ECDSAVerifyItem) ([]cryptosvc.VerifyResult, error)
}

// WithSignService overrides the cryptosvc.Service the engine-backed
// server executes signing ops with (NewServer default: cryptosvc.New on
// the server's engine, blinding on). It has no effect on
// NewHandlerServer — there the handler itself either implements
// SignHandler or the ops are unsupported.
func WithSignService(svc *cryptosvc.Service) Option {
	return func(c *config) { c.signSvc = svc }
}

// Engine-backed SignHandler methods: delegate to the cryptosvc.Service.

func (h engineHandler) KeygenRSA(ctx context.Context, bits int, seed int64) (*rsa.PrivateKey, error) {
	return h.svc.KeygenRSA(ctx, bits, seed)
}

func (h engineHandler) SignRSA(ctx context.Context, key *rsa.PrivateKey, digest *big.Int) (*big.Int, error) {
	return h.svc.SignRSA(ctx, key, digest)
}

func (h engineHandler) VerifyRSA(ctx context.Context, n, e, digest, sig *big.Int) (bool, error) {
	return h.svc.VerifyRSA(ctx, n, e, digest, sig)
}

func (h engineHandler) SignECDSA(ctx context.Context, curveID uint8, d, digest *big.Int, seed int64) (*big.Int, *big.Int, error) {
	return h.svc.SignECDSA(ctx, curveID, d, digest, seed)
}

func (h engineHandler) VerifyECDSABatch(ctx context.Context, curveID uint8, items []cryptosvc.ECDSAVerifyItem) ([]cryptosvc.VerifyResult, error) {
	return h.svc.VerifyECDSABatch(ctx, curveID, items)
}

// bigBool encodes a verification verdict as the wire's 0/1 big.
func bigBool(ok bool) *big.Int {
	if ok {
		return big.NewInt(1)
	}
	return big.NewInt(0)
}

// executeCrypto runs one signing-op request against the server's
// SignHandler. execute has already checked s.sign is non-nil.
func (s *Server) executeCrypto(ctx context.Context, req *request) *response {
	cb := req.crypto
	switch req.op {
	case OpKeygenRSA:
		key, err := s.sign.KeygenRSA(ctx, cb.bits, cb.seed)
		if err != nil {
			return &response{code: codeFor(err), msg: err.Error()}
		}
		return &response{code: CodeOK, values: []*big.Int{
			key.N, key.E, key.D, key.P, key.Q, key.DP, key.DQ, key.QInv,
		}}
	case OpSignRSA:
		sig, err := s.sign.SignRSA(ctx, cb.key, cb.digest)
		if err != nil {
			return &response{code: codeFor(err), msg: err.Error()}
		}
		return &response{code: CodeOK, values: []*big.Int{sig}}
	case OpVerifyRSA:
		ok, err := s.sign.VerifyRSA(ctx, cb.n, cb.e, cb.digest, cb.sig)
		if err != nil {
			return &response{code: codeFor(err), msg: err.Error()}
		}
		return &response{code: CodeOK, values: []*big.Int{bigBool(ok)}}
	case OpSignECDSA:
		r, sv, err := s.sign.SignECDSA(ctx, cb.curve, cb.d, cb.digest, cb.seed)
		if err != nil {
			return &response{code: codeFor(err), msg: err.Error()}
		}
		return &response{code: CodeOK, values: []*big.Int{r, sv}}
	case OpVerifyECDSABatch:
		res, err := s.sign.VerifyECDSABatch(ctx, cb.curve, cb.items)
		if err != nil || len(res) != len(cb.items) {
			if err == nil {
				err = fmt.Errorf("server: handler answered %d of %d verify items", len(res), len(cb.items))
			}
			return &response{code: codeFor(err), msg: err.Error()}
		}
		resp := &response{
			code:   CodeOK,
			codes:  make([]Code, len(res)),
			msgs:   make([]string, len(res)),
			values: make([]*big.Int, len(res)),
		}
		for i, r := range res {
			resp.codes[i] = codeFor(r.Err)
			if r.Err != nil {
				resp.msgs[i] = r.Err.Error()
			} else {
				resp.values[i] = bigBool(r.OK)
			}
		}
		return resp
	default:
		return &response{code: CodeProtocol, msg: fmt.Sprintf("unknown signing op %d", req.op)}
	}
}
