package server

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/errs"
)

// TestMemberRequestGoldenFrames freezes the membership ops' wire bytes:
// the op values and body layout are a network ABI, so a refactor that
// changes any byte here is a protocol break, not a cleanup.
func TestMemberRequestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		req  *request
		want string // hex of the encoded payload
	}{
		{
			name: "join",
			req: &request{op: OpJoin, id: 7,
				member: &memberBody{addr: "b1:9", zone: "eu"}},
			// version ‖ op=18 ‖ id ‖ deadline=0 ‖ len("b1:9") ‖ "b1:9" ‖ len("eu") ‖ "eu"
			want: "0112" + "0000000000000007" + "0000000000000000" +
				"00000004" + hex.EncodeToString([]byte("b1:9")) +
				"00000002" + hex.EncodeToString([]byte("eu")),
		},
		{
			name: "goodbye",
			req: &request{op: OpGoodbye, id: 8,
				member: &memberBody{addr: "b1:9"}},
			want: "0113" + "0000000000000008" + "0000000000000000" +
				"00000004" + hex.EncodeToString([]byte("b1:9")),
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := encodeRequest(tc.req)
			want, err := hex.DecodeString(tc.want)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("frame bytes drifted:\n got %x\nwant %x", got, want)
			}
			back, err := decodeRequest(got)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if back.op != tc.req.op || back.id != tc.req.id ||
				back.member.addr != tc.req.member.addr || back.member.zone != tc.req.member.zone {
				t.Fatalf("round trip drifted: %+v vs %+v", back, tc.req)
			}
		})
	}
}

// TestMemberDecodeRejectsBadFields checks the field caps: empty or
// oversize addr/zone answer ErrProtocol instead of growing the member
// table from a hostile frame.
func TestMemberDecodeRejectsBadFields(t *testing.T) {
	long := strings.Repeat("x", maxMemberField+1)
	cases := []struct {
		name string
		req  *request
	}{
		{"empty addr", &request{op: OpJoin, id: 1, member: &memberBody{addr: "", zone: "z"}}},
		{"long addr", &request{op: OpJoin, id: 1, member: &memberBody{addr: long}}},
		{"long zone", &request{op: OpJoin, id: 1, member: &memberBody{addr: "a:1", zone: long}}},
		{"long goodbye addr", &request{op: OpGoodbye, id: 1, member: &memberBody{addr: long}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := decodeRequest(encodeRequest(tc.req)); !errors.Is(err, errs.ErrProtocol) {
				t.Fatalf("err = %v, want ErrProtocol", err)
			}
		})
	}
}

// TestMemberOpsAreControlPlane pins the control-plane exemptions:
// membership ops take no QoS tag, are never traced, and are marked
// idempotent so registrars can retry blindly.
func TestMemberOpsAreControlPlane(t *testing.T) {
	for _, op := range []Op{OpJoin, OpGoodbye} {
		if _, ok := op.qosTagged(); ok {
			t.Errorf("%s takes a QoS tag; control-plane ops must not", op)
		}
		if !idempotent[op] {
			t.Errorf("%s not marked idempotent; registrar retries need it", op)
		}
	}
	c := Dial("unused:0")
	if _, traced := c.traceContext(context.Background(), OpJoin); traced {
		t.Error("join resolved a trace context; control-plane ops must not")
	}
}

// TestJoinUnsupportedAnswersProtocol: montsysd's engine handler has no
// membership surface, so a Join against it must answer ErrProtocol —
// not hang, not misparse.
func TestJoinUnsupportedAnswersProtocol(t *testing.T) {
	_, _, addr := startServer(t, []engine.Option{engine.WithWorkers(1)}, nil)
	cl := Dial(addr)
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cl.Join(ctx, "b1:9", "eu"); !errors.Is(err, errs.ErrProtocol) {
		t.Fatalf("Join on engine server: err = %v, want ErrProtocol", err)
	}
	if _, err := cl.Goodbye(ctx, "b1:9"); !errors.Is(err, errs.ErrProtocol) {
		t.Fatalf("Goodbye on engine server: err = %v, want ErrProtocol", err)
	}
}

// memberStubHandler implements Handler + MembershipHandler with an
// in-memory member set, standing in for the balancer. When montStarted
// and montRelease are set, Mont signals admission and blocks — a way
// for tests to hold a drain open.
type memberStubHandler struct {
	mu      sync.Mutex
	members map[string]string
	joinErr error

	montStarted chan struct{}
	montRelease chan struct{}
}

func (h *memberStubHandler) Mont(ctx context.Context, n, x, y *big.Int) (*big.Int, error) {
	if h.montStarted != nil {
		close(h.montStarted)
		<-h.montRelease
	}
	return nil, fmt.Errorf("stub: %w", errs.ErrBackendDown)
}
func (h *memberStubHandler) ModExp(ctx context.Context, n, base, exp *big.Int) (*big.Int, error) {
	return nil, fmt.Errorf("stub: %w", errs.ErrBackendDown)
}
func (h *memberStubHandler) ModExpBatch(ctx context.Context, jobs []engine.ModExpJob) ([]engine.ModExpResult, error) {
	return nil, fmt.Errorf("stub: %w", errs.ErrBackendDown)
}
func (h *memberStubHandler) Join(ctx context.Context, addr, zone string) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.joinErr != nil {
		return 0, h.joinErr
	}
	if h.members == nil {
		h.members = make(map[string]string)
	}
	h.members[addr] = zone
	return len(h.members), nil
}
func (h *memberStubHandler) Goodbye(ctx context.Context, addr string) (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.members, addr)
	return len(h.members), nil
}

// TestJoinGoodbyeOverWire exercises the full wire path against a
// membership-aware handler: join twice (idempotent), goodbye, counts
// come back through the standard single-value response body.
func TestJoinGoodbyeOverWire(t *testing.T) {
	h := &memberStubHandler{}
	srv, err := NewHandlerServer(h)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl := Dial(ln.Addr().String())
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	if n, err := cl.Join(ctx, "b1:9", "eu"); err != nil || n != 1 {
		t.Fatalf("Join #1 = (%d, %v), want (1, nil)", n, err)
	}
	if n, err := cl.Join(ctx, "b2:9", "us"); err != nil || n != 2 {
		t.Fatalf("Join #2 = (%d, %v), want (2, nil)", n, err)
	}
	if n, err := cl.Join(ctx, "b1:9", "eu"); err != nil || n != 2 {
		t.Fatalf("idempotent re-Join = (%d, %v), want (2, nil)", n, err)
	}
	if n, err := cl.Goodbye(ctx, "b1:9"); err != nil || n != 1 {
		t.Fatalf("Goodbye = (%d, %v), want (1, nil)", n, err)
	}
	if n, err := cl.Goodbye(ctx, "absent:1"); err != nil || n != 1 {
		t.Fatalf("idempotent Goodbye = (%d, %v), want (1, nil)", n, err)
	}

	// Handler errors map through the standard code table.
	h.mu.Lock()
	h.joinErr = fmt.Errorf("member table full: %w", errs.ErrOverloaded)
	h.mu.Unlock()
	// Overloaded is transient to the retry loop; cap retries via context.
	short, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	if _, err := cl.Join(short, "b3:9", ""); !errors.Is(err, errs.ErrOverloaded) &&
		!errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Join with full table: err = %v, want ErrOverloaded", err)
	}
}

// TestMemberOpsDrainingAnswered: a draining server answers membership
// ops with CodeDraining inline — the registrar moves on to the next
// balancer instead of timing out. A blocked Mont holds the drain's
// phase 1 open so the connection survives long enough to observe it.
func TestMemberOpsDrainingAnswered(t *testing.T) {
	h := &memberStubHandler{
		montStarted: make(chan struct{}),
		montRelease: make(chan struct{}),
	}
	srv, err := NewHandlerServer(h)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl := Dial(ln.Addr().String(), WithMaxRetries(0), WithPoolSize(1))
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	montDone := make(chan struct{})
	go func() {
		defer close(montDone)
		cl.Mont(ctx, big.NewInt(7), big.NewInt(1), big.NewInt(1))
	}()
	<-h.montStarted // Mont admitted: drain phase 1 will block on it

	drainDone := make(chan struct{})
	go func() { defer close(drainDone); srv.Shutdown(context.Background()) }()
	waitDraining(t, srv)
	if _, err := cl.Join(ctx, "b2:9", ""); !errors.Is(err, errs.ErrDraining) {
		t.Fatalf("Join while draining: err = %v, want ErrDraining", err)
	}
	close(h.montRelease)
	<-montDone
	<-drainDone
}

// waitDraining blocks until the server reports draining.
func waitDraining(t *testing.T, srv *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
}
