package server

import (
	"context"
	"errors"
	"math/big"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/errs"
)

// scriptedServer speaks just enough of the wire protocol to exercise
// the client's retry machinery deterministically. For the i-th request
// (0-based, across all connections) the script returns the response to
// send, or nil to close the connection without answering (the
// ambiguous-failure case).
func scriptedServer(t *testing.T, script func(i int, req *request) *response) (addr string, requests *atomic.Int64, dials *atomic.Int64) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	requests = new(atomic.Int64)
	dials = new(atomic.Int64)
	go func() {
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			dials.Add(1)
			go func(nc net.Conn) {
				defer nc.Close()
				for {
					payload, err := readFrame(nc, DefaultMaxFrame)
					if err != nil {
						return
					}
					req, err := decodeRequest(payload)
					if err != nil {
						return
					}
					i := int(requests.Add(1)) - 1
					resp := script(i, req)
					if resp == nil {
						return // hang up mid-request: ambiguous for the client
					}
					resp.id = req.id
					if err := writeFrame(nc, encodeResponse(req.op, resp)); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
	return ln.Addr().String(), requests, dials
}

func okModExp(req *request) *response {
	j := req.jobs[0]
	return &response{code: CodeOK,
		values: []*big.Int{new(big.Int).Exp(j.a, j.b, j.n)}}
}

// Transient ErrOverloaded responses are retried with backoff until the
// server recovers; the final result is correct.
func TestClientRetriesOverloaded(t *testing.T) {
	addr, requests, _ := scriptedServer(t, func(i int, req *request) *response {
		if i < 2 {
			return &response{code: CodeOverloaded, msg: "busy"}
		}
		return okModExp(req)
	})
	cl := Dial(addr, WithMaxRetries(3), WithBackoff(time.Millisecond, 10*time.Millisecond))
	defer cl.Close()

	n, base, exp := big.NewInt(101), big.NewInt(7), big.NewInt(13)
	got, err := cl.ModExp(context.Background(), n, base, exp)
	if err != nil {
		t.Fatal(err)
	}
	if want := new(big.Int).Exp(base, exp, n); got.Cmp(want) != 0 {
		t.Fatal("wrong value after retries")
	}
	if r := requests.Load(); r != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejected + 1 ok)", r)
	}
}

// Retries are bounded: a persistently overloaded server yields
// ErrOverloaded after exactly maxRetries+1 attempts.
func TestClientRetryBudgetExhausted(t *testing.T) {
	addr, requests, _ := scriptedServer(t, func(i int, req *request) *response {
		return &response{code: CodeOverloaded, msg: "busy"}
	})
	cl := Dial(addr, WithMaxRetries(2), WithBackoff(time.Millisecond, 5*time.Millisecond))
	defer cl.Close()

	_, err := cl.ModExp(context.Background(), big.NewInt(101), big.NewInt(2), big.NewInt(3))
	if !errors.Is(err, errs.ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if r := requests.Load(); r != 3 {
		t.Fatalf("server saw %d requests, want 3 attempts", r)
	}
}

// Permanent errors are not retried: one request, sentinel preserved.
func TestClientNoRetryOnPermanentError(t *testing.T) {
	addr, requests, _ := scriptedServer(t, func(i int, req *request) *response {
		return &response{code: CodeEvenModulus, msg: "modulus must be odd"}
	})
	cl := Dial(addr, WithMaxRetries(5), WithBackoff(time.Millisecond, 5*time.Millisecond))
	defer cl.Close()

	_, err := cl.ModExp(context.Background(), big.NewInt(100), big.NewInt(2), big.NewInt(3))
	if !errors.Is(err, errs.ErrEvenModulus) {
		t.Fatalf("want ErrEvenModulus, got %v", err)
	}
	if r := requests.Load(); r != 1 {
		t.Fatalf("server saw %d requests, want 1 (no retries)", r)
	}
}

// A connection dropped after the request was written is ambiguous; the
// op is idempotent, so the client redials and retries.
func TestClientRedialsAfterAmbiguousDrop(t *testing.T) {
	addr, _, dials := scriptedServer(t, func(i int, req *request) *response {
		if i == 0 {
			return nil // read the request, then hang up without answering
		}
		return okModExp(req)
	})
	cl := Dial(addr, WithMaxRetries(3), WithBackoff(time.Millisecond, 10*time.Millisecond))
	defer cl.Close()

	n, base, exp := big.NewInt(101), big.NewInt(7), big.NewInt(13)
	got, err := cl.ModExp(context.Background(), n, base, exp)
	if err != nil {
		t.Fatal(err)
	}
	if want := new(big.Int).Exp(base, exp, n); got.Cmp(want) != 0 {
		t.Fatal("wrong value after redial")
	}
	if d := dials.Load(); d < 2 {
		t.Fatalf("client dialed %d times, want ≥ 2", d)
	}
}

// The call context cuts retries short — a cancelled context beats the
// backoff timer and the remaining budget.
func TestClientBackoffHonorsContext(t *testing.T) {
	addr, _, _ := scriptedServer(t, func(i int, req *request) *response {
		return &response{code: CodeOverloaded, msg: "busy"}
	})
	// A long backoff base makes the sleep the dominant cost; the context
	// must preempt it.
	cl := Dial(addr, WithMaxRetries(10), WithBackoff(10*time.Second, 20*time.Second))
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	_, err := cl.ModExp(ctx, big.NewInt(101), big.NewInt(2), big.NewInt(3))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if e := time.Since(t0); e > 2*time.Second {
		t.Fatalf("context-bounded retry took %s", e)
	}
}

// Dial failures (nothing listening) are transient too, and the retry
// budget bounds them.
func TestClientDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port — dials will be refused

	cl := Dial(addr, WithMaxRetries(1),
		WithBackoff(time.Millisecond, 5*time.Millisecond), WithDialTimeout(time.Second))
	defer cl.Close()
	if _, err := cl.ModExp(context.Background(), big.NewInt(101), big.NewInt(2), big.NewInt(3)); err == nil {
		t.Fatal("expected dial failure")
	}
}

// Close fails in-flight use and rejects further calls.
func TestClientClose(t *testing.T) {
	addr, _, _ := scriptedServer(t, func(i int, req *request) *response {
		return okModExp(req)
	})
	cl := Dial(addr)
	if _, err := cl.ModExp(context.Background(), big.NewInt(101), big.NewInt(2), big.NewInt(3)); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.ModExp(context.Background(), big.NewInt(101), big.NewInt(2), big.NewInt(3)); !errors.Is(err, errs.ErrEngineClosed) {
		t.Fatalf("call after Close: %v", err)
	}
}
