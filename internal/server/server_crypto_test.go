package server

import (
	"context"
	"encoding/hex"
	"errors"
	"math/big"
	"net"
	"testing"
	"time"

	"repro/internal/cryptosvc"
	"repro/internal/ecc"
	"repro/internal/engine"
	"repro/internal/errs"
	"repro/internal/kits"
	"repro/internal/obs"
)

// cryptoTestSetup boots a signing-capable server on loopback and a
// client against it.
func cryptoTestSetup(t *testing.T, srvOpts ...Option) (*Client, *engine.Engine) {
	t.Helper()
	_, eng, addr := startServer(t,
		[]engine.Option{engine.WithWorkers(2), engine.WithKit(kits.CIOS)}, srvOpts)
	cl := Dial(addr)
	t.Cleanup(func() { cl.Close() })
	return cl, eng
}

// TestCryptoOpsRoundTrip drives every signing op through the wire:
// keygen, RSA sign + verify (true and false), ECDSA sign + batch
// verify — and checks the answers against independent math/big
// computation.
func TestCryptoOpsRoundTrip(t *testing.T) {
	cl, _ := cryptoTestSetup(t)
	ctx := context.Background()

	key, err := cl.KeygenRSA(ctx, 256, 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := key.Validate(); err != nil {
		t.Fatalf("wire keygen produced inconsistent key: %v", err)
	}
	if key.P == nil || key.QInv == nil {
		t.Fatal("CRT components lost on the wire")
	}

	digest := big.NewInt(0xD16E57)
	sig, err := cl.SignRSA(ctx, key, digest)
	if err != nil {
		t.Fatal(err)
	}
	// Independent check, no server involved.
	if got := new(big.Int).Exp(sig, key.E, key.N); got.Cmp(new(big.Int).Mod(digest, key.N)) != 0 {
		t.Fatal("wire signature does not verify against math/big")
	}
	ok, err := cl.VerifyRSA(ctx, key.N, key.E, digest, sig)
	if err != nil || !ok {
		t.Fatalf("VerifyRSA(valid) = (%v, %v)", ok, err)
	}
	bad := new(big.Int).Add(sig, big.NewInt(1))
	ok, err = cl.VerifyRSA(ctx, key.N, key.E, digest, bad)
	if err != nil || ok {
		t.Fatalf("VerifyRSA(tampered) = (%v, %v), want (false, nil)", ok, err)
	}

	// ECDSA over the wire: deterministic under the seed.
	d := big.NewInt(0xC0FFEE)
	r1, s1, err := cl.SignECDSA(ctx, cryptosvc.CurveP256, d, digest, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := cl.SignECDSA(ctx, cryptosvc.CurveP256, d, digest, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cmp(r2) != 0 || s1.Cmp(s2) != 0 {
		t.Fatal("ECDSA sign not deterministic over the wire")
	}

	curve, err := ecc.P256()
	if err != nil {
		t.Fatal(err)
	}
	pt, err := curve.ScalarBaseMult(d)
	if err != nil {
		t.Fatal(err)
	}
	qx, qy, _ := curve.Affine(pt)
	res, err := cl.VerifyECDSABatch(ctx, cryptosvc.CurveP256, []cryptosvc.ECDSAVerifyItem{
		{Qx: qx, Qy: qy, R: r1, S: s1, Digest: digest},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || !res[0].OK || res[0].Err != nil {
		t.Fatalf("batch verify of a wire signature: %+v", res)
	}
}

// TestCryptoKeygenDeterministicOverWire pins the retry-safety property:
// the same (bits, seed) answers the same key.
func TestCryptoKeygenDeterministicOverWire(t *testing.T) {
	cl, _ := cryptoTestSetup(t)
	ctx := context.Background()
	k1, err := cl.KeygenRSA(ctx, 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := cl.KeygenRSA(ctx, 128, 9)
	if err != nil {
		t.Fatal(err)
	}
	if k1.N.Cmp(k2.N) != 0 || k1.D.Cmp(k2.D) != 0 {
		t.Fatal("keygen not deterministic over the wire")
	}
}

// TestCryptoErrorCodesSurviveWire checks that every new failure class
// maps onto its sentinel through client → wire → server → wire →
// client, so errors.Is classification matches the in-process service.
func TestCryptoErrorCodesSurviveWire(t *testing.T) {
	cl, eng := cryptoTestSetup(t)
	ctx := context.Background()

	svc := cryptosvc.New(eng)
	key, err := svc.KeygenRSA(ctx, 256, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Bad key material → ErrBadKey.
	mangled := *key
	mangled.QInv = new(big.Int).Add(key.QInv, big.NewInt(1))
	if _, err := cl.SignRSA(ctx, &mangled, big.NewInt(5)); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("mangled QInv: got %v, want ErrBadKey", err)
	}
	// Even modulus in the public key → ErrBadKey.
	if _, err := cl.VerifyRSA(ctx, big.NewInt(16), key.E, big.NewInt(5), big.NewInt(3)); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("even modulus: got %v, want ErrBadKey", err)
	}
	// Degenerate digest → ErrOperandRange.
	if _, err := cl.SignRSA(ctx, key, big.NewInt(0)); !errors.Is(err, errs.ErrOperandRange) {
		t.Fatalf("zero digest: got %v, want ErrOperandRange", err)
	}
	// Unknown curve → ErrBadKey.
	if _, _, err := cl.SignECDSA(ctx, 99, big.NewInt(5), big.NewInt(7), 1); !errors.Is(err, errs.ErrBadKey) {
		t.Fatalf("unknown curve: got %v, want ErrBadKey", err)
	}
	// Bad keygen parameters → ErrOperandRange.
	if _, err := cl.KeygenRSA(ctx, 15, 1); !errors.Is(err, errs.ErrOperandRange) {
		t.Fatalf("odd bits: got %v, want ErrOperandRange", err)
	}
}

// TestCryptoBatchVerifyPerItemCodes: one malformed item must not
// poison its batch, and per-item sentinels survive the wire.
func TestCryptoBatchVerifyPerItemCodes(t *testing.T) {
	cl, _ := cryptoTestSetup(t)
	ctx := context.Background()

	curve, err := ecc.P256()
	if err != nil {
		t.Fatal(err)
	}
	d := big.NewInt(0x5eed)
	pt, err := curve.ScalarBaseMult(d)
	if err != nil {
		t.Fatal(err)
	}
	qx, qy, _ := curve.Affine(pt)
	digest := big.NewInt(1234)
	r, s, err := cl.SignECDSA(ctx, cryptosvc.CurveP256, d, digest, 3)
	if err != nil {
		t.Fatal(err)
	}

	items := []cryptosvc.ECDSAVerifyItem{
		{Qx: qx, Qy: qy, R: r, S: s, Digest: digest},                       // valid
		{Qx: qx, Qy: qy, R: r, S: s, Digest: big.NewInt(999)},              // wrong digest
		{Qx: big.NewInt(1), Qy: big.NewInt(1), R: r, S: s, Digest: digest}, // off-curve point
		{Qx: qx, Qy: qy, R: big.NewInt(0), S: s, Digest: digest},           // r out of range
	}
	res, err := cl.VerifyECDSABatch(ctx, cryptosvc.CurveP256, items)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].OK || res[0].Err != nil {
		t.Fatalf("item 0 (valid): %+v", res[0])
	}
	if res[1].OK || res[1].Err != nil {
		t.Fatalf("item 1 (wrong digest): %+v, want OK=false Err=nil", res[1])
	}
	if !errors.Is(res[2].Err, errs.ErrBadKey) {
		t.Fatalf("item 2 (off-curve): err = %v, want ErrBadKey", res[2].Err)
	}
	if res[3].OK || res[3].Err != nil {
		t.Fatalf("item 3 (r=0): %+v, want OK=false Err=nil", res[3])
	}
}

// plainHandler is a pre-signing Handler: the compute ops only, the way
// an old montsyslb would front an old fleet.
type plainHandler struct{ eng *engine.Engine }

func (h plainHandler) Mont(ctx context.Context, n, x, y *big.Int) (*big.Int, error) {
	return h.eng.Mont(ctx, n, x, y)
}
func (h plainHandler) ModExp(ctx context.Context, n, base, exp *big.Int) (*big.Int, error) {
	v, _, err := h.eng.ModExp(ctx, n, base, exp)
	return v, err
}
func (h plainHandler) ModExpBatch(ctx context.Context, jobs []engine.ModExpJob) ([]engine.ModExpResult, error) {
	return h.eng.ModExpBatch(ctx, jobs)
}

// TestMixedVersionFleet pins the append-only degradation story in both
// directions. A new client against a server whose handler predates the
// signing ops gets a clean CodeProtocol error (not a misparse, not a
// hang); the compute ops keep working on the same connection. And an
// old client's frames — ops ≤ 7 — are answered by the new server
// byte-compatibly (covered by the golden-frame test below plus every
// pre-existing round-trip test in this package).
func TestMixedVersionFleet(t *testing.T) {
	eng, err := engine.New(engine.WithWorkers(1), engine.WithKit(kits.CIOS))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	srv, err := NewHandlerServer(plainHandler{eng})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	cl := Dial(ln.Addr().String())
	t.Cleanup(func() { cl.Close() })

	ctx := context.Background()
	if _, err := cl.KeygenRSA(ctx, 128, 1); !errors.Is(err, errs.ErrProtocol) {
		t.Fatalf("signing op on old server: got %v, want ErrProtocol", err)
	}
	// The connection is still healthy for old ops.
	n, base, exp := big.NewInt(0xF1), big.NewInt(7), big.NewInt(5)
	got, err := cl.ModExp(ctx, n, base, exp)
	if err != nil {
		t.Fatal(err)
	}
	if want := new(big.Int).Exp(base, exp, n); got.Cmp(want) != 0 {
		t.Fatalf("modexp after rejected signing op: got %v want %v", got, want)
	}
}

// TestLegacyFramesByteIdentical pins the exact wire bytes of the
// pre-signing ops: if this test ever needs regenerating, the ABI broke.
func TestLegacyFramesByteIdentical(t *testing.T) {
	reqs := []struct {
		name string
		req  *request
		want string
	}{
		{
			"modexp",
			&request{op: OpModExp, id: 7, jobs: []triple{{n: big.NewInt(0xF1), a: big.NewInt(2), b: big.NewInt(10)}}},
			"010200000000000000070000000000000000000000 01f1 0000000102 000000010a",
		},
		{
			"mont",
			&request{op: OpMont, id: 1, jobs: []triple{{n: big.NewInt(0xF1), a: big.NewInt(3), b: big.NewInt(4)}}},
			"010100000000000000010000000000000000000000 01f1 0000000103 0000000104",
		},
		{
			"batch",
			&request{op: OpBatchModExp, id: 2, jobs: []triple{{n: big.NewInt(0xF1), a: big.NewInt(2), b: big.NewInt(3)}}},
			"010300000000000000020000000000000000 00000001 00000001f1 0000000102 0000000103",
		},
		{
			"ping",
			&request{op: OpPing, id: 3},
			"01040000000000000003 0000000000000000",
		},
	}
	for _, tc := range reqs {
		want := tc.want
		wantHex := ""
		for _, c := range want {
			if c != ' ' {
				wantHex += string(c)
			}
		}
		got := hex.EncodeToString(encodeRequest(tc.req))
		if got != wantHex {
			t.Errorf("%s request bytes changed:\n got  %s\n want %s", tc.name, got, wantHex)
		}
	}
	// A traced modexp: trace block between deadline and body.
	tcx := obs.TraceContext{Sampled: true}
	tcx.TraceID[0], tcx.SpanID[0] = 0xAA, 0xBB
	tracedGot := hex.EncodeToString(encodeRequest(&request{
		op: OpModExp, id: 9, tc: tcx,
		jobs: []triple{{n: big.NewInt(0xF1), a: big.NewInt(2), b: big.NewInt(3)}},
	}))
	tracedWant := "010600000000000000090000000000000000" + // ver, op 6, id, no deadline
		"aa000000000000000000000000000000" + "bb00000000000000" + "01" + // trace block
		"00000001f1" + "0000000102" + "0000000103"
	if tracedGot != tracedWant {
		t.Errorf("traced request bytes changed:\n got  %s\n want %s", tracedGot, tracedWant)
	}
	// Responses: OK single value, error, batch.
	respOK := hex.EncodeToString(encodeResponse(OpModExp, &response{id: 7, code: CodeOK, values: []*big.Int{big.NewInt(0x2A)}}))
	if want := "0100000000000000070000000001" + "2a"; respOK != want {
		t.Errorf("OK response bytes changed:\n got  %s\n want %s", respOK, want)
	}
	respErr := hex.EncodeToString(encodeResponse(OpModExp, &response{id: 7, code: CodeOverloaded, msg: "x"}))
	if want := "010000000000000007050000000178"; respErr != want {
		t.Errorf("error response bytes changed:\n got  %s\n want %s", respErr, want)
	}
}

// TestCryptoOpNames pins the metric label names of the new ops (a
// dashboard ABI of its own) and the traced-op normalization.
func TestCryptoOpNames(t *testing.T) {
	want := map[Op]string{
		OpKeygenRSA:              "keygen_rsa",
		OpSignRSA:                "sign_rsa",
		OpVerifyRSA:              "verify_rsa",
		OpSignECDSA:              "sign_ecdsa",
		OpVerifyECDSABatch:       "verify_ecdsa_batch",
		OpKeygenRSATraced:        "keygen_rsa",
		OpSignRSATraced:          "sign_rsa",
		OpVerifyRSATraced:        "verify_rsa",
		OpSignECDSATraced:        "sign_ecdsa",
		OpVerifyECDSABatchTraced: "verify_ecdsa_batch",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("Op(%d).String() = %q, want %q", op, op.String(), name)
		}
	}
	for base := OpKeygenRSA; base <= OpVerifyECDSABatch; base++ {
		tr, ok := base.traced()
		if !ok {
			t.Fatalf("op %v has no traced variant", base)
		}
		back, isTraced := tr.untraced()
		if !isTraced || back != base {
			t.Fatalf("traced/untraced not inverse for %v (traced %v, back %v)", base, tr, back)
		}
	}
	if CodeBadKey.String() != "bad_key" {
		t.Errorf("CodeBadKey.String() = %q", CodeBadKey.String())
	}
}
