package server

// Wire extension: tenant-tagged op variants and the rate-limited code.
// Like the traced variants and the signing ops, the extension is
// append-only — every frame an old peer can produce or parse stays
// byte-identical, and an old server answers a tagged op with
// CodeProtocol instead of misparsing it, so a mixed-version fleet
// degrades to untagged (default-tenant) calls, never to corruption.
//
// A tagged op is its base wire op plus OpQoSOffset — the base may
// itself be a traced variant, so tagging composes with tracing without
// another doubling of the op space (e.g. modexp=2 → 66, traced
// modexp=6 → 70). A tagged frame carries a QoS block between the
// deadline and the (optional) trace block:
//
//	byte   class         0=interactive 1=batch 2=best-effort
//	string tenant        uint32 len ‖ bytes, len ≤ 255
//
// Decoding strips the tag and normalizes req.op to the base op
// immediately, exactly as with traced variants, so metrics labels and
// the execute switch never see tagged values.

import (
	"fmt"

	"repro/internal/errs"
	"repro/internal/qos"
)

// OpQoSOffset is the distance from a wire op to its tenant-tagged
// variant. Offset 64 leaves ops 18–63 free for future plain ops while
// keeping tag detection a single comparison.
const OpQoSOffset Op = 64

// CodeRateLimited reports per-tenant admission rejecting a request
// because the tenant's token bucket was empty (errs.ErrRateLimited).
// The response message carries the retry-after hint in the fixed
// grammar of errs.RateLimited.Error, which errFor parses back so the
// client-side error exposes the hint structurally. Appended to the
// frozen code list.
const CodeRateLimited Code = 13

// maxTenantLen bounds the tenant name in a QoS block; combined with
// the fold-in bucket on the server it keeps hostile frames from
// ballooning decode allocations or metric cardinality.
const maxTenantLen = 255

// qosTagged maps a wire op (base or traced) to its tenant-tagged
// variant, ok=false for ops that take no tag (OpPing is answered
// inline before admission, so a tag would be dead weight, and the
// membership ops are control plane — they must keep working while
// every tenant is throttled).
func (o Op) qosTagged() (Op, bool) {
	if o == OpPing || isMemberOp(o) || o == 0 || o >= OpQoSOffset {
		return o, false
	}
	return o + OpQoSOffset, true
}

// unqos maps a tenant-tagged op back to its untagged wire op; isTagged
// is false (and o returned unchanged) for every other op.
func (o Op) unqos() (base Op, isTagged bool) {
	if o > OpQoSOffset && o < 2*OpQoSOffset {
		return o - OpQoSOffset, true
	}
	return o, false
}

// encodeQoSBlock appends the QoS block of a tagged request.
func encodeQoSBlock(b []byte, req *request) []byte {
	b = append(b, byte(req.class))
	return appendString(b, req.tenant)
}

// decodeQoSBlock parses the QoS block into req. An unknown class byte
// from a newer peer degrades to best-effort rather than erroring: a
// class this server does not know cannot be more urgent than the ones
// it does.
func decodeQoSBlock(d *decoder, req *request) error {
	cb, err := d.byte()
	if err != nil {
		return err
	}
	req.class = qos.Class(cb)
	if req.class >= qos.NumClasses {
		req.class = qos.BestEffort
	}
	tenant, err := d.string()
	if err != nil {
		return err
	}
	if len(tenant) > maxTenantLen {
		return fmt.Errorf("server: tenant name of %d bytes exceeds limit %d: %w",
			len(tenant), maxTenantLen, errs.ErrProtocol)
	}
	req.tenant = tenant
	return nil
}
