package server

// Client-side signing-service calls. The method set mirrors
// SignHandler, so a *Client is itself a SignHandler — which is exactly
// how the cluster balancer forwards signing ops to backends.

import (
	"context"
	"fmt"
	"math/big"

	"repro/internal/cryptosvc"
	"repro/internal/errs"
	"repro/internal/rsa"
)

// Client implements SignHandler (and the balancer routes through it).
var _ SignHandler = (*Client)(nil)

// KeygenRSA generates a deterministic RSA key of the given modulus size
// on the remote server. The same (bits, seed) always yields the same
// key, which is what makes the op safely retryable. Reproduction and
// test workloads only: the key's entropy is capped by the 64-bit seed,
// and both seed and private key cross the wire — generate real keys
// locally (cryptosvc.Service.KeygenRSACrypto).
func (c *Client) KeygenRSA(ctx context.Context, bits int, seed int64) (*rsa.PrivateKey, error) {
	resp, err := c.call(ctx, OpKeygenRSA, nil, &cryptoBody{bits: bits, seed: seed}, nil)
	if err != nil {
		return nil, err
	}
	v := resp.values
	if len(v) != 8 {
		return nil, fmt.Errorf("server: keygen answered %d values: %w", len(v), errs.ErrProtocol)
	}
	return &rsa.PrivateKey{
		PublicKey: rsa.PublicKey{N: orNil(v[0]), E: orNil(v[1])},
		D:         orNil(v[2]),
		P:         orNil(v[3]), Q: orNil(v[4]),
		DP: orNil(v[5]), DQ: orNil(v[6]), QInv: orNil(v[7]),
	}, nil
}

// SignRSA signs a digest on the remote server with its blinded
// private-key path (CRT when the key carries its factors). The key
// crosses the wire with the request; nil CRT fields are preserved.
func (c *Client) SignRSA(ctx context.Context, key *rsa.PrivateKey, digest *big.Int) (*big.Int, error) {
	if key == nil {
		return nil, fmt.Errorf("server: nil key: %w", errs.ErrBadKey)
	}
	resp, err := c.call(ctx, OpSignRSA, nil, &cryptoBody{key: key, digest: digest}, nil)
	if err != nil {
		return nil, err
	}
	return resp.values[0], nil
}

// VerifyRSA checks sig^E ≡ digest (mod n) on the remote server. A
// well-formed but wrong signature answers (false, nil); malformed key
// material answers an ErrBadKey-wrapped error.
func (c *Client) VerifyRSA(ctx context.Context, n, e, digest, sig *big.Int) (bool, error) {
	resp, err := c.call(ctx, OpVerifyRSA, nil, &cryptoBody{n: n, e: e, digest: digest, sig: sig}, nil)
	if err != nil {
		return false, err
	}
	return resp.values[0].Sign() != 0, nil
}

// SignECDSA signs a digest on the remote server; the nonce is derived
// deterministically from seed, so retries reproduce the signature.
func (c *Client) SignECDSA(ctx context.Context, curveID uint8, d, digest *big.Int, seed int64) (*big.Int, *big.Int, error) {
	resp, err := c.call(ctx, OpSignECDSA, nil, &cryptoBody{curve: curveID, d: d, digest: digest, seed: seed}, nil)
	if err != nil {
		return nil, nil, err
	}
	return resp.values[0], resp.values[1], nil
}

// VerifyECDSABatch verifies a batch of ECDSA signatures remotely with
// per-item verdicts: results[i].OK answers items[i], and per-item
// errors (off-curve point → ErrBadKey, missing fields →
// ErrOperandRange) come back as the same sentinels the in-process
// service returns.
func (c *Client) VerifyECDSABatch(ctx context.Context, curveID uint8, items []cryptosvc.ECDSAVerifyItem) ([]cryptosvc.VerifyResult, error) {
	resp, err := c.call(ctx, OpVerifyECDSABatch, nil, &cryptoBody{curve: curveID, items: items}, nil)
	if err != nil {
		return nil, err
	}
	if len(resp.values) != len(items) {
		return nil, fmt.Errorf("server: verify batch answered %d of %d items: %w",
			len(resp.values), len(items), errs.ErrProtocol)
	}
	results := make([]cryptosvc.VerifyResult, len(items))
	for i := range results {
		if e := errFor(resp.codes[i], resp.msgs[i]); e != nil {
			results[i].Err = e
		} else {
			results[i].OK = resp.values[i].Sign() != 0
		}
	}
	return results, nil
}
