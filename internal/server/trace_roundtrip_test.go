package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/obs"
)

// TestTraceRoundTrip is the wire-propagation acceptance test inside
// one process pair: a tracing client calls a traced server and the
// spans recorded on both sides — client call span, server span, engine
// job span — share one trace id and chain parent→child across the
// network hop. This is the joint the cluster CI job later checks
// across real processes with cmd/tracecat.
func TestTraceRoundTrip(t *testing.T) {
	col := obs.NewCollector(obs.WithTracing(64))
	_, _, addr := startServer(t,
		[]engine.Option{engine.WithWorkers(1), engine.WithObserver(col)},
		[]Option{WithRegistry(col.Registry()), WithTracer(col.Tracer())})

	clientTracer := obs.NewTracer(64)
	c := Dial(addr, WithClientTracing(clientTracer, 1)) // sample everything
	defer c.Close()

	rng := rand.New(rand.NewSource(11))
	n := testModulus(t, rng, 128)
	if _, err := c.ModExp(context.Background(), n, big.NewInt(7), big.NewInt(65537)); err != nil {
		t.Fatal(err)
	}

	// Client side: exactly one root call span.
	cspans := clientTracer.Spans()
	if len(cspans) != 1 {
		t.Fatalf("client recorded %d spans, want 1", len(cspans))
	}
	call := cspans[0]
	if call.Name != "call/modexp" || call.TraceID.IsZero() || call.SpanID.IsZero() {
		t.Fatalf("call span: %+v", call)
	}
	if !call.Parent.IsZero() {
		t.Fatalf("call span has a parent %s, want root", call.Parent)
	}

	// Server side: a server span parented on the call span, and an
	// engine span parented on the server span, all on one trace id.
	var srvSpan, engSpan obs.Span
	var haveSrv, haveEng bool
	for _, s := range col.Tracer().Spans() {
		switch {
		case s.Name == "server/modexp":
			srvSpan, haveSrv = s, true
		case s.Name == "modexp" && !s.TraceID.IsZero():
			engSpan, haveEng = s, true
		}
	}
	if !haveSrv || !haveEng {
		t.Fatalf("server/engine spans missing: %+v", col.Tracer().Spans())
	}
	if srvSpan.TraceID != call.TraceID || engSpan.TraceID != call.TraceID {
		t.Fatalf("trace ids diverge: call=%s server=%s engine=%s",
			call.TraceID, srvSpan.TraceID, engSpan.TraceID)
	}
	if srvSpan.Parent != call.SpanID {
		t.Fatalf("server span parent = %s, want the call span %s", srvSpan.Parent, call.SpanID)
	}
	if engSpan.Parent != srvSpan.SpanID {
		t.Fatalf("engine span parent = %s, want the server span %s", engSpan.Parent, srvSpan.SpanID)
	}
	if engSpan.Kit == "" || engSpan.Outcome != "ok" {
		t.Fatalf("engine span lost its payload: %+v", engSpan)
	}

	// The server export carries the ids as span args — what tracecat's
	// tree assertion reads.
	var buf bytes.Buffer
	if err := col.Tracer().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), call.TraceID.String()) {
		t.Fatal("trace id missing from the Chrome export")
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("export is not valid JSON")
	}
}

// TestUnsampledCallsStayUntraced: without client tracing the wire
// carries the untraced ops and neither side records spans with trace
// ids — the zero-overhead default.
func TestUnsampledCallsStayUntraced(t *testing.T) {
	col := obs.NewCollector(obs.WithTracing(64))
	_, _, addr := startServer(t,
		[]engine.Option{engine.WithWorkers(1), engine.WithObserver(col)},
		[]Option{WithRegistry(col.Registry()), WithTracer(col.Tracer())})

	c := Dial(addr)
	defer c.Close()
	rng := rand.New(rand.NewSource(12))
	n := testModulus(t, rng, 128)
	if _, err := c.ModExp(context.Background(), n, big.NewInt(7), big.NewInt(65537)); err != nil {
		t.Fatal(err)
	}
	for _, s := range col.Tracer().Spans() {
		if !s.TraceID.IsZero() {
			t.Fatalf("untraced call produced a traced span: %+v", s)
		}
		if strings.HasPrefix(s.Name, "server/") {
			t.Fatalf("unsampled request recorded a server span: %+v", s)
		}
	}
}

// TestRateZeroClientPropagatesAmbientTrace: a client without root
// minting still forwards a sampled context it finds on ctx — the
// balancer's client pool relies on this to re-parent backend calls.
func TestRateZeroClientPropagatesAmbientTrace(t *testing.T) {
	col := obs.NewCollector(obs.WithTracing(64))
	_, _, addr := startServer(t,
		[]engine.Option{engine.WithWorkers(1), engine.WithObserver(col)},
		[]Option{WithRegistry(col.Registry()), WithTracer(col.Tracer())})

	c := Dial(addr)
	defer c.Close()
	tc := obs.TraceContext{TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Sampled: true}
	ctx := obs.ContextWithTrace(context.Background(), tc)
	rng := rand.New(rand.NewSource(13))
	n := testModulus(t, rng, 128)
	if _, err := c.ModExp(ctx, n, big.NewInt(7), big.NewInt(65537)); err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, s := range col.Tracer().Spans() {
		if s.Name == "server/modexp" && s.TraceID == tc.TraceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("ambient trace did not reach the server: %+v", col.Tracer().Spans())
	}
}

// TestServerWideEvents: with a wide writer attached, one server-layer
// line per sampled request lands in the log carrying the trace id.
func TestServerWideEvents(t *testing.T) {
	var buf bytes.Buffer
	wide := obs.NewWideWriter(&buf)
	col := obs.NewCollector(obs.WithTracing(64))
	_, _, addr := startServer(t,
		[]engine.Option{engine.WithWorkers(1), engine.WithObserver(col)},
		[]Option{WithRegistry(col.Registry()), WithTracer(col.Tracer()), WithWideEvents(wide)})

	clientTracer := obs.NewTracer(64)
	c := Dial(addr, WithClientTracing(clientTracer, 1))
	defer c.Close()
	rng := rand.New(rand.NewSource(14))
	n := testModulus(t, rng, 128)
	if _, err := c.ModExp(context.Background(), n, big.NewInt(7), big.NewInt(65537)); err != nil {
		t.Fatal(err)
	}

	call := clientTracer.Spans()[0]
	var sawServerLine bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("wide line not JSON: %v\n%s", err, line)
		}
		if ev["layer"] == "server" && ev["trace_id"] == call.TraceID.String() {
			sawServerLine = true
			if ev["op"] != "modexp" || ev["outcome"] != "ok" {
				t.Errorf("server wide event payload: %v", ev)
			}
		}
	}
	if !sawServerLine {
		t.Fatalf("no server wide event for trace %s:\n%s", call.TraceID, buf.String())
	}
}
