package server

// Native fuzz targets over the frame codecs. The contract under test:
// no byte sequence panics a decoder, and every rejection wraps
// errs.ErrProtocol — the read loop relies on that to answer a typed
// CodeProtocol instead of crashing the connection goroutine, and the
// balancer relies on it to classify the failure as non-retryable.
// CI runs each target for a short -fuzztime as a smoke (see the fuzz
// Makefile target); the committed corpus under testdata/fuzz keeps
// past discoveries as regression inputs.

import (
	"errors"
	"math/big"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/obs"
	"repro/internal/qos"
	"repro/internal/rsa"
)

// fuzzSeedRequests covers one valid frame per op family — plain,
// batch, traced, QoS-tagged, signing, membership — so the mutator
// starts from deep in the grammar instead of rediscovering headers.
func fuzzSeedRequests() []*request {
	n := big.NewInt(0xfff1)
	j := []triple{{n: n, a: big.NewInt(2), b: big.NewInt(3)}}
	tc := obs.TraceContext{Sampled: true}
	tc.TraceID[0], tc.SpanID[0] = 0xab, 0xcd
	return []*request{
		{op: OpPing, id: 1},
		{op: OpModExp, id: 2, jobs: j},
		{op: OpMont, id: 3, jobs: j},
		{op: OpBatchModExp, id: 4, jobs: []triple{j[0], j[0]}},
		{op: OpModExp, id: 5, jobs: j, deadline: time.Unix(2, 0)},
		{op: OpModExp, id: 6, jobs: j, tenant: "acme", class: qos.Batch},
		{op: OpModExp, id: 7, jobs: j, tc: tc},
		{op: OpModExp, id: 8, jobs: j, tenant: "acme", class: qos.BestEffort, tc: tc},
		{op: OpKeygenRSA, id: 9, crypto: &cryptoBody{bits: 512, seed: 42}},
		{op: OpVerifyRSA, id: 10, crypto: &cryptoBody{
			n: n, e: big.NewInt(65537), digest: big.NewInt(99), sig: big.NewInt(7)}},
		{op: OpSignRSA, id: 11, crypto: &cryptoBody{
			key:    &rsa.PrivateKey{PublicKey: rsa.PublicKey{N: n, E: big.NewInt(3)}, D: big.NewInt(5)},
			digest: big.NewInt(99)}},
		{op: OpJoin, id: 12, member: &memberBody{addr: "b1:9001", zone: "eu-1"}},
		{op: OpGoodbye, id: 13, member: &memberBody{addr: "b1:9001"}},
	}
}

func FuzzDecodeRequest(f *testing.F) {
	for _, r := range fuzzSeedRequests() {
		f.Add(encodeRequest(r))
	}
	f.Add([]byte{})
	f.Add([]byte{ProtoVersion})
	f.Add([]byte{ProtoVersion, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, err := decodeRequest(payload)
		if err != nil {
			if !errors.Is(err, errs.ErrProtocol) {
				t.Fatalf("decode error does not wrap ErrProtocol: %v", err)
			}
			return
		}
		// Normalization invariant: the read loop's dispatch switch and the
		// metrics label set only ever see base ops.
		if _, tagged := req.op.unqos(); tagged {
			t.Fatalf("decoded op %d not normalized past the QoS tag", req.op)
		}
		if _, traced := req.op.untraced(); traced {
			t.Fatalf("decoded op %d not normalized past the trace variant", req.op)
		}
	})
}

func FuzzDecodeResponse(f *testing.F) {
	// A response's shape depends on the op of the request it answers, so
	// the op byte is a fuzzed input too (folded onto the known ops — the
	// client only ever decodes under an op it sent).
	okBody := &response{id: 1, code: CodeOK, values: []*big.Int{big.NewInt(42)}}
	f.Add(byte(OpModExp), encodeResponse(OpModExp, okBody))
	f.Add(byte(OpPing), encodeResponse(OpPing, okBody))
	f.Add(byte(OpJoin), encodeResponse(OpJoin, okBody))
	f.Add(byte(OpModExp), encodeResponse(OpModExp,
		&response{id: 2, code: CodeOverloaded, msg: "in-flight limit reached"}))
	f.Add(byte(OpBatchModExp), encodeResponse(OpBatchModExp, &response{
		id: 3, code: CodeOK,
		codes:  []Code{CodeOK, CodeDeadline},
		msgs:   []string{"", "deadline exceeded"},
		values: []*big.Int{big.NewInt(7), nil},
	}))
	f.Add(byte(OpSignECDSA), encodeResponse(OpSignECDSA, &response{
		id: 4, code: CodeOK, values: []*big.Int{big.NewInt(1), big.NewInt(2)}}))
	f.Add(byte(OpVerifyECDSABatch), encodeResponse(OpVerifyECDSABatch, &response{
		id: 5, code: CodeOK,
		codes: []Code{CodeOK}, msgs: []string{""}, values: []*big.Int{big.NewInt(1)}}))
	f.Add(byte(0), []byte{})
	knownOps := []Op{
		OpMont, OpModExp, OpBatchModExp, OpPing,
		OpKeygenRSA, OpSignRSA, OpVerifyRSA, OpSignECDSA, OpVerifyECDSABatch,
		OpJoin, OpGoodbye,
	}
	f.Fuzz(func(t *testing.T, opb byte, payload []byte) {
		op := knownOps[int(opb)%len(knownOps)]
		resp, err := decodeResponse(op, payload)
		if err != nil && !errors.Is(err, errs.ErrProtocol) {
			t.Fatalf("decode error does not wrap ErrProtocol: %v", err)
		}
		if err == nil && resp == nil {
			t.Fatal("nil response without error")
		}
	})
}

// FuzzResponseID covers the client read loop's header peek, which runs
// on every inbound frame before full decoding.
func FuzzResponseID(f *testing.F) {
	f.Add(encodeResponse(OpModExp, &response{id: 99, code: CodeOK, values: []*big.Int{big.NewInt(1)}}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, payload []byte) {
		if _, err := responseID(payload); err != nil && !errors.Is(err, errs.ErrProtocol) {
			t.Fatalf("responseID error does not wrap ErrProtocol: %v", err)
		}
	})
}
